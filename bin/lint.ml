(* lslp-lint — the project's own static-analysis pass.

   Parses the OCaml sources under the given roots with the compiler's
   parser, applies the R1-R4 domain-safety rules, folds in the committed
   waiver file, and exits nonzero on any unwaived finding (or, with
   --check-waivers, on any stale waiver entry). *)

open Cmdliner

let paths =
  let doc = "Roots to lint (files or directories). Defaults to lib bin." in
  Arg.(value & pos_all string [ "lib"; "bin" ] & info [] ~docv:"PATH" ~doc)

let json =
  let doc = "Emit the report as JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let rules =
  let doc =
    "Restrict to rule $(docv) (id like R3 or slug like raise-primitives). \
     Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "rule"; "r" ] ~docv:"RULE" ~doc)

let list_rules =
  let doc = "List the rule registry and exit." in
  Arg.(value & flag & info [ "rules" ] ~doc)

let waivers_file =
  let doc =
    "Waiver file of per-site justifications. Ignored if absent unless \
     $(b,--check-waivers) is set."
  in
  Arg.(
    value
    & opt string "lint.waivers"
    & info [ "waivers" ] ~docv:"FILE" ~doc)

let check_waivers =
  let doc =
    "Fail on stale waiver entries (and require the waiver file to exist)."
  in
  Arg.(value & flag & info [ "check-waivers" ] ~doc)

let bench_out =
  let doc = "Also write the BENCH_lint.json payload to $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "bench-out" ] ~docv:"FILE" ~doc)

let run paths json rule_keys list_rules waivers_file check_waivers bench_out
    =
  if list_rules then (
    List.iter
      (fun r ->
        Fmt.pr "%s %-22s %s@." r.Lslp_lint.Rules.id r.Lslp_lint.Rules.slug
          r.Lslp_lint.Rules.doc)
      Lslp_lint.Rules.all;
    0)
  else
    let unknown =
      List.filter (fun k -> Lslp_lint.Rules.find k = None) rule_keys
    in
    if unknown <> [] then (
      Fmt.epr "lslp-lint: unknown rule(s): %s@."
        (String.concat ", " unknown);
      2)
    else
      let rules = match rule_keys with [] -> None | ks -> Some ks in
      match
        if Sys.file_exists waivers_file then
          Lslp_lint.Waiver.load waivers_file
        else if check_waivers then
          Error (waivers_file ^ ": waiver file not found")
        else Ok []
      with
      | Error msg ->
        Fmt.epr "lslp-lint: %s@." msg;
        2
      | Ok waivers ->
        (* wall-clock here is bench telemetry, waived under R4 *)
        let t0 = Unix.gettimeofday () in
        let report = Lslp_lint.Driver.run ?rules ~waivers paths in
        let wall_s = Unix.gettimeofday () -. t0 in
        (match bench_out with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          output_string oc
            (Lslp_util.Json.to_string
               (Lslp_lint.Driver.bench_json ~wall_s report));
          output_char oc '\n';
          close_out oc);
        if json then
          Fmt.pr "%s@."
            (Lslp_util.Json.to_string
               (Lslp_lint.Driver.to_json ~check_waivers report))
        else Fmt.pr "%a" (Lslp_lint.Driver.pp_text ~check_waivers) report;
        if Lslp_lint.Driver.ok ~check_waivers report then 0 else 1

let cmd =
  let doc = "static-analysis pass over the lslp sources" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Applies the R1-R4 domain-safety rules (global mutable state, \
         ambient Random, raising primitives, wall-clock reads) to the \
         OCaml sources under the given roots, folding in the committed \
         waiver file. Exits 1 on unwaived findings, 2 on usage errors.";
    ]
  in
  Cmd.v
    (Cmd.info "lslp-lint" ~doc ~man)
    Term.(
      const run $ paths $ json $ rules $ list_rules $ waivers_file
      $ check_waivers $ bench_out)

let () = exit (Cmd.eval' cmd)
