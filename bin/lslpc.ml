(* lslpc: the kernel-language compiler driver.

   Subcommands:
     compile  parse a kernel, run a vectorizer configuration, dump IR /
              graphs / costs
     run      compile and execute scalar vs vectorized in the simulator,
              reporting cycles, speedup and an equivalence check
     kernels  list the built-in kernel catalog
     show     print a catalog kernel's source and IR

   Example:
     lslpc compile --config lslp --dump-ir examples/kernels/foo.k
     lslpc run --kernel 453.boy-surface --config slp
*)

open Cmdliner

let config_of_string = function
  | "slp-nr" -> Ok Lslp_core.Config.slp_nr
  | "slp" -> Ok Lslp_core.Config.slp
  | "lslp" -> Ok Lslp_core.Config.lslp
  | s -> (
    match String.index_opt s ':' with
    | Some k -> (
      let name = String.sub s 0 k in
      let arg = String.sub s (k + 1) (String.length s - k - 1) in
      match (name, int_of_string_opt arg) with
      | "lslp-la", Some d -> Ok (Lslp_core.Config.lslp_la d)
      | "lslp-multi", Some m -> Ok (Lslp_core.Config.lslp_multi m)
      | _ -> Error (Fmt.str "unknown configuration %s" s))
    | None -> Error (Fmt.str "unknown configuration %s" s))

let config_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (config_of_string s) in
  let print ppf (c : Lslp_core.Config.t) = Fmt.string ppf c.name in
  Arg.conv (parse, print)

let config_arg =
  let doc =
    "Vectorizer configuration: slp-nr, slp, lslp, lslp-la:N (look-ahead \
     depth N) or lslp-multi:N (multi-node size N)."
  in
  Arg.(value & opt config_conv Lslp_core.Config.lslp
       & info [ "c"; "config" ] ~docv:"CONFIG" ~doc)

let load_kernel file kernel_key =
  match (file, kernel_key) with
  | Some path, None ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    Lslp_frontend.Lower.compile_string src
  | None, Some key -> Lslp_kernels.Catalog.compile_key key
  | Some _, Some _ -> failwith "give either a file or --kernel, not both"
  | None, None -> failwith "give a kernel file or --kernel KEY"

let file_arg =
  Arg.(value & pos 0 (some file) None
       & info [] ~docv:"FILE" ~doc:"Kernel-language source file.")

let kernel_arg =
  let doc = "Use a built-in catalog kernel (see the kernels subcommand)." in
  Arg.(value & opt (some string) None & info [ "k"; "kernel" ] ~docv:"KEY" ~doc)

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ] ~doc:"Log the pass's decisions as it runs.")

let handle_errors f =
  try f () with
  | Lslp_frontend.Lexer.Error (msg, pos)
  | Lslp_frontend.Parser.Error (msg, pos)
  | Lslp_frontend.Lower.Error (msg, pos) ->
    Fmt.epr "error at %a: %s@." Lslp_frontend.Token.pp_pos pos msg;
    exit 1
  | Failure msg | Invalid_argument msg ->
    Fmt.epr "error: %s@." msg;
    exit 1

(* ---- compile ---------------------------------------------------- *)

let compile_cmd =
  let run file kernel config dump_ir dump_graph quiet verbose =
    handle_errors @@ fun () ->
    setup_logs verbose;
    let f = load_kernel file kernel in
    if dump_ir then
      Fmt.pr "=== scalar IR ===@.%a@.@." Lslp_ir.Printer.pp_func f;
    if dump_graph then begin
      let seeds = Lslp_core.Seeds.collect config f in
      List.iteri
        (fun k seed ->
          let graph, _ = Lslp_core.Graph_builder.build config f seed in
          let cost =
            Lslp_core.Cost.evaluate config graph f.Lslp_ir.Func.block
          in
          Fmt.pr "=== %s graph for seed %d ===@.%a@.%a@.@." config.name k
            Lslp_core.Graph.pp graph Lslp_core.Cost.pp_summary cost)
        seeds
    end;
    let report, g = Lslp_core.Pipeline.run_cloned ~config f in
    if not quiet then Fmt.pr "%a@.@." Lslp_core.Pipeline.pp_report report;
    if dump_ir then
      Fmt.pr "=== %s IR ===@.%a@." config.name Lslp_ir.Printer.pp_func g;
    match Lslp_ir.Verifier.check_func g with
    | [] -> ()
    | errors ->
      List.iter
        (fun e -> Fmt.epr "verifier: %a@." Lslp_ir.Verifier.pp_error e)
        errors;
      exit 1
  in
  let dump_ir =
    Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print IR before and after.")
  in
  let dump_graph =
    Arg.(value & flag
         & info [ "dump-graph" ] ~doc:"Print the SLP graph and node costs.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No report.") in
  Cmd.v
    (Cmd.info "compile" ~doc:"Vectorize a kernel and report what happened")
    Term.(const run $ file_arg $ kernel_arg $ config_arg $ dump_ir
          $ dump_graph $ quiet $ verbose_arg)

(* ---- run --------------------------------------------------------- *)

let run_cmd =
  let run file kernel config seed verbose =
    handle_errors @@ fun () ->
    setup_logs verbose;
    let f = load_kernel file kernel in
    let report, g = Lslp_core.Pipeline.run_cloned ~config f in
    let outcome =
      Lslp_interp.Oracle.compare_runs ~seed ~reference:f ~candidate:g ()
    in
    Fmt.pr "%a@.@." Lslp_core.Pipeline.pp_report report;
    Fmt.pr "scalar cycles:     %d@." outcome.reference_cycles;
    Fmt.pr "vectorized cycles: %d@." outcome.candidate_cycles;
    Fmt.pr "speedup:           %.3fx@."
      (float_of_int outcome.reference_cycles
      /. float_of_int (max 1 outcome.candidate_cycles));
    match outcome.mismatches with
    | [] -> Fmt.pr "equivalence:       OK@."
    | ms ->
      Fmt.pr "equivalence:       FAILED (%d mismatches)@." (List.length ms);
      List.iter (fun m -> Fmt.pr "  %a@." Lslp_interp.Memory.pp_mismatch m) ms;
      exit 1
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"Random seed for input data.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Vectorize a kernel, simulate scalar vs vector, compare")
    Term.(const run $ file_arg $ kernel_arg $ config_arg $ seed
          $ verbose_arg)

(* ---- kernels ------------------------------------------------------ *)

let kernels_cmd =
  let run () =
    List.iter
      (fun (k : Lslp_kernels.Catalog.kernel) ->
        Fmt.pr "%-26s %-12s %s@." k.key k.benchmark k.origin)
      Lslp_kernels.Catalog.all
  in
  Cmd.v
    (Cmd.info "kernels" ~doc:"List the built-in kernel catalog")
    Term.(const run $ const ())

(* ---- show --------------------------------------------------------- *)

let show_cmd =
  let run key =
    handle_errors @@ fun () ->
    let k = Lslp_kernels.Catalog.find key in
    Fmt.pr "// %s (%s, %s)%s@."
      k.key k.benchmark k.origin k.source;
    let f = Lslp_kernels.Catalog.compile k in
    Fmt.pr "@.%a@." Lslp_ir.Printer.pp_func f
  in
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a catalog kernel's source and scalar IR")
    Term.(const run $ key)

let () =
  let info =
    Cmd.info "lslpc" ~version:"1.0.0"
      ~doc:"Look-ahead SLP vectorizing compiler for the kernel language"
  in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; run_cmd; kernels_cmd; show_cmd ]))
