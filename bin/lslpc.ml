(* lslpc: the kernel-language compiler driver.

   Subcommands:
     compile  parse a kernel, run a vectorizer configuration, dump IR /
              graphs / costs
     run      compile and execute scalar vs vectorized in the simulator,
              reporting cycles, speedup and an equivalence check
     analyze  explain the vectorizer's decisions: one remark per region
              considered, plus the output of the legality validator
              (--dot prints the SLP graphs as Graphviz instead)
     trace    record the decision trace and export it as Chrome trace-event
              JSON (Perfetto), Graphviz DOT or a decision log
     stats    run the whole kernel catalog and tabulate the telemetry
              counters (score evaluations, cache hits, graph nodes, ...)
     kernels  list the built-in kernel catalog
     show     print a catalog kernel's source and IR
     fuzz     differential fuzzing: random kernels vs the scalar oracle
              (--config cache-diff checks the memoized scorer instead)
     batch    compile the catalog on the fault-isolated Domain-pool
              service: per-job deadlines, retries with backoff,
              backpressure and a verified result cache
     domains  domain-pool determinism smoke: the whole catalog on N
              concurrent pool domains must reproduce the sequential IR,
              remarks and counters (modulo id alpha-renaming)
     profile  deterministic compile-cost profile: catalog x N compiles
              into per-pass step histograms and folded stacks
     metrics-verify
              parse a --metrics-out dump and gate on its degradation
              counters (the CI half of make metrics-smoke)

   Example:
     lslpc compile --config lslp --dump-ir examples/kernels/foo.k
     lslpc run --kernel 453.boy-surface --config slp
     lslpc analyze --kernel 464.motivation-multi --config lslp --stats
     lslpc compile --kernel 453.boy-surface --inject codegen:1.0:7
     lslpc trace examples/kernels/loop_saxpy.k --trace-format chrome
     lslpc analyze --kernel 464.motivation-multi --dot | dot -Tsvg
     lslpc stats --config lslp
     lslpc fuzz --cases 200 --config cache-diff
*)

open Cmdliner

let config_of_string = function
  | "slp-nr" -> Ok Lslp_core.Config.slp_nr
  | "slp" -> Ok Lslp_core.Config.slp
  | "lslp" -> Ok Lslp_core.Config.lslp
  | s -> (
    match String.index_opt s ':' with
    | Some k -> (
      let name = String.sub s 0 k in
      let arg = String.sub s (k + 1) (String.length s - k - 1) in
      match (name, int_of_string_opt arg) with
      | "lslp-la", Some d -> Ok (Lslp_core.Config.lslp_la d)
      | "lslp-multi", Some m -> Ok (Lslp_core.Config.lslp_multi m)
      | _ -> Error (Fmt.str "unknown configuration %s" s))
    | None -> Error (Fmt.str "unknown configuration %s" s))

let config_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (config_of_string s) in
  let print ppf (c : Lslp_core.Config.t) = Fmt.string ppf c.name in
  Arg.conv (parse, print)

let config_arg =
  let doc =
    "Vectorizer configuration: slp-nr, slp, lslp, lslp-la:N (look-ahead \
     depth N) or lslp-multi:N (multi-node size N)."
  in
  Arg.(value & opt config_conv Lslp_core.Config.lslp
       & info [ "c"; "config" ] ~docv:"CONFIG" ~doc)

let inject_conv =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Lslp_robust.Inject.parse s)
  in
  Arg.conv (parse, Lslp_robust.Inject.pp)

let inject_arg =
  let doc =
    "Arm deterministic fault injection: PASS[:RATE[:SEED]], where PASS is \
     graph-build, reorder, codegen, reduction, cse, dce, verify, corrupt \
     or all.  Fired faults roll the region back to scalar and show up as \
     degraded regions in the report."
  in
  Arg.(value & opt (some inject_conv) None
       & info [ "inject" ] ~docv:"SPEC" ~doc)

let apply_inject inject config =
  match inject with
  | Some i -> Lslp_core.Config.with_inject i config
  | None -> config

let no_score_cache_arg =
  Arg.(value & flag
       & info [ "no-score-cache" ]
           ~doc:"Disable the memoized look-ahead scorer (same results, \
                 more score evaluations).")

let apply_score_cache no_cache config =
  if no_cache then Lslp_core.Config.with_score_cache false config else config

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print the telemetry counter table (stdout; deterministic) \
                 and pass timings (stderr; wall clock).")

let stats_json_arg =
  Arg.(value & flag
       & info [ "stats-json" ]
           ~doc:"Emit the telemetry report (counters and timers) plus the \
                 per-pass step histograms as one JSON document.")

(* ---- metrics exposition ------------------------------------------- *)

type metrics_format = Prom | Mjson

let metrics_format_arg =
  let doc =
    "Metrics dump format: $(b,prom) (Prometheus text exposition) or \
     $(b,json) (one lslp-metrics/1 document)."
  in
  Arg.(value
       & opt (enum [ ("prom", Prom); ("json", Mjson) ]) Prom
       & info [ "metrics-format" ] ~docv:"FORMAT" ~doc)

let render_registry ~format registry =
  let samples = Lslp_obs.Registry.snapshot registry in
  match format with
  | Prom -> Lslp_obs.Export.prometheus samples
  | Mjson -> Lslp_util.Json.to_string (Lslp_obs.Export.json samples) ^ "\n"

(* One run's pass-step histograms, derived deterministically from the
   report — what `--stats-json` rides along with the telemetry. *)
let report_metrics (t : Lslp_telemetry.Report.t) =
  let reg = Lslp_obs.Registry.create () in
  let pm = Lslp_telemetry.Pass_metrics.create ~root:"run" reg in
  Lslp_telemetry.Pass_metrics.observe pm t;
  Lslp_obs.Export.json (Lslp_obs.Registry.snapshot reg)

(* Counters are deterministic per (input, config) and go to stdout so
   golden tests can pin them; wall-clock timings go to stderr. *)
let print_stats ~stats ~stats_json (report : Lslp_core.Pipeline.report) =
  let t = report.Lslp_core.Pipeline.telemetry in
  if stats then begin
    Fmt.pr "%a" Lslp_telemetry.Report.pp_counters t;
    Fmt.epr "%a" Lslp_telemetry.Report.pp_timers t
  end;
  if stats_json then
    Fmt.pr "%s@."
      (Lslp_util.Json.to_string
         (Lslp_util.Json.Obj
            [
              ("telemetry", Lslp_telemetry.Report.json t);
              ("metrics", report_metrics t);
            ]))

(* ---- decision trace ----------------------------------------------- *)

type trace_format = Chrome | Dot | Log

let trace_format_arg =
  let doc =
    "Trace export format: $(b,chrome) (trace-event JSON, loads in Perfetto \
     and chrome://tracing), $(b,dot) (Graphviz SLP graphs) or $(b,log) \
     (human-readable decision log)."
  in
  Arg.(value
       & opt (enum [ ("chrome", Chrome); ("dot", Dot); ("log", Log) ]) Chrome
       & info [ "trace-format" ] ~docv:"FORMAT" ~doc)

let trace_out_arg =
  let doc =
    "Record the decision trace (seeds, graph shape, get_best calls, cost \
     verdicts, rollbacks) and write it to $(docv) ($(b,-) for stdout)."
  in
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE" ~doc)

let render_trace ~format ~func_name events =
  match format with
  | Chrome ->
    Lslp_trace.Trace.chrome_string ~meta:[ ("function", func_name) ] events
  | Dot -> Lslp_trace.Trace.to_dot events
  | Log -> Lslp_trace.Trace.to_log events

let write_out path contents =
  match path with
  | "-" ->
    print_string contents;
    flush stdout
  | path ->
    let oc = open_out_bin path in
    output_string oc contents;
    close_out oc

(* [--trace-out] is the opt-in: without it [Config.trace] stays off and the
   pipeline allocates no sink. *)
let apply_trace trace_out config =
  if trace_out <> None then Lslp_core.Config.with_trace true config
  else config

let emit_trace ~trace_out ~format ~func_name
    (report : Lslp_core.Pipeline.report) =
  Option.iter
    (fun path ->
      write_out path
        (render_trace ~format ~func_name
           report.Lslp_core.Pipeline.trace_events))
    trace_out

(* Region formation happens here, in the driver, exactly once: Lower and
   Catalog.compile stay pure so nothing double-unrolls. *)
let load_kernel ?(unroll = 0) file kernel_key =
  let f =
    match (file, kernel_key) with
    | Some path, None ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      Lslp_frontend.Lower.compile_string src
    | None, Some key -> Lslp_kernels.Catalog.compile_key key
    | Some _, Some _ -> failwith "give either a file or --kernel, not both"
    | None, None -> failwith "give a kernel file or --kernel KEY"
  in
  ignore (Lslp_frontend.Unroll.run ~factor:unroll f);
  f

let unroll_arg =
  let doc =
    "Unroll factor for counted loops (region formation); 0 or 1 disables."
  in
  Arg.(value & opt int 4 & info [ "unroll" ] ~docv:"N" ~doc)

let file_arg =
  Arg.(value & pos 0 (some file) None
       & info [] ~docv:"FILE" ~doc:"Kernel-language source file.")

let kernel_arg =
  let doc = "Use a built-in catalog kernel (see the kernels subcommand)." in
  Arg.(value & opt (some string) None & info [ "k"; "kernel" ] ~docv:"KEY" ~doc)

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ] ~doc:"Log the pass's decisions as it runs.")

let handle_errors f =
  try f () with
  | Lslp_frontend.Lexer.Error (msg, pos)
  | Lslp_frontend.Parser.Error (msg, pos)
  | Lslp_frontend.Lower.Error (msg, pos) ->
    Fmt.epr "error at %a: %s@." Lslp_frontend.Token.pp_pos pos msg;
    exit 1
  | Failure msg | Invalid_argument msg ->
    Fmt.epr "error: %s@." msg;
    exit 1

let verify_output_arg =
  Arg.(value & flag
       & info [ "verify-output" ]
           ~doc:"Run the legality validator on the transformed function and \
                 fail on any violation.")

(* Shared by compile/run --verify-output and analyze: print the validator's
   findings, return true when any of them is an error. *)
let print_diagnostics diags =
  List.iter (fun d -> Fmt.pr "%a@." Lslp_check.Diagnostic.pp d) diags;
  Fmt.pr "legality: %s@." (Lslp_check.Diagnostic.summary diags);
  Lslp_check.Diagnostic.errors diags <> []

(* ---- compile ---------------------------------------------------- *)

let compile_cmd =
  let run file kernel config unroll inject dump_ir dump_graph quiet
      verify_output no_cache stats stats_json trace_out trace_format verbose
      =
    handle_errors @@ fun () ->
    setup_logs verbose;
    let config =
      if verify_output then Lslp_core.Config.with_validate true config
      else config
    in
    let config = apply_inject inject (apply_score_cache no_cache config) in
    let config = apply_trace trace_out config in
    let f = load_kernel ~unroll file kernel in
    if dump_ir then
      Fmt.pr "=== scalar IR ===@.%a@.@." Lslp_ir.Printer.pp_func f;
    if dump_graph then
      List.iter
        (fun block ->
          let seeds = Lslp_core.Seeds.collect config block in
          List.iteri
            (fun k seed ->
              let graph, _ = Lslp_core.Graph_builder.build config block seed in
              let cost = Lslp_core.Cost.evaluate config graph block in
              Fmt.pr "=== %s graph for seed %d of [%s] ===@.%a@.%a@.@."
                config.name k
                (Lslp_ir.Block.label block)
                Lslp_core.Graph.pp graph Lslp_core.Cost.pp_summary cost)
            seeds)
        (Lslp_ir.Func.blocks f);
    let report, g = Lslp_core.Pipeline.run_cloned ~config f in
    if not quiet then Fmt.pr "%a@.@." Lslp_core.Pipeline.pp_report report;
    print_stats ~stats ~stats_json report;
    emit_trace ~trace_out ~format:trace_format
      ~func_name:f.Lslp_ir.Func.fname report;
    if dump_ir then
      Fmt.pr "=== %s IR ===@.%a@." config.name Lslp_ir.Printer.pp_func g;
    if verify_output
       && print_diagnostics report.Lslp_core.Pipeline.diagnostics
    then exit 1;
    match Lslp_ir.Verifier.check_func g with
    | [] -> ()
    | errors ->
      List.iter
        (fun e -> Fmt.epr "verifier: %a@." Lslp_ir.Verifier.pp_error e)
        errors;
      exit 1
  in
  let dump_ir =
    Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print IR before and after.")
  in
  let dump_graph =
    Arg.(value & flag
         & info [ "dump-graph" ] ~doc:"Print the SLP graph and node costs.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No report.") in
  Cmd.v
    (Cmd.info "compile" ~doc:"Vectorize a kernel and report what happened")
    Term.(const run $ file_arg $ kernel_arg $ config_arg $ unroll_arg
          $ inject_arg $ dump_ir $ dump_graph $ quiet $ verify_output_arg
          $ no_score_cache_arg $ stats_arg $ stats_json_arg $ trace_out_arg
          $ trace_format_arg $ verbose_arg)

(* ---- run --------------------------------------------------------- *)

let run_cmd =
  let run file kernel config unroll inject seed verify_output no_cache stats
      stats_json trace_out trace_format verbose =
    handle_errors @@ fun () ->
    setup_logs verbose;
    let config =
      if verify_output then Lslp_core.Config.with_validate true config
      else config
    in
    let config = apply_inject inject (apply_score_cache no_cache config) in
    let config = apply_trace trace_out config in
    (* the reference is the kernel as written (loops intact), so the oracle
       checks region formation and vectorization together *)
    let reference = load_kernel ~unroll:0 file kernel in
    let f = load_kernel ~unroll file kernel in
    let report, g = Lslp_core.Pipeline.run_cloned ~config f in
    let outcome =
      Lslp_interp.Oracle.compare_runs ~seed ~reference ~candidate:g ()
    in
    Fmt.pr "%a@.@." Lslp_core.Pipeline.pp_report report;
    print_stats ~stats ~stats_json report;
    emit_trace ~trace_out ~format:trace_format
      ~func_name:f.Lslp_ir.Func.fname report;
    if verify_output
       && print_diagnostics report.Lslp_core.Pipeline.diagnostics
    then exit 1;
    Fmt.pr "scalar cycles:     %d@." outcome.reference_cycles;
    Fmt.pr "vectorized cycles: %d@." outcome.candidate_cycles;
    Fmt.pr "speedup:           %.3fx@."
      (float_of_int outcome.reference_cycles
      /. float_of_int (max 1 outcome.candidate_cycles));
    match outcome.mismatches with
    | [] -> Fmt.pr "equivalence:       OK@."
    | ms ->
      Fmt.pr "equivalence:       FAILED (%d mismatches)@." (List.length ms);
      List.iter (fun m -> Fmt.pr "  %a@." Lslp_interp.Memory.pp_mismatch m) ms;
      exit 1
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"Random seed for input data.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Vectorize a kernel, simulate scalar vs vector, compare")
    Term.(const run $ file_arg $ kernel_arg $ config_arg $ unroll_arg
          $ inject_arg $ seed $ verify_output_arg $ no_score_cache_arg
          $ stats_arg $ stats_json_arg $ trace_out_arg $ trace_format_arg
          $ verbose_arg)

(* ---- analyze ------------------------------------------------------ *)

let analyze_cmd =
  let run file kernel config unroll inject json dot no_cache stats stats_json
      trace_out trace_format verbose =
    handle_errors @@ fun () ->
    setup_logs verbose;
    let config =
      Lslp_core.Config.(config |> with_remarks true |> with_validate true)
    in
    let config = apply_inject inject (apply_score_cache no_cache config) in
    let config =
      if dot then Lslp_core.Config.with_trace true config
      else apply_trace trace_out config
    in
    let f = load_kernel ~unroll file kernel in
    let report, _g = Lslp_core.Pipeline.run_cloned ~config f in
    let remarks = report.Lslp_core.Pipeline.remarks in
    let diags = report.Lslp_core.Pipeline.diagnostics in
    if dot then
      (* alias for `lslpc trace --trace-format dot`: just the graphs, so the
         output pipes straight into dot(1) *)
      print_string
        (Lslp_trace.Trace.to_dot report.Lslp_core.Pipeline.trace_events)
    else if json then begin
      Fmt.pr "%s@."
        (Lslp_check.Remark.report_to_json ~config_name:config.name
           ~func_name:f.Lslp_ir.Func.fname ~diagnostics:diags remarks);
      print_stats ~stats ~stats_json report;
      emit_trace ~trace_out ~format:trace_format
        ~func_name:f.Lslp_ir.Func.fname report;
      if Lslp_check.Diagnostic.errors diags <> [] then exit 1
    end
    else begin
      Fmt.pr "%s: %s, %d region(s) considered@." config.name
        f.Lslp_ir.Func.fname (List.length remarks);
      List.iter (fun r -> Fmt.pr "%a@." Lslp_check.Remark.pp r) remarks;
      print_stats ~stats ~stats_json report;
      emit_trace ~trace_out ~format:trace_format
        ~func_name:f.Lslp_ir.Func.fname report;
      if print_diagnostics diags then exit 1
    end
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as a JSON document.")
  in
  let dot =
    Arg.(value & flag
         & info [ "dot" ]
             ~doc:"Print the SLP graphs as Graphviz DOT on stdout (alias \
                   for the trace subcommand with --trace-format dot); \
                   replaces the normal report.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Explain the vectorizer's decisions: one remark per region \
          considered, with the legality validator's verdict")
    Term.(const run $ file_arg $ kernel_arg $ config_arg $ unroll_arg
          $ inject_arg $ json $ dot $ no_score_cache_arg $ stats_arg
          $ stats_json_arg $ trace_out_arg $ trace_format_arg $ verbose_arg)

(* ---- trace -------------------------------------------------------- *)

let trace_cmd =
  let run file kernel config unroll inject format out all no_cache verbose =
    handle_errors @@ fun () ->
    setup_logs verbose;
    let config = apply_inject inject (apply_score_cache no_cache config) in
    let config = Lslp_core.Config.with_trace true config in
    let validated_chrome ~what events ~func_name =
      let chrome =
        Lslp_trace.Trace.chrome_string ~meta:[ ("function", func_name) ]
          events
      in
      match Lslp_util.Json.of_string chrome with
      | Ok _ -> chrome
      | Error e ->
        failwith (Fmt.str "%s: chrome trace is not valid JSON: %s" what e)
    in
    if all then
      (* the whole catalog through every exporter, with the Chrome JSON
         re-parsed by the shared strict parser — the CI smoke test *)
      List.iter
        (fun (k : Lslp_kernels.Catalog.kernel) ->
          let f = Lslp_kernels.Catalog.compile k in
          ignore (Lslp_frontend.Unroll.run ~factor:unroll f);
          let report, _ = Lslp_core.Pipeline.run_cloned ~config f in
          let events = report.Lslp_core.Pipeline.trace_events in
          let chrome =
            validated_chrome ~what:k.key events
              ~func_name:f.Lslp_ir.Func.fname
          in
          let dot = Lslp_trace.Trace.to_dot events in
          let log = Lslp_trace.Trace.to_log events in
          if
            String.length chrome = 0
            || String.length dot = 0
            || String.length log = 0
          then failwith (Fmt.str "%s: empty trace export" k.key);
          Fmt.pr "%-26s %4d event(s): chrome ok, dot ok, log ok@." k.key
            (List.length events))
        Lslp_kernels.Catalog.all
    else begin
      let f = load_kernel ~unroll file kernel in
      let report, _ = Lslp_core.Pipeline.run_cloned ~config f in
      let events = report.Lslp_core.Pipeline.trace_events in
      let contents =
        match format with
        | Chrome ->
          validated_chrome ~what:"trace" events
            ~func_name:f.Lslp_ir.Func.fname
        | Dot -> Lslp_trace.Trace.to_dot events
        | Log -> Lslp_trace.Trace.to_log events
      in
      write_out (Option.value ~default:"-" out) contents
    end
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the trace to $(docv) instead of stdout.")
  in
  let all =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Trace every catalog kernel through all three exporters \
                   (validating the Chrome JSON) and print one summary line \
                   each; ignores FILE/--kernel/--out/--trace-format.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record the vectorizer's decision trace for a kernel and export \
          it as Chrome trace-event JSON (Perfetto), Graphviz DOT or a \
          decision log")
    Term.(const run $ file_arg $ kernel_arg $ config_arg $ unroll_arg
          $ inject_arg $ trace_format_arg $ out $ all $ no_score_cache_arg
          $ verbose_arg)

(* ---- stats -------------------------------------------------------- *)

let stats_cmd =
  let run config unroll no_cache json =
    handle_errors @@ fun () ->
    setup_logs false;
    let config = apply_score_cache no_cache config in
    let registry = Lslp_obs.Registry.create () in
    let pm = Lslp_telemetry.Pass_metrics.create ~root:"catalog" registry in
    let rows =
      List.map
        (fun (k : Lslp_kernels.Catalog.kernel) ->
          let f = Lslp_kernels.Catalog.compile k in
          ignore (Lslp_frontend.Unroll.run ~factor:unroll f);
          let report = Lslp_core.Pipeline.run ~metrics:pm ~config f in
          (k.key, report.Lslp_core.Pipeline.telemetry))
        Lslp_kernels.Catalog.all
    in
    if json then
      Fmt.pr "%s@."
        (Lslp_util.Json.to_string
           (Lslp_util.Json.Obj
              [
                ("schema", Lslp_util.Json.Str "lslp-catalog-stats/1");
                ( "kernels",
                  Lslp_util.Json.Arr
                    (List.map
                       (fun (_, t) -> Lslp_telemetry.Report.json t)
                       rows) );
                ( "metrics",
                  Lslp_obs.Export.json (Lslp_obs.Registry.snapshot registry)
                );
              ]))
    else begin
      (* one total row per kernel; timings stay on stderr *)
      Fmt.pr "=== catalog telemetry: %s ===@." config.Lslp_core.Config.name;
      Fmt.pr "%-26s" "kernel";
      List.iter
        (fun (name, _) -> Fmt.pr " %8s" name)
        Lslp_telemetry.Probe.counter_fields;
      Fmt.pr "@.";
      List.iter
        (fun (key, t) ->
          let c = Lslp_telemetry.Report.total_counters t in
          Fmt.pr "%-26s" key;
          List.iter
            (fun (_, get) -> Fmt.pr " %8d" (get c))
            Lslp_telemetry.Probe.counter_fields;
          Fmt.pr "@.")
        rows;
      (* step-count distributions over the catalog; deterministic, so they
         print to stdout with the counter table *)
      Fmt.pr "@.=== catalog step histograms: %s ===@.%a@."
        config.Lslp_core.Config.name Lslp_obs.Export.pp_table
        (Lslp_obs.Registry.snapshot registry);
      List.iter
        (fun (key, t) ->
          Fmt.epr "--- %s@.%a" key Lslp_telemetry.Report.pp_timers t)
        rows
    end
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one lslp-catalog-stats/1 document: per-kernel \
                   telemetry reports plus the aggregated metrics registry.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Vectorize the whole kernel catalog and tabulate the telemetry \
          counters (seeds, score evaluations, cache hits, graph nodes, \
          regions) and the per-pass step histograms")
    Term.(const run $ config_arg $ unroll_arg $ no_score_cache_arg $ json)

(* ---- fuzz --------------------------------------------------------- *)

let fuzz_cmd =
  let run cases seed config inject jobs json verbose =
    handle_errors @@ fun () ->
    setup_logs verbose;
    if jobs > 1 && config <> Some "cache-diff" && config <> Some "cond"
    then begin
      (* sharded on the service pool: every case derives from (seed, case)
         alone, then the whole run is replayed sequentially and compared
         case by case — sharding must be observationally invisible *)
      let forced =
        match config with
        | None -> None
        | Some s -> (
          match config_of_string s with
          | Ok c -> Some c
          | Error e -> failwith e)
      in
      let pool =
        { Lslp_service.Pool.default_config with domains = jobs;
          queue_cap = max 1 (jobs * 4) }
      in
      let outcomes =
        Lslp_service.Shard.run ?config:forced ?inject_spec:inject ~pool
          ~cases ~seed ()
      in
      let totals = Lslp_service.Shard.summarize outcomes in
      let mismatches =
        Lslp_service.Shard.check_against_sequential ?config:forced
          ?inject_spec:inject ~seed outcomes
      in
      Fmt.pr "fuzz: %d case(s): %d failure(s)@." totals.Lslp_service.Shard.cases
        (List.length totals.Lslp_service.Shard.failures);
      List.iter
        (fun (case, summary) -> Fmt.pr "case %d: %s@." case summary)
        totals.Lslp_service.Shard.failures;
      (match mismatches with
       | [] -> Fmt.pr "sharded determinism (%d domain(s)): OK@." jobs
       | ms ->
         List.iter
           (fun (m : Lslp_service.Shard.mismatch) ->
             Fmt.epr
               "case %d: sharded and sequential runs disagree@.  sharded:    \
                %s@.  sequential: %s@."
               m.case m.sharded m.sequential)
           ms;
         Fmt.epr "sharded determinism: FAILED (%d mismatch(es))@."
           (List.length ms));
      Fmt.epr
        "%d region(s) vectorized, %d degraded, %d/%d case(s) with faults, \
         %d pool failure(s)@."
        totals.Lslp_service.Shard.vectorized totals.Lslp_service.Shard.degraded
        totals.Lslp_service.Shard.injected_runs totals.Lslp_service.Shard.cases
        totals.Lslp_service.Shard.pool_failures;
      if totals.Lslp_service.Shard.failures <> [] || mismatches <> [] then
        exit 1
    end
    else begin
      let stats =
        match config with
        | Some "cache-diff" ->
          (* differential check of the memoized scorer: cache on vs off *)
          Lslp_fuzz.Fuzz.run_cache_diff ~cases ~seed ()
        | Some "cond" ->
          (* the branching arm: only masked-IR programs (guarded stores,
             selects, masked loads), configs still drawn from the pool *)
          Lslp_fuzz.Fuzz.run ~cases ~seed ~cond:true ?inject_spec:inject ()
        | Some s -> (
          match config_of_string s with
          | Ok c -> Lslp_fuzz.Fuzz.run ~cases ~seed ~config:c
                      ?inject_spec:inject ()
          | Error e -> failwith e)
        | None -> Lslp_fuzz.Fuzz.run ~cases ~seed ?inject_spec:inject ()
      in
      (* summary on stdout is stable per seed; the RNG-dependent counters go
         to stderr so cram tests can pin the former *)
      if json then Fmt.pr "%s@." (Lslp_fuzz.Fuzz.to_json stats)
      else Fmt.pr "%a@." Lslp_fuzz.Fuzz.pp_summary stats;
      Fmt.epr "%a@." Lslp_fuzz.Fuzz.pp_detail stats;
      if not (Lslp_fuzz.Fuzz.ok stats) then exit 1
    end
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the run's summary (cases, failures, counters) as a \
                   JSON document instead of the text summary.")
  in
  let cases =
    Arg.(value & opt int 500
         & info [ "cases" ] ~docv:"N" ~doc:"How many random programs to try.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Root seed; every case is reproducible from it.")
  in
  let config =
    let doc =
      "Pin one vectorizer configuration instead of drawing from the pool, \
       $(b,cache-diff) to differentially test the memoized look-ahead \
       scorer (cache on vs off must agree byte-for-byte), or $(b,cond) to \
       fuzz only branching masked-IR programs (guarded stores, selects, \
       masked loads) against the scalar oracle."
    in
    Arg.(value & opt (some string) None
         & info [ "c"; "config" ] ~docv:"CONFIG" ~doc)
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Shard the cases across N pool domains; the run is then \
                   replayed sequentially and compared case by case \
                   (sharding must be observationally invisible).  1 keeps \
                   the classic single-stream derivation.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random well-typed kernels through the \
          pipeline under random configurations (and injected faults), \
          checked against the scalar oracle")
    Term.(const run $ cases $ seed $ config $ inject_arg $ jobs $ json
          $ verbose_arg)

(* ---- batch -------------------------------------------------------- *)

(* "SPEC[@JOB]": an injection spec optionally targeted at one global job
   index.  Targeted specs arm only their job; an untargeted spec arms
   every job.  The first matching spec wins. *)
let parse_targeted_inject s =
  let split_target s =
    match String.rindex_opt s '@' with
    | Some k -> (
      let target = String.sub s (k + 1) (String.length s - k - 1) in
      match int_of_string_opt target with
      | Some job -> (String.sub s 0 k, Some job)
      | None -> (s, None))
    | None -> (s, None)
  in
  let spec, target = split_target s in
  match Lslp_robust.Inject.parse spec with
  | Ok i -> Ok (i, target)
  | Error e -> Error (`Msg e)

let targeted_inject_conv =
  let print ppf (i, target) =
    Fmt.pf ppf "%a%a" Lslp_robust.Inject.pp i
      Fmt.(option (fun ppf j -> Fmt.pf ppf "@@%d" j))
      target
  in
  Arg.conv (parse_targeted_inject, print)

let service_inject_args =
  let doc =
    "Arm deterministic fault injection, repeatable.  \
     PASS[:RATE[:SEED]][@JOB], where PASS additionally accepts the \
     service boundaries worker-raise, worker-hang, cache-poison, \
     queue-full and the set name $(b,service); @JOB targets one global \
     job index (round * kernels + position), otherwise every job is \
     armed."
  in
  Arg.(value & opt_all targeted_inject_conv []
       & info [ "inject" ] ~docv:"SPEC" ~doc)

let inject_for_of specs gidx =
  let rec pick = function
    | [] -> None
    | (i, Some j) :: _ when j = gidx -> Some i
    | (i, None) :: _ -> Some i
    | _ :: rest -> pick rest
  in
  (* targeted specs take precedence over a catch-all *)
  let targeted = List.filter (fun (_, t) -> t <> None) specs in
  match pick targeted with Some i -> Some i | None -> pick specs

let pool_config_of ~jobs ~queue_cap ~retries ~backoff ~deadline_steps =
  {
    Lslp_service.Pool.default_config with
    domains = jobs;
    queue_cap;
    retries;
    backoff;
    deadline_steps;
  }

let print_pool_stats s =
  Fmt.pr "%a@." Lslp_telemetry.Pool_stats.pp s

let batch_cmd =
  let run config unroll jobs queue_cap deadline_steps retries backoff cache
      repeat injects expect stats_flag stats_json metrics_out metrics_format
      flight_out trace_out trace_format verbose =
    handle_errors @@ fun () ->
    setup_logs verbose;
    let inject_for = inject_for_of injects in
    let pool =
      pool_config_of ~jobs ~queue_cap ~retries ~backoff ~deadline_steps
    in
    let svc =
      Lslp_service.Service.create ~cache ~trace:(trace_out <> None)
        ~inject_for ~pool config
    in
    let kernels = Lslp_kernels.Catalog.all in
    let job_array =
      Array.of_list
        (List.map
           (fun (k : Lslp_kernels.Catalog.kernel) ->
             { Lslp_service.Service.label = k.key; source = k.source; unroll })
           kernels)
    in
    let n = Array.length job_array in
    let rounds =
      List.init (max 1 repeat) (fun round ->
          Lslp_service.Service.batch ~index_base:(round * n) svc job_array)
    in
    let outcomes = Array.concat rounds in
    let ok = ref 0 and cached = ref 0 and failed = ref 0 in
    Array.iteri
      (fun gidx outcome ->
        let key = (List.nth kernels (gidx mod n)).Lslp_kernels.Catalog.key in
        match outcome with
        | Lslp_service.Pool.Done (s : Lslp_service.Service.success) ->
          incr ok;
          if s.from_cache then incr cached;
          if verbose then
            Fmt.epr "job %d %s: ok%s, %d region(s) vectorized@." gidx key
              (if s.from_cache then " (cached)" else "")
              s.vectorized
        | Lslp_service.Pool.Degraded_to_failure { attempts; failure } ->
          incr failed;
          Fmt.pr "job %d %s: degraded after %d attempt(s): %a@." gidx key
            attempts Lslp_service.Pool.pp_failure failure)
      outcomes;
    Fmt.pr "batch: %d round(s) x %d kernel(s) on %d domain(s): %d ok (%d \
            from cache), %d degraded@."
      (max 1 repeat) n jobs !ok !cached !failed;
    if stats_flag then begin
      print_pool_stats (Lslp_service.Service.stats svc);
      Fmt.pr "%a@." Lslp_obs.Export.pp_table
        (Lslp_obs.Registry.snapshot (Lslp_service.Service.registry svc))
    end;
    (* the full registry — pool counters including shed/retry, cache
       counters, histograms and pipeline counters — not just the flat
       pool table *)
    if stats_json then
      Fmt.pr "%s@."
        (Lslp_util.Json.to_string
           (Lslp_obs.Export.json
              (Lslp_obs.Registry.snapshot (Lslp_service.Service.registry svc))));
    Option.iter
      (fun path ->
        write_out path
          (render_registry ~format:metrics_format
             (Lslp_service.Service.registry svc)))
      metrics_out;
    Option.iter
      (fun path ->
        write_out path
          (Lslp_obs.Flight.to_jsonl (Lslp_service.Service.flight svc)))
      flight_out;
    Option.iter
      (fun path ->
        let events = Lslp_service.Service.trace_events svc in
        write_out path
          (match trace_format with
           | Chrome ->
             Lslp_trace.Trace.chrome_string ~meta:[ ("service", "batch") ]
               events
           | Dot -> Lslp_trace.Trace.to_dot events
           | Log -> Lslp_trace.Trace.to_log events))
      trace_out;
    match expect with
    | None -> if !failed > 0 && injects = [] then exit 1
    | Some want ->
      let got = Lslp_service.Service.degradations svc outcomes in
      if got <> want then begin
        Fmt.epr
          "batch: expected %d degradation(s) (failures + cache evictions), \
           got %d@."
          want got;
        exit 1
      end
      else Fmt.pr "degradations: %d (as expected)@." got
  in
  let jobs =
    Arg.(value & opt int 4
         & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains in the pool.")
  in
  let queue_cap =
    Arg.(value & opt int 64
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Ready-queue bound; admission blocks while full \
                   (backpressure).")
  in
  let deadline_steps =
    Arg.(value & opt (some int) None
         & info [ "deadline-steps" ] ~docv:"K"
             ~doc:"Cooperative per-job deadline: cancel a compile after K \
                   pass-boundary ticks.  Off by default.")
  in
  let retries =
    Arg.(value & opt int 2
         & info [ "retries" ] ~docv:"R"
             ~doc:"Re-queue a crashed or timed-out job up to R times \
                   (deterministic exponential backoff) before recording a \
                   typed failure.")
  in
  let backoff =
    Arg.(value & opt int 2
         & info [ "backoff" ] ~docv:"T"
             ~doc:"Base retry delay in virtual scheduling ticks; doubles \
                   per attempt.")
  in
  let cache =
    Arg.(value & opt (enum [ ("on", true); ("off", false) ]) true
         & info [ "cache" ] ~docv:"on|off"
             ~doc:"Content-addressed result cache; every hit is re-verified \
                   by the legality validator before reuse.")
  in
  let repeat =
    Arg.(value & opt int 1
         & info [ "repeat" ] ~docv:"N"
             ~doc:"Submit the catalog N times as sequential rounds sharing \
                   the cache — round 2+ exercises the warm path.")
  in
  let expect =
    Arg.(value & opt (some int) None
         & info [ "expect-degradations" ] ~docv:"N"
             ~doc:"Exit non-zero unless failures + cache evictions equal \
                   exactly N (the fault-survival smoke gate).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Dump the metrics registry (counters, gauges, \
                   histograms) to $(docv) ($(b,-) for stdout) after the \
                   batch.  Virtual ticks and step counts only — with \
                   --jobs 1 the dump is byte-reproducible.")
  in
  let flight_out =
    Arg.(value & opt (some string) None
         & info [ "flight-out" ] ~docv:"FILE"
             ~doc:"Dump the flight recorder (per-job lifecycle events \
                   with attempt seeds and cache outcomes) as JSONL to \
                   $(docv) ($(b,-) for stdout).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Compile the kernel catalog as a batch on the fault-isolated \
          Domain-pool service: deadlines, retries, backpressure and a \
          verified result cache")
    Term.(const run $ config_arg $ unroll_arg $ jobs $ queue_cap
          $ deadline_steps $ retries $ backoff $ cache $ repeat
          $ service_inject_args $ expect $ stats_arg $ stats_json_arg
          $ metrics_out $ metrics_format_arg $ flight_out
          $ trace_out_arg $ trace_format_arg $ verbose_arg)

(* ---- domains ------------------------------------------------------ *)

(* The domain-safety proof behind the compile service, now running ON the
   service's pool: compile the full catalog once sequentially, then
   [--jobs] more times as concurrent pool jobs, and require every copy to
   reproduce the sequential IR, remarks and telemetry counters exactly.
   Instruction ids come from a process-global Atomic so raw ids differ run
   to run — Fuzz.normalize_ids alpha-renames them by first appearance,
   which is exactly the invariant we promise: same structure, any
   numbering.  The id-watermark leak check runs inside every job: ids are
   globally monotone across domains, so output ids outside the job's own
   [low, high) window mean an arena compact index leaked into the IR. *)
let domains_cmd =
  let run config unroll jobs verbose =
    handle_errors @@ fun () ->
    setup_logs verbose;
    let config =
      Lslp_core.Config.(config |> with_remarks true |> with_validate true)
    in
    let snapshot (k : Lslp_kernels.Catalog.kernel) =
      let low = Lslp_ir.Instr.id_watermark () in
      let f = Lslp_kernels.Catalog.compile k in
      ignore (Lslp_frontend.Unroll.run ~factor:unroll f);
      let report, g = Lslp_core.Pipeline.run_cloned ~config f in
      let high = Lslp_ir.Instr.id_watermark () in
      List.iter
        (fun b ->
          Lslp_ir.Block.iter
            (fun (i : Lslp_ir.Instr.t) ->
              if i.Lslp_ir.Instr.id < low || i.Lslp_ir.Instr.id >= high then
                failwith
                  (Fmt.str
                     "%s: instruction id %d outside [%d, %d): arena \
                      compact index leaked into the IR"
                     k.key i.Lslp_ir.Instr.id low high))
            b)
        (Lslp_ir.Func.blocks g);
      let ir =
        Lslp_fuzz.Fuzz.normalize_ids
          (Fmt.str "%a" Lslp_ir.Printer.pp_func g)
      in
      let remarks =
        Lslp_fuzz.Fuzz.normalize_ids
          (Fmt.str "%a"
             Fmt.(list ~sep:(any "@.") Lslp_check.Remark.pp)
             report.Lslp_core.Pipeline.remarks)
      in
      let counters =
        let c =
          Lslp_telemetry.Report.total_counters
            report.Lslp_core.Pipeline.telemetry
        in
        String.concat ","
          (List.map
             (fun (name, get) -> Fmt.str "%s=%d" name (get c))
             Lslp_telemetry.Probe.counter_fields)
      in
      (k.key, ir, remarks, counters)
    in
    let kernels = Array.of_list Lslp_kernels.Catalog.all in
    let nk = Array.length kernels in
    let baseline = Array.map snapshot kernels in
    (* every (copy, kernel) pair is one pool job; a watermark leak raises
       and surfaces as a typed pool failure instead of a mystery hang *)
    let pool_jobs =
      Array.init (jobs * nk) (fun idx ->
          let k = kernels.(idx mod nk) in
          ( Fmt.str "%s#%d" k.Lslp_kernels.Catalog.key (idx / nk),
            fun ~inject:_ ~deadline:_ -> snapshot k ))
    in
    let pool =
      {
        Lslp_service.Pool.default_config with
        domains = jobs;
        queue_cap = max 1 (jobs * 2);
        retries = 0;
      }
    in
    let outcomes = Lslp_service.Pool.run pool pool_jobs in
    let mismatches = ref [] in
    let hard_failures = ref [] in
    Array.iteri
      (fun idx outcome ->
        let copy = idx / nk in
        let key, ir, rem, ctr = baseline.(idx mod nk) in
        match outcome with
        | Lslp_service.Pool.Degraded_to_failure { failure; _ } ->
          hard_failures :=
            (copy, key, Fmt.str "%a" Lslp_service.Pool.pp_failure failure)
            :: !hard_failures
        | Lslp_service.Pool.Done (key', ir', rem', ctr') ->
          assert (key = key');
          if ir <> ir' then mismatches := (copy, key, "IR") :: !mismatches;
          if rem <> rem' then
            mismatches := (copy, key, "remarks") :: !mismatches;
          if ctr <> ctr' then
            mismatches := (copy, key, "counters") :: !mismatches)
      outcomes;
    match (List.rev !hard_failures, List.rev !mismatches) with
    | [], [] ->
      Fmt.pr "domain smoke: %d domain(s) x %d kernel(s) x %s: OK@." jobs nk
        config.Lslp_core.Config.name
    | fails, ms ->
      List.iter
        (fun (copy, key, msg) ->
          Fmt.epr "copy %d: %s: job failed: %s@." copy key msg)
        fails;
      List.iter
        (fun (copy, key, what) ->
          Fmt.epr "copy %d: %s: %s diverged from sequential baseline@." copy
            key what)
        ms;
      Fmt.epr "domain smoke: FAILED (%d divergence(s), %d failure(s))@."
        (List.length ms) (List.length fails);
      exit 1
  in
  let jobs =
    Arg.(value & opt int 8
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"How many concurrent catalog copies (= pool domains) to \
                   compile.")
  in
  Cmd.v
    (Cmd.info "domains"
       ~doc:
         "Domain-pool determinism smoke: compile the whole catalog on N \
          concurrent domains of the service pool and require bit-identical \
          (alpha-renamed) IR, remarks and counters versus the sequential \
          baseline")
    Term.(const run $ config_arg $ unroll_arg $ jobs $ verbose_arg)

(* ---- profile ------------------------------------------------------ *)

(* Compile-time profiling in the deterministic unit: probe steps at the
   instrumented pass boundaries, not wall clock.  catalog x reps through
   Pipeline.run feeding one registry; the percentile table and the
   folded stacks are byte-reproducible, so perf work can diff them in CI
   the way `make bench-check` diffs counters (the fig14 compile-time
   hunt's instrument). *)
let profile_cmd =
  let run config unroll reps kernel no_cache folded_out metrics_out
      metrics_format =
    handle_errors @@ fun () ->
    setup_logs false;
    let config = apply_score_cache no_cache config in
    let registry = Lslp_obs.Registry.create () in
    let pm = Lslp_telemetry.Pass_metrics.create ~root:"profile" registry in
    let kernels =
      match kernel with
      | None -> Lslp_kernels.Catalog.all
      | Some key -> [ Lslp_kernels.Catalog.find key ]
    in
    let reps = max 1 reps in
    for _rep = 1 to reps do
      List.iter
        (fun (k : Lslp_kernels.Catalog.kernel) ->
          let f = Lslp_kernels.Catalog.compile k in
          ignore (Lslp_frontend.Unroll.run ~factor:unroll f);
          ignore (Lslp_core.Pipeline.run ~metrics:pm ~config f))
        kernels
    done;
    Fmt.pr "=== profile: %d kernel(s) x %d rep(s), config %s ===@."
      (List.length kernels) reps config.Lslp_core.Config.name;
    Fmt.pr "%a@." Lslp_obs.Export.pp_table
      (Lslp_obs.Registry.snapshot registry);
    Option.iter
      (fun path -> write_out path (Lslp_telemetry.Pass_metrics.folded pm))
      folded_out;
    Option.iter
      (fun path ->
        write_out path (render_registry ~format:metrics_format registry))
      metrics_out
  in
  let reps =
    Arg.(value & opt int 1
         & info [ "reps" ] ~docv:"N"
             ~doc:"Compile the kernel set N times (histogram sample size).")
  in
  let kernel =
    Arg.(value & opt (some string) None
         & info [ "kernel" ] ~docv:"KEY"
             ~doc:"Profile one catalog kernel instead of the whole catalog.")
  in
  let folded_out =
    Arg.(value & opt (some string) None
         & info [ "folded-out" ] ~docv:"FILE"
             ~doc:"Write folded stacks (profile;func;block;pass steps) to \
                   $(docv) ($(b,-) for stdout) — flamegraph.pl dialect.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Dump the profile registry to $(docv) ($(b,-) for \
                   stdout).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile compile cost in deterministic pass-boundary steps: \
          catalog x N compiles into per-pass step histograms (percentile \
          table) and flamegraph-compatible folded stacks")
    Term.(const run $ config_arg $ unroll_arg $ reps $ kernel
          $ no_score_cache_arg $ folded_out $ metrics_out
          $ metrics_format_arg)

(* ---- metrics-verify ----------------------------------------------- *)

(* The metrics-smoke gate's second half: prove a dump parses and that its
   degradation counters add up to the expected count.  "Degradations"
   here is the same sum `--expect-degradations` gates on the batch side:
   jobs failed + jobs shed + cache evictions. *)
let metrics_verify_cmd =
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let counter_of_json doc name =
    match Lslp_util.Json.member "metrics" doc with
    | Some (Lslp_util.Json.Arr ms) ->
      List.find_map
        (fun m ->
          match
            (Lslp_util.Json.member "name" m, Lslp_util.Json.member "value" m)
          with
          | Some (Lslp_util.Json.Str n), Some v when n = name ->
            Lslp_util.Json.to_int_opt v
          | _ -> None)
        ms
    | _ -> None
  in
  let run file format expect =
    handle_errors @@ fun () ->
    setup_logs false;
    let contents = read_file file in
    let die fmt =
      Fmt.kstr
        (fun s ->
          Fmt.epr "metrics-verify: %s: %s@." file s;
          exit 1)
        fmt
    in
    let counter =
      match format with
      | Prom -> (
        match Lslp_obs.Export.parse_prometheus contents with
        | Error e -> die "%s" e
        | Ok samples ->
          Fmt.pr "metrics-verify: %d sample(s) parsed@."
            (List.length samples);
          fun name ->
            (match Lslp_obs.Export.sample_value samples name with
             | Some v -> int_of_float v
             | None -> die "missing counter %s" name))
      | Mjson -> (
        match Lslp_util.Json.of_string contents with
        | Error e -> die "%s" e
        | Ok doc ->
          Fmt.pr "metrics-verify: document parsed@.";
          fun name ->
            (match counter_of_json doc name with
             | Some v -> v
             | None -> die "missing counter %s" name))
    in
    let failed = counter "lslp_jobs_failed_total" in
    let shed = counter "lslp_jobs_shed_total" in
    let evicted = counter "lslp_cache_evicted_total" in
    let degradations = failed + shed + evicted in
    match expect with
    | Some want when want <> degradations ->
      Fmt.epr
        "metrics-verify: expected %d degradation(s), got %d (failed %d + \
         shed %d + evicted %d)@."
        want degradations failed shed evicted;
      exit 1
    | Some _ ->
      Fmt.pr "metrics-verify: degradations %d (as expected)@." degradations
    | None ->
      Fmt.pr
        "metrics-verify: degradations %d (failed %d + shed %d + evicted \
         %d)@."
        degradations failed shed evicted
  in
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"A metrics dump written by batch --metrics-out.")
  in
  let expect =
    Arg.(value & opt (some int) None
         & info [ "expect-degradations" ] ~docv:"N"
             ~doc:"Exit non-zero unless failed + shed + evicted counters \
                   sum to exactly N.")
  in
  Cmd.v
    (Cmd.info "metrics-verify"
       ~doc:
         "Parse a metrics dump (Prometheus text or lslp-metrics/1 JSON) \
          and check its degradation counters — the CI half of \
          make metrics-smoke")
    Term.(const run $ file $ metrics_format_arg $ expect)

(* ---- kernels ------------------------------------------------------ *)

let kernels_cmd =
  let run () =
    List.iter
      (fun (k : Lslp_kernels.Catalog.kernel) ->
        Fmt.pr "%-26s %-12s %s@." k.key k.benchmark k.origin)
      Lslp_kernels.Catalog.all
  in
  Cmd.v
    (Cmd.info "kernels" ~doc:"List the built-in kernel catalog")
    Term.(const run $ const ())

(* ---- show --------------------------------------------------------- *)

let show_cmd =
  let run key =
    handle_errors @@ fun () ->
    let k = Lslp_kernels.Catalog.find key in
    Fmt.pr "// %s (%s, %s)%s@."
      k.key k.benchmark k.origin k.source;
    let f = Lslp_kernels.Catalog.compile k in
    Fmt.pr "@.%a@." Lslp_ir.Printer.pp_func f
  in
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a catalog kernel's source and scalar IR")
    Term.(const run $ key)

let () =
  let info =
    Cmd.info "lslpc" ~version:"1.0.0"
      ~doc:"Look-ahead SLP vectorizing compiler for the kernel language"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; run_cmd; analyze_cmd; trace_cmd; stats_cmd;
            fuzz_cmd; batch_cmd; domains_cmd; profile_cmd;
            metrics_verify_cmd; kernels_cmd; show_cmd ]))
