(* A tour of the evaluation kernels (the paper's Table 2).

   For every kernel in the catalog, run the three vectorizer configurations
   and print the static cost (Figure 10's metric) and the simulated speedup
   over scalar code (Figure 9's metric).

   Run with:  dune exec examples/kernel_tour.exe *)

open Lslp_core
open Lslp_kernels

let () =
  Fmt.pr "%-26s | %21s | %21s | %21s@." "kernel" "SLP-NR" "SLP" "LSLP";
  Fmt.pr "%-26s | %10s %10s | %10s %10s | %10s %10s@." "" "cost" "speedup"
    "cost" "speedup" "cost" "speedup";
  Fmt.pr "%s@." (String.make 100 '-');
  List.iter
    (fun (k : Catalog.kernel) ->
      let scalar = Catalog.compile k in
      Fmt.pr "%-26s" k.key;
      List.iter
        (fun config ->
          let report, transformed = Pipeline.run_cloned ~config scalar in
          let outcome =
            Lslp_interp.Oracle.compare_runs ~reference:scalar
              ~candidate:transformed ()
          in
          assert (outcome.mismatches = []);
          Fmt.pr " | %+10d %9.2fx" report.Pipeline.total_cost
            (float_of_int outcome.reference_cycles
            /. float_of_int (max 1 outcome.candidate_cycles)))
        [ Config.slp_nr; Config.slp; Config.lslp ];
      Fmt.pr "@.")
    Catalog.table2
