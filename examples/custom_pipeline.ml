(* Driving the library below the Pipeline facade.

   This example builds IR directly with the Builder API (no kernel-language
   source involved), then runs each pass stage by hand: seed collection,
   graph construction, cost evaluation, code generation, DCE — printing the
   intermediate artifacts.  This is the integration surface a downstream
   compiler would use to embed LSLP as a pass.

   Run with:  dune exec examples/custom_pipeline.exe *)

open Lslp_ir
open Lslp_core

(* Build the paper's Figure 2 example by hand:
     A[i+0] = (B[i+0] << 1) & (C[i+0] << 2)
     A[i+1] = (C[i+1] << 3) & (B[i+1] << 4)   *)
let build_figure2 () =
  let b =
    Builder.create ~name:"figure2"
      ~args:
        [ ("A", Instr.Array_arg Types.I64); ("B", Instr.Array_arg Types.I64);
          ("C", Instr.Array_arg Types.I64); ("i", Instr.Int_arg) ]
  in
  let lane0 =
    let ld_b = Builder.load b ~base:"B" (Builder.idx 0) in
    let ld_c = Builder.load b ~base:"C" (Builder.idx 0) in
    let shl1 = Builder.binop b Opcode.Shl ld_b (Builder.iconst 1) in
    let shl2 = Builder.binop b Opcode.Shl ld_c (Builder.iconst 2) in
    Builder.binop b Opcode.And shl1 shl2
  in
  Builder.store b ~base:"A" (Builder.idx 0) lane0;
  let lane1 =
    let ld_c = Builder.load b ~base:"C" (Builder.idx 1) in
    let ld_b = Builder.load b ~base:"B" (Builder.idx 1) in
    let shl3 = Builder.binop b Opcode.Shl ld_c (Builder.iconst 3) in
    let shl4 = Builder.binop b Opcode.Shl ld_b (Builder.iconst 4) in
    Builder.binop b Opcode.And shl3 shl4
  in
  Builder.store b ~base:"A" (Builder.idx 1) lane1;
  Builder.func b

let () =
  let f = build_figure2 () in
  Verifier.verify_exn f;
  Fmt.pr "=== hand-built IR ===@.%a@.@." Printer.pp_func f;

  let config = Config.lslp in

  (* Stage 1: seed discovery — runs of adjacent stores. *)
  let seeds = Seeds.collect config (Func.entry f) in
  Fmt.pr "found %d seed group(s)@." (List.length seeds);
  let seed = List.hd seeds in

  (* Stage 2: graph construction (multi-nodes + look-ahead reordering). *)
  let graph, root = Graph_builder.build config (Func.entry f) seed in
  Fmt.pr "@.=== LSLP graph ===@.%a@.@." (Graph.pp_node graph) root;

  (* Stage 3: cost evaluation against the TTI-style model. *)
  let cost = Cost.evaluate config graph (Func.entry f) in
  Fmt.pr "=== cost ===@.%a@.@." Cost.pp_summary cost;
  assert (Cost.profitable config cost);

  (* Stage 4: code generation + cleanup. *)
  (match Codegen.run graph (Func.entry f) with
   | Codegen.Vectorized -> ()
   | Codegen.Not_schedulable -> failwith "unexpectedly unschedulable"
   | Codegen.Failed msg -> failwith ("codegen failed: " ^ msg));
  Verifier.verify_exn f;
  Fmt.pr "=== vectorized IR ===@.%a@.@." Printer.pp_func f;

  (* The same stages are also exercised by custom configurations, e.g. a
     128-bit target with a shallow look-ahead: *)
  let narrow =
    Config.lslp_la 2
    |> Config.with_model Lslp_costmodel.Model.sse_like
    |> Config.with_threshold 1
  in
  let g = build_figure2 () in
  let report = Pipeline.run ~config:narrow g in
  Fmt.pr "=== %s on a 128-bit target ===@.%a@."
    narrow.Config.name Pipeline.pp_report report
