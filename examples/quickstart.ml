(* Quickstart: compile a kernel, vectorize it with LSLP, inspect the result.

   Run with:  dune exec examples/quickstart.exe *)

let source = {|
kernel saxpy2(f64 Y[], f64 X[], f64 A[], i64 i) {
  Y[2*i+0] = A[2*i+0] * X[2*i+0] + Y[2*i+0];
  Y[2*i+1] = X[2*i+1] * A[2*i+1] + Y[2*i+1];
}
|}

let () =
  (* 1. Parse + type-check + lower the kernel language to straight-line IR. *)
  let scalar = Lslp_frontend.Lower.compile_string source in
  Fmt.pr "=== scalar IR ===@.%a@.@." Lslp_ir.Printer.pp_func scalar;

  (* 2. Run the LSLP pass on a clone (the scalar stays usable as the
     reference for differential testing). *)
  let report, vectorized =
    Lslp_core.Pipeline.run_cloned ~config:Lslp_core.Config.lslp scalar
  in
  Fmt.pr "=== pass report ===@.%a@.@." Lslp_core.Pipeline.pp_report report;
  Fmt.pr "=== vectorized IR ===@.%a@.@." Lslp_ir.Printer.pp_func vectorized;

  (* 3. The IR verifier should accept the transformed function. *)
  Lslp_ir.Verifier.verify_exn vectorized;

  (* 4. Execute both versions on identical random inputs: same memory
     afterwards, and the simulator reports the cycle ratio. *)
  let outcome =
    Lslp_interp.Oracle.compare_runs ~reference:scalar ~candidate:vectorized ()
  in
  assert (outcome.mismatches = []);
  Fmt.pr "scalar: %d cycles, vectorized: %d cycles, speedup %.2fx@."
    outcome.reference_cycles outcome.candidate_cycles
    (float_of_int outcome.reference_cycles
    /. float_of_int (max 1 outcome.candidate_cycles))
