(* Horizontal reductions: the other seed idiom (paper §2.2).

   A dot-product-style accumulation chain is rewritten as wide loads, one
   element-wise multiply, a horizontal reduce, and a scalar tail.

   Run with:  dune exec examples/reduction_demo.exe *)

open Lslp_core

let source = {|
kernel dot8(f64 S[], f64 A[], f64 B[], i64 i) {
  S[i] = A[8*i+0] * B[8*i+0] + A[8*i+1] * B[8*i+1]
       + A[8*i+2] * B[8*i+2] + A[8*i+3] * B[8*i+3]
       + (A[8*i+4] * B[8*i+4] + A[8*i+5] * B[8*i+5])
       + A[8*i+6] * B[8*i+6] + A[8*i+7] * B[8*i+7]
       + 0.5;
}
|}

let () =
  let scalar = Lslp_frontend.Lower.compile_string source in
  Fmt.pr "=== scalar (17 instructions of accumulation) ===@.%a@.@."
    Lslp_ir.Printer.pp_func scalar;

  (* The candidates the detector sees: one fadd chain with 8 product leaves
     (associativity differences in the source are irrelevant — the chain
     walker collects the whole tree). *)
  List.iter
    (fun (c : Reduction.candidate) ->
      Fmt.pr "candidate: %s chain of %d ops, %d leaves@."
        (Lslp_ir.Opcode.binop_name c.cand_op)
        (List.length c.cand_chain)
        (List.length c.cand_leaves))
    (Reduction.collect_candidates (Lslp_ir.Func.entry scalar));

  let vectorized = Lslp_ir.Func.clone scalar in
  let regions = Reduction.run ~config:Config.lslp (Lslp_ir.Func.entry vectorized) in
  List.iter
    (fun (r : Reduction.region) ->
      Fmt.pr "%s: W=%d, cost %+d, %s@." r.root_desc r.lanes r.cost
        (if r.vectorized then "vectorized" else "kept scalar"))
    regions;
  Fmt.pr "@.=== vectorized ===@.%a@.@." Lslp_ir.Printer.pp_func vectorized;

  Lslp_ir.Verifier.verify_exn vectorized;
  let o =
    Lslp_interp.Oracle.compare_runs ~reference:scalar ~candidate:vectorized ()
  in
  assert (o.mismatches = []);
  Fmt.pr "simulated: %d -> %d cycles (%.2fx)@." o.reference_cycles
    o.candidate_cycles
    (float_of_int o.reference_cycles /. float_of_int o.candidate_cycles)
