(* The paper's three motivating examples (Section 3), reproduced.

   For each example we run SLP-NR, SLP and LSLP and print the static cost
   each algorithm assigns to the region.  The expected numbers are the ones
   printed in Figures 2-4 of the paper:

     Figure 2 (load address mismatch):  SLP  0 (not vectorized), LSLP  -6
     Figure 3 (opcode mismatch):        SLP +4 (not vectorized), LSLP  -2
     Figure 4 (associativity mismatch): SLP -2 (partial),        LSLP -10

   Run with:  dune exec examples/motivating_examples.exe *)

open Lslp_core
open Lslp_kernels

let show key expected_slp expected_lslp =
  let kernel = Catalog.find key in
  Fmt.pr "==================================================@.";
  Fmt.pr "%s (%s, %s)@." kernel.key kernel.benchmark kernel.origin;
  Fmt.pr "%s@." kernel.source;
  let scalar = Catalog.compile kernel in
  List.iter
    (fun config ->
      let report, transformed = Pipeline.run_cloned ~config scalar in
      let cost =
        List.fold_left
          (fun acc (r : Pipeline.region) -> acc + r.cost.Cost.total)
          0 report.regions
      in
      Fmt.pr "%-8s cost %+d  %s@." config.Config.name cost
        (if report.vectorized_regions > 0 then "vectorized" else "kept scalar");
      Lslp_ir.Verifier.verify_exn transformed;
      assert (Lslp_interp.Oracle.equivalent ~reference:scalar
                ~candidate:transformed ()))
    [ Config.slp_nr; Config.slp; Config.lslp ];
  Fmt.pr "(paper: SLP %+d, LSLP %+d)@.@." expected_slp expected_lslp

let () =
  show "motivation-loads" 0 (-6);
  show "motivation-opcodes" 4 (-2);
  show "motivation-multi" (-2) (-10);
  (* And the graphs themselves, for the LSLP runs: *)
  List.iter
    (fun key ->
      let f = Catalog.compile_key key in
      match Seeds.collect Config.lslp (Lslp_ir.Func.entry f) with
      | [ seed ] ->
        let graph, _ = Graph_builder.build Config.lslp (Lslp_ir.Func.entry f) seed in
        Fmt.pr "=== LSLP graph for %s ===@.%a@.@." key Graph.pp graph
      | _ -> assert false)
    [ "motivation-loads"; "motivation-opcodes"; "motivation-multi" ]
