(** Pipeline-side metrics: {!Probe} reports folded into an
    {!Lslp_obs.Registry}.

    {!observe} takes a finished {!Report.t} and feeds (a) the nine
    deterministic pipeline counters as [lslp_pipeline_*_total], (b) a
    total-steps-per-run histogram [lslp_job_pass_steps], (c) one
    [lslp_pass_steps{pass=...}] histogram per instrumented pass boundary,
    and (d) folded stacks ["root;func;block;pass steps"].

    "Steps" are probe span call counts — the unit the service deadline
    ticks in — never wall-clock, so everything here is a pure function of
    (input, config) and byte-reproducible.  Known passes are
    pre-registered in pipeline order so exposition layout is independent
    of scheduling.  Safe to share across pool worker domains. *)

type t

val known_passes : string list
(** The instrumented pass boundaries, in pipeline order. *)

val create : ?root:string -> Lslp_obs.Registry.t -> t
(** [root] (default ["lslp"]) becomes the first folded-stack frame. *)

val registry : t -> Lslp_obs.Registry.t

val observe : t -> Report.t -> unit
(** Fold one finished report in.  Never raises. *)

val stacks : t -> (string * int) list
(** Accumulated folded stacks, sorted. *)

val folded : t -> string
(** {!stacks} rendered in flamegraph.pl dialect. *)
