(** Aggregated telemetry for one pipeline run: per-block snapshots plus a
    function-wide total.

    {!pp_counters} renders the deterministic counter table (pin it in
    golden tests); {!pp_timers} renders wall-clock pass timings (send it
    to stderr); {!to_json} carries both. *)

type t = {
  func : string;
  config : string;
  blocks : (string * Probe.snapshot) list;
  total : Probe.snapshot;
}

val make : func:string -> config:string -> (string * Probe.snapshot) list -> t
(** [make ~func ~config blocks] computes the total as the pointwise sum. *)

val empty : func:string -> config:string -> t

val total_counters : t -> Probe.counters

val pp_counters : t Fmt.t
(** Deterministic counter table, one row per block plus a total row. *)

val pp_timers : t Fmt.t
(** Wall-clock per-pass timings of the whole function; not deterministic. *)

val json : t -> Lslp_util.Json.t
(** The report (counters and timers) as a {!Lslp_util.Json} value. *)

val to_json : t -> string
(** {!json} rendered minified. *)
