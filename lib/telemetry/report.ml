(* Aggregated telemetry: per-block probe snapshots plus their sum.

   Rendering discipline (shared with the fuzzer's summary/detail split):
   counters are deterministic and go to stdout so cram tests can pin them;
   timers are wall-clock and render through a separate printer the CLI
   sends to stderr.  The JSON document carries both. *)

type t = {
  func : string;
  config : string;
  blocks : (string * Probe.snapshot) list;  (* block label, in block order *)
  total : Probe.snapshot;
}

let make ~func ~config blocks =
  { func; config; blocks; total = Probe.merge (List.map snd blocks) }

let empty ~func ~config =
  { func; config; blocks = []; total = Probe.empty_snapshot }

let total_counters t = t.total.Probe.s_counters

(* ---- human rendering --------------------------------------------- *)

let pp_row ppf label (c : Probe.counters) =
  Fmt.pf ppf "%-10s" label;
  List.iter (fun (_, get) -> Fmt.pf ppf " %8d" (get c)) Probe.counter_fields

let pp_counters ppf t =
  Fmt.pf ppf "=== telemetry: %s, %s ===@." t.config t.func;
  Fmt.pf ppf "%-10s" "block";
  List.iter (fun (name, _) -> Fmt.pf ppf " %8s" name) Probe.counter_fields;
  Fmt.pf ppf "@.";
  List.iter
    (fun (label, (s : Probe.snapshot)) ->
      pp_row ppf label s.Probe.s_counters;
      Fmt.pf ppf "@.")
    t.blocks;
  pp_row ppf "total" t.total.Probe.s_counters;
  Fmt.pf ppf "@."

let pp_timers ppf t =
  Fmt.pf ppf "=== pass timings (wall clock, %s) ===@." t.config;
  match t.total.Probe.s_timers with
  | [] -> Fmt.pf ppf "(no timed passes)@."
  | timers ->
    List.iter
      (fun (pass, seconds, calls) ->
        Fmt.pf ppf "%-14s %6d call(s) %12.6fs@." pass calls seconds)
      timers

(* ---- JSON (hand-rolled, same style as Lslp_check.Remark) ----------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let counters_to_json (c : Probe.counters) =
  Fmt.str "{%s}"
    (String.concat ","
       (List.map
          (fun (name, get) -> Fmt.str "\"%s\":%d" name (get c))
          Probe.counter_fields))

let snapshot_to_json (s : Probe.snapshot) =
  Fmt.str "{\"counters\":%s,\"timers\":[%s]}"
    (counters_to_json s.Probe.s_counters)
    (String.concat ","
       (List.map
          (fun (pass, seconds, calls) ->
            Fmt.str "{\"pass\":\"%s\",\"calls\":%d,\"seconds\":%.9f}"
              (json_escape pass) calls seconds)
          s.Probe.s_timers))

let to_json t =
  Fmt.str "{\"config\":\"%s\",\"function\":\"%s\",\"blocks\":[%s],\"total\":%s}"
    (json_escape t.config) (json_escape t.func)
    (String.concat ","
       (List.map
          (fun (label, s) ->
            Fmt.str "{\"block\":\"%s\",%s"
              (json_escape label)
              (let body = snapshot_to_json s in
               (* splice the snapshot's fields into the block object *)
               String.sub body 1 (String.length body - 1)))
          t.blocks))
    (snapshot_to_json t.total)
