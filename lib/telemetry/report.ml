(* Aggregated telemetry: per-block probe snapshots plus their sum.

   Rendering discipline (shared with the fuzzer's summary/detail split):
   counters are deterministic and go to stdout so cram tests can pin them;
   timers are wall-clock and render through a separate printer the CLI
   sends to stderr.  The JSON document carries both. *)

type t = {
  func : string;
  config : string;
  blocks : (string * Probe.snapshot) list;  (* block label, in block order *)
  total : Probe.snapshot;
}

let make ~func ~config blocks =
  { func; config; blocks; total = Probe.merge (List.map snd blocks) }

let empty ~func ~config =
  { func; config; blocks = []; total = Probe.empty_snapshot }

let total_counters t = t.total.Probe.s_counters

(* ---- human rendering --------------------------------------------- *)

let pp_row ppf label (c : Probe.counters) =
  Fmt.pf ppf "%-10s" label;
  List.iter (fun (_, get) -> Fmt.pf ppf " %8d" (get c)) Probe.counter_fields

let pp_counters ppf t =
  Fmt.pf ppf "=== telemetry: %s, %s ===@." t.config t.func;
  Fmt.pf ppf "%-10s" "block";
  List.iter (fun (name, _) -> Fmt.pf ppf " %8s" name) Probe.counter_fields;
  Fmt.pf ppf "@.";
  List.iter
    (fun (label, (s : Probe.snapshot)) ->
      pp_row ppf label s.Probe.s_counters;
      Fmt.pf ppf "@.")
    t.blocks;
  pp_row ppf "total" t.total.Probe.s_counters;
  Fmt.pf ppf "@."

let pp_timers ppf t =
  Fmt.pf ppf "=== pass timings (wall clock, %s) ===@." t.config;
  match t.total.Probe.s_timers with
  | [] -> Fmt.pf ppf "(no timed passes)@."
  | timers ->
    List.iter
      (fun (pass, seconds, calls) ->
        Fmt.pf ppf "%-14s %6d call(s) %12.6fs@." pass calls seconds)
      timers

(* ---- JSON (shared emitter, same document shape as before) ----------- *)

module Json = Lslp_util.Json

let counters_json (c : Probe.counters) =
  Json.Obj
    (List.map (fun (name, get) -> (name, Json.Int (get c)))
       Probe.counter_fields)

let snapshot_fields (s : Probe.snapshot) =
  [
    ("counters", counters_json s.Probe.s_counters);
    ( "timers",
      Json.Arr
        (List.map
           (fun (pass, seconds, calls) ->
             Json.Obj
               [
                 ("pass", Json.Str pass);
                 ("calls", Json.Int calls);
                 ("seconds", Json.Float seconds);
               ])
           s.Probe.s_timers) );
  ]

let json t =
  Json.Obj
    [
      ("config", Json.Str t.config);
      ("function", Json.Str t.func);
      ( "blocks",
        Json.Arr
          (List.map
             (fun (label, s) ->
               Json.Obj (("block", Json.Str label) :: snapshot_fields s))
             t.blocks) );
      ("total", Json.Obj (snapshot_fields t.total));
    ]

let to_json t = Json.to_string (json t)
