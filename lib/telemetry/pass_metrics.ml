(* Pipeline-side metrics: the probe feeds the registry.

   One {!t} per service (or per CLI invocation); {!observe} folds a
   finished {!Report.t} into it — the nine deterministic pipeline
   counters, a per-run total-step histogram, one step histogram per pass
   (the 8 instrumented boundaries), and folded stacks
   "root;func;block;pass steps" for flamegraph rendering.

   "Steps" are probe span {e call counts} at the pass boundaries — the
   same unit the service deadline ([Budget.deadline]) ticks in — so unlike
   the wall-clock timers they are a pure function of (input, config) and
   every histogram here is byte-reproducible.

   The known pass names are pre-registered in pipeline order so the
   exposition layout never depends on which pass happened to run first
   on which domain; an unknown pass name (none today) registers itself
   on first sight.  The folded-stack table is guarded by its own mutex
   because workers observe concurrently. *)

module Registry = Lslp_obs.Registry

(* Pipeline order of the instrumented pass boundaries. *)
let known_passes =
  [ "seed-collect"; "graph-build"; "cost"; "codegen"; "reduction"; "cse";
    "dce" ]

let step_buckets = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 |]
let job_step_buckets = [| 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 |]

type t = {
  registry : Registry.t;
  root : string;
  lock : Mutex.t;
  counters : (string * (Probe.counters -> int) * Registry.counter) list;
  job_steps : Registry.histogram;
  mutable pass_hists : (string * Registry.histogram) list;
  stacks : (string, int ref) Hashtbl.t;
}

let pass_histogram registry pass =
  Registry.histogram registry
    ~help:"Probe steps charged per pass per run."
    ~labels:[ ("pass", pass) ] ~buckets:step_buckets "lslp_pass_steps"

let create ?(root = "lslp") registry =
  (* bind in exposition order: record-field evaluation order is
     unspecified, registration order is what the exporters walk *)
  let counters =
    List.map
      (fun (name, get) ->
        ( name,
          get,
          Registry.counter registry
            ~help:(Fmt.str "Pipeline '%s' counter, summed over runs." name)
            (Fmt.str "lslp_pipeline_%s_total" name) ))
      Probe.counter_fields
  in
  let job_steps =
    Registry.histogram registry
      ~help:"Total probe steps per pipeline run (all passes)."
      ~buckets:job_step_buckets "lslp_job_pass_steps"
  in
  let pass_hists =
    List.map (fun p -> (p, pass_histogram registry p)) known_passes
  in
  {
    registry;
    root;
    lock = Mutex.create ();
    counters;
    job_steps;
    pass_hists;
    stacks = Hashtbl.create 64;
  }

let registry t = t.registry

(* lock held *)
let pass_hist t pass =
  match List.assoc_opt pass t.pass_hists with
  | Some h -> h
  | None ->
    let h = pass_histogram t.registry pass in
    t.pass_hists <- t.pass_hists @ [ (pass, h) ];
    h

let observe t (r : Report.t) =
  let snap = r.Report.total in
  List.iter
    (fun (_, get, c) -> Registry.add c (get snap.Probe.s_counters))
    t.counters;
  let steps =
    List.fold_left (fun acc (_, _, calls) -> acc + calls) 0
      snap.Probe.s_timers
  in
  Registry.observe t.job_steps steps;
  Mutex.lock t.lock;
  let hists =
    List.map
      (fun (pass, _, calls) -> (pass_hist t pass, calls))
      snap.Probe.s_timers
  in
  List.iter
    (fun (block, (s : Probe.snapshot)) ->
      List.iter
        (fun (pass, _, calls) ->
          let key =
            String.concat ";" [ t.root; r.Report.func; block; pass ]
          in
          match Hashtbl.find_opt t.stacks key with
          | Some n -> n := !n + calls
          | None -> Hashtbl.replace t.stacks key (ref calls))
        s.Probe.s_timers)
    r.Report.blocks;
  Mutex.unlock t.lock;
  (* observe outside our own lock; registry handles carry their own *)
  List.iter (fun (h, calls) -> Registry.observe h calls) hists

let stacks t =
  Mutex.lock t.lock;
  let out = Hashtbl.fold (fun k n acc -> (k, !n) :: acc) t.stacks [] in
  Mutex.unlock t.lock;
  List.sort compare out

let folded t = Lslp_obs.Export.folded (stacks t)
