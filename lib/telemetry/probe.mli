(** Pass-level instrumentation: counters + wall-clock timers.

    One probe per region (basic block); the pipeline threads it through
    seed collection, graph building, operand reordering, code generation
    and reduction vectorization, then aggregates the snapshots into
    {!Report.t}.  Counters are deterministic per (input, configuration);
    timers are wall-clock and must be masked in golden tests. *)

type counters = {
  mutable seeds_collected : int;
      (** seed bundles {!Lslp_core.Seeds.collect} found *)
  mutable seeds_tried : int;  (** seed bundles the driver attempted *)
  mutable score_evals : int;
      (** look-ahead score computations actually performed (recursive
          comparisons included; cache hits excluded) *)
  mutable score_hits : int;   (** comparisons served from a score cache *)
  mutable score_misses : int;
      (** cacheable comparisons that had to be computed *)
  mutable graph_nodes : int;  (** fresh SLP-graph nodes built *)
  mutable instrs_emitted : int;
      (** instructions code generation materialized (vector ops, gathers,
          extracts, reductions) in committed regions *)
  mutable regions_vectorized : int;
  mutable regions_degraded : int;  (** regions rolled back to scalar *)
}

val zero_counters : unit -> counters
val copy_counters : counters -> counters
val add_counters : into:counters -> counters -> unit

val counter_fields : (string * (counters -> int)) list
(** Display-order (label, projection) pairs shared by every renderer. *)

type t

val create : unit -> t
val counters : t -> counters

val add_time : t -> string -> float -> unit
(** Accumulate [seconds] (one call) against a pass name. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its wall-clock time against the pass name;
    the time is charged even when the thunk raises. *)

type snapshot = {
  s_counters : counters;
  s_timers : (string * float * int) list;
      (** (pass, total seconds, calls) in first-seen order *)
}

val snapshot : t -> snapshot
val empty_snapshot : snapshot

val merge : snapshot list -> snapshot
(** Pointwise sum; timer passes keep first-seen order across the inputs. *)
