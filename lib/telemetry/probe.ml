(* Pass-level instrumentation.

   A probe is a mutable bag of counters plus per-pass wall-clock timers that
   the pipeline hands to every stage (seed collection, graph building,
   reordering, costing, codegen, reduction, cleanup).  Counters are plain
   ints bumped on the hot path — cheap enough to stay always-on — and
   timers accumulate [Unix.gettimeofday] spans per pass name.

   Counters are deterministic for a given input and configuration; timers
   are not.  Every renderer in {!Report} keeps the two apart so golden
   tests can pin the counters and mask the clock. *)

type counters = {
  mutable seeds_collected : int;   (* seed bundles found by Seeds.collect *)
  mutable seeds_tried : int;       (* seed bundles the driver attempted *)
  mutable score_evals : int;       (* look-ahead score computations *)
  mutable score_hits : int;        (* comparisons served from the cache *)
  mutable score_misses : int;      (* cacheable comparisons computed *)
  mutable graph_nodes : int;       (* fresh SLP-graph nodes built *)
  mutable instrs_emitted : int;    (* instructions codegen materialized *)
  mutable regions_vectorized : int;
  mutable regions_degraded : int;  (* regions rolled back to scalar *)
}

let zero_counters () =
  {
    seeds_collected = 0;
    seeds_tried = 0;
    score_evals = 0;
    score_hits = 0;
    score_misses = 0;
    graph_nodes = 0;
    instrs_emitted = 0;
    regions_vectorized = 0;
    regions_degraded = 0;
  }

let copy_counters c =
  {
    seeds_collected = c.seeds_collected;
    seeds_tried = c.seeds_tried;
    score_evals = c.score_evals;
    score_hits = c.score_hits;
    score_misses = c.score_misses;
    graph_nodes = c.graph_nodes;
    instrs_emitted = c.instrs_emitted;
    regions_vectorized = c.regions_vectorized;
    regions_degraded = c.regions_degraded;
  }

let add_counters ~into c =
  into.seeds_collected <- into.seeds_collected + c.seeds_collected;
  into.seeds_tried <- into.seeds_tried + c.seeds_tried;
  into.score_evals <- into.score_evals + c.score_evals;
  into.score_hits <- into.score_hits + c.score_hits;
  into.score_misses <- into.score_misses + c.score_misses;
  into.graph_nodes <- into.graph_nodes + c.graph_nodes;
  into.instrs_emitted <- into.instrs_emitted + c.instrs_emitted;
  into.regions_vectorized <- into.regions_vectorized + c.regions_vectorized;
  into.regions_degraded <- into.regions_degraded + c.regions_degraded

(* The printable/serializable column set, in display order.  One list so
   the human table, the JSON renderer and the CSV emitters cannot drift. *)
let counter_fields =
  [
    ("seeds", fun c -> c.seeds_collected);
    ("tried", fun c -> c.seeds_tried);
    ("evals", fun c -> c.score_evals);
    ("hits", fun c -> c.score_hits);
    ("misses", fun c -> c.score_misses);
    ("nodes", fun c -> c.graph_nodes);
    ("emitted", fun c -> c.instrs_emitted);
    ("vec", fun c -> c.regions_vectorized);
    ("degraded", fun c -> c.regions_degraded);
  ]

type timer = { mutable elapsed_s : float; mutable calls : int }

type t = {
  c : counters;
  timers : (string, timer) Hashtbl.t;
  order : string list ref;  (* pass names in first-seen order *)
}

let create () = { c = zero_counters (); timers = Hashtbl.create 8; order = ref [] }

let counters t = t.c

let timer_of t pass =
  match Hashtbl.find_opt t.timers pass with
  | Some tm -> tm
  | None ->
    let tm = { elapsed_s = 0.0; calls = 0 } in
    Hashtbl.replace t.timers pass tm;
    t.order := pass :: !(t.order);
    tm

let add_time t pass seconds =
  let tm = timer_of t pass in
  tm.elapsed_s <- tm.elapsed_s +. seconds;
  tm.calls <- tm.calls + 1

(* Accumulate even when [f] raises: a budget abort mid-pass still spent the
   time, and the caller's transaction will re-raise past us. *)
let span t pass f =
  let t0 = Unix.gettimeofday () in
  match f () with
  | v ->
    add_time t pass (Unix.gettimeofday () -. t0);
    v
  | exception e ->
    add_time t pass (Unix.gettimeofday () -. t0);
    raise e

type snapshot = {
  s_counters : counters;
  s_timers : (string * float * int) list;  (* pass, seconds, calls *)
}

let snapshot t =
  {
    s_counters = copy_counters t.c;
    s_timers =
      List.rev_map
        (fun pass ->
          let tm = Hashtbl.find t.timers pass in
          (pass, tm.elapsed_s, tm.calls))
        !(t.order);
  }

let empty_snapshot = { s_counters = zero_counters (); s_timers = [] }

let merge snapshots =
  let c = zero_counters () in
  let timers : (string, timer) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun s ->
      add_counters ~into:c s.s_counters;
      List.iter
        (fun (pass, seconds, calls) ->
          let tm =
            match Hashtbl.find_opt timers pass with
            | Some tm -> tm
            | None ->
              let tm = { elapsed_s = 0.0; calls = 0 } in
              Hashtbl.replace timers pass tm;
              order := pass :: !order;
              tm
          in
          tm.elapsed_s <- tm.elapsed_s +. seconds;
          tm.calls <- tm.calls + calls)
        s.s_timers)
    snapshots;
  {
    s_counters = c;
    s_timers =
      List.rev_map
        (fun pass ->
          let tm = Hashtbl.find timers pass in
          (pass, tm.elapsed_s, tm.calls))
        !order;
  }
