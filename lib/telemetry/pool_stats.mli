(** Compile-service pool counters.

    One bag per {!Lslp_service.Pool}, mutated under the pool's lock and
    snapshotted with {!copy} on drain.  Deterministic for a given (job
    list, configuration, fault spec): retries, timeouts, shedding and cache
    evictions are all driven by the seeded injector and the pool's virtual
    clock, never by wall time, so smoke tests can pin these numbers. *)

type t = {
  mutable jobs_submitted : int;
  mutable jobs_completed : int;
  mutable jobs_retried : int;
  mutable jobs_timed_out : int;
  mutable jobs_shed : int;
  mutable jobs_failed : int;
  mutable workers_respawned : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_verified : int;
  mutable cache_evicted : int;
  mutable cache_inserts : int;
}

val create : unit -> t
val copy : t -> t

val fields : (string * (t -> int)) list
(** Display-ordered column set shared by {!pp} and {!json} — same
    single-source-of-truth pattern as {!Probe.counter_fields}. *)

val pp : t Fmt.t
val json : t -> Lslp_util.Json.t
