(** Compile-service pool metrics.

    The single source of truth is an {!Lslp_obs.Registry} plus an
    {!Lslp_obs.Flight} recorder, bundled as {!metrics}; the pool, the
    cache and the service bump the typed handles directly.  The
    historical flat-counter record {!t} survives as a {e read view}
    ({!view}) so accounting tests and the `--stats` renderers keep
    working unchanged.

    Deterministic for a given (job list, configuration, fault spec):
    retries, timeouts, shedding and cache evictions are all driven by the
    seeded injector and the pool's virtual clock, never by wall time, so
    smoke tests pin the counters and — on a 1-domain pool — whole
    exposition dumps are byte-reproducible. *)

type t = {
  mutable jobs_submitted : int;
  mutable jobs_completed : int;
  mutable jobs_retried : int;
  mutable jobs_timed_out : int;
  mutable jobs_shed : int;
  mutable jobs_failed : int;
  mutable workers_respawned : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_verified : int;
  mutable cache_evicted : int;
  mutable cache_inserts : int;
}

type metrics = {
  registry : Lslp_obs.Registry.t;
  flight : Lslp_obs.Flight.t;
  submitted : Lslp_obs.Registry.counter;
  completed : Lslp_obs.Registry.counter;
  retried : Lslp_obs.Registry.counter;
  timed_out : Lslp_obs.Registry.counter;
  shed : Lslp_obs.Registry.counter;
  failed : Lslp_obs.Registry.counter;
  respawned : Lslp_obs.Registry.counter;
  c_hits : Lslp_obs.Registry.counter;
  c_misses : Lslp_obs.Registry.counter;
  c_verified : Lslp_obs.Registry.counter;
  c_evicted : Lslp_obs.Registry.counter;
  c_inserts : Lslp_obs.Registry.counter;
  queue_depth : Lslp_obs.Registry.gauge;
  latency_ticks : Lslp_obs.Registry.histogram;
  job_attempts : Lslp_obs.Registry.histogram;
  queue_at_dispatch : Lslp_obs.Registry.histogram;
  queue_at_complete : Lslp_obs.Registry.histogram;
}

val metrics :
  ?registry:Lslp_obs.Registry.t -> ?flight_cap:int -> unit -> metrics
(** Register the service metric family on [registry] (fresh one when
    omitted) and attach a flight recorder of [flight_cap] (default 4096)
    events.  Registration is idempotent per registry. *)

val view : metrics -> t
(** Consistent flat snapshot of the twelve counters — what
    [Service.stats] returns and `test_service` accounting asserts on. *)

val fields : (string * (t -> int)) list
(** Display-ordered column set shared by {!pp} and {!json} — same
    single-source-of-truth pattern as {!Probe.counter_fields}. *)

val pp : t Fmt.t
val json : t -> Lslp_util.Json.t
