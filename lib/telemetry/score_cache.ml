(* Memo table for the look-ahead score.

   Key soundness: a cached entry is only valid while the operand DAG under
   both instructions is immutable, because the score is a pure function of
   (instruction identity, instruction identity, remaining depth, combine
   mode) *given* frozen operands.  The reorderer therefore creates one
   cache per reorder invocation — no pass mutates instructions while a
   single operand matrix is being reordered — and drops it on return, so
   entries can never leak across codegen rewrites, transactional rollbacks
   or later regions.  See DESIGN.md §11. *)

type key = { ka : int; kb : int; klevel : int; kmode : int }

type t = (key, int) Hashtbl.t

let create () : t = Hashtbl.create 64

let find (t : t) ~a ~b ~level ~mode =
  Hashtbl.find_opt t { ka = a; kb = b; klevel = level; kmode = mode }

let store (t : t) ~a ~b ~level ~mode score =
  Hashtbl.replace t { ka = a; kb = b; klevel = level; kmode = mode } score

let size = Hashtbl.length

let clear = Hashtbl.reset
