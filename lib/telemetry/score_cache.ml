(* Memo table for the look-ahead score.

   Key soundness: a cached entry is only valid while the operand DAG under
   both instructions is immutable, because the score is a pure function of
   (instruction identity, instruction identity, remaining depth, combine
   mode) *given* frozen operands.  The reorderer therefore creates one
   cache per reorder invocation — no pass mutates instructions while a
   single operand matrix is being reordered — and drops it on return, so
   entries can never leak across codegen rewrites, transactional rollbacks
   or later regions.  See DESIGN.md §11.

   Representation: one packed int per entry in an open-addressing int
   table.  Global instruction ids are interned to dense per-cache locals
   (the same id always gets the same local within one cache's lifetime, so
   hit/miss behaviour is identical to keying on raw ids), then
   [local_a:20 | local_b:20 | level:8 | mode:4] packs into a single word —
   no boxed key record, no polymorphic hashing.  Lookups outside those
   field widths bypass the cache rather than alias. *)

module Int_table = Lslp_util.Int_table

type t = {
  entries : Int_table.t;          (* packed key -> score *)
  locals : Int_table.t;           (* global instr id -> dense local *)
  mutable next_local : int;
}

let absent = min_int

let create () =
  { entries = Int_table.create 64; locals = Int_table.create 64; next_local = 0 }

let local t id =
  Int_table.get_or_add t.locals id ~default:(fun () ->
      let l = t.next_local in
      t.next_local <- l + 1;
      l)

let max_local = 1 lsl 20

let pack t ~a ~b ~level ~mode =
  if level < 0 || level > 0xff || mode < 0 || mode > 0xf then -1
  else
    let la = local t a and lb = local t b in
    if la >= max_local || lb >= max_local then -1
    else (((((la lsl 20) lor lb) lsl 8) lor level) lsl 4) lor mode

let find t ~a ~b ~level ~mode =
  match pack t ~a ~b ~level ~mode with
  | -1 -> None
  | key -> (
    match Int_table.get t.entries key ~absent with
    | s when s == absent -> None
    | s -> Some s)

let store t ~a ~b ~level ~mode score =
  if score <> absent then
    match pack t ~a ~b ~level ~mode with
    | -1 -> ()
    | key -> Int_table.set t.entries key score

let size t = Int_table.length t.entries

let clear t =
  Int_table.clear t.entries;
  Int_table.clear t.locals;
  t.next_local <- 0
