(** Memo table for the recursive look-ahead score.

    Keyed by (instruction id, instruction id, remaining depth, combine
    mode), stored as one packed int — ids are interned to dense per-cache
    locals, then [a:20|b:20|level:8|mode:4] fits a single word in an
    open-addressing int table.  Only sound while the operand DAG under
    both instructions is frozen, so callers scope one cache to one reorder
    invocation and discard it afterwards — entries never survive a
    mutation, a rollback or a budget abort.  Constants and arguments have
    no ids and are never cached (their comparisons are O(1) anyway). *)

type t

val create : unit -> t
val find : t -> a:int -> b:int -> level:int -> mode:int -> int option
val store : t -> a:int -> b:int -> level:int -> mode:int -> int -> unit
val size : t -> int
val clear : t -> unit
