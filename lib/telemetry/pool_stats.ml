(* Compile-service pool counters.

   One mutable bag per pool, mutated only under the pool's lock, snapshotted
   on drain.  Like {!Probe.counters} these are deterministic for a given
   (job list, configuration, fault spec) — retries, timeouts and cache
   evictions are driven by the seeded injector and the virtual-tick clock,
   never by wall time — so the smoke tests can pin them. *)

type t = {
  mutable jobs_submitted : int;   (* accepted into the queue *)
  mutable jobs_completed : int;   (* finished with a usable result *)
  mutable jobs_retried : int;     (* re-queued after a transient fault *)
  mutable jobs_timed_out : int;   (* deadline expiries observed *)
  mutable jobs_shed : int;        (* rejected by the backpressure policy *)
  mutable jobs_failed : int;      (* retries exhausted; typed degradation *)
  mutable workers_respawned : int;(* domains torn down and replaced *)
  mutable cache_hits : int;       (* key present, before verification *)
  mutable cache_misses : int;
  mutable cache_verified : int;   (* hits that passed legality re-check *)
  mutable cache_evicted : int;    (* hits that failed it; recompiled *)
  mutable cache_inserts : int;
}

let create () =
  {
    jobs_submitted = 0;
    jobs_completed = 0;
    jobs_retried = 0;
    jobs_timed_out = 0;
    jobs_shed = 0;
    jobs_failed = 0;
    workers_respawned = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_verified = 0;
    cache_evicted = 0;
    cache_inserts = 0;
  }

let copy s =
  {
    jobs_submitted = s.jobs_submitted;
    jobs_completed = s.jobs_completed;
    jobs_retried = s.jobs_retried;
    jobs_timed_out = s.jobs_timed_out;
    jobs_shed = s.jobs_shed;
    jobs_failed = s.jobs_failed;
    workers_respawned = s.workers_respawned;
    cache_hits = s.cache_hits;
    cache_misses = s.cache_misses;
    cache_verified = s.cache_verified;
    cache_evicted = s.cache_evicted;
    cache_inserts = s.cache_inserts;
  }

(* Same single-source-of-truth trick as {!Probe.counter_fields}: the human
   table and the JSON form both walk this list, so they cannot drift. *)
let fields =
  [
    ("submitted", fun s -> s.jobs_submitted);
    ("completed", fun s -> s.jobs_completed);
    ("retried", fun s -> s.jobs_retried);
    ("timed_out", fun s -> s.jobs_timed_out);
    ("shed", fun s -> s.jobs_shed);
    ("failed", fun s -> s.jobs_failed);
    ("respawned", fun s -> s.workers_respawned);
    ("cache_hits", fun s -> s.cache_hits);
    ("cache_misses", fun s -> s.cache_misses);
    ("cache_verified", fun s -> s.cache_verified);
    ("cache_evicted", fun s -> s.cache_evicted);
    ("cache_inserts", fun s -> s.cache_inserts);
  ]

let pp ppf s =
  Fmt.pf ppf "@[<v>pool:";
  List.iter (fun (name, get) -> Fmt.pf ppf "@,  %-14s %d" name (get s)) fields;
  Fmt.pf ppf "@]"

module Json = Lslp_util.Json

let json s =
  Json.Obj (List.map (fun (name, get) -> (name, Json.Int (get s))) fields)
