(* Compile-service pool metrics.

   Since PR 10 the single source of truth is an [Lslp_obs.Registry]: the
   pool, the cache and the service bump typed counter/gauge/histogram
   handles held in {!metrics}, and the historical flat-counter record
   {!t} survives only as a {e read view} ({!view}) so accounting tests
   and renderers written against it keep working unchanged.

   Everything is deterministic for a given (job list, configuration,
   fault spec) — retries, timeouts, shedding and cache evictions are
   driven by the seeded injector and the pool's virtual-tick clock, never
   by wall time — so the smoke tests can pin the counters and, on a
   1-domain pool, `make metrics-check` can pin whole exposition dumps
   byte for byte. *)

module Registry = Lslp_obs.Registry
module Flight = Lslp_obs.Flight

type t = {
  mutable jobs_submitted : int;   (* accepted into the queue *)
  mutable jobs_completed : int;   (* finished with a usable result *)
  mutable jobs_retried : int;     (* re-queued after a transient fault *)
  mutable jobs_timed_out : int;   (* deadline expiries observed *)
  mutable jobs_shed : int;        (* rejected by the backpressure policy *)
  mutable jobs_failed : int;      (* retries exhausted; typed degradation *)
  mutable workers_respawned : int;(* domains torn down and replaced *)
  mutable cache_hits : int;       (* key present, before verification *)
  mutable cache_misses : int;
  mutable cache_verified : int;   (* hits that passed legality re-check *)
  mutable cache_evicted : int;    (* hits that failed it; recompiled *)
  mutable cache_inserts : int;
}

type metrics = {
  registry : Registry.t;
  flight : Flight.t;
  submitted : Registry.counter;
  completed : Registry.counter;
  retried : Registry.counter;
  timed_out : Registry.counter;
  shed : Registry.counter;
  failed : Registry.counter;
  respawned : Registry.counter;
  c_hits : Registry.counter;
  c_misses : Registry.counter;
  c_verified : Registry.counter;
  c_evicted : Registry.counter;
  c_inserts : Registry.counter;
  queue_depth : Registry.gauge;
  latency_ticks : Registry.histogram;
  job_attempts : Registry.histogram;
  queue_at_dispatch : Registry.histogram;
  queue_at_complete : Registry.histogram;
}

(* Bucket bounds in virtual ticks / queue slots / attempts.  Fixed at
   registration so exposition shape never depends on the run. *)
let latency_buckets = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 |]
let attempt_buckets = [| 1; 2; 3; 4; 8 |]
let queue_buckets = [| 0; 1; 2; 4; 8; 16; 32; 64 |]

let metrics ?registry ?(flight_cap = 4096) () =
  let r = match registry with Some r -> r | None -> Registry.create () in
  let c name help = Registry.counter r ~help name in
  (* bind in exposition order: record-field evaluation order is
     unspecified, registration order is what the exporters walk *)
  let submitted = c "lslp_jobs_submitted_total" "Jobs accepted into the queue." in
  let completed = c "lslp_jobs_completed_total" "Jobs finished with a usable result." in
  let retried = c "lslp_jobs_retried_total" "Jobs re-queued after a transient fault." in
  let timed_out = c "lslp_jobs_timed_out_total" "Cooperative deadline expiries observed." in
  let shed = c "lslp_jobs_shed_total" "Jobs rejected by the backpressure policy." in
  let failed = c "lslp_jobs_failed_total" "Jobs whose retries were exhausted." in
  let respawned = c "lslp_workers_respawned_total" "Worker domains torn down and replaced." in
  let c_hits = c "lslp_cache_hits_total" "Cache keys present, counted before verification." in
  let c_misses = c "lslp_cache_misses_total" "Cache content misses." in
  let c_verified = c "lslp_cache_verified_total" "Cache hits that passed legality re-check." in
  let c_evicted = c "lslp_cache_evicted_total" "Cache hits that failed legality re-check." in
  let c_inserts = c "lslp_cache_inserts_total" "Clean compile results inserted." in
  let queue_depth =
    Registry.gauge r ~help:"Ready-queue depth at the last pool event."
      "lslp_queue_depth"
  in
  let latency_ticks =
    Registry.histogram r
      ~help:"Per-job latency from first dispatch to completion, virtual ticks."
      ~buckets:latency_buckets "lslp_job_latency_ticks"
  in
  let job_attempts =
    Registry.histogram r
      ~help:"Attempts per job that reached a terminal outcome."
      ~buckets:attempt_buckets "lslp_job_attempts"
  in
  let queue_at_dispatch =
    Registry.histogram r
      ~help:"Ready-queue depth sampled at each dispatch."
      ~buckets:queue_buckets "lslp_queue_depth_dispatch"
  in
  let queue_at_complete =
    Registry.histogram r
      ~help:"Ready-queue depth sampled at each completion."
      ~buckets:queue_buckets "lslp_queue_depth_complete"
  in
  {
    registry = r;
    flight = Flight.create ~cap:flight_cap ();
    submitted;
    completed;
    retried;
    timed_out;
    shed;
    failed;
    respawned;
    c_hits;
    c_misses;
    c_verified;
    c_evicted;
    c_inserts;
    queue_depth;
    latency_ticks;
    job_attempts;
    queue_at_dispatch;
    queue_at_complete;
  }

let view (m : metrics) =
  {
    jobs_submitted = Registry.value m.submitted;
    jobs_completed = Registry.value m.completed;
    jobs_retried = Registry.value m.retried;
    jobs_timed_out = Registry.value m.timed_out;
    jobs_shed = Registry.value m.shed;
    jobs_failed = Registry.value m.failed;
    workers_respawned = Registry.value m.respawned;
    cache_hits = Registry.value m.c_hits;
    cache_misses = Registry.value m.c_misses;
    cache_verified = Registry.value m.c_verified;
    cache_evicted = Registry.value m.c_evicted;
    cache_inserts = Registry.value m.c_inserts;
  }

(* Same single-source-of-truth trick as {!Probe.counter_fields}: the human
   table and the JSON form both walk this list, so they cannot drift. *)
let fields =
  [
    ("submitted", fun s -> s.jobs_submitted);
    ("completed", fun s -> s.jobs_completed);
    ("retried", fun s -> s.jobs_retried);
    ("timed_out", fun s -> s.jobs_timed_out);
    ("shed", fun s -> s.jobs_shed);
    ("failed", fun s -> s.jobs_failed);
    ("respawned", fun s -> s.workers_respawned);
    ("cache_hits", fun s -> s.cache_hits);
    ("cache_misses", fun s -> s.cache_misses);
    ("cache_verified", fun s -> s.cache_verified);
    ("cache_evicted", fun s -> s.cache_evicted);
    ("cache_inserts", fun s -> s.cache_inserts);
  ]

let pp ppf s =
  Fmt.pf ppf "@[<v>pool:";
  List.iter (fun (name, get) -> Fmt.pf ppf "@,  %-14s %d" name (get s)) fields;
  Fmt.pf ppf "@]"

module Json = Lslp_util.Json

let json s =
  Json.Obj (List.map (fun (name, get) -> (name, Json.Int (get s))) fields)
