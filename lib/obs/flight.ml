(* The flight recorder: a bounded ring of structured per-job lifecycle
   events.

   Always on and always bounded — [cap] slots, oldest overwritten first,
   with a dropped count so a dump is honest about what it lost.  Events
   carry the pool's virtual tick, the job label, the attempt index and
   the attempt's injector seed, so a recorded fault schedule can be
   replayed exactly.  Events recorded off the pool clock (the cache runs
   under its own lock and does not see the pool's vtick) carry tick -1.

   Per-instance mutex; record order is the serialization order under that
   lock, which for a 1-domain pool equals program order — that is what
   lets `make metrics-check` pin a whole JSONL dump byte for byte. *)

module Json = Lslp_util.Json

type event = {
  seq : int;  (* monotonically increasing record index, pre-drop *)
  tick : int;  (* pool virtual tick; -1 = recorded off the pool clock *)
  kind : string;
  job : string;
  attempt : int;  (* -1 when the event has no attempt (enqueue, shed) *)
  seed : int;  (* the attempt's injector seed; 0 when not applicable *)
  detail : string;
}

type t = {
  lock : Mutex.t;
  cap : int;
  ring : event option array;
  mutable next : int;  (* total events ever recorded *)
}

let create ?(cap = 4096) () =
  let cap = max 1 cap in
  { lock = Mutex.create (); cap; ring = Array.make cap None; next = 0 }

let capacity t = t.cap

let record t ~tick ~job ?(attempt = -1) ?(seed = 0) ?(detail = "") kind =
  Mutex.lock t.lock;
  let seq = t.next in
  t.ring.(seq mod t.cap) <- Some { seq; tick; kind; job; attempt; seed; detail };
  t.next <- seq + 1;
  Mutex.unlock t.lock

let recorded t =
  Mutex.lock t.lock;
  let n = t.next in
  Mutex.unlock t.lock;
  n

let dropped t = max 0 (recorded t - t.cap)

let events t =
  Mutex.lock t.lock;
  let n = t.next in
  let first = max 0 (n - t.cap) in
  let out =
    List.filter_map
      (fun i -> t.ring.(i mod t.cap))
      (List.init (n - first) (fun k -> first + k))
  in
  Mutex.unlock t.lock;
  out

let event_json (e : event) =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("tick", Json.Int e.tick);
      ("event", Json.Str e.kind);
      ("job", Json.Str e.job);
      ("attempt", Json.Int e.attempt);
      ("seed", Json.Int e.seed);
      ("detail", Json.Str e.detail);
    ]

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_json e));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
