(* The typed metric registry.

   One registry per service instance; metrics register once (idempotently,
   keyed on name x labels) and are then bumped through their handles.  All
   values are integers: counts, virtual ticks, pass steps — never wall
   clock — so for a fixed (input, config, fault spec) every exported
   number is reproducible byte for byte (the determinism contract
   DESIGN.md §17 states and `make metrics-check` enforces).

   One mutex per registry guards both the metric list and every value;
   handles share it.  Bumps happen on the service's per-job control path
   (a handful per compile), so a single short critical section costs
   nothing next to a pipeline run.  Per-instance locked state: lint R1
   does not apply, and nothing here reads the clock (R4) or raises (R3).

   Histograms are fixed-bucket: bounds are chosen at registration and
   never resize, which keeps exposition stable across runs regardless of
   the values observed.  [percentile] answers from the cumulative bucket
   counts — the answer is the smallest bucket upper bound covering the
   requested rank, clamped to the observed min/max so exact small samples
   report exact values. *)

type kind = Counter | Gauge | Histogram

type metric = {
  m_name : string;
  m_labels : (string * string) list;
  m_help : string;
  m_kind : kind;
  m_lock : Mutex.t;  (* the owning registry's lock *)
  mutable m_value : int;  (* counter / gauge *)
  m_bounds : int array;  (* finite upper bounds, ascending; histograms *)
  m_counts : int array;  (* per-bucket counts; last slot is +Inf *)
  mutable m_sum : int;
  mutable m_count : int;
  mutable m_min : int;
  mutable m_max : int;
}

type counter = metric
type gauge = metric
type histogram = metric

type t = { lock : Mutex.t; mutable rev : metric list }

let create () = { lock = Mutex.create (); rev = [] }

(* [f] must not raise — every caller below satisfies that. *)
let locked lock f =
  Mutex.lock lock;
  let r = f () in
  Mutex.unlock lock;
  r

let find_or_add t ~name ~labels ~help ~kind ~bounds =
  locked t.lock (fun () ->
      match
        List.find_opt
          (fun m -> m.m_name = name && m.m_labels = labels)
          t.rev
      with
      | Some m -> m
      | None ->
        let m =
          {
            m_name = name;
            m_labels = labels;
            m_help = help;
            m_kind = kind;
            m_lock = t.lock;
            m_value = 0;
            m_bounds = bounds;
            m_counts = Array.make (Array.length bounds + 1) 0;
            m_sum = 0;
            m_count = 0;
            m_min = 0;
            m_max = 0;
          }
        in
        t.rev <- m :: t.rev;
        m)

let counter t ?(help = "") ?(labels = []) name =
  find_or_add t ~name ~labels ~help ~kind:Counter ~bounds:[||]

let gauge t ?(help = "") ?(labels = []) name =
  find_or_add t ~name ~labels ~help ~kind:Gauge ~bounds:[||]

let histogram t ?(help = "") ?(labels = []) ~buckets name =
  (* defend the fixed-bucket invariant: ascending, deduplicated *)
  let bounds =
    let sorted = List.sort_uniq compare (Array.to_list buckets) in
    Array.of_list sorted
  in
  find_or_add t ~name ~labels ~help ~kind:Histogram ~bounds

let add c n = locked c.m_lock (fun () -> c.m_value <- c.m_value + n)
let incr c = add c 1
let set g v = locked g.m_lock (fun () -> g.m_value <- v)
let value m = locked m.m_lock (fun () -> m.m_value)

let observe h v =
  locked h.m_lock (fun () ->
      let n = Array.length h.m_bounds in
      let rec bucket i =
        if i >= n then n else if v <= h.m_bounds.(i) then i else bucket (i + 1)
      in
      h.m_counts.(bucket 0) <- h.m_counts.(bucket 0) + 1;
      h.m_sum <- h.m_sum + v;
      if h.m_count = 0 then begin
        h.m_min <- v;
        h.m_max <- v
      end
      else begin
        if v < h.m_min then h.m_min <- v;
        if v > h.m_max then h.m_max <- v
      end;
      h.m_count <- h.m_count + 1)

type hview = {
  bounds : int array;
  counts : int array;  (* per-bucket, not cumulative; last is +Inf *)
  hsum : int;
  hcount : int;
  hmin : int;
  hmax : int;
}

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of hview

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_help : string;
  s_value : value;
}

let sample_of m =
  {
    s_name = m.m_name;
    s_labels = m.m_labels;
    s_help = m.m_help;
    s_value =
      (match m.m_kind with
       | Counter -> Counter_v m.m_value
       | Gauge -> Gauge_v m.m_value
       | Histogram ->
         Histogram_v
           {
             bounds = Array.copy m.m_bounds;
             counts = Array.copy m.m_counts;
             hsum = m.m_sum;
             hcount = m.m_count;
             hmin = m.m_min;
             hmax = m.m_max;
           });
  }

let snapshot t =
  (* rev_map of the reversed registration list = registration order *)
  locked t.lock (fun () -> List.rev_map sample_of t.rev)

let histogram_view t ?(labels = []) name =
  locked t.lock (fun () ->
      match
        List.find_opt
          (fun m ->
            m.m_name = name && m.m_labels = labels && m.m_kind = Histogram)
          t.rev
      with
      | None -> None
      | Some m ->
        (match (sample_of m).s_value with
         | Histogram_v h -> Some h
         | Counter_v _ | Gauge_v _ -> None))

let percentile (h : hview) q =
  if h.hcount = 0 then 0
  else begin
    let rank =
      let r = int_of_float (Float.round (ceil (q *. float_of_int h.hcount))) in
      if r < 1 then 1 else if r > h.hcount then h.hcount else r
    in
    let n = Array.length h.bounds in
    let rec walk i acc =
      if i >= n then h.hmax
      else
        let acc = acc + h.counts.(i) in
        if acc >= rank then min h.bounds.(i) h.hmax else walk (i + 1) acc
    in
    max h.hmin (walk 0 0)
  end
