(** Exposition of a {!Registry} snapshot: Prometheus text, JSON and
    folded stacks.

    All exporters walk the snapshot in registration order and are pure —
    identical snapshots render identical bytes, which is what
    `make metrics-check` gates. *)

val prometheus : Registry.sample list -> string
(** Prometheus text exposition (0.0.4): [# HELP]/[# TYPE] per family,
    cumulative [le]-labelled buckets, [_sum]/[_count] per histogram. *)

(** {1 Reading the text format back} *)

type psample = {
  p_name : string;
  p_labels : (string * string) list;
  p_value : float;
}

val parse_prometheus : string -> (psample list, string) result
(** Parse text exposition back into flat samples (histograms appear as
    their [_bucket]/[_sum]/[_count] series).  Total: returns [Error
    "line N: reason"] instead of raising — `lslpc metrics-verify` builds
    the smoke gate on it. *)

val sample_value :
  psample list -> ?labels:(string * string) list -> string -> float option

(** {1 Other formats} *)

val json : Registry.sample list -> Lslp_util.Json.t
(** One document: [{schema; metrics: [...]}], histograms carrying
    cumulative buckets, sum/count/min/max and derived p50/p95/p99. *)

val folded : (string * int) list -> string
(** Folded-stack lines ["frame;frame;frame count\n"], sorted — feed to
    any flamegraph renderer. *)

val pp_table : Format.formatter -> Registry.sample list -> unit
(** Deterministic histogram summary table (count/sum/min/max/p50/p95/p99
    per histogram) for [lslpc stats] and [lslpc batch --stats]. *)
