(** The typed metric registry under the compile service's observability
    layer.

    Counters, gauges and fixed-bucket histograms, registered once per
    (name, labels) pair and bumped through handles.  Every value is an
    integer in a deterministic unit — job counts, virtual scheduling
    ticks, pass-boundary steps — never wall-clock, so a registry's
    exported state is a pure function of (input, config, fault spec) and
    byte-reproducible dumps can be gated without tolerances (DESIGN.md
    §17).

    Thread-safety: one mutex per registry guards registration and every
    bump; handles may be used freely from pool worker domains.  No
    operation raises and none reads the clock. *)

type t
(** A registry instance.  Per-instance locked state (lint R1-clean). *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list ->
  string -> counter
(** Idempotent: registering the same (name, labels) again returns the
    existing handle, so read views and re-entrant wiring are safe. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list ->
  string -> gauge

val histogram : t -> ?help:string -> ?labels:(string * string) list ->
  buckets:int array -> string -> histogram
(** [buckets] are finite upper bounds (sorted and deduplicated here); an
    implicit +Inf bucket is appended.  Bounds are fixed at registration —
    exposition shape never depends on the values observed. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit

val value : counter -> int
(** Current value of a counter or gauge handle (locked read). *)

val observe : histogram -> int -> unit

(** {1 Snapshots} *)

type hview = {
  bounds : int array;
  counts : int array;
      (** per-bucket (not cumulative); one longer than [bounds], the last
          slot counting observations above every finite bound *)
  hsum : int;
  hcount : int;
  hmin : int;  (** 0 when [hcount = 0] *)
  hmax : int;
}

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of hview

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_help : string;
  s_value : value;
}

val snapshot : t -> sample list
(** Consistent copy of every metric, in registration order — the order
    every exporter walks, which is what makes dumps reproducible. *)

val histogram_view : t -> ?labels:(string * string) list -> string ->
  hview option

val percentile : hview -> float -> int
(** [percentile h q] for [q] in (0, 1]: the smallest bucket upper bound
    whose cumulative count covers rank [ceil (q * count)], clamped to the
    observed [hmin]/[hmax] (so exact for samples that fit one bucket).
    0 when the histogram is empty. *)
