(* Exposition: one registry snapshot, three formats.

   - Prometheus text (0.0.4): HELP/TYPE per family, cumulative
     [le]-labelled buckets for histograms.  [parse_prometheus] reads the
     same dialect back — the smoke gate writes a dump, re-parses it and
     cross-checks the degradation counters, so the emitter can never
     drift from what a scraper would accept without CI noticing.
   - Lslp_util.Json: the same snapshot as one minified document, with
     derived percentiles included per histogram.
   - Folded stacks: "frame;frame;frame count" lines (flamegraph.pl
     dialect), sorted, for the pass-boundary step counts.

   Everything walks the snapshot in registration order and is pure —
   identical snapshots render identical bytes. *)

module Json = Lslp_util.Json
module Registry = Registry

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_block labels =
  match labels with
  | [] -> ""
  | _ ->
    Fmt.str "{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) -> Fmt.str "%s=\"%s\"" k (escape_label v))
            labels))

let type_name = function
  | Registry.Counter_v _ -> "counter"
  | Registry.Gauge_v _ -> "gauge"
  | Registry.Histogram_v _ -> "histogram"

let prometheus samples =
  let buf = Buffer.create 4096 in
  let last_family = ref "" in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string buf s;
                            Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (s : Registry.sample) ->
      if s.s_name <> !last_family then begin
        last_family := s.s_name;
        if s.s_help <> "" then line "# HELP %s %s" s.s_name s.s_help;
        line "# TYPE %s %s" s.s_name (type_name s.s_value)
      end;
      match s.s_value with
      | Registry.Counter_v v | Registry.Gauge_v v ->
        line "%s%s %d" s.s_name (label_block s.s_labels) v
      | Registry.Histogram_v h ->
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            if i < Array.length h.bounds then begin
              cum := !cum + c;
              line "%s_bucket%s %d" s.s_name
                (label_block (s.s_labels @ [ ("le", string_of_int h.bounds.(i)) ]))
                !cum
            end)
          h.counts;
        line "%s_bucket%s %d" s.s_name
          (label_block (s.s_labels @ [ ("le", "+Inf") ]))
          h.hcount;
        line "%s_sum%s %d" s.s_name (label_block s.s_labels) h.hsum;
        line "%s_count%s %d" s.s_name (label_block s.s_labels) h.hcount)
    samples;
  Buffer.contents buf

(* {2 Parsing the text format back} *)

type psample = {
  p_name : string;
  p_labels : (string * string) list;
  p_value : float;
}

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9') || c = '_' || c = ':'

(* One sample line: NAME[{k="v",...}] SP VALUE.  Returns [Error] with a
   reason rather than raising — the smoke gate turns that into exit 1. *)
let parse_sample_line ln =
  let len = String.length ln in
  let rec name_end i = if i < len && is_name_char ln.[i] then name_end (i + 1) else i in
  let ne = name_end 0 in
  if ne = 0 then Error "expected metric name"
  else
    let name = String.sub ln 0 ne in
    let labels = ref [] in
    let pos = ref ne in
    let fail = ref None in
    (if !pos < len && ln.[!pos] = '{' then begin
       incr pos;
       let continue_ = ref true in
       while !continue_ && !fail = None do
         if !pos >= len then begin
           fail := Some "unterminated label block";
           continue_ := false
         end
         else if ln.[!pos] = '}' then begin
           incr pos;
           continue_ := false
         end
         else begin
           let ks = !pos in
           let rec kend i =
             if i < len && is_name_char ln.[i] then kend (i + 1) else i
           in
           let ke = kend ks in
           if ke = ks || ke + 1 >= len || ln.[ke] <> '=' || ln.[ke + 1] <> '"'
           then fail := Some "malformed label"
           else begin
             let vbuf = Buffer.create 8 in
             let i = ref (ke + 2) in
             let closed = ref false in
             while (not !closed) && !fail = None do
               if !i >= len then fail := Some "unterminated label value"
               else if ln.[!i] = '\\' && !i + 1 < len then begin
                 (match ln.[!i + 1] with
                  | 'n' -> Buffer.add_char vbuf '\n'
                  | c -> Buffer.add_char vbuf c);
                 i := !i + 2
               end
               else if ln.[!i] = '"' then begin
                 closed := true;
                 incr i
               end
               else begin
                 Buffer.add_char vbuf ln.[!i];
                 incr i
               end
             done;
             if !fail = None then begin
               labels :=
                 (String.sub ln ks (ke - ks), Buffer.contents vbuf) :: !labels;
               pos := !i;
               if !pos < len && ln.[!pos] = ',' then incr pos
             end
           end
         end
       done
     end);
    match !fail with
    | Some e -> Error e
    | None ->
      let rest = String.trim (String.sub ln !pos (len - !pos)) in
      if rest = "" then Error "missing sample value"
      else (
        match
          if rest = "+Inf" then Some infinity
          else if rest = "-Inf" then Some neg_infinity
          else float_of_string_opt rest
        with
        | None -> Error (Fmt.str "bad sample value %S" rest)
        | Some v ->
          Ok { p_name = name; p_labels = List.rev !labels; p_value = v })

let parse_prometheus text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | ln :: rest ->
      let ln' = String.trim ln in
      if ln' = "" || ln'.[0] = '#' then go (lineno + 1) acc rest
      else (
        match parse_sample_line ln' with
        | Ok s -> go (lineno + 1) (s :: acc) rest
        | Error e -> Error (Fmt.str "line %d: %s" lineno e))
  in
  go 1 [] lines

let sample_value samples ?(labels = []) name =
  List.find_map
    (fun s ->
      if s.p_name = name && s.p_labels = labels then Some s.p_value else None)
    samples

(* {2 JSON exposition} *)

let percentile_fields h =
  [
    ("p50", Json.Int (Registry.percentile h 0.50));
    ("p95", Json.Int (Registry.percentile h 0.95));
    ("p99", Json.Int (Registry.percentile h 0.99));
  ]

let sample_json (s : Registry.sample) =
  let base =
    [
      ("name", Json.Str s.s_name);
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.s_labels));
      ("type", Json.Str (type_name s.s_value));
    ]
  in
  match s.s_value with
  | Registry.Counter_v v | Registry.Gauge_v v ->
    Json.Obj (base @ [ ("value", Json.Int v) ])
  | Registry.Histogram_v h ->
    let cum = ref 0 in
    let buckets =
      List.concat
        [
          List.mapi
            (fun i b ->
              cum := !cum + h.counts.(i);
              Json.Obj
                [ ("le", Json.Str (string_of_int b)); ("count", Json.Int !cum) ])
            (Array.to_list h.bounds);
          [ Json.Obj
              [ ("le", Json.Str "+Inf"); ("count", Json.Int h.hcount) ] ];
        ]
    in
    Json.Obj
      (base
      @ [
          ("buckets", Json.Arr buckets);
          ("sum", Json.Int h.hsum);
          ("count", Json.Int h.hcount);
          ("min", Json.Int h.hmin);
          ("max", Json.Int h.hmax);
        ]
      @ percentile_fields h)

let json samples =
  Json.Obj
    [
      ("schema", Json.Str "lslp-metrics/1");
      ("metrics", Json.Arr (List.map sample_json samples));
    ]

(* {2 Folded stacks} *)

let folded stacks =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (stack, n) -> Buffer.add_string buf (Fmt.str "%s %d\n" stack n))
    (List.sort compare stacks);
  Buffer.contents buf

(* {2 Human histogram table} *)

let pp_table ppf samples =
  let hists =
    List.filter_map
      (fun (s : Registry.sample) ->
        match s.s_value with
        | Registry.Histogram_v h ->
          Some (s.s_name ^ label_block s.s_labels, h)
        | Counter_v _ | Gauge_v _ -> None)
      samples
  in
  Fmt.pf ppf "@[<v>%-40s %7s %9s %6s %6s %6s %6s %6s" "histogram" "count"
    "sum" "min" "max" "p50" "p95" "p99";
  List.iter
    (fun (name, (h : Registry.hview)) ->
      Fmt.pf ppf "@,%-40s %7d %9d %6d %6d %6d %6d %6d" name h.hcount h.hsum
        h.hmin h.hmax
        (Registry.percentile h 0.50)
        (Registry.percentile h 0.95)
        (Registry.percentile h 0.99))
    hists;
  Fmt.pf ppf "@]"
