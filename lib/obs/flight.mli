(** Bounded ring-buffer flight recorder for per-job lifecycle events.

    The service records every pool and cache transition — enqueued,
    dispatched, retried, shed, timed out, crashed, failed, completed,
    cache-hit/verified/evicted/miss/insert — with the pool's virtual
    tick, the attempt index and the attempt's injector seed, so a dumped
    recording is enough to replay a fault schedule exactly.

    Memory is bounded by [cap]: older events are overwritten and counted
    as {!dropped}, never silently lost from the accounting.  All fields
    are deterministic for a fixed (input, config, fault spec) on a
    1-domain pool, which is what lets `make metrics-check` pin a whole
    {!to_jsonl} dump byte for byte. *)

type event = {
  seq : int;  (** monotone record index, counted before any drop *)
  tick : int;  (** pool virtual tick; [-1] = recorded off the pool clock
                   (cache events) *)
  kind : string;
  job : string;
  attempt : int;  (** [-1] when the event has no attempt *)
  seed : int;  (** the attempt's injector seed; [0] when not applicable *)
  detail : string;
}

type t

val create : ?cap:int -> unit -> t
(** [cap] defaults to 4096 events; clamped to [>= 1]. *)

val capacity : t -> int

val record :
  t -> tick:int -> job:string -> ?attempt:int -> ?seed:int ->
  ?detail:string -> string -> unit
(** [record t ~tick ~job kind] appends one event; never raises, never
    blocks beyond the recorder's own short critical section. *)

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to the ring bound: [max 0 (recorded - cap)]. *)

val events : t -> event list
(** The surviving window, oldest first. *)

val to_jsonl : t -> string
(** One JSON object per line (schema: seq/tick/event/job/attempt/seed/
    detail), oldest first — the `--flight-out` payload. *)
