(** Array memory for kernel execution: one typed, bounds-checked array per
    array argument. *)

open Lslp_ir

type arr =
  | Int_mem of int64 array
  | Float_mem of float array
  | Int32_mem of int32 array
  | Float32_mem of float array  (** values kept single-rounded *)

type t

exception Fault of string
(** Out-of-bounds access, unallocated array, or type confusion. *)

val create : unit -> t
val alloc : t -> string -> Types.scalar -> size:int -> unit
val set_int : t -> string -> int64 array -> unit
val set_float : t -> string -> float array -> unit
val set_int32 : t -> string -> int32 array -> unit
val set_float32 : t -> string -> float array -> unit
(** Values are rounded to single precision on the way in. *)

val round32 : float -> float
(** Round a double to the nearest single-precision value. *)

val find : t -> string -> arr
val find_opt : t -> string -> arr option
val size : t -> string -> int
val read_int : t -> string -> int -> int64
val read_float : t -> string -> int -> float
val read_int32 : t -> string -> int -> int32
val read_float32 : t -> string -> int -> float
val write_int : t -> string -> int -> int64 -> unit
val write_float : t -> string -> int -> float -> unit
val write_int32 : t -> string -> int -> int32 -> unit
val write_float32 : t -> string -> int -> float -> unit

val snapshot : t -> t
(** Deep copy. *)

val arrays : t -> string list

type mismatch = {
  array_name : string;
  index : int;
  expected : string;
  actual : string;
}

val compare_memories : ?tol:float -> t -> t -> mismatch list
(** Differences between two memories.  Integers compare exactly; floats up to
    a relative tolerance (vectorization legitimately reassociates fast-math
    chains). *)

val float_close : tol:float -> float -> float -> bool
val pp_mismatch : mismatch Fmt.t
