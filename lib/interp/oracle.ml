(* Differential-testing oracle.

   Sets up argument bindings and memory big enough for every access a kernel
   makes, fills arrays with seeded pseudo-random data, runs two versions of
   the kernel (typically scalar vs vectorized) on identical initial states,
   and compares the final memories. *)

open Lslp_ir

type setup = {
  int_args : (string * int64) list;
  float_args : (string * float) list;
  mem : Memory.t;
}

(* Every address evaluated under the argument bindings must land inside its
   array; compute per-array extents from the function body.  Loop-block
   addresses are affine in the counter, so their extremes sit at the first
   and last iteration: evaluate both and keep the max. *)
let array_extents (f : Func.t) ~(env : string -> int) =
  let extents = Hashtbl.create 8 in
  let note base hi =
    let cur = Option.value ~default:0 (Hashtbl.find_opt extents base) in
    Hashtbl.replace extents base (max cur hi)
  in
  List.iter
    (fun b ->
      let counter_values =
        match Block.kind b with
        | Block.Straight -> [ None ]
        | Block.Loop li ->
          let stop =
            match li.Block.l_stop with
            | Block.Bound_const n -> n
            | Block.Bound_sym s -> env s
          in
          let last =
            if stop <= li.Block.l_start then li.Block.l_start
            else
              li.Block.l_start
              + (stop - 1 - li.Block.l_start) / li.Block.l_step
                * li.Block.l_step
          in
          [ Some (li.Block.counter, li.Block.l_start);
            Some (li.Block.counter, last) ]
      in
      List.iter
        (fun cv ->
          let env s =
            match cv with
            | Some (c, v) when String.equal c s -> v
            | Some _ | None -> env s
          in
          Block.iter
            (fun i ->
              match Instr.address i with
              | Some a ->
                note a.Instr.base (Affine.eval ~env a.index + a.access_lanes)
              | None -> ())
            b)
        counter_values)
    (Func.blocks f);
  extents

let default_index = 16

let setup ?(seed = 42) ?(index = default_index) (f : Func.t) =
  let rng = Random.State.make [| seed |] in
  let int_args =
    List.map
      (fun (a : Instr.arg) -> (a.arg_name, Int64.of_int index))
      (Func.int_args f)
  in
  let float_args =
    List.filter_map
      (fun (a : Instr.arg) ->
        match a.arg_ty with
        | Instr.Float_arg ->
          Some (a.arg_name, Random.State.float rng 8.0 +. 0.25)
        | Instr.Int_arg | Instr.Array_arg _ -> None)
      f.args
  in
  let env s =
    match List.assoc_opt s int_args with
    | Some v -> Int64.to_int v
    | None -> 0
  in
  let extents = array_extents f ~env in
  let mem = Memory.create () in
  List.iter
    (fun (a : Instr.arg) ->
      match a.arg_ty with
      | Instr.Array_arg elt ->
        let size =
          (Option.value ~default:0 (Hashtbl.find_opt extents a.arg_name))
          + default_index + 8
        in
        (match elt with
         | Types.I64 ->
           Memory.set_int mem a.arg_name
             (Array.init size (fun _ ->
                  (* nonzero, mixed-sign, small enough that products stay
                     meaningful *)
                  let v = Int64.of_int (1 + Random.State.int rng 1000) in
                  if Random.State.bool rng then Int64.neg v else v))
         | Types.F64 ->
           Memory.set_float mem a.arg_name
             (Array.init size (fun _ ->
                  Random.State.float rng 16.0 -. 8.0 +. 0.0625))
         | Types.I32 ->
           Memory.set_int32 mem a.arg_name
             (Array.init size (fun _ ->
                  let v = Int32.of_int (1 + Random.State.int rng 1000) in
                  if Random.State.bool rng then Int32.neg v else v))
         | Types.F32 ->
           Memory.set_float32 mem a.arg_name
             (Array.init size (fun _ ->
                  Random.State.float rng 16.0 -. 8.0 +. 0.0625))
         | Types.I1 ->
           (* the verifier rejects i1 arrays; nothing to allocate *)
           ())
      | Instr.Int_arg | Instr.Float_arg -> ())
    f.args;
  { int_args; float_args; mem }

type outcome = {
  mismatches : Memory.mismatch list;
  reference_cycles : int;
  candidate_cycles : int;
}

let compare_runs ?(tol = 1e-6) ?cost ?(seed = 42) ~(reference : Func.t)
    ~(candidate : Func.t) () =
  let s = setup ~seed reference in
  (* the candidate may access slightly different (wider) extents; size from
     the union of both functions *)
  let s2 = setup ~seed candidate in
  let mem_ref = Memory.create () in
  let bigger a b =
    match (a, b) with
    | Memory.Int_mem x, Memory.Int_mem y ->
      if Array.length x >= Array.length y then Memory.Int_mem x
      else Memory.Int_mem y
    | Memory.Float_mem x, Memory.Float_mem y ->
      if Array.length x >= Array.length y then Memory.Float_mem x
      else Memory.Float_mem y
    | Memory.Int32_mem x, Memory.Int32_mem y ->
      if Array.length x >= Array.length y then Memory.Int32_mem x
      else Memory.Int32_mem y
    | Memory.Float32_mem x, Memory.Float32_mem y ->
      if Array.length x >= Array.length y then Memory.Float32_mem x
      else Memory.Float32_mem y
    | a, _ -> a
  in
  List.iter
    (fun name ->
      let arr =
        match (Memory.find_opt s.mem name, Memory.find_opt s2.mem name) with
        | Some a, Some b -> bigger a b
        | Some a, None | None, Some a -> a
        | None, None -> assert false
      in
      match arr with
      | Memory.Int_mem a -> Memory.set_int mem_ref name a
      | Memory.Float_mem a -> Memory.set_float mem_ref name a
      | Memory.Int32_mem a -> Memory.set_int32 mem_ref name a
      | Memory.Float32_mem a -> Memory.set_float32 mem_ref name a)
    (List.sort_uniq String.compare (Memory.arrays s.mem @ Memory.arrays s2.mem));
  let mem_cand = Memory.snapshot mem_ref in
  let stats_ref =
    Eval.run ?cost reference ~int_args:s.int_args ~float_args:s.float_args
      ~mem:mem_ref
  in
  let stats_cand =
    Eval.run ?cost candidate ~int_args:s.int_args ~float_args:s.float_args
      ~mem:mem_cand
  in
  {
    mismatches = Memory.compare_memories ~tol mem_ref mem_cand;
    reference_cycles = stats_ref.Eval.cycles;
    candidate_cycles = stats_cand.Eval.cycles;
  }

let equivalent ?tol ?cost ?seed ~reference ~candidate () =
  (compare_runs ?tol ?cost ?seed ~reference ~candidate ()).mismatches = []
