(* Reference interpreter for the IR, scalar and vector forms alike.

   Plays two roles:
   - correctness oracle: the scalar and vectorized versions of a kernel must
     leave memory in (tolerance-)equal states;
   - execution simulator: each executed instruction is charged its cost from
     a cost model, producing deterministic "cycles" whose ratios stand in
     for the paper's measured speedups (OCaml cannot execute AVX2). *)

open Lslp_ir

type scalar_value =
  | VI of int64
  | VF of float
  | VI32 of int32
  | VF32 of float  (* kept single-rounded *)
  | VB of bool     (* one i1 mask lane *)

type rvalue = S of scalar_value | V of scalar_value array

exception Trap of string

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

let pp_scalar_value ppf = function
  | VI n -> Fmt.pf ppf "%Ld" n
  | VF x -> Fmt.pf ppf "%.17g" x
  | VI32 n -> Fmt.pf ppf "%ld" n
  | VF32 x -> Fmt.pf ppf "%.9g" x
  | VB b -> Fmt.pf ppf "%b" b

(* x86 masks 64-bit shift amounts to their low 6 bits (5 for 32-bit). *)
let shift_amount n = Int64.to_int (Int64.logand n 63L)
let shift_amount32 n = Int32.to_int (Int32.logand n 31l)

let int_binop (op : Opcode.binop) a b =
  match op with
  | Opcode.Add -> Int64.add a b
  | Opcode.Sub -> Int64.sub a b
  | Opcode.Mul -> Int64.mul a b
  | Opcode.Sdiv -> if Int64.equal b 0L then trap "division by zero" else Int64.div a b
  | Opcode.Srem -> if Int64.equal b 0L then trap "remainder by zero" else Int64.rem a b
  | Opcode.And -> Int64.logand a b
  | Opcode.Or -> Int64.logor a b
  | Opcode.Xor -> Int64.logxor a b
  | Opcode.Shl -> Int64.shift_left a (shift_amount b)
  | Opcode.Lshr -> Int64.shift_right_logical a (shift_amount b)
  | Opcode.Ashr -> Int64.shift_right a (shift_amount b)
  | Opcode.Smin -> if Int64.compare a b <= 0 then a else b
  | Opcode.Smax -> if Int64.compare a b >= 0 then a else b
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fmin
  | Opcode.Fmax -> trap "float opcode %s applied to ints" (Opcode.binop_name op)

let float_binop (op : Opcode.binop) a b =
  match op with
  | Opcode.Fadd -> a +. b
  | Opcode.Fsub -> a -. b
  | Opcode.Fmul -> a *. b
  | Opcode.Fdiv -> a /. b
  | Opcode.Fmin -> if a <= b then a else b
  | Opcode.Fmax -> if a >= b then a else b
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Sdiv | Opcode.Srem
  | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Shl | Opcode.Lshr
  | Opcode.Ashr | Opcode.Smin | Opcode.Smax ->
    trap "int opcode %s applied to floats" (Opcode.binop_name op)

let int32_binop (op : Opcode.binop) a b =
  match op with
  | Opcode.Add -> Int32.add a b
  | Opcode.Sub -> Int32.sub a b
  | Opcode.Mul -> Int32.mul a b
  | Opcode.Sdiv ->
    if Int32.equal b 0l then trap "division by zero" else Int32.div a b
  | Opcode.Srem ->
    if Int32.equal b 0l then trap "remainder by zero" else Int32.rem a b
  | Opcode.And -> Int32.logand a b
  | Opcode.Or -> Int32.logor a b
  | Opcode.Xor -> Int32.logxor a b
  | Opcode.Shl -> Int32.shift_left a (shift_amount32 b)
  | Opcode.Lshr -> Int32.shift_right_logical a (shift_amount32 b)
  | Opcode.Ashr -> Int32.shift_right a (shift_amount32 b)
  | Opcode.Smin -> if Int32.compare a b <= 0 then a else b
  | Opcode.Smax -> if Int32.compare a b >= 0 then a else b
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fmin
  | Opcode.Fmax ->
    trap "float opcode %s applied to ints" (Opcode.binop_name op)

(* Mask lanes only combine with the bitwise logical opcodes. *)
let mask_binop (op : Opcode.binop) a b =
  match op with
  | Opcode.And -> a && b
  | Opcode.Or -> a || b
  | Opcode.Xor -> a <> b
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Sdiv | Opcode.Srem
  | Opcode.Shl | Opcode.Lshr | Opcode.Ashr | Opcode.Smin | Opcode.Smax
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fmin
  | Opcode.Fmax ->
    trap "opcode %s applied to i1 mask lanes" (Opcode.binop_name op)

let scalar_binop op a b =
  match (a, b) with
  | VI x, VI y -> VI (int_binop op x y)
  | VF x, VF y -> VF (float_binop op x y)
  | VI32 x, VI32 y -> VI32 (int32_binop op x y)
  | VF32 x, VF32 y -> VF32 (Memory.round32 (float_binop op x y))
  | VB x, VB y -> VB (mask_binop op x y)
  | (VI _ | VF _ | VI32 _ | VF32 _ | VB _), _ -> trap "mixed-type binop"

let scalar_cmp (op : Opcode.cmp) a b =
  let of_order c =
    match op with
    | Opcode.Lt -> c < 0
    | Opcode.Le -> c <= 0
    | Opcode.Gt -> c > 0
    | Opcode.Ge -> c >= 0
    | Opcode.Eq -> c = 0
    | Opcode.Ne -> c <> 0
  in
  match (a, b) with
  | VI x, VI y -> VB (of_order (Int64.compare x y))
  | VI32 x, VI32 y -> VB (of_order (Int32.compare x y))
  | VF x, VF y | VF32 x, VF32 y ->
    (* IEEE semantics: every ordered predicate is false on NaN *)
    VB
      (if Float.is_nan x || Float.is_nan y then
         match op with Opcode.Ne -> true | _ -> false
       else of_order (compare (x : float) y))
  | VB _, _ | _, VB _ -> trap "cmp applied to i1 mask lanes"
  | (VI _ | VF _ | VI32 _ | VF32 _), _ -> trap "mixed-type cmp"

let as_mask = function
  | VB b -> b
  | VI _ | VF _ | VI32 _ | VF32 _ -> trap "expected an i1 mask lane"

let scalar_unop (op : Opcode.unop) v =
  match (op, v) with
  | Opcode.Neg, VI x -> VI (Int64.neg x)
  | Opcode.Fneg, VF x -> VF (-.x)
  | Opcode.Fsqrt, VF x -> VF (sqrt x)
  | Opcode.Fabs, VF x -> VF (abs_float x)
  | Opcode.Neg, VI32 x -> VI32 (Int32.neg x)
  | Opcode.Fneg, VF32 x -> VF32 (-.x)
  | Opcode.Fsqrt, VF32 x -> VF32 (Memory.round32 (sqrt x))
  | Opcode.Fabs, VF32 x -> VF32 (abs_float x)
  | (Opcode.Neg | Opcode.Fneg | Opcode.Fsqrt | Opcode.Fabs), _ ->
    trap "unop type mismatch"

type stats = { mutable cycles : int; mutable executed : int }

type state = {
  func : Func.t;
  mem : Memory.t;
  int_args : (string, int64) Hashtbl.t;
  float_args : (string, float) Hashtbl.t;
  values : (int, rvalue) Hashtbl.t;       (* instr id -> computed value *)
  cost : Lslp_costmodel.Model.t;
  stats : stats;
}

let affine_env st s =
  match Hashtbl.find_opt st.int_args s with
  | Some v -> Int64.to_int v
  | None -> trap "index symbol %s has no binding" s

let eval_value st (v : Instr.value) =
  match v with
  | Instr.Const (Instr.Cint n) -> S (VI n)
  | Instr.Const (Instr.Cfloat x) -> S (VF x)
  | Instr.Const (Instr.Cint32 n) -> S (VI32 n)
  | Instr.Const (Instr.Cfloat32 x) -> S (VF32 (Memory.round32 x))
  | Instr.Arg a ->
    (match a.arg_ty with
     | Instr.Int_arg ->
       (match Hashtbl.find_opt st.int_args a.arg_name with
        | Some v -> S (VI v)
        | None -> trap "missing int argument %s" a.arg_name)
     | Instr.Float_arg ->
       (match Hashtbl.find_opt st.float_args a.arg_name with
        | Some v -> S (VF v)
        | None -> trap "missing float argument %s" a.arg_name)
     | Instr.Array_arg _ -> trap "array %s used as value" a.arg_name)
  | Instr.Ins i ->
    (match Hashtbl.find_opt st.values i.id with
     | Some v -> v
     | None -> trap "use of unevaluated instruction (bad schedule?)")

let as_scalar = function
  | S v -> v
  | V _ -> trap "expected scalar, got vector"

let as_vector = function
  | V v -> v
  | S _ -> trap "expected vector, got scalar"

let load_element st (a : Instr.address) k =
  let base_index = Affine.eval ~env:(affine_env st) a.index in
  match a.elt with
  | Types.I64 -> VI (Memory.read_int st.mem a.base (base_index + k))
  | Types.F64 -> VF (Memory.read_float st.mem a.base (base_index + k))
  | Types.I32 -> VI32 (Memory.read_int32 st.mem a.base (base_index + k))
  | Types.F32 -> VF32 (Memory.read_float32 st.mem a.base (base_index + k))
  | Types.I1 -> trap "i1 load: masks never touch memory"

let store_element st (a : Instr.address) k v =
  let base_index = Affine.eval ~env:(affine_env st) a.index in
  match (a.elt, v) with
  | Types.I64, VI x -> Memory.write_int st.mem a.base (base_index + k) x
  | Types.F64, VF x -> Memory.write_float st.mem a.base (base_index + k) x
  | Types.I32, VI32 x -> Memory.write_int32 st.mem a.base (base_index + k) x
  | Types.F32, VF32 x ->
    Memory.write_float32 st.mem a.base (base_index + k) x
  | (Types.I64 | Types.F64 | Types.I32 | Types.F32 | Types.I1), _ ->
    trap "store element type mismatch"

let exec_instr st (i : Instr.t) =
  st.stats.executed <- st.stats.executed + 1;
  st.stats.cycles <- st.stats.cycles + Lslp_costmodel.Model.instr_cost st.cost i;
  let result =
    match i.kind with
    | Instr.Binop (op, x, y) ->
      (match (eval_value st x, eval_value st y) with
       | S a, S b -> Some (S (scalar_binop op a b))
       | V a, V b ->
         if Array.length a <> Array.length b then trap "lane count mismatch";
         Some (V (Array.map2 (scalar_binop op) a b))
       | S _, V _ | V _, S _ -> trap "mixed scalar/vector binop")
    | Instr.Unop (op, x) ->
      (match eval_value st x with
       | S a -> Some (S (scalar_unop op a))
       | V a -> Some (V (Array.map (scalar_unop op) a)))
    | Instr.Load a ->
      if a.access_lanes = 1 then Some (S (load_element st a 0))
      else Some (V (Array.init a.access_lanes (load_element st a)))
    | Instr.Store (a, v) ->
      (if a.access_lanes = 1 then store_element st a 0 (as_scalar (eval_value st v))
       else begin
         let lanes = as_vector (eval_value st v) in
         if Array.length lanes <> a.access_lanes then
           trap "store lane count mismatch";
         Array.iteri (fun k sv -> store_element st a k sv) lanes
       end);
      None
    | Instr.Cmp (op, x, y) ->
      (match (eval_value st x, eval_value st y) with
       | S a, S b -> Some (S (scalar_cmp op a b))
       | V a, V b ->
         if Array.length a <> Array.length b then trap "lane count mismatch";
         Some (V (Array.map2 (scalar_cmp op) a b))
       | S _, V _ | V _, S _ -> trap "mixed scalar/vector cmp")
    | Instr.Select (m, x, y) ->
      (match (eval_value st m, eval_value st x, eval_value st y) with
       | S mv, S a, S b -> Some (S (if as_mask mv then a else b))
       | V mv, V a, V b ->
         if Array.length mv <> Array.length a
            || Array.length a <> Array.length b
         then trap "lane count mismatch";
         Some
           (V
              (Array.init (Array.length a) (fun k ->
                   if as_mask mv.(k) then a.(k) else b.(k))))
       | (S _ | V _), _, _ -> trap "mixed scalar/vector select")
    | Instr.Masked_load (a, m, p) ->
      (* a masked-off lane reads nothing at all — not even bounds-checked,
         since the guard may be exactly what keeps the access in range —
         and yields the passthrough lane instead *)
      if a.access_lanes = 1 then
        if as_mask (as_scalar (eval_value st m)) then
          Some (S (load_element st a 0))
        else Some (S (as_scalar (eval_value st p)))
      else begin
        let mask = as_vector (eval_value st m) in
        let pass = as_vector (eval_value st p) in
        if
          Array.length mask <> a.access_lanes
          || Array.length pass <> a.access_lanes
        then trap "masked load lane count mismatch";
        Some
          (V
             (Array.init a.access_lanes (fun k ->
                  if as_mask mask.(k) then load_element st a k else pass.(k))))
      end
    | Instr.Masked_store (a, v, m) ->
      (* a masked-off lane writes nothing *)
      (if a.access_lanes = 1 then begin
         let sv = as_scalar (eval_value st v) in
         if as_mask (as_scalar (eval_value st m)) then store_element st a 0 sv
       end
       else begin
         let mask = as_vector (eval_value st m) in
         let lanes = as_vector (eval_value st v) in
         if
           Array.length mask <> a.access_lanes
           || Array.length lanes <> a.access_lanes
         then trap "masked store lane count mismatch";
         Array.iteri
           (fun k sv -> if as_mask mask.(k) then store_element st a k sv)
           lanes
       end);
      None
    | Instr.Splat v ->
      let s = as_scalar (eval_value st v) in
      Some (V (Array.make (Types.lanes i.ty) s))
    | Instr.Buildvec vs ->
      Some (V (Array.of_list (List.map (fun v -> as_scalar (eval_value st v)) vs)))
    | Instr.Extract (v, lane) ->
      let lanes = as_vector (eval_value st v) in
      if lane < 0 || lane >= Array.length lanes then trap "extract lane OOB";
      Some (S lanes.(lane))
    | Instr.Reduce (op, v) ->
      let lanes = as_vector (eval_value st v) in
      if Array.length lanes = 0 then trap "reduce of empty vector";
      Some
        (S (Array.fold_left (scalar_binop op) lanes.(0)
              (Array.sub lanes 1 (Array.length lanes - 1))))
    | Instr.Shuffle (v, idx) ->
      let lanes = as_vector (eval_value st v) in
      Some
        (V (Array.of_list
              (List.map
                 (fun k ->
                   if k < 0 || k >= Array.length lanes then
                     trap "shuffle index OOB"
                   else lanes.(k))
                 idx)))
  in
  match result with
  | Some r -> Hashtbl.replace st.values i.id r
  | None -> ()

(* Straight blocks run once; loop blocks iterate their counter from
   [l_start] to the (exclusive) bound, binding the counter into the integer
   environment for the duration of each iteration so address evaluation
   sees it as just another i64 symbol.  Symbolic bounds resolve through the
   same environment.  Re-executing the body simply overwrites the previous
   iteration's values: defs precede uses within the body, so no stale value
   is ever read. *)
let exec_block st (b : Block.t) =
  match Block.kind b with
  | Block.Straight -> Block.iter (exec_instr st) b
  | Block.Loop li ->
    let stop =
      match li.Block.l_stop with
      | Block.Bound_const n -> n
      | Block.Bound_sym s ->
        (match Hashtbl.find_opt st.int_args s with
         | Some v -> Int64.to_int v
         | None -> trap "loop bound %s has no binding" s)
    in
    if li.Block.l_step <= 0 then trap "loop step must be positive";
    let saved = Hashtbl.find_opt st.int_args li.Block.counter in
    let c = ref li.Block.l_start in
    while !c < stop do
      Hashtbl.replace st.int_args li.Block.counter (Int64.of_int !c);
      Block.iter (exec_instr st) b;
      c := !c + li.Block.l_step
    done;
    (match saved with
     | Some v -> Hashtbl.replace st.int_args li.Block.counter v
     | None -> Hashtbl.remove st.int_args li.Block.counter)

let run ?(cost = Lslp_costmodel.Model.skylake_machine) (f : Func.t)
    ~(int_args : (string * int64) list)
    ~(float_args : (string * float) list) ~(mem : Memory.t) =
  let st =
    {
      func = f;
      mem;
      int_args = Hashtbl.create 8;
      float_args = Hashtbl.create 8;
      values = Hashtbl.create 64;
      cost;
      stats = { cycles = 0; executed = 0 };
    }
  in
  List.iter (fun (k, v) -> Hashtbl.replace st.int_args k v) int_args;
  List.iter (fun (k, v) -> Hashtbl.replace st.float_args k v) float_args;
  List.iter (exec_block st) (Func.blocks st.func);
  st.stats
