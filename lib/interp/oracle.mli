(** Differential-testing oracle: run two versions of a kernel (typically
    scalar vs vectorized) on identical seeded inputs and compare final
    memories and simulated cycle counts. *)

open Lslp_ir

type setup = {
  int_args : (string * int64) list;
  float_args : (string * float) list;
  mem : Memory.t;
}

val setup : ?seed:int -> ?index:int -> Func.t -> setup
(** Bind every integer argument to [index] (default 16), every float
    argument to a seeded random value, and allocate each array large enough
    for all accesses the body makes, filled with seeded pseudo-random data
    (integers nonzero, so [sdiv]/[srem] kernels never trap). *)

type outcome = {
  mismatches : Memory.mismatch list;
  reference_cycles : int;
  candidate_cycles : int;
}

val compare_runs :
  ?tol:float ->
  ?cost:Lslp_costmodel.Model.t ->
  ?seed:int ->
  reference:Func.t ->
  candidate:Func.t ->
  unit ->
  outcome

val equivalent :
  ?tol:float ->
  ?cost:Lslp_costmodel.Model.t ->
  ?seed:int ->
  reference:Func.t ->
  candidate:Func.t ->
  unit ->
  bool
