(** Reference interpreter and execution simulator for the IR.

    Executes scalar and vector instructions alike over a {!Memory.t}, and
    charges every executed instruction its cost from a
    {!Lslp_costmodel.Model.t}; the accumulated total is the simulated cycle
    count used by the performance experiments. *)

open Lslp_ir

type scalar_value =
  | VI of int64
  | VF of float
  | VI32 of int32
  | VF32 of float  (** kept single-rounded *)
  | VB of bool  (** one i1 mask lane *)
type rvalue = S of scalar_value | V of scalar_value array

exception Trap of string
(** Dynamic type confusion, division by zero, missing bindings, or lane
    mismatches — all indicate an IR or vectorizer bug in this codebase. *)

val pp_scalar_value : scalar_value Fmt.t

type stats = { mutable cycles : int; mutable executed : int }

val run :
  ?cost:Lslp_costmodel.Model.t ->
  Func.t ->
  int_args:(string * int64) list ->
  float_args:(string * float) list ->
  mem:Memory.t ->
  stats
(** Execute the function body once, mutating [mem].  [cost] defaults to
    {!Lslp_costmodel.Model.skylake_machine}. *)

(**/**)

(* Exposed for focused unit tests of arithmetic semantics. *)
val int_binop : Opcode.binop -> int64 -> int64 -> int64
val int32_binop : Opcode.binop -> int32 -> int32 -> int32
val float_binop : Opcode.binop -> float -> float -> float
val scalar_binop : Opcode.binop -> scalar_value -> scalar_value -> scalar_value
val scalar_unop : Opcode.unop -> scalar_value -> scalar_value
val scalar_cmp : Opcode.cmp -> scalar_value -> scalar_value -> scalar_value
