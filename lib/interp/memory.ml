(* Array memory for kernel execution: one typed array per array argument. *)

open Lslp_ir

type arr =
  | Int_mem of int64 array
  | Float_mem of float array
  | Int32_mem of int32 array
  | Float32_mem of float array  (* values kept single-rounded *)

type t = (string, arr) Hashtbl.t

exception Fault of string

let fault fmt = Fmt.kstr (fun s -> raise (Fault s)) fmt

let create () : t = Hashtbl.create 8

let alloc t name (elt : Types.scalar) ~size =
  let arr =
    match elt with
    | Types.I64 -> Int_mem (Array.make size 0L)
    | Types.F64 -> Float_mem (Array.make size 0.0)
    | Types.I32 -> Int32_mem (Array.make size 0l)
    | Types.F32 -> Float32_mem (Array.make size 0.0)
    | Types.I1 -> fault "i1 is not a memory element type"
  in
  Hashtbl.replace t name arr

let set_int t name values = Hashtbl.replace t name (Int_mem (Array.copy values))

let set_float t name values =
  Hashtbl.replace t name (Float_mem (Array.copy values))

(* single-precision rounding *)
let round32 x = Int32.float_of_bits (Int32.bits_of_float x)

let set_int32 t name values =
  Hashtbl.replace t name (Int32_mem (Array.copy values))

let set_float32 t name values =
  Hashtbl.replace t name (Float32_mem (Array.map round32 values))

let find_opt t name = Hashtbl.find_opt t name

let find t name =
  match Hashtbl.find_opt t name with
  | Some arr -> arr
  | None -> fault "access to unallocated array %s" name

let size t name =
  match find t name with
  | Int_mem a -> Array.length a
  | Float_mem a -> Array.length a
  | Int32_mem a -> Array.length a
  | Float32_mem a -> Array.length a

let check_bounds name i len =
  if i < 0 || i >= len then
    fault "out-of-bounds access %s[%d] (size %d)" name i len

let read_int t name i =
  match find t name with
  | Int_mem a -> check_bounds name i (Array.length a); a.(i)
  | Float_mem _ | Int32_mem _ | Float32_mem _ ->
    fault "type confusion: %s does not hold i64" name

let read_float t name i =
  match find t name with
  | Float_mem a -> check_bounds name i (Array.length a); a.(i)
  | Int_mem _ | Int32_mem _ | Float32_mem _ ->
    fault "type confusion: %s does not hold f64" name

let read_int32 t name i =
  match find t name with
  | Int32_mem a -> check_bounds name i (Array.length a); a.(i)
  | Int_mem _ | Float_mem _ | Float32_mem _ ->
    fault "type confusion: %s does not hold i32" name

let read_float32 t name i =
  match find t name with
  | Float32_mem a -> check_bounds name i (Array.length a); a.(i)
  | Int_mem _ | Float_mem _ | Int32_mem _ ->
    fault "type confusion: %s does not hold f32" name

let write_int t name i v =
  match find t name with
  | Int_mem a -> check_bounds name i (Array.length a); a.(i) <- v
  | Float_mem _ | Int32_mem _ | Float32_mem _ ->
    fault "type confusion: %s does not hold i64" name

let write_float t name i v =
  match find t name with
  | Float_mem a -> check_bounds name i (Array.length a); a.(i) <- v
  | Int_mem _ | Int32_mem _ | Float32_mem _ ->
    fault "type confusion: %s does not hold f64" name

let write_int32 t name i v =
  match find t name with
  | Int32_mem a -> check_bounds name i (Array.length a); a.(i) <- v
  | Int_mem _ | Float_mem _ | Float32_mem _ ->
    fault "type confusion: %s does not hold i32" name

let write_float32 t name i v =
  match find t name with
  | Float32_mem a ->
    check_bounds name i (Array.length a);
    a.(i) <- round32 v
  | Int_mem _ | Float_mem _ | Int32_mem _ ->
    fault "type confusion: %s does not hold f32" name

let snapshot t : t =
  let copy = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter
    (fun name arr ->
      let arr' =
        match arr with
        | Int_mem a -> Int_mem (Array.copy a)
        | Float_mem a -> Float_mem (Array.copy a)
        | Int32_mem a -> Int32_mem (Array.copy a)
        | Float32_mem a -> Float32_mem (Array.copy a)
      in
      Hashtbl.replace copy name arr')
    t;
  copy

let arrays t = Hashtbl.fold (fun name _ acc -> name :: acc) t []

(* Compare two memories.  Integer arrays must match exactly; float arrays up
   to a relative tolerance, because (L)SLP reassociates fast-math chains and
   so legitimately changes rounding. *)
let float_close ~tol a b =
  a = b
  || (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.max (abs_float a) (abs_float b))

type mismatch = {
  array_name : string;
  index : int;
  expected : string;
  actual : string;
}

let compare_memories ?(tol = 1e-9) (expected : t) (actual : t) =
  let mismatches = ref [] in
  let note array_name index exp act =
    mismatches := { array_name; index; expected = exp; actual = act }
                  :: !mismatches
  in
  Hashtbl.iter
    (fun name arr ->
      match (arr, Hashtbl.find_opt actual name) with
      | _, None -> note name (-1) "array present" "array missing"
      | Int_mem a, Some (Int_mem b) ->
        if Array.length a <> Array.length b then
          note name (-1)
            (Fmt.str "size %d" (Array.length a))
            (Fmt.str "size %d" (Array.length b))
        else
          Array.iteri
            (fun i x ->
              if not (Int64.equal x b.(i)) then
                note name i (Int64.to_string x) (Int64.to_string b.(i)))
            a
      | Float_mem a, Some (Float_mem b) ->
        if Array.length a <> Array.length b then
          note name (-1)
            (Fmt.str "size %d" (Array.length a))
            (Fmt.str "size %d" (Array.length b))
        else
          Array.iteri
            (fun i x ->
              if not (float_close ~tol x b.(i)) then
                note name i (Fmt.str "%.17g" x) (Fmt.str "%.17g" b.(i)))
            a
      | Int32_mem a, Some (Int32_mem b) ->
        if Array.length a <> Array.length b then
          note name (-1)
            (Fmt.str "size %d" (Array.length a))
            (Fmt.str "size %d" (Array.length b))
        else
          Array.iteri
            (fun i x ->
              if not (Int32.equal x b.(i)) then
                note name i (Int32.to_string x) (Int32.to_string b.(i)))
            a
      | Float32_mem a, Some (Float32_mem b) ->
        if Array.length a <> Array.length b then
          note name (-1)
            (Fmt.str "size %d" (Array.length a))
            (Fmt.str "size %d" (Array.length b))
        else
          Array.iteri
            (fun i x ->
              if not (float_close ~tol:(Float.max tol 1e-5) x b.(i)) then
                note name i (Fmt.str "%.9g" x) (Fmt.str "%.9g" b.(i)))
            a
      | (Int_mem _ | Float_mem _ | Int32_mem _ | Float32_mem _), Some _ ->
        note name (-1) "element type" "element type mismatch")
    expected;
  List.rev !mismatches

let pp_mismatch ppf m =
  Fmt.pf ppf "%s[%d]: expected %s, got %s" m.array_name m.index m.expected
    m.actual
