(* Kernels standing in for the remaining whole benchmarks of Figures 11-12
   (435.gromacs, 454.calculix, 481.wrf, 410.bwaves, 416.gamess), plus the
   scalar filler used to dilute kernels into "whole programs".

   The paper's whole-benchmark experiment only needs regions with the same
   qualitative behaviour (some improved by reordering, some not, most code
   untouched); these kernels supply the vectorizable regions and
   [filler_chain] supplies the cold scalar bulk. *)

(* 435.gromacs: Lennard-Jones force inner step for two neighbours at once;
   r^-6 / r^-12 terms with commuted multiplies. *)
let lj_force = {|
kernel lj_force(f64 F[], f64 R2[], f64 C6[], f64 C12[], i64 i) {
  f64 ra = R2[2*i+0];
  f64 rb = R2[2*i+1];
  f64 ia = 1.0 / ra;
  f64 ib = 1.0 / rb;
  f64 i3a = ia * ia * ia;
  f64 i3b = ib * (ib * ib);
  F[2*i+0] = C12[2*i+0] * (i3a * i3a) - C6[2*i+0] * i3a;
  F[2*i+1] = (i3b * i3b) * C12[2*i+1] - i3b * C6[2*i+1];
}
|}

(* 454.calculix: 3x3 matrix times vector (one row pair), the dense linear
   algebra kernel shape. *)
let calculix_mat3 = {|
kernel calculix_mat3(f64 Y[], f64 M[], f64 X[], i64 i) {
  f64 x0 = X[3*i+0];
  f64 x1 = X[3*i+1];
  f64 x2 = X[3*i+2];
  Y[2*i+0] = M[6*i+0] * x0 + (M[6*i+1] * x1 + M[6*i+2] * x2);
  Y[2*i+1] = (x1 * M[6*i+4] + x0 * M[6*i+3]) + M[6*i+5] * x2;
}
|}

(* 481.wrf: a pointwise update combining two fields with weights, the
   typical straight-line body of a WRF physics loop. *)
let wrf_update = {|
kernel wrf_update(f64 Q[], f64 T[], f64 P[], f64 W[], i64 i) {
  Q[2*i+0] = T[2*i+0] * W[2*i+0] + P[2*i+0] * 0.25;
  Q[2*i+1] = W[2*i+1] * T[2*i+1] + 0.25 * P[2*i+1];
}
|}

(* 410.bwaves: one cell of the block tri-diagonal update. *)
let bwaves_block = {|
kernel bwaves_block(f64 Z[], f64 A[], f64 B[], f64 C[], i64 i) {
  Z[2*i+0] = A[2*i+0] * B[2*i+0] + C[2*i+0] * B[2*i+1] + A[2*i+1];
  Z[2*i+1] = B[2*i+1] * A[2*i+1] + B[2*i+0] * C[2*i+1] + A[2*i+0];
}
|}

(* 416.gamess: an electron-repulsion-style contraction of four factors,
   associated differently per lane. *)
let gamess_contract = {|
kernel gamess_contract(f64 G[], f64 S[], f64 T[], i64 i) {
  f64 s0 = S[2*i+0];
  f64 s1 = S[2*i+1];
  f64 t0 = T[2*i+0];
  f64 t1 = T[2*i+1];
  G[2*i+0] = s0 * t0 * (s0 + t0) + s0 * 0.5;
  G[2*i+1] = (t1 + s1) * (t1 * s1) + 0.5 * s1;
}
|}

(* Scalar filler: a long dependence chain that no SLP variant can touch
   (single lane, serial dependences).  Used to embed kernels into
   "whole programs" for the Figure 11/12 experiments. *)
let filler_chain = {|
kernel filler_chain(f64 S[], i64 i) {
  f64 a0 = S[i] * 1.0001 + 0.5;
  f64 a1 = a0 * a0 - 0.25;
  f64 a2 = a1 * 1.0001 + a0;
  f64 a3 = a2 * a2 - a1;
  f64 a4 = a3 * 1.0001 + a2;
  f64 a5 = a4 * a4 - a3;
  f64 a6 = a5 * 1.0001 + a4;
  f64 a7 = a6 * a6 - a5;
  f64 a8 = a7 * 1.0001 + a6;
  f64 a9 = a8 * a8 - a7;
  f64 b0 = a9 * 1.0001 + a8;
  f64 b1 = b0 * b0 - a9;
  f64 b2 = b1 * 1.0001 + b0;
  f64 b3 = b2 * b2 - b1;
  f64 b4 = b3 * 1.0001 + b2;
  f64 b5 = b4 * b4 - b3;
  S[i] = b5;
}
|}

(* A region every configuration vectorizes identically (aligned operands,
   consecutive loads).  Whole benchmarks contain many such regions; they are
   what keeps the Figure-11 cost ratios near 100%. *)
let common_region = {|
kernel common_region(f64 R[], f64 A[], f64 B[], i64 i) {
  R[4*i+0] = A[4*i+0] * 0.5 + B[4*i+0];
  R[4*i+1] = A[4*i+1] * 0.5 + B[4*i+1];
  R[4*i+2] = A[4*i+2] * 0.5 + B[4*i+2];
  R[4*i+3] = A[4*i+3] * 0.5 + B[4*i+3];
}
|}
