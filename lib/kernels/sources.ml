(* Kernel-language sources for the paper's evaluation kernels (Table 2).

   The SPEC CPU2006 kernels are reconstructed from the published mathematics
   of the routines the paper points at (POV-Ray algebraic-surface
   evaluators, the MILC SU(2) matrix-vector product, quaternion z^3, ...).
   What matters to the (L)SLP comparison is the *shape* of the straight-line
   code — which operations are commutative, how operands are associated and
   ordered across lanes — and the reconstructions preserve exactly that:
   each kernel contains adjacent stores whose per-lane expressions are
   isomorphic up to commutation/association, the situation Sections 3.1-3.3
   of the paper analyse. *)

(* §3.1 Figure 2: load address mismatch. *)
let motivation_loads = {|
kernel motivation_loads(i64 A[], i64 B[], i64 C[], i64 i) {
  A[i+0] = (B[i+0] << 1) & (C[i+0] << 2);
  A[i+1] = (C[i+1] << 3) & (B[i+1] << 4);
}
|}

(* §3.2 Figure 3: opcode mismatch (0x11..0x14 written in decimal). *)
let motivation_opcodes = {|
kernel motivation_opcodes(i64 A[], i64 B[], i64 C[], i64 D[], i64 E[], i64 i) {
  A[i+0] = ((B[2*i] << 1) & 17) + ((C[2*i] + 2) & 18);
  A[i+1] = ((D[2*i] + 3) & 19) + ((E[2*i] << 4) & 20);
}
|}

(* §3.3 Figure 4: associativity mismatch, fixed by multi-nodes. *)
let motivation_multi = {|
kernel motivation_multi(i64 A[], i64 B[], i64 C[], i64 D[], i64 E[], i64 i) {
  A[i+0] = A[i+0] & (B[i+0] + C[i+0]) & (D[i+0] + E[i+0]);
  A[i+1] = (D[i+1] + E[i+1]) & (B[i+1] + C[i+1]) & A[i+1];
}
|}

(* 453.povray fnintern.cpp:355 (f_boy_surface): dense polynomial over
   (x,y,z); the four accumulated terms are written with different
   associations and operand orders per component, exactly the multi-node
   case. *)
let boy_surface = {|
kernel boy_surface(f64 P[], f64 X[], f64 Y[], f64 Z[], i64 i) {
  P[4*i+0] = X[4*i+0] * Y[4*i+0]
           + (Y[4*i+0] * Z[4*i+0] + Z[4*i+0] * X[4*i+0])
           + X[4*i+0] * X[4*i+0];
  P[4*i+1] = (Y[4*i+1] * Z[4*i+1] + X[4*i+1] * X[4*i+1])
           + (X[4*i+1] * Y[4*i+1] + Z[4*i+1] * X[4*i+1]);
  P[4*i+2] = Z[4*i+2] * X[4*i+2] + X[4*i+2] * X[4*i+2]
           + (X[4*i+2] * Y[4*i+2] + Y[4*i+2] * Z[4*i+2]);
  P[4*i+3] = (X[4*i+3] * Y[4*i+3] + Y[4*i+3] * Z[4*i+3])
           + (Z[4*i+3] * X[4*i+3] + X[4*i+3] * X[4*i+3]);
}
|}

(* 453.povray poly.cpp:813 (solve_quadratic inside Intersect_Quadratic):
   two rays' quadratics solved side by side.  The discriminant is written in
   the fast-math-canonical form b*b + (-4)*(a*c); both discriminant operands
   are then fmul instructions, so the vanilla opcode heuristic cannot order
   them — only look-ahead (which sees the consecutive a/b/c loads one level
   down) recovers the wide loads, the §3.1 situation one level deep. *)
let intersect_quadratic = {|
kernel intersect_quadratic(f64 T[], f64 A[], f64 B[], f64 C[], i64 i) {
  f64 a0 = A[2*i+0];
  f64 a1 = A[2*i+1];
  f64 b0 = B[2*i+0];
  f64 b1 = B[2*i+1];
  f64 c0 = C[2*i+0];
  f64 c1 = C[2*i+1];
  f64 d0 = b0 * b0 + (0.0 - 4.0) * (a0 * c0);
  f64 d1 = (c1 * a1) * (0.0 - 4.0) + b1 * b1;
  f64 s0 = sqrt(d0);
  f64 s1 = sqrt(d1);
  T[2*i+0] = (s0 - b0) / (a0 + a0);
  T[2*i+1] = (s1 - b1) / (a1 + a1);
}
|}

(* 453.povray quatern.cpp:433 (calc-z3): quaternion z^3.  With
   z = (x, v) the cube is (x(x^2 - 3|v|^2), v(3x^2 - |v|^2)); four adjacent
   stores, commutative mul/add chains.  All four components are scaled by
   the shared factor c (the x-component's distinct factor is folded
   upstream), which the reorderer must recognize as a splat. *)
let calc_z3 = {|
kernel calc_z3(f64 R[], f64 Q[], i64 i) {
  f64 x2 = Q[4*i+0] * Q[4*i+0];
  f64 vv = Q[4*i+1] * Q[4*i+1] + (Q[4*i+2] * Q[4*i+2] + Q[4*i+3] * Q[4*i+3]);
  f64 c = x2 + x2 + x2 - vv;
  R[4*i+0] = Q[4*i+0] * c;
  R[4*i+1] = Q[4*i+1] * c;
  R[4*i+2] = c * Q[4*i+2];
  R[4*i+3] = Q[4*i+3] * c;
}
|}

(* 453.povray vector.h:362 (VSumSqr): |v|^2 for four packed 3-component
   vectors.  Each lane reads three components at stride 3, so even after
   the squares pair correctly the leaf loads are not consecutive and get
   gathered — the "only three loads, not four" situation §5.2 discusses for
   this kernel.  As in the paper, SLP and LSLP end up with *exactly equal*
   static costs here (no pairing beats any other once every load column is
   a gather). *)
let vsumsqr = {|
kernel vsumsqr(f64 R[], f64 V[], i64 i) {
  R[4*i+0] = V[12*i+0] * V[12*i+0] + (V[12*i+1] * V[12*i+1] + V[12*i+2] * V[12*i+2]);
  R[4*i+1] = V[12*i+4] * V[12*i+4] + (V[12*i+3] * V[12*i+3] + V[12*i+5] * V[12*i+5]);
  R[4*i+2] = (V[12*i+8] * V[12*i+8] + V[12*i+7] * V[12*i+7]) + V[12*i+6] * V[12*i+6];
  R[4*i+3] = V[12*i+9] * V[12*i+9] + (V[12*i+11] * V[12*i+11] + V[12*i+10] * V[12*i+10]);
}
|}

(* 453.povray hcmplx.cpp:113 (HReciprocal): hypercomplex reciprocal,
   out = conj(x) / |x|^2.  The squared modulus is a commutative reduction
   consumed as a splat by all four lanes. *)
let hreciprocal = {|
kernel hreciprocal(f64 R[], f64 H[], i64 i) {
  f64 x0 = H[4*i+0];
  f64 x1 = H[4*i+1];
  f64 x2 = H[4*i+2];
  f64 x3 = H[4*i+3];
  f64 mod = x0 * x0 + x1 * x1 + (x2 * x2 + x3 * x3);
  R[4*i+0] = x0 / mod;
  R[4*i+1] = (0.0 - x1) / mod;
  R[4*i+2] = (0.0 - x2) / mod;
  R[4*i+3] = (0.0 - x3) / mod;
}
|}

(* 453.povray fnintern.cpp:759 (f_mesh1): periodic mesh surface built from
   products of trig-polynomial factors; reconstructed with the same
   sum-of-products shape per component. *)
let mesh1 = {|
kernel mesh1(f64 R[], f64 U[], f64 V[], i64 i) {
  f64 u0 = U[2*i+0];
  f64 u1 = U[2*i+1];
  f64 v0 = V[2*i+0];
  f64 v1 = V[2*i+1];
  f64 p0 = u0 * v0;
  f64 p1 = u1 * v1;
  R[2*i+0] = p0 * p0 + (u0 * u0 + v0 * v0) * 0.5;
  R[2*i+1] = p1 * p1 + 0.5 * (v1 * v1 + u1 * u1);
}
|}

(* 433.milc m_su2_mat_vec_a.c:23 (mult_su2_mat_vec_elem_a): SU(2) matrix
   times vector in complex arithmetic.  The real-part subtractions are
   written in negated-coefficient form (x - y == x + (0-y)), the
   canonicalization fast-math pipelines apply before SLP runs; that makes
   all four output lanes isomorphic fadd chains, with the negated
   coefficients showing up as ALU-produced gather elements — the structure
   behind the paper's cost-vs-performance anomaly on this kernel. *)
let mult_su2 = {|
kernel mult_su2(f64 R[], f64 M[], f64 V[], i64 i) {
  f64 a0r = M[4*i+0];
  f64 a0i = M[4*i+1];
  f64 a1r = M[4*i+2];
  f64 a1i = M[4*i+3];
  f64 na0i = 0.0 - a0i;
  f64 na1i = 0.0 - a1i;
  f64 b0r = V[4*i+0];
  f64 b0i = V[4*i+1];
  f64 b1r = V[4*i+2];
  f64 b1i = V[4*i+3];
  R[4*i+0] = a0r * b0r + na0i * b0i + (a1r * b1r + na1i * b1i);
  R[4*i+1] = a0r * b0i + b0r * a0i + (b1i * a1r + a1i * b1r);
  R[4*i+2] = a0r * b1r + na0i * b1i + (b0r * a1r + b0i * na1i);
  R[4*i+3] = b1i * a0r + a0i * b1r + (a1r * b0i + b0r * a1i);
}
|}

(* 453.povray fnintern.cpp:924 (f_quartic_cylinder): quartic cylinder field
   function evaluated for two points.  The two lanes compute the same field
   value through different associations of the (non-commutative) subtraction
   chain, so the squared factor's operand column mixes fsub- and fadd-rooted
   scalars: an ALU-value gather no reordering can repair.  That is the
   structure behind the paper's §5.2 observation that this kernel's
   vectorization looks profitable to the cost model yet runs slower than
   O3 — under every configuration. *)
let quartic_cylinder = {|
kernel quartic_cylinder(f64 R[], f64 X[], f64 Y[], i64 i) {
  f64 g0 = (X[2*i+0] - Y[2*i+0]) - 1.5;
  f64 g1 = (0.0 - Y[2*i+1]) + (X[2*i+1] - 1.5);
  R[2*i+0] = g0 * g0 + 2.5;
  R[2*i+1] = g1 * g1 + 2.5;
}
|}

(* ---- loop-form kernels (PR 2) --------------------------------------

   The remaining kernels arrive as counted loops instead of pre-unrolled
   straight-line bodies.  Inside the loop the stores of one iteration are
   too few (or not adjacent enough) to seed, so these only vectorize after
   the region-formation layer (Unroll) has replicated the body by the
   vector factor — the paper's loop-unrolling preprocessing made explicit. *)

(* Unit-stride saxpy: one store per iteration, so the block-local pass has
   nothing to seed until unrolling creates the Y[i..i+VF-1] run. *)
let loop_saxpy = {|
kernel loop_saxpy(f64 Y[], f64 X[], f64 a) {
  for (i64 i = 0; i < 64; i += 1) {
    Y[i] = a * X[i] + Y[i];
  }
}
|}

(* The paper's Listing 1/Figure 2 body in its natural surrounding loop:
   two stores per iteration with the operand-order mismatch, step 2. *)
let loop_listing1 = {|
kernel loop_listing1(i64 A[], i64 B[], i64 C[]) {
  for (i64 i = 0; i < 32; i += 2) {
    A[i+0] = (B[i+0] << 1) & (C[i+0] << 2);
    A[i+1] = (C[i+1] << 3) & (B[i+1] << 4);
  }
}
|}

(* Per-iteration 4-leaf commutative fadd chain (a squared norm), stored to
   a unit-stride output: after unrolling, the stores seed and every operand
   column is a multi-node whose leaves sit at stride 4. *)
let loop_norm4 = {|
kernel loop_norm4(f64 R[], f64 V[]) {
  for (i64 i = 0; i < 16; i += 1) {
    R[i] = V[4*i+0] * V[4*i+0] + V[4*i+1] * V[4*i+1]
         + (V[4*i+2] * V[4*i+2] + V[4*i+3] * V[4*i+3]);
  }
}
|}

(* Serial dot product through a memory accumulator (regions are
   self-contained, so the running sum lives in R[0]).  Unrolling replicates
   the read-modify-write chain but the stores all alias R[0]: no seed run
   ever forms and the kernel stays scalar — it is here for the oracle, as
   the canonical must-not-misvectorize case. *)
let loop_dot_serial = {|
kernel loop_dot_serial(f64 R[], f64 X[], f64 Y[]) {
  for (i64 i = 0; i < 32; i += 1) {
    R[0] = R[0] + X[i] * Y[i];
  }
}
|}

(* Step-2 loop, two stores per iteration with different added constants:
   unrolling interleaves the 5/7 constants into one gathered operand
   column while the loads stay consecutive. *)
let loop_stride2 = {|
kernel loop_stride2(i64 A[], i64 B[]) {
  for (i64 i = 0; i < 24; i += 2) {
    A[i+0] = B[i+0] + 5;
    A[i+1] = B[i+1] + 7;
  }
}
|}

(* Symbolic trip count: the bound is a runtime argument, so region
   formation must leave the loop untouched and the kernel stays scalar. *)
let loop_dyn = {|
kernel loop_dyn(f64 Y[], f64 X[], f64 a, i64 n) {
  for (i64 i = 0; i < n; i += 1) {
    Y[i] = a * X[i];
  }
}
|}

(* Branching kernels (if-conversion): divergent per-element control flow
   flattened into masked straight-line code.  The then/else stores of one
   element hit the same address under complementary masks, so the seed
   collector's occurrence streams are what lets each branch's store run
   seed its own vector. *)

(* Lane-wise absolute value by branch: both branches store, both load the
   guarded input again inside the branch (masked loads with a zero
   passthrough). *)
let cond_abs = {|
kernel cond_abs(f64 x[], f64 y[]) {
  for (i64 i = 0; i < 256; i += 1) {
    if (x[i] < 0.0) {
      y[i] = 0.0 - x[i];
    } else {
      y[i] = x[i];
    }
  }
}
|}

(* Clamp from above: the then branch stores a constant (a splat column,
   no masked load at all), the else branch copies the input through. *)
let cond_clamp = {|
kernel cond_clamp(f64 x[], f64 y[]) {
  for (i64 i = 0; i < 128; i += 1) {
    if (x[i] > 100.0) {
      y[i] = 100.0;
    } else {
      y[i] = x[i];
    }
  }
}
|}

(* Guarded saxpy update, no else branch: an i64 predicate array gates an
   f64 read-modify-write — the canonical "the guard is what keeps the
   access meaningful" shape, all of y/x only touched on live lanes. *)
let cond_saxpy_guard = {|
kernel cond_saxpy_guard(i64 g[], f64 y[], f64 x[], f64 a) {
  for (i64 i = 0; i < 64; i += 1) {
    if (g[i] > 0) {
      y[i] = y[i] + a * x[i];
    }
  }
}
|}

(* Integer lane-wise max via branch, with loads in the condition itself:
   the compare consumes unconditional loads of both inputs, the branches
   re-read them under the mask. *)
let cond_max_mask = {|
kernel cond_max_mask(i64 a[], i64 b[], i64 m[]) {
  for (i64 i = 0; i < 96; i += 1) {
    if (a[i] < b[i]) {
      m[i] = b[i];
    } else {
      m[i] = a[i];
    }
  }
}
|}
