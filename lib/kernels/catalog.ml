(* The kernel catalog: Table 2 of the paper plus the whole-benchmark
   composition used by Figures 11-12. *)

open Lslp_ir

type kernel = {
  key : string;        (* e.g. "453.boy-surface" *)
  benchmark : string;  (* e.g. "453.povray" *)
  origin : string;     (* Filename:Line from Table 2, or paper section *)
  source : string;     (* kernel-language source *)
}

let table2 =
  [
    { key = "453.boy-surface"; benchmark = "453.povray";
      origin = "fnintern.cpp:355"; source = Sources.boy_surface };
    { key = "453.intersect-quadratic"; benchmark = "453.povray";
      origin = "poly.cpp:813"; source = Sources.intersect_quadratic };
    { key = "453.calc-z3"; benchmark = "453.povray";
      origin = "quatern.cpp:433"; source = Sources.calc_z3 };
    { key = "453.vsumsqr"; benchmark = "453.povray";
      origin = "vector.h:362"; source = Sources.vsumsqr };
    { key = "453.hreciprocal"; benchmark = "453.povray";
      origin = "hcmplx.cpp:113"; source = Sources.hreciprocal };
    { key = "453.mesh1"; benchmark = "453.povray";
      origin = "fnintern.cpp:759"; source = Sources.mesh1 };
    { key = "433.mult-su2-mat"; benchmark = "433.milc";
      origin = "m_su2_mat_vec_a.c:23"; source = Sources.mult_su2 };
    { key = "453.quartic-cylinder"; benchmark = "453.povray";
      origin = "fnintern.cpp:924"; source = Sources.quartic_cylinder };
    { key = "motivation-loads"; benchmark = "Section 3.1";
      origin = "Figure 2"; source = Sources.motivation_loads };
    { key = "motivation-opcodes"; benchmark = "Section 3.2";
      origin = "Figure 3"; source = Sources.motivation_opcodes };
    { key = "motivation-multi"; benchmark = "Section 3.3";
      origin = "Figure 4"; source = Sources.motivation_multi };
  ]

let extras =
  [
    { key = "435.lj-force"; benchmark = "435.gromacs";
      origin = "reconstruction"; source = Sources_full.lj_force };
    { key = "454.mat3"; benchmark = "454.calculix";
      origin = "reconstruction"; source = Sources_full.calculix_mat3 };
    { key = "481.update"; benchmark = "481.wrf";
      origin = "reconstruction"; source = Sources_full.wrf_update };
    { key = "410.block"; benchmark = "410.bwaves";
      origin = "reconstruction"; source = Sources_full.bwaves_block };
    { key = "416.contract"; benchmark = "416.gamess";
      origin = "reconstruction"; source = Sources_full.gamess_contract };
    { key = "filler-chain"; benchmark = "synthetic";
      origin = "scalar filler"; source = Sources_full.filler_chain };
    { key = "common-region"; benchmark = "synthetic";
      origin = "config-insensitive region"; source = Sources_full.common_region };
  ]

(* Loop-form kernels (PR 2): counted loops that only vectorize through the
   unroll/region-formation layer (or deliberately never do). *)
let loops =
  [
    { key = "loop.saxpy"; benchmark = "loops";
      origin = "unit-stride saxpy"; source = Sources.loop_saxpy };
    { key = "loop.listing1"; benchmark = "loops";
      origin = "Listing 1 in its loop"; source = Sources.loop_listing1 };
    { key = "loop.norm4"; benchmark = "loops";
      origin = "squared norm, 4 leaves/iter"; source = Sources.loop_norm4 };
    { key = "loop.dot-serial"; benchmark = "loops";
      origin = "memory-accumulator dot"; source = Sources.loop_dot_serial };
    { key = "loop.stride2"; benchmark = "loops";
      origin = "step-2, mixed constants"; source = Sources.loop_stride2 };
    { key = "loop.dyn"; benchmark = "loops";
      origin = "symbolic trip count"; source = Sources.loop_dyn };
  ]

(* Branching kernels (PR 9): per-element control flow the frontend
   if-converts into masked straight-line code. *)
let conds =
  [
    { key = "cond.abs"; benchmark = "branching";
      origin = "lane-wise |x| via if/else"; source = Sources.cond_abs };
    { key = "cond.clamp"; benchmark = "branching";
      origin = "clamp-above, constant then-arm"; source = Sources.cond_clamp };
    { key = "cond.saxpy-guard"; benchmark = "branching";
      origin = "guarded saxpy, no else"; source = Sources.cond_saxpy_guard };
    { key = "cond.max-mask"; benchmark = "branching";
      origin = "i64 max via branch"; source = Sources.cond_max_mask };
  ]

let all = table2 @ extras @ loops @ conds

let find key =
  match List.find_opt (fun k -> String.equal k.key key) all with
  | Some k -> k
  | None -> invalid_arg (Fmt.str "Catalog.find: unknown kernel %s" key)

let compile k : Func.t = Lslp_frontend.Lower.compile_string k.source

let compile_key key = compile (find key)

(* Whole benchmarks (Figures 11-12): the vectorizable regions each full
   SPEC benchmark contributes, and how many copies of the scalar filler
   dilute them.  Dilution reproduces the paper's observation that the
   improved regions are not hot, so whole-benchmark effects are small. *)
type benchmark = {
  bname : string;
  kernel_keys : string list;
  filler_copies : int;   (* scalar-only code diluting execution time *)
  common_copies : int;   (* regions every configuration vectorizes alike *)
}

let full_benchmarks =
  [
    { bname = "453.povray";
      kernel_keys =
        [ "453.boy-surface"; "453.intersect-quadratic"; "453.calc-z3";
          "453.vsumsqr"; "453.hreciprocal"; "453.mesh1";
          "453.quartic-cylinder" ];
      filler_copies = 700; common_copies = 25 };
    { bname = "435.gromacs"; kernel_keys = [ "435.lj-force" ];
      filler_copies = 400; common_copies = 18 };
    { bname = "454.calculix"; kernel_keys = [ "454.mat3" ];
      filler_copies = 350; common_copies = 12 };
    { bname = "481.wrf"; kernel_keys = [ "481.update" ];
      filler_copies = 500; common_copies = 20 };
    { bname = "433.milc"; kernel_keys = [ "433.mult-su2-mat" ];
      filler_copies = 300; common_copies = 8 };
    { bname = "410.bwaves"; kernel_keys = [ "410.block" ];
      filler_copies = 450; common_copies = 15 };
    { bname = "416.gamess"; kernel_keys = [ "416.contract" ];
      filler_copies = 600; common_copies = 22 };
  ]
