(** The kernel catalog: the paper's Table 2 plus the whole-benchmark
    composition used by Figures 11-12. *)

open Lslp_ir

type kernel = {
  key : string;
  benchmark : string;
  origin : string;
  source : string;
}

val table2 : kernel list
(** The 8 SPEC kernels + 3 motivating examples of Table 2, in the paper's
    order. *)

val extras : kernel list
(** Stand-ins for the remaining whole benchmarks plus the scalar filler. *)

val loops : kernel list
(** Loop-form kernels: counted loops that need the unroll/region-formation
    layer before anything can vectorize. *)

val conds : kernel list
(** Branching kernels: per-element if/else the frontend flattens into
    masked straight-line code (if-conversion). *)

val all : kernel list

val find : string -> kernel
(** @raise Invalid_argument on unknown keys. *)

val compile : kernel -> Func.t
(** Compile a fresh copy (every call returns new instructions). *)

val compile_key : string -> Func.t

type benchmark = {
  bname : string;
  kernel_keys : string list;
  filler_copies : int;
      (** copies of the scalar filler diluting execution time *)
  common_copies : int;
      (** copies of the configuration-insensitive vectorizable region that
          keep whole-benchmark cost ratios near 100% *)
}

val full_benchmarks : benchmark list
