(** Sharded fuzzing on the Domain pool ([lslpc fuzz --jobs N]).

    One pool job per fuzz case, each running
    [Lslp_fuzz.Fuzz.run_case_indexed] — the per-case PRNG derivation that
    makes case [k] a pure function of [(seed, k)], so sharding cannot
    change any outcome. *)

val run :
  ?metrics:Lslp_telemetry.Pool_stats.metrics ->
  ?trace:Lslp_trace.Trace.t ->
  ?config:Lslp_core.Config.t ->
  ?inject_spec:Lslp_robust.Inject.t ->
  pool:Pool.config ->
  cases:int ->
  seed:int ->
  unit ->
  Lslp_fuzz.Fuzz.case_outcome Pool.outcome array
(** Outcome [k] belongs to case [k].  The pool's own fault points apply
    (an armed worker-raise can retry or degrade a case job); the fuzz
    cases' pipeline injectors come from [inject_spec] as usual. *)

type mismatch = { case : int; sharded : string; sequential : string }

val check_against_sequential :
  ?config:Lslp_core.Config.t ->
  ?inject_spec:Lslp_robust.Inject.t ->
  seed:int ->
  Lslp_fuzz.Fuzz.case_outcome Pool.outcome array ->
  mismatch list
(** Re-run every completed case sequentially in the calling domain and
    compare summaries verbatim; [[]] is the determinism assertion behind
    [--jobs].  Cases the pool degraded (only possible with service faults
    armed) are skipped. *)

type totals = {
  cases : int;
  failures : (int * string) list;
  pool_failures : int;
  vectorized : int;
  degraded : int;
  injected_runs : int;
}

val summarize : Lslp_fuzz.Fuzz.case_outcome Pool.outcome array -> totals
