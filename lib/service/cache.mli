(** The compile service's verified result cache.

    Content-addressed: the canonical key is
    [digest (alpha-renamed input IR, Config.fingerprint)], so caching is
    keyed by {e what the pipeline would see}, not by source spelling; a
    front table keyed by [digest (source, unroll, fingerprint)] lets warm
    hits skip the frontend entirely.

    {b Verify before reuse.}  Every hit replays the legality validator
    ([Lslp_check.Legality.validate]) against the dependence-graph snapshot
    taken when the entry was compiled.  The entry's function was compiled
    in place, so instruction identities still match the snapshot and the
    replay is a real check.  A failure — including an injected
    cache poisoning — evicts the entry and returns [None]; the caller
    recompiles.  A poisoned cache therefore costs one recompile, never a
    wrong result.

    Thread-safe: one internal mutex; safe to share across pool domains. *)

type cached = {
  ir : string;  (** alpha-renamed printed output IR *)
  remarks : string list;
  counters : (string * int) list;
  vectorized : int;
}
(** What a hit returns — the printable result of the original compile.
    Only clean runs are cached (no armed injector, no degraded regions,
    no error diagnostics), so there is no [degraded] field by
    construction. *)

type t

val create :
  ?metrics:Lslp_telemetry.Pool_stats.metrics ->
  ?trace:Lslp_trace.Trace.t ->
  unit ->
  t
(** Registry counters ([lslp_cache_*_total]), flight-recorder events
    (cache-hit/verified/evicted/miss/insert, recorded with tick [-1] —
    the cache does not see the pool's virtual clock) and [Pool_event]
    trace records are emitted under the cache lock. *)

val source_key : source:string -> unroll:int -> fingerprint:string -> string
(** The front key for a job, computable without parsing. *)

val find_by_source :
  t -> label:string -> source_key:string -> poison:bool -> cached option
(** Warm-path lookup.  [None] means front miss {e or} eviction — either
    way the caller proceeds to parse and {!find_by_ir}.  [poison] applies
    the armed cache-poison fault to the entry before verification. *)

val find_by_ir :
  t ->
  label:string ->
  source_key:string ->
  input_norm:string ->
  fingerprint:string ->
  poison:bool ->
  cached option
(** Canonical lookup by normalized input IR.  A verified hit also aliases
    [source_key] so the next lookup for this source skips parsing.  A miss
    (including digest collisions, which are detected by exact comparison
    and never trusted) bumps [cache_misses]. *)

val insert :
  t ->
  label:string ->
  source_key:string ->
  input_norm:string ->
  fingerprint:string ->
  snap:Lslp_check.Legality.snapshot ->
  func:Lslp_ir.Func.t ->
  cached ->
  unit
(** Store a clean compile: [func] is the transformed function whose
    instruction ids match [snap].  First writer wins on concurrent inserts
    of the same key. *)

val length : t -> int
(** Distinct canonical entries currently cached. *)
