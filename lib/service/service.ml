(* The batch compile service: Pool underneath, Cache in front, the
   pipeline in the middle.

   One job = frontend (parse + lower + unroll) + Pipeline.run, compiled
   {e in place} so the legality snapshot taken before the pass keeps
   matching the transformed function by instruction identity — that is
   what makes the cache's hit-time re-verification meaningful.

   Fault surface per attempt, in order: the pool rolls worker-raise and
   worker-hang before calling us; we roll cache-poison once, {e before}
   looking anything up, so the injector's dice stream per attempt is
   independent of cache state (and hence of scheduling); pipeline-boundary
   points fire inside Pipeline.run where the PR-2 transactions contain
   them.  Only fully clean runs are cached: no armed injector for the
   job, zero degraded regions, zero error diagnostics. *)

module Config = Lslp_core.Config
module Pipeline = Lslp_core.Pipeline
module Inject = Lslp_robust.Inject
module Legality = Lslp_check.Legality
module Diagnostic = Lslp_check.Diagnostic
module Stats = Lslp_telemetry.Pool_stats
module Trace = Lslp_trace.Trace

type job = { label : string; source : string; unroll : int }

type success = {
  label : string;
  ir : string;
  remarks : string list;
  counters : (string * int) list;
  vectorized : int;
  degraded : int;
  from_cache : bool;
}

type t = {
  compile : Config.t;
  fingerprint : string;
  pool : Pool.config;
  cache : Cache.t option;
  inject_for : int -> Inject.t option;
  metrics : Stats.metrics;
  pass_metrics : Lslp_telemetry.Pass_metrics.t;
  trace : Trace.t option;
}

let create ?(cache = true) ?(trace = false) ?flight_cap
    ?(inject_for = fun _ -> None) ~pool compile =
  (* one registry per service: pool + cache counters and histograms, the
     pipeline counters and step histograms, all exported together *)
  let metrics = Stats.metrics ?flight_cap () in
  let pass_metrics =
    Lslp_telemetry.Pass_metrics.create ~root:"batch" metrics.Stats.registry
  in
  let trace = if trace then Some (Trace.create ()) else None in
  {
    compile;
    fingerprint = Config.fingerprint compile;
    pool;
    cache = (if cache then Some (Cache.create ~metrics ?trace ()) else None);
    inject_for;
    metrics;
    pass_metrics;
    trace;
  }

let stats t = Stats.view t.metrics
let metrics t = t.metrics
let registry t = t.metrics.Stats.registry
let flight t = t.metrics.Stats.flight
let pass_metrics t = t.pass_metrics
let trace_events t = match t.trace with Some tr -> Trace.events tr | None -> []
let cache_entries t = match t.cache with Some c -> Cache.length c | None -> 0

let counters_of_report (report : Pipeline.report) =
  let c = Lslp_telemetry.Report.total_counters report.telemetry in
  List.map
    (fun (name, get) -> (name, get c))
    Lslp_telemetry.Probe.counter_fields

let success_of_cached (job : job) (payload : Cache.cached) =
  {
    label = job.label;
    ir = payload.Cache.ir;
    remarks = payload.Cache.remarks;
    counters = payload.Cache.counters;
    vectorized = payload.Cache.vectorized;
    degraded = 0;  (* only clean runs are cached *)
    from_cache = true;
  }

let compile_job t (job : job) ~inject ~deadline =
  (* roll the poison dice unconditionally so the attempt's fault schedule
     does not depend on whether the cache happens to be warm *)
  let poison =
    match inject with
    | Some i -> Inject.fires i Inject.Cache_poison
    | None -> false
  in
  let skey =
    Cache.source_key ~source:job.source ~unroll:job.unroll
      ~fingerprint:t.fingerprint
  in
  let front_hit =
    match t.cache with
    | Some c -> Cache.find_by_source c ~label:job.label ~source_key:skey ~poison
    | None -> None
  in
  match front_hit with
  | Some payload -> success_of_cached job payload
  | None -> (
    let func = Lslp_frontend.Lower.compile_string job.source in
    ignore (Lslp_frontend.Unroll.run ~factor:job.unroll func);
    let input_norm =
      Lslp_util.Normalize.ids (Fmt.str "%a" Lslp_ir.Printer.pp_func func)
    in
    let content_hit =
      match t.cache with
      | Some c ->
        Cache.find_by_ir c ~label:job.label ~source_key:skey ~input_norm
          ~fingerprint:t.fingerprint ~poison
      | None -> None
    in
    match content_hit with
    | Some payload -> success_of_cached job payload
    | None ->
      (* snapshot before the pass mutates [func]: the cache will replay
         legality against exactly these instruction identities *)
      let snap =
        match t.cache with
        | Some _ -> Some (Legality.snapshot func)
        | None -> None
      in
      let config =
        let c = t.compile in
        let c =
          match inject with Some i -> Config.with_inject i c | None -> c
        in
        match deadline with
        | Some d -> Config.with_deadline d c
        | None -> c
      in
      let report = Pipeline.run ~metrics:t.pass_metrics ~config func in
      let ir =
        Lslp_util.Normalize.ids (Fmt.str "%a" Lslp_ir.Printer.pp_func func)
      in
      let remarks =
        List.map
          (Fmt.str "%a" Lslp_check.Remark.pp)
          report.Pipeline.remarks
      in
      let counters = counters_of_report report in
      (match (t.cache, snap) with
       | Some c, Some snap
         when inject = None
              && report.Pipeline.degraded_regions = 0
              && Diagnostic.errors report.Pipeline.diagnostics = [] ->
         Cache.insert c ~label:job.label ~source_key:skey ~input_norm
           ~fingerprint:t.fingerprint ~snap ~func
           {
             Cache.ir;
             remarks;
             counters;
             vectorized = report.Pipeline.vectorized_regions;
           }
       | _ -> ());
      {
        label = job.label;
        ir;
        remarks;
        counters;
        vectorized = report.Pipeline.vectorized_regions;
        degraded = report.Pipeline.degraded_regions;
        from_cache = false;
      })

let batch ?(index_base = 0) t jobs =
  let pool_cfg =
    {
      t.pool with
      Pool.inject_for = (fun i -> t.inject_for (index_base + i));
      job_seed = t.pool.Pool.job_seed + index_base;
    }
  in
  let pjobs =
    Array.map
      (fun (job : job) ->
        ( job.label,
          fun ~inject ~deadline -> compile_job t job ~inject ~deadline ))
      jobs
  in
  Pool.run ~metrics:t.metrics ?trace:t.trace pool_cfg pjobs

(* Degradations in the smoke-gate sense: jobs that ended in a typed
   failure plus cache entries evicted by failed verification — every
   event where the service survived a fault by giving something up. *)
let degradations t outcomes =
  let failed =
    Array.fold_left
      (fun acc -> function
        | Pool.Done _ -> acc
        | Pool.Degraded_to_failure _ -> acc + 1)
      0 outcomes
  in
  failed + Lslp_obs.Registry.value t.metrics.Stats.c_evicted
