(** The batch compile service ("lslpd"): a fault-isolated Domain-pool
    executor with per-job deadlines, bounded retries, backpressure and a
    verified result cache.  The CLI's [lslpc batch], the pool-backed
    [lslpc domains] and [bench/serve] all sit on this module.

    A {!job} is compiled by the frontend and [Lslp_core.Pipeline.run]
    {e in place}; the result travels back as printable strings
    (alpha-renamed IR, remarks, counters), so outcomes compare across
    domains and across cache hits.  Every fault ends in exactly one typed
    {!Pool.outcome} — never a hang, never an escaped exception, and other
    jobs in the batch are unaffected (the fault-survival property
    [test_service] checks). *)

type job = {
  label : string;
  source : string;  (** kernel source text, fed to the frontend *)
  unroll : int;  (** unroll factor; 0 or 1 disables *)
}

type success = {
  label : string;
  ir : string;  (** alpha-renamed printed IR after the pass *)
  remarks : string list;
  counters : (string * int) list;  (** [Probe.counter_fields] order *)
  vectorized : int;
  degraded : int;  (** degraded {e regions} (PR-2 fail-soft); 0 on cache
                       hits, which only ever store clean runs *)
  from_cache : bool;
}

type t
(** A service instance: compile configuration (fingerprinted once), pool
    configuration, optional cache, shared telemetry.  Reusable across
    {!batch} calls — the cache persists, which is how warm rounds and the
    smoke test's deterministic poison-then-evict sequence work. *)

val create :
  ?cache:bool ->
  ?trace:bool ->
  ?flight_cap:int ->
  ?inject_for:(int -> Lslp_robust.Inject.t option) ->
  pool:Pool.config ->
  Lslp_core.Config.t ->
  t
(** [cache] defaults to on, [trace] to off; [flight_cap] bounds the
    flight recorder (default 4096 events).  [inject_for] maps a {e global}
    job index (across batches, see [index_base]) to the fault spec armed
    for that job; it covers service points (worker-raise, worker-hang,
    cache-poison, queue-full) and pipeline points alike — the same
    injector instance is re-seeded per attempt and threaded into
    [Config.with_inject]. *)

val batch : ?index_base:int -> t -> job array -> success Pool.outcome array
(** Compile every job on the pool; outcome [i] belongs to job [i].
    [index_base] offsets the global job index of job 0 — callers running
    several rounds pass the number of jobs already submitted so fault
    targeting and injector seeds stay unique across rounds. *)

val stats : t -> Lslp_telemetry.Pool_stats.t
(** Flat snapshot of the pool/cache counters ([Pool_stats.view] of the
    shared registry); read after {!batch} returns. *)

val metrics : t -> Lslp_telemetry.Pool_stats.metrics
(** The service's typed metric handles; shared by pool and cache. *)

val registry : t -> Lslp_obs.Registry.t
(** The full registry — pool/cache counters and histograms plus the
    pipeline counters and step histograms — for the exporters. *)

val flight : t -> Lslp_obs.Flight.t
(** The bounded flight recorder (`--flight-out`). *)

val pass_metrics : t -> Lslp_telemetry.Pass_metrics.t
(** Pipeline-side metrics: fed by every non-cached compile; carries the
    folded stacks. *)

val trace_events : t -> Lslp_trace.Trace.event list
(** Pool/cache boundary events recorded so far ([] with [trace] off). *)

val cache_entries : t -> int

val degradations : t -> success Pool.outcome array -> int
(** Typed-failure jobs in [outcomes] plus cache evictions so far — the
    number the smoke gate pins ([--expect-degradations]). *)
