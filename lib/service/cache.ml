(* The verified result cache.

   Content-addressed: the canonical key is the digest of the alpha-renamed
   printed input IR crossed with Config.fingerprint, so two textually
   different sources that lower to the same function share one entry and a
   config knob that changes output splits them.  A second "front" table
   maps the digest of the raw (source, unroll, fingerprint) triple to the
   canonical key so a warm hit skips parsing entirely — without it the
   warm path would still pay the frontend, which costs more than a third
   of a full LSLP compile on the catalog.

   Trust nothing on a hit.  Every hit replays the PR-1 legality validator
   against the dependence-graph snapshot taken when the entry was
   compiled; the entry's function was compiled in place (never cloned), so
   instruction identities still match the snapshot and the check is not
   vacuous.  A verification failure evicts the entry (and its source
   aliases) and the caller recompiles — which is exactly how an injected
   cache poisoning is survived.  Digest collisions are guarded by
   comparing the stored input IR and fingerprint, not just the digest.

   One mutex per cache; lookups, verification and inserts all run under
   it.  Per-instance locked state, so lint R1 does not apply. *)

module Legality = Lslp_check.Legality
module Diagnostic = Lslp_check.Diagnostic
module Inject = Lslp_robust.Inject
module Stats = Lslp_telemetry.Pool_stats
module Registry = Lslp_obs.Registry
module Flight = Lslp_obs.Flight
module Trace = Lslp_trace.Trace

type cached = {
  ir : string;
  remarks : string list;
  counters : (string * int) list;
  vectorized : int;
}

type entry = {
  input_norm : string;  (* collision guard: exact pre-pass IR *)
  fingerprint : string;
  snap : Legality.snapshot;
  func : Lslp_ir.Func.t;  (* the compiled function, ids matching [snap] *)
  payload : cached;
  mutable aliases : string list;  (* front keys pointing here *)
}

type t = {
  m : Mutex.t;
  by_key : (string, entry) Hashtbl.t;  (* canonical digest -> entry *)
  by_source : (string, string) Hashtbl.t;  (* front digest -> canonical *)
  metrics : Stats.metrics option;
  trace : Trace.t option;
}

let create ?metrics ?trace () =
  {
    m = Mutex.create ();
    by_key = Hashtbl.create 64;
    by_source = Hashtbl.create 64;
    metrics;
    trace;
  }

let canonical_key ~input_norm ~fingerprint =
  Digest.to_hex (Digest.string (input_norm ^ "\x00" ^ fingerprint))

let source_key ~source ~unroll ~fingerprint =
  Digest.to_hex
    (Digest.string
       (source ^ "\x00" ^ string_of_int unroll ^ "\x00" ^ fingerprint))

let length t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.by_key in
  Mutex.unlock t.m;
  n

(* lock held.  Cache events carry tick -1 in the flight recorder: the
   cache runs under its own lock and does not see the pool's vclock. *)
let bump t f = match t.metrics with Some m -> f m | None -> ()

let flight t ~job ~detail kind =
  bump t (fun m -> Flight.record m.Stats.flight ~tick:(-1) ~job ~detail kind)

let trace_ev t what job detail =
  match t.trace with
  | Some tr -> Trace.record tr (Trace.Pool_event { what; job; detail })
  | None -> ()

(* lock held.  Corrupt the stored function the way the pipeline's
   [Corrupt] point does — a damage the structural verifier always
   catches — so the poisoned entry must fail verification, not crash. *)
let poison_entry entry =
  ignore
    (List.exists Inject.corrupt_block (Lslp_ir.Func.blocks entry.func))

(* lock held.  The hit path: count the hit, apply any armed poisoning,
   then replay the legality validator.  Clean -> reuse; anything else ->
   evict the entry and every front alias, and the caller recompiles. *)
let verify_hit t ~label ~key entry ~poison =
  bump t (fun m -> Registry.incr m.Stats.c_hits);
  flight t ~job:label ~detail:key "cache-hit";
  if poison then begin
    trace_ev t "cache-poison" label key;
    poison_entry entry
  end;
  let diags = Legality.validate entry.snap entry.func in
  if Diagnostic.errors diags = [] then begin
    bump t (fun m -> Registry.incr m.Stats.c_verified);
    flight t ~job:label ~detail:key "cache-verified";
    trace_ev t "cache-verify" label key;
    Some entry.payload
  end
  else begin
    Hashtbl.remove t.by_key key;
    List.iter (Hashtbl.remove t.by_source) entry.aliases;
    bump t (fun m -> Registry.incr m.Stats.c_evicted);
    flight t ~job:label
      ~detail:
        (Fmt.str "%s: %s" key (Diagnostic.summary (Diagnostic.errors diags)))
      "cache-evicted";
    trace_ev t "cache-evict" label
      (Fmt.str "%s: %s" key
         (Diagnostic.summary (Diagnostic.errors diags)));
    None
  end

let find_by_source t ~label ~source_key ~poison =
  Mutex.lock t.m;
  let r =
    match Hashtbl.find_opt t.by_source source_key with
    | None -> None (* front miss; not yet a cache miss — the caller
                      parses and retries by content *)
    | Some key -> (
      match Hashtbl.find_opt t.by_key key with
      | None ->
        (* stale alias left by an eviction race; drop it *)
        Hashtbl.remove t.by_source source_key;
        None
      | Some entry -> verify_hit t ~label ~key entry ~poison)
  in
  Mutex.unlock t.m;
  r

let find_by_ir t ~label ~source_key ~input_norm ~fingerprint ~poison =
  let key = canonical_key ~input_norm ~fingerprint in
  Mutex.lock t.m;
  let r =
    match Hashtbl.find_opt t.by_key key with
    | Some entry
      when entry.input_norm = input_norm
           && entry.fingerprint = fingerprint -> (
      match verify_hit t ~label ~key entry ~poison with
      | Some payload ->
        (* remember the new spelling of this input for next time *)
        if not (Hashtbl.mem t.by_source source_key) then begin
          Hashtbl.replace t.by_source source_key key;
          entry.aliases <- source_key :: entry.aliases
        end;
        Some payload
      | None -> None)
    | Some _ (* digest collision: treat as a miss, never trust it *)
    | None ->
      bump t (fun m -> Registry.incr m.Stats.c_misses);
      flight t ~job:label ~detail:key "cache-miss";
      trace_ev t "cache-miss" label key;
      None
  in
  Mutex.unlock t.m;
  r

let insert t ~label ~source_key ~input_norm ~fingerprint ~snap ~func payload =
  let key = canonical_key ~input_norm ~fingerprint in
  Mutex.lock t.m;
  (* first writer wins: a concurrent domain may have compiled the same
     input; both results verified against the same legality contract *)
  if not (Hashtbl.mem t.by_key key) then begin
    let entry =
      { input_norm; fingerprint; snap; func; payload;
        aliases = [ source_key ] }
    in
    Hashtbl.replace t.by_key key entry;
    Hashtbl.replace t.by_source source_key key;
    bump t (fun m -> Registry.incr m.Stats.c_inserts);
    flight t ~job:label ~detail:key "cache-insert";
    trace_ev t "cache-insert" label key
  end
  else if not (Hashtbl.mem t.by_source source_key) then begin
    Hashtbl.replace t.by_source source_key key;
    match Hashtbl.find_opt t.by_key key with
    | Some entry -> entry.aliases <- source_key :: entry.aliases
    | None -> ()
  end;
  Mutex.unlock t.m
