(* The supervised Domain pool.

   One mutex guards all shared state; two condition variables split the
   waiters: [cond_work] wakes workers (job ready, or shutdown) and
   [cond_change] wakes the orchestrator (outcome recorded, worker died,
   queue space freed).  Workers run jobs outside the lock.

   Fault isolation is the point: any exception a job attempt lets escape —
   an injected [Inject.Fault], a [Budget.Deadline_expired] from the
   cooperative watchdog, a genuine pass bug — kills only that worker.  The
   dying worker records a retry or a typed failure for its job under the
   lock, marks its slot dead and exits its Domain; the orchestrator joins
   the corpse and spawns a replacement.  Nothing hangs and no job is ever
   lost: every submitted job ends in exactly one {!outcome}.

   Time is virtual.  Retry backoff is measured in scheduling ticks — the
   clock advances on every dispatch, completion and death — so a run
   never consults the wall clock (lint rule R4) and the backoff schedule
   is reproducible.  When every runnable job is sitting in the delayed
   list and nothing is in flight, the first idle worker fast-forwards the
   clock to the earliest ready_at instead of sleeping. *)

module Budget = Lslp_robust.Budget
module Inject = Lslp_robust.Inject
module Trace = Lslp_trace.Trace
module Stats = Lslp_telemetry.Pool_stats
module Registry = Lslp_obs.Registry
module Flight = Lslp_obs.Flight

type failure =
  | Crashed of string
  | Timed_out of { steps : int }
  | Shed

type 'a outcome =
  | Done of 'a
  | Degraded_to_failure of { attempts : int; failure : failure }

type config = {
  domains : int;
  queue_cap : int;
  retries : int;
  backoff : int;
  deadline_steps : int option;
  inject_for : int -> Inject.t option;
  job_seed : int;
}

let default_config =
  {
    domains = 4;
    queue_cap = 64;
    retries = 2;
    backoff = 2;
    deadline_steps = None;
    inject_for = (fun _ -> None);
    job_seed = 0;
  }

let pp_failure ppf = function
  | Crashed msg -> Fmt.pf ppf "crashed: %s" msg
  | Timed_out { steps } -> Fmt.pf ppf "timed out after %d step(s)" steps
  | Shed -> Fmt.pf ppf "shed: queue full"

(* Each attempt gets its own injector derived from (job_seed, job, attempt)
   so a fault schedule is a pure function of the spec and those three ints,
   independent of which domain picks the job up or in what order. *)
let attempt_seed config ~job ~attempt =
  (((config.job_seed * 1_000_003) + job) * 8191) + attempt

let attempt_inject config ~job ~attempt =
  Option.map
    (fun spec -> Inject.reseed spec ~seed:(attempt_seed config ~job ~attempt))
    (config.inject_for job)

(* Admission rolls its own dice (salt -1): the queue-full fault must fire
   independently of what the job's first attempt would do. *)
let admission_sheds config ~job =
  match config.inject_for job with
  | None -> false
  | Some spec ->
    Inject.fires
      (Inject.reseed spec ~seed:(attempt_seed config ~job ~attempt:(-1)))
      Inject.Queue_full

let run (type a) ?metrics ?trace config
    (jobs :
      (string
      * (inject:Inject.t option -> deadline:Budget.deadline option -> a))
      array) : a outcome array =
  let n = Array.length jobs in
  let domains = max 1 config.domains in
  let retries = max 0 config.retries in
  let backoff = max 1 config.backoff in
  let queue_cap = max 1 config.queue_cap in
  let m = Mutex.create () in
  let cond_work = Condition.create () in
  let cond_change = Condition.create () in
  let outcomes : a outcome option array = Array.make n None in
  let ready : (int * int) Queue.t = Queue.create () in
  (* (ready_at vtick, job, attempt); unsorted, promoted when due *)
  let delayed = ref [] in
  let vtick = ref 0 in
  let in_flight = ref 0 in
  let recorded = ref 0 in
  let shutdown = ref false in
  let dead = ref [] in
  let handles : unit Domain.t option array = Array.make domains None in
  let obs f = match metrics with Some (m : Stats.metrics) -> f m | None -> () in
  (* virtual tick of each job's {e first} dispatch, so the latency
     histogram charges retries and backoff to the job that paid them *)
  let first_dispatch = Array.make n (-1) in
  let flight m ~job ?attempt ?seed ?detail kind =
    Flight.record m.Stats.flight ~tick:!vtick ~job ?attempt ?seed ?detail kind
  in
  let trace_ev what job detail =
    match trace with
    | Some t -> Trace.record t (Trace.Pool_event { what; job; detail })
    | None -> ()
  in
  (* all helpers below assume the lock is held *)
  let promote () =
    let due, later =
      List.partition (fun (at, _, _) -> at <= !vtick) !delayed
    in
    delayed := later;
    List.iter
      (fun (_, job, attempt) ->
        Queue.add (job, attempt) ready;
        Condition.signal cond_work)
      (List.sort compare due)
  in
  let tick () =
    incr vtick;
    promote ()
  in
  let record job outcome =
    outcomes.(job) <- Some outcome;
    incr recorded;
    Condition.signal cond_change
  in
  let worker slot =
    let continue_ = ref true in
    while !continue_ do
      Mutex.lock m;
      while (not !shutdown) && Queue.is_empty ready do
        if !delayed <> [] && !in_flight = 0 then begin
          (* everything runnable is backing off: fast-forward the clock *)
          let soonest =
            List.fold_left (fun acc (at, _, _) -> min acc at) max_int
              !delayed
          in
          vtick := max !vtick soonest;
          promote ()
        end
        else Condition.wait cond_work m
      done;
      if Queue.is_empty ready then begin
        (* shutdown with nothing left to run *)
        Mutex.unlock m;
        continue_ := false
      end
      else begin
        let job, attempt = Queue.pop ready in
        incr in_flight;
        tick ();
        let label = fst jobs.(job) in
        obs (fun m ->
            if first_dispatch.(job) < 0 then first_dispatch.(job) <- !vtick;
            let depth = Queue.length ready in
            Registry.observe m.Stats.queue_at_dispatch depth;
            Registry.set m.Stats.queue_depth depth;
            flight m ~job:label ~attempt
              ~seed:(attempt_seed config ~job ~attempt) "dispatched");
        trace_ev "dispatch" label (Fmt.str "attempt %d" attempt);
        (* queue space freed: the orchestrator may admit the next job *)
        Condition.signal cond_change;
        Mutex.unlock m;
        let fn = snd jobs.(job) in
        let inject = attempt_inject config ~job ~attempt in
        let deadline = Option.map Budget.deadline config.deadline_steps in
        let result =
          match
            Inject.maybe_fail inject Inject.Worker_raise;
            (match inject with
             | Some i when Inject.fires i Inject.Worker_hang ->
               (* spin at the boundary until the watchdog cancels us *)
               Budget.deadline_spin deadline
             | _ -> ());
            fn ~inject ~deadline
          with
          | v -> Ok v
          | exception Budget.Deadline_expired { steps } ->
            Error (Timed_out { steps })
          | exception e -> Error (Crashed (Printexc.to_string e))
        in
        Mutex.lock m;
        decr in_flight;
        (match result with
         | Ok v ->
           record job (Done v);
           trace_ev "complete" label "";
           tick ();
           obs (fun m ->
               Registry.incr m.Stats.completed;
               Registry.observe m.Stats.job_attempts (attempt + 1);
               let latency = !vtick - first_dispatch.(job) in
               Registry.observe m.Stats.latency_ticks latency;
               let depth = Queue.length ready in
               Registry.observe m.Stats.queue_at_complete depth;
               Registry.set m.Stats.queue_depth depth;
               flight m ~job:label ~attempt
                 ~seed:(attempt_seed config ~job ~attempt)
                 ~detail:(Fmt.str "latency=%d" latency) "completed");
           if !in_flight = 0 && !delayed <> [] then
             Condition.broadcast cond_work;
           Mutex.unlock m
         | Error failure ->
           (* job-fatal: record the job's fate, then this worker dies *)
           let seed = attempt_seed config ~job ~attempt in
           (match failure with
            | Timed_out { steps } ->
              obs (fun m ->
                  Registry.incr m.Stats.timed_out;
                  flight m ~job:label ~attempt ~seed
                    ~detail:(Fmt.str "%d step(s)" steps) "timeout");
              trace_ev "timeout" label (Fmt.str "%d step(s)" steps)
            | Crashed msg ->
              obs (fun m ->
                  flight m ~job:label ~attempt ~seed ~detail:msg "crashed");
              trace_ev "crash" label msg
            | Shed -> assert false (* shedding happens at admission *));
           if attempt < retries then begin
             let delay = backoff * (1 lsl attempt) in
             delayed := (!vtick + delay, job, attempt + 1) :: !delayed;
             obs (fun m ->
                 Registry.incr m.Stats.retried;
                 flight m ~job:label ~attempt:(attempt + 1)
                   ~seed:(attempt_seed config ~job ~attempt:(attempt + 1))
                   ~detail:(Fmt.str "in %d tick(s)" delay) "retried");
             trace_ev "retry" label
               (Fmt.str "attempt %d in %d tick(s)" (attempt + 1) delay)
           end
           else begin
             record job
               (Degraded_to_failure { attempts = attempt + 1; failure });
             obs (fun m ->
                 Registry.incr m.Stats.failed;
                 Registry.observe m.Stats.job_attempts (attempt + 1);
                 flight m ~job:label ~attempt ~seed
                   ~detail:"retries exhausted" "failed");
             trace_ev "fail" label "retries exhausted"
           end;
           dead := slot :: !dead;
           Condition.signal cond_change;
           tick ();
           if !in_flight = 0 && !delayed <> [] then
             Condition.broadcast cond_work;
           Mutex.unlock m;
           continue_ := false)
      end
    done
  in
  let spawn slot = handles.(slot) <- Some (Domain.spawn (fun () -> worker slot)) in
  for slot = 0 to domains - 1 do
    spawn slot
  done;
  let next = ref 0 in
  Mutex.lock m;
  while !recorded < n do
    (* bury and replace dead workers *)
    (match !dead with
     | [] -> ()
     | slots ->
       dead := [];
       Mutex.unlock m;
       List.iter
         (fun slot ->
           match handles.(slot) with
           | Some d -> Domain.join d
           | None -> ())
         slots;
       Mutex.lock m;
       List.iter
         (fun slot ->
           spawn slot;
           obs (fun m ->
               Registry.incr m.Stats.respawned;
               flight m ~job:"" ~detail:(Fmt.str "worker %d" slot) "respawn");
           trace_ev "respawn" "" (Fmt.str "worker %d" slot))
         slots);
    (* admit while the bounded queue has space — blocking here when it
       does not is the backpressure *)
    let progressed = ref false in
    while !next < n && Queue.length ready < queue_cap do
      let job = !next in
      incr next;
      progressed := true;
      let label = fst jobs.(job) in
      obs (fun m -> Registry.incr m.Stats.submitted);
      if admission_sheds config ~job then begin
        record job (Degraded_to_failure { attempts = 0; failure = Shed });
        obs (fun m ->
            Registry.incr m.Stats.shed;
            flight m ~job:label ~detail:"queue full" "shed");
        trace_ev "shed" label "queue full"
      end
      else begin
        Queue.add (job, 0) ready;
        obs (fun m -> flight m ~job:label "enqueued");
        trace_ev "enqueue" label "";
        Condition.signal cond_work
      end
    done;
    if !recorded < n && (not !progressed) && !dead = [] then
      Condition.wait cond_change m
  done;
  shutdown := true;
  Condition.broadcast cond_work;
  Mutex.unlock m;
  Array.iter (function Some d -> Domain.join d | None -> ()) handles;
  Array.map
    (function
      | Some o -> o
      | None -> assert false (* recorded = n implies every slot is filled *))
    outcomes
