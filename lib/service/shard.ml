(* Sharded fuzzing on the pool.

   Each fuzz case is one pool job running [Fuzz.run_case_indexed], whose
   per-case PRNG derivation makes case k a pure function of (seed, k) —
   independent of which domain runs it, in what order, or after how many
   retries.  [check_against_sequential] proves it per run: re-derive every
   completed case sequentially in the calling domain and compare the
   outcome summaries verbatim. *)

module Fuzz = Lslp_fuzz.Fuzz

let run ?metrics ?trace ?config ?inject_spec ~pool ~cases ~seed () =
  let jobs =
    Array.init cases (fun case ->
        ( Fmt.str "case-%d" case,
          fun ~inject:_ ~deadline:_ ->
            Fuzz.run_case_indexed ?config ?inject_spec ~seed ~case () ))
  in
  Pool.run ?metrics ?trace pool jobs

type mismatch = { case : int; sharded : string; sequential : string }

let check_against_sequential ?config ?inject_spec ~seed outcomes =
  let mismatches = ref [] in
  Array.iteri
    (fun case outcome ->
      match outcome with
      | Pool.Degraded_to_failure _ -> () (* pool fault, not a fuzz result *)
      | Pool.Done (o : Fuzz.case_outcome) ->
        let s = Fuzz.run_case_indexed ?config ?inject_spec ~seed ~case () in
        if s.Fuzz.summary <> o.Fuzz.summary then
          mismatches :=
            { case; sharded = o.Fuzz.summary; sequential = s.Fuzz.summary }
            :: !mismatches)
    outcomes;
  List.rev !mismatches

type totals = {
  cases : int;
  failures : (int * string) list;  (* failing case, its summary *)
  pool_failures : int;  (* jobs the pool degraded (faults armed) *)
  vectorized : int;
  degraded : int;
  injected_runs : int;
}

let summarize outcomes =
  let failures = ref [] in
  let pool_failures = ref 0 in
  let vectorized = ref 0 in
  let degraded = ref 0 in
  let injected = ref 0 in
  Array.iter
    (function
      | Pool.Degraded_to_failure _ -> incr pool_failures
      | Pool.Done (o : Fuzz.case_outcome) ->
        if not o.Fuzz.ok then
          failures := (o.Fuzz.case, o.Fuzz.summary) :: !failures;
        vectorized := !vectorized + o.Fuzz.c_vectorized;
        degraded := !degraded + o.Fuzz.c_degraded;
        if o.Fuzz.c_injected then incr injected)
    outcomes;
  {
    cases = Array.length outcomes;
    failures = List.rev !failures;
    pool_failures = !pool_failures;
    vectorized = !vectorized;
    degraded = !degraded;
    injected_runs = !injected;
  }
