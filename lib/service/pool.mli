(** The supervised Domain pool under the compile service.

    [run config jobs] shards the jobs across [config.domains] OCaml 5
    Domains and returns one typed {!outcome} per job, in job order.  The
    contract is fail-soft at the {e job} level, mirroring what
    [Lslp_robust.Transact] gives individual regions:

    - {b Crash isolation.}  An exception escaping a job attempt — an
      injected [Inject.Fault], a genuine bug — kills only the worker
      running it.  The worker records a retry or a typed failure for its
      job, then dies; the orchestrator joins the corpse and spawns a
      replacement, so the pool never loses capacity permanently.
    - {b Deadlines.}  With [deadline_steps] set, every attempt carries a
      fresh {!Lslp_robust.Budget.deadline} the pipeline ticks at its pass
      boundaries; expiry raises [Budget.Deadline_expired] out of the job,
      which the pool maps to {!Timed_out}.  Cancellation is cooperative:
      a worker is never killed preemptively, it always observes the
      expiry itself at the next boundary.
    - {b Retries with deterministic backoff.}  A crashed or timed-out job
      is re-queued up to [retries] times with exponential backoff measured
      in virtual scheduling ticks (the clock advances on pool events, not
      wall time — rule R4 keeps holding).  Exhausting the cap records
      {!Degraded_to_failure}.
    - {b Backpressure.}  The ready queue is bounded at [queue_cap]; the
      submitting orchestrator blocks while it is full.  The explicit shed
      path ({!Shed}, counted and traced) fires when the queue-full fault
      is armed: admission pretends saturation and degrades the job
      without running it — the pool itself never drops a job silently.

    Determinism: per-attempt injectors are derived from
    [(job_seed, job index, attempt)] alone, so a fault schedule does not
    depend on which domain picks a job up.  Outcomes are positionally
    deterministic for a given (jobs, config) even though scheduling order
    is not. *)

type failure =
  | Crashed of string       (** the attempt raised; payload is the message *)
  | Timed_out of { steps : int }
      (** the cooperative deadline expired after [steps] boundary ticks *)
  | Shed  (** rejected at admission by the backpressure policy *)

type 'a outcome =
  | Done of 'a
  | Degraded_to_failure of { attempts : int; failure : failure }
      (** the job ran out of attempts ([attempts = 0] iff shed); the last
          failure is recorded.  The service layer surfaces this as a typed
          degradation, never as an exception. *)

type config = {
  domains : int;        (** worker Domains; clamped to [>= 1] *)
  queue_cap : int;      (** ready-queue bound; clamped to [>= 1] *)
  retries : int;        (** re-queues per job after the first attempt *)
  backoff : int;        (** base retry delay in virtual ticks; doubles per
                            attempt *)
  deadline_steps : int option;
      (** per-attempt pass-boundary budget; [None] disables the watchdog *)
  inject_for : int -> Lslp_robust.Inject.t option;
      (** service-fault spec per job index; the pool re-seeds it per
          attempt and also threads it into the job function *)
  job_seed : int;  (** root of the per-attempt injector derivation *)
}

val default_config : config
(** 4 domains, queue 64, 2 retries, backoff base 2, no deadline, no
    faults. *)

val run :
  ?metrics:Lslp_telemetry.Pool_stats.metrics ->
  ?trace:Lslp_trace.Trace.t ->
  config ->
  (string
  * (inject:Lslp_robust.Inject.t option ->
     deadline:Lslp_robust.Budget.deadline option ->
     'a))
  array ->
  'a outcome array
(** [run config jobs] with [jobs] an array of [(label, fn)].  [fn] receives
    the attempt's injector (for pipeline/cache fault points) and its
    deadline (to thread into [Config.with_deadline]); whatever [fn] raises
    is this attempt's failure.  Blocks until every job has an outcome.

    With [metrics], the pool bumps the registry counters, samples the
    latency/attempt/queue-depth histograms (all in virtual ticks and
    slots — nothing reads the clock) and records every lifecycle
    transition in the flight recorder, with per-attempt injector seeds;
    all under the pool lock.  [trace] pool events likewise. *)

val pp_failure : failure Fmt.t
