(* Target cost model (TTI stand-in).

   Mirrors the role of LLVM's target-transformation interface for the Intel
   Skylake/AVX2 target the paper evaluates on.  The table is calibrated so
   that the worked examples in the paper come out with the exact group costs
   it prints (Figures 2-4): a scalar ALU op and its 2/4-wide vector
   counterpart both cost 1 (so a 2-wide ALU group saves 1), gathering k
   scalars into a vector costs k, a vector of constants is free, and so on.

   Two tables live here, on purpose:

   - [tti]: what the vectorizer queries for profitability decisions;
   - [machine]: what the execution simulator charges per executed
     instruction.

   They differ in a few documented entries.  This reproduces, structurally,
   the cost-model/performance inconsistencies the paper reports in Section
   5.2 (e.g. 433.mult-su2-mat, 453.quartic-cylinder): a vectorization that
   TTI calls profitable can still lose cycles on the "machine". *)

open Lslp_ir

type op_costs = {
  scalar : int;          (* cost of the scalar instruction *)
  vector : int -> int;   (* cost of the n-wide vector instruction *)
}

type t = {
  target_name : string;
  vector_bits : int;                    (* SIMD register width *)
  binop_cost : Opcode.binop -> op_costs;
  unop_cost : Opcode.unop -> op_costs;
  load_cost : op_costs;
  store_cost : op_costs;
  cmp_cost : op_costs;                  (* lane compare producing a mask *)
  select_cost : op_costs;               (* per-lane blend on an i1 mask *)
  masked_load_cost : op_costs;          (* predicated load *)
  masked_store_cost : op_costs;         (* predicated store *)
  insert_element : int;                 (* scalar -> vector lane insertion *)
  insert_element_alu : int;             (* insertion of an ALU-produced value
                                           (register-domain crossing) *)
  extract_element : int;                (* vector lane -> scalar *)
  splat : int;                          (* broadcast *)
  shuffle : int;                        (* single-source lane permutation *)
  horizontal_reduce : int -> int;       (* n-lane reduction to a scalar *)
}

let max_lanes t (elt : Types.scalar) =
  t.vector_bits / (8 * Types.scalar_size_bytes elt)

let alu = { scalar = 1; vector = (fun _ -> 1) }

(* Skylake-flavoured relative costs, in the spirit of LLVM 4.0's x86 TTI
   tables: cheap ALU/shift/FP-mul-add, expensive division, vector integer
   division not supported natively (scalarized: n scalar divs + n extracts +
   n inserts). *)
let skylake_binop op =
  match op with
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.And | Opcode.Or
  | Opcode.Xor | Opcode.Shl | Opcode.Lshr | Opcode.Ashr | Opcode.Smin
  | Opcode.Smax -> alu
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fmin | Opcode.Fmax -> alu
  | Opcode.Fdiv -> { scalar = 7; vector = (fun n -> 7 + (n / 4)) }
  | Opcode.Sdiv | Opcode.Srem ->
    { scalar = 14; vector = (fun n -> n * 16) (* scalarized *) }

let skylake_unop op =
  match op with
  | Opcode.Neg | Opcode.Fneg | Opcode.Fabs -> alu
  | Opcode.Fsqrt -> { scalar = 12; vector = (fun n -> 12 + (n / 4)) }

let skylake_avx2 =
  {
    target_name = "skylake-avx2 (tti)";
    vector_bits = 256;
    binop_cost = skylake_binop;
    unop_cost = skylake_unop;
    load_cost = alu;
    store_cost = alu;
    (* cmp/blend are plain ALU ops (vcmppd/vblendvpd); the masked memory ops
       (vmaskmovpd) pay an extra cycle over their unconditional forms, and
       their scalar fallback pays the same 2 for its compare+branch — so a
       4-lane masked group still beats 4 scalar guarded accesses. *)
    cmp_cost = alu;
    select_cost = alu;
    masked_load_cost = { scalar = 2; vector = (fun _ -> 2) };
    masked_store_cost = { scalar = 2; vector = (fun _ -> 2) };
    insert_element = 1;
    insert_element_alu = 1;
    extract_element = 1;
    splat = 1;
    shuffle = 1;
    (* log2(n) shuffle+op steps, as in LLVM's horizontal reductions *)
    horizontal_reduce =
      (fun n ->
        let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
        1 + log2 n);
  }

(* The "machine" table: identical to TTI except that inserting an
   ALU-produced value into a vector lane costs 2 instead of 1.  This models
   the register-domain crossing + port-5 shuffle pressure real Skylake pays
   for vpinsrq-from-register (an insert from a just-loaded value merges from
   memory instead), an effect LLVM 4.0's TTI did not see.  It reproduces,
   structurally, the paper's §5.2 observation that a vectorization the cost
   model calls profitable can still lose on the machine when the graph
   gathers computed (non-load) scalars. *)
let skylake_machine =
  {
    skylake_avx2 with
    target_name = "skylake-avx2 (machine)";
    insert_element_alu = 2;
  }

(* A width-128 target (SSE-like) used by tests and ablations. *)
let sse_like =
  { skylake_avx2 with target_name = "sse-like"; vector_bits = 128 }

(* Cost of aggregating the given scalar operand values into a vector: the
   paper's gather cost.  All-constant vectors are free (they are
   materialized like scalar constants); a splat costs one broadcast; the
   general case pays one insertion per lane. *)
type gather_kind = Gather_free | Gather_splat | Gather_insert

let classify_gather (values : Instr.value list) =
  let all_const =
    List.for_all
      (fun v -> match v with
         | Instr.Const _ -> true
         | Instr.Arg _ | Instr.Ins _ -> false)
      values
  in
  if all_const then Gather_free
  else
    match values with
    | v0 :: rest when List.for_all (Instr.equal_value v0) rest -> Gather_splat
    | _ :: _ | [] -> Gather_insert

let insert_cost_of_value t (v : Instr.value) =
  match v with
  | Instr.Ins i when not (Instr.is_load i) -> t.insert_element_alu
  | Instr.Ins _ | Instr.Const _ | Instr.Arg _ -> t.insert_element

let gather_cost t values =
  match classify_gather values with
  | Gather_free -> 0
  | Gather_splat -> t.splat
  | Gather_insert ->
    List.fold_left (fun acc v -> acc + insert_cost_of_value t v) 0 values

let scalar_instr_cost t (i : Instr.t) =
  match i.kind with
  | Instr.Binop (op, _, _) -> (t.binop_cost op).scalar
  | Instr.Unop (op, _) -> (t.unop_cost op).scalar
  | Instr.Load _ -> t.load_cost.scalar
  | Instr.Store _ -> t.store_cost.scalar
  | Instr.Cmp _ -> t.cmp_cost.scalar
  | Instr.Select _ -> t.select_cost.scalar
  | Instr.Masked_load _ -> t.masked_load_cost.scalar
  | Instr.Masked_store _ -> t.masked_store_cost.scalar
  | Instr.Splat _ -> t.splat
  | Instr.Buildvec vs -> gather_cost t vs
  | Instr.Extract _ -> t.extract_element
  | Instr.Reduce (_, v) ->
    t.horizontal_reduce
      (match Instr.value_ty v with Some ty -> Types.lanes ty | None -> 1)
  | Instr.Shuffle _ -> t.shuffle

(* Cost of one executed instruction, scalar or vector — the simulator's
   charge. *)
let instr_cost t (i : Instr.t) =
  let lanes_of ty = Types.lanes ty in
  match i.kind with
  | Instr.Binop (op, _, _) ->
    let c = t.binop_cost op in
    let n = lanes_of i.ty in
    if n > 1 then c.vector n else c.scalar
  | Instr.Unop (op, _) ->
    let c = t.unop_cost op in
    let n = lanes_of i.ty in
    if n > 1 then c.vector n else c.scalar
  | Instr.Load a ->
    if a.access_lanes > 1 then t.load_cost.vector a.access_lanes
    else t.load_cost.scalar
  | Instr.Store (a, _) ->
    if a.access_lanes > 1 then t.store_cost.vector a.access_lanes
    else t.store_cost.scalar
  | Instr.Cmp _ ->
    let n = lanes_of i.ty in
    if n > 1 then t.cmp_cost.vector n else t.cmp_cost.scalar
  | Instr.Select _ ->
    let n = lanes_of i.ty in
    if n > 1 then t.select_cost.vector n else t.select_cost.scalar
  | Instr.Masked_load (a, _, _) ->
    if a.access_lanes > 1 then t.masked_load_cost.vector a.access_lanes
    else t.masked_load_cost.scalar
  | Instr.Masked_store (a, _, _) ->
    if a.access_lanes > 1 then t.masked_store_cost.vector a.access_lanes
    else t.masked_store_cost.scalar
  | Instr.Splat _ -> t.splat
  | Instr.Buildvec vs -> gather_cost t vs
  | Instr.Extract _ -> t.extract_element
  | Instr.Reduce (_, v) ->
    t.horizontal_reduce
      (match Instr.value_ty v with Some ty -> Types.lanes ty | None -> 1)
  | Instr.Shuffle _ -> t.shuffle

let vector_group_cost t (i : Instr.t) ~lanes =
  match i.kind with
  | Instr.Binop (op, _, _) -> (t.binop_cost op).vector lanes
  | Instr.Unop (op, _) -> (t.unop_cost op).vector lanes
  | Instr.Load _ -> t.load_cost.vector lanes
  | Instr.Store _ -> t.store_cost.vector lanes
  | Instr.Cmp _ -> t.cmp_cost.vector lanes
  | Instr.Select _ -> t.select_cost.vector lanes
  | Instr.Masked_load _ -> t.masked_load_cost.vector lanes
  | Instr.Masked_store _ -> t.masked_store_cost.vector lanes
  | Instr.Splat _ | Instr.Buildvec _ | Instr.Extract _ | Instr.Reduce _
  | Instr.Shuffle _ ->
    invalid_arg "vector_group_cost: not a scalar instruction"

let pp ppf t =
  Fmt.pf ppf "%s (%d-bit vectors)" t.target_name t.vector_bits
