(** Target cost model — the stand-in for LLVM's TTI on Skylake/AVX2.

    Calibrated so the paper's worked examples (Figures 2-4) reproduce their
    printed group costs exactly.  Ships two tables: [skylake_avx2] is what
    the vectorizer queries (TTI), [skylake_machine] is what the execution
    simulator charges; their small documented differences reproduce the
    cost-model/performance inconsistencies of Section 5.2 structurally. *)

open Lslp_ir

type op_costs = {
  scalar : int;
  vector : int -> int;  (** cost as a function of lane count *)
}

type t = {
  target_name : string;
  vector_bits : int;
  binop_cost : Opcode.binop -> op_costs;
  unop_cost : Opcode.unop -> op_costs;
  load_cost : op_costs;
  store_cost : op_costs;
  cmp_cost : op_costs;  (** lane compare producing an i1 mask *)
  select_cost : op_costs;  (** per-lane blend on a mask *)
  masked_load_cost : op_costs;
      (** predicated load; dearer than [load_cost] on both sides *)
  masked_store_cost : op_costs;  (** predicated store *)
  insert_element : int;
  insert_element_alu : int;
      (** insertion of an ALU-produced (non-load) value; the machine table
          charges these more than TTI does *)
  extract_element : int;
  splat : int;
  shuffle : int;  (** single-source lane permutation *)
  horizontal_reduce : int -> int;
      (** cost of reducing an n-lane vector to a scalar *)
}

val skylake_avx2 : t
(** The TTI table the vectorizer consults. *)

val skylake_machine : t
(** The simulator's table; identical to TTI except ALU-value lane insertion
    costs 2 (register-domain crossing), reproducing §5.2's cost-model /
    performance inconsistencies structurally. *)

val sse_like : t
(** 128-bit target for tests/ablations. *)

val max_lanes : t -> Types.scalar -> int
(** Lanes of the widest native vector for the element type (4 for i64/f64 on
    256-bit targets). *)

val scalar_instr_cost : t -> Instr.t -> int
(** Cost of the instruction in scalar form. *)

val instr_cost : t -> Instr.t -> int
(** Cost of one executed instruction as written (vector ops charged at their
    width) — the simulator's per-instruction charge. *)

val vector_group_cost : t -> Instr.t -> lanes:int -> int
(** Cost of the [lanes]-wide vector instruction replacing a group whose
    members look like the given scalar instruction. *)

type gather_kind = Gather_free | Gather_splat | Gather_insert

val classify_gather : Instr.value list -> gather_kind
(** Free for all-constant vectors, splat when every lane is the same value,
    per-lane insertion otherwise. *)

val gather_cost : t -> Instr.value list -> int

val pp : t Fmt.t
