(** Post-vectorization legality validation.

    Take a {!snapshot} of a function before the pass mutates it, run the
    pass, then {!validate} the transformed function against the snapshot:

    - every recorded vector instruction's lanes must be mutually independent
      scalar instructions of the original dependence graph (data + memory
      dependences via {!Lslp_analysis.Addr} aliasing);
    - bundle typing must be uniform: one scalar element kind and opclass per
      bundle, lane count matching the emitted vector type;
    - the transformed block order must be a linearization of the original
      dependence graph, vector instructions inheriting the constraints of
      the lanes they fuse;
    - the structural {!Lslp_ir.Verifier} must still accept the function.

    Findings come back as {!Diagnostic.t} values — never exceptions. *)

open Lslp_ir

type snapshot
(** Dependence graph and instruction set of the pre-transformation block.
    The snapshot is immutable: later in-place mutation of the function does
    not disturb it. *)

val snapshot : Func.t -> snapshot

type lane_provenance = {
  lanes : Instr.t array;  (** original scalar instruction per lane *)
  vector : Instr.t;  (** the wide instruction emitted for the bundle *)
}
(** Records which scalar instructions a vector instruction's lanes came
    from.  Produced by [Codegen.run ~record] and threaded through the
    pipeline report. *)

val validate :
  ?provenance:lane_provenance list -> snapshot -> Func.t -> Diagnostic.t list
(** All legality violations of the transformed function w.r.t. the
    snapshot; [[]] means the transformation is provably order-, type- and
    dependence-preserving.  Provenance entries whose lanes are not part of
    the snapshot (instructions created by an earlier region of the same
    pass) are skipped rather than guessed at. *)
