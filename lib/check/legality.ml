(* Post-vectorization legality validation.

   The pass mutates a function in place; this module proves, after the
   fact, that the mutation preserved the original dependence structure.
   The snapshot captures the pre-pass dependence graph (data + memory
   edges); Depgraph copies positions and reachability into its own arrays,
   so later operand rewriting does not disturb it.

   The central idea is *origin sets*: each instruction of the transformed
   block maps back to the original instructions it stands for — a surviving
   scalar maps to itself, a vector instruction maps to the lanes recorded
   for it at emission time, glue code (gathers, extracts, shuffles,
   reduction tails) maps to nothing and is covered by the structural
   verifier alone.  Every dependence between origin sets must then agree
   with the block order of the transformed function. *)

open Lslp_ir
open Lslp_analysis

(* One dependence graph per block, keyed by label: regions are
   self-contained, so no dependence ever crosses a block boundary and each
   block can be validated against its own snapshot. *)
type snapshot = { block_deps : (string * Depgraph.t) list }

let snapshot (f : Func.t) =
  {
    block_deps =
      List.map (fun b -> (Block.label b, Depgraph.build b)) (Func.blocks f);
  }

(* The snapshot graph holding this instruction, if any: an instruction
   lives in exactly one block, so the first hit is the right one. *)
let find_deps snap (i : Instr.t) =
  List.find_map
    (fun (_, d) -> if Depgraph.mem d i then Some d else None)
    snap.block_deps

type lane_provenance = {
  lanes : Instr.t array;
  vector : Instr.t;
}

(* Element kind carried by one lane of a bundle, or by the vector value
   itself.  Stores are void-typed, so their element comes from the access. *)
let element_kind (i : Instr.t) : (Types.scalar * int) option =
  match i.Instr.ty with
  | Types.Scalar s -> Some (s, 1)
  | Types.Vec (s, n) -> Some (s, n)
  | Types.Void -> (
    match Instr.address i with
    | Some a -> Some (a.Instr.elt, a.Instr.access_lanes)
    | None -> None)

let check_structure (f : Func.t) add =
  List.iter
    (fun (e : Verifier.error) ->
      let instrs = match e.Verifier.instr with Some i -> [ i ] | None -> [] in
      add (Diagnostic.error ~instrs ~rule:"verifier" e.Verifier.message))
    (Verifier.check_func f)

let check_bundle_typing (p : lane_provenance) add =
  match element_kind p.vector with
  | None ->
    add
      (Diagnostic.error ~instrs:[ p.vector ] ~rule:"bundle-typing"
         "vector instruction has no element type")
  | Some (velt, vlanes) ->
    if vlanes <> Array.length p.lanes then
      add
        (Diagnostic.error ~instrs:[ p.vector ] ~rule:"bundle-typing"
           (Fmt.str "vector has %d lane(s) but the bundle has %d scalar(s)"
              vlanes (Array.length p.lanes)));
    let c0 = Instr.opclass p.vector in
    Array.iter
      (fun (lane : Instr.t) ->
        (match element_kind lane with
         | Some (s, 1) when Types.equal_scalar s velt -> ()
         | Some (s, 1) ->
           add
             (Diagnostic.error ~instrs:[ p.vector; lane ] ~rule:"bundle-typing"
                (Fmt.str "lane element %a does not match vector element %a"
                   Types.pp_scalar s Types.pp_scalar velt))
         | Some (_, _) ->
           add
             (Diagnostic.error ~instrs:[ p.vector; lane ] ~rule:"bundle-typing"
                "bundle lane is not a scalar instruction")
         | None ->
           add
             (Diagnostic.error ~instrs:[ p.vector; lane ] ~rule:"bundle-typing"
                "bundle lane has no element type"));
        if not (Instr.equal_opclass (Instr.opclass lane) c0) then
          add
            (Diagnostic.error ~instrs:[ p.vector; lane ] ~rule:"bundle-typing"
               (Fmt.str "lane opcode %s does not match vector opcode %s"
                  (Instr.opclass_name (Instr.opclass lane))
                  (Instr.opclass_name c0))))
      p.lanes

let check_lane_independence snap (p : lane_provenance) add =
  match Array.to_list p.lanes |> List.find_map (find_deps snap) with
  | None -> () (* every lane born inside the pass: nothing to prove *)
  | Some deps ->
  let known = Array.to_list p.lanes |> List.filter (Depgraph.mem deps) in
  (* lanes born inside the pass (a later region bundling glue code) have no
     pre-pass dependence entry: nothing to prove against *)
  if
    List.length known = Array.length p.lanes
    && not (Depgraph.independent deps known)
  then
    add
      (Diagnostic.error
         ~instrs:(p.vector :: known)
         ~rule:"lane-independence"
         (Fmt.str
            "lanes of `%s` are not mutually independent in the original \
             dependence graph"
            p.vector.Instr.name))

let check_block_order deps ~provenance (block : Block.t) add =
  let origins : (int, Instr.t list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (p : lane_provenance) ->
      let known =
        Array.to_list p.lanes |> List.filter (Depgraph.mem deps)
      in
      if known <> [] then begin
        let cur =
          Option.value ~default:[]
            (Hashtbl.find_opt origins p.vector.Instr.id)
        in
        Hashtbl.replace origins p.vector.Instr.id (known @ cur)
      end)
    provenance;
  let origin (i : Instr.t) =
    match Hashtbl.find_opt origins i.Instr.id with
    | Some ls -> ls
    | None -> if Depgraph.mem deps i then [ i ] else []
  in
  let after = Array.of_list (Block.to_list block) in
  let n = Array.length after in
  for x = 0 to n - 1 do
    let ox = origin after.(x) in
    for y = x + 1 to n - 1 do
      let oy = origin after.(y) in
      let violated =
        List.exists
          (fun (a : Instr.t) ->
            List.exists
              (fun (b : Instr.t) ->
                a.Instr.id <> b.Instr.id && Depgraph.depends deps a ~on:b)
              oy)
          ox
      in
      if violated then
        add
          (Diagnostic.error
             ~instrs:[ after.(x); after.(y) ]
             ~rule:"dependence-order"
             (Fmt.str
                "`%s` is scheduled before `%s`, which it depends on in the \
                 original dependence graph"
                after.(x).Instr.name after.(y).Instr.name))
    done
  done

(* Dependence order is proved block by block against that block's own
   snapshot; a transformed block with no snapshot entry (none today — the
   pipeline never creates blocks) has nothing to prove against. *)
let check_dependence_order snap ~provenance (f : Func.t) add =
  List.iter
    (fun b ->
      match List.assoc_opt (Block.label b) snap.block_deps with
      | None -> ()
      | Some deps -> check_block_order deps ~provenance b add)
    (Func.blocks f)

let validate ?(provenance = []) snap (f : Func.t) : Diagnostic.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  check_structure f add;
  List.iter
    (fun p ->
      check_bundle_typing p add;
      check_lane_independence snap p add)
    provenance;
  check_dependence_order snap ~provenance f add;
  List.rev !diags
