(** Optimization remarks — the pass's explanation of its own decisions.

    One {!t} per region the pipeline considered, carrying the outcome
    (vectorized / unprofitable / not schedulable / reduction too narrow)
    plus {!note}s gathered while the graph was built (operand-reorder slots
    that ended FAILED, multi-node growth capped, operand columns gathered
    and why).  A small rule registry turns records into human-readable
    remark lines; {!report_to_json} renders the machine form. *)

type note =
  | Operand_mode_failed of { slots : int }
      (** look-ahead reorder slots whose mode degraded to FAILED *)
  | Multinode_capped of { limit : int }
      (** multi-node growth stopped by the configured size limit *)
  | Column_rejected of { reason : string; count : int }
      (** operand columns turned into gathers, by rejection reason *)
  | Seed_rejected of { reason : string }
      (** the seed bundle itself could not be vectorized *)

type outcome =
  | Vectorized
  | Unprofitable
  | Not_schedulable
  | Reduction_unmatched of { leaves : int; width : int }
  | Degraded of { pass : string; error : string }
      (** a pass failed mid-transform; the region was rolled back to its
          scalar form (fail-soft pipeline) *)
  | Budget_exhausted of { pass : string; what : string }
      (** a resource budget (fuel, nodes, steps) ran out; the region was
          rolled back to its scalar form *)

type t = {
  region : string;  (** seed / reduction-root description *)
  block : string;  (** label of the basic block (region) considered *)
  lanes : int;
  cost : int option;  (** total region cost; [None] when never costed *)
  threshold : int;
  outcome : outcome;
  notes : note list;
}

(** {2 Rule registry} *)

type rule = {
  rule_name : string;
  produce : t -> string option;
      (** [None] when the rule does not apply to this region *)
}

val builtin_rules : rule list

val register_rule : rule -> unit
(** Append a custom rule; it runs after the built-in ones. *)

val rules : unit -> rule list

val explain : t -> (string * string) list
(** [(rule_name, message)] for every applicable rule, in registry order. *)

val pp : t Fmt.t
(** Multi-line human-readable remark for one region. *)

val report_json :
  config_name:string ->
  func_name:string ->
  diagnostics:Diagnostic.t list ->
  t list ->
  Lslp_util.Json.t
(** The whole report as a {!Lslp_util.Json} value, for callers composing
    larger documents. *)

val report_to_json :
  config_name:string ->
  func_name:string ->
  diagnostics:Diagnostic.t list ->
  t list ->
  string
(** {!report_json} rendered minified.  Field order and byte layout are
    stable — the cram goldens pin them. *)
