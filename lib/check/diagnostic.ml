(* Typed diagnostics for the static checkers.

   A diagnostic is data, not control flow: validation never raises, it
   returns the full list of findings so a caller can print all of them,
   count severities, or fail a build. *)

open Lslp_ir

type severity = Error | Warning

type t = {
  severity : severity;
  rule : string;
  instrs : Instr.t list;
  message : string;
}

let v ?(severity = Error) ?(instrs = []) ~rule message =
  { severity; rule; instrs; message }

let error ?instrs ~rule message = v ~severity:Error ?instrs ~rule message
let warning ?instrs ~rule message = v ~severity:Warning ?instrs ~rule message

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let summary ds =
  Fmt.str "%d error(s), %d warning(s)"
    (List.length (errors ds))
    (List.length (warnings ds))

let severity_name = function Error -> "error" | Warning -> "warning"

let pp ppf d =
  Fmt.pf ppf "%s[%s]: %s" (severity_name d.severity) d.rule d.message;
  match d.instrs with
  | [] -> ()
  | i :: _ -> Fmt.pf ppf " (at `%a`)" Printer.pp_instr i

let to_string d = Fmt.str "%a" pp d
