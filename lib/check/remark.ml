(* Optimization remarks.

   Mirrors -Rpass/-Rpass-missed: every region the vectorizer considered
   gets a record of what happened and why, assembled by the pipeline from
   the region outcome plus notes the graph builder emitted along the way.
   Rendering goes through a registry of rules so downstream tooling can
   register extra explanations without touching the pipeline. *)

type note =
  | Operand_mode_failed of { slots : int }
  | Multinode_capped of { limit : int }
  | Column_rejected of { reason : string; count : int }
  | Seed_rejected of { reason : string }

type outcome =
  | Vectorized
  | Unprofitable
  | Not_schedulable
  | Reduction_unmatched of { leaves : int; width : int }
  | Degraded of { pass : string; error : string }
  | Budget_exhausted of { pass : string; what : string }

type t = {
  region : string;
  block : string;
  lanes : int;
  cost : int option;
  threshold : int;
  outcome : outcome;
  notes : note list;
}

(* ---- rule registry ------------------------------------------------ *)

type rule = {
  rule_name : string;
  produce : t -> string option;
}

let outcome_rule =
  {
    rule_name = "outcome";
    produce =
      (fun r ->
        match (r.outcome, r.cost) with
        | Vectorized, Some c ->
          Some
            (Fmt.str "vectorized at VL=%d: cost %+d beats threshold %d"
               r.lanes c r.threshold)
        | Vectorized, None -> Some (Fmt.str "vectorized at VL=%d" r.lanes)
        | Unprofitable, Some c ->
          Some
            (Fmt.str "kept scalar: cost %+d is not below threshold %d" c
               r.threshold)
        | Unprofitable, None -> Some "kept scalar: not profitable"
        | Not_schedulable, _ ->
          Some
            "kept scalar: bundles cannot be scheduled together (contracting \
             them leaves a dependence cycle)"
        | Reduction_unmatched { leaves; width }, _ ->
          Some
            (Fmt.str
               "reduction not vectorized: %d leaf/leaves is less than the \
                vector width %d"
               leaves width)
        | Degraded { pass; error }, _ ->
          Some
            (Fmt.str "degraded: %s failed (%s); region rolled back to scalar"
               pass error)
        | Budget_exhausted { pass; what }, _ ->
          Some
            (Fmt.str
               "degraded: %s exhausted the %s budget; region rolled back to \
                scalar"
               pass what));
  }

let note_rule name pick =
  { rule_name = name; produce = (fun r -> List.find_map pick r.notes) }

let seed_rejected_rule =
  note_rule "seed-rejected" (function
    | Seed_rejected { reason } ->
      Some (Fmt.str "seed bundle rejected: %s" reason)
    | Operand_mode_failed _ | Multinode_capped _ | Column_rejected _ -> None)

let operand_mode_rule =
  note_rule "operand-mode-failed" (function
    | Operand_mode_failed { slots } ->
      Some
        (Fmt.str
           "look-ahead reorder: %d operand slot(s) ended in FAILED mode"
           slots)
    | Seed_rejected _ | Multinode_capped _ | Column_rejected _ -> None)

let multinode_capped_rule =
  note_rule "multi-node-capped" (function
    | Multinode_capped { limit } ->
      Some (Fmt.str "multi-node growth capped at %d group(s)" limit)
    | Seed_rejected _ | Operand_mode_failed _ | Column_rejected _ -> None)

let columns_rule =
  {
    rule_name = "gathered-columns";
    produce =
      (fun r ->
        let gathered =
          List.filter_map
            (function
              | Column_rejected { reason; count } -> Some (reason, count)
              | Seed_rejected _ | Operand_mode_failed _ | Multinode_capped _
                -> None)
            r.notes
        in
        match gathered with
        | [] -> None
        | gs ->
          Some
            (Fmt.str "operand column(s) gathered: %s"
               (String.concat "; "
                  (List.map
                     (fun (reason, count) ->
                       if count = 1 then reason
                       else Fmt.str "%s (x%d)" reason count)
                     gs))));
  }

let builtin_rules =
  [
    outcome_rule; seed_rejected_rule; operand_mode_rule; multinode_capped_rule;
    columns_rule;
  ]

(* Custom rules appended at runtime.  Atomic with a CAS retry loop so
   registration from one domain can never be lost by a concurrent append
   (lslp-lint R1 would flag the old [ref] version as a data race). *)
let registered : rule list Atomic.t = Atomic.make []

let rec register_rule r =
  let old = Atomic.get registered in
  if not (Atomic.compare_and_set registered old (old @ [ r ])) then
    register_rule r

let rules () = builtin_rules @ Atomic.get registered

let explain r =
  List.filter_map
    (fun rule ->
      Option.map (fun msg -> (rule.rule_name, msg)) (rule.produce r))
    (rules ())

let pp ppf r =
  if r.lanes > 0 then
    Fmt.pf ppf "@[<v 2>region [%s] %s (VL=%d):" r.block r.region r.lanes
  else Fmt.pf ppf "@[<v 2>region [%s] %s:" r.block r.region;
  List.iter
    (fun (name, msg) -> Fmt.pf ppf "@,remark[%s]: %s" name msg)
    (explain r);
  Fmt.pf ppf "@]"

(* ---- JSON rendering ------------------------------------------------ *)

module Json = Lslp_util.Json

let outcome_name = function
  | Vectorized -> "vectorized"
  | Unprofitable -> "unprofitable"
  | Not_schedulable -> "not-schedulable"
  | Reduction_unmatched _ -> "reduction-unmatched"
  | Degraded _ -> "degraded"
  | Budget_exhausted _ -> "budget-exhausted"

let remark_json r =
  Json.Obj
    [
      ("region", Json.Str r.region);
      ("block", Json.Str r.block);
      ("lanes", Json.Int r.lanes);
      ("cost", match r.cost with Some c -> Json.Int c | None -> Json.Null);
      ("threshold", Json.Int r.threshold);
      ("outcome", Json.Str (outcome_name r.outcome));
      ( "remarks",
        Json.Arr
          (List.map
             (fun (name, msg) ->
               Json.Obj
                 [ ("rule", Json.Str name); ("message", Json.Str msg) ])
             (explain r)) );
    ]

let diagnostic_json (d : Diagnostic.t) =
  Json.Obj
    [
      ( "severity",
        Json.Str
          (match d.Diagnostic.severity with
           | Diagnostic.Error -> "error"
           | Diagnostic.Warning -> "warning") );
      ("rule", Json.Str d.Diagnostic.rule);
      ("message", Json.Str d.Diagnostic.message);
    ]

let report_json ~config_name ~func_name ~diagnostics remarks =
  Json.Obj
    [
      ("config", Json.Str config_name);
      ("function", Json.Str func_name);
      ("regions", Json.Arr (List.map remark_json remarks));
      ("diagnostics", Json.Arr (List.map diagnostic_json diagnostics));
    ]

let report_to_json ~config_name ~func_name ~diagnostics remarks =
  Json.to_string (report_json ~config_name ~func_name ~diagnostics remarks)
