(* Optimization remarks.

   Mirrors -Rpass/-Rpass-missed: every region the vectorizer considered
   gets a record of what happened and why, assembled by the pipeline from
   the region outcome plus notes the graph builder emitted along the way.
   Rendering goes through a registry of rules so downstream tooling can
   register extra explanations without touching the pipeline. *)

type note =
  | Operand_mode_failed of { slots : int }
  | Multinode_capped of { limit : int }
  | Column_rejected of { reason : string; count : int }
  | Seed_rejected of { reason : string }

type outcome =
  | Vectorized
  | Unprofitable
  | Not_schedulable
  | Reduction_unmatched of { leaves : int; width : int }
  | Degraded of { pass : string; error : string }
  | Budget_exhausted of { pass : string; what : string }

type t = {
  region : string;
  block : string;
  lanes : int;
  cost : int option;
  threshold : int;
  outcome : outcome;
  notes : note list;
}

(* ---- rule registry ------------------------------------------------ *)

type rule = {
  rule_name : string;
  produce : t -> string option;
}

let outcome_rule =
  {
    rule_name = "outcome";
    produce =
      (fun r ->
        match (r.outcome, r.cost) with
        | Vectorized, Some c ->
          Some
            (Fmt.str "vectorized at VL=%d: cost %+d beats threshold %d"
               r.lanes c r.threshold)
        | Vectorized, None -> Some (Fmt.str "vectorized at VL=%d" r.lanes)
        | Unprofitable, Some c ->
          Some
            (Fmt.str "kept scalar: cost %+d is not below threshold %d" c
               r.threshold)
        | Unprofitable, None -> Some "kept scalar: not profitable"
        | Not_schedulable, _ ->
          Some
            "kept scalar: bundles cannot be scheduled together (contracting \
             them leaves a dependence cycle)"
        | Reduction_unmatched { leaves; width }, _ ->
          Some
            (Fmt.str
               "reduction not vectorized: %d leaf/leaves is less than the \
                vector width %d"
               leaves width)
        | Degraded { pass; error }, _ ->
          Some
            (Fmt.str "degraded: %s failed (%s); region rolled back to scalar"
               pass error)
        | Budget_exhausted { pass; what }, _ ->
          Some
            (Fmt.str
               "degraded: %s exhausted the %s budget; region rolled back to \
                scalar"
               pass what));
  }

let note_rule name pick =
  { rule_name = name; produce = (fun r -> List.find_map pick r.notes) }

let seed_rejected_rule =
  note_rule "seed-rejected" (function
    | Seed_rejected { reason } ->
      Some (Fmt.str "seed bundle rejected: %s" reason)
    | Operand_mode_failed _ | Multinode_capped _ | Column_rejected _ -> None)

let operand_mode_rule =
  note_rule "operand-mode-failed" (function
    | Operand_mode_failed { slots } ->
      Some
        (Fmt.str
           "look-ahead reorder: %d operand slot(s) ended in FAILED mode"
           slots)
    | Seed_rejected _ | Multinode_capped _ | Column_rejected _ -> None)

let multinode_capped_rule =
  note_rule "multi-node-capped" (function
    | Multinode_capped { limit } ->
      Some (Fmt.str "multi-node growth capped at %d group(s)" limit)
    | Seed_rejected _ | Operand_mode_failed _ | Column_rejected _ -> None)

let columns_rule =
  {
    rule_name = "gathered-columns";
    produce =
      (fun r ->
        let gathered =
          List.filter_map
            (function
              | Column_rejected { reason; count } -> Some (reason, count)
              | Seed_rejected _ | Operand_mode_failed _ | Multinode_capped _
                -> None)
            r.notes
        in
        match gathered with
        | [] -> None
        | gs ->
          Some
            (Fmt.str "operand column(s) gathered: %s"
               (String.concat "; "
                  (List.map
                     (fun (reason, count) ->
                       if count = 1 then reason
                       else Fmt.str "%s (x%d)" reason count)
                     gs))));
  }

let builtin_rules =
  [
    outcome_rule; seed_rejected_rule; operand_mode_rule; multinode_capped_rule;
    columns_rule;
  ]

let registered : rule list ref = ref []
let register_rule r = registered := !registered @ [ r ]
let rules () = builtin_rules @ !registered

let explain r =
  List.filter_map
    (fun rule ->
      Option.map (fun msg -> (rule.rule_name, msg)) (rule.produce r))
    (rules ())

let pp ppf r =
  if r.lanes > 0 then
    Fmt.pf ppf "@[<v 2>region [%s] %s (VL=%d):" r.block r.region r.lanes
  else Fmt.pf ppf "@[<v 2>region [%s] %s:" r.block r.region;
  List.iter
    (fun (name, msg) -> Fmt.pf ppf "@,remark[%s]: %s" name msg)
    (explain r);
  Fmt.pf ppf "@]"

(* ---- JSON rendering ------------------------------------------------ *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_string b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

let json_field b ~first name value =
  if not first then Buffer.add_char b ',';
  json_string b name;
  Buffer.add_char b ':';
  value ()

let outcome_name = function
  | Vectorized -> "vectorized"
  | Unprofitable -> "unprofitable"
  | Not_schedulable -> "not-schedulable"
  | Reduction_unmatched _ -> "reduction-unmatched"
  | Degraded _ -> "degraded"
  | Budget_exhausted _ -> "budget-exhausted"

let remark_to_json b r =
  Buffer.add_char b '{';
  json_field b ~first:true "region" (fun () -> json_string b r.region);
  json_field b ~first:false "block" (fun () -> json_string b r.block);
  json_field b ~first:false "lanes" (fun () ->
      Buffer.add_string b (string_of_int r.lanes));
  json_field b ~first:false "cost" (fun () ->
      match r.cost with
      | Some c -> Buffer.add_string b (string_of_int c)
      | None -> Buffer.add_string b "null");
  json_field b ~first:false "threshold" (fun () ->
      Buffer.add_string b (string_of_int r.threshold));
  json_field b ~first:false "outcome" (fun () ->
      json_string b (outcome_name r.outcome));
  json_field b ~first:false "remarks" (fun () ->
      Buffer.add_char b '[';
      List.iteri
        (fun k (name, msg) ->
          if k > 0 then Buffer.add_char b ',';
          Buffer.add_char b '{';
          json_field b ~first:true "rule" (fun () -> json_string b name);
          json_field b ~first:false "message" (fun () -> json_string b msg);
          Buffer.add_char b '}')
        (explain r);
      Buffer.add_char b ']');
  Buffer.add_char b '}'

let diagnostic_to_json b (d : Diagnostic.t) =
  Buffer.add_char b '{';
  json_field b ~first:true "severity" (fun () ->
      json_string b
        (match d.Diagnostic.severity with
         | Diagnostic.Error -> "error"
         | Diagnostic.Warning -> "warning"));
  json_field b ~first:false "rule" (fun () ->
      json_string b d.Diagnostic.rule);
  json_field b ~first:false "message" (fun () ->
      json_string b d.Diagnostic.message);
  Buffer.add_char b '}'

let report_to_json ~config_name ~func_name ~diagnostics remarks =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  json_field b ~first:true "config" (fun () -> json_string b config_name);
  json_field b ~first:false "function" (fun () -> json_string b func_name);
  json_field b ~first:false "regions" (fun () ->
      Buffer.add_char b '[';
      List.iteri
        (fun k r ->
          if k > 0 then Buffer.add_char b ',';
          remark_to_json b r)
        remarks;
      Buffer.add_char b ']');
  json_field b ~first:false "diagnostics" (fun () ->
      Buffer.add_char b '[';
      List.iteri
        (fun k d ->
          if k > 0 then Buffer.add_char b ',';
          diagnostic_to_json b d)
        diagnostics;
      Buffer.add_char b ']');
  Buffer.add_char b '}';
  Buffer.contents b
