(** Typed diagnostics for the static checkers.

    Checkers report what they found as values, never as exceptions: a
    diagnostic names the rule that fired, carries a severity, and points at
    the offending instructions so callers (CLI, bench harness, tests) can
    render or count them as they see fit. *)

open Lslp_ir

type severity = Error | Warning

type t = {
  severity : severity;
  rule : string;  (** stable rule identifier, e.g. ["lane-independence"] *)
  instrs : Instr.t list;  (** offending instructions, possibly empty *)
  message : string;
}

val v : ?severity:severity -> ?instrs:Instr.t list -> rule:string -> string -> t
(** Build a diagnostic; [severity] defaults to [Error]. *)

val error : ?instrs:Instr.t list -> rule:string -> string -> t
val warning : ?instrs:Instr.t list -> rule:string -> string -> t

val is_error : t -> bool
val errors : t list -> t list
val warnings : t list -> t list

val summary : t list -> string
(** ["2 error(s), 1 warning(s)"] — stable one-line count. *)

val pp : t Fmt.t
val to_string : t -> string
