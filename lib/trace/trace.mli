(** Decision tracing: a typed, zero-cost-when-off event stream recording
    {e why} the vectorizer did what it did.

    The pipeline (and the passes it drives) append structured events to a
    sink while transforming a function: seed bundles found and tried,
    SLP-graph shape (nodes, operand edges, dependence overlay — the
    paper's Fig. 6/7 diagrams), per-slot operand modes (Table 1), every
    [get_best] tie-break with its candidate set and per-level look-ahead
    scores (Listings 6–7), cost-model accept/reject with the numbers,
    emitted vector instructions, transaction rollbacks (including injected
    faults and budget exhaustion) and final region outcomes.

    {b Determinism contract.}  Events carry logical timestamps — the
    sink's own monotone event counter, not a clock — so a trace is a pure
    function of (input, configuration) and cram tests can pin it byte for
    byte.  Wall-clock time appears only as an optional annotation
    ({!create}[ ~wall:true]), off by default.

    Three exporters render the same stream: Chrome trace-event JSON
    (loads in Perfetto / chrome://tracing), Graphviz DOT of the SLP graph
    per region, and a human-readable decision log. *)

type node_kind =
  | Knode_group of string  (** opclass of the bundle *)
  | Knode_multi of string  (** the multi-node's commutative opcode *)
  | Knode_gather

type payload =
  | Span_begin of { pass : string }
  | Span_end of { pass : string }
      (** pass boundaries, mirroring [Lslp_telemetry.Probe.span] *)
  | Seeds_found of { seeds : (string * int) list  (** desc, lanes *) }
  | Seed_tried of { seed : string; lanes : int }
  | Graph_start of { gid : int; seed : string }
      (** one SLP graph build begins; [gid] is sink-unique *)
  | Graph_node of {
      gid : int;
      nid : int;
      kind : node_kind;
      bundles : string list list;
          (** per internal group (singleton except for multi-nodes), the
              per-lane scalar values *)
    }
  | Graph_edge of { gid : int; parent : int; child : int; slot : int }
  | Dep_edge of { gid : int; src : int; dst : int }
      (** [Depgraph] dependence between two graph nodes' scalars, overlaid
          on the operand edges *)
  | Slot_modes of { modes : string list }
      (** final per-slot operand mode after a matrix reorder (Table 1) *)
  | Get_best of {
      mode : string;
      last : string;
      candidates : string list;
      levels : (int * int list) list;
          (** look-ahead deepening: (level, getLAScore per {e tied}
              candidate) — empty when no tie-break was needed *)
      chosen : string option;
      cache_hits : int;
      cache_misses : int;
          (** [Score_cache] traffic during this call (0/0 off-cache) *)
    }
  | Cost_computed of {
      seed : string;
      nodes : int;
      total : int;
      threshold : int;
      accepted : bool;
    }
  | Emit of { instr : string; lanes : int }
      (** one vector instruction materialized by codegen *)
  | Rollback of { pass : string; error : string; budget_exhausted : bool }
      (** a transaction rolled the region back to scalar; injected faults
          surface here with the fault point in [error] *)
  | Region_outcome of {
      seed : string;
      lanes : int;
      outcome : string;
      cost : int option;
    }
  | Pool_event of { what : string; job : string; detail : string }
      (** compile-service boundary ([Lslp_service.Pool]): job
          enqueue/dispatch/retry/timeout/shed, cache hit/verify/evict,
          worker death/respawn.  [job] is the job label ([""] for
          pool-wide events).  Recorded by the pool's own sink under the
          pool lock, so pool traces are deterministic per (job list,
          configuration, fault spec) like every other trace. *)

type event = {
  ts : int;  (** logical timestamp: the sink's event sequence number *)
  region : string;  (** block label the event happened in *)
  payload : payload;
  wall : float option;  (** optional wall-clock annotation; [None] unless
                            the sink was created with [~wall:true] *)
}

type t
(** The sink.  The pipeline allocates one per run when [Config.trace] is
    on and threads it through every pass as [?trace]; with tracing off no
    sink exists and every instrumentation site is a [None] check. *)

val create : ?wall:bool -> unit -> t
val set_region : t -> string -> unit
val fresh_gid : t -> int
val record : t -> payload -> unit
val events : t -> event list
(** In recording order. *)

(** {2 Rendering helpers} *)

val payload_name : payload -> string
val pp_event : event Fmt.t

(** {2 Exporters} *)

val to_chrome :
  ?meta:(string * string) list -> event list -> Lslp_util.Json.t
(** Chrome trace-event format ("JSON object format"): spans as B/E
    duration events nested per region thread, everything else as instant
    events with the payload in [args]; logical timestamps as
    microseconds.  Loads in Perfetto and chrome://tracing. *)

val chrome_string : ?meta:(string * string) list -> event list -> string

val to_dot : event list -> string
(** Graphviz DOT of the SLP graphs: one cluster per region, one
    sub-cluster per graph build, multi-nodes as clusters of their internal
    bundles, lanes color-coded, operand edges solid and [Depgraph] edges
    dashed. *)

val to_log : event list -> string
(** Human-readable decision log, one line per event, span-indented. *)
