(* Decision tracing.

   The sink is a reversed event list plus a logical clock: every recorded
   event gets the next sequence number, so a trace is deterministic per
   (input, configuration) and golden tests can pin it.  Wall-clock time is
   an optional per-event annotation (off by default) — never the
   timestamp.

   Instrumentation sites throughout the pipeline receive the sink as
   [?trace : t option] and do nothing on [None]; with [Config.trace] off
   no sink is ever allocated, so the off-path costs one immediate-value
   comparison per site and the output is byte-identical to an untraced
   build (a QCheck differential property asserts exactly that). *)

type node_kind =
  | Knode_group of string
  | Knode_multi of string
  | Knode_gather

type payload =
  | Span_begin of { pass : string }
  | Span_end of { pass : string }
  | Seeds_found of { seeds : (string * int) list }
  | Seed_tried of { seed : string; lanes : int }
  | Graph_start of { gid : int; seed : string }
  | Graph_node of {
      gid : int;
      nid : int;
      kind : node_kind;
      bundles : string list list;
    }
  | Graph_edge of { gid : int; parent : int; child : int; slot : int }
  | Dep_edge of { gid : int; src : int; dst : int }
  | Slot_modes of { modes : string list }
  | Get_best of {
      mode : string;
      last : string;
      candidates : string list;
      levels : (int * int list) list;
      chosen : string option;
      cache_hits : int;
      cache_misses : int;
    }
  | Cost_computed of {
      seed : string;
      nodes : int;
      total : int;
      threshold : int;
      accepted : bool;
    }
  | Emit of { instr : string; lanes : int }
  | Rollback of { pass : string; error : string; budget_exhausted : bool }
  | Region_outcome of {
      seed : string;
      lanes : int;
      outcome : string;
      cost : int option;
    }
  | Pool_event of { what : string; job : string; detail : string }
    (* compile-service boundary: enqueue/dispatch/retry/timeout/shed,
       cache hit/verify/evict, worker death/respawn.  [job] is the job's
       label (or "" for pool-wide events); recorded by the pool's own
       sink, with logical timestamps assigned under the pool lock. *)

type event = {
  ts : int;
  region : string;
  payload : payload;
  wall : float option;
}

type t = {
  mutable rev_events : event list;
  mutable clock : int;
  mutable region : string;
  gids : Lslp_util.Id_gen.t;
  wall : bool;
}

let create ?(wall = false) () =
  {
    rev_events = [];
    clock = 0;
    region = "";
    gids = Lslp_util.Id_gen.create ();
    wall;
  }

let set_region t region = t.region <- region

let fresh_gid t = Lslp_util.Id_gen.next t.gids

let record t payload =
  let ts = t.clock in
  t.clock <- ts + 1;
  let wall = if t.wall then Some (Unix.gettimeofday ()) else None in
  t.rev_events <- { ts; region = t.region; payload; wall } :: t.rev_events

let events t = List.rev t.rev_events

(* ---- naming and human rendering ----------------------------------- *)

let payload_name = function
  | Span_begin _ -> "span-begin"
  | Span_end _ -> "span-end"
  | Seeds_found _ -> "seeds-found"
  | Seed_tried _ -> "seed-tried"
  | Graph_start _ -> "graph-start"
  | Graph_node _ -> "graph-node"
  | Graph_edge _ -> "graph-edge"
  | Dep_edge _ -> "dep-edge"
  | Slot_modes _ -> "slot-modes"
  | Get_best _ -> "get-best"
  | Cost_computed _ -> "cost"
  | Emit _ -> "emit"
  | Rollback _ -> "rollback"
  | Region_outcome _ -> "region-outcome"
  | Pool_event { what; _ } -> Fmt.str "pool-%s" what

let kind_name = function
  | Knode_group op -> Fmt.str "group %s" op
  | Knode_multi op -> Fmt.str "multi %s" op
  | Knode_gather -> "gather"

let pp_bundles ppf bundles =
  Fmt.pf ppf "%a"
    Fmt.(list ~sep:semi (brackets (list ~sep:comma string)))
    bundles

let pp_payload ppf = function
  | Span_begin { pass } -> Fmt.pf ppf "begin %s" pass
  | Span_end { pass } -> Fmt.pf ppf "end %s" pass
  | Seeds_found { seeds } ->
    Fmt.pf ppf "seeds: %d%a" (List.length seeds)
      Fmt.(
        list ~sep:nop (fun ppf (desc, _) -> Fmt.pf ppf "@ %s" desc))
      seeds
  | Seed_tried { seed; lanes } -> Fmt.pf ppf "try seed %s (VL=%d)" seed lanes
  | Graph_start { gid; seed } -> Fmt.pf ppf "graph g%d for %s" gid seed
  | Graph_node { gid; nid; kind; bundles } ->
    Fmt.pf ppf "g%d node#%d %s %a" gid nid (kind_name kind) pp_bundles
      bundles
  | Graph_edge { gid; parent; child; slot } ->
    Fmt.pf ppf "g%d edge #%d -> #%d (slot %d)" gid parent child slot
  | Dep_edge { gid; src; dst } ->
    Fmt.pf ppf "g%d dep #%d ~> #%d" gid src dst
  | Slot_modes { modes } ->
    Fmt.pf ppf "slot modes: %a" Fmt.(list ~sep:comma string) modes
  | Get_best { mode; last; candidates; levels; chosen; cache_hits;
               cache_misses } ->
    Fmt.pf ppf "get_best mode=%s last=%s {%a} -> %s" mode last
      Fmt.(list ~sep:comma string)
      candidates
      (match chosen with Some c -> c | None -> "(none)");
    List.iter
      (fun (level, scores) ->
        Fmt.pf ppf " L%d:%a" level Fmt.(list ~sep:(any "/") int) scores)
      levels;
    if cache_hits > 0 || cache_misses > 0 then
      Fmt.pf ppf " (cache %dh/%dm)" cache_hits cache_misses
  | Cost_computed { seed; nodes; total; threshold; accepted } ->
    Fmt.pf ppf "cost %s: %+d vs threshold %d over %d node(s) -> %s" seed
      total threshold nodes
      (if accepted then "accept" else "reject")
  | Emit { instr; lanes } -> Fmt.pf ppf "emit x%d %s" lanes instr
  | Rollback { pass; error; budget_exhausted } ->
    Fmt.pf ppf "rollback in %s: %s%s" pass error
      (if budget_exhausted then " [budget]" else "")
  | Region_outcome { seed; lanes; outcome; cost } ->
    Fmt.pf ppf "outcome %s (VL=%d): %s%a" seed lanes outcome
      Fmt.(option (fun ppf c -> Fmt.pf ppf " (cost %+d)" c))
      cost
  | Pool_event { what; job; detail } ->
    Fmt.pf ppf "pool %s%s%s" what
      (if job = "" then "" else Fmt.str " job=%s" job)
      (if detail = "" then "" else Fmt.str ": %s" detail)

let pp_event ppf e =
  Fmt.pf ppf "%04d [%s] %a" e.ts e.region pp_payload e.payload

let to_log events =
  let b = Buffer.create 4096 in
  let depth = ref 0 in
  List.iter
    (fun (e : event) ->
      (match e.payload with Span_end _ -> decr depth | _ -> ());
      if !depth < 0 then depth := 0;
      Buffer.add_string b
        (Fmt.str "%04d [%s] %s%a" e.ts e.region
           (String.concat "" (List.init !depth (fun _ -> "  ")))
           pp_payload e.payload);
      Buffer.add_char b '\n';
      match e.payload with Span_begin _ -> incr depth | _ -> ())
    events;
  Buffer.contents b

(* ---- Chrome trace-event export ------------------------------------ *)

module Json = Lslp_util.Json

let json_of_levels levels =
  Json.Arr
    (List.map
       (fun (level, scores) ->
         Json.Obj
           [
             ("level", Json.Int level);
             ("scores", Json.Arr (List.map (fun s -> Json.Int s) scores));
           ])
       levels)

let payload_args = function
  | Span_begin _ | Span_end _ -> []
  | Seeds_found { seeds } ->
    [
      ("count", Json.Int (List.length seeds));
      ( "seeds",
        Json.Arr
          (List.map
             (fun (desc, lanes) ->
               Json.Obj
                 [ ("seed", Json.Str desc); ("lanes", Json.Int lanes) ])
             seeds) );
    ]
  | Seed_tried { seed; lanes } ->
    [ ("seed", Json.Str seed); ("lanes", Json.Int lanes) ]
  | Graph_start { gid; seed } ->
    [ ("gid", Json.Int gid); ("seed", Json.Str seed) ]
  | Graph_node { gid; nid; kind; bundles } ->
    [
      ("gid", Json.Int gid);
      ("nid", Json.Int nid);
      ("kind", Json.Str (kind_name kind));
      ( "bundles",
        Json.Arr
          (List.map
             (fun lanes ->
               Json.Arr (List.map (fun v -> Json.Str v) lanes))
             bundles) );
    ]
  | Graph_edge { gid; parent; child; slot } ->
    [
      ("gid", Json.Int gid);
      ("parent", Json.Int parent);
      ("child", Json.Int child);
      ("slot", Json.Int slot);
    ]
  | Dep_edge { gid; src; dst } ->
    [ ("gid", Json.Int gid); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Slot_modes { modes } ->
    [ ("modes", Json.Arr (List.map (fun m -> Json.Str m) modes)) ]
  | Get_best { mode; last; candidates; levels; chosen; cache_hits;
               cache_misses } ->
    [
      ("mode", Json.Str mode);
      ("last", Json.Str last);
      ("candidates", Json.Arr (List.map (fun c -> Json.Str c) candidates));
      ("levels", json_of_levels levels);
      ( "chosen",
        match chosen with Some c -> Json.Str c | None -> Json.Null );
      ("cache_hits", Json.Int cache_hits);
      ("cache_misses", Json.Int cache_misses);
    ]
  | Cost_computed { seed; nodes; total; threshold; accepted } ->
    [
      ("seed", Json.Str seed);
      ("nodes", Json.Int nodes);
      ("total", Json.Int total);
      ("threshold", Json.Int threshold);
      ("accepted", Json.Bool accepted);
    ]
  | Emit { instr; lanes } ->
    [ ("instr", Json.Str instr); ("lanes", Json.Int lanes) ]
  | Rollback { pass; error; budget_exhausted } ->
    [
      ("pass", Json.Str pass);
      ("error", Json.Str error);
      ("budget_exhausted", Json.Bool budget_exhausted);
    ]
  | Region_outcome { seed; lanes; outcome; cost } ->
    [
      ("seed", Json.Str seed);
      ("lanes", Json.Int lanes);
      ("outcome", Json.Str outcome);
      ("cost", match cost with Some c -> Json.Int c | None -> Json.Null);
    ]
  | Pool_event { what; job; detail } ->
    [
      ("what", Json.Str what);
      ("job", Json.Str job);
      ("detail", Json.Str detail);
    ]

(* Region labels map to thread ids so Perfetto renders one lane per
   region, with pass spans nested inside it. *)
let to_chrome ?(meta = []) events =
  let tids : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let tid_order = ref [] in
  let tid_of region =
    match Hashtbl.find_opt tids region with
    | Some tid -> tid
    | None ->
      let tid = Hashtbl.length tids + 1 in
      Hashtbl.replace tids region tid;
      tid_order := (region, tid) :: !tid_order;
      tid
  in
  let trace_events =
    List.map
      (fun (e : event) ->
        let tid = tid_of e.region in
        let common =
          [
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("ts", Json.Int e.ts);
          ]
        in
        let wall =
          match e.wall with
          | Some w -> [ ("wall_s", Json.Float w) ]
          | None -> []
        in
        match e.payload with
        | Span_begin { pass } ->
          Json.Obj
            ([ ("name", Json.Str pass); ("cat", Json.Str "pass");
               ("ph", Json.Str "B") ]
            @ common
            @ match wall with [] -> [] | w -> [ ("args", Json.Obj w) ])
        | Span_end { pass } ->
          Json.Obj
            ([ ("name", Json.Str pass); ("cat", Json.Str "pass");
               ("ph", Json.Str "E") ]
            @ common
            @ match wall with [] -> [] | w -> [ ("args", Json.Obj w) ])
        | p ->
          Json.Obj
            ([ ("name", Json.Str (payload_name p));
               ("cat", Json.Str "decision"); ("ph", Json.Str "i");
               ("s", Json.Str "t") ]
            @ common
            @ [ ("args", Json.Obj (payload_args p @ wall)) ]))
      events
  in
  let thread_names =
    List.rev_map
      (fun (region, tid) ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.Str region) ]);
          ])
      !tid_order
  in
  let process_name =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str "lslp") ]);
      ]
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr ((process_name :: thread_names) @ trace_events) );
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) meta) );
    ]

let chrome_string ?meta events = Json.to_string (to_chrome ?meta events)

(* ---- Graphviz DOT export ------------------------------------------ *)

let lane_palette =
  [| "#bfdbfe"; "#bbf7d0"; "#fde68a"; "#fbcfe8"; "#ddd6fe"; "#a7f3d0";
     "#fecaca"; "#e0f2fe" |]

let lane_color lane = lane_palette.(lane mod Array.length lane_palette)

let html_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dot_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One record-style node: a header row plus one color-coded cell per lane. *)
let emit_table b ~id ~header ~header_color lanes =
  Buffer.add_string b
    (Fmt.str
       "      %s [shape=plain, label=<<TABLE BORDER=\"0\" CELLBORDER=\"1\" \
        CELLSPACING=\"0\"><TR><TD COLSPAN=\"%d\" BGCOLOR=\"%s\"><B>%s</B>\
        </TD></TR><TR>"
       id
       (max 1 (List.length lanes))
       header_color (html_escape header));
  List.iteri
    (fun lane v ->
      Buffer.add_string b
        (Fmt.str "<TD BGCOLOR=\"%s\">%s</TD>" (lane_color lane)
           (html_escape v)))
    lanes;
  if lanes = [] then Buffer.add_string b "<TD></TD>";
  Buffer.add_string b "</TR></TABLE>>];\n"

type dot_graph = {
  dg_seed : string;
  mutable dg_nodes :
    (int * node_kind * string list list) list;  (* reversed *)
  mutable dg_edges : (int * int * int) list;    (* parent, child, slot *)
  mutable dg_deps : (int * int) list;           (* src, dst *)
}

let to_dot events =
  (* regroup the flat stream by region, then by graph id *)
  let regions : (string * (int * dot_graph) list ref) list ref = ref [] in
  let graphs : (int, dot_graph) Hashtbl.t = Hashtbl.create 8 in
  let region_graphs region =
    match List.assoc_opt region !regions with
    | Some r -> r
    | None ->
      let r = ref [] in
      regions := !regions @ [ (region, r) ];
      r
  in
  List.iter
    (fun (e : event) ->
      match e.payload with
      | Graph_start { gid; seed } ->
        let dg =
          { dg_seed = seed; dg_nodes = []; dg_edges = []; dg_deps = [] }
        in
        Hashtbl.replace graphs gid dg;
        let r = region_graphs e.region in
        r := !r @ [ (gid, dg) ]
      | Graph_node { gid; nid; kind; bundles } ->
        Option.iter
          (fun dg -> dg.dg_nodes <- (nid, kind, bundles) :: dg.dg_nodes)
          (Hashtbl.find_opt graphs gid)
      | Graph_edge { gid; parent; child; slot } ->
        Option.iter
          (fun dg -> dg.dg_edges <- (parent, child, slot) :: dg.dg_edges)
          (Hashtbl.find_opt graphs gid)
      | Dep_edge { gid; src; dst } ->
        Option.iter
          (fun dg -> dg.dg_deps <- (src, dst) :: dg.dg_deps)
          (Hashtbl.find_opt graphs gid)
      | _ -> ())
    events;
  let b = Buffer.create 8192 in
  Buffer.add_string b "digraph lslp {\n";
  Buffer.add_string b "  compound=true;\n";
  Buffer.add_string b "  rankdir=TB;\n";
  Buffer.add_string b
    "  node [fontname=\"Helvetica\", fontsize=10];\n\
    \  edge [fontname=\"Helvetica\", fontsize=9];\n";
  let region_idx = ref 0 in
  List.iter
    (fun (region, graphs_ref) ->
      Buffer.add_string b
        (Fmt.str "  subgraph cluster_region_%d {\n    label=\"region %s\";\n\
                  \    style=bold;\n"
           !region_idx (dot_escape region));
      incr region_idx;
      List.iter
        (fun (gid, dg) ->
          Buffer.add_string b
            (Fmt.str
               "    subgraph cluster_g%d {\n      label=\"seed %s\";\n\
                \      style=dotted;\n"
               gid (dot_escape dg.dg_seed));
          let multi_nids = ref [] in
          List.iter
            (fun (nid, kind, bundles) ->
              match kind with
              | Knode_group op ->
                let lanes =
                  match bundles with lanes :: _ -> lanes | [] -> []
                in
                emit_table b
                  ~id:(Fmt.str "n%d" nid)
                  ~header:(Fmt.str "#%d %s" nid op)
                  ~header_color:"#f3f4f6" lanes
              | Knode_gather ->
                let lanes =
                  match bundles with lanes :: _ -> lanes | [] -> []
                in
                emit_table b
                  ~id:(Fmt.str "n%d" nid)
                  ~header:(Fmt.str "#%d gather" nid)
                  ~header_color:"#fee2e2" lanes
              | Knode_multi op ->
                multi_nids := nid :: !multi_nids;
                Buffer.add_string b
                  (Fmt.str
                     "      subgraph cluster_n%d {\n\
                      \        label=\"multi-node #%d %s\";\n\
                      \        style=\"rounded,dashed\";\n"
                     nid nid (dot_escape op));
                List.iteri
                  (fun j lanes ->
                    let id =
                      if j = 0 then Fmt.str "n%d" nid
                      else Fmt.str "n%d_g%d" nid j
                    in
                    emit_table b ~id
                      ~header:(Fmt.str "#%d.%d %s" nid j op)
                      ~header_color:"#fef9c3" lanes)
                  bundles;
                Buffer.add_string b "      }\n")
            (List.rev dg.dg_nodes);
          List.iter
            (fun (parent, child, slot) ->
              let attrs =
                (Fmt.str "label=\"%d\"" slot)
                ::
                (if List.mem child !multi_nids then
                   [ Fmt.str "lhead=\"cluster_n%d\"" child ]
                 else [])
              in
              Buffer.add_string b
                (Fmt.str "      n%d -> n%d [%s];\n" parent child
                   (String.concat ", " attrs)))
            (List.rev dg.dg_edges);
          List.iter
            (fun (src, dst) ->
              Buffer.add_string b
                (Fmt.str
                   "      n%d -> n%d [style=dashed, color=\"gray60\", \
                    constraint=false];\n"
                   src dst))
            (List.rev dg.dg_deps);
          Buffer.add_string b "    }\n")
        !graphs_ref;
      Buffer.add_string b "  }\n")
    !regions;
  Buffer.add_string b "}\n";
  Buffer.contents b
