(** Recursive-descent parser for the kernel language (C-like precedence). *)

exception Error of string * Token.pos

val parse_string : string -> Ast.kernel
(** Parse exactly one kernel.
    @raise Error (or {!Lexer.Error}) with a position on malformed input. *)

val parse_program : string -> Ast.kernel list
(** Parse a sequence of kernels. *)
