(** Lexer for the kernel language. *)

exception Error of string * Token.pos

val tokenize : string -> Token.spanned list
(** Full token stream, ending with [EOF].
    @raise Error on malformed input, with the offending position. *)
