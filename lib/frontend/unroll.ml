(* Region formation: unroll counted loops by the vector factor.

   The (L)SLP algorithm is block-local, so a loop body with one store per
   iteration never exposes a consecutive store run to the seed collector.
   Unrolling by the vector factor VF manufactures exactly the region shape
   the paper's pipeline consumes:

   - the main loop keeps its Loop kind with the step scaled by VF and the
     bound trimmed to a multiple of VF iterations; its body is VF copies of
     the original body with the counter substituted [c -> c + j*step] in
     every address (values are copied with {!Instr.copy}, so any future
     per-instruction metadata rides along);
   - the remaining [trip mod VF] iterations are fully unrolled into a
     straight epilogue block with the counter pinned to its constant value;
   - loops whose whole trip count is <= VF are fully unrolled into straight
     code (constant subscripts can then seed across iterations).

   Only constant-bound loops are transformed; symbolic-bound loops are left
   intact and simply never vectorize.  The pass is purely structural — it
   does not run the verifier or any cleanup, so drivers decide when to
   re-check. *)

open Lslp_ir

(* Copy a loop body with addresses rewritten through [subst_index].
   Operand remapping only needs the body-local table: regions are
   self-contained, so every Ins operand refers to an earlier instruction of
   the same block (already copied). *)
let clone_body ~subst_index (b : Block.t) : Instr.t list =
  let mapping = Hashtbl.create 16 in
  let remap (v : Instr.value) =
    match v with
    | Instr.Ins i ->
      (match Hashtbl.find_opt mapping i.Instr.id with
       | Some i' -> Instr.Ins i'
       | None -> v)
    | Instr.Const _ | Instr.Arg _ -> v
  in
  List.map
    (fun (i : Instr.t) ->
      let i' = Instr.copy i in
      Hashtbl.replace mapping i.Instr.id i';
      Instr.map_operands remap i';
      Instr.map_address_index subst_index i';
      i')
    (Block.to_list b)

let unroll_block ~factor (f : Func.t) (b : Block.t) =
  match Block.loop_info b with
  | None -> false
  | Some li -> (
    match Block.trip_count li with
    | None | Some 0 -> false
    | Some tc ->
      let counter = li.Block.counter in
      let start = li.Block.l_start and step = li.Block.l_step in
      let shift j =
        Affine.subst counter (Affine.add_const (j * step) (Affine.sym counter))
      in
      let pin m = Affine.subst counter (Affine.const (start + (m * step))) in
      if tc <= factor then begin
        (* full unroll: iteration m runs with the counter at start+m*step *)
        let flat = Block.create ~label:(Block.label b ^ ".full") () in
        for m = 0 to tc - 1 do
          Block.append_list flat (clone_body ~subst_index:(pin m) b)
        done;
        Func.replace_block f b [ flat ];
        true
      end
      else begin
        let main_iters = tc - (tc mod factor) in
        let main =
          Block.create
            ~label:(Fmt.str "%s.x%d" (Block.label b) factor)
            ~kind:
              (Block.Loop
                 {
                   li with
                   Block.l_stop = Block.Bound_const (start + (main_iters * step));
                   l_step = step * factor;
                 })
            ()
        in
        for j = 0 to factor - 1 do
          Block.append_list main (clone_body ~subst_index:(shift j) b)
        done;
        let epilogue =
          if tc mod factor = 0 then []
          else begin
            let tail = Block.create ~label:(Block.label b ^ ".tail") () in
            for m = main_iters to tc - 1 do
              Block.append_list tail (clone_body ~subst_index:(pin m) b)
            done;
            [ tail ]
          end
        in
        Func.replace_block f b (main :: epilogue);
        true
      end)

let run ?(factor = 4) (f : Func.t) =
  if factor < 2 then 0
  else
    List.fold_left
      (fun acc b -> if unroll_block ~factor f b then acc + 1 else acc)
      0 (Func.blocks f)
