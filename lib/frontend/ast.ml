(* Abstract syntax of the kernel language.

   A kernel is a function over i64/f64 scalars and arrays: local
   single-assignment declarations, array-element stores, and counted
   [for] loops whose body is again straight-line code.  Builtin calls
   cover the math functions the SPEC kernels need (sqrt, fabs, min/max).
   Every node carries its source position for diagnostics. *)

type ty = Ti64 | Tf64

type param_ty = P_i64 | P_f64 | P_arr of ty

type binop =
  | B_add | B_sub | B_mul | B_div | B_rem
  | B_and | B_or | B_xor
  | B_shl | B_shr

type cmpop = C_lt | C_le | C_gt | C_ge | C_eq | C_ne

type expr = { desc : expr_desc; epos : Token.pos }

and expr_desc =
  | Int_lit of int64
  | Float_lit of float
  | Var of string
  | Load of string * expr            (* array[index] *)
  | Bin of binop * expr * expr
  | Cmp of cmpop * expr * expr       (* a < b — only as an if condition *)
  | Neg of expr
  | Call of string * expr list       (* builtin: sqrt, fabs, min, max... *)

type stmt = { sdesc : stmt_desc; spos : Token.pos }

and stmt_desc =
  | Decl of ty * string * expr       (* ty name = expr; *)
  | Store of string * expr * expr    (* array[index] = expr; *)
  | For of for_loop                  (* for (i64 i = a; i < b; i += s) {..} *)
  | If of if_stmt                    (* if (cond) {..} [else {..}] *)

and if_stmt = {
  i_cond : expr;
  i_then : stmt list;
  i_else : stmt list;                (* empty when there is no else branch *)
}

and for_loop = {
  f_counter : string;
  f_start : expr;
  f_bound : expr;      (* exclusive upper bound *)
  f_step : expr;
  f_body : stmt list;
}

type kernel = {
  kname : string;
  params : (string * param_ty) list;
  body : stmt list;
}

let pp_ty ppf = function
  | Ti64 -> Fmt.string ppf "i64"
  | Tf64 -> Fmt.string ppf "f64"

let binop_symbol = function
  | B_add -> "+" | B_sub -> "-" | B_mul -> "*" | B_div -> "/" | B_rem -> "%"
  | B_and -> "&" | B_or -> "|" | B_xor -> "^"
  | B_shl -> "<<" | B_shr -> ">>"

let cmpop_symbol = function
  | C_lt -> "<" | C_le -> "<=" | C_gt -> ">" | C_ge -> ">="
  | C_eq -> "==" | C_ne -> "!="

(* Builtins and their arities; the lowering maps them to IR opcodes. *)
let builtins = [ ("sqrt", 1); ("fabs", 1); ("fmin", 2); ("fmax", 2);
                 ("min", 2); ("max", 2) ]

let builtin_arity name = List.assoc_opt name builtins
