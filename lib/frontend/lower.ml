(* Lowering: kernel AST -> straight-line IR.

   Responsibilities:
   - type checking (i64 vs f64, operator/operand compatibility);
   - single-assignment locals (each local is just a name for an IR value);
   - affine subscript extraction: array indices must normalize to an affine
     form over the kernel's i64 parameters, which keeps address arithmetic
     out of the use-def graph (the SCEV-style split the vectorizer needs).
     An i64 local whose definition is itself affine can appear in subscripts
     and is substituted symbolically. *)

open Lslp_ir

exception Error of string * Token.pos

let error pos fmt = Fmt.kstr (fun s -> raise (Error (s, pos))) fmt

type local = {
  l_ty : Ast.ty;
  l_value : Instr.value;
  l_affine : Affine.t option;  (* set for i64 locals with affine definitions *)
  l_block : Block.t;           (* region the defining code was emitted in *)
}

type env = {
  builder : Builder.t;
  params : (string * Ast.param_ty) list;
  mutable locals : (string * local) list;
  mutable counters : string list;  (* enclosing loop counters (at most one) *)
  mutable next_loop : int;
  mutable mask : Instr.value option;
      (* set while if-converting a branch: the i1 predicate every memory
         access in the branch must be guarded by *)
}

let lookup_local env name = List.assoc_opt name env.locals

let lookup_param env name = List.assoc_opt name env.params

let is_counter env name = List.mem name env.counters

(* Affine view of an i64 expression, when one exists. *)
let rec affine_of env (e : Ast.expr) : Affine.t option =
  match e.Ast.desc with
  | Ast.Int_lit n -> Some (Affine.const (Int64.to_int n))
  | Ast.Var x ->
    if is_counter env x then Some (Affine.sym x)
    else (
      match lookup_param env x with
      | Some Ast.P_i64 -> Some (Affine.sym x)
      | Some (Ast.P_f64 | Ast.P_arr _) -> None
      | None -> (
        match lookup_local env x with
        | Some { l_affine; _ } -> l_affine
        | None -> None))
  | Ast.Bin (op, a, b) -> (
    match (affine_of env a, affine_of env b) with
    | Some fa, Some fb -> (
      match op with
      | Ast.B_add -> Some (Affine.add fa fb)
      | Ast.B_sub -> Some (Affine.sub fa fb)
      | Ast.B_mul -> Affine.mul fa fb
      | Ast.B_div | Ast.B_rem | Ast.B_and | Ast.B_or | Ast.B_xor
      | Ast.B_shl | Ast.B_shr -> None)
    | (None | Some _), _ -> None)
  | Ast.Neg a -> Option.map Affine.neg (affine_of env a)
  | Ast.Float_lit _ | Ast.Load _ | Ast.Call _ | Ast.Cmp _ -> None

let rec infer_ty env (e : Ast.expr) : Ast.ty =
  match e.Ast.desc with
  | Ast.Int_lit _ -> Ast.Ti64
  | Ast.Float_lit _ -> Ast.Tf64
  | Ast.Var x ->
    if is_counter env x then Ast.Ti64
    else (
      match lookup_param env x with
      | Some Ast.P_i64 -> Ast.Ti64
      | Some Ast.P_f64 -> Ast.Tf64
      | Some (Ast.P_arr _) ->
        error e.Ast.epos "array %s used as a scalar value" x
      | None -> (
        match lookup_local env x with
        | Some l -> l.l_ty
        | None -> error e.Ast.epos "undefined variable %s" x))
  | Ast.Load (arr, _) -> (
    match lookup_param env arr with
    | Some (Ast.P_arr ty) -> ty
    | Some (Ast.P_i64 | Ast.P_f64) ->
      error e.Ast.epos "%s is not an array" arr
    | None -> error e.Ast.epos "undefined array %s" arr)
  | Ast.Bin (op, a, b) ->
    let ta = infer_ty env a and tb = infer_ty env b in
    if ta <> tb then
      error e.Ast.epos "operands of %s have different types (%a vs %a)"
        (Ast.binop_symbol op) Ast.pp_ty ta Ast.pp_ty tb;
    (match op with
     | Ast.B_and | Ast.B_or | Ast.B_xor | Ast.B_shl | Ast.B_shr | Ast.B_rem ->
       if ta <> Ast.Ti64 then
         error e.Ast.epos "%s requires i64 operands" (Ast.binop_symbol op)
     | Ast.B_add | Ast.B_sub | Ast.B_mul | Ast.B_div -> ());
    ta
  | Ast.Neg a -> infer_ty env a
  | Ast.Cmp _ ->
    error e.Ast.epos
      "comparisons can only appear as an `if` condition, not as a value"
  | Ast.Call (name, args) -> (
    match name with
    | "sqrt" | "fabs" | "fmin" | "fmax" ->
      List.iter
        (fun a ->
          if infer_ty env a <> Ast.Tf64 then
            error a.Ast.epos "%s requires f64 argument(s)" name)
        args;
      Ast.Tf64
    | "min" | "max" ->
      let tys = List.map (infer_ty env) args in
      (match tys with
       | [ ta; tb ] when ta = tb -> ta
       | [ _; _ ] -> error e.Ast.epos "%s arguments must have equal types" name
       | _ -> error e.Ast.epos "%s expects 2 arguments" name)
    | _ -> error e.Ast.epos "unknown builtin %s" name)

let cmp_opcode : Ast.cmpop -> Opcode.cmp = function
  | Ast.C_lt -> Opcode.Lt
  | Ast.C_le -> Opcode.Le
  | Ast.C_gt -> Opcode.Gt
  | Ast.C_ge -> Opcode.Ge
  | Ast.C_eq -> Opcode.Eq
  | Ast.C_ne -> Opcode.Ne

let binop_opcode pos (op : Ast.binop) (ty : Ast.ty) : Opcode.binop =
  match (op, ty) with
  | Ast.B_add, Ast.Ti64 -> Opcode.Add
  | Ast.B_add, Ast.Tf64 -> Opcode.Fadd
  | Ast.B_sub, Ast.Ti64 -> Opcode.Sub
  | Ast.B_sub, Ast.Tf64 -> Opcode.Fsub
  | Ast.B_mul, Ast.Ti64 -> Opcode.Mul
  | Ast.B_mul, Ast.Tf64 -> Opcode.Fmul
  | Ast.B_div, Ast.Ti64 -> Opcode.Sdiv
  | Ast.B_div, Ast.Tf64 -> Opcode.Fdiv
  | Ast.B_rem, Ast.Ti64 -> Opcode.Srem
  | Ast.B_and, Ast.Ti64 -> Opcode.And
  | Ast.B_or, Ast.Ti64 -> Opcode.Or
  | Ast.B_xor, Ast.Ti64 -> Opcode.Xor
  | Ast.B_shl, Ast.Ti64 -> Opcode.Shl
  | Ast.B_shr, Ast.Ti64 -> Opcode.Lshr
  | (Ast.B_rem | Ast.B_and | Ast.B_or | Ast.B_xor | Ast.B_shl | Ast.B_shr),
    Ast.Tf64 ->
    error pos "integer operator applied to f64"

let subscript env arr (idx : Ast.expr) =
  (match infer_ty env idx with
   | Ast.Ti64 -> ()
   | Ast.Tf64 -> error idx.Ast.epos "array subscript must be i64");
  match affine_of env idx with
  | Some a -> a
  | None ->
    error idx.Ast.epos
      "subscript of %s is not affine in the kernel's i64 parameters" arr

let rec lower_expr env (e : Ast.expr) : Instr.value =
  match e.Ast.desc with
  | Ast.Int_lit n -> Builder.iconst64 n
  | Ast.Float_lit x -> Builder.fconst x
  | Ast.Var x ->
    if is_counter env x then
      error e.Ast.epos
        "loop counter %s can only appear in array subscripts (and other \
         affine positions)" x
    else (
      match lookup_local env x with
      | Some l ->
        (match l.l_value with
         | Instr.Ins _
           when l.l_block != Builder.current_block env.builder ->
           error e.Ast.epos
             "local %s is defined in a different region (regions are \
              self-contained: recompute it here or pass it through memory)"
             x
         | Instr.Ins _ | Instr.Const _ | Instr.Arg _ -> l.l_value)
      | None -> (
        match lookup_param env x with
        | Some (Ast.P_i64 | Ast.P_f64) -> Builder.arg env.builder x
        | Some (Ast.P_arr _) ->
          error e.Ast.epos "array %s used as a scalar value" x
        | None -> error e.Ast.epos "undefined variable %s" x))
  | Ast.Load (arr, idx) -> (
    let index = subscript env arr idx in
    match env.mask with
    | None -> Builder.load env.builder ~base:arr index
    | Some mask ->
      (* inside an if-converted branch the access must not happen on
         masked-off lanes (the guard may be exactly what keeps it in
         bounds); the passthrough zero feeds lanes whose results are
         discarded by the guarded stores downstream *)
      let passthrough =
        match lookup_param env arr with
        | Some (Ast.P_arr Ast.Ti64) -> Builder.iconst 0
        | Some (Ast.P_arr Ast.Tf64) -> Builder.fconst 0.0
        | Some (Ast.P_i64 | Ast.P_f64) ->
          error e.Ast.epos "%s is not an array" arr
        | None -> error e.Ast.epos "undefined array %s" arr
      in
      Builder.masked_load env.builder ~base:arr index ~mask ~passthrough)
  | Ast.Cmp _ ->
    error e.Ast.epos
      "comparisons can only appear as an `if` condition, not as a value"
  | Ast.Bin (op, a, b) ->
    let ty = infer_ty env e in
    let va = lower_expr env a in
    let vb = lower_expr env b in
    Builder.binop env.builder (binop_opcode e.Ast.epos op ty) va vb
  | Ast.Neg a ->
    let ty = infer_ty env a in
    let va = lower_expr env a in
    let op = match ty with Ast.Ti64 -> Opcode.Neg | Ast.Tf64 -> Opcode.Fneg in
    Builder.unop env.builder op va
  | Ast.Call (name, args) -> (
    let vargs = List.map (lower_expr env) args in
    match (name, vargs, List.map (infer_ty env) args) with
    | "sqrt", [ v ], _ -> Builder.unop env.builder Opcode.Fsqrt v
    | "fabs", [ v ], _ -> Builder.unop env.builder Opcode.Fabs v
    | "fmin", [ a; b ], _ -> Builder.binop env.builder Opcode.Fmin a b
    | "fmax", [ a; b ], _ -> Builder.binop env.builder Opcode.Fmax a b
    | "min", [ a; b ], Ast.Ti64 :: _ -> Builder.binop env.builder Opcode.Smin a b
    | "min", [ a; b ], _ -> Builder.binop env.builder Opcode.Fmin a b
    | "max", [ a; b ], Ast.Ti64 :: _ -> Builder.binop env.builder Opcode.Smax a b
    | "max", [ a; b ], _ -> Builder.binop env.builder Opcode.Fmax a b
    | _ -> error e.Ast.epos "unknown builtin %s" name)

(* Loop start/step must be integer literals (after constant folding); the
   bound may additionally be a single i64 parameter. *)
let loop_const env what (e : Ast.expr) =
  match Option.bind (affine_of env e) Affine.to_const with
  | Some c -> c
  | None ->
    error e.Ast.epos "loop %s must be an integer constant" what

let loop_bound env (e : Ast.expr) =
  match affine_of env e with
  | Some a -> (
    match Affine.to_const a with
    | Some c -> Block.Bound_const c
    | None -> (
      match Affine.symbols a with
      | [ s ] when Affine.equal a (Affine.sym s)
                   && lookup_param env s = Some Ast.P_i64 ->
        Block.Bound_sym s
      | _ ->
        error e.Ast.epos
          "loop bound must be an integer constant or a single i64 parameter"))
  | None ->
    error e.Ast.epos
      "loop bound must be an integer constant or a single i64 parameter"

let rec lower_stmt env (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Decl (ty, name, e) ->
    if Option.is_some (lookup_local env name) then
      error s.Ast.spos "local %s is already defined (locals are \
                        single-assignment)" name;
    if Option.is_some (lookup_param env name) then
      error s.Ast.spos "local %s shadows a parameter" name;
    if is_counter env name then
      error s.Ast.spos "local %s shadows the loop counter" name;
    let ety = infer_ty env e in
    if ety <> ty then
      error s.Ast.spos "local %s declared %a but initialized with %a" name
        Ast.pp_ty ty Ast.pp_ty ety;
    let l_affine =
      match ty with Ast.Ti64 -> affine_of env e | Ast.Tf64 -> None
    in
    let l_value = lower_expr env e in
    env.locals <-
      (name,
       { l_ty = ty; l_value; l_affine;
         l_block = Builder.current_block env.builder })
      :: env.locals
  | Ast.Store (arr, idx, e) -> (
    match lookup_param env arr with
    | Some (Ast.P_arr elt_ty) ->
      let ety = infer_ty env e in
      if ety <> elt_ty then
        error s.Ast.spos "storing %a into %a array %s" Ast.pp_ty ety
          Ast.pp_ty elt_ty arr;
      let index = subscript env arr idx in
      let v = lower_expr env e in
      (match env.mask with
       | None -> Builder.store env.builder ~base:arr index v
       | Some mask -> Builder.masked_store env.builder ~base:arr index v ~mask)
    | Some (Ast.P_i64 | Ast.P_f64) ->
      error s.Ast.spos "%s is not an array" arr
    | None -> error s.Ast.spos "undefined array %s" arr)
  | Ast.For fl ->
    if env.counters <> [] then
      error s.Ast.spos "nested loops are not supported";
    if env.mask <> None then
      error s.Ast.spos
        "loops cannot appear inside `if` (if-converted regions are \
         straight-line)";
    let counter = fl.Ast.f_counter in
    if Option.is_some (lookup_param env counter) then
      error s.Ast.spos "loop counter %s shadows a parameter" counter;
    if Option.is_some (lookup_local env counter) then
      error s.Ast.spos "loop counter %s shadows a local" counter;
    let l_start = loop_const env "start" fl.Ast.f_start in
    let l_step = loop_const env "step" fl.Ast.f_step in
    if l_step < 1 then
      error s.Ast.spos "loop step must be positive, got %d" l_step;
    let l_stop = loop_bound env fl.Ast.f_bound in
    let label = Fmt.str "loop%d" env.next_loop in
    env.next_loop <- env.next_loop + 1;
    ignore
      (Builder.start_block env.builder ~label
         ~kind:(Block.Loop { Block.counter; l_start; l_stop; l_step })
         ());
    (* body locals are scoped to the loop *)
    let saved_locals = env.locals in
    env.counters <- counter :: env.counters;
    List.iter (lower_stmt env) fl.Ast.f_body;
    env.counters <- List.tl env.counters;
    env.locals <- saved_locals;
    (* code after the loop falls through into a fresh straight block *)
    ignore (Builder.start_block env.builder ())
  | Ast.If ifs ->
    (* If-conversion: both branches flatten into the current straight-line
       block, every memory access guarded by an i1 mask.  The condition is
       evaluated exactly once; the else branch runs under the negated
       predicate applied to the same operand values (sound under the no-NaN
       fast-math contract — see Opcode.negate_cmp). *)
    let op, va, vb =
      match ifs.Ast.i_cond.Ast.desc with
      | Ast.Cmp (op, a, b) ->
        let ta = infer_ty env a and tb = infer_ty env b in
        if ta <> tb then
          error ifs.Ast.i_cond.Ast.epos
            "comparison operands have different types (%a vs %a)" Ast.pp_ty
            ta Ast.pp_ty tb;
        let va = lower_expr env a in
        let vb = lower_expr env b in
        (cmp_opcode op, va, vb)
      | _ ->
        error ifs.Ast.i_cond.Ast.epos "if condition must be a comparison"
    in
    (* nested ifs compose: the branch predicate is ANDed with the enclosing
       mask, so only lanes live in *both* regions execute the branch *)
    let combine m =
      match env.mask with
      | None -> m
      | Some outer -> Builder.binop env.builder ~name:"mand" Opcode.And outer m
    in
    let outer_locals = env.locals in
    let outer_mask = env.mask in
    let then_mask = combine (Builder.cmp env.builder op va vb) in
    env.mask <- Some then_mask;
    List.iter (lower_stmt env) ifs.Ast.i_then;
    let then_locals = env.locals in
    env.locals <- outer_locals;
    env.mask <- outer_mask;
    let else_locals =
      if ifs.Ast.i_else = [] then outer_locals
      else begin
        let else_mask =
          combine (Builder.cmp env.builder (Opcode.negate_cmp op) va vb)
        in
        env.mask <- Some else_mask;
        List.iter (lower_stmt env) ifs.Ast.i_else;
        let l = env.locals in
        env.locals <- outer_locals;
        env.mask <- outer_mask;
        l
      end
    in
    (* Join: a local declared in BOTH branches keeps its name after the if,
       merged lane-wise with a select on the then-mask.  Branch-only locals
       go out of scope with their branch (their value is undefined on the
       other path). *)
    let branch_fresh locs =
      (* entries the branch consed onto the shared outer tail, oldest first *)
      let rec strip l =
        if l == outer_locals then []
        else match l with [] -> [] | x :: tl -> x :: strip tl
      in
      List.rev (strip locs)
    in
    let else_fresh = branch_fresh else_locals in
    List.iter
      (fun (name, tl) ->
        match List.assoc_opt name else_fresh with
        | Some el when el.l_ty = tl.l_ty ->
          let merged =
            Builder.select env.builder ~name:(name ^ "_m") then_mask
              tl.l_value el.l_value
          in
          env.locals <-
            (name,
             { l_ty = tl.l_ty; l_value = merged; l_affine = None;
               l_block = Builder.current_block env.builder })
            :: env.locals
        | Some _ ->
          error s.Ast.spos
            "local %s is declared with different types in the two branches"
            name
        | None -> ())
      (branch_fresh then_locals)

let arg_ty_of_param = function
  | Ast.P_i64 -> Instr.Int_arg
  | Ast.P_f64 -> Instr.Float_arg
  | Ast.P_arr Ast.Ti64 -> Instr.Array_arg Types.I64
  | Ast.P_arr Ast.Tf64 -> Instr.Array_arg Types.F64

let lower_kernel (k : Ast.kernel) : Func.t =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        raise (Error (Fmt.str "duplicate parameter %s" name,
                      { Token.line = 0; col = 0 }));
      Hashtbl.replace seen name ())
    k.Ast.params;
  let builder =
    Builder.create ~name:k.Ast.kname
      ~args:(List.map (fun (n, p) -> (n, arg_ty_of_param p)) k.Ast.params)
  in
  let env =
    { builder; params = k.Ast.params; locals = []; counters = [];
      next_loop = 0; mask = None }
  in
  List.iter (lower_stmt env) k.Ast.body;
  let f = Builder.func builder in
  (* drop the empty straight blocks loop lowering leaves around (e.g. an
     entry block when the kernel starts with a loop), keeping at least one *)
  let nonempty =
    List.filter
      (fun b -> Block.length b > 0 || Block.is_loop b)
      (Func.blocks f)
  in
  (match nonempty with
   | [] -> ()
   | bs -> f.Func.blocks <- bs);
  (* run the early-CSE a clang-like pipeline would have run before SLP *)
  ignore (Cse.run f);
  Verifier.verify_exn f;
  f

let compile_string src = lower_kernel (Parser.parse_string src)

let compile_program src = List.map lower_kernel (Parser.parse_program src)
