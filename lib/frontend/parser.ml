(* Recursive-descent parser for the kernel language.

   Expression grammar with C-like precedence, lowest to highest:

     cond:    bitor ('<'|'<='|'>'|'>='|'=='|'!=') bitor
              (comparisons appear only as `if` conditions; they are not
               general expressions, so there is no chained `a < b < c`)
     bitor:   bitxor ('|' bitxor)*
     bitxor:  bitand ('^' bitand)*
     bitand:  shift ('&' shift)*
     shift:   additive (('<<'|'>>') additive)*
     additive: term (('+'|'-') term)*
     term:    unary (('*'|'/'|'%') unary)*
     unary:   '-' unary | primary
     primary: literal | ident | ident '[' expr ']' | ident '(' args ')'
            | '(' expr ')'
*)

exception Error of string * Token.pos

let error pos fmt = Fmt.kstr (fun s -> raise (Error (s, pos))) fmt

type state = { mutable toks : Token.spanned list }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> { Token.tok = Token.EOF; pos = { line = 0; col = 0 } }

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let expect st tok what =
  let t = peek st in
  if t.Token.tok = tok then advance st
  else
    error t.Token.pos "expected %s but found `%s`" what
      (Token.to_string t.Token.tok)

let expect_ident st what =
  let t = peek st in
  match t.Token.tok with
  | Token.IDENT s ->
    advance st;
    (s, t.Token.pos)
  | other ->
    error t.Token.pos "expected %s but found `%s`" what (Token.to_string other)

let rec parse_expr st = parse_bitor st

(* `if` conditions only: a single non-associative comparison. *)
and parse_cond st =
  let lhs = parse_bitor st in
  let t = peek st in
  let op =
    match t.Token.tok with
    | Token.LT -> Some Ast.C_lt
    | Token.LE -> Some Ast.C_le
    | Token.GT -> Some Ast.C_gt
    | Token.GE -> Some Ast.C_ge
    | Token.EQEQ -> Some Ast.C_eq
    | Token.NEQ -> Some Ast.C_ne
    | _ -> None
  in
  match op with
  | Some op ->
    advance st;
    let rhs = parse_bitor st in
    { Ast.desc = Ast.Cmp (op, lhs, rhs); epos = lhs.Ast.epos }
  | None ->
    error t.Token.pos
      "an if condition must be a comparison (a < b, a == b, ...), found `%s`"
      (Token.to_string t.Token.tok)

and parse_bitor st =
  let lhs = parse_bitxor st in
  parse_left st lhs [ (Token.PIPE, Ast.B_or) ] parse_bitxor

and parse_bitxor st =
  let lhs = parse_bitand st in
  parse_left st lhs [ (Token.CARET, Ast.B_xor) ] parse_bitand

and parse_bitand st =
  let lhs = parse_shift st in
  parse_left st lhs [ (Token.AMP, Ast.B_and) ] parse_shift

and parse_shift st =
  let lhs = parse_additive st in
  parse_left st lhs
    [ (Token.SHL, Ast.B_shl); (Token.SHR, Ast.B_shr) ]
    parse_additive

and parse_additive st =
  let lhs = parse_term st in
  parse_left st lhs
    [ (Token.PLUS, Ast.B_add); (Token.MINUS, Ast.B_sub) ]
    parse_term

and parse_term st =
  let lhs = parse_unary st in
  parse_left st lhs
    [ (Token.STAR, Ast.B_mul); (Token.SLASH, Ast.B_div);
      (Token.PERCENT, Ast.B_rem) ]
    parse_unary

and parse_left st lhs table next =
  let t = peek st in
  match List.assoc_opt t.Token.tok table with
  | Some op ->
    advance st;
    let rhs = next st in
    parse_left st
      { Ast.desc = Ast.Bin (op, lhs, rhs); epos = lhs.Ast.epos }
      table next
  | None -> lhs

and parse_unary st =
  let t = peek st in
  match t.Token.tok with
  | Token.MINUS ->
    advance st;
    let e = parse_unary st in
    { Ast.desc = Ast.Neg e; epos = t.Token.pos }
  | _ -> parse_primary st

and parse_primary st =
  let t = peek st in
  match t.Token.tok with
  | Token.INT_LIT n ->
    advance st;
    { Ast.desc = Ast.Int_lit n; epos = t.Token.pos }
  | Token.FLOAT_LIT x ->
    advance st;
    { Ast.desc = Ast.Float_lit x; epos = t.Token.pos }
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN "`)`";
    e
  | Token.IDENT name -> (
    advance st;
    match (peek st).Token.tok with
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET "`]`";
      { Ast.desc = Ast.Load (name, idx); epos = t.Token.pos }
    | Token.LPAREN ->
      advance st;
      let rec args acc =
        if (peek st).Token.tok = Token.RPAREN then List.rev acc
        else
          let a = parse_expr st in
          if (peek st).Token.tok = Token.COMMA then begin
            advance st;
            args (a :: acc)
          end
          else List.rev (a :: acc)
      in
      let actual = args [] in
      expect st Token.RPAREN "`)`";
      (match Ast.builtin_arity name with
       | None -> error t.Token.pos "unknown builtin function %s" name
       | Some n when n <> List.length actual ->
         error t.Token.pos "%s expects %d argument(s), got %d" name n
           (List.length actual)
       | Some _ ->
         { Ast.desc = Ast.Call (name, actual); epos = t.Token.pos })
    | _ -> { Ast.desc = Ast.Var name; epos = t.Token.pos })
  | other ->
    error t.Token.pos "expected an expression, found `%s`"
      (Token.to_string other)

let parse_param st =
  let t = peek st in
  let ty =
    match t.Token.tok with
    | Token.TY_I64 -> Ast.Ti64
    | Token.TY_F64 -> Ast.Tf64
    | other ->
      error t.Token.pos "expected parameter type, found `%s`"
        (Token.to_string other)
  in
  advance st;
  let name, _ = expect_ident st "parameter name" in
  if (peek st).Token.tok = Token.LBRACKET then begin
    advance st;
    expect st Token.RBRACKET "`]` of array parameter";
    (name, Ast.P_arr ty)
  end
  else
    (name, match ty with Ast.Ti64 -> Ast.P_i64 | Ast.Tf64 -> Ast.P_f64)

let rec parse_stmt st =
  let t = peek st in
  match t.Token.tok with
  | Token.FOR ->
    advance st;
    expect st Token.LPAREN "`(` after `for`";
    (* the counter declaration: an optional `i64` then the counter name *)
    if (peek st).Token.tok = Token.TY_I64 then advance st;
    let counter, _ = expect_ident st "loop counter name" in
    expect st Token.ASSIGN "`=` in loop initialization";
    let start = parse_expr st in
    expect st Token.SEMI "`;` after loop initialization";
    let c2, c2pos = expect_ident st "loop counter in condition" in
    if not (String.equal c2 counter) then
      error c2pos "loop condition tests `%s` but the counter is `%s`" c2
        counter;
    expect st Token.LT "`<` (loops are counted: counter < bound)";
    let bound = parse_expr st in
    expect st Token.SEMI "`;` after loop condition";
    let c3, c3pos = expect_ident st "loop counter in increment" in
    if not (String.equal c3 counter) then
      error c3pos "loop increment updates `%s` but the counter is `%s`" c3
        counter;
    expect st Token.PLUSEQ "`+=` (loops are counted: counter += step)";
    let step = parse_expr st in
    expect st Token.RPAREN "`)` closing the loop header";
    expect st Token.LBRACE "`{` opening the loop body";
    let body = parse_stmts st in
    expect st Token.RBRACE "`}` closing the loop body";
    {
      Ast.sdesc =
        Ast.For
          {
            Ast.f_counter = counter;
            f_start = start;
            f_bound = bound;
            f_step = step;
            f_body = body;
          };
      spos = t.Token.pos;
    }
  | Token.IF ->
    advance st;
    expect st Token.LPAREN "`(` after `if`";
    let cond = parse_cond st in
    expect st Token.RPAREN "`)` closing the if condition";
    expect st Token.LBRACE "`{` opening the then branch";
    let then_stmts = parse_stmts st in
    expect st Token.RBRACE "`}` closing the then branch";
    let else_stmts =
      if (peek st).Token.tok = Token.ELSE then begin
        advance st;
        expect st Token.LBRACE "`{` opening the else branch";
        let ss = parse_stmts st in
        expect st Token.RBRACE "`}` closing the else branch";
        ss
      end
      else []
    in
    {
      Ast.sdesc =
        Ast.If { Ast.i_cond = cond; i_then = then_stmts; i_else = else_stmts };
      spos = t.Token.pos;
    }
  | Token.TY_I64 | Token.TY_F64 ->
    let ty = if t.Token.tok = Token.TY_I64 then Ast.Ti64 else Ast.Tf64 in
    advance st;
    let name, _ = expect_ident st "local variable name" in
    expect st Token.ASSIGN "`=`";
    let e = parse_expr st in
    expect st Token.SEMI "`;`";
    { Ast.sdesc = Ast.Decl (ty, name, e); spos = t.Token.pos }
  | Token.IDENT name ->
    advance st;
    expect st Token.LBRACKET "`[` (statements are declarations or stores)";
    let idx = parse_expr st in
    expect st Token.RBRACKET "`]`";
    expect st Token.ASSIGN "`=`";
    let e = parse_expr st in
    expect st Token.SEMI "`;`";
    { Ast.sdesc = Ast.Store (name, idx, e); spos = t.Token.pos }
  | other ->
    error t.Token.pos "expected a statement, found `%s`"
      (Token.to_string other)

and parse_stmts st =
  let rec loop acc =
    if (peek st).Token.tok = Token.RBRACE then List.rev acc
    else loop (parse_stmt st :: acc)
  in
  loop []

let parse_kernel st =
  expect st Token.KERNEL "`kernel`";
  let kname, _ = expect_ident st "kernel name" in
  expect st Token.LPAREN "`(`";
  let rec params acc =
    if (peek st).Token.tok = Token.RPAREN then List.rev acc
    else
      let p = parse_param st in
      if (peek st).Token.tok = Token.COMMA then begin
        advance st;
        params (p :: acc)
      end
      else List.rev (p :: acc)
  in
  let params = params [] in
  expect st Token.RPAREN "`)`";
  expect st Token.LBRACE "`{`";
  let body = parse_stmts st in
  expect st Token.RBRACE "`}`";
  { Ast.kname; params; body }

let parse_string src =
  let st = { toks = Lexer.tokenize src } in
  let k = parse_kernel st in
  (match (peek st).Token.tok with
   | Token.EOF -> ()
   | other ->
     error (peek st).Token.pos "trailing input after kernel: `%s`"
       (Token.to_string other));
  k

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let rec loop acc =
    match (peek st).Token.tok with
    | Token.EOF -> List.rev acc
    | _ -> loop (parse_kernel st :: acc)
  in
  loop []
