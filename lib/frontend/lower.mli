(** Lowering from the kernel AST to straight-line IR.

    Performs type checking, enforces single-assignment locals, and extracts
    affine subscripts (array indices must be affine in the kernel's i64
    parameters; affine i64 locals are substituted symbolically). *)

open Lslp_ir

exception Error of string * Token.pos

val lower_kernel : Ast.kernel -> Func.t
(** @raise Error on type or affinity violations.  The result is verified. *)

val compile_string : string -> Func.t
(** Parse + lower one kernel. *)

val compile_program : string -> Func.t list
(** Parse + lower a sequence of kernels. *)
