(* Tokens of the kernel language. *)

type pos = { line : int; col : int }

type t =
  | KERNEL
  | FOR
  | IF
  | ELSE
  | TY_I64
  | TY_F64
  | IDENT of string
  | INT_LIT of int64
  | FLOAT_LIT of float
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | LBRACE | RBRACE
  | COMMA | SEMI
  | ASSIGN                      (* = *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET
  | SHL | SHR                   (* << >> *)
  | LT | LE | GT | GE           (* < <= > >= *)
  | EQEQ | NEQ                  (* == != *)
  | PLUSEQ                      (* += *)
  | EOF

type spanned = { tok : t; pos : pos }

let to_string = function
  | KERNEL -> "kernel"
  | FOR -> "for"
  | IF -> "if"
  | ELSE -> "else"
  | TY_I64 -> "i64"
  | TY_F64 -> "f64"
  | IDENT s -> s
  | INT_LIT n -> Int64.to_string n
  | FLOAT_LIT x -> string_of_float x
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | LBRACE -> "{" | RBRACE -> "}"
  | COMMA -> "," | SEMI -> ";"
  | ASSIGN -> "="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^"
  | SHL -> "<<" | SHR -> ">>"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | EQEQ -> "==" | NEQ -> "!="
  | PLUSEQ -> "+="
  | EOF -> "<eof>"

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col
