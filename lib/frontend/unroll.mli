(** Region formation: unroll counted loops by the vector factor so the
    block-local (L)SLP pipeline sees consecutive store runs.

    Constant-bound loops are rewritten in place: a main loop of VF-times
    replicated bodies (counter shifted by [j*step] per copy, step scaled by
    VF) plus a fully-unrolled straight epilogue for the remainder
    iterations; trip counts <= VF are fully unrolled.  Symbolic-bound loops
    are left untouched. *)

open Lslp_ir

val run : ?factor:int -> Func.t -> int
(** [run ~factor f] unrolls every eligible loop block of [f] in place and
    returns how many loops were transformed.  [factor] defaults to 4 (the
    paper's AVX2 f64/i64 vector width); values below 2 disable the pass. *)

val unroll_block : factor:int -> Func.t -> Block.t -> bool
