(* Hand-rolled lexer for the kernel language.

   Supports //-line and block comments, decimal integer literals, float
   literals (which must contain '.', 'e' or 'E' to distinguish them from
   ints), identifiers and the operator/punctuation set of the language. *)

exception Error of string * Token.pos

let error pos fmt = Fmt.kstr (fun s -> raise (Error (s, pos))) fmt

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let make src = { src; off = 0; line = 1; col = 1 }

(* The hot path works on raw chars with ['\000'] as the end-of-input
   sentinel: [peek]'s [Some c] would allocate once per character, and the
   lexer looks at every character several times.  A NUL byte in the source
   is reported as an unexpected character either way (see [next_token]). *)
let sentinel = '\000'

let peekc st =
  if st.off < String.length st.src then String.unsafe_get st.src st.off
  else sentinel

let peek2c st =
  if st.off + 1 < String.length st.src then
    String.unsafe_get st.src (st.off + 1)
  else sentinel

let at_eof st = st.off >= String.length st.src

let advance st =
  (if not (at_eof st) then
     if String.unsafe_get st.src st.off = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 1
     end
     else st.col <- st.col + 1);
  st.off <- st.off + 1

let pos st : Token.pos = { line = st.line; col = st.col }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peekc st with
  | ' ' | '\t' | '\r' | '\n' ->
    advance st;
    skip_trivia st
  | '/' when peek2c st = '/' ->
    while (not (at_eof st)) && peekc st <> '\n' do advance st done;
    skip_trivia st
  | '/' when peek2c st = '*' ->
    let start = pos st in
    advance st;
    advance st;
    let rec loop () =
      if at_eof st then error start "unterminated block comment"
      else if peekc st = '*' && peek2c st = '/' then begin
        advance st;
        advance st
      end
      else begin
        advance st;
        loop ()
      end
    in
    loop ();
    skip_trivia st
  | _ -> ()

let lex_number st =
  let start = pos st in
  let begin_off = st.off in
  while is_digit (peekc st) do
    advance st
  done;
  let is_float = ref false in
  (match peekc st with
   | '.' ->
     is_float := true;
     advance st;
     while is_digit (peekc st) do
       advance st
     done
   | _ -> ());
  (match peekc st with
   | 'e' | 'E' ->
     is_float := true;
     advance st;
     (match peekc st with
      | '+' | '-' -> advance st
      | _ -> ());
     while is_digit (peekc st) do
       advance st
     done
   | _ -> ());
  let text = String.sub st.src begin_off (st.off - begin_off) in
  if !is_float then
    match float_of_string_opt text with
    | Some x -> Token.FLOAT_LIT x
    | None -> error start "malformed float literal %s" text
  else
    match Int64.of_string_opt text with
    | Some n -> Token.INT_LIT n
    | None -> error start "malformed integer literal %s" text

let lex_ident st =
  let begin_off = st.off in
  while is_ident_char (peekc st) do
    advance st
  done;
  match String.sub st.src begin_off (st.off - begin_off) with
  | "kernel" -> Token.KERNEL
  | "for" -> Token.FOR
  | "if" -> Token.IF
  | "else" -> Token.ELSE
  | "i64" -> Token.TY_I64
  | "f64" -> Token.TY_F64
  | s -> Token.IDENT s

let next_token st : Token.spanned =
  skip_trivia st;
  let p = pos st in
  let simple tok = advance st; tok in
  let tok =
    if at_eof st then Token.EOF
    else
      match peekc st with
      | c when is_digit c -> lex_number st
      | c when is_ident_start c -> lex_ident st
      | '(' -> simple Token.LPAREN
      | ')' -> simple Token.RPAREN
      | '[' -> simple Token.LBRACKET
      | ']' -> simple Token.RBRACKET
      | '{' -> simple Token.LBRACE
      | '}' -> simple Token.RBRACE
      | ',' -> simple Token.COMMA
      | ';' -> simple Token.SEMI
      | '=' when peek2c st = '=' ->
        advance st; advance st; Token.EQEQ
      | '=' -> simple Token.ASSIGN
      | '!' when peek2c st = '=' ->
        advance st; advance st; Token.NEQ
      | '+' when peek2c st = '=' ->
        advance st; advance st; Token.PLUSEQ
      | '+' -> simple Token.PLUS
      | '-' -> simple Token.MINUS
      | '*' -> simple Token.STAR
      | '/' -> simple Token.SLASH
      | '%' -> simple Token.PERCENT
      | '&' -> simple Token.AMP
      | '|' -> simple Token.PIPE
      | '^' -> simple Token.CARET
      | '<' when peek2c st = '<' ->
        advance st; advance st; Token.SHL
      | '<' when peek2c st = '=' ->
        advance st; advance st; Token.LE
      | '<' -> simple Token.LT
      | '>' when peek2c st = '>' ->
        advance st; advance st; Token.SHR
      | '>' when peek2c st = '=' ->
        advance st; advance st; Token.GE
      | '>' -> simple Token.GT
      | c -> error p "unexpected character %C" c
  in
  { Token.tok; pos = p }

let tokenize src =
  let st = make src in
  let rec loop acc =
    let t = next_token st in
    match t.Token.tok with
    | Token.EOF -> List.rev (t :: acc)
    | _ -> loop (t :: acc)
  in
  loop []
