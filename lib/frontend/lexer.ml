(* Hand-rolled lexer for the kernel language.

   Supports //-line and block comments, decimal integer literals, float
   literals (which must contain '.', 'e' or 'E' to distinguish them from
   ints), identifiers and the operator/punctuation set of the language. *)

exception Error of string * Token.pos

let error pos fmt = Fmt.kstr (fun s -> raise (Error (s, pos))) fmt

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let make src = { src; off = 0; line = 1; col = 1 }

let peek st = if st.off < String.length st.src then Some st.src.[st.off] else None

let peek2 st =
  if st.off + 1 < String.length st.src then Some st.src.[st.off + 1] else None

let advance st =
  (match peek st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.col <- 1
   | Some _ -> st.col <- st.col + 1
   | None -> ());
  st.off <- st.off + 1

let pos st : Token.pos = { line = st.line; col = st.col }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do advance st done;
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    let start = pos st in
    advance st;
    advance st;
    let rec loop () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        loop ()
      | None, _ -> error start "unterminated block comment"
    in
    loop ();
    skip_trivia st
  | Some _ | None -> ()

let lex_number st =
  let start = pos st in
  let begin_off = st.off in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float = ref false in
  (match peek st with
   | Some '.' ->
     is_float := true;
     advance st;
     while (match peek st with Some c -> is_digit c | None -> false) do
       advance st
     done
   | Some _ | None -> ());
  (match peek st with
   | Some ('e' | 'E') ->
     is_float := true;
     advance st;
     (match peek st with
      | Some ('+' | '-') -> advance st
      | Some _ | None -> ());
     while (match peek st with Some c -> is_digit c | None -> false) do
       advance st
     done
   | Some _ | None -> ());
  let text = String.sub st.src begin_off (st.off - begin_off) in
  if !is_float then
    match float_of_string_opt text with
    | Some x -> Token.FLOAT_LIT x
    | None -> error start "malformed float literal %s" text
  else
    match Int64.of_string_opt text with
    | Some n -> Token.INT_LIT n
    | None -> error start "malformed integer literal %s" text

let lex_ident st =
  let begin_off = st.off in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  match String.sub st.src begin_off (st.off - begin_off) with
  | "kernel" -> Token.KERNEL
  | "for" -> Token.FOR
  | "i64" -> Token.TY_I64
  | "f64" -> Token.TY_F64
  | s -> Token.IDENT s

let next_token st : Token.spanned =
  skip_trivia st;
  let p = pos st in
  let simple tok = advance st; tok in
  let tok =
    match peek st with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number st
    | Some c when is_ident_start c -> lex_ident st
    | Some '(' -> simple Token.LPAREN
    | Some ')' -> simple Token.RPAREN
    | Some '[' -> simple Token.LBRACKET
    | Some ']' -> simple Token.RBRACKET
    | Some '{' -> simple Token.LBRACE
    | Some '}' -> simple Token.RBRACE
    | Some ',' -> simple Token.COMMA
    | Some ';' -> simple Token.SEMI
    | Some '=' -> simple Token.ASSIGN
    | Some '+' when peek2 st = Some '=' ->
      advance st; advance st; Token.PLUSEQ
    | Some '+' -> simple Token.PLUS
    | Some '-' -> simple Token.MINUS
    | Some '*' -> simple Token.STAR
    | Some '/' -> simple Token.SLASH
    | Some '%' -> simple Token.PERCENT
    | Some '&' -> simple Token.AMP
    | Some '|' -> simple Token.PIPE
    | Some '^' -> simple Token.CARET
    | Some '<' when peek2 st = Some '<' ->
      advance st; advance st; Token.SHL
    | Some '<' -> simple Token.LT
    | Some '>' when peek2 st = Some '>' ->
      advance st; advance st; Token.SHR
    | Some c -> error p "unexpected character %C" c
  in
  { Token.tok; pos = p }

let tokenize src =
  let st = make src in
  let rec loop acc =
    let t = next_token st in
    match t.Token.tok with
    | Token.EOF -> List.rev (t :: acc)
    | _ -> loop (t :: acc)
  in
  loop []
