(* Transactional regions.

   The pipeline mutates blocks in place, so "roll back" must undo two kinds
   of damage: the block's instruction order/membership (codegen rebuilds the
   whole list) and in-place operand rewrites on surviving scalar
   instructions ([Instr.map_operands] mutates [kind]).  A snapshot therefore
   saves, per block, the ordered instruction list plus every instruction's
   mutable fields; [restore] writes both back.  Instruction identity is
   preserved across a rollback — the very same [Instr.t] values end up in
   the block — so id-keyed tables (consumed seeds, dependence snapshots,
   provenance) held by the caller stay meaningful.

   [protect] is the commit boundary: run a thunk; on any exception, restore
   the snapshot and return a typed {!failure} naming the pass that was
   executing.  Only [Out_of_memory], [Sys.Break] and the service's
   [Budget.Deadline_expired] (restored first) escape — everything else,
   including [Stack_overflow] and assertion failures, degrades the region
   instead of killing the compile. *)

open Lslp_ir

type saved_instr = { si : Instr.t; s_kind : Instr.kind }

type snapshot = (Block.t * saved_instr list) list

let save_block (b : Block.t) =
  ( b,
    List.map
      (fun (i : Instr.t) -> { si = i; s_kind = i.kind })
      (Block.to_list b) )

let snapshot_block b : snapshot = [ save_block b ]
let snapshot_func (f : Func.t) : snapshot = List.map save_block (Func.blocks f)

let restore (snap : snapshot) =
  List.iter
    (fun (b, saved) ->
      List.iter (fun s -> Instr.set_kind s.si s.s_kind) saved;
      Block.set_order b (List.map (fun s -> s.si) saved))
    snap

type failure = { pass : string; error : string; budget_exhausted : bool }

exception Check_failed of { pass : string; error : string }

let pp_failure ppf f =
  Fmt.pf ppf "%s: %s%s" f.pass f.error
    (if f.budget_exhausted then " [budget]" else "")

let failure_of_exn ~pass (e : exn) =
  match e with
  | Inject.Fault p ->
    { pass = Inject.point_name p; error = "injected fault";
      budget_exhausted = false }
  | Budget.Exhausted what ->
    { pass; error = Fmt.str "budget exhausted: %s" what;
      budget_exhausted = true }
  | Check_failed { pass; error } -> { pass; error; budget_exhausted = false }
  | e -> { pass; error = Printexc.to_string e; budget_exhausted = false }

let protect ~(snapshot : snapshot) ~(pass : unit -> string)
    (f : unit -> 'a) : ('a, failure) result =
  match f () with
  | v -> Ok v
  | exception ((Out_of_memory | Sys.Break) as fatal) -> raise fatal
  | exception (Budget.Deadline_expired _ as cancel) ->
    (* job-level cooperative cancellation (the service's watchdog): roll
       the region back so the function is left scalar-clean, but re-raise —
       a deadline cancels the whole job, it must not degrade to a
       per-region failure and let the compile keep burning steps *)
    restore snapshot;
    raise cancel
  | exception e ->
    restore snapshot;
    Error (failure_of_exn ~pass:(pass ()) e)
