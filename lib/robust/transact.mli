(** Transactional execution of in-place block transformations.

    Snapshot the mutable state of one block (or every block of a function),
    run a transformation under {!protect}, and on any exception the
    snapshot is restored and a typed {!failure} comes back instead.
    Instruction identity survives a rollback: the original [Instr.t] values
    are reinstated, so id-keyed caller state stays valid. *)

open Lslp_ir

type snapshot

val snapshot_block : Block.t -> snapshot
val snapshot_func : Func.t -> snapshot

val restore : snapshot -> unit
(** Idempotent; safe to call on an untouched function. *)

type failure = {
  pass : string;  (** the pass executing when the exception arose *)
  error : string;
  budget_exhausted : bool;  (** the failure was {!Budget.Exhausted} *)
}

val pp_failure : failure Fmt.t

val failure_of_exn : pass:string -> exn -> failure
(** Classify an exception the way {!protect} does: {!Inject.Fault},
    {!Budget.Exhausted} and {!Check_failed} carry their own attribution;
    anything else is stringified under [pass]. *)

exception Check_failed of { pass : string; error : string }
(** Raised by callers to abort a transaction on a *detected* problem (a
    verifier or legality finding) rather than an exceptional one; [protect]
    converts it into a {!failure} carrying the same fields. *)

val protect :
  snapshot:snapshot -> pass:(unit -> string) -> (unit -> 'a) ->
  ('a, failure) result
(** [protect ~snapshot ~pass f] runs [f]; on exception restores [snapshot]
    and returns [Error failure] with [failure.pass] taken from the [pass]
    thunk (callers update a ref as they move between stages) — except for
    {!Inject.Fault}, {!Budget.Exhausted} and {!Check_failed}, which carry
    their own attribution.  [Out_of_memory] and [Sys.Break] are re-raised,
    and so is {!Budget.Deadline_expired} — {e after} restoring the
    snapshot — because a deadline is job-level cancellation, not a region
    failure; everything else, including [Stack_overflow] and
    [Assert_failure], is contained. *)
