(** Seeded, deterministic fault injection at pass boundaries.

    Tests and [lslpc --inject pass:rate:seed] use this to force failures
    inside the pipeline and prove the transactional rollback path end to
    end.  All points except {!Corrupt} raise {!Fault} when they fire;
    [Corrupt] instead scrambles the freshly vectorized block so the
    in-transaction verifier has to detect the damage and trigger the
    rollback itself. *)

open Lslp_ir

type point =
  | Graph_build
  | Reorder
  | Codegen
  | Reduction
  | Cse
  | Dce
  | Verify
  | Corrupt
  | Worker_raise  (** service: the worker crashes as it picks up a job *)
  | Worker_hang
      (** service: the job spins at a pass boundary until the deadline
          watchdog cancels it (see {!Budget.deadline_spin}) *)
  | Cache_poison
      (** service: the cached result is corrupted before the hit-time
          legality re-verification runs *)
  | Queue_full
      (** service: the admission queue pretends to be saturated, forcing
          the shed policy *)

val all_points : point list
(** Every {e pipeline} boundary (what ["all"] parses to); the four
    service-boundary points are deliberately excluded — they are armed via
    {!service_points} / ["service"] and fired by the Domain-pool executor,
    never inside a pipeline transaction. *)

val service_points : point list

val point_name : point -> string
val point_of_name : string -> point option

type t

exception Fault of point

val make : ?points:point list -> ?rate:float -> seed:int -> unit -> t
(** [points] defaults to every boundary, [rate] to 1.0 (always fire). *)

val parse : string -> (t, string) result
(** ["pass[:rate[:seed]]"] with [pass] a point name, ["all"] (every
    pipeline boundary) or ["service"] (every service boundary); rate
    defaults to 1.0, seed to 0. *)

val fired : t -> int
(** How many faults have fired so far (monotone across a run). *)

val reseed : t -> seed:int -> t
(** A fresh injector with the same points and rate but new dice — how the
    fuzzer turns one [--inject] spec into a per-case deterministic
    injector. *)

val fires : t -> point -> bool
(** Roll the seeded dice for one boundary; counts towards {!fired}. *)

val maybe_fail : t option -> point -> unit
(** @raise Fault when the spec covers [point] and the dice fire.  Never
    raises for {!Corrupt} (see {!corrupts}). *)

val corrupts : t option -> bool
(** Whether the post-codegen corruption should be applied now. *)

val corrupt_block : Block.t -> bool
(** Damage the block in a way the structural verifier always detects
    (duplicate instruction identity).  Returns false on an empty block. *)

val pp : t Fmt.t
