(** Seeded, deterministic fault injection at pass boundaries.

    Tests and [lslpc --inject pass:rate:seed] use this to force failures
    inside the pipeline and prove the transactional rollback path end to
    end.  All points except {!Corrupt} raise {!Fault} when they fire;
    [Corrupt] instead scrambles the freshly vectorized block so the
    in-transaction verifier has to detect the damage and trigger the
    rollback itself. *)

open Lslp_ir

type point =
  | Graph_build
  | Reorder
  | Codegen
  | Reduction
  | Cse
  | Dce
  | Verify
  | Corrupt

val all_points : point list
val point_name : point -> string
val point_of_name : string -> point option

type t

exception Fault of point

val make : ?points:point list -> ?rate:float -> seed:int -> unit -> t
(** [points] defaults to every boundary, [rate] to 1.0 (always fire). *)

val parse : string -> (t, string) result
(** ["pass[:rate[:seed]]"] with [pass] a point name or ["all"]; rate
    defaults to 1.0, seed to 0. *)

val fired : t -> int
(** How many faults have fired so far (monotone across a run). *)

val reseed : t -> seed:int -> t
(** A fresh injector with the same points and rate but new dice — how the
    fuzzer turns one [--inject] spec into a per-case deterministic
    injector. *)

val fires : t -> point -> bool
(** Roll the seeded dice for one boundary; counts towards {!fired}. *)

val maybe_fail : t option -> point -> unit
(** @raise Fault when the spec covers [point] and the dice fire.  Never
    raises for {!Corrupt} (see {!corrupts}). *)

val corrupts : t option -> bool
(** Whether the post-codegen corruption should be applied now. *)

val corrupt_block : Block.t -> bool
(** Damage the block in a way the structural verifier always detects
    (duplicate instruction identity).  Returns false on an empty block. *)

val pp : t Fmt.t
