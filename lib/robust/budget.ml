(* Resource budgets.

   A production vectorizer must never hang or blow the stack on adversarial
   input: look-ahead scoring is exponential in the worst case, multi-node
   coarsening can chase arbitrarily long chains, and a buggy seed filter
   could re-offer the same region forever.  A budget caps each of those
   dimensions; a [meter] is the per-region mutable counter set, and checked
   spends raise {!Exhausted} — which the pipeline's transaction layer turns
   into a clean [Budget_exhausted] rollback instead of a hang. *)

type t = {
  lookahead_fuel : int;
  max_graph_nodes : int;
  max_region_steps : int;
}

let unlimited =
  {
    lookahead_fuel = max_int;
    max_graph_nodes = max_int;
    max_region_steps = max_int;
  }

(* Orders of magnitude above anything the catalog or the fuzzer produces:
   tripping a default budget means the input is pathological, not large. *)
let default =
  {
    lookahead_fuel = 200_000;
    max_graph_nodes = 4_096;
    max_region_steps = 1_024;
  }

exception Exhausted of string

type meter = {
  budget : t;
  mutable fuel_used : int;
  mutable nodes_built : int;
  mutable steps_taken : int;
}

let meter budget = { budget; fuel_used = 0; nodes_built = 0; steps_taken = 0 }

let exhaust what limit = raise (Exhausted (Fmt.str "%s cap of %d" what limit))

let spend_fuel m =
  m.fuel_used <- m.fuel_used + 1;
  if m.fuel_used > m.budget.lookahead_fuel then
    exhaust "look-ahead fuel" m.budget.lookahead_fuel

let spend_node m =
  m.nodes_built <- m.nodes_built + 1;
  if m.nodes_built > m.budget.max_graph_nodes then
    exhaust "graph-node" m.budget.max_graph_nodes

let spend_step m =
  m.steps_taken <- m.steps_taken + 1;
  if m.steps_taken > m.budget.max_region_steps then
    exhaust "region-step" m.budget.max_region_steps

let pp ppf t =
  let lim ppf n = if n = max_int then Fmt.string ppf "inf" else Fmt.int ppf n in
  Fmt.pf ppf "fuel=%a nodes=%a steps=%a" lim t.lookahead_fuel lim
    t.max_graph_nodes lim t.max_region_steps

(* Per-job deadlines for the compile service.

   Unlike the per-region caps above — whose [Exhausted] the transaction
   layer *absorbs*, degrading one region — a deadline is the service's
   cooperative cancellation signal for a whole compile job.  It is a step
   counter, not a clock (lint rule R4: no wall-clock in decision paths),
   ticked at the same pass boundaries the fault injector instruments; when
   the budget is gone {!Deadline_expired} is raised and deliberately
   re-raised by {!Transact.protect} and [Pipeline.run] (after restoring
   their snapshots), so it cancels the job instead of degrading a region.
   The pool treats it like any other worker death: tear down, retry up to
   the cap, then record a typed failure. *)

type deadline = { deadline_steps : int; mutable ticks : int }

exception Deadline_expired of { steps : int }

let deadline deadline_steps = { deadline_steps; ticks = 0 }
let deadline_ticks d = d.ticks

let deadline_tick = function
  | None -> ()
  | Some d ->
    d.ticks <- d.ticks + 1;
    if d.ticks > d.deadline_steps then
      raise (Deadline_expired { steps = d.deadline_steps })

(* A simulated hang: spin on the cooperative check until the watchdog
   fires.  This is exactly what a real runaway pass looks like to the
   service — progress only at pass boundaries, termination only via the
   deadline.  Without an armed deadline the hang would be genuine, so we
   report it as an immediate expiry instead of freezing the process. *)
let rec deadline_spin d =
  (match d with
   | None -> raise (Deadline_expired { steps = 0 })
   | Some _ -> ());
  deadline_tick d;
  deadline_spin d
