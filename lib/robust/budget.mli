(** Resource budgets: caps that make pathological inputs bail cleanly
    instead of hanging or overflowing the stack.

    A {!t} is the static limit set carried by the vectorizer configuration;
    a {!meter} is the mutable per-region counter set.  Checked spends raise
    {!Exhausted}, which the pipeline's transaction layer converts into a
    [Budget_exhausted] rollback. *)

type t = {
  lookahead_fuel : int;
      (** total recursive look-ahead score evaluations per region *)
  max_graph_nodes : int;  (** SLP-graph nodes built per region *)
  max_region_steps : int;
      (** seed attempts (graph + codegen cycles) per basic block *)
}

val unlimited : t
val default : t

exception Exhausted of string
(** Carries a description of the cap that tripped, e.g.
    ["look-ahead fuel cap of 200000"]. *)

type meter

val meter : t -> meter
(** A fresh counter set against [t]; create one per region. *)

val spend_fuel : meter -> unit
val spend_node : meter -> unit
val spend_step : meter -> unit

val pp : t Fmt.t

(** {2 Per-job deadlines}

    The compile service's cooperative cancellation signal.  A deadline is
    a step budget, not a clock: it is ticked at the same eight pass
    boundaries the fault injector instruments, and expiry raises
    {!Deadline_expired} — which, unlike {!Exhausted}, the transaction
    layer {e re-raises} (after restoring its snapshot), so it cancels the
    whole job instead of degrading one region.  See DESIGN.md §15 for the
    deadline-vs-fuel contract. *)

type deadline

exception Deadline_expired of { steps : int }

val deadline : int -> deadline
(** A fresh per-job meter allowing that many pass-boundary ticks. *)

val deadline_ticks : deadline -> int

val deadline_tick : deadline option -> unit
(** No-op on [None]; otherwise spend one tick.
    @raise Deadline_expired when the budget is gone. *)

val deadline_spin : deadline option -> 'a
(** Simulate a hung pass: spin on {!deadline_tick} until the watchdog
    fires.  With [None] armed, raises {!Deadline_expired} immediately
    rather than hanging the process for real. *)
