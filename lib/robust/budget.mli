(** Resource budgets: caps that make pathological inputs bail cleanly
    instead of hanging or overflowing the stack.

    A {!t} is the static limit set carried by the vectorizer configuration;
    a {!meter} is the mutable per-region counter set.  Checked spends raise
    {!Exhausted}, which the pipeline's transaction layer converts into a
    [Budget_exhausted] rollback. *)

type t = {
  lookahead_fuel : int;
      (** total recursive look-ahead score evaluations per region *)
  max_graph_nodes : int;  (** SLP-graph nodes built per region *)
  max_region_steps : int;
      (** seed attempts (graph + codegen cycles) per basic block *)
}

val unlimited : t
val default : t

exception Exhausted of string
(** Carries a description of the cap that tripped, e.g.
    ["look-ahead fuel cap of 200000"]. *)

type meter

val meter : t -> meter
(** A fresh counter set against [t]; create one per region. *)

val spend_fuel : meter -> unit
val spend_node : meter -> unit
val spend_step : meter -> unit

val pp : t Fmt.t
