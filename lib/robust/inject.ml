(* Deterministic fault injection.

   The fail-soft guarantees of the pipeline are only as good as their
   tests, and real pass failures are rare by construction — so we make our
   own.  An injection spec names a set of pass boundaries, a firing rate
   and a PRNG seed; the pipeline consults it at every boundary and raises
   {!Fault} when it fires.  The [Corrupt] point is different in kind: it
   does not raise, it scrambles the freshly generated block so that the
   in-transaction verifier (not the exception path) has to trigger the
   rollback, proving the check-then-revert route end to end.

   Everything is seeded and sequential, so a given (spec, input, config)
   triple always fires at exactly the same boundaries. *)

open Lslp_ir

type point =
  | Graph_build
  | Reorder
  | Codegen
  | Reduction
  | Cse
  | Dce
  | Verify
  | Corrupt
  (* service boundaries: fired by the Domain-pool executor (lib/service)
     around whole compile jobs, never inside the pipeline's transactions *)
  | Worker_raise
  | Worker_hang
  | Cache_poison
  | Queue_full

(* "all" keeps meaning every *pipeline* boundary: the fuzzer arms these as
   a set against a single pipeline run, where service points never fire. *)
let all_points =
  [ Graph_build; Reorder; Codegen; Reduction; Cse; Dce; Verify; Corrupt ]

let service_points = [ Worker_raise; Worker_hang; Cache_poison; Queue_full ]

let point_name = function
  | Graph_build -> "graph-build"
  | Reorder -> "reorder"
  | Codegen -> "codegen"
  | Reduction -> "reduction"
  | Cse -> "cse"
  | Dce -> "dce"
  | Verify -> "verify"
  | Corrupt -> "corrupt"
  | Worker_raise -> "worker-raise"
  | Worker_hang -> "worker-hang"
  | Cache_poison -> "cache-poison"
  | Queue_full -> "queue-full"

let point_of_name = function
  | "graph-build" -> Some Graph_build
  | "reorder" -> Some Reorder
  | "codegen" -> Some Codegen
  | "reduction" -> Some Reduction
  | "cse" -> Some Cse
  | "dce" -> Some Dce
  | "verify" -> Some Verify
  | "corrupt" -> Some Corrupt
  | "worker-raise" -> Some Worker_raise
  | "worker-hang" -> Some Worker_hang
  | "cache-poison" -> Some Cache_poison
  | "queue-full" -> Some Queue_full
  | _ -> None

type t = {
  points : point list;
  rate : float;
  seed : int;
  st : Random.State.t;
  mutable fired : int;
}

exception Fault of point

let make ?(points = all_points) ?(rate = 1.0) ~seed () =
  { points; rate; seed; st = Random.State.make [| seed |]; fired = 0 }

let fired t = t.fired

(* Same spec, fresh dice: the fuzzer derives one injector per case from a
   single parsed [--inject] spec. *)
let reseed t ~seed = make ~points:t.points ~rate:t.rate ~seed ()

(* "pass:rate:seed" with pass a point name or "all"; rate and seed optional
   ("codegen", "codegen:0.5" and "codegen:0.5:7" are all valid). *)
let parse spec =
  let parse_points = function
    | "all" -> Ok all_points
    | "service" -> Ok service_points
    | s -> (
      match point_of_name s with
      | Some p -> Ok [ p ]
      | None -> Error (Fmt.str "unknown injection point %S" s))
  in
  let build pass rate seed =
    match parse_points pass with
    | Error _ as e -> e
    | Ok points ->
      if rate < 0.0 || rate > 1.0 then
        Error (Fmt.str "injection rate %g is not in [0, 1]" rate)
      else Ok (make ~points ~rate ~seed ())
  in
  match String.split_on_char ':' spec with
  | [ pass ] -> build pass 1.0 0
  | [ pass; rate ] -> (
    match float_of_string_opt rate with
    | Some r -> build pass r 0
    | None -> Error (Fmt.str "bad injection rate %S" rate))
  | [ pass; rate; seed ] -> (
    match (float_of_string_opt rate, int_of_string_opt seed) with
    | Some r, Some s -> build pass r s
    | None, _ -> Error (Fmt.str "bad injection rate %S" rate)
    | _, None -> Error (Fmt.str "bad injection seed %S" seed))
  | _ -> Error (Fmt.str "bad injection spec %S (want pass[:rate[:seed]])" spec)

let fires t point =
  List.mem point t.points
  && (t.rate >= 1.0 || Random.State.float t.st 1.0 < t.rate)
  &&
  (t.fired <- t.fired + 1;
   true)

(* Raising points only: [Corrupt] never raises, it is queried via
   {!corrupts} after code generation. *)
let maybe_fail inj point =
  match inj with
  | Some t when point <> Corrupt && fires t point -> raise (Fault point)
  | Some _ | None -> ()

let corrupts inj =
  match inj with Some t -> fires t Corrupt | None -> false

(* Duplicate the first instruction at the end of the block: the structural
   verifier unconditionally rejects duplicate instruction identities, so
   this corruption is always caught — by the checker, not by an
   exception. *)
let corrupt_block (b : Block.t) =
  match Block.to_list b with
  | [] -> false
  | first :: _ ->
    Block.set_order b (Block.to_list b @ [ first ]);
    true

let pp ppf t =
  Fmt.pf ppf "%s:%g:%d"
    (if t.points = all_points then "all"
     else if t.points = service_points then "service"
     else String.concat "," (List.map point_name t.points))
    t.rate t.seed
