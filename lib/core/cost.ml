(* Cost evaluation of an SLP graph (paper §2.2 step 4).

   cost(graph) = Σ over vectorizable bundles of (vector_cost - Σ scalar
   costs) + Σ over gather nodes of their aggregation cost + one extract per
   vectorized value that still has scalar (external) users.

   Negative totals mean the vector code is cheaper; code generation proceeds
   iff total < threshold (usually 0). *)

open Lslp_ir

type node_cost = {
  nid : int;
  description : string;
  cost : int;
}

type summary = {
  per_node : node_cost list;
  extract_cost : int;
  total : int;
}

let bundle_cost model (insts : Instr.t array) =
  let lanes = Array.length insts in
  let vector = Lslp_costmodel.Model.vector_group_cost model insts.(0) ~lanes in
  let scalars =
    Array.fold_left
      (fun acc i -> acc + Lslp_costmodel.Model.scalar_instr_cost model i)
      0 insts
  in
  vector - scalars

(* plain concatenation: this runs once per node per evaluation, and
   [Fmt.str] is an order of magnitude slower than [^] here *)
let describe_bundle (insts : Instr.t array) =
  Instr.opclass_name (Instr.opclass insts.(0))
  ^ " x"
  ^ string_of_int (Array.length insts)

let evaluate ?(ignore_users = fun (_ : Instr.t) -> false) ?uses
    (config : Config.t) (graph : Graph.t) (block : Block.t) : summary =
  let model = config.Config.model in
  let per_node = ref [] in
  let note nid description cost =
    per_node := { nid; description; cost } :: !per_node
  in
  List.iter
    (fun (n : Graph.node) ->
      match n.Graph.shape with
      | Graph.Group insts ->
        note n.Graph.nid (describe_bundle insts) (bundle_cost model insts)
      | Graph.Multi m ->
        List.iter
          (fun insts ->
            note n.Graph.nid
              ("multi:" ^ describe_bundle insts)
              (bundle_cost model insts))
          m.Graph.m_groups
      | Graph.Gather vs -> (
        match Graph.shuffle_pattern graph vs with
        | Some _ ->
          (* a pure permutation of one vector value: a single shuffle *)
          note n.Graph.nid
            ("shuffle x" ^ string_of_int (Array.length vs))
            model.Lslp_costmodel.Model.shuffle
        | None ->
          note n.Graph.nid
            ("gather x" ^ string_of_int (Array.length vs))
            (Lslp_costmodel.Model.gather_cost model (Array.to_list vs))))
    (Graph.nodes graph);
  (* extract cost: vectorized values that still need a scalar copy — either
     they have scalar users outside the graph, or they appear inside a
     gather column (code generation materializes those lanes with extracts) *)
  let uses =
    match uses with Some u -> u | None -> Use_info.compute block
  in
  let needs_extract = Lslp_util.Int_table.create 16 in
  List.iter
    (fun (i : Instr.t) ->
      let external_users =
        Use_info.users_outside uses i
          ~inside:(fun u -> Graph.claimed graph u || ignore_users u)
      in
      if external_users <> [] then
        Lslp_util.Int_table.set needs_extract i.id 1)
    (Graph.claimed_insts graph);
  List.iter
    (fun (n : Graph.node) ->
      match n.Graph.shape with
      | Graph.Gather vs when Graph.shuffle_pattern graph vs = None ->
        Array.iter
          (fun v ->
            match v with
            | Instr.Ins i when Graph.claimed graph i ->
              Lslp_util.Int_table.set needs_extract i.Instr.id 1
            | Instr.Ins _ | Instr.Const _ | Instr.Arg _ -> ())
          vs
      | Graph.Gather _ | Graph.Group _ | Graph.Multi _ -> ())
    (Graph.nodes graph);
  let extract_cost =
    Lslp_util.Int_table.length needs_extract
    * model.Lslp_costmodel.Model.extract_element
  in
  let total =
    List.fold_left (fun acc nc -> acc + nc.cost) extract_cost !per_node
  in
  { per_node = List.rev !per_node; extract_cost; total }

let profitable config summary = summary.total < config.Config.threshold

let pp_summary ppf s =
  List.iter
    (fun nc -> Fmt.pf ppf "  node#%d %-14s %+d@." nc.nid nc.description nc.cost)
    s.per_node;
  if s.extract_cost <> 0 then Fmt.pf ppf "  extracts       %+d@." s.extract_cost;
  Fmt.pf ppf "  total          %+d" s.total
