(* Vector code generation (paper §2.2 steps 6-7).

   Replaces each vectorizable bundle with one wide instruction, emits
   gathers (buildvec/splat) for non-vectorizable operand columns and
   extracts for vectorized values that still have scalar users, and removes
   the replaced scalars.

   Scheduling: rather than reasoning about a single insertion point, the
   whole block is rebuilt.  Each graph node (group or whole multi-node) is a
   *unit*; every remaining scalar instruction is a singleton unit; unit
   dependences are induced from the instruction-level dependence graph (data
   + memory).  A stable topological order of the units is a valid schedule
   of the transformed block — and if the contraction is cyclic the bundles
   were not schedulable together, so we abort before mutating anything. *)

open Lslp_ir
open Lslp_analysis

type outcome = Vectorized | Not_schedulable | Failed of string

(* A malformed graph (bad node shapes, dangling references, ill-typed
   columns) is a *caller* bug from codegen's point of view, but one the
   pipeline must survive: emission may already have rewritten scalar
   operands when the problem surfaces, so the error is typed, caught at the
   [run] boundary, and surfaced as [Failed] for the transactional driver to
   roll back.  Genuine internal invariants (states excluded by
   [Bundle.classify] or by unit construction) stay as [invalid_arg]. *)
exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

(* A horizontal reduction being vectorized alongside the graph: the scalar
   chain [red_chain] (root included) is replaced by element-wise combines of
   the W-wide leaf chunks, one [Reduce], and a scalar fold of the leftover
   leaves; every scalar user of [red_root] is rewired to the final value. *)
type reduction = {
  red_op : Opcode.binop;
  red_root : Instr.t;
  red_chain : Instr.t list;
  red_chunks : Graph.node list;
  red_remainder : Instr.value list;
}

let node_members (n : Graph.node) =
  match n.Graph.shape with
  | Graph.Group insts -> Array.to_list insts
  | Graph.Multi m -> List.concat_map Array.to_list m.Graph.m_groups
  | Graph.Gather _ -> []

let element_scalar (i : Instr.t) =
  match Types.scalar_of i.Instr.ty with
  | Some s -> s
  | None -> (
    (* stores are void-typed; take the element from the address *)
    match Instr.address i with
    | Some a -> a.Instr.elt
    | None ->
      error "no element type for bundle member %%%d (%s)" i.Instr.id
        (Instr.opclass_name (Instr.opclass i)))

let run ?reduction ?(record = fun ~lanes:_ ~vector:_ -> ()) ?probe ?trace
    ?deps (graph : Graph.t) (block : Block.t) : outcome =
  (* [deps] shares the dependence graph (and arena snapshot) the caller
     already built for this un-mutated block; built fresh otherwise *)
  let deps =
    match deps with Some d -> d | None -> Depgraph.build block
  in
  let arena = Depgraph.arena deps in
  let n = Arena.size arena in
  (* ---- units ---------------------------------------------------- *)
  let vector_nodes =
    List.filter
      (fun (n : Graph.node) ->
        match n.Graph.shape with
        | Graph.Group _ | Graph.Multi _ -> true
        | Graph.Gather _ -> false)
      (Graph.nodes graph)
  in
  (* compact index -> unit; every block instruction gets exactly one *)
  let unit_of = Array.make (max n 1) (-1) in
  List.iteri
    (fun u node ->
      List.iter
        (fun (i : Instr.t) -> unit_of.(Arena.idx arena i) <- u)
        (node_members node))
    vector_nodes;
  let num_node_units = List.length vector_nodes in
  (* the reduction chain, if any, forms one additional unit *)
  let chain_unit =
    match reduction with
    | Some r ->
      List.iter
        (fun (i : Instr.t) -> unit_of.(Arena.idx arena i) <- num_node_units)
        r.red_chain;
      1
    | None -> 0
  in
  (* surviving scalars become singleton units, in program order *)
  let num_units = ref (num_node_units + chain_unit) in
  for k = 0 to n - 1 do
    if unit_of.(k) < 0 then begin
      unit_of.(k) <- !num_units;
      incr num_units
    end
  done;
  let num_units = !num_units in
  let members = Array.make (max num_units 1) [] in
  let key = Array.make (max num_units 1) max_int in
  for k = 0 to n - 1 do
    let u = unit_of.(k) in
    members.(u) <- Arena.instr arena k :: members.(u);
    if key.(u) = max_int then key.(u) <- k
  done;
  (* ---- unit dependence edges ------------------------------------ *)
  let preds = Array.make (max num_units 1) [] in
  let seen = Bytes.make (max (num_units * num_units) 1) '\000' in
  for i = 0 to n - 1 do
    let u = unit_of.(i) in
    for j = 0 to n - 1 do
      if unit_of.(j) <> u && Depgraph.reaches deps i j then begin
        let v = unit_of.(j) in
        let c = (u * num_units) + v in
        if Bytes.unsafe_get seen c = '\000' then begin
          Bytes.unsafe_set seen c '\001';
          preds.(u) <- v :: preds.(u)
        end
      end
    done
  done;
  (* ---- stable topological order (Kahn, min-key first) ------------ *)
  let emitted = Array.make num_units false in
  let order = ref [] in
  let remaining = ref num_units in
  let progress = ref true in
  while !remaining > 0 && !progress do
    progress := false;
    let best = ref (-1) in
    for u = 0 to num_units - 1 do
      if (not emitted.(u))
         && List.for_all (fun p -> emitted.(p)) preds.(u)
         && (!best = -1 || key.(u) < key.(!best))
      then best := u
    done;
    if !best >= 0 then begin
      emitted.(!best) <- true;
      order := !best :: !order;
      decr remaining;
      progress := true
    end
  done;
  if !remaining > 0 then Not_schedulable
  else begin
    try
    let order = List.rev !order in
    (* ---- emission -------------------------------------------------- *)
    let out = ref [] in
    (* [push] is for freshly materialized instructions (vector ops, gathers,
       extracts) and records an [Emit] trace event; surviving scalars go
       through [repush] below, unrecorded. *)
    let repush i = out := i :: !out in
    let push (i : Instr.t) =
      Option.iter
        (fun tr ->
          let lanes =
            match i.Instr.ty with
            | Types.Vec (_, n) -> n
            | Types.Scalar _ | Types.Void -> (
              match Instr.address i with
              | Some a -> a.Instr.access_lanes
              | None -> 1)
          in
          Lslp_trace.Trace.record tr
            (Lslp_trace.Trace.Emit { instr = Printer.instr_to_string i; lanes }))
        trace;
      repush i
    in
    (* surviving scalars are re-pushed, not materialized; everything else in
       [out] is fresh — the probe's instrs_emitted, charged only on commit *)
    let scalar_repushes = ref 0 in
    (* node slot -> emitted vector value *)
    let vec_vals : Instr.value option array =
      Array.make (max (Graph.node_count graph) 1) None
    in
    (* compact index -> materialized extract / scalar replacement; keys are
       always pre-codegen block instructions, so the arena covers them *)
    let extracts : Instr.value option array = Array.make (max n 1) None in
    let replacements : Instr.value option array = Array.make (max n 1) None in
    let slot_of (i : Instr.t) = Arena.idx arena i in
    let rec subst (v : Instr.value) : Instr.value =
      match v with
      | Instr.Ins i when slot_of i >= 0 && replacements.(slot_of i) <> None
        ->
        Option.get replacements.(slot_of i)
      | Instr.Ins i when Graph.claimed graph i -> (
        match extracts.(slot_of i) with
        | Some e -> e
        | None -> (
          match Graph.lane_of graph i with
          | Some (node, lane) ->
            let vec =
              match vec_vals.(node.Graph.slot) with
              | Some v -> v
              | None ->
                error
                  "extract of lane %d (%%%d) before its defining node #%d \
                   was emitted"
                  lane i.Instr.id node.Graph.nid
            in
            let e =
              Instr.create ~name:"ext" (Instr.Extract (vec, lane))
                (Types.Scalar (element_scalar i))
            in
            push e;
            let ev = Instr.Ins e in
            extracts.(slot_of i) <- Some ev;
            ev
          | None ->
            error "claimed value %%%d escapes its multi-node (no lane)"
              i.Instr.id))
      | Instr.Ins _ | Instr.Const _ | Instr.Arg _ -> v
    and emit_node (n : Graph.node) : Instr.value =
      match vec_vals.(n.Graph.slot) with
      | Some v -> v
      | None ->
        let v =
          match n.Graph.shape with
          | Graph.Gather vs -> (
            match Graph.shuffle_pattern graph vs with
            | Some (src, idx) ->
              (* pure permutation of one vector value: a single shuffle *)
              let src_vec =
                match vec_vals.(src.Graph.slot) with
                | Some v -> v
                | None ->
                  error "shuffle before its source node #%d was emitted"
                    src.Graph.nid
              in
              let elt =
                match Instr.value_ty src_vec with
                | Some (Types.Vec (s, _)) -> s
                | Some _ | None ->
                  error "shuffle source node #%d is not vector-typed"
                    src.Graph.nid
              in
              let ty = Types.vec elt (Array.length vs) in
              let i =
                Instr.create ~name:"shuf" (Instr.Shuffle (src_vec, idx)) ty
              in
              push i;
              Instr.Ins i
            | None ->
              let values = List.map subst (Array.to_list vs) in
              let elt =
                match Instr.value_ty (List.hd values) with
                | Some (Types.Scalar s) -> s
                | Some _ | None ->
                  error "gather lane 0 of a %d-lane column is not scalar"
                    (Array.length vs)
              in
              let lanes = List.length values in
              let ty = Types.vec elt lanes in
              let i =
                match Lslp_costmodel.Model.classify_gather values with
                | Lslp_costmodel.Model.Gather_splat ->
                  Instr.create ~name:"splat" (Instr.Splat (List.hd values)) ty
                | Lslp_costmodel.Model.Gather_free
                | Lslp_costmodel.Model.Gather_insert ->
                  Instr.create ~name:"gath" (Instr.Buildvec values) ty
              in
              push i;
              Instr.Ins i)
          | Graph.Group insts -> (
            let lanes = Array.length insts in
            let i0 = insts.(0) in
            match i0.Instr.kind with
            | Instr.Load a ->
              let addr = { a with Instr.access_lanes = lanes } in
              let i =
                Instr.create ~name:"vload" (Instr.Load addr)
                  (Types.vec addr.Instr.elt lanes)
              in
              push i;
              record ~lanes:insts ~vector:i;
              Instr.Ins i
            | Instr.Store (a, _) ->
              let child =
                match Graph.children graph n with
                | [ c ] -> emit_node c
                | cs ->
                  error "%d-lane store group has %d operand node(s), want 1"
                    lanes (List.length cs)
              in
              let addr = { a with Instr.access_lanes = lanes } in
              let i =
                Instr.create ~name:"vstore" (Instr.Store (addr, child))
                  Types.Void
              in
              push i;
              record ~lanes:insts ~vector:i;
              Instr.Ins i
            | Instr.Binop (op, _, _) ->
              let children = List.map emit_node (Graph.children graph n) in
              (match children with
               | [ a; b ] ->
                 let ty = Types.vec (element_scalar i0) lanes in
                 let i =
                   Instr.create ~name:"v" (Instr.Binop (op, a, b)) ty
                 in
                 push i;
                 record ~lanes:insts ~vector:i;
                 Instr.Ins i
               | cs ->
                 error "%d-lane binop group has %d operand node(s), want 2"
                   lanes (List.length cs))
            | Instr.Unop (op, _) ->
              let children = List.map emit_node (Graph.children graph n) in
              (match children with
               | [ a ] ->
                 let ty = Types.vec (element_scalar i0) lanes in
                 let i = Instr.create ~name:"v" (Instr.Unop (op, a)) ty in
                 push i;
                 record ~lanes:insts ~vector:i;
                 Instr.Ins i
               | cs ->
                 error "%d-lane unop group has %d operand node(s), want 1"
                   lanes (List.length cs))
            | Instr.Cmp (op, _, _) ->
              let children = List.map emit_node (Graph.children graph n) in
              (match children with
               | [ a; b ] ->
                 (* i0 is i1-typed, so element_scalar yields I1: the wide
                    compare produces the vector mask directly *)
                 let ty = Types.vec (element_scalar i0) lanes in
                 let i = Instr.create ~name:"vcmp" (Instr.Cmp (op, a, b)) ty in
                 push i;
                 record ~lanes:insts ~vector:i;
                 Instr.Ins i
               | cs ->
                 error "%d-lane cmp group has %d operand node(s), want 2"
                   lanes (List.length cs))
            | Instr.Select _ ->
              let children = List.map emit_node (Graph.children graph n) in
              (match children with
               | [ m; a; b ] ->
                 let ty = Types.vec (element_scalar i0) lanes in
                 let i =
                   Instr.create ~name:"vsel" (Instr.Select (m, a, b)) ty
                 in
                 push i;
                 record ~lanes:insts ~vector:i;
                 Instr.Ins i
               | cs ->
                 error "%d-lane select group has %d operand node(s), want 3"
                   lanes (List.length cs))
            | Instr.Masked_load (a, _, _) ->
              let children = List.map emit_node (Graph.children graph n) in
              (match children with
               | [ m; p ] ->
                 let addr = { a with Instr.access_lanes = lanes } in
                 let i =
                   Instr.create ~name:"vmload"
                     (Instr.Masked_load (addr, m, p))
                     (Types.vec addr.Instr.elt lanes)
                 in
                 push i;
                 record ~lanes:insts ~vector:i;
                 Instr.Ins i
               | cs ->
                 error
                   "%d-lane masked-load group has %d operand node(s), want 2"
                   lanes (List.length cs))
            | Instr.Masked_store (a, _, _) ->
              let children = List.map emit_node (Graph.children graph n) in
              (match children with
               | [ v; m ] ->
                 let addr = { a with Instr.access_lanes = lanes } in
                 let i =
                   Instr.create ~name:"vmstore"
                     (Instr.Masked_store (addr, v, m))
                     Types.Void
                 in
                 push i;
                 record ~lanes:insts ~vector:i;
                 Instr.Ins i
               | cs ->
                 error
                   "%d-lane masked-store group has %d operand node(s), want 2"
                   lanes (List.length cs))
            | Instr.Splat _ | Instr.Buildvec _ | Instr.Extract _
            | Instr.Reduce _ | Instr.Shuffle _ ->
              (* unreachable: Bundle.classify rejects vector-only opcodes
                 as Unsupported_shape before a group node can be built *)
              invalid_arg "Codegen: vector-only opcode in a scalar group")
          | Graph.Multi m ->
            let lanes = Graph.lanes_of_node n in
            let elt =
              match m.Graph.m_groups with
              | g :: _ -> element_scalar g.(0)
              | [] -> error "multi-node #%d has no internal groups" n.Graph.nid
            in
            let ty = Types.vec elt lanes in
            let children = List.map emit_node (Graph.children graph n) in
            (match children with
             | [] -> error "multi-node #%d has no operand nodes" n.Graph.nid
             | first :: rest ->
               let v =
                 List.fold_left
                   (fun acc c ->
                     let i =
                       Instr.create ~name:"v"
                         (Instr.Binop (m.Graph.m_op, acc, c))
                         ty
                     in
                     push i;
                     Instr.Ins i)
                   first rest
               in
               (* the whole reassociated chain stands for the final combine:
                  every internal bundle's lanes map to it for provenance *)
               (match v with
                | Instr.Ins vi ->
                  List.iter
                    (fun g -> record ~lanes:g ~vector:vi)
                    m.Graph.m_groups
                | Instr.Const _ | Instr.Arg _ -> ());
               v)
        in
        vec_vals.(n.Graph.slot) <- Some v;
        v
    in
    let node_arr = Array.of_list vector_nodes in
    let emit_reduction (r : reduction) =
      let chunk_vecs = List.map emit_node r.red_chunks in
      let elt = element_scalar r.red_root in
      let lanes =
        match r.red_chunks with
        | c :: _ -> Graph.lanes_of_node c
        | [] ->
          error "reduction rooted at %%%d has no leaf chunks"
            r.red_root.Instr.id
      in
      let vty = Types.vec elt lanes in
      let combined =
        match chunk_vecs with
        | [] ->
          error "reduction rooted at %%%d emitted no chunk vectors"
            r.red_root.Instr.id
        | first :: rest ->
          List.fold_left
            (fun acc c ->
              let i =
                Instr.create ~name:"vacc" (Instr.Binop (r.red_op, acc, c)) vty
              in
              push i;
              Instr.Ins i)
            first rest
      in
      let red =
        Instr.create ~name:"hred" (Instr.Reduce (r.red_op, combined))
          (Types.Scalar elt)
      in
      push red;
      let final =
        List.fold_left
          (fun acc v ->
            let i =
              Instr.create ~name:"tail"
                (Instr.Binop (r.red_op, acc, subst v))
                (Types.Scalar elt)
            in
            push i;
            Instr.Ins i)
          (Instr.Ins red) r.red_remainder
      in
      replacements.(slot_of r.red_root) <- Some final
    in
    List.iter
      (fun u ->
        if u < num_node_units then ignore (emit_node node_arr.(u))
        else if u < num_node_units + chain_unit then
          emit_reduction (Option.get reduction)
        else
          match members.(u) with
          | [ i ] ->
            Instr.map_operands subst i;
            incr scalar_repushes;
            repush i
          | ms ->
            (* unreachable: scalar units are built as singletons above *)
            invalid_arg
              (Fmt.str "Codegen: scalar unit %d has %d members" u
                 (List.length ms)))
      order;
    Option.iter
      (fun p ->
        let c = Lslp_telemetry.Probe.counters p in
        c.Lslp_telemetry.Probe.instrs_emitted <-
          c.Lslp_telemetry.Probe.instrs_emitted
          + (List.length !out - !scalar_repushes))
      probe;
    Block.set_order block (List.rev !out);
    ignore (Dce.run_block block);
    Vectorized
    with Error msg ->
      (* Emission may have half-rewritten the block (operand substitutions
         on surviving scalars happen in place); the transactional pipeline
         rolls the region back when it sees [Failed]. *)
      Failed msg
  end
