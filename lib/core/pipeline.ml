(* The pass driver: the flowchart of the paper's Figure 1, run once per
   region (basic block) of the function.

   For each block: collect seeds; for each seed group build the (L)SLP
   graph, evaluate its cost against the threshold, and if profitable
   generate vector code and clean up.  The function is transformed in
   place; a report records what happened per region, keyed by the label of
   the block it lives in.

   Two optional companions ride along, controlled by the config:

   - [validate]: a dependence-graph snapshot is taken before anything is
     mutated, code generation reports the scalar lanes behind every vector
     instruction it emits, and the transformed function is re-checked
     against the snapshot (plus the structural verifier after each pass) —
     see [Lslp_check.Legality].
   - [remarks]: one [Lslp_check.Remark.t] per region considered, with notes
     collected while the graph was built. *)

open Lslp_ir

let log_src = Logs.Src.create "lslp" ~doc:"(L)SLP vectorization pass"

module Log = (val Logs.src_log log_src)

type region = {
  region_id : string;
  seed_desc : string;
  lanes : int;
  cost : Cost.summary;
  vectorized : bool;
  not_schedulable : bool;
}

type report = {
  config_name : string;
  regions : region list;
  total_cost : int;     (* sum of costs of the regions actually vectorized *)
  vectorized_regions : int;
  remarks : Lslp_check.Remark.t list;          (* empty unless [remarks] *)
  diagnostics : Lslp_check.Diagnostic.t list;  (* empty unless [validate] *)
}

let describe_seed (seed : Instr.t array) =
  match Instr.address seed.(0) with
  | Some a ->
    Fmt.str "%s[%a] x%d" a.Instr.base Affine.pp a.Instr.index
      (Array.length seed)
  | None ->
    Fmt.str "seed %s %%%s x%d"
      (Instr.opclass_name (Instr.opclass seed.(0)))
      seed.(0).Instr.name (Array.length seed)

(* Raw build notes arrive one per event; fold duplicate column rejections
   into counts and duplicate cap/FAILED events into one note each. *)
let aggregate_notes (notes : Lslp_check.Remark.note list) :
    Lslp_check.Remark.note list =
  let open Lslp_check.Remark in
  let columns : (string * int) list ref = ref [] in
  let failed_slots = ref 0 in
  let capped = ref None in
  let seed_rejected = ref None in
  List.iter
    (function
      | Column_rejected { reason; count } ->
        let cur =
          Option.value ~default:0 (List.assoc_opt reason !columns)
        in
        columns :=
          (reason, cur + count) :: List.remove_assoc reason !columns
      | Operand_mode_failed { slots } -> failed_slots := !failed_slots + slots
      | Multinode_capped _ as n ->
        if !capped = None then capped := Some n
      | Seed_rejected _ as n ->
        if !seed_rejected = None then seed_rejected := Some n)
    notes;
  Option.to_list !seed_rejected
  @ (if !failed_slots > 0 then
       [ Operand_mode_failed { slots = !failed_slots } ]
     else [])
  @ Option.to_list !capped
  @ List.rev_map
      (fun (reason, count) -> Column_rejected { reason; count })
      !columns

let run ?(config = Config.lslp) (f : Func.t) : report =
  let open Lslp_check in
  let snap = if config.Config.validate then Some (Legality.snapshot f) else None in
  let provenance : Legality.lane_provenance list ref = ref [] in
  let record_opt =
    if config.Config.validate then
      Some
        (fun ~lanes ~vector ->
          provenance :=
            { Legality.lanes = Array.copy lanes; vector } :: !provenance)
    else None
  in
  let diagnostics = ref [] in
  let seen_verifier_msgs : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* structural verification after each pass, attributed to that pass;
     errors already present after an earlier pass are not re-reported *)
  let checkpoint pass =
    if config.Config.validate then
      List.iter
        (fun (e : Verifier.error) ->
          if not (Hashtbl.mem seen_verifier_msgs e.Verifier.message) then begin
            Hashtbl.replace seen_verifier_msgs e.Verifier.message ();
            let instrs =
              match e.Verifier.instr with Some i -> [ i ] | None -> []
            in
            diagnostics :=
              Diagnostic.error ~instrs ~rule:("verifier:" ^ pass)
                e.Verifier.message
              :: !diagnostics
          end)
        (Verifier.check_func f)
  in
  let remarks = ref [] in
  let add_remark r = if config.Config.remarks then remarks := r :: !remarks in
  let regions = ref [] in
  (* Regions are self-contained (no cross-block values), so each block is
     an independent vectorization universe: seeds, graphs, reductions and
     the consumed-store bookkeeping never cross a block boundary. *)
  let run_block (block : Block.t) =
    let region_id = Block.label block in
    let continue_ = ref true in
    let consumed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    while !continue_ do
      continue_ := false;
      let seeds = Seeds.collect config block in
      let fresh =
        List.filter
          (fun (s : Seeds.seed) ->
            Array.for_all
              (fun (i : Instr.t) ->
                (not (Hashtbl.mem consumed i.id)) && Block.mem block i)
              s)
          seeds
      in
      match fresh with
      | [] -> ()
      | seed :: _ ->
        Array.iter
          (fun (i : Instr.t) -> Hashtbl.replace consumed i.id ())
          seed;
        Log.debug (fun m ->
            m "%s: [%s] building graph for seed %s" config.Config.name
              region_id (describe_seed seed));
        let notes = ref [] in
        let note =
          if config.Config.remarks then Some (fun n -> notes := n :: !notes)
          else None
        in
        let graph, root = Graph_builder.build ?note config block seed in
        let cost = Cost.evaluate config graph block in
        Log.debug (fun m ->
            m "%s: [%s] seed %s -> %d nodes, cost %+d" config.Config.name
              region_id (describe_seed seed)
              (List.length (Graph.nodes graph))
              cost.Cost.total);
        let region =
          if Cost.profitable config cost then begin
            match Codegen.run ?record:record_opt graph block with
            | Codegen.Vectorized ->
              Log.info (fun m ->
                  m "%s: [%s] vectorized %s (cost %+d)" config.Config.name
                    region_id (describe_seed seed) cost.Cost.total);
              checkpoint "codegen+dce";
              {
                region_id;
                seed_desc = describe_seed seed;
                lanes = Array.length seed;
                cost;
                vectorized = true;
                not_schedulable = false;
              }
            | Codegen.Not_schedulable ->
              {
                region_id;
                seed_desc = describe_seed seed;
                lanes = Array.length seed;
                cost;
                vectorized = false;
                not_schedulable = true;
              }
          end
          else
            {
              region_id;
              seed_desc = describe_seed seed;
              lanes = Array.length seed;
              cost;
              vectorized = false;
              not_schedulable = false;
            }
        in
        (if config.Config.remarks then begin
           let notes = List.rev !notes in
           (* the first bundle built is the seed itself: if the root is a
              gather, its rejection explains the whole region *)
           let notes =
             match (root.Graph.shape, notes) with
             | Graph.Gather _, Remark.Column_rejected { reason; _ } :: rest ->
               Remark.Seed_rejected { reason } :: rest
             | _, notes -> notes
           in
           add_remark
             {
               Remark.region = region.seed_desc;
               block = region_id;
               lanes = region.lanes;
               cost = Some cost.Cost.total;
               threshold = config.Config.threshold;
               outcome =
                 (if region.vectorized then Remark.Vectorized
                  else if region.not_schedulable then Remark.Not_schedulable
                  else Remark.Unprofitable);
               notes = aggregate_notes notes;
             }
         end);
        regions := region :: !regions;
        continue_ := true
    done;
    (* after the store seeds: the reduction-tree idiom (paper §2.2) *)
    if config.Config.reductions then begin
      let on_skipped (c : Reduction.candidate) =
        let leaves = List.length c.Reduction.cand_leaves in
        let elt =
          match Types.scalar_of c.Reduction.cand_root.Instr.ty with
          | Some s -> s
          | None -> Types.F64
        in
        add_remark
          {
            Remark.region =
              Fmt.str "reduce %s x%d"
                (Opcode.binop_name c.Reduction.cand_op)
                leaves;
            block = region_id;
            lanes = 0;
            cost = None;
            threshold = config.Config.threshold;
            outcome =
              Remark.Reduction_unmatched
                { leaves; width = Config.effective_max_lanes config elt };
            notes = [];
          }
      in
      List.iter
        (fun (r : Reduction.region) ->
          add_remark
            {
              Remark.region = r.Reduction.root_desc;
              block = region_id;
              lanes = r.Reduction.lanes;
              cost = Some r.Reduction.cost;
              threshold = config.Config.threshold;
              outcome =
                (if r.Reduction.vectorized then Remark.Vectorized
                 else if r.Reduction.not_schedulable then
                   Remark.Not_schedulable
                 else Remark.Unprofitable);
              notes = [];
            };
          regions :=
            {
              region_id;
              seed_desc = r.Reduction.root_desc;
              lanes = r.Reduction.lanes;
              cost =
                {
                  Cost.per_node = [];
                  extract_cost = 0;
                  total = r.Reduction.cost;
                };
              vectorized = r.Reduction.vectorized;
              not_schedulable = r.Reduction.not_schedulable;
            }
            :: !regions)
        (Reduction.run ~config ?record:record_opt ~on_skipped block);
      checkpoint "reduction"
    end
  in
  List.iter run_block (Func.blocks f);
  (* whole-function cleanup: regions are vectorized one at a time, so
     duplicate gathers/extracts across regions only fall out here *)
  ignore (Cse.run f);
  checkpoint "cse";
  ignore (Dce.run f);
  checkpoint "dce";
  (match snap with
   | Some snap ->
     diagnostics :=
       List.rev_append
         (List.rev (Legality.validate ~provenance:!provenance snap f))
         !diagnostics
   | None -> ());
  let regions = List.rev !regions in
  {
    config_name = config.Config.name;
    regions;
    total_cost =
      List.fold_left
        (fun acc r -> if r.vectorized then acc + r.cost.Cost.total else acc)
        0 regions;
    vectorized_regions =
      List.length (List.filter (fun r -> r.vectorized) regions);
    remarks = List.rev !remarks;
    diagnostics = List.rev !diagnostics;
  }

(* Convenience: clone, run, return (report, transformed clone). *)
let run_cloned ?(config = Config.lslp) (f : Func.t) : report * Func.t =
  let g = Func.clone f in
  let report = run ~config g in
  (report, g)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s: %d region(s), %d vectorized, total cost %+d"
    r.config_name (List.length r.regions) r.vectorized_regions r.total_cost;
  List.iter
    (fun reg ->
      Fmt.pf ppf "@,  [%s] %s (VL=%d): cost %+d%s" reg.region_id
        reg.seed_desc reg.lanes reg.cost.Cost.total
        (if reg.vectorized then " [vectorized]"
         else if reg.not_schedulable then " [not schedulable]"
         else " [kept scalar]"))
    r.regions;
  Fmt.pf ppf "@]"
