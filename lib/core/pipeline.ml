(* The pass driver: the flowchart of the paper's Figure 1.

   Collect seeds; for each seed group build the (L)SLP graph, evaluate its
   cost against the threshold, and if profitable generate vector code and
   clean up.  The function is transformed in place; a report records what
   happened per region. *)

open Lslp_ir

let log_src = Logs.Src.create "lslp" ~doc:"(L)SLP vectorization pass"

module Log = (val Logs.src_log log_src)

type region = {
  seed_desc : string;
  lanes : int;
  cost : Cost.summary;
  vectorized : bool;
  not_schedulable : bool;
}

type report = {
  config_name : string;
  regions : region list;
  total_cost : int;     (* sum of costs of the regions actually vectorized *)
  vectorized_regions : int;
}

let describe_seed (seed : Instr.t array) =
  match Instr.address seed.(0) with
  | Some a ->
    Fmt.str "%s[%a] x%d" a.Instr.base Affine.pp a.Instr.index
      (Array.length seed)
  | None -> Fmt.str "seed x%d" (Array.length seed)

let run ?(config = Config.lslp) (f : Func.t) : report =
  let regions = ref [] in
  let continue_ = ref true in
  let consumed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  while !continue_ do
    continue_ := false;
    let seeds = Seeds.collect config f in
    let fresh =
      List.filter
        (fun (s : Seeds.seed) ->
          Array.for_all
            (fun (i : Instr.t) ->
              (not (Hashtbl.mem consumed i.id)) && Block.mem f.Func.block i)
            s)
        seeds
    in
    match fresh with
    | [] -> ()
    | seed :: _ ->
      Array.iter (fun (i : Instr.t) -> Hashtbl.replace consumed i.id ()) seed;
      Log.debug (fun m ->
          m "%s: building graph for seed %s" config.Config.name
            (describe_seed seed));
      let graph, _root = Graph_builder.build config f seed in
      let cost = Cost.evaluate config graph f.Func.block in
      Log.debug (fun m ->
          m "%s: seed %s -> %d nodes, cost %+d" config.Config.name
            (describe_seed seed)
            (List.length (Graph.nodes graph))
            cost.Cost.total);
      let region =
        if Cost.profitable config cost then begin
          match Codegen.run graph f with
          | Codegen.Vectorized ->
            Log.info (fun m ->
                m "%s: vectorized %s (cost %+d)" config.Config.name
                  (describe_seed seed) cost.Cost.total);
            {
              seed_desc = describe_seed seed;
              lanes = Array.length seed;
              cost;
              vectorized = true;
              not_schedulable = false;
            }
          | Codegen.Not_schedulable ->
            {
              seed_desc = describe_seed seed;
              lanes = Array.length seed;
              cost;
              vectorized = false;
              not_schedulable = true;
            }
        end
        else
          {
            seed_desc = describe_seed seed;
            lanes = Array.length seed;
            cost;
            vectorized = false;
            not_schedulable = false;
          }
      in
      regions := region :: !regions;
      continue_ := true
  done;
  (* after the store seeds: the reduction-tree idiom (paper §2.2) *)
  if config.Config.reductions then
    List.iter
      (fun (r : Reduction.region) ->
        regions :=
          {
            seed_desc = r.Reduction.root_desc;
            lanes = r.Reduction.lanes;
            cost =
              { Cost.per_node = []; extract_cost = 0; total = r.Reduction.cost };
            vectorized = r.Reduction.vectorized;
            not_schedulable = false;
          }
          :: !regions)
      (Reduction.run ~config f);
  let regions = List.rev !regions in
  {
    config_name = config.Config.name;
    regions;
    total_cost =
      List.fold_left
        (fun acc r -> if r.vectorized then acc + r.cost.Cost.total else acc)
        0 regions;
    vectorized_regions =
      List.length (List.filter (fun r -> r.vectorized) regions);
  }

(* Convenience: clone, run, return (report, transformed clone). *)
let run_cloned ?(config = Config.lslp) (f : Func.t) : report * Func.t =
  let g = Func.clone f in
  let report = run ~config g in
  (report, g)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s: %d region(s), %d vectorized, total cost %+d"
    r.config_name (List.length r.regions) r.vectorized_regions r.total_cost;
  List.iter
    (fun reg ->
      Fmt.pf ppf "@,  %s (VL=%d): cost %+d%s" reg.seed_desc reg.lanes
        reg.cost.Cost.total
        (if reg.vectorized then " [vectorized]"
         else if reg.not_schedulable then " [not schedulable]"
         else " [kept scalar]"))
    r.regions;
  Fmt.pf ppf "@]"
