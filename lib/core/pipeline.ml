(* The pass driver: the flowchart of the paper's Figure 1, run once per
   region (basic block) of the function.

   For each block: collect seeds; for each seed group build the (L)SLP
   graph, evaluate its cost against the threshold, and if profitable
   generate vector code and clean up.  The function is transformed in
   place; a report records what happened per region, keyed by the label of
   the block it lives in.

   The driver is *fail-soft*: every mutating stage (graph build, codegen,
   reduction, per-block CSE/DCE) runs inside a transaction
   ([Lslp_robust.Transact]).  A snapshot of the block is taken first; any
   exception — a malformed graph, a budget cap, an injected fault, a
   structural-verifier finding on the transformed block — rolls the region
   back to its scalar form and records a [Degraded] outcome instead of
   escaping [run].  Only [Out_of_memory] and [Sys.Break] propagate.

   Two optional companions ride along, controlled by the config:

   - [validate]: a dependence-graph snapshot is taken before anything is
     mutated, code generation reports the scalar lanes behind every vector
     instruction it emits, and the transformed function is re-checked
     against the snapshot (plus the structural verifier after each pass) —
     see [Lslp_check.Legality].
   - [remarks]: one [Lslp_check.Remark.t] per region considered, with notes
     collected while the graph was built. *)

open Lslp_ir
module Budget = Lslp_robust.Budget
module Inject = Lslp_robust.Inject
module Transact = Lslp_robust.Transact
module Probe = Lslp_telemetry.Probe

let log_src = Logs.Src.create "lslp" ~doc:"(L)SLP vectorization pass"

module Log = (val Logs.src_log log_src)

type region_outcome = Vectorized | Scalar | Degraded of string

type region = {
  region_id : string;
  seed_desc : string;
  lanes : int;
  cost : Cost.summary;
  vectorized : bool;
  not_schedulable : bool;
  outcome : region_outcome;
}

type report = {
  config_name : string;
  regions : region list;
  total_cost : int;     (* sum of costs of the regions actually vectorized *)
  vectorized_regions : int;
  degraded_regions : int;  (* regions rolled back to scalar by a failure *)
  remarks : Lslp_check.Remark.t list;          (* empty unless [remarks] *)
  diagnostics : Lslp_check.Diagnostic.t list;  (* empty unless [validate] *)
  telemetry : Lslp_telemetry.Report.t;  (* counters + timers, always on *)
  trace_events : Lslp_trace.Trace.event list;  (* empty unless [trace] *)
}

let zero_cost = { Cost.per_node = []; extract_cost = 0; total = 0 }

let describe_seed = Seeds.describe

(* Probe span plus matching Span_begin/Span_end trace events; the end event
   fires on the exception path too, so spans stay well-nested even when a
   pass aborts into the transaction layer. *)
let traced_span ?trace probe name f =
  match trace with
  | None -> Probe.span probe name f
  | Some tr ->
    Lslp_trace.Trace.record tr (Lslp_trace.Trace.Span_begin { pass = name });
    let finish () =
      Lslp_trace.Trace.record tr (Lslp_trace.Trace.Span_end { pass = name })
    in
    (match Probe.span probe name f with
     | v ->
       finish ();
       v
     | exception e ->
       finish ();
       raise e)

(* Raw build notes arrive one per event; fold duplicate column rejections
   into counts and duplicate cap/FAILED events into one note each. *)
let aggregate_notes (notes : Lslp_check.Remark.note list) :
    Lslp_check.Remark.note list =
  let open Lslp_check.Remark in
  let columns : (string * int) list ref = ref [] in
  let failed_slots = ref 0 in
  let capped = ref None in
  let seed_rejected = ref None in
  List.iter
    (function
      | Column_rejected { reason; count } ->
        let cur =
          Option.value ~default:0 (List.assoc_opt reason !columns)
        in
        columns :=
          (reason, cur + count) :: List.remove_assoc reason !columns
      | Operand_mode_failed { slots } -> failed_slots := !failed_slots + slots
      | Multinode_capped _ as n ->
        if !capped = None then capped := Some n
      | Seed_rejected _ as n ->
        if !seed_rejected = None then seed_rejected := Some n)
    notes;
  Option.to_list !seed_rejected
  @ (if !failed_slots > 0 then
       [ Operand_mode_failed { slots = !failed_slots } ]
     else [])
  @ Option.to_list !capped
  @ List.rev_map
      (fun (reason, count) -> Column_rejected { reason; count })
      !columns

let degraded_desc (failure : Transact.failure) =
  Fmt.str "%a" Transact.pp_failure failure

(* The unprotected driver: individual regions are transactional, but a bug
   in the driver itself (or in seed collection) would still escape — [run]
   adds the whole-function safety net around this. *)
let run_unprotected ?trace ~(config : Config.t) (f : Func.t) : report =
  let open Lslp_check in
  let inject = config.Config.inject in
  (* the service's cooperative watchdog: one tick at every boundary the
     injector instruments; None (the default) costs a single match *)
  let deadline = config.Config.deadline in
  (* run-wide SLP-graph node-id source: nids stay unique across every graph
     of this run (the DOT exporter relies on it) and start from 1 on every
     run, so concurrent runs on other domains number independently *)
  let graph_ids = Lslp_util.Id_gen.create ~first:1 () in
  let diagnostics = ref [] in
  let snap =
    if config.Config.validate then
      match Legality.snapshot f with
      | s -> Some s
      | exception ((Out_of_memory | Sys.Break) as fatal) -> raise fatal
      | exception e ->
        diagnostics :=
          [ Diagnostic.warning ~rule:"legality:snapshot"
              (Fmt.str "dependence snapshot failed (%s); validation skipped"
                 (Printexc.to_string e)) ];
        None
    else None
  in
  let provenance : Legality.lane_provenance list ref = ref [] in
  let record_opt =
    if config.Config.validate then
      Some
        (fun ~lanes ~vector ->
          provenance :=
            { Legality.lanes = Array.copy lanes; vector } :: !provenance)
    else None
  in
  let seen_verifier_msgs : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* structural verification after each pass, attributed to that pass;
     errors already present after an earlier pass are not re-reported *)
  let checkpoint pass =
    if config.Config.validate then
      List.iter
        (fun (e : Verifier.error) ->
          if not (Hashtbl.mem seen_verifier_msgs e.Verifier.message) then begin
            Hashtbl.replace seen_verifier_msgs e.Verifier.message ();
            let instrs =
              match e.Verifier.instr with Some i -> [ i ] | None -> []
            in
            diagnostics :=
              Diagnostic.error ~instrs ~rule:("verifier:" ^ pass)
                e.Verifier.message
              :: !diagnostics
          end)
        (Verifier.check_func f)
  in
  (* in-transaction structural check: unlike [checkpoint] this always runs
     on freshly transformed blocks and *aborts* the region on a finding, so
     a miscompile degrades to scalar instead of reaching the caller *)
  let verify_or_abort pass =
    match Verifier.check_func f with
    | [] -> ()
    | e :: _ ->
      raise
        (Transact.Check_failed
           { pass; error = Verifier.error_to_string e })
  in
  let remarks = ref [] in
  let add_remark r = if config.Config.remarks then remarks := r :: !remarks in
  let regions = ref [] in
  (* Regions are self-contained (no cross-block values), so each block is
     an independent vectorization universe: seeds, graphs, reductions and
     the consumed-store bookkeeping never cross a block boundary.  Each
     block also gets its own budget meter. *)
  let meters : (string, Budget.meter) Hashtbl.t = Hashtbl.create 4 in
  let meter_of block =
    let label = Block.label block in
    match Hashtbl.find_opt meters label with
    | Some m -> m
    | None ->
      let m = Budget.meter config.Config.budget in
      Hashtbl.replace meters label m;
      m
  in
  (* One probe per block, same lifetime as the block's budget meter.
     Counters measure work *performed*, so a rolled-back attempt keeps its
     score evaluations and graph nodes — only [instrs_emitted] is charged
     exclusively on commit (inside codegen). *)
  let probes : (string, Probe.t) Hashtbl.t = Hashtbl.create 4 in
  let probe_of label =
    match Hashtbl.find_opt probes label with
    | Some p -> p
    | None ->
      let p = Probe.create () in
      Hashtbl.replace probes label p;
      p
  in
  let degrade ~region_id ~seed_desc ~lanes (failure : Transact.failure) =
    let c = Probe.counters (probe_of region_id) in
    c.Probe.regions_degraded <- c.Probe.regions_degraded + 1;
    Option.iter
      (fun tr ->
        Lslp_trace.Trace.record tr
          (Lslp_trace.Trace.Rollback
             {
               pass = failure.Transact.pass;
               error = failure.Transact.error;
               budget_exhausted = failure.Transact.budget_exhausted;
             });
        Lslp_trace.Trace.record tr
          (Lslp_trace.Trace.Region_outcome
             { seed = seed_desc; lanes; outcome = "degraded"; cost = None }))
      trace;
    Log.info (fun m ->
        m "%s: [%s] %s degraded: %a" config.Config.name region_id seed_desc
          Transact.pp_failure failure);
    add_remark
      {
        Remark.region = seed_desc;
        block = region_id;
        lanes;
        cost = None;
        threshold = config.Config.threshold;
        outcome =
          (if failure.Transact.budget_exhausted then
             Remark.Budget_exhausted
               { pass = failure.Transact.pass;
                 what = failure.Transact.error }
           else
             Remark.Degraded
               { pass = failure.Transact.pass;
                 error = failure.Transact.error });
        notes = [];
      };
    regions :=
      {
        region_id;
        seed_desc;
        lanes;
        cost = zero_cost;
        vectorized = false;
        not_schedulable = false;
        outcome = Degraded (degraded_desc failure);
      }
      :: !regions
  in
  let run_block (block : Block.t) =
    let region_id = Block.label block in
    Option.iter (fun tr -> Lslp_trace.Trace.set_region tr region_id) trace;
    let meter = meter_of block in
    let probe = probe_of region_id in
    let pc = Probe.counters probe in
    let exhausted = ref false in
    let continue_ = ref true in
    let consumed = Lslp_util.Int_table.create 32 in
    (* the most recent arena snapshot that still describes the block's
       current state.  Every attempt builds its snapshot before mutating
       anything, and a rollback restores exactly the snapshotted state, so
       the arena only dies when a vectorized region *commits* — at loop
       exit it can be handed to the reduction pass as-is *)
    let live_arena = ref None in
    while !continue_ && not !exhausted do
      continue_ := false;
      let snapshot = Transact.snapshot_block block in
      let saved_provenance = !provenance in
      let cur_pass = ref "seed-collect" in
      let cur_seed = ref None in
      let result =
        Transact.protect ~snapshot ~pass:(fun () -> !cur_pass) (fun () ->
            Budget.spend_step meter;
            (* one arena snapshot per attempt: seeds, graph build, cost and
               codegen all read the block in this same frozen state *)
            let arena = Arena.of_block block in
            live_arena := Some arena;
            let seeds =
              traced_span ?trace probe "seed-collect" (fun () ->
                  Seeds.collect ~arena ~probe ?trace config block)
            in
            let fresh =
              List.filter
                (fun (s : Seeds.seed) ->
                  Array.for_all
                    (fun (i : Instr.t) ->
                      (not (Lslp_util.Int_table.mem consumed i.id))
                      && Block.mem block i)
                    s)
                seeds
            in
            match fresh with
            | [] -> ()
            | seed :: _ ->
              (* consume the seed and arm the retry *before* any fallible
                 work: a failure must not make this seed come back forever *)
              Array.iter
                (fun (i : Instr.t) ->
                  Lslp_util.Int_table.set consumed i.id 1)
                seed;
              continue_ := true;
              cur_seed := Some seed;
              pc.Probe.seeds_tried <- pc.Probe.seeds_tried + 1;
              Option.iter
                (fun tr ->
                  Lslp_trace.Trace.record tr
                    (Lslp_trace.Trace.Seed_tried
                       { seed = describe_seed seed;
                         lanes = Array.length seed }))
                trace;
              Log.debug (fun m ->
                  m "%s: [%s] building graph for seed %s" config.Config.name
                    region_id (describe_seed seed));
              cur_pass := "graph-build";
              Budget.deadline_tick deadline;
              Inject.maybe_fail inject Inject.Graph_build;
              let notes = ref [] in
              let note =
                if config.Config.remarks then
                  Some (fun n -> notes := n :: !notes)
                else None
              in
              let graph, root, deps =
                traced_span ?trace probe "graph-build" (fun () ->
                    let deps = Lslp_analysis.Depgraph.build_arena arena in
                    let g, r =
                      Graph_builder.build ?note ~meter ~probe ?trace
                        ~ids:graph_ids ~deps config block seed
                    in
                    (g, r, deps))
              in
              cur_pass := "cost";
              let cost =
                traced_span ?trace probe "cost" (fun () ->
                    Cost.evaluate ~uses:(Use_info.of_arena arena) config
                      graph block)
              in
              Option.iter
                (fun tr ->
                  Lslp_trace.Trace.record tr
                    (Lslp_trace.Trace.Cost_computed
                       {
                         seed = describe_seed seed;
                         nodes = List.length (Graph.nodes graph);
                         total = cost.Cost.total;
                         threshold = config.Config.threshold;
                         accepted = Cost.profitable config cost;
                       }))
                trace;
              Log.debug (fun m ->
                  m "%s: [%s] seed %s -> %d nodes, cost %+d"
                    config.Config.name region_id (describe_seed seed)
                    (List.length (Graph.nodes graph))
                    cost.Cost.total);
              cur_pass := "codegen";
              let region =
                if Cost.profitable config cost then begin
                  Budget.deadline_tick deadline;
                  Inject.maybe_fail inject Inject.Codegen;
                  match
                    traced_span ?trace probe "codegen" (fun () ->
                        Codegen.run ?record:record_opt ~probe ?trace ~deps
                          graph block)
                  with
                  | Codegen.Vectorized ->
                    live_arena := None;
                    if Inject.corrupts inject then
                      ignore (Inject.corrupt_block block);
                    cur_pass := "verify";
                    Budget.deadline_tick deadline;
                    Inject.maybe_fail inject Inject.Verify;
                    verify_or_abort "verify";
                    (* only now is the region committed; a verify abort
                       above must not leave a phantom vectorized count *)
                    pc.Probe.regions_vectorized <-
                      pc.Probe.regions_vectorized + 1;
                    Log.info (fun m ->
                        m "%s: [%s] vectorized %s (cost %+d)"
                          config.Config.name region_id (describe_seed seed)
                          cost.Cost.total);
                    checkpoint "codegen+dce";
                    {
                      region_id;
                      seed_desc = describe_seed seed;
                      lanes = Array.length seed;
                      cost;
                      vectorized = true;
                      not_schedulable = false;
                      outcome = Vectorized;
                    }
                  | Codegen.Not_schedulable ->
                    {
                      region_id;
                      seed_desc = describe_seed seed;
                      lanes = Array.length seed;
                      cost;
                      vectorized = false;
                      not_schedulable = true;
                      outcome = Scalar;
                    }
                  | Codegen.Failed msg ->
                    raise
                      (Transact.Check_failed { pass = "codegen"; error = msg })
                end
                else
                  {
                    region_id;
                    seed_desc = describe_seed seed;
                    lanes = Array.length seed;
                    cost;
                    vectorized = false;
                    not_schedulable = false;
                    outcome = Scalar;
                  }
              in
              (if config.Config.remarks then begin
                 let notes = List.rev !notes in
                 (* the first bundle built is the seed itself: if the root
                    is a gather, its rejection explains the whole region *)
                 let notes =
                   match (root.Graph.shape, notes) with
                   | ( Graph.Gather _,
                       Remark.Column_rejected { reason; _ } :: rest ) ->
                     Remark.Seed_rejected { reason } :: rest
                   | _, notes -> notes
                 in
                 add_remark
                   {
                     Remark.region = region.seed_desc;
                     block = region_id;
                     lanes = region.lanes;
                     cost = Some cost.Cost.total;
                     threshold = config.Config.threshold;
                     outcome =
                       (if region.vectorized then Remark.Vectorized
                        else if region.not_schedulable then
                          Remark.Not_schedulable
                        else Remark.Unprofitable);
                     notes = aggregate_notes notes;
                   }
               end);
              Option.iter
                (fun tr ->
                  Lslp_trace.Trace.record tr
                    (Lslp_trace.Trace.Region_outcome
                       {
                         seed = region.seed_desc;
                         lanes = region.lanes;
                         outcome =
                           (if region.vectorized then "vectorized"
                            else if region.not_schedulable then
                              "not-schedulable"
                            else "rejected-cost");
                         cost = Some cost.Cost.total;
                       }))
                trace;
              regions := region :: !regions)
      in
      match result with
      | Ok () -> ()
      | Error failure ->
        (* rolled back: provenance recorded during the failed attempt
           refers to instructions that no longer exist *)
        provenance := saved_provenance;
        if failure.Transact.budget_exhausted then exhausted := true;
        let seed_desc, lanes =
          match !cur_seed with
          | Some seed -> (describe_seed seed, Array.length seed)
          | None -> (Fmt.str "(%s)" failure.Transact.pass, 0)
        in
        degrade ~region_id ~seed_desc ~lanes failure
    done;
    (* after the store seeds: the reduction-tree idiom (paper §2.2) *)
    if config.Config.reductions && not !exhausted then begin
      let on_skipped (c : Reduction.candidate) =
        let leaves = List.length c.Reduction.cand_leaves in
        let elt =
          match Types.scalar_of c.Reduction.cand_root.Instr.ty with
          | Some s -> s
          | None -> Types.F64
        in
        add_remark
          {
            Remark.region =
              Fmt.str "reduce %s x%d"
                (Opcode.binop_name c.Reduction.cand_op)
                leaves;
            block = region_id;
            lanes = 0;
            cost = None;
            threshold = config.Config.threshold;
            outcome =
              Remark.Reduction_unmatched
                { leaves; width = Config.effective_max_lanes config elt };
            notes = [];
          }
      in
      let snapshot = Transact.snapshot_block block in
      let saved_provenance = !provenance in
      let result =
        Transact.protect ~snapshot ~pass:(fun () -> "reduction") (fun () ->
            let rs =
              traced_span ?trace probe "reduction" (fun () ->
                  Reduction.run ~config ~meter ~probe ?trace ~ids:graph_ids
                    ?record:record_opt ~on_skipped ?arena:!live_arena block)
            in
            if
              List.exists (fun r -> r.Reduction.vectorized) rs
              && Inject.corrupts inject
            then ignore (Inject.corrupt_block block);
            (* the block is only mutated when a reduction vectorized
               (rejected/unschedulable candidates emit nothing, and a
               half-rewrite raises out of this transaction), so an
               unvectorized outcome leaves the already-verified block
               byte-identical — skip the re-check *)
            if List.exists (fun r -> r.Reduction.vectorized) rs then
              verify_or_abort "reduction-verify";
            rs)
      in
      match result with
      | Ok rs ->
        List.iter
          (fun (r : Reduction.region) ->
            if r.Reduction.vectorized then
              pc.Probe.regions_vectorized <- pc.Probe.regions_vectorized + 1)
          rs;
        List.iter
          (fun (r : Reduction.region) ->
            add_remark
              {
                Remark.region = r.Reduction.root_desc;
                block = region_id;
                lanes = r.Reduction.lanes;
                cost = Some r.Reduction.cost;
                threshold = config.Config.threshold;
                outcome =
                  (if r.Reduction.vectorized then Remark.Vectorized
                   else if r.Reduction.not_schedulable then
                     Remark.Not_schedulable
                   else Remark.Unprofitable);
                notes = [];
              };
            regions :=
              {
                region_id;
                seed_desc = r.Reduction.root_desc;
                lanes = r.Reduction.lanes;
                cost =
                  {
                    Cost.per_node = [];
                    extract_cost = 0;
                    total = r.Reduction.cost;
                  };
                vectorized = r.Reduction.vectorized;
                not_schedulable = r.Reduction.not_schedulable;
                outcome =
                  (if r.Reduction.vectorized then Vectorized else Scalar);
              }
              :: !regions)
          rs;
        checkpoint "reduction"
      | Error failure ->
        provenance := saved_provenance;
        degrade ~region_id ~seed_desc:"(reduction)" ~lanes:0 failure
    end
  in
  List.iter run_block (Func.blocks f);
  (* whole-function cleanup: regions are vectorized one at a time, so
     duplicate gathers/extracts across regions only fall out here.  CSE and
     DCE are per-block folds, so the cleanup is transactional per block: a
     cleanup failure keeps that block's (already verified) vectorized form
     and degrades only the cleanup. *)
  let cleanup_block (block : Block.t) =
    let region_id = Block.label block in
    Option.iter (fun tr -> Lslp_trace.Trace.set_region tr region_id) trace;
    let probe = probe_of region_id in
    let snapshot = Transact.snapshot_block block in
    let cur_pass = ref "cse" in
    let result =
      Transact.protect ~snapshot ~pass:(fun () -> !cur_pass) (fun () ->
          Budget.deadline_tick deadline;
          Inject.maybe_fail inject Inject.Cse;
          let cse_removed =
            traced_span ?trace probe "cse" (fun () -> Cse.run_block block)
          in
          cur_pass := "dce";
          Budget.deadline_tick deadline;
          Inject.maybe_fail inject Inject.Dce;
          let dce_removed =
            traced_span ?trace probe "dce" (fun () -> Dce.run_block block)
          in
          (* both passes report how many instructions they removed; when
             neither touched the block it is still in its last verified
             state, so the re-check would be a no-op *)
          if cse_removed + dce_removed > 0 then
            verify_or_abort "cleanup-verify")
    in
    match result with
    | Ok () -> ()
    | Error failure ->
      degrade ~region_id ~seed_desc:"(cleanup)" ~lanes:0 failure
  in
  List.iter cleanup_block (Func.blocks f);
  checkpoint "cleanup";
  (match snap with
   | Some snap -> (
     match Legality.validate ~provenance:!provenance snap f with
     | ds -> diagnostics := List.rev_append (List.rev ds) !diagnostics
     | exception ((Out_of_memory | Sys.Break) as fatal) -> raise fatal
     | exception e ->
       diagnostics :=
         Diagnostic.warning ~rule:"legality:validate"
           (Fmt.str "legality validation crashed (%s)"
              (Printexc.to_string e))
         :: !diagnostics)
   | None -> ());
  let regions = List.rev !regions in
  let telemetry =
    Lslp_telemetry.Report.make ~func:f.Func.fname ~config:config.Config.name
      (List.filter_map
         (fun block ->
           let label = Block.label block in
           Option.map
             (fun p -> (label, Probe.snapshot p))
             (Hashtbl.find_opt probes label))
         (Func.blocks f))
  in
  {
    config_name = config.Config.name;
    regions;
    total_cost =
      List.fold_left
        (fun acc r -> if r.vectorized then acc + r.cost.Cost.total else acc)
        0 regions;
    vectorized_regions =
      List.length (List.filter (fun r -> r.vectorized) regions);
    degraded_regions =
      List.length
        (List.filter
           (fun r -> match r.outcome with Degraded _ -> true | _ -> false)
           regions);
    remarks = List.rev !remarks;
    diagnostics = List.rev !diagnostics;
    telemetry;
    trace_events =
      (match trace with
       | Some tr -> Lslp_trace.Trace.events tr
       | None -> []);
  }

let run ?metrics ?(config = Config.lslp) (f : Func.t) : report =
  (* Whole-function safety net: region failures are handled inside, so
     anything arriving here is a driver bug — restore the function to its
     scalar input form and report one degraded pseudo-region rather than
     letting the exception escape the compiler. *)
  let trace =
    if config.Config.trace then Some (Lslp_trace.Trace.create ()) else None
  in
  (* feed the observability registry on every path that produces a report;
     cancellation re-raises and is accounted by the pool instead *)
  let observed report =
    (match metrics with
     | Some m -> Lslp_telemetry.Pass_metrics.observe m report.telemetry
     | None -> ());
    report
  in
  let whole = Transact.snapshot_func f in
  match run_unprotected ?trace ~config f with
  | report -> observed report
  | exception ((Out_of_memory | Sys.Break) as fatal) -> raise fatal
  | exception (Budget.Deadline_expired _ as cancel) ->
    (* cooperative cancellation from the service watchdog: restore the
       scalar input (region transactions already rolled their own state
       back) and let the pool decide — retry or typed job failure *)
    Transact.restore whole;
    raise cancel
  | exception e ->
    Transact.restore whole;
    let failure = Transact.failure_of_exn ~pass:"pipeline" e in
    (* events recorded before the driver died survive into the report —
       exactly the breadcrumbs needed to debug the driver bug *)
    observed
    {
      config_name = config.Config.name;
      regions =
        [ {
            region_id = f.Func.fname;
            seed_desc = Fmt.str "(%s)" failure.Transact.pass;
            lanes = 0;
            cost = zero_cost;
            vectorized = false;
            not_schedulable = false;
            outcome = Degraded (degraded_desc failure);
          } ];
      total_cost = 0;
      vectorized_regions = 0;
      degraded_regions = 1;
      remarks = [];
      diagnostics = [];
      telemetry =
        Lslp_telemetry.Report.empty ~func:f.Func.fname
          ~config:config.Config.name;
      trace_events =
        (match trace with
         | Some tr -> Lslp_trace.Trace.events tr
         | None -> []);
    }

(* Convenience: clone, run, return (report, transformed clone). *)
let run_cloned ?metrics ?(config = Config.lslp) (f : Func.t) :
    report * Func.t =
  let g = Func.clone f in
  let report = run ?metrics ~config g in
  (report, g)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s: %d region(s), %d vectorized%s, total cost %+d"
    r.config_name (List.length r.regions) r.vectorized_regions
    (if r.degraded_regions > 0 then
       Fmt.str ", %d degraded" r.degraded_regions
     else "")
    r.total_cost;
  List.iter
    (fun reg ->
      Fmt.pf ppf "@,  [%s] %s (VL=%d): cost %+d%s" reg.region_id
        reg.seed_desc reg.lanes reg.cost.Cost.total
        (match reg.outcome with
         | Vectorized -> " [vectorized]"
         | Degraded why -> Fmt.str " [degraded: %s]" why
         | Scalar ->
           if reg.not_schedulable then " [not schedulable]"
           else " [kept scalar]"))
    r.regions;
  Fmt.pf ppf "@]"
