(** Operand reordering strategies.

    [vanilla_pair] ports LLVM 4.0's reorderInputsAccordingToOpcode (the
    paper's SLP baseline); [reorder_matrix] implements LSLP's mode-driven,
    look-ahead-scored single-pass reorder over the (operand-slot × lane)
    matrix (Listings 5-7). *)

open Lslp_ir

type mode = Const_mode | Load_mode | Opcode_mode | Splat_mode | Failed_mode

val mode_to_string : mode -> string

val consecutive_or_match : Instr.value -> Instr.value -> bool
(** Constants match constants, loads match consecutive loads, other
    instructions match on opcode class, arguments match themselves. *)

val pair_score : Instr.value -> Instr.value -> int
(** Graded base score for the look-ahead: identical values and consecutive
    loads score 2, constants and same-opcode instructions 1, everything else
    (including non-consecutive loads) 0. *)

val lookahead_score :
  ?meter:Lslp_robust.Budget.meter ->
  ?cache:Lslp_telemetry.Score_cache.t ->
  ?probe:Lslp_telemetry.Probe.t ->
  combine:Config.score_combine ->
  Instr.value ->
  Instr.value ->
  level:int ->
  int
(** Listing 7: recursive match count between two sub-DAGs down to [level].
    With [?meter], every computed comparison spends one unit of look-ahead
    fuel and the whole reorder bails with [Budget.Exhausted] when the cap is
    hit — the defense against exponentially-shared DAGs.
    With [?cache], instruction/instruction comparisons memoize on
    (id, id, level, combine); hits skip the recursion and burn no fuel.
    The cache is only sound while the operand DAG is frozen — scope it to
    one reorder invocation.  [?probe] counts evaluations and hits/misses. *)

val init_mode : Instr.value -> mode

val get_best :
  ?meter:Lslp_robust.Budget.meter ->
  ?cache:Lslp_telemetry.Score_cache.t ->
  ?probe:Lslp_telemetry.Probe.t ->
  ?trace:Lslp_trace.Trace.t ->
  Config.t ->
  mode ->
  Instr.value ->
  Instr.value list ->
  Instr.value option * mode
(** Listing 6: choose among candidates given the slot's mode and the
    previous lane's pick; [None] means the slot defers (already FAILED).
    When [Config.score_cache] is on and no [?cache] is supplied, the
    look-ahead tie-break memoizes within itself per candidate, so
    deepening from level k to k+1 extends the level-k results instead of
    recomputing them.  With [Config.score_cache] off there is no
    memoization anywhere — the paper's Listing 7 exactly as written.
    [?trace] records one [Get_best] event per call: the candidate set,
    the per-level look-ahead scores of the tie-break, the winner, and the
    Score_cache hit/miss delta (derived from [?probe], 0/0 without one). *)

val reorder_matrix :
  ?meter:Lslp_robust.Budget.meter ->
  ?probe:Lslp_telemetry.Probe.t ->
  ?trace:Lslp_trace.Trace.t ->
  Config.t ->
  Instr.value array array ->
  Instr.value array array
(** Listing 5 over [columns.(slot).(lane)].  Preserves each lane's multiset
    of operands; lane 0 is kept as-is.  With [Config.score_cache] one score
    cache is created for (and discarded with) the invocation. *)

val reorder_matrix_modes :
  ?meter:Lslp_robust.Budget.meter ->
  ?probe:Lslp_telemetry.Probe.t ->
  ?trace:Lslp_trace.Trace.t ->
  Config.t ->
  Instr.value array array ->
  Instr.value array array * mode array
(** Like {!reorder_matrix}, but also returns the final per-slot mode —
    [Failed_mode] slots are the ones the remarks engine reports; [?trace]
    additionally records the [Slot_modes] assignment (paper Table 1). *)

val vanilla_pair : Instr.t array -> Instr.value array * Instr.value array
(** LLVM-4.0-faithful two-operand reorder (peeled lane 0, splat /
    same-opcode preservation, trailing consecutive-load pass). *)

val no_reorder_pair : Instr.t array -> Instr.value array * Instr.value array
