(** Seed collection: runs of adjacent, same-array scalar stores cut into
    power-of-two windows (widest native width first). *)

open Lslp_ir

type seed = Instr.t array

val collect :
  ?probe:Lslp_telemetry.Probe.t -> Config.t -> Block.t -> seed list
(** Seeds of one region, ordered by the position of their first store.
    [probe] counts the bundles found. *)
