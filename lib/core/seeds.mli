(** Seed collection: runs of adjacent, same-array scalar stores cut into
    power-of-two windows (widest native width first). *)

open Lslp_ir

type seed = Instr.t array

val describe : seed -> string
(** One-line printable form ("A[i] x4"); shared by the pipeline's region
    records, the remarks and the decision trace. *)

val collect :
  ?arena:Arena.t ->
  ?probe:Lslp_telemetry.Probe.t ->
  ?trace:Lslp_trace.Trace.t ->
  Config.t ->
  Block.t ->
  seed list
(** Seeds of one region, ordered by the position of their first store.
    Adjacency comes off the arena's address side table (int compares);
    pass [arena] to share the snapshot the caller already built for the
    same un-mutated block, otherwise a fresh one is taken.
    [probe] counts the bundles found; [trace] records them as a
    [Seeds_found] event. *)
