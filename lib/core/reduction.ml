(* Horizontal-reduction vectorization.

   The paper lists reduction trees among the seed idioms of bottom-up SLP
   (§2.2: "instructions that lead to idioms such as reduction trees").  A
   chain x1 ⊕ x2 ⊕ ... ⊕ xn of one commutative+associative opcode whose
   intermediate values do not escape is rewritten, when profitable, as

     W-wide chunks of leaves  →  element-wise ⊕ of the chunk vectors
                              →  one horizontal Reduce
                              →  scalar ⊕ of any leftover leaves.

   Leaf chunks are built through the regular graph machinery, so they get
   the full treatment: wide loads, nested groups, gathers, diamond reuse. *)

open Lslp_ir

type candidate = {
  cand_op : Opcode.binop;
  cand_root : Instr.t;
  cand_chain : Instr.t list;   (* chain ops, root first *)
  cand_leaves : Instr.value list;
}

(* Chain roots: commutative+associative ops that are not themselves
   absorbed into a parent chain of the same opcode (multi-use values are
   roots of their own chains; their parents treat them as leaves). *)
let collect_candidates ?uses (block : Block.t) : candidate list =
  let uses =
    match uses with Some u -> u | None -> Use_info.compute block
  in
  let absorbable ~op (v : Instr.value) =
    match v with
    | Instr.Ins i ->
      Instr.binop i = Some op && Use_info.has_single_use uses i
    | Instr.Const _ | Instr.Arg _ -> false
  in
  let is_root (i : Instr.t) =
    match Instr.binop i with
    | Some op when Opcode.is_commutative op && Opcode.is_associative op ->
      let users = Use_info.users uses i in
      (* not absorbed by a same-op parent *)
      not
        (Use_info.has_single_use uses i
         && List.exists (fun (u : Instr.t) -> Instr.binop u = Some op) users)
    | Some _ | None -> false
  in
  Block.fold
    (fun acc root ->
      if not (is_root root) then acc
      else
        let op = Option.get (Instr.binop root) in
        let chain = ref [ root ] in
        let leaves = ref [] in
        let rec go (i : Instr.t) =
          List.iter
            (fun v ->
              if absorbable ~op v then begin
                match v with
                | Instr.Ins child ->
                  chain := child :: !chain;
                  go child
                | Instr.Const _ | Instr.Arg _ -> assert false
              end
              else leaves := v :: !leaves)
            (Instr.operands i)
        in
        go root;
        if List.length !chain < 2 then acc (* a lone op is not a chain *)
        else
          {
            cand_op = op;
            cand_root = root;
            cand_chain = List.rev !chain;
            cand_leaves = List.rev !leaves;
          }
          :: acc)
    [] block
  |> List.rev

(* Chunk the leaves into W-wide bundles (in order) plus a scalar tail. *)
let chunk_leaves ~lanes leaves =
  let rec go acc current n = function
    | [] ->
      let tail = List.rev current in
      (List.rev acc, tail)
    | v :: rest ->
      if n + 1 = lanes then
        go (Array.of_list (List.rev (v :: current)) :: acc) [] 0 rest
      else go acc (v :: current) (n + 1) rest
  in
  go [] [] 0 leaves

type plan = {
  graph : Graph.t;
  reduction : Codegen.reduction;
  cost : int;
  lanes : int;
}

(* Net cost of vectorizing one candidate (negative = profitable):
   graph nodes (chunk trees and their gathers/extracts) + (chunks-1)
   element-wise vector ops + the horizontal reduce + tail scalar ops,
   minus the removed scalar chain ops. *)
let plan_candidate ?meter ?probe ?trace ?ids ?deps ~desc
    (config : Config.t) (block : Block.t) (c : candidate) : plan option =
  let model = config.Config.model in
  let elt =
    match Types.scalar_of c.cand_root.Instr.ty with
    | Some s -> s
    | None -> Types.F64
  in
  let lanes = Config.effective_max_lanes config elt in
  if List.length c.cand_leaves < lanes then None
  else begin
    let chunks, tail = chunk_leaves ~lanes c.cand_leaves in
    let graph, chunk_nodes =
      Graph_builder.build_columns ?meter ?probe ?trace ?ids ?deps ~desc
        config block chunks
    in
    let in_chain (u : Instr.t) =
      List.exists (fun (ci : Instr.t) -> Instr.equal ci u) c.cand_chain
    in
    let uses =
      Option.map
        (fun d -> Use_info.of_arena (Lslp_analysis.Depgraph.arena d))
        deps
    in
    let summary =
      Cost.evaluate ~ignore_users:in_chain ?uses config graph block
    in
    let op_costs = model.Lslp_costmodel.Model.binop_cost c.cand_op in
    let combine_cost = (List.length chunks - 1) * op_costs.vector lanes in
    let reduce_cost = model.Lslp_costmodel.Model.horizontal_reduce lanes in
    let tail_cost = List.length tail * op_costs.scalar in
    let removed_chain =
      List.length c.cand_chain * op_costs.scalar
    in
    let cost =
      summary.Cost.total + combine_cost + reduce_cost + tail_cost
      - removed_chain
    in
    Some
      {
        graph;
        reduction =
          {
            Codegen.red_op = c.cand_op;
            red_root = c.cand_root;
            red_chain = c.cand_chain;
            red_chunks = chunk_nodes;
            red_remainder = tail;
          };
        cost;
        lanes;
      }
  end

type region = {
  root_desc : string;
  lanes : int;
  cost : int;
  vectorized : bool;
  not_schedulable : bool;
}

(* Vectorize every profitable reduction in one block, in program order.
   Returns one region record per candidate considered. *)
let run ?(config = Config.lslp) ?meter ?probe ?trace ?ids ?record
    ?(on_skipped = fun _ -> ()) ?arena (block : Block.t) : region list =
  let regions = ref [] in
  let continue_ = ref true in
  let consumed = Lslp_util.Int_table.create 16 in
  (* one arena snapshot per block *state*: candidate collection, chunk-graph
     build, cost and codegen all read the same frozen block, and the
     snapshot survives across iterations until a reduction actually rewrites
     the block (rejected or unschedulable candidates leave it untouched).
     The caller may hand over a snapshot it already built for this state. *)
  let cur_arena = ref arena in
  while !continue_ do
    continue_ := false;
    let arena =
      match !cur_arena with
      | Some a -> a
      | None ->
        let a = Arena.of_block block in
        cur_arena := Some a;
        a
    in
    let uses = Use_info.of_arena arena in
    let fresh =
      List.filter
        (fun c ->
          not (Lslp_util.Int_table.mem consumed c.cand_root.Instr.id))
        (collect_candidates ~uses block)
    in
    match fresh with
    | [] -> ()
    | c :: _ -> (
      Lslp_util.Int_table.set consumed c.cand_root.Instr.id 1;
      continue_ := true;
      Option.iter Lslp_robust.Budget.spend_step meter;
      let desc =
        Fmt.str "reduce %s x%d"
          (Opcode.binop_name c.cand_op)
          (List.length c.cand_leaves)
      in
      let deps = Lslp_analysis.Depgraph.build_arena arena in
      match
        plan_candidate ?meter ?probe ?trace ?ids ~deps ~desc config block c
      with
      | None -> on_skipped c
      | Some plan ->
        let accepted = plan.cost < config.Config.threshold in
        Option.iter
          (fun tr ->
            Lslp_trace.Trace.record tr
              (Lslp_trace.Trace.Cost_computed
                 {
                   seed = desc;
                   nodes = List.length (Graph.nodes plan.graph);
                   total = plan.cost;
                   threshold = config.Config.threshold;
                   accepted;
                 }))
          trace;
        let outcome_event outcome =
          Option.iter
            (fun tr ->
              Lslp_trace.Trace.record tr
                (Lslp_trace.Trace.Region_outcome
                   { seed = desc; lanes = plan.lanes; outcome;
                     cost = Some plan.cost }))
            trace
        in
        if accepted then begin
          Lslp_robust.Budget.deadline_tick config.Config.deadline;
          Lslp_robust.Inject.maybe_fail config.Config.inject
            Lslp_robust.Inject.Reduction;
          match
            Codegen.run ~reduction:plan.reduction ?record ?probe ?trace
              ~deps plan.graph block
          with
          | Codegen.Vectorized ->
            ignore (Dce.run_block block);
            cur_arena := None;
            outcome_event "vectorized";
            regions :=
              { root_desc = desc; lanes = plan.lanes; cost = plan.cost;
                vectorized = true; not_schedulable = false }
              :: !regions
          | Codegen.Not_schedulable ->
            outcome_event "not-schedulable";
            regions :=
              { root_desc = desc; lanes = plan.lanes; cost = plan.cost;
                vectorized = false; not_schedulable = true }
              :: !regions
          | Codegen.Failed msg ->
            (* the block may be half-rewritten; abort the transaction the
               caller wrapped around us so it rolls the region back *)
            raise
              (Lslp_robust.Transact.Check_failed
                 { pass = "reduction-codegen"; error = msg })
        end
        else begin
          outcome_event "rejected-cost";
          regions :=
            { root_desc = desc; lanes = plan.lanes; cost = plan.cost;
              vectorized = false; not_schedulable = false }
            :: !regions
        end)
  done;
  List.rev !regions
