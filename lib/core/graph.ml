(* The SLP graph: the core data structure of the algorithm (paper §2.2-2.3).

   Nodes are either vectorizable groups (one scalar instruction per lane),
   multi-nodes (a chain of same-opcode commutative groups, LSLP's §4.2
   extension), or gathers (operand columns that could not be vectorized and
   must be assembled lane by lane).  Children are operand columns, in
   operand order after any reordering. *)

open Lslp_ir

type node = {
  nid : int;
  shape : shape;
  mutable children : node list;
}

and shape =
  | Group of Instr.t array
    (* one vectorizable bundle; children = operand columns (loads: none,
       stores: the stored-value column) *)
  | Multi of multi
    (* a multi-node; children = the reordered frontier operand columns *)
  | Gather of Instr.value array
    (* non-vectorizable column: assembled with buildvec/splat/constant *)

and multi = {
  m_op : Opcode.binop;
  m_groups : Instr.t array list;  (* internal group bundles, root first *)
}

type t = {
  mutable root : node option;
  mutable nodes : node list;             (* creation order, root first *)
  (* insts vectorized by this graph, with their defining node and, when the
     instruction corresponds to a lane of that node's vector value, the
     lane index (multi-node internals have none) *)
  claimed : (int, Instr.t * node * int option) Hashtbl.t;
  by_bundle : (string, node) Hashtbl.t;  (* exact-bundle reuse (diamonds) *)
  ids : Lslp_util.Id_gen.t;
  (* node-id source.  The pipeline threads one generator through every
     graph of a run so nids stay unique run-wide (the DOT exporter names
     nodes [n<nid>] across subgraph clusters); standalone builds get a
     fresh one.  Per-run rather than process-global so concurrent domains
     number their graphs deterministically. *)
}

let create ?ids () =
  let ids =
    match ids with Some g -> g | None -> Lslp_util.Id_gen.create ~first:1 ()
  in
  { root = None; nodes = []; claimed = Hashtbl.create 32;
    by_bundle = Hashtbl.create 16; ids }

(* Key identifying a bundle by the exact per-lane values, used to reuse a
   node when the same column reappears (shared sub-expressions form diamonds
   in the use-def DAG; LLVM's SLP reuses the tree entry the same way). *)
let bundle_key (values : Instr.value array) =
  let value_key (v : Instr.value) =
    match v with
    | Instr.Ins i -> Fmt.str "i%d" i.id
    | Instr.Arg a -> Fmt.str "a%s" a.arg_name
    | Instr.Const (Instr.Cint n) -> Fmt.str "c%Ld" n
    | Instr.Const (Instr.Cfloat x) -> Fmt.str "f%Ld" (Int64.bits_of_float x)
    | Instr.Const (Instr.Cint32 n) -> Fmt.str "d%ld" n
    | Instr.Const (Instr.Cfloat32 x) -> Fmt.str "g%ld" (Int32.bits_of_float x)
  in
  String.concat "," (Array.to_list (Array.map value_key values))

let find_existing g (values : Instr.value array) =
  Hashtbl.find_opt g.by_bundle (bundle_key values)

let register_bundle g (values : Instr.value array) node =
  Hashtbl.replace g.by_bundle (bundle_key values) node

let add_node g shape =
  let n = { nid = Lslp_util.Id_gen.next g.ids; shape; children = [] } in
  g.nodes <- n :: g.nodes;
  if g.root = None then g.root <- Some n;
  (match shape with
   | Group insts ->
     Array.iteri
       (fun lane (i : Instr.t) ->
         Hashtbl.replace g.claimed i.id (i, n, Some lane))
       insts
   | Multi m ->
     List.iteri
       (fun j insts ->
         Array.iteri
           (fun lane (i : Instr.t) ->
             (* only the root bundle's members are lanes of the folded
                vector value; internals are reassociated away *)
             let lane = if j = 0 then Some lane else None in
             Hashtbl.replace g.claimed i.id (i, n, lane))
           insts)
       m.m_groups
   | Gather _ -> ());
  n

let claimed g (i : Instr.t) = Hashtbl.mem g.claimed i.id

let claimed_insts g =
  Hashtbl.fold (fun _ (i, _, _) acc -> i :: acc) g.claimed []

let lane_of g (i : Instr.t) =
  match Hashtbl.find_opt g.claimed i.id with
  | Some (_, n, Some lane) -> Some (n, lane)
  | Some (_, _, None) | None -> None

(* A gather column that is a pure permutation of one vectorized node's
   lanes can be emitted as a single shuffle instead of extracts+inserts. *)
let shuffle_pattern g (values : Instr.value array) :
    (node * int list) option =
  let lanes =
    Array.map
      (fun v ->
        match v with
        | Instr.Ins i -> lane_of g i
        | Instr.Const _ | Instr.Arg _ -> None)
      values
  in
  if Array.for_all Option.is_some lanes then
    match Array.to_list lanes with
    | Some (n0, _) :: _ as all
      when List.for_all
             (function Some (n, _) -> n.nid = n0.nid | None -> false)
             all ->
      Some (n0, List.map (function Some (_, l) -> l | None -> 0) all)
    | _ -> None
  else None

let nodes g = List.rev g.nodes

let root_exn g =
  match g.root with
  | Some r -> r
  | None -> invalid_arg "Graph.root_exn: empty graph"

let lanes_of_node n =
  match n.shape with
  | Group insts -> Array.length insts
  | Multi m ->
    (match m.m_groups with
     | g0 :: _ -> Array.length g0
     | [] -> 0)
  | Gather vs -> Array.length vs

(* All bundles that become one vector instruction each: groups plus every
   internal group of each multi-node. *)
let vector_bundles g =
  List.concat_map
    (fun n ->
      match n.shape with
      | Group insts -> [ insts ]
      | Multi m -> m.m_groups
      | Gather _ -> [])
    (nodes g)

let rec pp_node ppf n =
  let pp_insts ppf insts =
    Fmt.pf ppf "[%a]"
      Fmt.(array ~sep:comma (fun ppf i -> Printer.pp_value ppf (Instr.Ins i)))
      insts
  in
  match n.shape with
  | Group insts ->
    Fmt.pf ppf "@[<v 2>group#%d %s %a%a@]" n.nid
      (Instr.opclass_name (Instr.opclass insts.(0)))
      pp_insts insts pp_children n.children
  | Multi m ->
    Fmt.pf ppf "@[<v 2>multi#%d %s {%a}%a@]" n.nid
      (Opcode.binop_name m.m_op)
      Fmt.(list ~sep:semi pp_insts)
      m.m_groups pp_children n.children
  | Gather vs ->
    Fmt.pf ppf "gather#%d [%a]" n.nid
      Fmt.(array ~sep:comma Printer.pp_value)
      vs

and pp_children ppf = function
  | [] -> ()
  | children ->
    List.iter (fun c -> Fmt.pf ppf "@,%a" pp_node c) children

let pp ppf g =
  match g.root with
  | None -> Fmt.string ppf "<empty graph>"
  | Some r -> pp_node ppf r
