(* The SLP graph: the core data structure of the algorithm (paper §2.2-2.3).

   Nodes are either vectorizable groups (one scalar instruction per lane),
   multi-nodes (a chain of same-opcode commutative groups, LSLP's §4.2
   extension), or gathers (operand columns that could not be vectorized and
   must be assembled lane by lane).  Children are operand columns, in
   operand order after any reordering.

   Representation: nodes live in a growable slot-indexed array and edges
   are int arrays of child slots; instruction claims sit in an
   open-addressing int table keyed by instruction id with the (slot, lane)
   pair packed into one word; bundle identity (diamond reuse) is an
   int-array key — tag and payload words per lane — in a [Key_table]
   instead of a `Fmt.str`-built string.  The [nid] shown in traces and DOT
   output still comes from the per-run [Id_gen]; slots are graph-local and
   never printed. *)

open Lslp_ir
module Int_table = Lslp_util.Int_table
module Key_table = Lslp_util.Key_table
module Intern = Lslp_util.Intern

type node = {
  nid : int;   (* run-unique display id *)
  slot : int;  (* graph-local dense index *)
  shape : shape;
}

and shape =
  | Group of Instr.t array
    (* one vectorizable bundle; children = operand columns (loads: none,
       stores: the stored-value column) *)
  | Multi of multi
    (* a multi-node; children = the reordered frontier operand columns *)
  | Gather of Instr.value array
    (* non-vectorizable column: assembled with buildvec/splat/constant *)

and multi = {
  m_op : Opcode.binop;
  m_groups : Instr.t array list;  (* internal group bundles, root first *)
}

type t = {
  mutable root : node option;
  mutable node_arr : node array;       (* slot -> node, creation order *)
  mutable n_nodes : int;
  mutable child_arr : int array array; (* slot -> child slots *)
  claimed : Int_table.t;               (* instr id -> (slot lsl 8) lor (lane+1) *)
  mutable claim_list : Instr.t list;   (* first-claim order, newest first *)
  by_bundle : Key_table.t;             (* bundle key -> slot *)
  names : Intern.t;                    (* arg names appearing in bundle keys *)
  ids : Lslp_util.Id_gen.t;
  (* node-id source.  The pipeline threads one generator through every
     graph of a run so nids stay unique run-wide (the DOT exporter names
     nodes [n<nid>] across subgraph clusters); standalone builds get a
     fresh one.  Per-run rather than process-global so concurrent domains
     number their graphs deterministically. *)
}

let dummy_node = { nid = -1; slot = -1; shape = Gather [||] }

let create ?ids () =
  let ids =
    match ids with Some g -> g | None -> Lslp_util.Id_gen.create ~first:1 ()
  in
  {
    root = None;
    node_arr = Array.make 16 dummy_node;
    n_nodes = 0;
    child_arr = Array.make 16 [||];
    claimed = Int_table.create 64;
    claim_list = [];
    by_bundle = Key_table.create 32;
    names = Intern.create 8;
    ids;
  }

(* Key identifying a bundle by the exact per-lane values, used to reuse a
   node when the same column reappears (shared sub-expressions form diamonds
   in the use-def DAG; LLVM's SLP reuses the tree entry the same way).
   Three words per lane, injective across value kinds — the same
   distinctions the old string keys drew. *)
let bundle_key g (values : Instr.value array) =
  let n = Array.length values in
  let k = Array.make (3 * n) 0 in
  for j = 0 to n - 1 do
    let a, b, c =
      match values.(j) with
      | Instr.Ins i -> (0, i.Instr.id, 0)
      | Instr.Arg a -> (1, Intern.intern g.names a.Instr.arg_name, 0)
      | Instr.Const (Instr.Cint x) ->
        (2, Int64.to_int (Int64.shift_right_logical x 32),
         Int64.to_int (Int64.logand x 0xFFFFFFFFL))
      | Instr.Const (Instr.Cfloat x) ->
        let bits = Int64.bits_of_float x in
        (3, Int64.to_int (Int64.shift_right_logical bits 32),
         Int64.to_int (Int64.logand bits 0xFFFFFFFFL))
      | Instr.Const (Instr.Cint32 x) -> (4, Int32.to_int x, 0)
      | Instr.Const (Instr.Cfloat32 x) ->
        (5, Int32.to_int (Int32.bits_of_float x), 0)
    in
    k.(3 * j) <- a;
    k.((3 * j) + 1) <- b;
    k.((3 * j) + 2) <- c
  done;
  k

let find_existing g (values : Instr.value array) =
  match Key_table.get g.by_bundle (bundle_key g values) ~absent:(-1) with
  | -1 -> None
  | slot -> Some g.node_arr.(slot)

let register_bundle g (values : Instr.value array) node =
  Key_table.set g.by_bundle (bundle_key g values) node.slot

let grow g =
  let cap = Array.length g.node_arr in
  if g.n_nodes >= cap then begin
    let nodes' = Array.make (2 * cap) dummy_node in
    Array.blit g.node_arr 0 nodes' 0 cap;
    g.node_arr <- nodes';
    let children' = Array.make (2 * cap) [||] in
    Array.blit g.child_arr 0 children' 0 cap;
    g.child_arr <- children'
  end

let claim g (i : Instr.t) slot lane =
  let packed = (slot lsl 8) lor (match lane with Some l -> l + 1 | None -> 0) in
  if not (Int_table.mem g.claimed i.Instr.id) then
    g.claim_list <- i :: g.claim_list;
  Int_table.set g.claimed i.Instr.id packed

let add_node g shape =
  grow g;
  let slot = g.n_nodes in
  let n = { nid = Lslp_util.Id_gen.next g.ids; slot; shape } in
  g.node_arr.(slot) <- n;
  g.n_nodes <- slot + 1;
  if g.root = None then g.root <- Some n;
  (match shape with
   | Group insts ->
     Array.iteri (fun lane i -> claim g i slot (Some lane)) insts
   | Multi m ->
     List.iteri
       (fun j insts ->
         Array.iteri
           (fun lane i ->
             (* only the root bundle's members are lanes of the folded
                vector value; internals are reassociated away *)
             let lane = if j = 0 then Some lane else None in
             claim g i slot lane)
           insts)
       m.m_groups
   | Gather _ -> ());
  n

let claimed g (i : Instr.t) = Int_table.mem g.claimed i.Instr.id

let claimed_insts g = g.claim_list

let set_children g (n : node) kids =
  g.child_arr.(n.slot) <- Array.of_list (List.map (fun c -> c.slot) kids)

let children g (n : node) =
  Array.to_list (Array.map (fun s -> g.node_arr.(s)) g.child_arr.(n.slot))

let child_slots g (n : node) = g.child_arr.(n.slot)
let node_of_slot g slot = g.node_arr.(slot)

let lane_of g (i : Instr.t) =
  match Int_table.get g.claimed i.Instr.id ~absent:(-1) with
  | -1 -> None
  | packed ->
    let lane = packed land 0xff in
    if lane = 0 then None
    else Some (g.node_arr.(packed lsr 8), lane - 1)

(* A gather column that is a pure permutation of one vectorized node's
   lanes can be emitted as a single shuffle instead of extracts+inserts. *)
let shuffle_pattern g (values : Instr.value array) :
    (node * int list) option =
  let lanes =
    Array.map
      (fun v ->
        match v with
        | Instr.Ins i -> lane_of g i
        | Instr.Const _ | Instr.Arg _ -> None)
      values
  in
  if Array.for_all Option.is_some lanes then
    match Array.to_list lanes with
    | Some (n0, _) :: _ as all
      when List.for_all
             (function Some (n, _) -> n.nid = n0.nid | None -> false)
             all ->
      Some (n0, List.map (function Some (_, l) -> l | None -> 0) all)
    | _ -> None
  else None

let node_count g = g.n_nodes

let nodes g =
  let rec go k acc = if k < 0 then acc else go (k - 1) (g.node_arr.(k) :: acc) in
  go (g.n_nodes - 1) []

let root_exn g =
  match g.root with
  | Some r -> r
  | None -> invalid_arg "Graph.root_exn: empty graph"

let lanes_of_node n =
  match n.shape with
  | Group insts -> Array.length insts
  | Multi m ->
    (match m.m_groups with
     | g0 :: _ -> Array.length g0
     | [] -> 0)
  | Gather vs -> Array.length vs

(* All bundles that become one vector instruction each: groups plus every
   internal group of each multi-node. *)
let vector_bundles g =
  List.concat_map
    (fun n ->
      match n.shape with
      | Group insts -> [ insts ]
      | Multi m -> m.m_groups
      | Gather _ -> [])
    (nodes g)

let rec pp_node g ppf n =
  let pp_insts ppf insts =
    Fmt.pf ppf "[%a]"
      Fmt.(array ~sep:comma (fun ppf i -> Printer.pp_value ppf (Instr.Ins i)))
      insts
  in
  match n.shape with
  | Group insts ->
    Fmt.pf ppf "@[<v 2>group#%d %s %a%a@]" n.nid
      (Instr.opclass_name (Instr.opclass insts.(0)))
      pp_insts insts (pp_children g) (children g n)
  | Multi m ->
    Fmt.pf ppf "@[<v 2>multi#%d %s {%a}%a@]" n.nid
      (Opcode.binop_name m.m_op)
      Fmt.(list ~sep:semi pp_insts)
      m.m_groups (pp_children g) (children g n)
  | Gather vs ->
    Fmt.pf ppf "gather#%d [%a]" n.nid
      Fmt.(array ~sep:comma Printer.pp_value)
      vs

and pp_children g ppf = function
  | [] -> ()
  | children -> List.iter (fun c -> Fmt.pf ppf "@,%a" (pp_node g) c) children

let pp ppf g =
  match g.root with
  | None -> Fmt.string ppf "<empty graph>"
  | Some r -> pp_node g ppf r
