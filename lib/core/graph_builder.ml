(* SLP-graph construction (paper Listing 3 / LSLP Listing 4).

   Starting from a seed bundle (consecutive stores), recurse bottom-up
   through operand columns:

   - bundles failing the termination conditions become gather nodes;
   - wide loads are leaves;
   - commutative (and associative) bundles under the LSLP strategy enter
     *coarsening mode*: operand columns with the same opcode whose values do
     not escape are absorbed into the multi-node until the opcode changes, a
     value escapes, or the configured size limit is reached; the collected
     frontier columns are then reordered as one matrix and recursed into
     (*normal mode*);
   - under the SLP / SLP-NR strategies commutative bundles get the vanilla
     (or no) two-operand reorder;
   - everything else recurses in operand order. *)

open Lslp_ir
open Lslp_analysis

type ctx = {
  config : Config.t;
  block : Block.t;
  deps : Depgraph.t;
  uses : Use_info.t;
  graph : Graph.t;
  note : Lslp_check.Remark.note -> unit;
  meter : Lslp_robust.Budget.meter option;
  probe : Lslp_telemetry.Probe.t option;
  trace : Lslp_trace.Trace.t option;
}

let make_ctx ?(note = fun _ -> ()) ?meter ?probe ?trace ?ids ?deps config
    (block : Block.t) =
  (* one arena snapshot serves both analyses; [deps] lets the pipeline
     share the graph it already built for the same un-mutated block *)
  let deps =
    match deps with Some d -> d | None -> Depgraph.build block
  in
  {
    config;
    block;
    deps;
    uses = Use_info.of_arena (Depgraph.arena deps);
    graph = Graph.create ?ids ();
    note;
    meter;
    probe;
    trace;
  }

let classify ctx (b : Bundle.t) =
  Bundle.classify ~block:ctx.block ~deps:ctx.deps
    ~in_graph:(Graph.claimed ctx.graph) b

(* Can this operand value be absorbed into a multi-node of opcode [op]?
   It must be the same commutative+associative opcode and must not escape:
   its only use is its place in the chain (the paper's "operands don't
   escape the multi-node" condition — intermediate values of the chain are
   not preserved by the reassociated vector code). *)
let absorbable ctx ~op (v : Instr.value) =
  match v with
  | Instr.Ins i ->
    (match Instr.binop i with
     | Some bop ->
       Opcode.equal_binop bop op
       && Opcode.is_commutative bop && Opcode.is_associative bop
       && Use_info.has_single_use ctx.uses i
       && Block.mem ctx.block i
       && not (Graph.claimed ctx.graph i)
     | None -> false)
  | Instr.Const _ | Instr.Arg _ -> false

let rec build_bundle ctx (b : Bundle.t) : Graph.node =
  match Graph.find_existing ctx.graph b with
  | Some node -> node (* diamond: the exact same column already has a node *)
  | None -> build_bundle_fresh ctx b

and build_bundle_fresh ctx (b : Bundle.t) : Graph.node =
  Option.iter Lslp_robust.Budget.spend_node ctx.meter;
  Option.iter
    (fun p ->
      let c = Lslp_telemetry.Probe.counters p in
      c.Lslp_telemetry.Probe.graph_nodes <-
        c.Lslp_telemetry.Probe.graph_nodes + 1)
    ctx.probe;
  let register node =
    Graph.register_bundle ctx.graph b node;
    node
  in
  match classify ctx b with
  | Bundle.Rejected reason ->
    ctx.note
      (Lslp_check.Remark.Column_rejected
         { reason = Bundle.reject_to_string reason; count = 1 });
    register (Graph.add_node ctx.graph (Graph.Gather b))
  | Bundle.Vectorizable insts -> (
    let i0 = insts.(0) in
    match i0.Instr.kind with
    | Instr.Load _ -> register (Graph.add_node ctx.graph (Graph.Group insts))
    | Instr.Store _ ->
      let node = register (Graph.add_node ctx.graph (Graph.Group insts)) in
      let col = Bundle.operand_column insts ~index:0 in
      Graph.set_children ctx.graph node [ build_bundle ctx col ];
      node
    | Instr.Unop _ ->
      let node = register (Graph.add_node ctx.graph (Graph.Group insts)) in
      let col = Bundle.operand_column insts ~index:0 in
      Graph.set_children ctx.graph node [ build_bundle ctx col ];
      node
    | Instr.Binop (op, _, _)
      when Opcode.is_commutative op
           && ctx.config.Config.strategy = Config.Lookahead ->
      register (build_multinode ctx insts op)
    | Instr.Binop (op, _, _) when Opcode.is_commutative op ->
      let node = register (Graph.add_node ctx.graph (Graph.Group insts)) in
      Lslp_robust.Budget.deadline_tick ctx.config.Config.deadline;
      Lslp_robust.Inject.maybe_fail ctx.config.Config.inject
        Lslp_robust.Inject.Reorder;
      let left, right =
        match ctx.config.Config.strategy with
        | Config.Vanilla -> Reorder.vanilla_pair insts
        | Config.No_reorder | Config.Lookahead -> Reorder.no_reorder_pair insts
      in
      Graph.set_children ctx.graph node
        [ build_bundle ctx left; build_bundle ctx right ];
      node
    | Instr.Binop (_, _, _) ->
      let node = register (Graph.add_node ctx.graph (Graph.Group insts)) in
      Graph.set_children ctx.graph node
        [ build_bundle ctx (Bundle.operand_column insts ~index:0);
          build_bundle ctx (Bundle.operand_column insts ~index:1) ];
      node
    | Instr.Cmp _ ->
      (* compares recurse in operand order; swapping operands would flip
         the predicate, which the rebuild does not model *)
      let node = register (Graph.add_node ctx.graph (Graph.Group insts)) in
      Graph.set_children ctx.graph node
        [ build_bundle ctx (Bundle.operand_column insts ~index:0);
          build_bundle ctx (Bundle.operand_column insts ~index:1) ];
      node
    | Instr.Select _ ->
      (* the mask column first, then both value arms; the arms are not
         interchangeable (swapping them negates the mask) *)
      let node = register (Graph.add_node ctx.graph (Graph.Group insts)) in
      Graph.set_children ctx.graph node
        [ build_bundle ctx (Bundle.operand_column insts ~index:0);
          build_bundle ctx (Bundle.operand_column insts ~index:1);
          build_bundle ctx (Bundle.operand_column insts ~index:2) ];
      node
    | Instr.Masked_load _ ->
      (* a leaf for the memory side, but the mask and passthrough columns
         are ordinary operands and recurse *)
      let node = register (Graph.add_node ctx.graph (Graph.Group insts)) in
      Graph.set_children ctx.graph node
        [ build_bundle ctx (Bundle.operand_column insts ~index:0);
          build_bundle ctx (Bundle.operand_column insts ~index:1) ];
      node
    | Instr.Masked_store _ ->
      let node = register (Graph.add_node ctx.graph (Graph.Group insts)) in
      Graph.set_children ctx.graph node
        [ build_bundle ctx (Bundle.operand_column insts ~index:0);
          build_bundle ctx (Bundle.operand_column insts ~index:1) ];
      node
    | Instr.Splat _ | Instr.Buildvec _ | Instr.Extract _ | Instr.Reduce _
    | Instr.Shuffle _ ->
      (* excluded by Bundle.classify (Unsupported_shape) *)
      assert false)

(* Listing 4 / Figure 6: coarsening mode.

   Per lane, absorb the maximal same-opcode single-use chain rooted at that
   lane's instruction (depth-first, operand order), collecting the frontier
   leaves.  Lanes may have differently-shaped chains (the associativity
   mismatch of §3.3); they are trimmed to the smallest per-lane chain size
   so the frontier matrix is rectangular: k chain ops per lane always leave
   exactly k+1 leaves.  The internal ops are bundled lane-wise in discovery
   order — which ops pair up is irrelevant because the vector code is
   regenerated as one fold over the reordered frontier. *)
and build_multinode ctx (root_insts : Instr.t array) (op : Opcode.binop) =
  let config_limit = Config.multinode_limit ctx.config in
  let capped = ref false in
  let collect_lane ?(flag_capped = false) ~limit (root : Instr.t) =
    let ops = ref [ root ] in
    let count = ref 1 in
    let leaves = ref [] in
    let rec go (i : Instr.t) =
      List.iter
        (fun v ->
          let can = absorbable ctx ~op v in
          if can && !count < limit then begin
            match v with
            | Instr.Ins child ->
              ops := child :: !ops;
              incr count;
              go child
            | Instr.Const _ | Instr.Arg _ -> assert false
          end
          else begin
            if can && flag_capped && limit < max_int then capped := true;
            leaves := v :: !leaves
          end)
        (Instr.operands i)
    in
    go root;
    (List.rev !ops, List.rev !leaves)
  in
  let limit = if Opcode.is_associative op then config_limit else 1 in
  let maximal =
    Array.map
      (fun r ->
        collect_lane ~flag_capped:(Opcode.is_associative op) ~limit r)
      root_insts
  in
  let k =
    Array.fold_left
      (fun acc (ops, _) -> min acc (List.length ops))
      max_int maximal
  in
  let trimmed =
    if Array.for_all (fun (ops, _) -> List.length ops = k) maximal then
      maximal
    else Array.map (fun r -> collect_lane ~limit:k r) root_insts
  in
  (* lane-wise bundles of internal ops, in discovery order *)
  let m_groups =
    List.init k (fun j ->
        Array.map (fun (ops, _) -> List.nth ops j) trimmed)
  in
  (* frontier matrix: slot s, lane l = l-th lane's s-th leaf *)
  let matrix =
    Array.init (k + 1) (fun s ->
        Array.map (fun (_, leaves) -> List.nth leaves s) trimmed)
  in
  if !capped then
    ctx.note (Lslp_check.Remark.Multinode_capped { limit = config_limit });
  let reordered =
    match ctx.config.Config.strategy with
    | Config.Lookahead ->
      Lslp_robust.Budget.deadline_tick ctx.config.Config.deadline;
      Lslp_robust.Inject.maybe_fail ctx.config.Config.inject
        Lslp_robust.Inject.Reorder;
      let m, modes =
        Reorder.reorder_matrix_modes ?meter:ctx.meter ?probe:ctx.probe
          ?trace:ctx.trace ctx.config matrix
      in
      let failed =
        Array.fold_left
          (fun acc mode -> if mode = Reorder.Failed_mode then acc + 1 else acc)
          0 modes
      in
      if failed > 0 then
        ctx.note (Lslp_check.Remark.Operand_mode_failed { slots = failed });
      m
    | Config.Vanilla | Config.No_reorder -> matrix
  in
  let node =
    Graph.add_node ctx.graph (Graph.Multi { Graph.m_op = op; m_groups })
  in
  Graph.set_children ctx.graph node
    (List.map (build_bundle ctx) (Array.to_list reordered));
  node

(* Replay the finished graph into the trace as Graph_* events: node shapes
   with per-lane scalars, operand edges with slot numbers, and the Depgraph
   dependence overlay lifted to node level (direct operand edges elided so
   the overlay only shows the constraints the tree doesn't).  The DOT
   exporter reconstructs Fig. 6/7 diagrams from these events alone. *)
let record_graph ctx ~desc =
  Option.iter
    (fun tr ->
      let gid = Lslp_trace.Trace.fresh_gid tr in
      Lslp_trace.Trace.record tr
        (Lslp_trace.Trace.Graph_start { gid; seed = desc () });
      let nodes = Graph.nodes ctx.graph in
      let lane_text v = Fmt.str "%a" Printer.pp_value v in
      let inst_text (i : Instr.t) = lane_text (Instr.Ins i) in
      List.iter
        (fun (n : Graph.node) ->
          let kind, bundles =
            match n.Graph.shape with
            | Graph.Group insts ->
              ( Lslp_trace.Trace.Knode_group
                  (Instr.opclass_name (Instr.opclass insts.(0))),
                [ Array.to_list (Array.map inst_text insts) ] )
            | Graph.Multi { Graph.m_op; m_groups } ->
              ( Lslp_trace.Trace.Knode_multi (Opcode.binop_name m_op),
                List.map
                  (fun g -> Array.to_list (Array.map inst_text g))
                  m_groups )
            | Graph.Gather values ->
              ( Lslp_trace.Trace.Knode_gather,
                [ Array.to_list (Array.map lane_text values) ] )
          in
          Lslp_trace.Trace.record tr
            (Lslp_trace.Trace.Graph_node
               { gid; nid = n.Graph.nid; kind; bundles }))
        nodes;
      let child_pairs = Lslp_util.Key_table.create 16 in
      let pair_key a b = [| a; b |] in
      List.iter
        (fun (n : Graph.node) ->
          List.iteri
            (fun slot (c : Graph.node) ->
              Lslp_util.Key_table.set child_pairs
                (pair_key n.Graph.nid c.Graph.nid) 1;
              Lslp_trace.Trace.record tr
                (Lslp_trace.Trace.Graph_edge
                   { gid; parent = n.Graph.nid; child = c.Graph.nid; slot }))
            (Graph.children ctx.graph n))
        nodes;
      let insts_of (n : Graph.node) =
        match n.Graph.shape with
        | Graph.Group insts -> Array.to_list insts
        | Graph.Multi { Graph.m_groups; _ } ->
          List.concat_map Array.to_list m_groups
        | Graph.Gather _ -> []
      in
      List.iter
        (fun (a : Graph.node) ->
          List.iter
            (fun (b : Graph.node) ->
              if
                a.Graph.nid <> b.Graph.nid
                && (not
                      (Lslp_util.Key_table.mem child_pairs
                         (pair_key a.Graph.nid b.Graph.nid)))
                && List.exists
                     (fun ia ->
                       List.exists
                         (fun ib -> Depgraph.depends ctx.deps ia ~on:ib)
                         (insts_of b))
                     (insts_of a)
              then
                Lslp_trace.Trace.record tr
                  (Lslp_trace.Trace.Dep_edge
                     { gid; src = a.Graph.nid; dst = b.Graph.nid }))
            nodes)
        nodes)
    ctx.trace

let build ?note ?meter ?probe ?trace ?ids ?deps config (block : Block.t)
    (seed : Instr.t array) =
  let ctx = make_ctx ?note ?meter ?probe ?trace ?ids ?deps config block in
  let root = build_bundle ctx (Bundle.of_insts seed) in
  (* [desc] is a thunk so the Fmt/Affine pretty-print only runs when a
     trace is attached *)
  record_graph ctx ~desc:(fun () -> Seeds.describe seed);
  (ctx.graph, root)

(* Entry point for reduction vectorization: build one node per leaf chunk
   within a single shared graph (so diamonds across chunks still reuse). *)
let build_columns ?note ?meter ?probe ?trace ?ids ?deps
    ?(desc = "reduction") config (block : Block.t)
    (columns : Bundle.t list) =
  let ctx = make_ctx ?note ?meter ?probe ?trace ?ids ?deps config block in
  let nodes = List.map (build_bundle ctx) columns in
  record_graph ctx ~desc:(fun () -> desc);
  (ctx.graph, nodes)
