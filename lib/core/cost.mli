(** Cost evaluation of an SLP graph against the configured cost model
    (vector savings per bundle + gather costs + external-use extracts). *)

open Lslp_ir

type node_cost = {
  nid : int;
  description : string;
  cost : int;
}

type summary = {
  per_node : node_cost list;
  extract_cost : int;
  total : int;
}

val bundle_cost : Lslp_costmodel.Model.t -> Instr.t array -> int
(** [vector_cost - Σ scalar_cost] for one bundle (negative = saving). *)

val evaluate :
  ?ignore_users:(Instr.t -> bool) ->
  ?uses:Use_info.t ->
  Config.t ->
  Graph.t ->
  Block.t ->
  summary
(** [ignore_users] marks instructions about to be deleted by the caller
    (e.g. a reduction chain), whose uses must not be charged extracts.
    [uses] shares def-use info (an arena snapshot) already computed for
    the same un-mutated block; a fresh snapshot is taken otherwise. *)

val profitable : Config.t -> summary -> bool
(** [summary.total < config.threshold]. *)

val pp_summary : summary Fmt.t
