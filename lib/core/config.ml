(* Vectorizer configuration: selects between the paper's four compiler
   configurations (O3 / SLP-NR / SLP / LSLP) and exposes the two knobs of the
   sensitivity study (Figure 13): look-ahead depth and multi-node size. *)

type reorder_strategy =
  | No_reorder   (* SLP-NR: accept operands as written *)
  | Vanilla      (* SLP: LLVM-4.0-style opcode/splat/consecutive-load swap *)
  | Lookahead    (* LSLP: multi-nodes + mode-driven look-ahead reordering *)

type score_combine = Score_sum | Score_max

type t = {
  name : string;
  strategy : reorder_strategy;
  lookahead_depth : int;
  (* Maximum number of group nodes a multi-node may absorb; [None] is
     unlimited, [Some 1] disables coarsening (the root alone). *)
  max_multinode_groups : int option;
  max_lanes : int option;  (* cap below the target's native width, if any *)
  threshold : int;         (* vectorize iff total cost < threshold *)
  score_combine : score_combine;
  (* Memoize the recursive look-ahead score within each reorder invocation
     (keyed by instr ids + remaining depth + combine mode).  Observationally
     invisible — same operand orders, same IR, same remarks — it only cuts
     repeated score evaluations; the differential test layer proves it. *)
  score_cache : bool;
  model : Lslp_costmodel.Model.t;
  reductions : bool;       (* also vectorize horizontal reduction chains *)
  validate : bool;         (* run the post-pass legality validator *)
  remarks : bool;          (* collect per-region optimization remarks *)
  (* Decision tracing: record the structured event stream (seeds, graph
     shape, per-slot modes, get_best scores, cost verdicts, rollbacks) in
     [Pipeline.report.trace_events].  Default off; the off-path allocates
     no sink and produces byte-identical output. *)
  trace : bool;
  (* Fail-soft knobs: resource caps that make pathological inputs degrade
     instead of hanging, and the fault-injection hook the robustness tests
     and [lslpc --inject] use to force rollbacks at pass boundaries. *)
  budget : Lslp_robust.Budget.t;
  inject : Lslp_robust.Inject.t option;
  (* Per-job cooperative deadline (the compile service's watchdog): ticked
     at the same pass boundaries [inject] instruments; [None] everywhere
     except inside a service worker.  Expiry cancels the job — see
     Budget.Deadline_expired and the deadline-vs-fuel contract in
     DESIGN.md §15. *)
  deadline : Lslp_robust.Budget.deadline option;
}

let default_model = Lslp_costmodel.Model.skylake_avx2

let lslp =
  {
    name = "LSLP";
    strategy = Lookahead;
    lookahead_depth = 8;
    max_multinode_groups = None;
    max_lanes = None;
    threshold = 0;
    score_combine = Score_sum;
    score_cache = true;
    model = default_model;
    reductions = true;
    validate = false;
    remarks = false;
    trace = false;
    budget = Lslp_robust.Budget.default;
    inject = None;
    deadline = None;
  }

let slp = { lslp with name = "SLP"; strategy = Vanilla }

let slp_nr = { lslp with name = "SLP-NR"; strategy = No_reorder }

let lslp_la depth =
  { lslp with name = Fmt.str "LSLP-LA%d" depth; lookahead_depth = depth }

let lslp_multi groups =
  {
    lslp with
    name = Fmt.str "LSLP-Multi%d" groups;
    max_multinode_groups = Some groups;
  }

let with_model model t = { t with model }
let with_threshold threshold t = { t with threshold }
let with_max_lanes n t = { t with max_lanes = Some n }
let with_score_combine score_combine t = { t with score_combine }
let with_score_cache score_cache t = { t with score_cache }
let with_reductions reductions t = { t with reductions }
let with_validate validate t = { t with validate }
let with_remarks remarks t = { t with remarks }
let with_trace trace t = { t with trace }
let with_budget budget t = { t with budget }
let with_inject inject t = { t with inject = Some inject }
let with_deadline deadline t = { t with deadline = Some deadline }

let effective_max_lanes t elt =
  let native = Lslp_costmodel.Model.max_lanes t.model elt in
  match t.max_lanes with Some cap -> min cap native | None -> native

let multinode_limit t =
  match t.max_multinode_groups with Some n -> max 1 n | None -> max_int

(* Everything that can change the *output* of a compile, flattened into a
   stable string: one half of the service's content-addressed cache key
   (the other half is the normalized input IR).  [inject] and [deadline]
   are deliberately excluded — the service never caches a run that had an
   injector armed or that failed its deadline, and a run that beat its
   deadline is byte-identical to one with no deadline at all.  [trace] and
   observability flags are excluded for the same reason: they do not touch
   the IR, and the cache stores IR. *)
let fingerprint t =
  let b = Buffer.create 96 in
  let add s =
    Buffer.add_string b s;
    Buffer.add_char b ';'
  in
  add t.name;
  add
    (match t.strategy with
     | No_reorder -> "no-reorder"
     | Vanilla -> "vanilla"
     | Lookahead -> "lookahead");
  add (string_of_int t.lookahead_depth);
  add
    (match t.max_multinode_groups with
     | Some n -> string_of_int n
     | None -> "inf");
  add
    (match t.max_lanes with Some n -> string_of_int n | None -> "native");
  add (string_of_int t.threshold);
  add (match t.score_combine with Score_sum -> "sum" | Score_max -> "max");
  add (string_of_bool t.score_cache);
  add t.model.Lslp_costmodel.Model.target_name;
  add (string_of_bool t.reductions);
  add (string_of_bool t.validate);
  add (string_of_bool t.remarks);
  add (Fmt.str "%a" Lslp_robust.Budget.pp t.budget);
  Buffer.contents b

let pp ppf t = Fmt.string ppf t.name
