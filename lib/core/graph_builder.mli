(** SLP-graph construction: the paper's Listing 3 with LSLP's Listing-4
    multi-node coarsening, parameterized by the reordering strategy. *)

open Lslp_ir

val build :
  ?note:(Lslp_check.Remark.note -> unit) ->
  ?meter:Lslp_robust.Budget.meter ->
  ?probe:Lslp_telemetry.Probe.t ->
  ?trace:Lslp_trace.Trace.t ->
  ?ids:Lslp_util.Id_gen.t ->
  ?deps:Lslp_analysis.Depgraph.t ->
  Config.t ->
  Block.t ->
  Instr.t array ->
  Graph.t * Graph.node
(** Build the graph rooted at the given seed bundle (usually consecutive
    stores) within one block.  Pure with respect to the IR: nothing is
    mutated.
    [note] receives one event per rejected column, capped multi-node and
    FAILED reorder slot, for the remarks engine.
    [meter] charges one node per fresh bundle and look-ahead fuel per
    reorder comparison; when a cap is hit the build raises
    [Lslp_robust.Budget.Exhausted] (the pipeline degrades the region).
    May also raise [Lslp_robust.Inject.Fault] when the config arms fault
    injection at the reorder boundary.
    [probe] counts fresh graph nodes and score evaluations.
    [ids] is the node-id source threaded by the pipeline so nids stay
    unique and deterministic per run (fresh per build otherwise).
    [deps] shares a dependence graph (and its arena snapshot) already
    built for the same un-mutated block; a fresh one is built otherwise.
    [trace] records the finished graph ([Graph_start]/[Graph_node]/
    [Graph_edge]/[Dep_edge]) plus the reorder decisions made along the
    way. *)

val build_columns :
  ?note:(Lslp_check.Remark.note -> unit) ->
  ?meter:Lslp_robust.Budget.meter ->
  ?probe:Lslp_telemetry.Probe.t ->
  ?trace:Lslp_trace.Trace.t ->
  ?ids:Lslp_util.Id_gen.t ->
  ?deps:Lslp_analysis.Depgraph.t ->
  ?desc:string ->
  Config.t ->
  Block.t ->
  Bundle.t list ->
  Graph.t * Graph.node list
(** Build one node per value column within a single shared graph — the
    entry point reduction vectorization uses for its leaf chunks.
    [desc] labels the graph's [Graph_start] trace event (default
    ["reduction"]). *)
