(** The SLP graph — the algorithm's core data structure.

    Nodes are vectorizable groups, LSLP multi-nodes (chains of same-opcode
    commutative groups), or gathers.  Children are operand columns in operand
    order (post-reordering), stored as int arrays of node slots; claims and
    bundle identity live in int-keyed open-addressing tables.  A node's
    [nid] is its run-unique display id; its [slot] is the graph-local dense
    index that the edge arrays are indexed by — slots never appear in
    output. *)

open Lslp_ir

type node = private {
  nid : int;   (** run-unique display id (traces, DOT) *)
  slot : int;  (** graph-local dense index *)
  shape : shape;
}

and shape =
  | Group of Instr.t array
  | Multi of multi
  | Gather of Instr.value array

and multi = {
  m_op : Opcode.binop;
  m_groups : Instr.t array list;  (** internal group bundles, root first *)
}

type t

val create : ?ids:Lslp_util.Id_gen.t -> unit -> t
(** [ids] is the node-id source.  The pipeline threads one generator
    through every graph of a run, keeping nids unique run-wide (the DOT
    exporter names nodes [n<nid>] across subgraph clusters) and
    deterministic per run regardless of how many runs share the process.
    Without it a fresh generator starts at 1. *)

val add_node : t -> shape -> node
(** Create a node, record it, claim its instructions; the first node added
    becomes the root. *)

val set_children : t -> node -> node list -> unit
(** Set a node's operand columns (stored as an int array of slots). *)

val children : t -> node -> node list
val child_slots : t -> node -> int array
val node_of_slot : t -> int -> node

val claimed : t -> Instr.t -> bool
(** Has this instruction been absorbed into a vectorizable group? O(1). *)

val lane_of : t -> Instr.t -> (node * int) option
(** The node and lane whose vector value carries this claimed instruction's
    result ([None] for multi-node internals, which are reassociated away). *)

val shuffle_pattern : t -> Instr.value array -> (node * int list) option
(** When a gather column is a pure permutation of one vectorized node's
    lanes, the node and the permutation (emitted as a single shuffle). *)

val find_existing : t -> Instr.value array -> node option
(** Node previously registered for exactly this per-lane value bundle
    (diamond reuse). *)

val register_bundle : t -> Instr.value array -> node -> unit

val claimed_insts : t -> Instr.t list
(** The claimed instructions, each once, in no particular order. *)

val nodes : t -> node list
(** Creation order, root first. *)

val node_count : t -> int
(** Number of nodes; slots are exactly [0 .. node_count - 1]. *)

val root_exn : t -> node
val lanes_of_node : node -> int

val vector_bundles : t -> Instr.t array list
(** Every bundle that will become one vector instruction (groups and
    multi-node internals). *)

val pp_node : t -> node Fmt.t
val pp : t Fmt.t
