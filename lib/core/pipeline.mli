(** The (L)SLP pass driver — the flowchart of the paper's Figure 1.

    Per basic block of the function: repeatedly collect seeds, build the
    graph for the next unconsumed seed, cost it, vectorize when profitable.
    Transforms the function in place; every region record names the block
    it lives in via [region_id]. *)

open Lslp_ir

type region = {
  region_id : string;  (** label of the basic block holding this region *)
  seed_desc : string;
  lanes : int;
  cost : Cost.summary;
  vectorized : bool;
  not_schedulable : bool;
}

type report = {
  config_name : string;
  regions : region list;
  total_cost : int;
  vectorized_regions : int;
  remarks : Lslp_check.Remark.t list;
      (** one per region considered; empty unless [config.remarks] *)
  diagnostics : Lslp_check.Diagnostic.t list;
      (** legality/verifier findings; empty unless [config.validate] *)
}

val run : ?config:Config.t -> Func.t -> report
(** Run on [f], mutating it.  [config] defaults to {!Config.lslp}.
    With [config.validate] the pre-pass dependence graph is snapshotted and
    the transformed function is checked against it ({!Lslp_check.Legality});
    the structural verifier also runs after codegen, reduction, CSE and DCE,
    attributing any new error to the pass that introduced it. *)

val run_cloned : ?config:Config.t -> Func.t -> report * Func.t
(** Like {!run} but on a deep copy, leaving the input untouched. *)

val pp_report : report Fmt.t
