(** The (L)SLP pass driver — the flowchart of the paper's Figure 1.

    Repeatedly: collect seeds, build the graph for the next unconsumed seed,
    cost it, vectorize when profitable.  Transforms the function in place. *)

open Lslp_ir

type region = {
  seed_desc : string;
  lanes : int;
  cost : Cost.summary;
  vectorized : bool;
  not_schedulable : bool;
}

type report = {
  config_name : string;
  regions : region list;
  total_cost : int;
  vectorized_regions : int;
}

val run : ?config:Config.t -> Func.t -> report
(** Run on [f], mutating it.  [config] defaults to {!Config.lslp}. *)

val run_cloned : ?config:Config.t -> Func.t -> report * Func.t
(** Like {!run} but on a deep copy, leaving the input untouched. *)

val pp_report : report Fmt.t
