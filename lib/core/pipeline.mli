(** The (L)SLP pass driver — the flowchart of the paper's Figure 1.

    Per basic block of the function: repeatedly collect seeds, build the
    graph for the next unconsumed seed, cost it, vectorize when profitable.
    Transforms the function in place; every region record names the block
    it lives in via [region_id].

    {!run} is fail-soft: each region transforms inside a transactional
    snapshot ({!Lslp_robust.Transact}), so malformed graphs, resource-budget
    exhaustion ({!Lslp_robust.Budget}), injected faults
    ({!Lslp_robust.Inject}) and structural-verifier findings roll the region
    back to its scalar form and surface as a [Degraded] outcome — they never
    raise out of the pipeline.  A whole-function snapshot backstops driver
    bugs the same way.  Only [Out_of_memory] and [Sys.Break] propagate. *)

open Lslp_ir

type region_outcome =
  | Vectorized
  | Scalar      (** kept scalar: unprofitable or not schedulable *)
  | Degraded of string
      (** a pass failed; the region was rolled back to scalar.  The string
          is ["pass: error"], e.g. ["codegen: injected fault"]. *)

type region = {
  region_id : string;  (** label of the basic block holding this region *)
  seed_desc : string;
  lanes : int;
  cost : Cost.summary;
  vectorized : bool;
  not_schedulable : bool;
  outcome : region_outcome;
}

type report = {
  config_name : string;
  regions : region list;
  total_cost : int;
  vectorized_regions : int;
  degraded_regions : int;
      (** regions rolled back by a failure; 0 on any healthy run *)
  remarks : Lslp_check.Remark.t list;
      (** one per region considered; empty unless [config.remarks] *)
  diagnostics : Lslp_check.Diagnostic.t list;
      (** legality/verifier findings; empty unless [config.validate] *)
  telemetry : Lslp_telemetry.Report.t;
      (** per-block counters and pass timers, always collected.  Counters
          measure work performed — a rolled-back attempt keeps its score
          evaluations and graph nodes; only [instrs_emitted],
          [regions_vectorized] and [regions_degraded] reflect committed
          outcomes. *)
  trace_events : Lslp_trace.Trace.event list;
      (** the decision trace in recording order; empty unless
          [config.trace].  Events recorded before a whole-function failure
          survive into the degraded report.  Render with the
          {!Lslp_trace.Trace} exporters. *)
}

val run :
  ?metrics:Lslp_telemetry.Pass_metrics.t -> ?config:Config.t -> Func.t ->
  report
(** Run on [f], mutating it.  [config] defaults to {!Config.lslp}.
    With [metrics], the finished report is folded into the registry
    ([Pass_metrics.observe]) before returning — counters, step
    histograms and folded stacks; zero cost and output-invariant when
    omitted.
    With [config.validate] the pre-pass dependence graph is snapshotted and
    the transformed function is checked against it ({!Lslp_check.Legality});
    the structural verifier also runs after codegen, reduction, CSE and DCE,
    attributing any new error to the pass that introduced it.

    Independent of [validate], every freshly transformed block is checked by
    the structural verifier *inside* its transaction: a finding aborts and
    rolls back that region (degrading it) instead of producing a diagnostic
    on a miscompiled function. *)

val run_cloned :
  ?metrics:Lslp_telemetry.Pass_metrics.t -> ?config:Config.t -> Func.t ->
  report * Func.t
(** Like {!run} but on a deep copy, leaving the input untouched. *)

val pp_report : report Fmt.t
(** Renders like the pre-fail-soft format; the degraded count and per-region
    [\[degraded: ...\]] markers only appear when something degraded. *)
