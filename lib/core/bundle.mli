(** Bundles: one candidate value per vector lane, plus the paper's
    termination conditions for growing the SLP graph. *)

open Lslp_ir
open Lslp_analysis

type t = Instr.value array

type reject_reason =
  | Not_all_instructions
  | Not_isomorphic
  | Duplicate_member
  | Different_block
  | Not_schedulable
  | Already_in_graph
  | Non_consecutive_loads
  | Unsupported_shape

val reject_to_string : reject_reason -> string

type verdict =
  | Vectorizable of Instr.t array
  | Rejected of reject_reason

val classify :
  block:Block.t ->
  deps:Depgraph.t ->
  in_graph:(Instr.t -> bool) ->
  t ->
  verdict
(** The full termination-condition check (Section 2.3, footnote 1): scalar
    instructions, isomorphic, unique, same block, mutually independent, not
    yet claimed; memory bundles must be consecutive runs. *)

val instructions : t -> Instr.t array option
val of_insts : Instr.t array -> t

val operand_column : Instr.t array -> index:int -> t
(** Column [index] of the operand matrix: the [index]-th operand of each
    lane. *)

val loads_consecutive : Instr.t array -> bool
val pp : t Fmt.t
