(* Bundles: one candidate value per vector lane.

   [classify] implements the paper's termination conditions for growing the
   SLP graph (Section 2.3, footnote 1): the values must all be scalar
   instructions, isomorphic (same opcode class), unique, in the same basic
   block, schedulable as a unit, and not already claimed by the graph.
   Loads additionally need consecutive addresses to become a wide load. *)

open Lslp_ir
open Lslp_analysis

type t = Instr.value array

type reject_reason =
  | Not_all_instructions
  | Not_isomorphic
  | Duplicate_member
  | Different_block
  | Not_schedulable
  | Already_in_graph
  | Non_consecutive_loads
  | Unsupported_shape     (* e.g. vector-typed or effectful non-store *)

let reject_to_string = function
  | Not_all_instructions -> "not all members are instructions"
  | Not_isomorphic -> "members have different opcodes"
  | Duplicate_member -> "the same instruction appears in two lanes"
  | Different_block -> "members live in different blocks"
  | Not_schedulable -> "members depend on one another"
  | Already_in_graph -> "a member is already part of the graph"
  | Non_consecutive_loads -> "loads do not access consecutive memory"
  | Unsupported_shape -> "instruction shape is not vectorizable"

type verdict =
  | Vectorizable of Instr.t array
  | Rejected of reject_reason

let instructions (b : t) : Instr.t array option =
  let insts =
    Array.map
      (fun v -> match v with Instr.Ins i -> Some i | Instr.Const _ | Instr.Arg _ -> None)
      b
  in
  if Array.for_all Option.is_some insts then Some (Array.map Option.get insts)
  else None

let all_same_opclass insts =
  let c0 = Instr.opclass insts.(0) in
  Array.for_all (fun i -> Instr.equal_opclass (Instr.opclass i) c0) insts

let has_duplicates insts =
  let n = Array.length insts in
  let dup = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Instr.equal insts.(i) insts.(j) then dup := true
    done
  done;
  !dup

let loads_consecutive insts =
  let addrs =
    Array.to_list insts |> List.filter_map Instr.address
  in
  List.length addrs = Array.length insts && Addr.consecutive_run addrs

(* Shapes the code generator knows how to widen. *)
let widenable (i : Instr.t) =
  match i.kind with
  | Instr.Binop _ | Instr.Unop _ | Instr.Load _ | Instr.Store _
  | Instr.Cmp _ | Instr.Select _ | Instr.Masked_load _
  | Instr.Masked_store _ ->
    not (Types.is_vector i.ty)
  | Instr.Splat _ | Instr.Buildvec _ | Instr.Extract _ | Instr.Reduce _
  | Instr.Shuffle _ -> false

let classify ~(block : Block.t) ~(deps : Depgraph.t)
    ~(in_graph : Instr.t -> bool) (b : t) : verdict =
  match instructions b with
  | None -> Rejected Not_all_instructions
  | Some insts ->
    if not (Array.for_all widenable insts) then Rejected Unsupported_shape
    else if not (all_same_opclass insts) then Rejected Not_isomorphic
    else if has_duplicates insts then Rejected Duplicate_member
    else if not (Array.for_all (Block.mem block) insts) then
      Rejected Different_block
    else if Array.exists in_graph insts then Rejected Already_in_graph
    else if not (Depgraph.independent deps (Array.to_list insts)) then
      Rejected Not_schedulable
    else if Instr.is_load insts.(0) && not (loads_consecutive insts) then
      Rejected Non_consecutive_loads
    else if Instr.is_store insts.(0) && not (loads_consecutive insts) then
      Rejected Non_consecutive_loads
    else Vectorizable insts

let of_insts insts = Array.map (fun i -> Instr.Ins i) insts

let operand_column (insts : Instr.t array) ~index : t =
  Array.map
    (fun i ->
      match List.nth_opt (Instr.operands i) index with
      | Some v -> v
      | None -> invalid_arg "Bundle.operand_column: operand index out of range")
    insts

let pp ppf (b : t) =
  Fmt.pf ppf "[%a]"
    Fmt.(array ~sep:comma Lslp_ir.Printer.pp_value)
    b
