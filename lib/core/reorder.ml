(* Operand reordering.

   Three strategies, matching the paper's compiler configurations:

   - [no_reorder]: SLP-NR — operands as written.
   - [vanilla]: SLP — a faithful port of LLVM 4.0's
     reorderInputsAccordingToOpcode/shouldReorderOperands, including the
     peeled first lane ("favor having instruction to the right"), the
     Splat/AllSameOpcode flags, and the trailing consecutive-load pass.
   - [lookahead]: LSLP §4.3-4.4 — a single left-to-right pass over the
     (operand-slot × lane) matrix with per-slot modes
     (CONST/LOAD/OPCODE/SPLAT/FAILED, Table 1) and the recursive look-ahead
     score of Listing 7 to break ties between same-opcode candidates. *)

open Lslp_ir
open Lslp_analysis

type mode = Const_mode | Load_mode | Opcode_mode | Splat_mode | Failed_mode

let mode_to_string = function
  | Const_mode -> "CONST"
  | Load_mode -> "LOAD"
  | Opcode_mode -> "OPCODE"
  | Splat_mode -> "SPLAT"
  | Failed_mode -> "FAILED"

(* The paper's are_consecutive_or_match: constants match constants, loads
   match consecutive loads, other instructions match on opcode class. *)
let consecutive_or_match (v1 : Instr.value) (v2 : Instr.value) =
  match (v1, v2) with
  | Instr.Const _, Instr.Const _ -> true
  | Instr.Arg _, Instr.Arg _ -> Instr.equal_value v1 v2
  | Instr.Ins a, Instr.Ins b -> (
    match (Instr.address a, Instr.address b) with
    | Some aa, Some ab when Instr.is_load a && Instr.is_load b ->
      Addr.consecutive aa ab
    | _ -> Instr.equal_opclass (Instr.opclass a) (Instr.opclass b))
  | (Instr.Const _ | Instr.Arg _ | Instr.Ins _), _ -> false

(* Per-pair base score.  The paper's are_consecutive_or_match is boolean;
   we grade it slightly so that ties between isomorphic sub-DAGs that share
   subexpressions resolve toward splat-friendly pairings:
   - identical values (same instruction / argument / constant) ..... 2
   - consecutive loads ............................................. 2
   - non-consecutive loads ......................................... 0
   - two constants / same-opcode instructions ...................... 1
   This mirrors the graded scores the production LLVM look-ahead heuristic
   eventually adopted (ScoreConsecutiveLoads/ScoreSplat vs ScoreSameOpcode)
   and preserves the paper's Figure 7 ranking. *)
let pair_score (v1 : Instr.value) (v2 : Instr.value) =
  if Instr.equal_value v1 v2 then 2
  else
    match (v1, v2) with
    | Instr.Const _, Instr.Const _ -> 1
    | Instr.Ins a, Instr.Ins b when Instr.is_load a && Instr.is_load b -> (
      match (Instr.address a, Instr.address b) with
      | Some aa, Some ab when Addr.consecutive aa ab -> 2
      | _ -> 0)
    | Instr.Ins a, Instr.Ins b ->
      if Instr.equal_opclass (Instr.opclass a) (Instr.opclass b) then 1 else 0
    | (Instr.Const _ | Instr.Arg _ | Instr.Ins _), _ -> 0

(* Listing 7: the look-ahead score.  Recurses through pairs of same-opcode
   instructions with operands.  The per-level combination is the score of
   the best *bijective* pairing of the two operand lists (for a commutative
   binary op: the better of the two diagonal pairings) — pairing each
   operand with its best counterpart is what the reorder will actually be
   able to realize, and an all-pairs sum would spuriously reward repeated
   operands (x*x vs x*y).  [Score_max] is the footnote-4 alternative: the
   single best pair instead of the pairing sum.

   [cache] memoizes instruction/instruction comparisons on (id, id,
   remaining level, combine mode) — sound as long as the operand DAG is
   frozen, which holds for the lifetime of one reorder invocation (see
   Lslp_telemetry.Score_cache).  A cache hit skips the recursion entirely
   and therefore burns no look-ahead fuel: under a tight budget the cached
   run can only get further than the uncached one, never less far.
   [probe] counts evaluations and cache hits/misses. *)
let combine_tag = function Config.Score_sum -> 0 | Config.Score_max -> 1

let rec lookahead_score ?meter ?cache ?probe
    ~(combine : Config.score_combine) (v1 : Instr.value) (v2 : Instr.value)
    ~(level : int) : int =
  match (cache, v1, v2) with
  | Some c, Instr.Ins i1, Instr.Ins i2 -> (
    let a = i1.Instr.id and b = i2.Instr.id in
    let mode = combine_tag combine in
    match Lslp_telemetry.Score_cache.find c ~a ~b ~level ~mode with
    | Some s ->
      Option.iter
        (fun p ->
          let pc = Lslp_telemetry.Probe.counters p in
          pc.Lslp_telemetry.Probe.score_hits <-
            pc.Lslp_telemetry.Probe.score_hits + 1)
        probe;
      s
    | None ->
      Option.iter
        (fun p ->
          let pc = Lslp_telemetry.Probe.counters p in
          pc.Lslp_telemetry.Probe.score_misses <-
            pc.Lslp_telemetry.Probe.score_misses + 1)
        probe;
      let s = lookahead_score_compute ?meter ?cache ?probe ~combine v1 v2 ~level in
      Lslp_telemetry.Score_cache.store c ~a ~b ~level ~mode s;
      s)
  | (Some _ | None), _, _ ->
    lookahead_score_compute ?meter ?cache ?probe ~combine v1 v2 ~level

and lookahead_score_compute ?meter ?cache ?probe
    ~(combine : Config.score_combine) (v1 : Instr.value) (v2 : Instr.value)
    ~(level : int) : int =
  (* Each recursive comparison burns one unit of fuel, so a pathological
     deeply-shared DAG bails with [Budget.Exhausted] instead of going
     exponential. *)
  Option.iter Lslp_robust.Budget.spend_fuel meter;
  Option.iter
    (fun p ->
      let pc = Lslp_telemetry.Probe.counters p in
      pc.Lslp_telemetry.Probe.score_evals <-
        pc.Lslp_telemetry.Probe.score_evals + 1)
    probe;
  let base () = pair_score v1 v2 in
  if level <= 0 || Instr.equal_value v1 v2 then base ()
  else
    match (v1, v2) with
    | Instr.Ins a, Instr.Ins b
      when Instr.equal_opclass (Instr.opclass a) (Instr.opclass b)
           && (not (Instr.is_load a))
           && Instr.operands a <> [] && Instr.operands b <> [] -> (
      let score x y =
        lookahead_score ?meter ?cache ?probe ~combine x y ~level:(level - 1)
      in
      match (Instr.operands a, Instr.operands b, combine) with
      | [ a1; a2 ], [ b1; b2 ], Config.Score_sum ->
        let aligned = score a1 b1 + score a2 b2 in
        if Instr.is_commutative a then
          max aligned (score a1 b2 + score a2 b1)
        else aligned
      | [ a1; a2 ], [ b1; b2 ], Config.Score_max ->
        let aligned = max (score a1 b1) (score a2 b2) in
        if Instr.is_commutative a then
          max aligned (max (score a1 b2) (score a2 b1))
        else aligned
      | ops_a, ops_b, Config.Score_sum when List.length ops_a = List.length ops_b
        -> List.fold_left2 (fun acc x y -> acc + score x y) 0 ops_a ops_b
      | ops_a, ops_b, Config.Score_max when List.length ops_a = List.length ops_b
        -> List.fold_left2 (fun acc x y -> max acc (score x y)) 0 ops_a ops_b
      | _ -> base ())
    | (Instr.Const _ | Instr.Arg _ | Instr.Ins _), _ -> base ()

let init_mode (v : Instr.value) =
  match v with
  | Instr.Const _ | Instr.Arg _ -> Const_mode
  | Instr.Ins i -> if Instr.is_load i then Load_mode else Opcode_mode

(* Remove the first occurrence of [v] (by value identity) from [pool]. *)
let remove_once pool v =
  let rec go = function
    | [] -> []
    | x :: rest -> if Instr.equal_value x v then rest else x :: go rest
  in
  go pool

(* Listing 6: pick the best candidate for one slot in one lane.  Returns the
   choice (None = deferred, slot already FAILED) and the updated mode.

   [Config.score_cache] controls all memoization.  With it on and no
   caller-supplied [cache], the tie-break still memoizes within itself:
   [try_level] deepens from level 1 until the candidate scores separate,
   and hoisting each candidate's per-level results into a candidate-local
   cache makes every deepening step extend the previous one instead of
   recomputing it.  A caller-supplied [cache] widens the reuse across
   slots, lanes and candidates.  With [score_cache] off, scoring is the
   paper's Listing 7 as written — the baseline the telemetry counters
   measure against. *)
let value_text (v : Instr.value) = Fmt.str "%a" Printer.pp_value v

let get_best ?meter ?cache ?probe ?trace (config : Config.t) (mode : mode)
    (last : Instr.value) (candidates : Instr.value list) :
    Instr.value option * mode =
  (* Decision-trace bookkeeping: the per-level scores of the tie-break and
     the Score_cache traffic this call generated.  Reads only; the search
     itself is untouched, traced or not. *)
  let levels_acc = ref [] in
  let cache_base =
    match (trace, probe) with
    | Some _, Some p ->
      let c = Lslp_telemetry.Probe.counters p in
      Some
        ( c.Lslp_telemetry.Probe.score_hits,
          c.Lslp_telemetry.Probe.score_misses )
    | (Some _ | None), _ -> None
  in
  let result =
    match mode with
    | Failed_mode -> (None, Failed_mode)
    | Splat_mode -> (
      match List.find_opt (Instr.equal_value last) candidates with
      | Some v -> (Some v, Splat_mode)
      | None -> (
        (* no splat continuation: fall back to the default candidate *)
        match candidates with
        | v :: _ -> (Some v, Splat_mode)
        | [] -> (None, Failed_mode)))
    | Const_mode | Load_mode | Opcode_mode -> (
      let matching = List.filter (consecutive_or_match last) candidates in
      match matching with
      | [] -> (
        (* no match: this slot can no longer vectorize; consume the default *)
        match candidates with
        | v :: _ -> (Some v, Failed_mode)
        | [] -> (None, Failed_mode))
      | [ v ] -> (Some v, mode)
      | _ :: _ when mode = Opcode_mode && config.Config.lookahead_depth > 0
        ->
        (* look-ahead tie-break: deepen until the scores separate *)
        let combine = config.Config.score_combine in
        let with_caches =
          match cache with
          | Some c -> List.map (fun cand -> (cand, Some c)) matching
          | None when config.Config.score_cache ->
            (* per-candidate hoist: level k+1 recurses through exactly the
               (pair, level<=k) comparisons the level-k round computed for
               this candidate, so each deepening step extends the previous
               one instead of re-scoring from level 1. *)
            List.map
              (fun cand ->
                (cand, Some (Lslp_telemetry.Score_cache.create ())))
              matching
          | None ->
            (* memoization off: the paper's Listing 7 as written — the
               baseline the telemetry counters measure speedups against *)
            List.map (fun cand -> (cand, None)) matching
        in
        let rec try_level level =
          let scores =
            List.map
              (fun (c, ccache) ->
                ( c,
                  lookahead_score ?meter ?cache:ccache ?probe ~combine last c
                    ~level ))
              with_caches
          in
          if trace <> None then
            levels_acc := (level, List.map snd scores) :: !levels_acc;
          let all_equal =
            match scores with
            | [] -> true
            | (_, s0) :: rest -> List.for_all (fun (_, s) -> s = s0) rest
          in
          if not all_equal then
            let best, _ =
              List.fold_left
                (fun (bv, bs) (c, s) -> if s > bs then (c, s) else (bv, bs))
                (List.hd matching, min_int)
                scores
            in
            best
          else if level >= config.Config.lookahead_depth then List.hd matching
          else try_level (level + 1)
        in
        (Some (try_level 1), mode)
      | first :: _ -> (Some first, mode))
  in
  Option.iter
    (fun tr ->
      let cache_hits, cache_misses =
        match (cache_base, probe) with
        | Some (h0, m0), Some p ->
          let c = Lslp_telemetry.Probe.counters p in
          ( c.Lslp_telemetry.Probe.score_hits - h0,
            c.Lslp_telemetry.Probe.score_misses - m0 )
        | _ -> (0, 0)
      in
      Lslp_trace.Trace.record tr
        (Lslp_trace.Trace.Get_best
           {
             mode = mode_to_string mode;
             last = value_text last;
             candidates = List.map value_text candidates;
             levels = List.rev !levels_acc;
             chosen = Option.map value_text (fst result);
             cache_hits;
             cache_misses;
           }))
    trace;
  result

(* Listing 5: the top-level matrix reorder.  [columns.(slot).(lane)] is the
   unordered operand matrix; the result has the same multiset of values per
   lane, rearranged across slots. *)
let reorder_matrix_modes ?meter ?probe ?trace (config : Config.t)
    (columns : Instr.value array array) :
    Instr.value array array * mode array =
  let num_slots = Array.length columns in
  if num_slots = 0 then ([||], [||])
  else begin
    (* One score cache per reorder invocation: the operand DAG is frozen
       until this function returns, so memoizing on instruction ids is
       sound, and dropping the cache here means a rollback (or any later
       mutation) can never observe a stale entry. *)
    let cache =
      if config.Config.score_cache then
        Some (Lslp_telemetry.Score_cache.create ())
      else None
    in
    let lanes = Array.length columns.(0) in
    let final : Instr.value option array array =
      Array.make_matrix num_slots lanes None
    in
    let mode = Array.make num_slots Failed_mode in
    (* 1. strip the first lane in its existing order *)
    for s = 0 to num_slots - 1 do
      final.(s).(0) <- Some columns.(s).(0);
      mode.(s) <- init_mode columns.(s).(0)
    done;
    (* 2. for every other lane, fill slots left to right *)
    for lane = 1 to lanes - 1 do
      let pool = ref (Array.to_list (Array.map (fun col -> col.(lane)) columns)) in
      for s = 0 to num_slots - 1 do
        match mode.(s) with
        | Failed_mode -> () (* deferred: let others choose first *)
        | _ ->
          let last =
            match final.(s).(lane - 1) with
            | Some v -> v
            | None -> columns.(s).(lane - 1)
          in
          let best, mode' =
            get_best ?meter ?cache ?probe ?trace config mode.(s) last !pool
          in
          mode.(s) <- mode';
          (match best with
           | Some v ->
             final.(s).(lane) <- Some v;
             pool := remove_once !pool v;
             (* SPLAT detection: the exact same value continues the slot *)
             if Instr.equal_value v last && mode.(s) <> Failed_mode then
               mode.(s) <- Splat_mode
           | None -> ())
      done;
      (* failed slots take the leftovers in order *)
      for s = 0 to num_slots - 1 do
        if final.(s).(lane) = None then begin
          match !pool with
          | v :: rest ->
            final.(s).(lane) <- Some v;
            pool := rest
          | [] -> ()
        end
      done
    done;
    Option.iter
      (fun tr ->
        Lslp_trace.Trace.record tr
          (Lslp_trace.Trace.Slot_modes
             { modes = Array.to_list (Array.map mode_to_string mode) }))
      trace;
    (Array.map (Array.map Option.get) final, mode)
  end

let reorder_matrix ?meter ?probe ?trace config columns =
  fst (reorder_matrix_modes ?meter ?probe ?trace config columns)

(* ------------------------------------------------------------------ *)
(* Vanilla SLP (LLVM 4.0 reorderInputsAccordingToOpcode).              *)

let is_inst = function
  | Instr.Ins _ -> true
  | Instr.Const _ | Instr.Arg _ -> false

let opclass_opt = function
  | Instr.Ins i -> Some (Instr.opclass i)
  | Instr.Const _ | Instr.Arg _ -> None

let same_opclass a b =
  match (opclass_opt a, opclass_opt b) with
  | Some ca, Some cb -> Instr.equal_opclass ca cb
  | _ -> false

let consecutive_loads a b =
  match (a, b) with
  | Instr.Ins ia, Instr.Ins ib when Instr.is_load ia && Instr.is_load ib -> (
    match (Instr.address ia, Instr.address ib) with
    | Some aa, Some ab -> Addr.consecutive aa ab
    | _ -> false)
  | (Instr.Const _ | Instr.Arg _ | Instr.Ins _), _ -> false

(* LLVM 4.0's shouldReorderOperands, operand for operand. *)
let should_reorder ~left ~right ~all_same_left ~all_same_right ~splat_left
    ~splat_right i vleft vright =
  let prev_right = right.(i - 1) in
  let prev_left = left.(i - 1) in
  (* preserve a splat on the right *)
  if splat_right && Instr.equal_value vright prev_right then false
  else if splat_right && Instr.equal_value vleft prev_right then
    if splat_left && Instr.equal_value vleft prev_left then false else true
  else if splat_left && Instr.equal_value vleft prev_left then false
  else if splat_left && Instr.equal_value vright prev_left then true
  else if
    (* preserve a same-opcode column on the right *)
    all_same_right && same_opclass vright prev_right
  then false
  else if all_same_right && same_opclass vleft prev_right then
    if all_same_left && same_opclass vleft prev_left then false else true
  else if all_same_left && same_opclass vleft prev_left then false
  else if all_same_left && same_opclass vright prev_left then true
  else false

let vanilla_pair (insts : Instr.t array) :
    Instr.value array * Instr.value array =
  let n = Array.length insts in
  let operand k (i : Instr.t) =
    match Instr.operands i with
    | [ a; b ] -> if k = 0 then a else b
    | _ -> invalid_arg "Reorder.vanilla_pair: not a binary operation"
  in
  let left = Array.make n (operand 0 insts.(0)) in
  let right = Array.make n (operand 1 insts.(0)) in
  (* peel the first lane: favor having an instruction on the right *)
  (if (not (is_inst right.(0))) && is_inst left.(0) then begin
     let t = left.(0) in
     left.(0) <- right.(0);
     right.(0) <- t
   end);
  let all_same_left = ref (is_inst left.(0)) in
  let all_same_right = ref (is_inst right.(0)) in
  let splat_left = ref true in
  let splat_right = ref true in
  for i = 1 to n - 1 do
    let vleft = operand 0 insts.(i) in
    let vright = operand 1 insts.(i) in
    let swap =
      should_reorder ~left ~right ~all_same_left:!all_same_left
        ~all_same_right:!all_same_right ~splat_left:!splat_left
        ~splat_right:!splat_right i vleft vright
    in
    if swap then begin
      left.(i) <- vright;
      right.(i) <- vleft
    end
    else begin
      left.(i) <- vleft;
      right.(i) <- vright
    end;
    splat_left := !splat_left && Instr.equal_value left.(i - 1) left.(i);
    splat_right := !splat_right && Instr.equal_value right.(i - 1) right.(i);
    all_same_left := !all_same_left && same_opclass left.(i - 1) left.(i);
    all_same_right := !all_same_right && same_opclass right.(i - 1) right.(i)
  done;
  (* trailing pass: swap lanes to extend consecutive-load chains *)
  for j = 0 to n - 2 do
    if consecutive_loads left.(j) right.(j + 1)
       && not (consecutive_loads left.(j) left.(j + 1))
    then begin
      let t = left.(j + 1) in
      left.(j + 1) <- right.(j + 1);
      right.(j + 1) <- t
    end
    else if
      consecutive_loads right.(j) left.(j + 1)
      && not (consecutive_loads right.(j) right.(j + 1))
    then begin
      let t = left.(j + 1) in
      left.(j + 1) <- right.(j + 1);
      right.(j + 1) <- t
    end
  done;
  (left, right)

let no_reorder_pair (insts : Instr.t array) =
  let operand k (i : Instr.t) =
    match Instr.operands i with
    | [ a; b ] -> if k = 0 then a else b
    | _ -> invalid_arg "Reorder.no_reorder_pair: not a binary operation"
  in
  (Array.map (operand 0) insts, Array.map (operand 1) insts)
