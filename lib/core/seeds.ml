(* Seed collection (paper §2.2 step 1).

   Like GCC's and LLVM's SLP, we look for runs of non-dependent stores to
   adjacent memory locations and cut them into power-of-two windows, widest
   first (up to the target's native lane count for the element type). *)

open Lslp_ir
open Lslp_analysis

type seed = Instr.t array

let describe (seed : seed) =
  match Instr.address seed.(0) with
  | Some a ->
    Fmt.str "%s[%a] x%d" a.Instr.base Affine.pp a.Instr.index
      (Array.length seed)
  | None ->
    Fmt.str "seed %s %%%s x%d"
      (Instr.opclass_name (Instr.opclass seed.(0)))
      seed.(0).Instr.name (Array.length seed)

(* Split one consecutive run of stores into windows: greedily take the
   largest power-of-two width that fits (>= 2). *)
let rec windows max_lanes (run : Instr.t list) : seed list =
  let n = List.length run in
  if n < 2 then []
  else begin
    let width = ref 2 in
    while !width * 2 <= min n max_lanes do
      width := !width * 2
    done;
    let rec take k = function
      | rest when k = 0 -> ([], rest)
      | [] -> ([], [])
      | x :: rest ->
        let taken, leftover = take (k - 1) rest in
        (x :: taken, leftover)
    in
    let first, rest = take !width run in
    Array.of_list first :: windows max_lanes rest
  end

let collect ?probe ?trace (config : Config.t) (block : Block.t) : seed list =
  let stores = Block.find_all Instr.is_store block in
  (* group by (array, element type) *)
  let by_array = Hashtbl.create 8 in
  List.iter
    (fun (s : Instr.t) ->
      match Instr.address s with
      | Some a when a.Instr.access_lanes = 1 ->
        let key = a.Instr.base in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_array key) in
        Hashtbl.replace by_array key ((a, s) :: cur)
      | Some _ | None -> ())
    stores;
  let seeds = ref [] in
  Hashtbl.iter
    (fun _ accesses ->
      match Addr.sort_by_offset (List.rev accesses) with
      | None -> () (* symbolically incomparable: no seed *)
      | Some sorted ->
        (* split into maximal consecutive runs with unique offsets *)
        let runs = ref [] and current = ref [] in
        let flush () =
          if !current <> [] then runs := List.rev !current :: !runs;
          current := []
        in
        List.iter
          (fun ((a : Instr.address), s) ->
            match !current with
            | [] -> current := [ (a, s) ]
            | (prev, _) :: _ ->
              if Addr.consecutive prev a then current := (a, s) :: !current
              else begin
                flush ();
                current := [ (a, s) ]
              end)
          sorted;
        flush ();
        List.iter
          (fun run ->
            let insts = List.map snd run in
            let elt =
              match run with
              | ((a : Instr.address), _) :: _ -> a.Instr.elt
              | [] -> Types.I64
            in
            let max_lanes = Config.effective_max_lanes config elt in
            seeds := !seeds @ windows max_lanes insts)
          (List.rev !runs))
    by_array;
  (* deterministic order: by position of the first store *)
  let sorted =
    List.sort
      (fun (a : seed) (b : seed) ->
        Int.compare
          (Block.position_exn block a.(0))
          (Block.position_exn block b.(0)))
      !seeds
  in
  Option.iter
    (fun p ->
      let c = Lslp_telemetry.Probe.counters p in
      c.Lslp_telemetry.Probe.seeds_collected <-
        c.Lslp_telemetry.Probe.seeds_collected + List.length sorted)
    probe;
  Option.iter
    (fun tr ->
      Lslp_trace.Trace.record tr
        (Lslp_trace.Trace.Seeds_found
           {
             seeds =
               List.map (fun s -> (describe s, Array.length s)) sorted;
           }))
    trace;
  sorted
