(* Seed collection (paper §2.2 step 1).

   Like GCC's and LLVM's SLP, we look for runs of non-dependent stores to
   adjacent memory locations and cut them into power-of-two windows, widest
   first (up to the target's native lane count for the element type). *)

open Lslp_ir

type seed = Instr.t array

let describe (seed : seed) =
  match Instr.address seed.(0) with
  | Some a ->
    Fmt.str "%s[%a] x%d" a.Instr.base Affine.pp a.Instr.index
      (Array.length seed)
  | None ->
    Fmt.str "seed %s %%%s x%d"
      (Instr.opclass_name (Instr.opclass seed.(0)))
      seed.(0).Instr.name (Array.length seed)

(* Split one consecutive run of stores into windows: greedily take the
   largest power-of-two width that fits (>= 2). *)
let rec windows max_lanes (run : Instr.t list) : seed list =
  let n = List.length run in
  if n < 2 then []
  else begin
    let width = ref 2 in
    while !width * 2 <= min n max_lanes do
      width := !width * 2
    done;
    let rec take k = function
      | rest when k = 0 -> ([], rest)
      | [] -> ([], [])
      | x :: rest ->
        let taken, leftover = take (k - 1) rest in
        (x :: taken, leftover)
    in
    let first, rest = take !width run in
    Array.of_list first :: windows max_lanes rest
  end

let collect ?arena ?probe ?trace (config : Config.t) (block : Block.t) :
    seed list =
  let arena =
    match arena with Some a -> a | None -> Arena.of_block block
  in
  let n = Arena.size arena in
  (* single-element stores, grouped by interned base symbol: bucket ids are
     dense and issued in program order of first appearance, so iterating
     buckets in id order is deterministic *)
  let max_base = ref (-1) in
  for k = 0 to n - 1 do
    if
      Instr.is_store (Arena.instr arena k)
      && Arena.addr_lanes arena k = 1
    then max_base := max !max_base (Arena.addr_base arena k)
  done;
  let buckets = Array.make (!max_base + 1) [] in
  for k = n - 1 downto 0 do
    if
      Instr.is_store (Arena.instr arena k)
      && Arena.addr_lanes arena k = 1
    then begin
      let b = Arena.addr_base arena k in
      buckets.(b) <- k :: buckets.(b)
    end
  done;
  let seeds = ref [] in
  Array.iter
    (fun accesses ->
      match accesses with
      | [] -> ()
      | k0 :: _ when not (List.for_all (Arena.same_shape arena k0) accesses)
        ->
        () (* symbolically incomparable: no seed *)
      | accesses ->
        (* stable sort by constant offset, then split into maximal
           consecutive runs *)
        let sorted =
          List.stable_sort
            (fun j k ->
              Int.compare (Arena.addr_const arena j)
                (Arena.addr_const arena k))
            accesses
        in
        (* Duplicate offsets arise from if-conversion: the then- and
           else-branch both store (under complementary masks) to the same
           element.  Interleaved they would chop every run to nothing, so
           split the bucket into occurrence streams first — the s-th store
           to each offset joins stream s, in program order.  Each stream
           forms consecutive runs independently: all the then-branch stores
           seed one vector, all the else-branch stores another.  Buckets
           with unique offsets are a single stream, i.e. the classic case
           is untouched. *)
        let tagged =
          (* equal offsets are adjacent after the sort, so the occurrence
             index is just the position within the current equal-offset
             group — no table needed *)
          let prev_off = ref min_int and occ = ref (-1) in
          List.map
            (fun k ->
              let off = Arena.addr_const arena k in
              if off = !prev_off then incr occ
              else begin
                prev_off := off;
                occ := 0
              end;
              (!occ, k))
            sorted
        in
        let max_stream =
          List.fold_left (fun acc (s, _) -> max acc s) 0 tagged
        in
        for stream = 0 to max_stream do
          let members =
            List.filter_map
              (fun (s, k) -> if s = stream then Some k else None)
              tagged
          in
          let runs = ref [] and current = ref [] in
          let flush () =
            if !current <> [] then runs := List.rev !current :: !runs;
            current := []
          in
          List.iter
            (fun k ->
              match !current with
              | [] -> current := [ k ]
              | prev :: _ ->
                if Arena.consecutive arena prev k then
                  current := k :: !current
                else begin
                  flush ();
                  current := [ k ]
                end)
            members;
          flush ();
          List.iter
            (fun run ->
              let insts = List.map (Arena.instr arena) run in
              let elt =
                match insts with
                | s :: _ -> (
                  match Instr.address s with
                  | Some a -> a.Instr.elt
                  | None -> Types.I64)
                | [] -> Types.I64
              in
              let max_lanes = Config.effective_max_lanes config elt in
              seeds := !seeds @ windows max_lanes insts)
            (List.rev !runs)
        done)
    buckets;
  (* deterministic order: by position of the first store *)
  let sorted =
    List.sort
      (fun (a : seed) (b : seed) ->
        Int.compare (Arena.pos arena a.(0)) (Arena.pos arena b.(0)))
      !seeds
  in
  Option.iter
    (fun p ->
      let c = Lslp_telemetry.Probe.counters p in
      c.Lslp_telemetry.Probe.seeds_collected <-
        c.Lslp_telemetry.Probe.seeds_collected + List.length sorted)
    probe;
  Option.iter
    (fun tr ->
      Lslp_trace.Trace.record tr
        (Lslp_trace.Trace.Seeds_found
           {
             seeds =
               List.map (fun s -> (describe s, Array.length s)) sorted;
           }))
    trace;
  sorted
