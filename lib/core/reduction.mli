(** Horizontal-reduction vectorization — the reduction-tree seed idiom the
    paper lists in §2.2.

    Chains of one commutative+associative opcode (with non-escaping
    intermediates) are rewritten as W-wide chunk combines + one [Reduce] +
    a scalar tail fold, when the cost model approves. *)

open Lslp_ir

type candidate = {
  cand_op : Opcode.binop;
  cand_root : Instr.t;
  cand_chain : Instr.t list;
  cand_leaves : Instr.value list;
}

val collect_candidates : ?uses:Use_info.t -> Block.t -> candidate list
(** Reduction-chain roots of one block in program order, with their
    leaves.  [uses] shares def-use info already computed for the block;
    a fresh arena snapshot is taken otherwise. *)

type region = {
  root_desc : string;
  lanes : int;
  cost : int;
  vectorized : bool;
  not_schedulable : bool;
}

val run :
  ?config:Config.t ->
  ?meter:Lslp_robust.Budget.meter ->
  ?probe:Lslp_telemetry.Probe.t ->
  ?trace:Lslp_trace.Trace.t ->
  ?ids:Lslp_util.Id_gen.t ->
  ?record:(lanes:Instr.t array -> vector:Instr.t -> unit) ->
  ?on_skipped:(candidate -> unit) ->
  ?arena:Arena.t ->
  Block.t ->
  region list
(** Vectorize every profitable reduction, mutating the block.  [arena] hands
    over a snapshot of the block in its *current* state (the caller
    guarantees no mutation since [Arena.of_block]); it seeds the first
    candidate sweep and is dropped as soon as a reduction rewrites the
    block.  One region record
    per candidate with at least a full chunk of leaves; [on_skipped] fires
    for candidates with too few leaves for even one chunk; [record] is
    forwarded to {!Codegen.run} for provenance; [trace] records the chunk
    graphs, the cost decision and one [Region_outcome] per candidate.

    Not fail-soft on its own: raises [Lslp_robust.Transact.Check_failed]
    when codegen reports a malformed graph (the block may be
    half-rewritten), [Lslp_robust.Budget.Exhausted] when [meter] runs out,
    and [Lslp_robust.Inject.Fault] under fault injection — run it inside
    {!Lslp_robust.Transact.protect} (as {!Pipeline.run} does). *)
