(** Vector code generation: replace vectorizable bundles with wide
    instructions, emit gathers/shuffles/extracts, and reschedule the block.

    The block is rebuilt from a stable topological order of contracted
    dependence units, so any legal bundling gets a correct schedule; if the
    contraction is cyclic, [Not_schedulable] is returned and the function is
    left untouched. *)

open Lslp_ir

type outcome =
  | Vectorized
  | Not_schedulable
  | Failed of string
      (** a malformed graph was detected mid-emission; the block may be
          half-rewritten — callers must roll the region back
          (see {!Lslp_robust.Transact}) *)

exception Error of string
(** Raised internally on malformed graphs (dangling node references,
    ill-typed columns, wrong operand arity), naming the offending
    bundle/lane; caught at the {!run} boundary and returned as [Failed]. *)

(** A horizontal reduction vectorized alongside the graph: the scalar chain
    is replaced by element-wise combines of the leaf chunks, one [Reduce],
    and a scalar fold of the leftover leaves. *)
type reduction = {
  red_op : Opcode.binop;
  red_root : Instr.t;           (** the chain's root (its users get rewired) *)
  red_chain : Instr.t list;     (** every chain op, root included *)
  red_chunks : Graph.node list; (** W-wide leaf bundles, in combine order *)
  red_remainder : Instr.value list;  (** leaves folded scalar after reduce *)
}

val run :
  ?reduction:reduction ->
  ?record:(lanes:Instr.t array -> vector:Instr.t -> unit) ->
  ?probe:Lslp_telemetry.Probe.t ->
  ?trace:Lslp_trace.Trace.t ->
  ?deps:Lslp_analysis.Depgraph.t ->
  Graph.t ->
  Block.t ->
  outcome
(** [record] is invoked once per emitted vector instruction with the scalar
    lanes it replaces — the provenance feed of the legality validator.
    Multi-node internal bundles all map to the chain's final combine.
    [probe] counts the freshly materialized instructions (vector ops,
    gathers, shuffles, extracts, reduction combines), charged only when the
    outcome is [Vectorized].
    [trace] records one [Emit] event per freshly materialized instruction
    (in emission order, including ones a later rollback discards).
    [deps] shares a dependence graph (and arena snapshot) already built
    for the block in its current, pre-codegen form; built fresh
    otherwise. *)
