(** Vectorizer configuration.

    Captures the paper's compiler configurations — SLP-NR, SLP, LSLP — and
    the sensitivity knobs of Figure 13 (look-ahead depth, multi-node size).
    "O3" is simply not running the pass. *)

type reorder_strategy =
  | No_reorder  (** SLP-NR: keep operand order as written *)
  | Vanilla     (** SLP: LLVM-4.0-style opcode/splat/consecutive-load swap *)
  | Lookahead   (** LSLP: multi-nodes + mode-driven look-ahead reordering *)

type score_combine = Score_sum | Score_max

type t = {
  name : string;
  strategy : reorder_strategy;
  lookahead_depth : int;
  max_multinode_groups : int option;
  max_lanes : int option;
  threshold : int;
  score_combine : score_combine;
  score_cache : bool;
  model : Lslp_costmodel.Model.t;
  reductions : bool;
  validate : bool;
  remarks : bool;
  trace : bool;
  budget : Lslp_robust.Budget.t;
  inject : Lslp_robust.Inject.t option;
  deadline : Lslp_robust.Budget.deadline option;
}

val lslp : t
(** The paper's LSLP: look-ahead depth 8, unlimited multi-nodes. *)

val slp : t
val slp_nr : t

val lslp_la : int -> t
(** LSLP with a given look-ahead depth (Figure 13's LA-k). *)

val lslp_multi : int -> t
(** LSLP with multi-node size capped at [k] group nodes (Figure 13's
    Multi-k). *)

val with_model : Lslp_costmodel.Model.t -> t -> t
val with_threshold : int -> t -> t
val with_max_lanes : int -> t -> t
val with_score_combine : score_combine -> t -> t

val with_score_cache : bool -> t -> t
(** Memoize the recursive look-ahead score within each reorder invocation
    (default on).  Observationally invisible: cached and uncached runs
    produce identical operand orders, IR and remarks — the differential
    test layer ([test_telemetry], [lslpc fuzz --config cache-diff])
    enforces it.  Cache hits do not burn look-ahead fuel, so a tight
    {!Lslp_robust.Budget} can only degrade {e fewer} regions with the
    cache on, never more. *)

val with_reductions : bool -> t -> t

val with_validate : bool -> t -> t
(** Re-check the transformed function against the pre-pass dependence
    graph (see [Lslp_check.Legality]); diagnostics land in the report. *)

val with_remarks : bool -> t -> t
(** Record one [Lslp_check.Remark.t] per region considered. *)

val with_trace : bool -> t -> t
(** Record the decision-trace event stream ([Lslp_trace.Trace]) in
    [Pipeline.report.trace_events]: seeds found/tried, SLP-graph shape,
    per-slot operand modes, every [get_best] call with its candidate set
    and per-level look-ahead scores, cost accept/reject, emitted vector
    instructions, rollbacks and region outcomes.  Default off.  Off is
    observationally invisible: no sink is allocated and IR, remarks and
    telemetry are byte-identical (a QCheck differential property asserts
    it); events carry logical timestamps, so traces themselves are
    deterministic per (input, configuration). *)

val with_budget : Lslp_robust.Budget.t -> t -> t
(** Resource caps (look-ahead fuel, graph-node cap, per-region step cap);
    exceeding one degrades the region to scalar with a budget remark
    instead of hanging or overflowing the stack.  Default
    {!Lslp_robust.Budget.default}. *)

val with_inject : Lslp_robust.Inject.t -> t -> t
(** Arm deterministic fault injection at pass boundaries; used by the
    robustness tests and [lslpc --inject] to exercise the rollback path. *)

val with_deadline : Lslp_robust.Budget.deadline -> t -> t
(** Arm the compile service's per-job cooperative deadline: the pipeline
    ticks it at the same eight pass boundaries the fault injector
    instruments, and expiry raises {!Lslp_robust.Budget.Deadline_expired}
    through {!Pipeline.run} (with all snapshots restored) — the job is
    cancelled, not degraded.  Default off ([None]). *)

val effective_max_lanes : t -> Lslp_ir.Types.scalar -> int
val multinode_limit : t -> int

val fingerprint : t -> string
(** A stable flattening of every output-affecting knob — the config half
    of the service cache key.  [inject], [deadline] and [trace] are
    excluded: the service never caches faulted runs, and neither deadlines
    nor tracing change the IR of a run that completes. *)

val pp : t Fmt.t
