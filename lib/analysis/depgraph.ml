(* Dependence graph of a basic block.

   Nodes are the block's instructions; there is an edge j -> i (i depends on
   j) when

   - data: instruction i uses the value defined by j, or
   - memory: i and j access may-aliasing memory and at least one is a store
     (the earlier one is the dependency of the later one).

   Straight-line semantics is preserved by any topological order of this
   graph, which is what makes both bundle-schedulability checking and
   post-vectorization rescheduling sound. *)

open Lslp_ir

type t = {
  insts : Instr.t array;                 (* program order *)
  pos_of : (int, int) Hashtbl.t;         (* instr id -> position *)
  preds : int list array;                (* direct dependencies (positions) *)
  reach : bool array array;              (* reach.(i).(j): i trans. dep on j *)
}

let direct_preds insts pos_of =
  let n = Array.length insts in
  let preds = Array.make n [] in
  (* data dependencies — position-independent, so that rescheduling can
     repair blocks that temporarily contain a def after its use *)
  Array.iteri
    (fun i inst ->
      List.iter
        (fun v ->
          match Instr.value_id v with
          | Some id ->
            (match Hashtbl.find_opt pos_of id with
             | Some j when j <> i -> preds.(i) <- j :: preds.(i)
             | Some _ | None -> ())
          | None -> ())
        (Instr.operands inst))
    insts;
  (* memory dependencies *)
  let mem_accesses =
    Array.to_list insts
    |> List.mapi (fun i inst -> (i, inst))
    |> List.filter (fun (_, inst) -> Instr.is_memory_access inst)
  in
  let dep_between a b =
    (Instr.is_store a || Instr.is_store b)
    &&
    match (Instr.address a, Instr.address b) with
    | Some aa, Some ab -> Addr.may_alias aa ab
    | (None | Some _), _ -> false
  in
  List.iter
    (fun (i, inst_i) ->
      List.iter
        (fun (j, inst_j) ->
          if j < i && dep_between inst_i inst_j then
            preds.(i) <- j :: preds.(i))
        mem_accesses)
    mem_accesses;
  preds

let build block =
  let insts = Array.of_list (Block.to_list block) in
  let n = Array.length insts in
  let pos_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i (inst : Instr.t) -> Hashtbl.replace pos_of inst.id i) insts;
  let preds = direct_preds insts pos_of in
  (* transitive closure by memoized DFS (data edges may point forward in
     position, so a positional sweep is not enough) *)
  let reach = Array.init n (fun _ -> Array.make n false) in
  let visited = Array.make n false in
  let rec close i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter
        (fun j ->
          reach.(i).(j) <- true;
          close j;
          for k = 0 to n - 1 do
            if reach.(j).(k) then reach.(i).(k) <- true
          done)
        preds.(i)
    end
  in
  for i = 0 to n - 1 do
    close i
  done;
  { insts; pos_of; preds; reach }

let mem t (i : Instr.t) = Hashtbl.mem t.pos_of i.id

let position t (i : Instr.t) =
  match Hashtbl.find_opt t.pos_of i.id with
  | Some p -> p
  | None -> invalid_arg "Depgraph: instruction not in block"

let depends t a ~on = t.reach.(position t a).(position t on)

let independent t insts =
  let ps = List.map (position t) insts in
  List.for_all
    (fun p -> List.for_all (fun q -> p = q || not t.reach.(p).(q)) ps)
    ps

(* Acyclicity after contracting each group to a single node: the real
   schedulability criterion for a whole SLP graph.  Groups must be disjoint
   lists of block instructions. *)
let schedulable_groups t groups =
  let n = Array.length t.insts in
  let group_of = Array.init n (fun i -> i + n) (* singleton ids *) in
  List.iteri
    (fun gid members ->
      List.iter (fun m -> group_of.(position t m) <- gid) members)
    groups;
  (* condensed adjacency: group -> set of predecessor groups *)
  let adj = Hashtbl.create 64 in
  let add_edge src dst =
    if src <> dst then begin
      let cur = Option.value ~default:[] (Hashtbl.find_opt adj dst) in
      if not (List.mem src cur) then Hashtbl.replace adj dst (src :: cur)
    end
  in
  for i = 0 to n - 1 do
    List.iter (fun j -> add_edge group_of.(j) group_of.(i)) t.preds.(i)
  done;
  (* cycle detection over the condensed graph *)
  let state = Hashtbl.create 64 in
  (* 0 = visiting, 1 = done *)
  let rec acyclic_from node =
    match Hashtbl.find_opt state node with
    | Some 0 -> false
    | Some _ -> true
    | None ->
      Hashtbl.replace state node 0;
      let preds = Option.value ~default:[] (Hashtbl.find_opt adj node) in
      let ok = List.for_all acyclic_from preds in
      Hashtbl.replace state node 1;
      ok
  in
  let nodes =
    Array.to_list group_of
    |> List.sort_uniq Int.compare
  in
  List.for_all acyclic_from nodes

(* Stable topological order: keep original relative order wherever the
   dependence graph allows it.  Used to restore def-before-use after code
   generation appends vector instructions at arbitrary points. *)
let topo_order block =
  let t = build block in
  let n = Array.length t.insts in
  let emitted = Array.make n false in
  let order = ref [] in
  let rec emit i =
    if not emitted.(i) then begin
      emitted.(i) <- true;
      List.iter emit (List.sort Int.compare t.preds.(i));
      order := t.insts.(i) :: !order
    end
  in
  for i = 0 to n - 1 do
    emit i
  done;
  List.rev !order

let reschedule block = Block.set_order block (topo_order block)
