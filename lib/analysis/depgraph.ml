(* Dependence graph of a basic block.

   Nodes are the block's instructions; there is an edge j -> i (i depends on
   j) when

   - data: instruction i uses the value defined by j, or
   - memory: i and j access may-aliasing memory and at least one is a store
     (the earlier one is the dependency of the later one).

   Straight-line semantics is preserved by any topological order of this
   graph, which is what makes both bundle-schedulability checking and
   post-vectorization rescheduling sound.

   Built over a per-block [Arena]: positions and may-alias queries are
   array reads and int compares off the arena's precomputed address table,
   and reachability is one flat byte matrix instead of an array of
   arrays. *)

open Lslp_ir

type t = {
  arena : Arena.t;
  preds : int list array;   (* direct dependencies (positions) *)
  n : int;
  reach : Bytes.t;          (* reach[i*n+j]: i transitively depends on j *)
}

let direct_preds (arena : Arena.t) =
  let n = Arena.size arena in
  let preds = Array.make n [] in
  (* data dependencies — position-independent, so that rescheduling can
     repair blocks that temporarily contain a def after its use *)
  for i = 0 to n - 1 do
    List.iter
      (fun v ->
        match Instr.value_id v with
        | Some id ->
          let j = Arena.idx_of_id arena id in
          if j >= 0 && j <> i then preds.(i) <- j :: preds.(i)
        | None -> ())
      (Instr.operands (Arena.instr arena i))
  done;
  (* memory dependencies: store/store and store/load pairs that may alias,
     earlier access before later *)
  let mems = ref [] in
  for i = n - 1 downto 0 do
    if Arena.is_memory arena i then mems := i :: !mems
  done;
  let mems = !mems in
  List.iter
    (fun i ->
      let store_i = Instr.is_store (Arena.instr arena i) in
      List.iter
        (fun j ->
          if
            j < i
            && (store_i || Instr.is_store (Arena.instr arena j))
            && Arena.may_alias arena i j
          then preds.(i) <- j :: preds.(i))
        mems)
    mems;
  preds

let build_arena (arena : Arena.t) =
  let n = Arena.size arena in
  let preds = direct_preds arena in
  (* transitive closure by memoized DFS (data edges may point forward in
     position, so a positional sweep is not enough) *)
  let reach = Bytes.make (n * n) '\000' in
  let visited = Bytes.make (max n 1) '\000' in
  let rec close i =
    if Bytes.unsafe_get visited i = '\000' then begin
      Bytes.unsafe_set visited i '\001';
      List.iter
        (fun j ->
          Bytes.unsafe_set reach ((i * n) + j) '\001';
          close j;
          let ri = i * n and rj = j * n in
          for k = 0 to n - 1 do
            if Bytes.unsafe_get reach (rj + k) <> '\000' then
              Bytes.unsafe_set reach (ri + k) '\001'
          done)
        preds.(i)
    end
  in
  for i = 0 to n - 1 do
    close i
  done;
  { arena; preds; n; reach }

let build block = build_arena (Arena.of_block block)

let arena t = t.arena

let mem t (i : Instr.t) = Arena.mem t.arena i

let position t (i : Instr.t) =
  match Arena.idx t.arena i with
  | -1 -> invalid_arg "Depgraph: instruction not in block"
  | p -> p

let reaches t i j = Bytes.unsafe_get t.reach ((i * t.n) + j) <> '\000'

let depends t a ~on = reaches t (position t a) (position t on)

let independent t insts =
  let ps = List.map (position t) insts in
  List.for_all
    (fun p -> List.for_all (fun q -> p = q || not (reaches t p q)) ps)
    ps

(* Acyclicity after contracting each group to a single node: the real
   schedulability criterion for a whole SLP graph.  Groups must be disjoint
   lists of block instructions.  Group ids live in [0, 2n): the first are
   the caller's groups, instructions left alone keep singleton ids, so
   plain int arrays index everything — no hashed adjacency. *)
let schedulable_groups t groups =
  let n = t.n in
  let group_of = Array.init n (fun i -> i + n) (* singleton ids *) in
  List.iteri
    (fun gid members ->
      List.iter (fun m -> group_of.(position t m) <- gid) members)
    groups;
  let id_count = 2 * n in
  let adj = Array.make (max id_count 1) [] in
  let add_edge src dst =
    if src <> dst && not (List.mem src adj.(dst)) then
      adj.(dst) <- src :: adj.(dst)
  in
  for i = 0 to n - 1 do
    List.iter (fun j -> add_edge group_of.(j) group_of.(i)) t.preds.(i)
  done;
  (* cycle detection over the condensed graph: 0 unseen, 1 visiting, 2 done *)
  let state = Array.make (max id_count 1) 0 in
  let rec acyclic_from node =
    match state.(node) with
    | 1 -> false
    | 2 -> true
    | _ ->
      state.(node) <- 1;
      let ok = List.for_all acyclic_from adj.(node) in
      state.(node) <- 2;
      ok
  in
  let rec all_ok i = i >= n || (acyclic_from group_of.(i) && all_ok (i + 1)) in
  all_ok 0

(* Stable topological order: keep original relative order wherever the
   dependence graph allows it.  Used to restore def-before-use after code
   generation appends vector instructions at arbitrary points. *)
let topo_order block =
  let t = build block in
  let n = t.n in
  let emitted = Array.make (max n 1) false in
  let order = ref [] in
  let rec emit i =
    if not emitted.(i) then begin
      emitted.(i) <- true;
      List.iter emit (List.sort Int.compare t.preds.(i));
      order := Arena.instr t.arena i :: !order
    end
  in
  for i = 0 to n - 1 do
    emit i
  done;
  List.rev !order

let reschedule block = Block.set_order block (topo_order block)
