(** Address analysis over affine subscripts (SCEV-lite).

    Answers the two memory questions the (L)SLP algorithm asks: adjacency
    (for wide loads/stores) and aliasing (for dependence/scheduling).
    Distinct array arguments are assumed non-aliasing. *)

open Lslp_ir

val same_array : Instr.address -> Instr.address -> bool

val element_distance : Instr.address -> Instr.address -> int option
(** [element_distance a b] is [Some (index_b - index_a)] in elements when the
    two accesses are to the same array and differ by a constant. *)

val consecutive : Instr.address -> Instr.address -> bool
(** [consecutive a b]: does [b] start exactly where [a] ends? *)

val may_alias : Instr.address -> Instr.address -> bool
val must_alias : Instr.address -> Instr.address -> bool

val sort_by_offset :
  (Instr.address * 'a) list -> (Instr.address * 'a) list option
(** Sort accesses to one array by constant offset; [None] if the offsets are
    not mutually constant-comparable. *)

val consecutive_run : Instr.address list -> bool
(** Whether the list forms a run of adjacent accesses in the given order. *)
