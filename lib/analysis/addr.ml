(* Address analysis (SCEV-lite).

   The SLP algorithm needs two memory facts, both answered here from the
   affine normal form of subscripts:

   - adjacency: do two accesses touch consecutive elements of the same array
     (in lane order)?  This decides whether a load/store bundle becomes a
     wide access or a gather.
   - aliasing: can two accesses touch the same element?  This feeds the
     dependence graph and hence scheduling legality.

   Distinct array arguments are assumed not to alias (they model distinct
   global arrays, as in the paper's kernels). *)

open Lslp_ir

let same_array (a : Instr.address) (b : Instr.address) =
  String.equal a.base b.base

(* Element distance [b - a] when it is a compile-time constant. *)
let element_distance (a : Instr.address) (b : Instr.address) =
  if same_array a b then Affine.diff_const b.index a.index else None

let consecutive (a : Instr.address) (b : Instr.address) =
  match element_distance a b with
  | Some d -> d = a.access_lanes
  | None -> false

(* Accesses occupy [index, index + lanes) elements. *)
let ranges_overlap a_lo a_len b_lo b_len =
  a_lo < b_lo + b_len && b_lo < a_lo + a_len

let may_alias (a : Instr.address) (b : Instr.address) =
  if not (same_array a b) then false
  else
    match Affine.diff_const b.index a.index with
    | None -> true (* symbolically different indices: assume the worst *)
    | Some d -> ranges_overlap 0 a.access_lanes d b.access_lanes

let must_alias (a : Instr.address) (b : Instr.address) =
  same_array a b
  && a.access_lanes = b.access_lanes
  && Affine.equal a.index b.index

(* Sort a list of (address, payload) pairs by constant offset; [None] when
   the addresses are not mutually comparable (different arrays or symbolic
   differences). *)
let sort_by_offset pairs =
  match pairs with
  | [] -> Some []
  | (a0, _) :: _ ->
    let keyed =
      List.map
        (fun ((a, _) as p) -> (Affine.diff_const a.Instr.index a0.Instr.index,
                               (a, p)))
        pairs
    in
    if
      List.for_all
        (fun (d, (a, _)) -> Option.is_some d && same_array a a0)
        keyed
    then
      Some
        (keyed
        |> List.map (fun (d, (_, p)) -> (Option.get d, p))
        |> List.sort (fun (d1, _) (d2, _) -> Int.compare d1 d2)
        |> List.map snd)
    else None

(* Is a list of scalar addresses a run of consecutive elements, in order? *)
let rec consecutive_run = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> consecutive a b && consecutive_run rest
