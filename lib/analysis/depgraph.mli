(** Dependence graph of a basic block (data + memory dependences).

    Any topological order of this graph preserves straight-line semantics;
    that fact underlies both the bundle-schedulability check (contract groups,
    test acyclicity) and post-vectorization rescheduling. *)

open Lslp_ir

type t

val build : Block.t -> t
(** Snapshot the block into a fresh {!Arena} and build over it. *)

val build_arena : Arena.t -> t
(** Build over an arena the caller already holds; positions and aliasing
    come off its precomputed tables. *)

val arena : t -> Arena.t

val mem : t -> Instr.t -> bool
(** Was this instruction part of the block the graph was built from?
    Instructions created later (by code generation) are not members. *)

val depends : t -> Instr.t -> on:Instr.t -> bool
(** Transitive (strict) dependence.
    @raise Invalid_argument if either instruction is not a member. *)

val reaches : t -> int -> int -> bool
(** [depends] by compact index (position in the underlying arena): one
    byte read, no id lookup.  Unchecked — callers index with positions
    obtained from {!arena}. *)

val independent : t -> Instr.t list -> bool
(** No member transitively depends on another — the paper's per-bundle
    "schedulable" termination condition. *)

val schedulable_groups : t -> Instr.t list list -> bool
(** Whole-graph check: contracting each group to one node leaves the
    dependence graph acyclic. *)

val topo_order : Block.t -> Instr.t list
(** Stable topological order: original order preserved wherever dependences
    allow. *)

val reschedule : Block.t -> unit
(** Reorder the block into {!topo_order}. *)
