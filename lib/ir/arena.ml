(* Per-block instruction arena: the int-indexed snapshot behind every hot
   query.

   A block is pointer-shaped (a list of mutable records) because passes
   rewrite it in place; the analyses over it — use counts, positions,
   address adjacency — are not.  An arena freezes one block into dense
   arrays:

   - [instrs]: the instructions in program order; the array index is the
     *compact index* of an instruction, 0..n-1.  Compact indices are a
     per-arena coordinate system and must never appear in output — printed
     IR carries only the global ids from [Lslp_util.Id_gen].
   - id -> index: an offset-based int array when the block's id span is
     dense (the normal case), an [Int_table] otherwise (ids issued across
     domains can interleave).
   - CSR use lists: [use_off]/[use_dat], so [num_uses] is one subtraction
     and [users] walks a contiguous slice.  An instruction using a value
     twice appears twice, in program order — the same contract the old
     Hashtbl-of-lists kept.
   - an address side table (built lazily): base symbol and affine shape
     interned to small ints, constant offset and lane count unpacked, so
     "consecutive?" and "may-alias?" are int compares instead of affine
     differencing per query.

   Invalidation contract: an arena is a snapshot.  Passes that mutate the
   block (codegen, CSE, DCE, reorderings via [Block.set_order]) must drop
   the arena and rebuild; read-only passes (seeds, graph build, scoring,
   cost) share one arena freely.  [Verifier.check_func] rebuilds an arena
   per block and runs {!check} on it, so a stale-arena bug cannot survive a
   verified commit. *)

module Int_table = Lslp_util.Int_table
module Intern = Lslp_util.Intern

type idx_map =
  | Offset of { min_id : int; tbl : int array } (* id - min_id -> idx | -1 *)
  | Sparse of Int_table.t

type addr_tables = {
  a_base : int array;   (* interned base symbol | -1 for non-memory *)
  a_shape : int array;  (* interned affine-terms shape | -1 *)
  a_const : int array;  (* constant part of the index *)
  a_lanes : int array;  (* access lanes | 0 *)
  bases : Intern.t;
}

type t = {
  block : Block.t;
  instrs : Instr.t array;
  idx_map : idx_map;
  use_off : int array; (* length n+1, monotone *)
  use_dat : int array; (* user indices grouped by def, program order *)
  mutable addr : addr_tables option; (* built on first address query *)
}

let size t = Array.length t.instrs
let block t = t.block
let instr t k = t.instrs.(k)

let idx_of_id t id =
  match t.idx_map with
  | Offset { min_id; tbl } ->
    let o = id - min_id in
    if o < 0 || o >= Array.length tbl then -1 else Array.unsafe_get tbl o
  | Sparse tbl -> Int_table.get tbl id ~absent:(-1)

let idx t (i : Instr.t) = idx_of_id t i.Instr.id
let mem t i = idx t i >= 0

(* Program order is the array order, so position = compact index. *)
let pos t i = idx t i

let of_block (b : Block.t) =
  let instrs = Array.of_list (Block.to_list b) in
  let n = Array.length instrs in
  let min_id = ref max_int and max_id = ref min_int in
  for k = 0 to n - 1 do
    let id = instrs.(k).Instr.id in
    if id < !min_id then min_id := id;
    if id > !max_id then max_id := id
  done;
  let idx_map =
    if n = 0 then Offset { min_id = 0; tbl = [||] }
    else begin
      let span = !max_id - !min_id + 1 in
      if span <= (4 * n) + 1024 then begin
        let tbl = Array.make span (-1) in
        for k = 0 to n - 1 do
          tbl.(instrs.(k).Instr.id - !min_id) <- k
        done;
        Offset { min_id = !min_id; tbl }
      end
      else begin
        let tbl = Int_table.create (2 * n) in
        for k = 0 to n - 1 do
          Int_table.set tbl instrs.(k).Instr.id k
        done;
        Sparse tbl
      end
    end
  in
  let lookup id =
    match idx_map with
    | Offset { min_id; tbl } ->
      let o = id - min_id in
      if o < 0 || o >= Array.length tbl then -1 else tbl.(o)
    | Sparse tbl -> Int_table.get tbl id ~absent:(-1)
  in
  (* CSR uses: count, prefix-sum, fill in program order *)
  let counts = Array.make (n + 1) 0 in
  for k = 0 to n - 1 do
    List.iter
      (fun (v : Instr.value) ->
        match v with
        | Instr.Ins def ->
          let d = lookup def.Instr.id in
          if d >= 0 then counts.(d) <- counts.(d) + 1
        | Instr.Const _ | Instr.Arg _ -> ())
      (Instr.operands instrs.(k))
  done;
  let use_off = Array.make (n + 1) 0 in
  for k = 0 to n - 1 do
    use_off.(k + 1) <- use_off.(k) + counts.(k)
  done;
  let use_dat = Array.make use_off.(n) 0 in
  let cursor = Array.copy use_off in
  for k = 0 to n - 1 do
    List.iter
      (fun (v : Instr.value) ->
        match v with
        | Instr.Ins def ->
          let d = lookup def.Instr.id in
          if d >= 0 then begin
            use_dat.(cursor.(d)) <- k;
            cursor.(d) <- cursor.(d) + 1
          end
        | Instr.Const _ | Instr.Arg _ -> ())
      (Instr.operands instrs.(k))
  done;
  { block = b; instrs; idx_map; use_off; use_dat; addr = None }

(* ---- uses ---- *)

let num_uses t k = t.use_off.(k + 1) - t.use_off.(k)

let users t k =
  let lo = t.use_off.(k) and hi = t.use_off.(k + 1) in
  let rec go j acc = if j < lo then acc else go (j - 1) (t.instrs.(t.use_dat.(j)) :: acc) in
  go (hi - 1) []

let iter_users t k f =
  for j = t.use_off.(k) to t.use_off.(k + 1) - 1 do
    f t.use_dat.(j)
  done

let fold_users t k f acc =
  let r = ref acc in
  for j = t.use_off.(k) to t.use_off.(k + 1) - 1 do
    r := f !r t.use_dat.(j)
  done;
  !r

(* ---- address side table ---- *)

let shape_key (a : Affine.t) =
  (* canonical rendering of the symbolic part; interned once per arena *)
  let b = Buffer.create 16 in
  List.iter
    (fun (s, c) ->
      Buffer.add_string b s;
      Buffer.add_char b '*';
      Buffer.add_string b (string_of_int c);
      Buffer.add_char b '|')
    (Affine.terms a);
  Buffer.contents b

let build_addr t =
  let n = size t in
  let a_base = Array.make n (-1) in
  let a_shape = Array.make n (-1) in
  let a_const = Array.make n 0 in
  let a_lanes = Array.make n 0 in
  let bases = Intern.create 8 in
  let shapes = Intern.create 8 in
  for k = 0 to n - 1 do
    match Instr.address t.instrs.(k) with
    | Some a ->
      a_base.(k) <- Intern.intern bases a.Instr.base;
      a_shape.(k) <- Intern.intern shapes (shape_key a.Instr.index);
      a_const.(k) <- Affine.const_part a.Instr.index;
      a_lanes.(k) <- a.Instr.access_lanes
    | None -> ()
  done;
  let tbls = { a_base; a_shape; a_const; a_lanes; bases } in
  t.addr <- Some tbls;
  tbls

let addr t = match t.addr with Some a -> a | None -> build_addr t

let is_memory t k = (addr t).a_base.(k) >= 0

let same_array t j k =
  let a = addr t in
  a.a_base.(j) >= 0 && a.a_base.(j) = a.a_base.(k)

(* Element distance [k - j] when both accesses index the same array with
   the same symbolic shape; mirrors [Addr.element_distance]. *)
let element_distance t j k =
  let a = addr t in
  if a.a_base.(j) < 0 || a.a_base.(j) <> a.a_base.(k) then None
  else if a.a_shape.(j) <> a.a_shape.(k) then None
  else Some (a.a_const.(k) - a.a_const.(j))

let consecutive t j k =
  let a = addr t in
  a.a_base.(j) >= 0
  && a.a_base.(j) = a.a_base.(k)
  && a.a_shape.(j) = a.a_shape.(k)
  && a.a_const.(k) - a.a_const.(j) = a.a_lanes.(j)

let ranges_overlap a_lo a_len b_lo b_len =
  a_lo < b_lo + b_len && b_lo < a_lo + a_len

let may_alias t j k =
  let a = addr t in
  if a.a_base.(j) < 0 || a.a_base.(j) <> a.a_base.(k) then false
  else if a.a_shape.(j) <> a.a_shape.(k) then true (* symbolic: assume the worst *)
  else
    ranges_overlap 0 a.a_lanes.(j) (a.a_const.(k) - a.a_const.(j)) a.a_lanes.(k)

let addr_base t k = (addr t).a_base.(k)
let addr_const t k = (addr t).a_const.(k)
let addr_lanes t k = (addr t).a_lanes.(k)

let same_shape t j k =
  let a = addr t in
  a.a_shape.(j) >= 0 && a.a_shape.(j) = a.a_shape.(k)

(* ---- invariants ---- *)

(* The structural facts every consumer relies on: compact indices are dense
   and bijective with the block's ids, CSR offsets are monotone and sized
   to the data, and uses are acyclic (a straight-line block defines before
   it uses, so every user index exceeds its def's index). *)
let check t =
  let n = size t in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec instrs_ok k =
    if k >= n then Ok ()
    else
      let id = t.instrs.(k).Instr.id in
      let k' = idx_of_id t id in
      if k' <> k then err "arena: id %d maps to index %d, expected %d" id k' k
      else instrs_ok (k + 1)
  in
  let rec offs_ok k =
    if k >= n then Ok ()
    else if t.use_off.(k + 1) < t.use_off.(k) then
      err "arena: CSR offsets not monotone at %d" k
    else offs_ok (k + 1)
  in
  let rec uses_ok j =
    if j >= Array.length t.use_dat then Ok ()
    else
      let u = t.use_dat.(j) in
      if u < 0 || u >= n then err "arena: use entry %d out of range" u
      else uses_ok (j + 1)
  in
  let rec acyclic_ok k =
    if k >= n then Ok ()
    else
      let rec go j =
        if j >= t.use_off.(k + 1) then Ok ()
        else if t.use_dat.(j) <= k then
          err "arena: use of %%%d at or before its definition"
            t.instrs.(k).Instr.id
        else go (j + 1)
      in
      (match go (t.use_off.(k)) with Ok () -> acyclic_ok (k + 1) | e -> e)
  in
  match instrs_ok 0 with
  | Error _ as e -> e
  | Ok () -> (
    if t.use_off.(0) <> 0 then err "arena: CSR base offset not 0"
    else if t.use_off.(n) <> Array.length t.use_dat then
      err "arena: CSR total %d does not match data length %d" t.use_off.(n)
        (Array.length t.use_dat)
    else
      match offs_ok 0 with
      | Error _ as e -> e
      | Ok () -> (
        match uses_ok 0 with Error _ as e -> e | Ok () -> acyclic_ok 0))
