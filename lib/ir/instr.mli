(** Instructions and values of the straight-line IR.

    Instructions carry a unique [id] (identity semantics) and mutable [kind]
    so passes can rewrite operands in place.  Memory is accessed through
    {!address} records — an array symbol plus an affine element index — which
    keeps address arithmetic out of the use-def graph, mirroring the
    GEP+SCEV split that LLVM's SLP vectorizer relies on. *)

type const =
  | Cint of int64
  | Cfloat of float
  | Cint32 of int32
  | Cfloat32 of float  (** kept single-rounded *)

type address = {
  base : string;       (** array argument the access goes through *)
  elt : Types.scalar;  (** element type of the array *)
  index : Affine.t;    (** element index, affine in integer arguments *)
  access_lanes : int;  (** 1 = scalar access, n >= 2 = vector access *)
}

type t = private {
  id : int;
  mutable kind : kind;
  mutable ty : Types.t;
  mutable name : string;
}

and kind =
  | Binop of Opcode.binop * value * value
  | Unop of Opcode.unop * value
  | Load of address
  | Store of address * value
  | Cmp of Opcode.cmp * value * value
      (** compare lanes; result has the same lane count at element type i1 *)
  | Select of value * value * value
      (** [(mask, a, b)]: per lane, [a] where the mask lane is true, else
          [b] *)
  | Masked_load of address * value * value
      (** [(addr, mask, passthrough)]: masked-off lanes read nothing and
          yield the passthrough lane *)
  | Masked_store of address * value * value
      (** [(addr, v, mask)]: masked-off lanes write nothing — a may-write
          for dependence purposes *)
  | Splat of value          (** broadcast a scalar into all lanes *)
  | Buildvec of value list  (** gather scalars into a vector *)
  | Extract of value * int  (** extract one lane of a vector *)
  | Reduce of Opcode.binop * value
      (** horizontal reduction of all lanes into a scalar *)
  | Shuffle of value * int list
      (** single-source lane permutation: lane k of the result is lane
          [List.nth idx k] of the source *)

and value = Const of const | Arg of arg | Ins of t

and arg = { arg_name : string; arg_ty : arg_ty }

and arg_ty = Int_arg | Float_arg | Array_arg of Types.scalar

val create : ?name:string -> kind -> Types.t -> t
(** Fresh instruction with a new unique id.  Prefer {!Builder} in client
    code; this is the low-level constructor. *)

val id_watermark : unit -> int
(** The id the next created instruction will receive (racy under
    concurrency — intended for tests and smoke checks).  Ids live in the
    process-global {!Lslp_util.Id_gen} space; arena compact indices are a
    different, per-snapshot coordinate system that restarts at 0, so an
    output instruction with an id below the watermark taken before its
    function was built is a leaked index, not a real id. *)

val copy : t -> t
(** Duplicate under a fresh id, carrying over every other field (kind, type,
    name, and any field added later).  The single cloning primitive behind
    {!Func.clone} and the unroller; operands still point at the original
    instructions — remap them afterwards with {!map_operands}. *)

val set_kind : t -> kind -> unit
(** Reinstate a previously captured [kind] — the rollback primitive behind
    transactional regions ({!Lslp_robust.Transact}).  [kind] is the only
    mutable field any pass writes, so saving it (plus the block's
    instruction order) snapshots a block completely. *)

val map_address_index : (Affine.t -> Affine.t) -> t -> unit
(** Rewrite the address index of a (masked) load/store in place; no-op on
    non-memory instructions.  Used by the unroller to shift the loop
    counter in replicated bodies. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val const_ty : const -> Types.t
val value_ty : value -> Types.t option
(** Type of a value; [None] for array arguments, which are not first-class. *)

val operands : t -> value list
val set_operands : t -> value list -> unit
(** Replace the operands, keeping the kind.
    @raise Invalid_argument if the operand count does not match. *)

val map_operands : (value -> value) -> t -> unit

val is_store : t -> bool
val is_load : t -> bool
val is_memory_access : t -> bool
val has_side_effect : t -> bool
val address : t -> address option
val binop : t -> Opcode.binop option
val is_commutative : t -> bool

(** Opcode classes: two instructions are candidates for the same vectorizable
    group iff their classes are equal. *)
type opclass =
  | C_binop of Opcode.binop
  | C_unop of Opcode.unop
  | C_cmp of Opcode.cmp
  | C_select
  | C_load
  | C_store
  | C_masked_load
  | C_masked_store
  | C_splat
  | C_buildvec
  | C_extract
  | C_reduce of Opcode.binop
  | C_shuffle

val opclass : t -> opclass
val equal_opclass : opclass -> opclass -> bool
val opclass_name : opclass -> string

val equal_const : const -> const -> bool
val equal_value : value -> value -> bool
(** Instruction values compare by identity; constants bitwise; arguments by
    name. *)

val value_id : value -> int option
