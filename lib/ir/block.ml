(* A basic block: an ordered sequence of instructions.

   Blocks are small (the paper's kernels are tens to a few hundred
   instructions), so we keep a plain list and rebuild the id -> position
   table on demand, invalidating it on every mutation. *)

type bound = Bound_const of int | Bound_sym of string

type loop_info = {
  counter : string;      (* loop-local induction symbol, not a function arg *)
  l_start : int;
  l_stop : bound;        (* exclusive: iterate while counter < stop *)
  l_step : int;          (* > 0 *)
}

type kind = Straight | Loop of loop_info

type t = {
  label : string;
  kind : kind;
  mutable insts : Instr.t list;      (* program order *)
  mutable pos_cache : (int, int) Hashtbl.t option;
}

let create ?(label = "entry") ?(kind = Straight) () =
  { label; kind; insts = []; pos_cache = None }

let label b = b.label
let kind b = b.kind

let loop_info b = match b.kind with Straight -> None | Loop li -> Some li

let is_loop b = match b.kind with Straight -> false | Loop _ -> true

let pp_bound ppf = function
  | Bound_const k -> Fmt.int ppf k
  | Bound_sym s -> Fmt.string ppf s

(* Number of iterations, when the bound is a compile-time constant. *)
let trip_count li =
  match li.l_stop with
  | Bound_sym _ -> None
  | Bound_const stop ->
    if li.l_step <= 0 then None
    else if stop <= li.l_start then Some 0
    else Some ((stop - li.l_start + li.l_step - 1) / li.l_step)

let invalidate b = b.pos_cache <- None

let to_list b = b.insts

let length b = List.length b.insts

let append b i =
  b.insts <- b.insts @ [ i ];
  invalidate b

let append_list b is =
  b.insts <- b.insts @ is;
  invalidate b

let mem b i = List.exists (Instr.equal i) b.insts

let positions b =
  match b.pos_cache with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    List.iteri (fun pos (i : Instr.t) -> Hashtbl.replace tbl i.id pos) b.insts;
    b.pos_cache <- Some tbl;
    tbl

let position b (i : Instr.t) = Hashtbl.find_opt (positions b) i.id

let position_exn b i =
  match position b i with
  | Some p -> p
  | None -> invalid_arg "Block.position_exn: instruction not in block"

let insert_before b ~anchor is =
  let rec go = function
    | [] -> invalid_arg "Block.insert_before: anchor not in block"
    | x :: rest when Instr.equal x anchor -> is @ (x :: rest)
    | x :: rest -> x :: go rest
  in
  b.insts <- go b.insts;
  invalidate b

let remove_ids b ids =
  b.insts <- List.filter (fun (i : Instr.t) -> not (List.mem i.id ids)) b.insts;
  invalidate b

let remove b i = remove_ids b [ i.Instr.id ]

let set_order b insts =
  b.insts <- insts;
  invalidate b

let iter f b = List.iter f b.insts
let fold f acc b = List.fold_left f acc b.insts

let find_all p b = List.filter p b.insts
