(* A basic block: an ordered sequence of instructions.

   Program order is kept as a reversed spine so [append] — the builder's
   only operation — is O(1); the forward list and the id -> position table
   are memoized and dropped on every mutation.  Positions live in an
   open-addressing int table ([Lslp_util.Int_table]), not a Hashtbl of
   boxed ints. *)

module Int_table = Lslp_util.Int_table

type bound = Bound_const of int | Bound_sym of string

type loop_info = {
  counter : string;      (* loop-local induction symbol, not a function arg *)
  l_start : int;
  l_stop : bound;        (* exclusive: iterate while counter < stop *)
  l_step : int;          (* > 0 *)
}

type kind = Straight | Loop of loop_info

type t = {
  label : string;
  kind : kind;
  mutable rev_insts : Instr.t list;           (* reverse program order *)
  mutable count : int;
  mutable fwd_cache : Instr.t list option;    (* memoized program order *)
  mutable pos_cache : Int_table.t option;     (* id -> position *)
}

let create ?(label = "entry") ?(kind = Straight) () =
  { label; kind; rev_insts = []; count = 0; fwd_cache = None; pos_cache = None }

let label b = b.label
let kind b = b.kind

let loop_info b = match b.kind with Straight -> None | Loop li -> Some li

let is_loop b = match b.kind with Straight -> false | Loop _ -> true

let pp_bound ppf = function
  | Bound_const k -> Fmt.int ppf k
  | Bound_sym s -> Fmt.string ppf s

(* Number of iterations, when the bound is a compile-time constant. *)
let trip_count li =
  match li.l_stop with
  | Bound_sym _ -> None
  | Bound_const stop ->
    if li.l_step <= 0 then None
    else if stop <= li.l_start then Some 0
    else Some ((stop - li.l_start + li.l_step - 1) / li.l_step)

let invalidate b =
  b.fwd_cache <- None;
  b.pos_cache <- None

let to_list b =
  match b.fwd_cache with
  | Some l -> l
  | None ->
    let l = List.rev b.rev_insts in
    b.fwd_cache <- Some l;
    l

let length b = b.count

let append b i =
  b.rev_insts <- i :: b.rev_insts;
  b.count <- b.count + 1;
  invalidate b

let append_list b is =
  List.iter (fun i -> b.rev_insts <- i :: b.rev_insts) is;
  b.count <- b.count + List.length is;
  invalidate b

let positions b =
  match b.pos_cache with
  | Some tbl -> tbl
  | None ->
    let tbl = Int_table.create (2 * b.count) in
    List.iteri
      (fun pos (i : Instr.t) -> Int_table.set tbl i.id pos)
      (to_list b);
    b.pos_cache <- Some tbl;
    tbl

let position b (i : Instr.t) =
  match Int_table.get (positions b) i.id ~absent:(-1) with
  | -1 -> None
  | p -> Some p

let position_exn b (i : Instr.t) =
  match Int_table.get (positions b) i.id ~absent:(-1) with
  | -1 -> invalid_arg "Block.position_exn: instruction not in block"
  | p -> p

let mem b (i : Instr.t) = Int_table.mem (positions b) i.id

let set_order b insts =
  b.rev_insts <- List.rev insts;
  b.count <- List.length insts;
  b.fwd_cache <- Some insts;
  b.pos_cache <- None

let insert_before b ~anchor is =
  let rec go = function
    | [] -> invalid_arg "Block.insert_before: anchor not in block"
    | x :: rest when Instr.equal x anchor -> is @ (x :: rest)
    | x :: rest -> x :: go rest
  in
  set_order b (go (to_list b))

let remove_ids b ids =
  let dead =
    match ids with
    | [] | [ _ ] -> fun id -> List.mem id ids
    | _ ->
      let tbl = Int_table.create (2 * List.length ids) in
      List.iter (fun id -> Int_table.set tbl id 0) ids;
      fun id -> Int_table.mem tbl id
  in
  set_order b
    (List.filter (fun (i : Instr.t) -> not (dead i.Instr.id)) (to_list b))

let remove b i = remove_ids b [ i.Instr.id ]

let iter f b = List.iter f (to_list b)
let fold f acc b = List.fold_left f acc (to_list b)

let find_all p b = List.filter p (to_list b)
