(* A basic block: an ordered sequence of instructions.

   Blocks are small (the paper's kernels are tens to a few hundred
   instructions), so we keep a plain list and rebuild the id -> position
   table on demand, invalidating it on every mutation. *)

type t = {
  mutable insts : Instr.t list;      (* program order *)
  mutable pos_cache : (int, int) Hashtbl.t option;
}

let create () = { insts = []; pos_cache = None }

let invalidate b = b.pos_cache <- None

let to_list b = b.insts

let length b = List.length b.insts

let append b i =
  b.insts <- b.insts @ [ i ];
  invalidate b

let append_list b is =
  b.insts <- b.insts @ is;
  invalidate b

let mem b i = List.exists (Instr.equal i) b.insts

let positions b =
  match b.pos_cache with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    List.iteri (fun pos (i : Instr.t) -> Hashtbl.replace tbl i.id pos) b.insts;
    b.pos_cache <- Some tbl;
    tbl

let position b (i : Instr.t) = Hashtbl.find_opt (positions b) i.id

let position_exn b i =
  match position b i with
  | Some p -> p
  | None -> invalid_arg "Block.position_exn: instruction not in block"

let insert_before b ~anchor is =
  let rec go = function
    | [] -> invalid_arg "Block.insert_before: anchor not in block"
    | x :: rest when Instr.equal x anchor -> is @ (x :: rest)
    | x :: rest -> x :: go rest
  in
  b.insts <- go b.insts;
  invalidate b

let remove_ids b ids =
  b.insts <- List.filter (fun (i : Instr.t) -> not (List.mem i.id ids)) b.insts;
  invalidate b

let remove b i = remove_ids b [ i.Instr.id ]

let set_order b insts =
  b.insts <- insts;
  invalidate b

let iter f b = List.iter f b.insts
let fold f acc b = List.fold_left f acc b.insts

let find_all p b = List.filter p b.insts
