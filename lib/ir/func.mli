(** A kernel function: named arguments plus an ordered list of basic blocks.

    The control skeleton is minimal and structured: blocks execute in list
    order (fallthrough), and a block may be the body of a counted loop
    (see {!Block.kind}).  There are no phis — loop state lives in memory —
    and regions are self-contained: an instruction may only be referenced
    from its own block, which the verifier enforces, so every analysis and
    transformation stays block-local.  Array arguments model distinct
    (non-aliasing) arrays, as in the paper's kernels where each array is a
    separate global. *)

type t = {
  fname : string;
  args : Instr.arg list;
  mutable blocks : Block.t list;  (** execution order; never empty *)
}

val create : name:string -> args:Instr.arg list -> t
(** A function with a single empty straight-line block labelled ["entry"]. *)

val entry : t -> Block.t
(** First block.  Single-block functions (every pre-region kernel) do all
    their work here. *)

val blocks : t -> Block.t list

val add_block : t -> Block.t -> unit

val find_block : t -> string -> Block.t option

val replace_block : t -> Block.t -> Block.t list -> unit
(** [replace_block f b news] splices [news] where [b] stood, preserving the
    order of the surrounding blocks — the unroller's primitive.
    @raise Invalid_argument if [b] is not a block of [f]. *)

val iter_instrs : (Instr.t -> unit) -> t -> unit
val fold_instrs : ('a -> Instr.t -> 'a) -> 'a -> t -> 'a
val num_instrs : t -> int

val find_arg : t -> string -> Instr.arg option
val array_args : t -> Instr.arg list
val int_args : t -> Instr.arg list

val clone : t -> t
(** Deep copy: fresh instructions (via {!Instr.copy}, so every per-instruction
    field is preserved) with remapped operands, block structure and loop
    metadata intact.  Passes can then be run destructively on the copy while
    the original remains usable (e.g. as the scalar baseline in differential
    tests). *)
