(** A kernel function: named arguments plus one straight-line basic block.

    Array arguments model distinct (non-aliasing) arrays, as in the paper's
    kernels where each array is a separate global. *)

type t = {
  fname : string;
  args : Instr.arg list;
  block : Block.t;
}

val create : name:string -> args:Instr.arg list -> t

val find_arg : t -> string -> Instr.arg option
val array_args : t -> Instr.arg list
val int_args : t -> Instr.arg list

val clone : t -> t
(** Deep copy: fresh instructions with remapped operands.  Passes can then be
    run destructively on the copy while the original remains usable (e.g. as
    the scalar baseline in differential tests). *)
