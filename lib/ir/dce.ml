(* Dead code elimination.

   After SLP/LSLP code generation replaces a tree of scalar instructions with
   vector ones, the scalars become dead (their stores were removed
   explicitly); this pass sweeps them.  Iterates to a fixed point so whole
   dead trees disappear. *)

let run_block block =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let uses = Use_info.compute block in
    let dead = Block.find_all (fun i -> Use_info.is_dead uses i) block in
    if dead <> [] then begin
      changed := true;
      removed := !removed + List.length dead;
      Block.remove_ids block (List.map (fun (i : Instr.t) -> i.id) dead)
    end
  done;
  !removed

(* Blocks are self-contained regions (no cross-block uses), so a per-block
   sweep is a complete function-level DCE. *)
let run (f : Func.t) =
  List.fold_left (fun acc b -> acc + run_block b) 0 (Func.blocks f)
