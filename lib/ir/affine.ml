(* Affine index expressions: [c0 + c1*s1 + c2*s2 + ...] over named symbols.

   This is the normal form our SCEV-lite analysis works on.  The paper's SLP
   uses LLVM scalar evolution only to decide whether two memory accesses are
   consecutive; differencing two affine forms answers that exactly whenever
   subscripts are affine in the kernel's integer parameters (which all the
   evaluated kernels satisfy).

   Representation invariant: [terms] is sorted by symbol name and contains no
   zero coefficients, so structural equality coincides with semantic
   equality. *)

type t = {
  terms : (string * int) list;  (* sorted by symbol, coefficients <> 0 *)
  const : int;
}

let const k = { terms = []; const = k }
let zero = const 0

let sym ?(coeff = 1) s =
  if coeff = 0 then zero else { terms = [ (s, coeff) ]; const = 0 }

let rec merge_terms xs ys =
  match (xs, ys) with
  | [], t | t, [] -> t
  | ((sx, cx) as x) :: xs', ((sy, cy) as y) :: ys' ->
    let cmp = String.compare sx sy in
    if cmp < 0 then x :: merge_terms xs' ys
    else if cmp > 0 then y :: merge_terms xs ys'
    else
      let c = cx + cy in
      if c = 0 then merge_terms xs' ys' else (sx, c) :: merge_terms xs' ys'

let add a b = { terms = merge_terms a.terms b.terms; const = a.const + b.const }

let scale k a =
  if k = 0 then zero
  else
    { terms = List.map (fun (s, c) -> (s, c * k)) a.terms;
      const = a.const * k }

let neg a = scale (-1) a
let sub a b = add a (neg b)
let add_const k a = { a with const = a.const + k }

let mul a b =
  match (a.terms, b.terms) with
  | [], _ -> Some (scale a.const b)
  | _, [] -> Some (scale b.const a)
  | _ :: _, _ :: _ -> None

let is_const a = a.terms = []

let to_const a = if is_const a then Some a.const else None

let equal a b = a.terms = b.terms && a.const = b.const

let compare a b =
  let c = compare a.terms b.terms in
  if c <> 0 then c else Int.compare a.const b.const

(* [diff_const a b] is [Some (a - b)] when the two forms differ only in their
   constant part — the key query behind consecutive-access tests. *)
let diff_const a b = if a.terms = b.terms then Some (a.const - b.const) else None

let symbols a = List.map fst a.terms

(* [subst s repl a] replaces every occurrence of the symbol [s] in [a] by the
   affine form [repl]: the algebra behind loop unrolling, where the counter
   [i] becomes [i + k*step] (shifted copies) or a constant (epilogue). *)
let subst s repl a =
  match List.assoc_opt s a.terms with
  | None -> a
  | Some c ->
    add (scale c repl) { a with terms = List.remove_assoc s a.terms }

let mem_symbol s a = List.mem_assoc s a.terms

let eval ~env a =
  List.fold_left (fun acc (s, c) -> acc + (c * env s)) a.const a.terms

let pp ppf a =
  let pp_term first ppf (s, c) =
    if c = 1 then Fmt.pf ppf (if first then "%s" else " + %s") s
    else if c = -1 then Fmt.pf ppf (if first then "-%s" else " - %s") s
    else if c >= 0 then Fmt.pf ppf (if first then "%d*%s" else " + %d*%s") c s
    else
      Fmt.pf ppf (if first then "-%d*%s" else " - %d*%s") (abs c) s
  in
  match a.terms with
  | [] -> Fmt.int ppf a.const
  | t0 :: rest ->
    pp_term true ppf t0;
    List.iter (pp_term false ppf) rest;
    if a.const > 0 then Fmt.pf ppf " + %d" a.const
    else if a.const < 0 then Fmt.pf ppf " - %d" (abs a.const)

let to_string a = Fmt.str "%a" pp a

let terms a = a.terms
let const_part a = a.const
