(* Instruction opcodes and their algebraic properties.

   Commutativity and associativity drive the whole LSLP algorithm: only
   commutative opcodes are legal reordering candidates, and only opcodes that
   are both commutative and associative may form multi-nodes (reassociating a
   chain is only sound for associative operations).  Floating-point add/mul
   are treated as commutative *and* associative because the paper compiles
   with [-ffast-math]. *)

type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor
  | Shl | Lshr | Ashr
  | Smin | Smax
  | Fadd | Fsub | Fmul | Fdiv
  | Fmin | Fmax

type unop = Neg | Fneg | Fsqrt | Fabs

(* Comparison predicates, produced by if-conversion.  They live outside the
   [binop] enum on purpose: a compare changes the element type (lanes in,
   i1 lanes out), so none of the binop machinery (width checks, reduction
   matching, the 0..18 [binop_code] table) applies.  Width-polymorphic like
   the binops: the predicate compares whatever scalar its operands carry. *)
type cmp = Lt | Le | Gt | Ge | Eq | Ne

let all_binops =
  [ Add; Sub; Mul; Sdiv; Srem; And; Or; Xor; Shl; Lshr; Ashr; Smin; Smax;
    Fadd; Fsub; Fmul; Fdiv; Fmin; Fmax ]

let all_unops = [ Neg; Fneg; Fsqrt; Fabs ]
let all_cmps = [ Lt; Le; Gt; Ge; Eq; Ne ]

(* Only the symmetric predicates commute; Lt/Le/Gt/Ge order their operands. *)
let cmp_is_commutative = function
  | Eq | Ne -> true
  | Lt | Le | Gt | Ge -> false

(* swap(cmp a b) = (swap_cmp cmp) b a — used when a reorder flips operands. *)
let swap_cmp = function
  | Lt -> Gt | Gt -> Lt | Le -> Ge | Ge -> Le | Eq -> Eq | Ne -> Ne

(* not(cmp a b) = (negate_cmp cmp) a b — the else-branch predicate of
   if-conversion.  Only exact under fast-math's no-NaN assumption: with a
   NaN operand both [Lt] and its negation [Ge] are false, so neither branch
   mask would fire.  The frontend documents (and the fuzzer respects) the
   no-NaN contract. *)
let negate_cmp = function
  | Lt -> Ge | Ge -> Lt | Le -> Gt | Gt -> Le | Eq -> Ne | Ne -> Eq

let is_commutative = function
  | Add | Mul | And | Or | Xor | Smin | Smax | Fadd | Fmul | Fmin | Fmax ->
    true
  | Sub | Sdiv | Srem | Shl | Lshr | Ashr | Fsub | Fdiv -> false

(* With -ffast-math semantics, every commutative opcode here is also
   associative, but keep the two notions separate: a future opcode could be
   commutative without being associative (e.g. IEEE fadd). *)
let is_associative = function
  | Add | Mul | And | Or | Xor | Smin | Smax | Fadd | Fmul | Fmin | Fmax ->
    true
  | Sub | Sdiv | Srem | Shl | Lshr | Ashr | Fsub | Fdiv -> false

let binop_is_float = function
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax -> true
  | Add | Sub | Mul | Sdiv | Srem | And | Or | Xor | Shl | Lshr | Ashr
  | Smin | Smax -> false

let unop_is_float = function
  | Fneg | Fsqrt | Fabs -> true
  | Neg -> false

(* The *default* scalar an opcode operates on: what the (i64/f64-only)
   kernel-language frontend instantiates.  The IR itself is width-
   polymorphic — see [binop_accepts]. *)
let binop_operand_scalar op : Types.scalar =
  if binop_is_float op then F64 else I64

let unop_operand_scalar op : Types.scalar =
  if unop_is_float op then F64 else I64

(* Width-polymorphic class check: float opcodes work on f32/f64 lanes,
   integer opcodes on i32/i64 lanes. *)
let binop_accepts op (s : Types.scalar) =
  Types.is_float_scalar s = binop_is_float op

let unop_accepts op (s : Types.scalar) =
  Types.is_float_scalar s = unop_is_float op

(* Comparisons accept any non-mask scalar; comparing masks is meaningless
   (use And/Or/Xor on the i1 lanes instead). *)
let cmp_accepts (s : Types.scalar) = not (Types.is_mask_scalar s)

let equal_binop (a : binop) (b : binop) = a = b
let equal_unop (a : unop) (b : unop) = a = b
let equal_cmp (a : cmp) (b : cmp) = a = b

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Srem -> "srem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | Smin -> "smin" | Smax -> "smax"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Fmin -> "fmin" | Fmax -> "fmax"

let unop_name = function
  | Neg -> "neg" | Fneg -> "fneg" | Fsqrt -> "fsqrt" | Fabs -> "fabs"

let cmp_name = function
  | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge" | Eq -> "eq"
  | Ne -> "ne"

let pp_binop ppf op = Fmt.string ppf (binop_name op)
let pp_unop ppf op = Fmt.string ppf (unop_name op)
let pp_cmp ppf op = Fmt.string ppf (cmp_name op)

let binop_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Sdiv -> 3 | Srem -> 4
  | And -> 5 | Or -> 6 | Xor -> 7
  | Shl -> 8 | Lshr -> 9 | Ashr -> 10
  | Smin -> 11 | Smax -> 12
  | Fadd -> 13 | Fsub -> 14 | Fmul -> 15 | Fdiv -> 16
  | Fmin -> 17 | Fmax -> 18

let unop_code = function Neg -> 0 | Fneg -> 1 | Fsqrt -> 2 | Fabs -> 3

let cmp_code = function
  | Lt -> 0 | Le -> 1 | Gt -> 2 | Ge -> 3 | Eq -> 4 | Ne -> 5
