(* Instruction opcodes and their algebraic properties.

   Commutativity and associativity drive the whole LSLP algorithm: only
   commutative opcodes are legal reordering candidates, and only opcodes that
   are both commutative and associative may form multi-nodes (reassociating a
   chain is only sound for associative operations).  Floating-point add/mul
   are treated as commutative *and* associative because the paper compiles
   with [-ffast-math]. *)

type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor
  | Shl | Lshr | Ashr
  | Smin | Smax
  | Fadd | Fsub | Fmul | Fdiv
  | Fmin | Fmax

type unop = Neg | Fneg | Fsqrt | Fabs

let all_binops =
  [ Add; Sub; Mul; Sdiv; Srem; And; Or; Xor; Shl; Lshr; Ashr; Smin; Smax;
    Fadd; Fsub; Fmul; Fdiv; Fmin; Fmax ]

let all_unops = [ Neg; Fneg; Fsqrt; Fabs ]

let is_commutative = function
  | Add | Mul | And | Or | Xor | Smin | Smax | Fadd | Fmul | Fmin | Fmax ->
    true
  | Sub | Sdiv | Srem | Shl | Lshr | Ashr | Fsub | Fdiv -> false

(* With -ffast-math semantics, every commutative opcode here is also
   associative, but keep the two notions separate: a future opcode could be
   commutative without being associative (e.g. IEEE fadd). *)
let is_associative = function
  | Add | Mul | And | Or | Xor | Smin | Smax | Fadd | Fmul | Fmin | Fmax ->
    true
  | Sub | Sdiv | Srem | Shl | Lshr | Ashr | Fsub | Fdiv -> false

let binop_is_float = function
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax -> true
  | Add | Sub | Mul | Sdiv | Srem | And | Or | Xor | Shl | Lshr | Ashr
  | Smin | Smax -> false

let unop_is_float = function
  | Fneg | Fsqrt | Fabs -> true
  | Neg -> false

(* The *default* scalar an opcode operates on: what the (i64/f64-only)
   kernel-language frontend instantiates.  The IR itself is width-
   polymorphic — see [binop_accepts]. *)
let binop_operand_scalar op : Types.scalar =
  if binop_is_float op then F64 else I64

let unop_operand_scalar op : Types.scalar =
  if unop_is_float op then F64 else I64

(* Width-polymorphic class check: float opcodes work on f32/f64 lanes,
   integer opcodes on i32/i64 lanes. *)
let binop_accepts op (s : Types.scalar) =
  Types.is_float_scalar s = binop_is_float op

let unop_accepts op (s : Types.scalar) =
  Types.is_float_scalar s = unop_is_float op

let equal_binop (a : binop) (b : binop) = a = b
let equal_unop (a : unop) (b : unop) = a = b

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Srem -> "srem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | Smin -> "smin" | Smax -> "smax"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Fmin -> "fmin" | Fmax -> "fmax"

let unop_name = function
  | Neg -> "neg" | Fneg -> "fneg" | Fsqrt -> "fsqrt" | Fabs -> "fabs"

let pp_binop ppf op = Fmt.string ppf (binop_name op)
let pp_unop ppf op = Fmt.string ppf (unop_name op)

let binop_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Sdiv -> 3 | Srem -> 4
  | And -> 5 | Or -> 6 | Xor -> 7
  | Shl -> 8 | Lshr -> 9 | Ashr -> 10
  | Smin -> 11 | Smax -> 12
  | Fadd -> 13 | Fsub -> 14 | Fmul -> 15 | Fdiv -> 16
  | Fmin -> 17 | Fmax -> 18

let unop_code = function Neg -> 0 | Fneg -> 1 | Fsqrt -> 2 | Fabs -> 3
