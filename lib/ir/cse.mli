(** Local common-subexpression elimination (the early-CSE the real pipeline
    runs before SLP).  Commutative operands are canonicalized, loads are
    invalidated by same-array stores.  Returns the number of instructions
    removed. *)

val run_block : Block.t -> int
val run : Func.t -> int
