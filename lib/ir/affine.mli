(** Affine index expressions [c0 + c1*s1 + ... + cn*sn] over named symbols.

    The normal form used by the SCEV-lite address analysis: array subscripts
    are kept symbolically so that "are these two accesses adjacent?" reduces
    to differencing two affine forms.  Values are in *element* units, not
    bytes. *)

type t

val zero : t
val const : int -> t

val sym : ?coeff:int -> string -> t
(** [sym s] is the symbol [s]; [sym ~coeff:k s] is [k*s]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val add_const : int -> t -> t

val mul : t -> t -> t option
(** Product, defined only when at least one side is constant ([None]
    otherwise — the result would not be affine). *)

val is_const : t -> bool
val to_const : t -> int option

val equal : t -> t -> bool
val compare : t -> t -> int

val diff_const : t -> t -> int option
(** [diff_const a b = Some k] iff [a - b = k] for every assignment of the
    symbols, i.e. the symbolic parts agree.  This is the consecutive-access
    oracle. *)

val symbols : t -> string list

val subst : string -> t -> t -> t
(** [subst s repl a] substitutes the affine form [repl] for every occurrence
    of the symbol [s] in [a].  This is the algebra behind loop unrolling:
    the counter [i] becomes [i + k*step] in shifted body copies, or a
    constant in the fully-unrolled epilogue. *)

val mem_symbol : string -> t -> bool

val eval : env:(string -> int) -> t -> int
(** Evaluate under an assignment of the symbols. *)

val pp : t Fmt.t
val to_string : t -> string

val terms : t -> (string * int) list
(** The symbolic part, sorted by symbol with nonzero coefficients — the
    normal-form shape an arena interns so that address differencing
    becomes an int comparison. *)

val const_part : t -> int
(** The constant part [c0]. *)
