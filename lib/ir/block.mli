(** A basic block: an ordered, mutable sequence of instructions.

    The SLP papers operate on straight-line code inside one block, so this is
    the unit every analysis and transformation works over.  Program order is
    significant: memory dependences are defined relative to it. *)

type bound = Bound_const of int | Bound_sym of string
(** Loop bound: a compile-time constant or an [i64] function argument. *)

type loop_info = {
  counter : string;  (** induction symbol, local to the block's addresses *)
  l_start : int;
  l_stop : bound;    (** exclusive: iterate while [counter < l_stop] *)
  l_step : int;      (** > 0 *)
}

type kind = Straight | Loop of loop_info
(** A block is either straight-line code reached by fallthrough, or the body
    of a counted loop.  Loop state lives in memory (no phis): the only value
    a [Loop] block threads between iterations is its counter symbol, which
    may appear in the block's address expressions. *)

type t

val create : ?label:string -> ?kind:kind -> unit -> t
val label : t -> string
val kind : t -> kind
val loop_info : t -> loop_info option
val is_loop : t -> bool
val pp_bound : bound Fmt.t

val trip_count : loop_info -> int option
(** Number of iterations when the bound is constant; [None] for symbolic
    bounds or non-positive steps. *)

val to_list : t -> Instr.t list
val length : t -> int

val append : t -> Instr.t -> unit
val append_list : t -> Instr.t list -> unit

val mem : t -> Instr.t -> bool

val position : t -> Instr.t -> int option
(** Position of an instruction in program order (0-based). *)

val position_exn : t -> Instr.t -> int

val insert_before : t -> anchor:Instr.t -> Instr.t list -> unit
(** Insert a sequence immediately before [anchor].
    @raise Invalid_argument if [anchor] is not in the block. *)

val remove : t -> Instr.t -> unit
val remove_ids : t -> int list -> unit

val set_order : t -> Instr.t list -> unit
(** Replace the block's contents/order wholesale (used by the scheduler). *)

val iter : (Instr.t -> unit) -> t -> unit
val fold : ('a -> Instr.t -> 'a) -> 'a -> t -> 'a
val find_all : (Instr.t -> bool) -> t -> Instr.t list
