(** A basic block: an ordered, mutable sequence of instructions.

    The SLP papers operate on straight-line code inside one block, so this is
    the unit every analysis and transformation works over.  Program order is
    significant: memory dependences are defined relative to it. *)

type t

val create : unit -> t
val to_list : t -> Instr.t list
val length : t -> int

val append : t -> Instr.t -> unit
val append_list : t -> Instr.t list -> unit

val mem : t -> Instr.t -> bool

val position : t -> Instr.t -> int option
(** Position of an instruction in program order (0-based). *)

val position_exn : t -> Instr.t -> int

val insert_before : t -> anchor:Instr.t -> Instr.t list -> unit
(** Insert a sequence immediately before [anchor].
    @raise Invalid_argument if [anchor] is not in the block. *)

val remove : t -> Instr.t -> unit
val remove_ids : t -> int list -> unit

val set_order : t -> Instr.t list -> unit
(** Replace the block's contents/order wholesale (used by the scheduler). *)

val iter : (Instr.t -> unit) -> t -> unit
val fold : ('a -> Instr.t -> 'a) -> 'a -> t -> 'a
val find_all : (Instr.t -> bool) -> t -> Instr.t list
