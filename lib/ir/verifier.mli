(** IR well-formedness checking.

    Catches use-before-def, type and lane-count mismatches, unknown
    arguments, duplicate instructions and malformed addresses.  Tests run it
    after every transformation. *)

type error = { instr : Instr.t option; message : string }

val pp_error : error Fmt.t
val error_to_string : error -> string

exception Invalid of error list

val check_func : Func.t -> error list
(** All violations found, in program order ([[]] = well-formed). *)

val verify_exn : Func.t -> unit
(** @raise Invalid with the full error list if the function is ill-formed. *)

val is_valid : Func.t -> bool
