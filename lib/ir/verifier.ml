(* IR well-formedness checker.

   Run after construction and after every transformation in tests: a
   vectorizer bug that produces use-before-def or a lane-count mismatch is
   caught here rather than as a wrong answer three layers up. *)

type error = { instr : Instr.t option; message : string }

let pp_error ppf e =
  match e.instr with
  | Some i -> Fmt.pf ppf "%s: in `%a`" e.message Printer.pp_instr i
  | None -> Fmt.string ppf e.message

let error_to_string e = Fmt.str "%a" pp_error e

exception Invalid of error list

module Int_table = Lslp_util.Int_table

let check_func (f : Func.t) =
  let errors = ref [] in
  let err ?instr fmt =
    Fmt.kstr (fun message -> errors := { instr; message } :: !errors) fmt
  in
  let defined = Int_table.create 64 in
  let arg_names = Hashtbl.create 8 in
  List.iter
    (fun (a : Instr.arg) ->
      if Hashtbl.mem arg_names a.arg_name then
        err "duplicate argument name %s" a.arg_name;
      Hashtbl.replace arg_names a.arg_name a.arg_ty)
    f.args;
  let seen_ids = Int_table.create 64 in
  (* Regions are self-contained: values may only be referenced from the
     block that defines them, so [defined] is reset per block and a
     cross-block use reports as use-before-def. *)
  let check_value instr (v : Instr.value) =
    match v with
    | Instr.Ins def ->
      if not (Int_table.mem defined def.Instr.id) then
        err ~instr "use of %s before its definition (or of a value defined \
                    in another block — regions are self-contained)"
          (Printer.value_to_string v)
    | Instr.Arg a ->
      (match Hashtbl.find_opt arg_names a.arg_name with
       | None -> err ~instr "reference to unknown argument %s" a.arg_name
       | Some (Instr.Array_arg _) ->
         err ~instr "array argument %s used as scalar value" a.arg_name
       | Some (Instr.Int_arg | Instr.Float_arg) -> ())
    | Instr.Const _ -> ()
  in
  let value_ty instr v =
    match Instr.value_ty v with
    | Some ty -> ty
    | None ->
      err ~instr "operand has no value type";
      Types.Void
  in
  let expect_ty instr what expected v =
    let ty = value_ty instr v in
    if not (Types.equal ty expected) then
      err ~instr "%s: expected %a, got %a" what Types.pp expected Types.pp ty
  in
  let check_address ~counter instr (a : Instr.address) =
    (match Hashtbl.find_opt arg_names a.base with
     | Some (Instr.Array_arg elt) ->
       if not (Types.equal_scalar elt a.elt) then
         err ~instr "address element type %a does not match array %s (%a)"
           Types.pp_scalar a.elt a.base Types.pp_scalar elt
     | Some (Instr.Int_arg | Instr.Float_arg) ->
       err ~instr "%s is not an array argument" a.base
     | None -> err ~instr "unknown array %s" a.base);
    if a.access_lanes < 1 then err ~instr "non-positive access width";
    if Types.is_mask_scalar a.elt then
      err ~instr "i1 is not a memory element type (masks never touch memory)";
    List.iter
      (fun s ->
        if Some s <> counter then
          match Hashtbl.find_opt arg_names s with
          | Some Instr.Int_arg -> ()
          | Some _ -> err ~instr "index symbol %s is not an i64 argument" s
          | None ->
            err ~instr
              "index symbol %s is not an argument or the enclosing loop \
               counter" s)
      (Affine.symbols a.index)
  in
  let access_ty (a : Instr.address) =
    if a.access_lanes = 1 then Types.Scalar a.elt
    else Types.Vec (a.elt, a.access_lanes)
  in
  (* The mask for an n-lane operation is an ordinary i1 value with the same
     lane count — there is no separate predicate register file. *)
  let mask_ty n =
    if n = 1 then Types.Scalar Types.I1 else Types.Vec (Types.I1, n)
  in
  let check_instr ~counter (i : Instr.t) =
    if Int_table.mem seen_ids i.Instr.id then
      err ~instr:i "instruction appears twice in the function";
    Int_table.set seen_ids i.Instr.id 0;
    List.iter (check_value i) (Instr.operands i);
    (match i.kind with
     | Instr.Binop (op, x, y) ->
       (match i.ty with
        | Types.Scalar s | Types.Vec (s, _) ->
          if not (Opcode.binop_accepts op s) then
            err ~instr:i "opcode %s cannot operate on %a lanes"
              (Opcode.binop_name op) Types.pp_scalar s
        | Types.Void -> err ~instr:i "binop with void result");
       expect_ty i "left operand" i.ty x;
       expect_ty i "right operand" i.ty y
     | Instr.Unop (op, x) ->
       (match i.ty with
        | Types.Scalar s | Types.Vec (s, _) ->
          if not (Opcode.unop_accepts op s) then
            err ~instr:i "opcode %s cannot operate on %a lanes"
              (Opcode.unop_name op) Types.pp_scalar s
        | Types.Void -> err ~instr:i "unop with void result");
       expect_ty i "operand" i.ty x
     | Instr.Load a ->
       check_address ~counter i a;
       if not (Types.equal i.ty (access_ty a)) then
         err ~instr:i "load result type does not match access width"
     | Instr.Store (a, v) ->
       check_address ~counter i a;
       expect_ty i "stored value" (access_ty a) v;
       if not (Types.equal i.ty Types.Void) then
         err ~instr:i "store must have void type"
     | Instr.Cmp (op, x, y) ->
       (match i.ty with
        | Types.Scalar Types.I1 | Types.Vec (Types.I1, _) -> ()
        | Types.Scalar _ | Types.Vec _ | Types.Void ->
          err ~instr:i "cmp.%s must produce i1 lanes" (Opcode.cmp_name op));
       (match Instr.value_ty x with
        | Some (Types.Scalar s as tx) | Some (Types.Vec (s, _) as tx) ->
          if not (Opcode.cmp_accepts s) then
            err ~instr:i "cmp cannot compare %a lanes" Types.pp_scalar s;
          if Types.lanes tx <> Types.lanes i.ty then
            err ~instr:i "cmp lane count does not match its result";
          expect_ty i "right operand" tx y
        | Some Types.Void | None -> err ~instr:i "cmp of non-value")
     | Instr.Select (m, x, y) ->
       (match i.ty with
        | Types.Void -> err ~instr:i "select with void result"
        | Types.Scalar _ | Types.Vec _ ->
          expect_ty i "select mask" (mask_ty (Types.lanes i.ty)) m;
          expect_ty i "then-value" i.ty x;
          expect_ty i "else-value" i.ty y)
     | Instr.Masked_load (a, m, p) ->
       check_address ~counter i a;
       if not (Types.equal i.ty (access_ty a)) then
         err ~instr:i "masked load result type does not match access width";
       expect_ty i "load mask" (mask_ty a.access_lanes) m;
       expect_ty i "passthrough" (access_ty a) p
     | Instr.Masked_store (a, v, m) ->
       check_address ~counter i a;
       expect_ty i "stored value" (access_ty a) v;
       expect_ty i "store mask" (mask_ty a.access_lanes) m;
       if not (Types.equal i.ty Types.Void) then
         err ~instr:i "masked store must have void type"
     | Instr.Splat v ->
       (match i.ty with
        | Types.Vec (s, _) -> expect_ty i "splat operand" (Types.Scalar s) v
        | Types.Scalar _ | Types.Void ->
          err ~instr:i "splat must produce a vector")
     | Instr.Buildvec vs ->
       (match i.ty with
        | Types.Vec (s, n) ->
          if List.length vs <> n then
            err ~instr:i "buildvec arity %d does not match %d lanes"
              (List.length vs) n;
          List.iter (expect_ty i "buildvec element" (Types.Scalar s)) vs
        | Types.Scalar _ | Types.Void ->
          err ~instr:i "buildvec must produce a vector")
     | Instr.Extract (v, lane) ->
       (match (Instr.value_ty v, i.ty) with
        | Some (Types.Vec (s, n)), Types.Scalar s' ->
          if not (Types.equal_scalar s s') then
            err ~instr:i "extract element type mismatch";
          if lane < 0 || lane >= n then
            err ~instr:i "extract lane %d out of range [0,%d)" lane n
        | Some _, _ ->
          err ~instr:i "extract requires a vector operand and scalar result"
        | None, _ -> err ~instr:i "extract of non-value")
     | Instr.Reduce (op, v) ->
       (match (Instr.value_ty v, i.ty) with
        | Some (Types.Vec (s, _)), Types.Scalar s' ->
          if not (Types.equal_scalar s s') then
            err ~instr:i "reduce element type mismatch";
          if not (Opcode.binop_accepts op s) then
            err ~instr:i "reduce opcode does not match element type";
          if not (Opcode.is_commutative op && Opcode.is_associative op) then
            err ~instr:i "reduce requires a commutative+associative opcode"
        | Some _, _ ->
          err ~instr:i "reduce requires a vector operand and scalar result"
        | None, _ -> err ~instr:i "reduce of non-value")
     | Instr.Shuffle (v, idx) ->
       (match (Instr.value_ty v, i.ty) with
        | Some (Types.Vec (s, n)), Types.Vec (s', n') ->
          if not (Types.equal_scalar s s') then
            err ~instr:i "shuffle element type mismatch";
          if List.length idx <> n' then
            err ~instr:i "shuffle index count %d does not match %d lanes"
              (List.length idx) n';
          List.iter
            (fun k ->
              if k < 0 || k >= n then
                err ~instr:i "shuffle index %d out of range [0,%d)" k n)
            idx
        | Some _, _ ->
          err ~instr:i "shuffle requires vector operand and vector result"
        | None, _ -> err ~instr:i "shuffle of non-value"));
    Int_table.set defined i.Instr.id 0
  in
  let seen_labels = Hashtbl.create 8 in
  List.iter
    (fun b ->
      let label = Block.label b in
      if Hashtbl.mem seen_labels label then
        err "duplicate block label %s" label;
      Hashtbl.replace seen_labels label ();
      let counter =
        match Block.kind b with
        | Block.Straight -> None
        | Block.Loop li ->
          if li.Block.l_step < 1 then
            err "loop %s has non-positive step %d" label li.Block.l_step;
          if Hashtbl.mem arg_names li.Block.counter then
            err "loop %s counter %s shadows a function argument" label
              li.Block.counter;
          (match li.Block.l_stop with
           | Block.Bound_sym s ->
             (match Hashtbl.find_opt arg_names s with
              | Some Instr.Int_arg -> ()
              | Some _ ->
                err "loop %s bound %s is not an i64 argument" label s
              | None -> err "loop %s bound %s is not an argument" label s)
           | Block.Bound_const _ -> ());
          Some li.Block.counter
      in
      Int_table.clear defined;
      Block.iter (check_instr ~counter) b)
    (Func.blocks f);
  (* Arena invariants (dense bijective ids, monotone CSR offsets, acyclic
     uses) are part of well-formedness: every accepted function must
     snapshot cleanly.  Checked only on otherwise-valid IR so error lists
     for malformed inputs are unchanged. *)
  if !errors = [] then
    List.iter
      (fun b ->
        match Arena.check (Arena.of_block b) with
        | Ok () -> ()
        | Error message ->
          errors :=
            { instr = None;
              message = Fmt.str "block %s: %s" (Block.label b) message }
            :: !errors)
      (Func.blocks f);
  List.rev !errors

let verify_exn f =
  match check_func f with
  | [] -> ()
  | errors -> raise (Invalid errors)

let is_valid f = check_func f = []
