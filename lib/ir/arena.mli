(** Per-block instruction arena: dense int-indexed snapshot of a block.

    Freezes one block into flat arrays — instructions in program order
    (the array index is the {e compact index}), an id→index map, CSR use
    lists, and a lazily-built address side table with interned base
    symbols and affine shapes.  All hot queries (use counts, positions,
    adjacency, aliasing) become array reads and int compares.

    Compact indices are per-arena coordinates; printed IR only ever shows
    global ids ({!Lslp_util.Id_gen} space).  An arena is a snapshot: any
    pass that mutates the block must rebuild it. *)

type t

val of_block : Block.t -> t
val block : t -> Block.t

val size : t -> int
val instr : t -> int -> Instr.t

val idx : t -> Instr.t -> int
(** Compact index of an instruction, or [-1] when not in the arena. *)

val idx_of_id : t -> int -> int
val mem : t -> Instr.t -> bool

val pos : t -> Instr.t -> int
(** Program-order position; identical to {!idx}. *)

(** {2 Uses (CSR)} *)

val num_uses : t -> int -> int
(** O(1): number of operand occurrences of instruction [k] in the block. *)

val users : t -> int -> Instr.t list
(** Users in program order; a double use appears twice. *)

val iter_users : t -> int -> (int -> unit) -> unit
val fold_users : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

(** {2 Address side table} *)

val is_memory : t -> int -> bool

val same_array : t -> int -> int -> bool

val element_distance : t -> int -> int -> int option
(** Element distance [k - j] when comparable (same array, same symbolic
    shape); mirrors [Addr.element_distance] on the instructions. *)

val consecutive : t -> int -> int -> bool
val may_alias : t -> int -> int -> bool

val addr_base : t -> int -> int
(** Interned base-symbol id of a memory access, [-1] for non-memory.
    Interning order is program order of first appearance, so the ids are
    deterministic per arena; they are arena-local coordinates and must
    never be printed. *)

val addr_const : t -> int -> int
(** Constant part of the affine index (meaningless for non-memory). *)

val addr_lanes : t -> int -> int
(** Access width in elements, [0] for non-memory. *)

val same_shape : t -> int -> int -> bool
(** Same interned symbolic shape (both must be memory accesses). *)

(** {2 Invariants} *)

val check : t -> (unit, string) result
(** Dense bijective ids, monotone CSR offsets, in-range and acyclic uses.
    Run by [Verifier.check_func] on every block it accepts. *)

val shape_key : Affine.t -> string
(** Canonical rendering of an affine form's symbolic part; the string other
    passes intern when they need per-shape identity outside an arena. *)
