(* Local common-subexpression elimination.

   The C compilers the paper builds on (clang -O3) run early-CSE/GVN long
   before the SLP pass, so the IR the vectorizer sees has one instruction
   per distinct subexpression.  Our frontend lowers each textual occurrence
   separately; this pass restores the canonical form.

   Pure instructions are keyed by (kind, operands) — commutative operands in
   sorted order, so a*b and b*a unify.  Loads are keyed by address; a store
   conservatively invalidates all available loads of the same array.  Single
   forward pass (the block is straight-line). *)

let value_key (v : Instr.value) =
  match v with
  | Instr.Ins i -> Fmt.str "i%d" i.id
  | Instr.Arg a -> Fmt.str "a%s" a.arg_name
  | Instr.Const (Instr.Cint n) -> Fmt.str "c%Ld" n
  | Instr.Const (Instr.Cfloat x) -> Fmt.str "f%Ld" (Int64.bits_of_float x)
  | Instr.Const (Instr.Cint32 n) -> Fmt.str "d%ld" n
  | Instr.Const (Instr.Cfloat32 x) -> Fmt.str "g%ld" (Int32.bits_of_float x)

let address_key (a : Instr.address) =
  Fmt.str "%s[%s]:%d" a.base (Affine.to_string a.index) a.access_lanes

let instr_key (i : Instr.t) =
  let operand_keys () = List.map value_key (Instr.operands i) in
  match i.kind with
  | Instr.Binop (op, _, _) ->
    let ops = operand_keys () in
    let ops =
      if Opcode.is_commutative op then List.sort String.compare ops else ops
    in
    Some (Fmt.str "b:%s:%s" (Opcode.binop_name op) (String.concat "," ops))
  | Instr.Unop (op, _) ->
    Some
      (Fmt.str "u:%s:%s" (Opcode.unop_name op)
         (String.concat "," (operand_keys ())))
  | Instr.Load a -> Some (Fmt.str "l:%s" (address_key a))
  | Instr.Splat _ ->
    Some (Fmt.str "s:%s" (String.concat "," (operand_keys ())))
  | Instr.Buildvec _ ->
    Some (Fmt.str "v:%s" (String.concat "," (operand_keys ())))
  | Instr.Extract (_, lane) ->
    Some (Fmt.str "e:%d:%s" lane (String.concat "," (operand_keys ())))
  | Instr.Reduce (op, _) ->
    Some
      (Fmt.str "r:%s:%s" (Opcode.binop_name op)
         (String.concat "," (operand_keys ())))
  | Instr.Shuffle (_, idx) ->
    Some
      (Fmt.str "h:%s:%s"
         (String.concat "." (List.map string_of_int idx))
         (String.concat "," (operand_keys ())))
  | Instr.Store _ -> None

let run_block block =
  let available : (string, Instr.t) Hashtbl.t = Hashtbl.create 64 in
  let replacement : (int, Instr.t) Hashtbl.t = Hashtbl.create 16 in
  (* load keys currently available, grouped by array for invalidation *)
  let live_loads : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  let subst (v : Instr.value) =
    match v with
    | Instr.Ins i -> (
      match Hashtbl.find_opt replacement i.id with
      | Some j -> Instr.Ins j
      | None -> v)
    | Instr.Const _ | Instr.Arg _ -> v
  in
  Block.iter
    (fun i ->
      Instr.map_operands subst i;
      match instr_key i with
      | None -> (
        match i.kind with
        | Instr.Store (addr, _) ->
          let keys =
            Option.value ~default:[]
              (Hashtbl.find_opt live_loads addr.Instr.base)
          in
          List.iter (Hashtbl.remove available) keys;
          Hashtbl.remove live_loads addr.Instr.base
        | Instr.Binop _ | Instr.Unop _ | Instr.Load _ | Instr.Splat _
        | Instr.Buildvec _ | Instr.Extract _ | Instr.Reduce _
        | Instr.Shuffle _ -> ())
      | Some key -> (
        match Hashtbl.find_opt available key with
        | Some earlier -> Hashtbl.replace replacement i.id earlier
        | None ->
          Hashtbl.replace available key i;
          (match i.kind with
           | Instr.Load a ->
             let cur =
               Option.value ~default:[]
                 (Hashtbl.find_opt live_loads a.Instr.base)
             in
             Hashtbl.replace live_loads a.Instr.base (key :: cur)
           | Instr.Binop _ | Instr.Unop _ | Instr.Store _ | Instr.Splat _
           | Instr.Buildvec _ | Instr.Extract _ | Instr.Reduce _
           | Instr.Shuffle _ -> ())))
    block;
  let removed = Hashtbl.length replacement in
  Block.remove_ids block
    (Hashtbl.fold (fun id _ acc -> id :: acc) replacement []);
  removed

(* Blocks are self-contained regions, so per-block CSE is complete; a loop
   body additionally re-executes, but availability within one iteration is
   still sound because the pass never moves an instruction. *)
let run (f : Func.t) =
  List.fold_left (fun acc b -> acc + run_block b) 0 (Func.blocks f)
