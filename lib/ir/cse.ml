(* Local common-subexpression elimination.

   The C compilers the paper builds on (clang -O3) run early-CSE/GVN long
   before the SLP pass, so the IR the vectorizer sees has one instruction
   per distinct subexpression.  Our frontend lowers each textual occurrence
   separately; this pass restores the canonical form.

   Pure instructions are keyed by (kind, operands) — commutative operands in
   canonical (sorted) order, so a*b and b*a unify.  Keys are short int
   arrays (a tag plus payload words per element) looked up in an
   open-addressing table, not `Fmt.str`-built strings: this pass runs on
   every frontend compile and again as pipeline cleanup, so key building is
   hot.  Loads are keyed by (array, affine shape, offset, lanes, store
   generation of the array); a store bumps the array's generation, which
   retires all its available loads without any table surgery.  Single
   forward pass (the block is straight-line). *)

module Int_table = Lslp_util.Int_table
module Key_table = Lslp_util.Key_table
module Intern = Lslp_util.Intern

(* Per-value encoding: three words [tag; p1; p2], injective across value
   kinds (same distinctions the old string keys drew). *)
let value_words (names : Intern.t) (v : Instr.value) =
  match v with
  | Instr.Ins i -> (0, i.Instr.id, 0)
  | Instr.Arg a -> (1, Intern.intern names a.Instr.arg_name, 0)
  | Instr.Const (Instr.Cint n) ->
    (2, Int64.to_int (Int64.shift_right_logical n 32),
     Int64.to_int (Int64.logand n 0xFFFFFFFFL))
  | Instr.Const (Instr.Cfloat x) ->
    let b = Int64.bits_of_float x in
    (3, Int64.to_int (Int64.shift_right_logical b 32),
     Int64.to_int (Int64.logand b 0xFFFFFFFFL))
  | Instr.Const (Instr.Cint32 n) -> (4, Int32.to_int n, 0)
  | Instr.Const (Instr.Cfloat32 x) -> (5, Int32.to_int (Int32.bits_of_float x), 0)

let compare_triple (a, b, c) (a', b', c') =
  if a <> a' then Int.compare a a'
  else if b <> b' then Int.compare b b'
  else Int.compare c c'

let key_of_triples tag sub triples =
  let n = List.length triples in
  let k = Array.make (2 + (3 * n)) 0 in
  k.(0) <- tag;
  k.(1) <- sub;
  List.iteri
    (fun j (a, b, c) ->
      k.(2 + (3 * j)) <- a;
      k.(3 + (3 * j)) <- b;
      k.(4 + (3 * j)) <- c)
    triples;
  k

type ctx = {
  names : Intern.t;   (* arg names and array bases *)
  shapes : Intern.t;  (* affine term shapes *)
  mutable gens : int array; (* store generation per base id *)
}

let gen_of ctx base =
  if base >= Array.length ctx.gens then begin
    let bigger = Array.make (max 16 (2 * (base + 1))) 0 in
    Array.blit ctx.gens 0 bigger 0 (Array.length ctx.gens);
    ctx.gens <- bigger
  end;
  ctx.gens.(base)

let bump_gen ctx base =
  ignore (gen_of ctx base);
  ctx.gens.(base) <- ctx.gens.(base) + 1

let address_words ctx (a : Instr.address) =
  let base = Intern.intern ctx.names a.Instr.base in
  let shape = Intern.intern ctx.shapes (Arena.shape_key a.Instr.index) in
  (base, shape, Affine.const_part a.Instr.index, a.Instr.access_lanes)

let instr_key ctx (i : Instr.t) =
  let triples () = List.map (value_words ctx.names) (Instr.operands i) in
  match i.Instr.kind with
  | Instr.Binop (op, _, _) ->
    let ops = triples () in
    let ops =
      if Opcode.is_commutative op then List.sort compare_triple ops else ops
    in
    Some (key_of_triples 10 (Opcode.binop_code op) ops)
  | Instr.Unop (op, _) -> Some (key_of_triples 11 (Opcode.unop_code op) (triples ()))
  | Instr.Load a ->
    let base, shape, const, lanes = address_words ctx a in
    Some [| 12; base; shape; const; lanes; gen_of ctx base |]
  | Instr.Splat _ -> Some (key_of_triples 13 0 (triples ()))
  | Instr.Buildvec _ -> Some (key_of_triples 14 0 (triples ()))
  | Instr.Extract (_, lane) -> Some (key_of_triples 15 lane (triples ()))
  | Instr.Reduce (op, _) ->
    Some (key_of_triples 16 (Opcode.binop_code op) (triples ()))
  | Instr.Shuffle (_, idx) ->
    let ops = triples () in
    let n = List.length idx in
    let k = Array.make (2 + n + (3 * List.length ops)) 0 in
    k.(0) <- 17;
    k.(1) <- n;
    List.iteri (fun j x -> k.(2 + j) <- x) idx;
    List.iteri
      (fun j (a, b, c) ->
        k.(2 + n + (3 * j)) <- a;
        k.(3 + n + (3 * j)) <- b;
        k.(4 + n + (3 * j)) <- c)
      ops;
    Some k
  | Instr.Cmp (op, _, _) ->
    (* only the symmetric predicates get a canonical operand order *)
    let ops = triples () in
    let ops =
      if Opcode.cmp_is_commutative op then List.sort compare_triple ops
      else ops
    in
    Some (key_of_triples 18 (Opcode.cmp_code op) ops)
  | Instr.Select _ -> Some (key_of_triples 19 0 (triples ()))
  | Instr.Masked_load (a, _, _) ->
    (* like Load: keyed under the array's store generation, plus the mask
       and passthrough operands (different mask = different value) *)
    let base, shape, const, lanes = address_words ctx a in
    let ops = triples () in
    let k = Array.make (6 + (3 * List.length ops)) 0 in
    k.(0) <- 20;
    k.(1) <- base;
    k.(2) <- shape;
    k.(3) <- const;
    k.(4) <- lanes;
    k.(5) <- gen_of ctx base;
    List.iteri
      (fun j (x, y, z) ->
        k.(6 + (3 * j)) <- x;
        k.(7 + (3 * j)) <- y;
        k.(8 + (3 * j)) <- z)
      ops;
    Some k
  | Instr.Store _ | Instr.Masked_store _ -> None

let run_block block =
  let ctx = { names = Intern.create 16; shapes = Intern.create 16; gens = [||] } in
  let available = Key_table.create 64 in
  (* handles: available maps key -> index into [firsts] *)
  let firsts : Instr.t option array ref = ref (Array.make 64 None) in
  let n_firsts = ref 0 in
  let register i =
    if !n_firsts >= Array.length !firsts then begin
      let bigger = Array.make (2 * Array.length !firsts) None in
      Array.blit !firsts 0 bigger 0 !n_firsts;
      firsts := bigger
    end;
    !firsts.(!n_firsts) <- Some i;
    incr n_firsts;
    !n_firsts - 1
  in
  let replacement = Int_table.create 16 in (* dead id -> handle *)
  let replaced : Instr.t list ref = ref [] in
  let subst (v : Instr.value) =
    match v with
    | Instr.Ins i -> (
      match Int_table.get replacement i.Instr.id ~absent:(-1) with
      | -1 -> v
      | h -> Instr.Ins (Option.get !firsts.(h)))
    | Instr.Const _ | Instr.Arg _ -> v
  in
  Block.iter
    (fun i ->
      Instr.map_operands subst i;
      match instr_key ctx i with
      | None -> (
        match i.Instr.kind with
        | Instr.Store (addr, _) | Instr.Masked_store (addr, _, _) ->
          bump_gen ctx (Intern.intern ctx.names addr.Instr.base)
        | Instr.Binop _ | Instr.Unop _ | Instr.Cmp _ | Instr.Select _
        | Instr.Load _ | Instr.Masked_load _ | Instr.Splat _
        | Instr.Buildvec _ | Instr.Extract _ | Instr.Reduce _
        | Instr.Shuffle _ -> ())
      | Some key -> (
        match Key_table.get available key ~absent:(-1) with
        | -1 -> Key_table.set available key (register i)
        | h ->
          Int_table.set replacement i.Instr.id h;
          replaced := i :: !replaced))
    block;
  let removed = List.length !replaced in
  if removed > 0 then
    Block.remove_ids block
      (List.map (fun (i : Instr.t) -> i.Instr.id) !replaced);
  removed

(* Blocks are self-contained regions, so per-block CSE is complete; a loop
   body additionally re-executes, but availability within one iteration is
   still sound because the pass never moves an instruction. *)
let run (f : Func.t) =
  List.fold_left (fun acc b -> acc + run_block b) 0 (Func.blocks f)
