(** Textual form of the IR (LLVM-flavoured).  Total: never raises, even on
    ill-formed code, so it can be used in error messages and debug output. *)

val pp_const : Instr.const Fmt.t
(** Exact (hex-float) form. *)

val pp_const_readable : Instr.const Fmt.t
(** Short decimal form when it round-trips, hex-float otherwise. *)

val pp_value : Instr.value Fmt.t
val pp_address : Instr.address Fmt.t
val pp_instr : Instr.t Fmt.t
val pp_arg : Instr.arg Fmt.t
val pp_func : Func.t Fmt.t

val instr_to_string : Instr.t -> string
val func_to_string : Func.t -> string
val value_to_string : Instr.value -> string
