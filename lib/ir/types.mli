(** Types for IR values.

    The IR is deliberately small: 64-bit integers, 64-bit floats, fixed-width
    vectors of either, and [Void] for instructions executed for effect
    (stores). *)

type scalar = I64 | F64 | I32 | F32 | I1

type t =
  | Scalar of scalar
  | Vec of scalar * int  (** element type and lane count (>= 2) *)
  | Void

val i64 : t
val f64 : t
val i32 : t
val f32 : t

val i1 : t
(** The mask scalar: one truth lane, produced by compares and consumed by
    select/masked memory ops.  No array has i1 elements. *)

val vec : scalar -> int -> t
(** [vec elt lanes] is the vector type with [lanes] lanes.
    @raise Invalid_argument if [lanes < 2]. *)

val scalar_of : t -> scalar option
(** Element type of a scalar or vector type; [None] for [Void]. *)

val lanes : t -> int
(** Lane count: 1 for scalars, [n] for vectors, 0 for [Void]. *)

val is_float_scalar : scalar -> bool
val is_float : t -> bool
val is_vector : t -> bool

val is_mask_scalar : scalar -> bool
(** [true] exactly for [I1]. *)

val scalar_size_bytes : scalar -> int
(** Size of one element in bytes (8 for i64/f64, 4 for i32/f32, 1 for i1). *)

val widen : t -> int -> t
(** [widen (Scalar s) n] is [Vec (s, n)].
    @raise Invalid_argument on vector or void input. *)

val equal_scalar : scalar -> scalar -> bool
val equal : t -> t -> bool
val pp_scalar : scalar Fmt.t
val pp : t Fmt.t
val to_string : t -> string
