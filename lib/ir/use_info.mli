(** Def-use information for a block, served from a per-block {!Arena}.

    LSLP needs use counts in two places: the multi-node "escape" rule (an
    intermediate value used outside the chain cannot be swallowed into a
    multi-node) and the extract-cost for vectorized values with external
    scalar users.  Counts come straight off the arena's CSR table, so
    {!num_uses}/{!has_single_use} are O(1). *)

type t

val compute : Block.t -> t
(** Snapshot the block into a fresh arena. *)

val of_arena : Arena.t -> t
(** Share an arena a pass already built; no recomputation. *)

val arena : t -> Arena.t

val users : t -> Instr.t -> Instr.t list
(** Users in program order (an instruction using a value twice appears
    twice). *)

val num_uses : t -> Instr.t -> int
(** O(1). *)

val has_single_use : t -> Instr.t -> bool
(** O(1). *)

val is_dead : t -> Instr.t -> bool
(** No users and no side effect. *)

val users_outside : t -> Instr.t -> inside:(Instr.t -> bool) -> Instr.t list
(** Users for which [inside] is false. *)
