(** Def-use information for a block, recomputed on demand.

    LSLP needs use counts in two places: the multi-node "escape" rule (an
    intermediate value used outside the chain cannot be swallowed into a
    multi-node) and the extract-cost for vectorized values with external
    scalar users. *)

type t

val compute : Block.t -> t

val users : t -> Instr.t -> Instr.t list
(** Users in program order (an instruction using a value twice appears
    twice). *)

val num_uses : t -> Instr.t -> int
val has_single_use : t -> Instr.t -> bool

val is_dead : t -> Instr.t -> bool
(** No users and no side effect. *)

val users_outside : t -> Instr.t -> inside:(Instr.t -> bool) -> Instr.t list
(** Users for which [inside] is false. *)
