(** Dead code elimination: iteratively removes instructions with no users and
    no side effects.  Returns the number of instructions removed. *)

val run_block : Block.t -> int
val run : Func.t -> int
