(* Instructions and values.

   Instructions have identity (a fresh [id]) and are mutable so that passes
   can rewrite operands in place; values are constants, function arguments or
   references to instructions.  Addresses pair an array symbol with an affine
   element index, which keeps address computation out of the use-def graph
   exactly the way LLVM's GEP/SCEV split does for the SLP vectorizer. *)

type const =
  | Cint of int64
  | Cfloat of float
  | Cint32 of int32
  | Cfloat32 of float  (* kept single-rounded *)

type address = {
  base : string;             (* array argument the access goes through *)
  elt : Types.scalar;        (* element type of the array *)
  index : Affine.t;          (* element index, affine in integer arguments *)
  access_lanes : int;        (* 1 = scalar access, n >= 2 = vector access *)
}

type t = {
  id : int;
  mutable kind : kind;
  mutable ty : Types.t;
  mutable name : string;     (* printing hint; not semantically meaningful *)
}

and kind =
  | Binop of Opcode.binop * value * value
  | Unop of Opcode.unop * value
  | Load of address
  | Store of address * value
  (* Predicated instructions, produced by if-conversion.  The mask is an
     ordinary i1-lane value; there is no separate predicate register file. *)
  | Cmp of Opcode.cmp * value * value        (* lanes -> i1 lanes *)
  | Select of value * value * value          (* mask, then-value, else-value *)
  | Masked_load of address * value * value   (* address, mask, passthrough *)
  | Masked_store of address * value * value  (* address, stored value, mask *)
  (* Vector-only instructions, produced by SLP/LSLP code generation: *)
  | Splat of value                  (* broadcast a scalar into all lanes *)
  | Buildvec of value list          (* gather scalars into a vector *)
  | Extract of value * int          (* extract lane [i] of a vector *)
  | Reduce of Opcode.binop * value  (* horizontal reduction of all lanes *)
  | Shuffle of value * int list     (* single-source lane permutation *)

and value = Const of const | Arg of arg | Ins of t

and arg = { arg_name : string; arg_ty : arg_ty }

and arg_ty = Int_arg | Float_arg | Array_arg of Types.scalar

(* Identity must be unique across every function alive in the process —
   clones, unrolled bodies and concurrently compiling domains included —
   so the source is a process-global Atomic counter, not a [ref].
   Waived under lslp-lint R1: Id_gen is domain-safe by construction. *)
let ids = Lslp_util.Id_gen.create ~first:1 ()

let fresh_id () = Lslp_util.Id_gen.next ids
let id_watermark () = Lslp_util.Id_gen.peek ids

let create ?(name = "") kind ty = { id = fresh_id (); kind; ty; name }

(* The single cloning primitive: every field except the identity is carried
   over, so adding a field to [t] automatically propagates through both
   [Func.clone] and the unroller.  Operands still reference the original
   instructions; callers remap them afterwards. *)
let copy i = { i with id = fresh_id () }

(* Rollback primitive: reinstate a previously captured [kind].  The only
   mutable field any pass writes is [kind], so (kind, program order) is a
   complete transactional snapshot of a block. *)
let set_kind i kind = i.kind <- kind

let map_address_index f i =
  match i.kind with
  | Load a -> i.kind <- Load { a with index = f a.index }
  | Store (a, v) -> i.kind <- Store ({ a with index = f a.index }, v)
  | Masked_load (a, m, p) ->
    i.kind <- Masked_load ({ a with index = f a.index }, m, p)
  | Masked_store (a, v, m) ->
    i.kind <- Masked_store ({ a with index = f a.index }, v, m)
  | Binop _ | Unop _ | Cmp _ | Select _ | Splat _ | Buildvec _ | Extract _
  | Reduce _ | Shuffle _ -> ()

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash a = a.id

let const_ty = function
  | Cint _ -> Types.i64
  | Cfloat _ -> Types.f64
  | Cint32 _ -> Types.i32
  | Cfloat32 _ -> Types.f32

let arg_value_ty a =
  match a.arg_ty with
  | Int_arg -> Some Types.i64
  | Float_arg -> Some Types.f64
  | Array_arg _ -> None (* arrays are not first-class values *)

let value_ty = function
  | Const c -> Some (const_ty c)
  | Arg a -> arg_value_ty a
  | Ins i -> Some i.ty

let operands i =
  match i.kind with
  | Binop (_, a, b) | Cmp (_, a, b) -> [ a; b ]
  | Unop (_, a) | Splat a | Extract (a, _) | Reduce (_, a)
  | Shuffle (a, _) -> [ a ]
  | Load _ -> []
  | Store (_, v) -> [ v ]
  | Select (m, a, b) -> [ m; a; b ]
  | Masked_load (_, m, p) -> [ m; p ]
  | Masked_store (_, v, m) -> [ v; m ]
  | Buildvec vs -> vs

let set_operands i ops =
  match (i.kind, ops) with
  | Binop (op, _, _), [ a; b ] -> i.kind <- Binop (op, a, b)
  | Unop (op, _), [ a ] -> i.kind <- Unop (op, a)
  | Splat _, [ a ] -> i.kind <- Splat a
  | Extract (_, lane), [ a ] -> i.kind <- Extract (a, lane)
  | Reduce (op, _), [ a ] -> i.kind <- Reduce (op, a)
  | Shuffle (_, idx), [ a ] -> i.kind <- Shuffle (a, idx)
  | Load _, [] -> ()
  | Store (addr, _), [ v ] -> i.kind <- Store (addr, v)
  | Cmp (op, _, _), [ a; b ] -> i.kind <- Cmp (op, a, b)
  | Select _, [ m; a; b ] -> i.kind <- Select (m, a, b)
  | Masked_load (addr, _, _), [ m; p ] -> i.kind <- Masked_load (addr, m, p)
  | Masked_store (addr, _, _), [ v; m ] ->
    i.kind <- Masked_store (addr, v, m)
  | Buildvec old, vs when List.length old = List.length vs ->
    i.kind <- Buildvec vs
  | ( (Binop _ | Unop _ | Cmp _ | Select _ | Splat _ | Extract _ | Reduce _
      | Shuffle _ | Load _ | Store _ | Masked_load _ | Masked_store _
      | Buildvec _),
      _ ) ->
    invalid_arg "Instr.set_operands: operand count mismatch"

let map_operands f i = set_operands i (List.map f (operands i))

(* A masked store is a may-write: dependence edges, DCE side-effects and
   seed collection must all treat it exactly like an unconditional store. *)
let is_store i = match i.kind with
  | Store _ | Masked_store _ -> true
  | Binop _ | Unop _ | Cmp _ | Select _ | Load _ | Masked_load _ | Splat _
  | Buildvec _ | Extract _ | Reduce _ | Shuffle _ -> false

let is_load i = match i.kind with
  | Load _ | Masked_load _ -> true
  | Binop _ | Unop _ | Cmp _ | Select _ | Store _ | Masked_store _ | Splat _
  | Buildvec _ | Extract _ | Reduce _ | Shuffle _ -> false

let is_memory_access i = is_store i || is_load i

let has_side_effect = is_store

let address i =
  match i.kind with
  | Load a | Store (a, _) | Masked_load (a, _, _) | Masked_store (a, _, _) ->
    Some a
  | Binop _ | Unop _ | Cmp _ | Select _ | Splat _ | Buildvec _ | Extract _
  | Reduce _ | Shuffle _ -> None

let binop i = match i.kind with
  | Binop (op, _, _) -> Some op
  | Unop _ | Cmp _ | Select _ | Load _ | Store _ | Masked_load _
  | Masked_store _ | Splat _ | Buildvec _ | Extract _ | Reduce _
  | Shuffle _ -> None

(* Opcode classes used by isomorphism checks: two instructions can share a
   vectorizable group iff they have the same class. *)
type opclass =
  | C_binop of Opcode.binop
  | C_unop of Opcode.unop
  | C_cmp of Opcode.cmp
  | C_select
  | C_load
  | C_store
  | C_masked_load
  | C_masked_store
  | C_splat
  | C_buildvec
  | C_extract
  | C_reduce of Opcode.binop
  | C_shuffle

let opclass i =
  match i.kind with
  | Binop (op, _, _) -> C_binop op
  | Unop (op, _) -> C_unop op
  | Cmp (op, _, _) -> C_cmp op
  | Select _ -> C_select
  | Load _ -> C_load
  | Store _ -> C_store
  | Masked_load _ -> C_masked_load
  | Masked_store _ -> C_masked_store
  | Splat _ -> C_splat
  | Buildvec _ -> C_buildvec
  | Extract _ -> C_extract
  | Reduce (op, _) -> C_reduce op
  | Shuffle _ -> C_shuffle

let equal_opclass (a : opclass) (b : opclass) = a = b

let opclass_name = function
  | C_binop op -> Opcode.binop_name op
  | C_unop op -> Opcode.unop_name op
  | C_cmp op -> "cmp." ^ Opcode.cmp_name op
  | C_select -> "select"
  | C_load -> "load"
  | C_store -> "store"
  | C_masked_load -> "masked.load"
  | C_masked_store -> "masked.store"
  | C_splat -> "splat"
  | C_buildvec -> "buildvec"
  | C_extract -> "extract"
  | C_reduce op -> "reduce." ^ Opcode.binop_name op
  | C_shuffle -> "shuffle"

(* Select is NOT operand-commutative: swapping the value arms negates the
   mask.  The reorderer handles select groups via its generic same-position
   scoring instead (see graph_builder). *)
let is_commutative i =
  match i.kind with
  | Binop (op, _, _) -> Opcode.is_commutative op
  | Cmp (op, _, _) -> Opcode.cmp_is_commutative op
  | Unop _ | Select _ | Load _ | Store _ | Masked_load _ | Masked_store _
  | Splat _ | Buildvec _ | Extract _ | Reduce _ | Shuffle _ -> false

let equal_const (a : const) (b : const) =
  match (a, b) with
  | Cint x, Cint y -> Int64.equal x y
  | Cfloat x, Cfloat y ->
    (* bitwise equality so that nan = nan and -0. <> 0. — constants are
       compared for grouping, not arithmetic *)
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Cint32 x, Cint32 y -> Int32.equal x y
  | Cfloat32 x, Cfloat32 y ->
    Int32.equal (Int32.bits_of_float x) (Int32.bits_of_float y)
  | (Cint _ | Cfloat _ | Cint32 _ | Cfloat32 _), _ -> false

let equal_value (a : value) (b : value) =
  match (a, b) with
  | Const x, Const y -> equal_const x y
  | Arg x, Arg y -> String.equal x.arg_name y.arg_name
  | Ins x, Ins y -> equal x y
  | (Const _ | Arg _ | Ins _), _ -> false

let value_id = function
  | Ins i -> Some i.id
  | Const _ | Arg _ -> None
