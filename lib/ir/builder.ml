(* Convenience layer for constructing IR: infers result types, checks operand
   types eagerly, appends to the function's block, and invents readable
   value names. *)

type t = {
  func : Func.t;
  mutable current : Block.t;    (* where emit appends *)
  mutable next_tmp : int;
  mutable next_block : int;
}

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let create ~name ~args =
  let args =
    List.map (fun (arg_name, arg_ty) -> { Instr.arg_name; arg_ty }) args
  in
  let func = Func.create ~name ~args in
  { func; current = Func.entry func; next_tmp = 0; next_block = 0 }

let func b = b.func

let current_block b = b.current

let start_block b ?label ?(kind = Block.Straight) () =
  let label =
    match label with
    | Some l -> l
    | None ->
      let n = b.next_block in
      b.next_block <- n + 1;
      Fmt.str "b%d" n
  in
  let blk = Block.create ~label ~kind () in
  Func.add_block b.func blk;
  b.current <- blk;
  blk

let fresh_name b hint =
  let n = b.next_tmp in
  b.next_tmp <- n + 1;
  if String.equal hint "" then Fmt.str "t%d" n else Fmt.str "%s%d" hint n

let iconst n = Instr.Const (Instr.Cint (Int64.of_int n))
let iconst64 n = Instr.Const (Instr.Cint n)
let fconst x = Instr.Const (Instr.Cfloat x)
let iconst32 n = Instr.Const (Instr.Cint32 (Int32.of_int n))
let fconst32 x = Instr.Const (Instr.Cfloat32 x)

let arg b name =
  match Func.find_arg b.func name with
  | None -> type_error "unknown argument %s" name
  | Some a ->
    (match a.arg_ty with
     | Instr.Int_arg | Instr.Float_arg -> Instr.Arg a
     | Instr.Array_arg _ ->
       type_error "array argument %s used as a scalar value" name)

let value_ty_exn v =
  match Instr.value_ty v with
  | Some ty -> ty
  | None -> type_error "array argument used as a first-class value"

let check_scalar_ty what expected v =
  let ty = value_ty_exn v in
  if not (Types.equal ty (Types.Scalar expected)) then
    type_error "%s expects %a operand, got %a" what Types.pp_scalar expected
      Types.pp ty

(* Operand-driven element type: the IR's opcodes are width-polymorphic, so
   the result scalar comes from the first operand (class-checked), not from
   the opcode. *)
let operand_scalar what accepts v =
  match value_ty_exn v with
  | Types.Scalar s ->
    if not (accepts s) then
      type_error "%s cannot operate on %a lanes" what Types.pp_scalar s;
    s
  | ty -> type_error "%s expects a scalar operand, got %a" what Types.pp ty

let emit b instr =
  Block.append b.current instr;
  Instr.Ins instr

let binop b ?(name = "") op x y =
  let elt =
    operand_scalar (Opcode.binop_name op) (Opcode.binop_accepts op) x
  in
  check_scalar_ty (Opcode.binop_name op) elt y;
  let name = fresh_name b name in
  emit b (Instr.create ~name (Instr.Binop (op, x, y)) (Types.Scalar elt))

let unop b ?(name = "") op x =
  let elt =
    operand_scalar (Opcode.unop_name op) (Opcode.unop_accepts op) x
  in
  let name = fresh_name b name in
  emit b (Instr.create ~name (Instr.Unop (op, x)) (Types.Scalar elt))

let cmp b ?(name = "") op x y =
  let what = "cmp." ^ Opcode.cmp_name op in
  let elt = operand_scalar what Opcode.cmp_accepts x in
  check_scalar_ty what elt y;
  let name = fresh_name b (if String.equal name "" then "m" else name) in
  emit b (Instr.create ~name (Instr.Cmp (op, x, y)) (Types.Scalar Types.I1))

let select b ?(name = "") m x y =
  check_scalar_ty "select mask" Types.I1 m;
  let elt = operand_scalar "select" (fun s -> not (Types.is_mask_scalar s)) x in
  check_scalar_ty "select" elt y;
  let name = fresh_name b (if String.equal name "" then "sel" else name) in
  emit b (Instr.create ~name (Instr.Select (m, x, y)) (Types.Scalar elt))

let array_elt b base =
  match Func.find_arg b.func base with
  | Some { Instr.arg_ty = Instr.Array_arg elt; _ } -> elt
  | Some _ -> type_error "%s is not an array argument" base
  | None -> type_error "unknown array %s" base

let load b ?(name = "") ~base index =
  let elt = array_elt b base in
  let addr = { Instr.base; elt; index; access_lanes = 1 } in
  let name = fresh_name b (if String.equal name "" then "ld" else name) in
  emit b (Instr.create ~name (Instr.Load addr) (Types.Scalar elt))

let store b ~base index v =
  let elt = array_elt b base in
  check_scalar_ty (Fmt.str "store to %s" base) elt v;
  let addr = { Instr.base; elt; index; access_lanes = 1 } in
  ignore (emit b (Instr.create (Instr.Store (addr, v)) Types.Void))

let masked_load b ?(name = "") ~base index ~mask ~passthrough =
  let elt = array_elt b base in
  check_scalar_ty (Fmt.str "masked.load from %s mask" base) Types.I1 mask;
  check_scalar_ty (Fmt.str "masked.load from %s passthrough" base) elt
    passthrough;
  let addr = { Instr.base; elt; index; access_lanes = 1 } in
  let name = fresh_name b (if String.equal name "" then "mld" else name) in
  emit b
    (Instr.create ~name
       (Instr.Masked_load (addr, mask, passthrough))
       (Types.Scalar elt))

let masked_store b ~base index v ~mask =
  let elt = array_elt b base in
  check_scalar_ty (Fmt.str "masked.store to %s" base) elt v;
  check_scalar_ty (Fmt.str "masked.store to %s mask" base) Types.I1 mask;
  let addr = { Instr.base; elt; index; access_lanes = 1 } in
  ignore (emit b (Instr.create (Instr.Masked_store (addr, v, mask)) Types.Void))

(* Shorthand used pervasively by tests and examples: index [i + k]. *)
let idx ?(sym = "i") k = Affine.add_const k (Affine.sym sym)
let cidx k = Affine.const k
