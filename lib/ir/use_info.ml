(* Def-use information, as a view over a per-block arena.

   Use lists are derived data: the arena snapshots them as CSR int arrays,
   so [num_uses]/[has_single_use] are O(1) subtractions and [users] walks a
   contiguous slice.  Passes that already hold an arena share it with
   {!of_arena}; [compute] builds a fresh one for callers that only have the
   block. *)

type t = { arena : Arena.t }

let compute block = { arena = Arena.of_block block }
let of_arena arena = { arena }
let arena t = t.arena

let users t (i : Instr.t) =
  let k = Arena.idx t.arena i in
  if k < 0 then [] else Arena.users t.arena k

let num_uses t (i : Instr.t) =
  let k = Arena.idx t.arena i in
  if k < 0 then 0 else Arena.num_uses t.arena k

let has_single_use t i = num_uses t i = 1

let is_dead t i = (not (Instr.has_side_effect i)) && num_uses t i = 0

let users_outside t i ~inside =
  List.filter (fun (u : Instr.t) -> not (inside u)) (users t i)
