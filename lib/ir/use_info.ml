(* Def-use information, recomputed per pass.

   Use lists are derived data: recomputing them from the block is cheap at
   kernel scale and avoids the invalidation bugs that come with maintaining
   mutable use lists across rewrites. *)

type t = {
  users : (int, Instr.t list) Hashtbl.t;  (* def id -> users, program order *)
}

let compute block =
  let users = Hashtbl.create 64 in
  let note_use (user : Instr.t) (v : Instr.value) =
    match v with
    | Instr.Ins def ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt users def.id) in
      Hashtbl.replace users def.id (user :: cur)
    | Instr.Const _ | Instr.Arg _ -> ()
  in
  Block.iter (fun i -> List.iter (note_use i) (Instr.operands i)) block;
  Hashtbl.iter (fun k v -> Hashtbl.replace users k (List.rev v)) users;
  { users }

let users t (i : Instr.t) =
  Option.value ~default:[] (Hashtbl.find_opt t.users i.Instr.id)

let num_uses t i = List.length (users t i)

let has_single_use t i = num_uses t i = 1

let is_dead t i = (not (Instr.has_side_effect i)) && num_uses t i = 0

let users_outside t i ~inside =
  List.filter (fun (u : Instr.t) -> not (inside u)) (users t i)
