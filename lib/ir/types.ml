(* Types for IR values.

   The kernel language (and the SPEC kernels the paper evaluates) only use
   64-bit integers ([long]/[unsigned long]) and doubles, so the scalar type
   universe is deliberately small.  Vector types carry their lane count. *)

type scalar = I64 | F64 | I32 | F32 | I1

type t =
  | Scalar of scalar
  | Vec of scalar * int
  | Void

let i64 = Scalar I64
let f64 = Scalar F64
let i32 = Scalar I32
let f32 = Scalar F32
let i1 = Scalar I1

let vec elt lanes =
  if lanes < 2 then invalid_arg "Types.vec: lane count must be >= 2";
  Vec (elt, lanes)

let scalar_of = function
  | Scalar s -> Some s
  | Vec (s, _) -> Some s
  | Void -> None

let lanes = function
  | Scalar _ -> 1
  | Vec (_, n) -> n
  | Void -> 0

let is_float_scalar = function
  | F64 | F32 -> true
  | I64 | I32 | I1 -> false

(* Masks (if-conversion predicates) are i1 lanes; no array has element type
   i1, so a mask never touches memory directly. *)
let is_mask_scalar = function
  | I1 -> true
  | I64 | F64 | I32 | F32 -> false

let is_float = function
  | Scalar s | Vec (s, _) -> is_float_scalar s
  | Void -> false

let is_vector = function
  | Vec _ -> true
  | Scalar _ | Void -> false

(* Element size in bytes; used for address arithmetic and bit-width checks. *)
let scalar_size_bytes = function
  | I64 | F64 -> 8
  | I32 | F32 -> 4
  | I1 -> 1

let widen ty n =
  match ty with
  | Scalar s -> vec s n
  | Vec _ -> invalid_arg "Types.widen: already a vector type"
  | Void -> invalid_arg "Types.widen: void"

let equal_scalar (a : scalar) (b : scalar) = a = b

let equal (a : t) (b : t) = a = b

let pp_scalar ppf = function
  | I64 -> Fmt.string ppf "i64"
  | F64 -> Fmt.string ppf "f64"
  | I32 -> Fmt.string ppf "i32"
  | F32 -> Fmt.string ppf "f32"
  | I1 -> Fmt.string ppf "i1"

let pp ppf = function
  | Scalar s -> pp_scalar ppf s
  | Vec (s, n) -> Fmt.pf ppf "<%d x %a>" n pp_scalar s
  | Void -> Fmt.string ppf "void"

let to_string ty = Fmt.str "%a" pp ty
