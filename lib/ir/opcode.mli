(** Instruction opcodes and their algebraic properties.

    Commutativity gates operand reordering; associativity (together with
    commutativity) gates multi-node formation.  Floating-point arithmetic is
    modelled with [-ffast-math] semantics, matching the paper's experimental
    setup, so [Fadd]/[Fmul] count as commutative and associative. *)

type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor
  | Shl | Lshr | Ashr
  | Smin | Smax
  | Fadd | Fsub | Fmul | Fdiv
  | Fmin | Fmax

type unop = Neg | Fneg | Fsqrt | Fabs

val all_binops : binop list
val all_unops : unop list

val is_commutative : binop -> bool
val is_associative : binop -> bool

val binop_is_float : binop -> bool
val unop_is_float : unop -> bool

val binop_operand_scalar : binop -> Types.scalar
(** The *default* scalar the (64-bit-only) frontend instantiates this opcode
    at.  The IR itself is width-polymorphic: see {!binop_accepts}. *)

val unop_operand_scalar : unop -> Types.scalar

val binop_accepts : binop -> Types.scalar -> bool
(** Class check: float opcodes accept f32/f64, integer opcodes i32/i64. *)

val unop_accepts : unop -> Types.scalar -> bool

val equal_binop : binop -> binop -> bool
val equal_unop : unop -> unop -> bool

val binop_name : binop -> string
val unop_name : unop -> string
val pp_binop : binop Fmt.t
val pp_unop : unop Fmt.t

val binop_code : binop -> int
(** Dense stable code for packing opcodes into int-array keys. *)

val unop_code : unop -> int
