(** Instruction opcodes and their algebraic properties.

    Commutativity gates operand reordering; associativity (together with
    commutativity) gates multi-node formation.  Floating-point arithmetic is
    modelled with [-ffast-math] semantics, matching the paper's experimental
    setup, so [Fadd]/[Fmul] count as commutative and associative. *)

type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor
  | Shl | Lshr | Ashr
  | Smin | Smax
  | Fadd | Fsub | Fmul | Fdiv
  | Fmin | Fmax

type unop = Neg | Fneg | Fsqrt | Fabs

type cmp = Lt | Le | Gt | Ge | Eq | Ne
(** Comparison predicates, produced by if-conversion.  Kept outside [binop]:
    a compare maps value lanes to i1 lanes, so none of the binop machinery
    (width checks, reductions, [binop_code]) applies. *)

val all_binops : binop list
val all_unops : unop list
val all_cmps : cmp list

val is_commutative : binop -> bool
val is_associative : binop -> bool

val cmp_is_commutative : cmp -> bool
(** Only [Eq]/[Ne] commute. *)

val swap_cmp : cmp -> cmp
(** [cmp a b = (swap_cmp cmp) b a] — the predicate to use after flipping the
    operands. *)

val negate_cmp : cmp -> cmp
(** [not (cmp a b) = (negate_cmp cmp) a b] — the else-branch predicate of
    if-conversion.  Exact only under the no-NaN (fast-math) contract. *)

val binop_is_float : binop -> bool
val unop_is_float : unop -> bool

val binop_operand_scalar : binop -> Types.scalar
(** The *default* scalar the (64-bit-only) frontend instantiates this opcode
    at.  The IR itself is width-polymorphic: see {!binop_accepts}. *)

val unop_operand_scalar : unop -> Types.scalar

val binop_accepts : binop -> Types.scalar -> bool
(** Class check: float opcodes accept f32/f64, integer opcodes i32/i64. *)

val unop_accepts : unop -> Types.scalar -> bool

val cmp_accepts : Types.scalar -> bool
(** Comparisons accept every non-mask scalar (predicates are
    width-polymorphic); masks themselves are combined with And/Or/Xor. *)

val equal_binop : binop -> binop -> bool
val equal_unop : unop -> unop -> bool
val equal_cmp : cmp -> cmp -> bool

val binop_name : binop -> string
val unop_name : unop -> string
val cmp_name : cmp -> string
val pp_binop : binop Fmt.t
val pp_unop : unop Fmt.t
val pp_cmp : cmp Fmt.t

val binop_code : binop -> int
(** Dense stable code for packing opcodes into int-array keys. *)

val unop_code : unop -> int
val cmp_code : cmp -> int
