(* Textual form of the IR, LLVM-flavoured.  The printer is total: any
   well-formed or ill-formed instruction prints without raising, so it is
   safe to use in error paths and debug logs. *)

let pp_const ppf = function
  | Instr.Cint n -> Fmt.pf ppf "%Ld" n
  | Instr.Cfloat x -> Fmt.pf ppf "%h" x
  | Instr.Cint32 n -> Fmt.pf ppf "%ldl" n
  | Instr.Cfloat32 x -> Fmt.pf ppf "%hf" x

let pp_const_readable ppf = function
  | Instr.Cint n -> Fmt.pf ppf "%Ld" n
  | Instr.Cfloat x ->
    (* prefer a short decimal form when it round-trips *)
    let s = Fmt.str "%.12g" x in
    if float_of_string s = x then Fmt.string ppf s else Fmt.pf ppf "%h" x
  | Instr.Cint32 n -> Fmt.pf ppf "%ldl" n
  | Instr.Cfloat32 x ->
    let s = Fmt.str "%.7g" x in
    if float_of_string s = x then Fmt.pf ppf "%sf" s else Fmt.pf ppf "%hf" x

(* Labels embed the instruction id so they are always unique, even when two
   instructions share a printing hint. *)
let inst_label (i : Instr.t) =
  if String.equal i.name "" then Fmt.str "%%v%d" i.id
  else Fmt.str "%%%s.%d" i.name i.id

let pp_value ppf = function
  | Instr.Const c -> pp_const_readable ppf c
  | Instr.Arg a -> Fmt.string ppf a.arg_name
  | Instr.Ins i -> Fmt.string ppf (inst_label i)

let pp_address ppf (a : Instr.address) =
  if a.access_lanes > 1 then
    Fmt.pf ppf "<%d x %a> %s[%a]" a.access_lanes Types.pp_scalar a.elt a.base
      Affine.pp a.index
  else Fmt.pf ppf "%s[%a]" a.base Affine.pp a.index

let pp_instr ppf (i : Instr.t) =
  let lhs ppf () = Fmt.pf ppf "%s : %a = " (inst_label i) Types.pp i.ty in
  match i.kind with
  | Instr.Binop (op, x, y) ->
    Fmt.pf ppf "%a%a %a, %a" lhs () Opcode.pp_binop op pp_value x pp_value y
  | Instr.Unop (op, x) ->
    Fmt.pf ppf "%a%a %a" lhs () Opcode.pp_unop op pp_value x
  | Instr.Load a -> Fmt.pf ppf "%aload %a" lhs () pp_address a
  | Instr.Store (a, v) -> Fmt.pf ppf "store %a, %a" pp_address a pp_value v
  | Instr.Cmp (op, x, y) ->
    Fmt.pf ppf "%acmp.%a %a, %a" lhs () Opcode.pp_cmp op pp_value x pp_value y
  | Instr.Select (m, x, y) ->
    Fmt.pf ppf "%aselect %a, %a, %a" lhs () pp_value m pp_value x pp_value y
  | Instr.Masked_load (a, m, p) ->
    Fmt.pf ppf "%amasked.load %a, %a, %a" lhs () pp_address a pp_value m
      pp_value p
  | Instr.Masked_store (a, v, m) ->
    Fmt.pf ppf "masked.store %a, %a, %a" pp_address a pp_value v pp_value m
  | Instr.Splat v -> Fmt.pf ppf "%asplat %a" lhs () pp_value v
  | Instr.Buildvec vs ->
    Fmt.pf ppf "%abuildvec [%a]" lhs () Fmt.(list ~sep:(any ", ") pp_value) vs
  | Instr.Extract (v, lane) ->
    Fmt.pf ppf "%aextract %a, %d" lhs () pp_value v lane
  | Instr.Reduce (op, v) ->
    Fmt.pf ppf "%areduce.%a %a" lhs () Opcode.pp_binop op pp_value v
  | Instr.Shuffle (v, idx) ->
    Fmt.pf ppf "%ashuffle %a, [%a]" lhs () pp_value v
      Fmt.(list ~sep:(any ", ") int) idx

let pp_arg ppf (a : Instr.arg) =
  match a.arg_ty with
  | Instr.Int_arg -> Fmt.pf ppf "i64 %s" a.arg_name
  | Instr.Float_arg -> Fmt.pf ppf "f64 %s" a.arg_name
  | Instr.Array_arg elt ->
    Fmt.pf ppf "%a %s[]" Types.pp_scalar elt a.arg_name

let pp_block_header ppf b =
  match Block.kind b with
  | Block.Straight -> Fmt.pf ppf "%s:" (Block.label b)
  | Block.Loop li ->
    Fmt.pf ppf "%s: for (%s = %d; %s < %a; %s += %d)" (Block.label b)
      li.Block.counter li.Block.l_start li.Block.counter Block.pp_bound
      li.Block.l_stop li.Block.counter li.Block.l_step

let pp_func ppf (f : Func.t) =
  Fmt.pf ppf "@[<v>kernel %s(%a) {@," f.fname
    Fmt.(list ~sep:(any ", ") pp_arg)
    f.args;
  (match Func.blocks f with
   | [ b ] when not (Block.is_loop b) ->
     (* the straight-line common case keeps the historical flat form *)
     Block.iter (fun i -> Fmt.pf ppf "  %a@," pp_instr i) b
   | bs ->
     List.iter
       (fun b ->
         Fmt.pf ppf "%a@," pp_block_header b;
         Block.iter (fun i -> Fmt.pf ppf "  %a@," pp_instr i) b)
       bs);
  Fmt.pf ppf "}@]"

let instr_to_string i = Fmt.str "%a" pp_instr i
let func_to_string f = Fmt.str "%a" pp_func f
let value_to_string v = Fmt.str "%a" pp_value v
