(* A kernel function: named arguments plus an ordered list of basic blocks.

   The paper's algorithm requires every vectorizable group to live in a
   single basic block; the function is a minimal structured skeleton around
   such blocks — straight-line blocks linked by fallthrough plus counted
   loop blocks (no phis: loop state lives in memory, the only loop-carried
   value is the counter symbol inside a Loop block's addresses).  Regions
   are self-contained: an instruction may only be referenced from its own
   block (the verifier enforces this), so every analysis stays block-local.
   Array arguments are assumed pairwise non-aliasing (they model distinct
   global arrays / restrict pointers). *)

type t = {
  fname : string;
  args : Instr.arg list;
  mutable blocks : Block.t list;  (* execution order; never empty *)
}

let create ~name ~args =
  { fname = name; args; blocks = [ Block.create ~label:"entry" () ] }

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg "Func.entry: function has no blocks"

let blocks f = f.blocks

let add_block f b = f.blocks <- f.blocks @ [ b ]

let find_block f label =
  List.find_opt (fun b -> String.equal (Block.label b) label) f.blocks

(* Replace [old_b] by a sequence of blocks, preserving position — the
   unroller's splice primitive. *)
let replace_block f old_b news =
  let rec go = function
    | [] -> invalid_arg "Func.replace_block: block not in function"
    | b :: rest when b == old_b -> news @ rest
    | b :: rest -> b :: go rest
  in
  f.blocks <- go f.blocks

let iter_instrs g f = List.iter (fun b -> Block.iter g b) f.blocks
let fold_instrs g acc f = List.fold_left (fun a b -> Block.fold g a b) acc f.blocks
let num_instrs f = List.fold_left (fun a b -> a + Block.length b) 0 f.blocks

let find_arg f name =
  List.find_opt (fun (a : Instr.arg) -> String.equal a.arg_name name) f.args

let array_args f =
  List.filter
    (fun (a : Instr.arg) ->
      match a.arg_ty with
      | Array_arg _ -> true
      | Int_arg | Float_arg -> false)
    f.args

let int_args f =
  List.filter
    (fun (a : Instr.arg) ->
      match a.arg_ty with
      | Int_arg -> true
      | Float_arg | Array_arg _ -> false)
    f.args

let clone f =
  (* Deep-copy every block so a pass can be run destructively on the copy
     while the original stays intact (used to compare scalar vs vectorized
     code).  The remap table is function-wide, so block structure, loop
     metadata and every per-instruction field survive the copy. *)
  let mapping = Hashtbl.create 64 in
  let remap_value (v : Instr.value) =
    match v with
    | Instr.Ins i ->
      (match Hashtbl.find_opt mapping i.Instr.id with
       | Some i' -> Instr.Ins i'
       | None -> v (* reference to an instruction outside the function *))
    | Instr.Const _ | Instr.Arg _ -> v
  in
  let clone_block b =
    let b' = Block.create ~label:(Block.label b) ~kind:(Block.kind b) () in
    List.iter
      (fun (i : Instr.t) ->
        let i' = Instr.copy i in
        Hashtbl.replace mapping i.id i';
        Block.append b' i')
      (Block.to_list b);
    b'
  in
  let g =
    { fname = f.fname; args = f.args; blocks = List.map clone_block f.blocks }
  in
  iter_instrs (fun i -> Instr.map_operands remap_value i) g;
  g
