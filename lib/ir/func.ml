(* A kernel function: named arguments plus one straight-line block.

   The paper's algorithm requires every vectorizable group to live in a
   single basic block, and all evaluated kernels are straight-line bodies, so
   a function is one block.  Array arguments are assumed pairwise non-
   aliasing (they model distinct global arrays / restrict pointers). *)

type t = {
  fname : string;
  args : Instr.arg list;
  block : Block.t;
}

let create ~name ~args = { fname = name; args; block = Block.create () }

let find_arg f name =
  List.find_opt (fun (a : Instr.arg) -> String.equal a.arg_name name) f.args

let array_args f =
  List.filter
    (fun (a : Instr.arg) ->
      match a.arg_ty with
      | Array_arg _ -> true
      | Int_arg | Float_arg -> false)
    f.args

let int_args f =
  List.filter
    (fun (a : Instr.arg) ->
      match a.arg_ty with
      | Int_arg -> true
      | Float_arg | Array_arg _ -> false)
    f.args

let clone f =
  (* Deep-copy the block so a pass can be run destructively on the copy while
     the original stays intact (used to compare scalar vs vectorized code). *)
  let mapping = Hashtbl.create 64 in
  let remap_value (v : Instr.value) =
    match v with
    | Instr.Ins i ->
      (match Hashtbl.find_opt mapping i.Instr.id with
       | Some i' -> Instr.Ins i'
       | None -> v (* reference to an instruction outside the block *))
    | Instr.Const _ | Instr.Arg _ -> v
  in
  let g = create ~name:f.fname ~args:f.args in
  List.iter
    (fun (i : Instr.t) ->
      let i' = Instr.create ~name:i.name i.kind i.ty in
      Hashtbl.replace mapping i.id i';
      Block.append g.block i')
    (Block.to_list f.block);
  Block.iter (fun i -> Instr.map_operands remap_value i) g.block;
  g
