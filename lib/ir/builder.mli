(** Convenience layer for constructing scalar IR.

    Infers result types, type-checks operands eagerly (raising {!Type_error}
    with a readable message), appends instructions to the function's block in
    order, and generates printable value names. *)

type t

exception Type_error of string

val create : name:string -> args:(string * Instr.arg_ty) list -> t
val func : t -> Func.t

val current_block : t -> Block.t
(** The block subsequent instructions are appended to (initially the entry
    block). *)

val start_block : t -> ?label:string -> ?kind:Block.kind -> unit -> Block.t
(** Append a fresh block to the function and make it current.  Labels
    default to ["b0"], ["b1"], ... *)

val iconst : int -> Instr.value
val iconst64 : int64 -> Instr.value
val fconst : float -> Instr.value
val iconst32 : int -> Instr.value
val fconst32 : float -> Instr.value

val arg : t -> string -> Instr.value
(** Reference a scalar (int/float) argument by name. *)

val binop :
  t -> ?name:string -> Opcode.binop -> Instr.value -> Instr.value ->
  Instr.value

val unop : t -> ?name:string -> Opcode.unop -> Instr.value -> Instr.value

val cmp :
  t -> ?name:string -> Opcode.cmp -> Instr.value -> Instr.value -> Instr.value
(** Scalar compare: lanes in, an i1 mask out. *)

val select :
  t -> ?name:string -> Instr.value -> Instr.value -> Instr.value ->
  Instr.value
(** [select mask then_v else_v].  The two arms must agree in type; the mask
    must be i1. *)

val load : t -> ?name:string -> base:string -> Affine.t -> Instr.value
(** Scalar load [base[index]]. *)

val store : t -> base:string -> Affine.t -> Instr.value -> unit
(** Scalar store [base[index] = v]. *)

val masked_load :
  t -> ?name:string -> base:string -> Affine.t -> mask:Instr.value ->
  passthrough:Instr.value -> Instr.value
(** Guarded load: yields [base[index]] where the mask is set, the passthrough
    value where it is clear (the masked-off access is not even performed). *)

val masked_store :
  t -> base:string -> Affine.t -> Instr.value -> mask:Instr.value -> unit
(** Guarded store: writes only where the mask is set. *)

val idx : ?sym:string -> int -> Affine.t
(** [idx k] is the affine index [i + k] (with [?sym] overriding ["i"]). *)

val cidx : int -> Affine.t
(** Constant index. *)
