(* The domain-safety rules, applied as one pass over the parsetree.

   R1 walks the structure itself so it knows what is module-level: a
   [ref] under a [fun] is per-call state and fine, the same [ref] bound
   at the top of a module is shared by every domain.  R2-R4 are pure
   expression patterns, applied everywhere via [Ast_iterator]. *)

open Parsetree

type rule = { id : string; slug : string; doc : string }

let r1 =
  {
    id = "R1";
    slug = "global-mutable-state";
    doc =
      "module-level let creating mutable state (ref, Hashtbl.create, ...) \
       shared across domains";
  }

let r2 =
  {
    id = "R2";
    slug = "ambient-random";
    doc =
      "ambient Random.* call (incl. self_init) instead of an explicit \
       Random.State.t";
  }

let r3 =
  {
    id = "R3";
    slug = "raise-primitives";
    doc =
      "failwith / invalid_arg / bare raise of a predefined exception \
       instead of a typed error";
  }

let r4 =
  {
    id = "R4";
    slug = "wall-clock";
    doc =
      "wall-clock read (Unix.gettimeofday, Unix.time, Sys.time) outside \
       the waived telemetry/trace modules";
  }

let r5 =
  {
    id = "R5";
    slug = "boxed-table-hot-path";
    doc =
      "Hashtbl.create / List.assoc* in a hot-path module (lib/core, \
       lib/ir); index through Arena, Int_table or Key_table instead";
  }

let all = [ r1; r2; r3; r4; r5 ]

let find key =
  List.find_opt (fun r -> r.id = key || r.slug = key) all

(* ---- longident helpers -------------------------------------------- *)

(* "Stdlib.Hashtbl.create" and "Hashtbl.create" are the same primitive. *)
let path_of_lid lid =
  match Longident.flatten lid with
  | "Stdlib" :: (_ :: _ as rest) -> String.concat "." rest
  | parts -> String.concat "." parts

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ---- R1: module-level mutable state ------------------------------- *)

(* Creation primitives whose result is mutable.  [Atomic.make] is absent
   on purpose: Atomic (and Id_gen on top of it) is the sanctioned way to
   keep a global counter. *)
let creations =
  [
    ("ref", "a ref cell");
    ("Hashtbl.create", "a hash table");
    ("Queue.create", "a queue");
    ("Stack.create", "a stack");
    ("Buffer.create", "a buffer");
    ("Weak.create", "a weak array");
  ]

let creation_of expr =
  match expr.pexp_desc with
  | Pexp_ident { txt; _ } -> List.assoc_opt (path_of_lid txt) creations
  | _ -> None

let binding_name vb =
  let rec of_pat p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) | Ppat_alias (p, _) -> of_pat p
    | _ -> None
  in
  match of_pat vb.pvb_pat with Some n -> n | None -> "_"

(* Scan the right-hand side of a module-level binding for mutable-state
   creation in escaping position: descend through everything that is
   evaluated once at module init (lets, sequences, tuples, records,
   constructor/function arguments) but never into [fun]/[function]/[lazy]
   bodies, which allocate per call. *)
let rec scan_global ~file ~name e acc =
  let scan = scan_global ~file ~name in
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> acc
  | Pexp_apply (fn, args) ->
    let acc =
      match creation_of fn with
      | Some what ->
        Finding.v ~rule:r1.id ~slug:r1.slug ~file ~loc:e.pexp_loc
          ~ident:name
          (Fmt.str
             "module-level value `%s` creates %s shared by every domain; \
              make it per-run state, or use Atomic/Id_gen and waive it"
             name what)
        :: acc
      | None -> acc
    in
    List.fold_left (fun acc (_, a) -> scan a acc) acc args
  | Pexp_let (_, vbs, body) ->
    scan body (List.fold_left (fun acc vb -> scan vb.pvb_expr acc) acc vbs)
  | Pexp_sequence (a, b) -> scan b (scan a acc)
  | Pexp_ifthenelse (c, t, e_opt) ->
    let acc = scan t (scan c acc) in
    (match e_opt with Some e -> scan e acc | None -> acc)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _)
  | Pexp_open (_, e) | Pexp_letmodule (_, _, e) | Pexp_newtype (_, e) ->
    scan e acc
  | Pexp_tuple es | Pexp_array es ->
    List.fold_left (fun acc e -> scan e acc) acc es
  | Pexp_record (fields, base) ->
    let acc = List.fold_left (fun acc (_, e) -> scan e acc) acc fields in
    (match base with Some e -> scan e acc | None -> acc)
  | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> scan e acc
  | Pexp_match (e, cases) | Pexp_try (e, cases) ->
    List.fold_left
      (fun acc c -> scan c.pc_rhs acc)
      (scan e acc) cases
  | _ -> acc

let rec r1_structure ~file items acc =
  List.fold_left (r1_structure_item ~file) acc items

and r1_structure_item ~file acc item =
  match item.pstr_desc with
  | Pstr_value (_, vbs) ->
    List.fold_left
      (fun acc vb ->
        scan_global ~file ~name:(binding_name vb) vb.pvb_expr acc)
      acc vbs
  | Pstr_module mb -> r1_module_expr ~file mb.pmb_expr acc
  | Pstr_recmodule mbs ->
    List.fold_left
      (fun acc mb -> r1_module_expr ~file mb.pmb_expr acc)
      acc mbs
  | Pstr_include { pincl_mod; _ } -> r1_module_expr ~file pincl_mod acc
  | _ -> acc

and r1_module_expr ~file me acc =
  match me.pmod_desc with
  | Pmod_structure items -> r1_structure ~file items acc
  | Pmod_constraint (me, _) -> r1_module_expr ~file me acc
  | Pmod_functor (_, me) ->
    (* a functor body becomes module-level state at every application
       site, so scan it like a structure *)
    r1_module_expr ~file me acc
  | _ -> acc

(* ---- R2/R3/R4: expression patterns -------------------------------- *)

let wall_clock =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.times"; "Sys.time" ]

(* R5 applies only inside the modules on the per-instruction hot path,
   where the arena refactor replaced boxed id-keyed tables with int
   arrays; elsewhere a Hashtbl is fine.  Matching is on the normalized
   path the driver records. *)
let hot_path_dirs = [ "lib/core/"; "lib/ir/" ]

let in_hot_path file =
  List.exists (fun d -> starts_with ~prefix:d file) hot_path_dirs

let boxed_tables =
  [
    ("Hashtbl.create", "allocates a polymorphic hash table");
    ("List.assoc", "scans an assoc list per lookup");
    ("List.assoc_opt", "scans an assoc list per lookup");
    ("List.mem_assoc", "scans an assoc list per lookup");
    ("List.remove_assoc", "rebuilds an assoc list per removal");
  ]

(* Predefined exceptions a bare [raise] must not throw: they carry no
   typed payload the fail-soft pipeline can dispatch on. *)
let untyped_exceptions =
  [ "Failure"; "Invalid_argument"; "Not_found"; "Exit"; "Match_failure" ]

let expr_findings ~file e acc =
  let add rule ~loc ~ident message =
    Finding.v ~rule:rule.id ~slug:rule.slug ~file ~loc ~ident message :: acc
  in
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    let p = path_of_lid txt in
    if p = "failwith" then
      add r3 ~loc:e.pexp_loc ~ident:p
        "failwith raises untyped Failure; raise a typed error instead"
    else if p = "invalid_arg" then
      add r3 ~loc:e.pexp_loc ~ident:p
        "invalid_arg raises untyped Invalid_argument; raise a typed error \
         or waive the precondition site"
    else if
      starts_with ~prefix:"Random." p
      && not (starts_with ~prefix:"Random.State." p)
    then
      add r2 ~loc:e.pexp_loc ~ident:p
        (Fmt.str
           "%s uses the ambient generator; thread an explicit \
            Random.State.t instead"
           p)
    else if List.exists (String.equal p) wall_clock then
      add r4 ~loc:e.pexp_loc ~ident:p
        (Fmt.str
           "%s reads the wall clock; only waived telemetry/trace \
            modules may be nondeterministic"
           p)
    else
      match
        if in_hot_path file then List.assoc_opt p boxed_tables else None
      with
      | Some what ->
        add r5 ~loc:e.pexp_loc ~ident:p
          (Fmt.str
             "%s %s on the hot path; index through Arena, Int_table or \
              Key_table, or waive a cold site"
             p what)
      | None -> acc)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, arg) :: _)
    when path_of_lid txt = "raise" || path_of_lid txt = "raise_notrace"
    -> (
    match arg.pexp_desc with
    | Pexp_construct ({ txt = exn; _ }, _) ->
      let c = path_of_lid exn in
      if List.exists (String.equal c) untyped_exceptions then
        add r3 ~loc:arg.pexp_loc ~ident:c
          (Fmt.str
             "bare raise of predefined %s; raise a typed error instead" c)
      else acc
    | _ -> acc)
  | _ -> acc

let check ~file structure =
  let acc = ref (r1_structure ~file structure []) in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          acc := expr_findings ~file e !acc;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  iter.structure iter structure;
  List.sort_uniq Finding.compare !acc
