(* One rule violation at one source location. *)

module Json = Lslp_util.Json

type t = {
  rule : string;
  slug : string;
  file : string;
  line : int;
  col : int;
  ident : string;
  message : string;
}

let v ~rule ~slug ~file ~loc ~ident message =
  let p = loc.Location.loc_start in
  {
    rule;
    slug;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    ident;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.ident b.ident

let to_diagnostic f =
  Lslp_check.Diagnostic.error
    ~rule:(f.rule ^ ":" ^ f.slug)
    (Fmt.str "%s:%d:%d: %s" f.file f.line f.col f.message)

let pp ppf f =
  Fmt.pf ppf "%s:%d:%d: error[%s:%s]: %s" f.file f.line f.col f.rule f.slug
    f.message

let json ~waived f =
  Json.Obj
    [
      ("rule", Json.Str f.rule);
      ("slug", Json.Str f.slug);
      ("file", Json.Str f.file);
      ("line", Json.Int f.line);
      ("col", Json.Int f.col);
      ("ident", Json.Str f.ident);
      ("message", Json.Str f.message);
      ("waived", Json.Bool waived);
    ]
