(** Runs the rule registry over a file set and folds in the waiver file.

    The driver is what [bin/lint.ml] and the tests share: collect the
    [.ml] files under the given roots (skipping [_build] and hidden
    directories), parse each with the compiler's parser, apply
    {!Rules.check}, then partition the findings against the waiver
    entries.  Everything is deterministic: files are scanned in sorted
    order and findings are sorted by location. *)

type report = {
  files : string list;       (** files scanned, sorted *)
  parse_errors : (string * string) list;  (** file, message *)
  waived : (Finding.t * Waiver.entry) list;
  unwaived : Finding.t list;
  stale : Waiver.entry list;
}

val ml_files : string list -> string list
(** Every [.ml] file under the given roots (a root may itself be a
    file), sorted, duplicates removed.  Skips [_build] and dot
    directories. *)

val lint_source : file:string -> string -> (Finding.t list, string) result
(** Parse one implementation from a string and apply the rules.  The
    error case is a parse failure rendered as [file:line: message]. *)

val run :
  ?rules:string list -> ?waivers:Waiver.entry list -> string list -> report
(** Lint the [.ml] files under the given roots.  [rules] restricts to
    the given ids/slugs (default: all); [waivers] defaults to none. *)

val ok : ?check_waivers:bool -> report -> bool
(** No parse errors, no unwaived findings — and, with
    [~check_waivers:true], no stale waiver entries either. *)

val findings_by_rule : report -> (string * int) list
(** Count of findings (waived + unwaived) per rule id, for every rule in
    the registry, in registry order. *)

val pp_text : ?check_waivers:bool -> report Fmt.t
(** Human rendering: one {!Finding.pp} line per unwaived finding, stale
    waiver lines when [check_waivers], then a one-line summary. *)

val to_json : ?check_waivers:bool -> report -> Lslp_util.Json.t

val bench_json : wall_s:float -> report -> Lslp_util.Json.t
(** The [BENCH_lint.json] payload: files scanned, findings by rule,
    waiver counts, lint wall-time. *)
