(** A lint finding: one rule violation at one source location.

    Findings are data, never control flow (the same contract as
    [Lslp_check.Diagnostic]): the driver collects every finding in a run,
    applies the waiver file, and only then decides the exit code. *)

type t = {
  rule : string;  (** stable rule id, e.g. ["R1"] *)
  slug : string;  (** human slug, e.g. ["global-mutable-state"] *)
  file : string;  (** path as scanned, normalized (no leading [./]) *)
  line : int;     (** 1-based *)
  col : int;      (** 0-based, matching compiler convention *)
  ident : string;
      (** the offending name — the bound variable for R1, the primitive
          path otherwise (e.g. ["invalid_arg"], ["Unix.gettimeofday"],
          ["Random.self_init"], the exception constructor for bare
          raises).  Waiver entries match on this, not on line numbers, so
          unrelated edits to a waived file cannot go stale. *)
  message : string;
}

val v :
  rule:string ->
  slug:string ->
  file:string ->
  loc:Location.t ->
  ident:string ->
  string ->
  t

val compare : t -> t -> int
(** Order by (file, line, col, rule, ident) — the report order. *)

val to_diagnostic : t -> Lslp_check.Diagnostic.t
(** Render through the PR-1 diagnostic machinery: severity [Error], rule
    ["R1:global-mutable-state"], the location folded into the message. *)

val pp : t Fmt.t
(** [file:line:col: error[R1:slug]: message] — one line, cram-stable. *)

val json : waived:bool -> t -> Lslp_util.Json.t
