(** The rule registry and the parsetree walk that applies it.

    Rules are purely syntactic: the sources are parsed with the compiler's
    own parser ([compiler-libs]), never typed, so the linter runs on any
    tree state and costs milliseconds.  The flip side — patterns a rule
    cannot see through (a mutable value returned by a helper, an exception
    aliased before raising) — is accepted and documented in DESIGN.md §13;
    the committed waiver file handles the sites that are safe on purpose.

    v1 registry:
    - R1 [global-mutable-state]: a module-level [let] whose right-hand
      side creates mutable state ([ref], [Hashtbl.create], [Queue.create],
      [Stack.create], [Buffer.create], [Weak.create]) outside any
      function body — shared by every domain of a Domain-pool compile
      service, i.e. a data race.  [Atomic.make] and [Lslp_util.Id_gen]
      are deliberately not flagged: they are the sanctioned fixes.
    - R2 [ambient-random]: use of the ambient [Random.*] generator
      (including [Random.self_init]) instead of an explicit
      [Random.State.t] — nondeterministic and domain-racy.
    - R3 [raise-primitives]: [failwith], [invalid_arg], or a bare [raise]
      of a predefined exception ([Failure], [Invalid_argument],
      [Not_found], [Exit], ...) — the fail-soft pipeline's guarantees
      rest on typed errors; subsumes the old grep-based
      [make lint-exceptions].
    - R4 [wall-clock]: [Unix.gettimeofday]/[Unix.time]/[Sys.time] — only
      the telemetry/trace modules are allowed to read the clock, and
      those sites are waived with justifications.
    - R5 [boxed-table-hot-path]: [Hashtbl.create] or [List.assoc]-family
      lookups inside the per-instruction hot-path modules ([lib/core],
      [lib/ir]) — the arena refactor serves those queries from int
      arrays ({!Lslp_ir.Arena}, [Int_table], [Key_table]); cold sites
      (reporting, per-run string-keyed registries, the tiny affine term
      lists) are waived with justifications. *)

type rule = {
  id : string;    (** ["R1"] *)
  slug : string;  (** ["global-mutable-state"] *)
  doc : string;   (** one-line description, shown by [lslp-lint --rules] *)
}

val all : rule list

val find : string -> rule option
(** Look up by id ([R1]) or slug ([global-mutable-state]). *)

val check : file:string -> Parsetree.structure -> Finding.t list
(** Apply every rule to one parsed implementation.  [file] is the
    normalized path recorded in each finding.  Sorted by location. *)
