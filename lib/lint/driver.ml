(* File collection, parsing, and report assembly. *)

module Json = Lslp_util.Json

type report = {
  files : string list;
  parse_errors : (string * string) list;
  waived : (Finding.t * Waiver.entry) list;
  unwaived : Finding.t list;
  stale : Waiver.entry list;
}

(* ---- file collection ---------------------------------------------- *)

let skip_dir name =
  name = "_build" || (String.length name > 0 && name.[0] = '.')

(* Normalize "./lib" and "lib/" to "lib" so waiver paths are stable. *)
let normalize path =
  let path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  let n = String.length path in
  if n > 1 && path.[n - 1] = '/' then String.sub path 0 (n - 1) else path

let ml_files roots =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter
        (fun name ->
          if not (skip_dir name) then walk (Filename.concat path name))
        (Sys.readdir path)
    else if Filename.check_suffix path ".ml" then acc := path :: !acc
  in
  List.iter
    (fun root ->
      let root = normalize root in
      if Sys.file_exists root then walk root)
    roots;
  List.sort_uniq String.compare !acc

(* ---- parsing ------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_source ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok (Rules.check ~file structure)
  | exception exn -> (
    match Location.error_of_exn exn with
    | Some (`Ok err) ->
      let msg = Format.asprintf "%a" Location.print_report err in
      (* one line, no source excerpt artifacts *)
      Error
        (String.concat " "
           (List.filter
              (fun s -> s <> "")
              (List.map String.trim (String.split_on_char '\n' msg))))
    | _ -> Error (file ^ ": " ^ Printexc.to_string exn))

(* ---- the run ------------------------------------------------------ *)

let run ?rules ?(waivers = []) roots =
  let keep f =
    match rules with
    | None -> true
    | Some keys ->
      List.exists
        (fun k -> k = f.Finding.rule || k = f.Finding.slug)
        keys
  in
  let files = ml_files roots in
  let findings, parse_errors =
    List.fold_left
      (fun (fs, errs) file ->
        match lint_source ~file (read_file file) with
        | Ok found -> (fs @ List.filter keep found, errs)
        | Error msg -> (fs, errs @ [ (file, msg) ]))
      ([], []) files
  in
  let { Waiver.waived; unwaived; stale } = Waiver.apply waivers findings in
  (* a stale entry for a rule outside the requested subset is not the
     waiver file's fault — don't report it *)
  let stale =
    match rules with
    | None -> stale
    | Some keys ->
      List.filter
        (fun e -> List.exists (fun k -> k = e.Waiver.w_rule) keys)
        stale
  in
  { files; parse_errors; waived; unwaived; stale }

let ok ?(check_waivers = false) r =
  r.parse_errors = [] && r.unwaived = []
  && ((not check_waivers) || r.stale = [])

let findings_by_rule r =
  let all = List.map fst r.waived @ r.unwaived in
  List.map
    (fun rule ->
      ( rule.Rules.id,
        List.length
          (List.filter (fun f -> f.Finding.rule = rule.Rules.id) all) ))
    Rules.all

(* ---- rendering ---------------------------------------------------- *)

let pp_text ?(check_waivers = false) ppf r =
  List.iter
    (fun (file, msg) -> Fmt.pf ppf "%s: parse error: %s@." file msg)
    r.parse_errors;
  List.iter (fun f -> Fmt.pf ppf "%a@." Finding.pp f) r.unwaived;
  if check_waivers then
    List.iter
      (fun e ->
        Fmt.pf ppf "stale waiver (matched no finding): %a@." Waiver.pp_entry
          e)
      r.stale;
  let stale_n = if check_waivers then List.length r.stale else 0 in
  Fmt.pf ppf "lint: %d file(s), %d finding(s): %d unwaived, %d waived%s@."
    (List.length r.files)
    (List.length r.unwaived + List.length r.waived)
    (List.length r.unwaived)
    (List.length r.waived)
    (if stale_n > 0 then Fmt.str ", %d stale waiver(s)" stale_n else "")

let to_json ?(check_waivers = false) r =
  Json.Obj
    [
      ("files", Json.Int (List.length r.files));
      ( "parse_errors",
        Json.Arr
          (List.map
             (fun (file, msg) ->
               Json.Obj
                 [ ("file", Json.Str file); ("message", Json.Str msg) ])
             r.parse_errors) );
      ( "findings",
        Json.Arr
          (List.map (Finding.json ~waived:false) r.unwaived
          @ List.map (fun (f, _) -> Finding.json ~waived:true f) r.waived)
      );
      ( "stale_waivers",
        if check_waivers then
          Json.Arr (List.map Waiver.entry_json r.stale)
        else Json.Arr [] );
      ("ok", Json.Bool (ok ~check_waivers r));
    ]

let bench_json ~wall_s r =
  Json.Obj
    [
      ("bench", Json.Str "lint");
      ("files_scanned", Json.Int (List.length r.files));
      ( "findings_by_rule",
        Json.Obj
          (List.map (fun (id, n) -> (id, Json.Int n)) (findings_by_rule r))
      );
      ("waived", Json.Int (List.length r.waived));
      ("unwaived", Json.Int (List.length r.unwaived));
      ("stale_waivers", Json.Int (List.length r.stale));
      ("wall_s", Json.Float wall_s);
    ]
