(* Waiver-file parsing and matching. *)

module Json = Lslp_util.Json

type entry = {
  w_rule : string;
  w_file : string;
  w_ident : string;
  w_reason : string;
  w_lineno : int;
}

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* Find the first " -- " separator; everything after is the reason. *)
let split_reason line =
  let n = String.length line in
  let rec look i =
    if i + 4 > n then None
    else if String.sub line i 4 = " -- " then
      Some
        ( String.trim (String.sub line 0 i),
          String.trim (String.sub line (i + 4) (n - i - 4)) )
    else look (i + 1)
  in
  look 0

let parse ~file contents =
  let entries = ref [] in
  let error = ref None in
  let fail lineno fmt =
    Fmt.kstr
      (fun msg ->
        if !error = None then
          error := Some (Fmt.str "%s:%d: %s" file lineno msg))
      fmt
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then ()
      else
        match split_reason trimmed with
        | None -> fail lineno "missing ` -- justification`"
        | Some (_, "") -> fail lineno "empty justification after `--`"
        | Some (head, reason) -> (
          match split_ws head with
          | [ rule; path; ident ] ->
            if Rules.find rule = None then
              fail lineno "unknown rule id %s" rule
            else
              entries :=
                {
                  w_rule = rule;
                  w_file = path;
                  w_ident = ident;
                  w_reason = reason;
                  w_lineno = lineno;
                }
                :: !entries
          | _ ->
            fail lineno
              "expected `<rule> <file> <ident> -- justification`"))
    (String.split_on_char '\n' contents);
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev !entries)

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    parse ~file:path contents

let matches e (f : Finding.t) =
  e.w_rule = f.Finding.rule
  && e.w_file = f.Finding.file
  && (e.w_ident = "*" || e.w_ident = f.Finding.ident)

type applied = {
  waived : (Finding.t * entry) list;
  unwaived : Finding.t list;
  stale : entry list;
}

let apply entries findings =
  let used = Hashtbl.create 8 in
  let waived, unwaived =
    List.fold_left
      (fun (w, u) f ->
        match List.find_opt (fun e -> matches e f) entries with
        | Some e ->
          Hashtbl.replace used e.w_lineno ();
          ((f, e) :: w, u)
        | None -> (w, f :: u))
      ([], []) findings
  in
  {
    waived = List.rev waived;
    unwaived = List.rev unwaived;
    stale =
      List.filter (fun e -> not (Hashtbl.mem used e.w_lineno)) entries;
  }

let pp_entry ppf e =
  Fmt.pf ppf "%s %s %s -- %s" e.w_rule e.w_file e.w_ident e.w_reason

let entry_json e =
  Json.Obj
    [
      ("rule", Json.Str e.w_rule);
      ("file", Json.Str e.w_file);
      ("ident", Json.Str e.w_ident);
      ("reason", Json.Str e.w_reason);
      ("line", Json.Int e.w_lineno);
    ]
