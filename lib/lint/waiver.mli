(** The committed waiver file: per-site justifications for findings that
    are safe on purpose.

    Format, one entry per line ([#] comments and blank lines ignored):

    {v
    <rule> <file> <ident> -- <justification>
    R4 lib/telemetry/probe.ml Unix.gettimeofday -- pass timers are wall-clock by design
    R3 lib/ir/types.ml invalid_arg -- lane-count preconditions are programmer errors
    v}

    Entries match on (rule, file, ident) — never on line numbers, so
    unrelated edits to a waived file cannot silently invalidate the
    waiver.  [ident] may be [*] to waive every ident of one rule in one
    file.  The justification after [--] is mandatory.

    [lslp-lint --check-waivers] fails on {e stale} entries — entries that
    matched no finding in the run — so a fixed site must also drop its
    waiver in the same commit. *)

type entry = {
  w_rule : string;
  w_file : string;
  w_ident : string;  (** ["*"] matches any ident *)
  w_reason : string;
  w_lineno : int;    (** line in the waiver file, for error messages *)
}

val parse : file:string -> string -> (entry list, string) result
(** Parse the waiver file contents; [file] names it in errors.  Rejects
    unknown rule ids and entries without a [--] justification. *)

val load : string -> (entry list, string) result
(** {!parse} on the file's contents; missing file is an error. *)

val matches : entry -> Finding.t -> bool

type applied = {
  waived : (Finding.t * entry) list;
  unwaived : Finding.t list;
  stale : entry list;  (** entries that matched no finding *)
}

val apply : entry list -> Finding.t list -> applied

val pp_entry : entry Fmt.t

val entry_json : entry -> Lslp_util.Json.t
