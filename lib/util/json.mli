(** Minimal JSON: one shared document type, one emitter, one reader.

    Every JSON document the project produces — optimization remarks
    ([Lslp_check.Remark]), telemetry reports ([Lslp_telemetry.Report]),
    fuzzer summaries ([Lslp_fuzz.Fuzz]), Chrome trace-event streams
    ([Lslp_trace.Trace]) and the bench baseline snapshot — renders through
    {!to_string}, so string escaping (quotes, backslashes, control
    characters) is implemented exactly once.  The reader side ({!of_string})
    is the validator CI runs over every emitted Chrome trace, and what the
    bench-regression gate uses to load the committed baseline. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** field order is preserved verbatim *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes): double quote,
    backslash, and every control character below 0x20 (newline, tab and
    carriage return as two-character escapes, the rest as [\u00XX]). *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Minified rendering: no whitespace, object fields in the order given.
    Non-finite floats render as [null] (JSON has no NaN/infinity). *)

val of_string : string -> (t, string) result
(** Strict parser: one complete value, no trailing garbage.  Accepts
    arbitrary nesting, all escape forms including [\uXXXX] (surrogate pairs
    decoded to UTF-8), and distinguishes integral numbers ([Int]) from the
    rest ([Float]).  Errors carry a byte offset. *)

val validate : string -> (unit, string) result
(** [of_string] with the value thrown away — the reader-side check. *)

(** {2 Accessors} (for tests and the baseline diff) *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else or a missing field. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
