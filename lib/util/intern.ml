(* String interner: names to dense small ints.

   Array bases and affine shapes repeat constantly across address queries;
   interning them once per arena turns every later comparison into an int
   equality.  Ids are handed out in first-seen order, so a deterministic
   input order yields deterministic ids. *)

type t = {
  tbl : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
}

let create n =
  { tbl = Hashtbl.create (max 16 n); names = Array.make (max 16 n) ""; count = 0 }

let intern t s =
  match Hashtbl.find_opt t.tbl s with
  | Some id -> id
  | None ->
    let id = t.count in
    Hashtbl.replace t.tbl s id;
    if id >= Array.length t.names then begin
      let bigger = Array.make (2 * Array.length t.names) "" in
      Array.blit t.names 0 bigger 0 id;
      t.names <- bigger
    end;
    t.names.(id) <- s;
    t.count <- id + 1;
    id

let find_opt t s = Hashtbl.find_opt t.tbl s
let name t id = t.names.(id)
let count t = t.count
