(* Open-addressing hash table keyed by int arrays.

   Bundle identities, CSE value keys and other composite facts on the hot
   path are encoded as short [int array]s (a tag plus payload words per
   element) instead of `Fmt.str`-built strings; this table maps such a key
   to an int handle.  FNV-1a over the words, linear probing, power-of-two
   capacity.  Keys are compared by content; the caller must not mutate a
   key after insertion. *)

type t = {
  mutable keys : int array array; (* [||] = empty slot *)
  mutable vals : int array;
  mutable mask : int;
  mutable count : int;
}

let hash_key (k : int array) =
  let h = ref 0x0bf29ce484222325 in
  for i = 0 to Array.length k - 1 do
    let w = Array.unsafe_get k i in
    h := (!h lxor (w land 0xffffffff)) * 0x100000001b3;
    h := (!h lxor (w lsr 32)) * 0x100000001b3
  done;
  !h

let equal_key (a : int array) (b : int array) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
  go 0

let create n =
  let cap =
    let c = ref 16 in
    while !c < max 16 n do
      c := !c * 2
    done;
    !c
  in
  { keys = Array.make cap [||]; vals = Array.make cap 0; mask = cap - 1; count = 0 }

let length t = t.count

let rec probe keys mask k s =
  let key = Array.unsafe_get keys s in
  if Array.length key = 0 || equal_key key k then s
  else probe keys mask k ((s + 1) land mask)

let index t k = probe t.keys t.mask k (hash_key k land t.mask)

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap [||];
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if Array.length k <> 0 then begin
        let s = probe t.keys t.mask k (hash_key k land t.mask) in
        t.keys.(s) <- k;
        t.vals.(s) <- old_vals.(i)
      end)
    old_keys

let set t k v =
  if Array.length k = 0 then invalid_arg "Key_table.set: empty key";
  let s = index t k in
  if Array.length t.keys.(s) = 0 then begin
    t.keys.(s) <- k;
    t.vals.(s) <- v;
    t.count <- t.count + 1;
    if t.count * 4 > (t.mask + 1) * 3 then grow t
  end
  else t.vals.(s) <- v

let get t k ~absent =
  let s = index t k in
  if Array.length t.keys.(s) = 0 then absent else t.vals.(s)

let find_opt t k =
  let s = index t k in
  if Array.length t.keys.(s) = 0 then None else Some t.vals.(s)

let mem t k = Array.length t.keys.(index t k) <> 0
