(** String interner: names to dense small ints, first-seen order. *)

type t

val create : int -> t

val intern : t -> string -> int
(** Existing id, or the next dense id for a new string. *)

val find_opt : t -> string -> int option
val name : t -> int -> string
val count : t -> int
