(** Open-addressing hash table keyed by [int array]s.

    Composite identities (vector-bundle shapes, CSE value keys) encode as
    short int arrays; this maps such a key to an [int] handle without
    string building or polymorphic hashing.  An empty array is not a valid
    key.  Keys must not be mutated after insertion. *)

type t

val create : int -> t
val length : t -> int

val set : t -> int array -> int -> unit
(** Insert or overwrite. @raise Invalid_argument on the empty key. *)

val get : t -> int array -> absent:int -> int
val find_opt : t -> int array -> int option
val mem : t -> int array -> bool
