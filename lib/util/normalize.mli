(** Alpha-renaming of printed IR labels.

    Instruction labels embed a process-global id counter, so two pipeline
    runs over clones of one function are never byte-identical; after
    {!ids}, textual equality means structural equality.  Shared by the
    differential fuzzer, the domain-determinism smoke and the compile
    service's content-addressed result cache. *)

val ids : string -> string
(** Rename every [%label] by first appearance ([%r0], [%r1], ...). *)
