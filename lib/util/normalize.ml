(* Alpha-renaming of printed IR.

   Printed IR embeds the process-global instruction-id counter in every
   %label (see Lslp_ir.Printer), so two pipeline runs in one process are
   never textually identical even when they build the same instructions.
   Renaming every %token by first appearance makes textual equality mean
   structural equality — the invariant behind the fuzzer's differential
   checks, the domain-determinism smoke and the service's content-addressed
   cache key. *)

let ids s =
  let b = Buffer.create (String.length s) in
  let tbl = Intern.create 64 in
  let n = String.length s in
  let is_tok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.'
  in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = '%' then begin
      let j = ref (!i + 1) in
      while !j < n && is_tok s.[!j] do incr j done;
      let tok = String.sub s !i (!j - !i) in
      let k = Intern.intern tbl tok in
      Buffer.add_string b "%r";
      Buffer.add_string b (string_of_int k);
      i := !j
    end
    else begin
      Buffer.add_char b c;
      incr i
    end
  done;
  Buffer.contents b
