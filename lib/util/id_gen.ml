(* Atomic-backed id source.  [fetch_and_add] makes [next] a single
   hardware RMW, so ids stay unique across domains without a lock, and a
   single-domain caller sees exactly the sequence the old [incr counter]
   pattern produced. *)

type t = { cell : int Atomic.t; first : int }

let create ?(first = 0) () = { cell = Atomic.make first; first }

let next t = Atomic.fetch_and_add t.cell 1

let peek t = Atomic.get t.cell

let issued t = Atomic.get t.cell - t.first
