(* One JSON implementation for the whole project.

   The emitter is minified and preserves object-field order, so renderers
   ported onto it stay byte-compatible with the hand-rolled output they
   replace (the analyze --json cram goldens pin those bytes).  The reader
   is a strict recursive-descent parser used as a validator for every
   Chrome trace CI emits and as the loader of the bench baseline. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- emitter ------------------------------------------------------ *)

let escape_to_buffer b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let escape s =
  let b = Buffer.create (String.length s + 8) in
  escape_to_buffer b s;
  Buffer.contents b

let float_to_buffer b x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then
    Buffer.add_string b "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" x)
  else Buffer.add_string b (Printf.sprintf "%.12g" x)

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float x -> float_to_buffer b x
  | Str s ->
    Buffer.add_char b '"';
    escape_to_buffer b s;
    Buffer.add_char b '"'
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun k x ->
        if k > 0 then Buffer.add_char b ',';
        to_buffer b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun k (name, x) ->
        if k > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape_to_buffer b name;
        Buffer.add_string b "\":";
        to_buffer b x)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  to_buffer b v;
  Buffer.contents b

(* ---- reader ------------------------------------------------------- *)

exception Parse_error of int * string

let parse_error pos fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (pos, msg))) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> parse_error st.pos "expected '%c', found '%c'" c c'
  | None -> parse_error st.pos "expected '%c', found end of input" c

let skip_ws st =
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | Some _ | None -> continue_ := false
  done

let hex_digit pos c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> parse_error pos "invalid hex digit '%c'" c

let parse_hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
     | Some c -> v := (!v * 16) + hex_digit st.pos c
     | None -> parse_error st.pos "truncated \\u escape");
    advance st
  done;
  !v

(* Encode a Unicode code point as UTF-8 bytes. *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string_body st =
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_error st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
       | None -> parse_error st.pos "unterminated escape"
       | Some c ->
         advance st;
         (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            let hi = parse_hex4 st in
            if hi >= 0xD800 && hi <= 0xDBFF then begin
              (* high surrogate: a \uDC00-\uDFFF low surrogate must follow *)
              expect st '\\';
              expect st 'u';
              let lo = parse_hex4 st in
              if lo < 0xDC00 || lo > 0xDFFF then
                parse_error st.pos "unpaired surrogate \\u%04x" hi;
              add_utf8 b
                (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else if hi >= 0xDC00 && hi <= 0xDFFF then
              parse_error st.pos "unpaired low surrogate \\u%04x" hi
            else add_utf8 b hi
          | c -> parse_error (st.pos - 1) "invalid escape '\\%c'" c));
      go ()
    | Some c when Char.code c < 0x20 ->
      parse_error st.pos "unescaped control character 0x%02x" (Char.code c)
    | Some c ->
      advance st;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  (match peek st with Some '-' -> advance st | _ -> ());
  let digits () =
    let n0 = st.pos in
    let continue_ = ref true in
    while !continue_ do
      match peek st with
      | Some '0' .. '9' -> advance st
      | Some _ | None -> continue_ := false
    done;
    if st.pos = n0 then parse_error st.pos "expected a digit"
  in
  digits ();
  (match peek st with
   | Some '.' ->
     is_float := true;
     advance st;
     digits ()
   | _ -> ());
  (match peek st with
   | Some ('e' | 'E') ->
     is_float := true;
     advance st;
     (match peek st with Some ('+' | '-') -> advance st | _ -> ());
     digits ()
   | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> Float (float_of_string text)

let parse_literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else parse_error st.pos "invalid literal"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_error st.pos "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        expect st '"';
        let name = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (name, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ()
        | Some '}' -> advance st
        | Some c -> parse_error st.pos "expected ',' or '}', found '%c'" c
        | None -> parse_error st.pos "unterminated object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements ()
        | Some ']' -> advance st
        | Some c -> parse_error st.pos "expected ',' or ']', found '%c'" c
        | None -> parse_error st.pos "unterminated array"
      in
      elements ();
      Arr (List.rev !items)
    end
  | Some '"' ->
    advance st;
    Str (parse_string_body st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> parse_error st.pos "unexpected character '%c'" c

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos < String.length s then
      Error
        (Printf.sprintf "byte %d: trailing garbage after JSON value" st.pos)
    else Ok v
  | exception Parse_error (pos, msg) ->
    Error (Printf.sprintf "byte %d: %s" pos msg)

let validate s = Result.map (fun (_ : t) -> ()) (of_string s)

(* ---- accessors ---------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | Null | Bool _ | Int _ | Float _ | Str _ | Arr _ -> None

let to_int_opt = function Int n -> Some n | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function Arr xs -> Some xs | _ -> None
