(** Domain-safe id generation.

    One {!t} is a monotone counter backed by [Atomic.t]: {!next} hands out
    each integer exactly once even when several domains draw concurrently
    (the Domain-pool compile server shards whole pipeline runs across
    cores).  On a single domain the sequence is [first, first+1, ...] — the
    same numbers the old [ref]-based counters produced, so sequential
    golden output is unchanged.

    Two granularities exist in the tree:
    - process-global ([Lslp_ir.Instr.fresh_id]): identities must stay
      unique across every live function, whichever domain built it;
    - per-run ([Lslp_trace.Trace.fresh_gid], the SLP-graph node ids): the
      generator lives in per-run state, so concurrent runs number their
      artifacts independently and deterministically.

    [lslp-lint] rule R1 (global mutable state) deliberately does not flag
    [Atomic]-backed values: this module is the sanctioned way to keep a
    global counter. *)

type t

val create : ?first:int -> unit -> t
(** A fresh generator whose first handed-out id is [first] (default 0). *)

val next : t -> int
(** Claim and return the next id.  Lock-free; each id is returned at most
    once across all domains sharing [t]. *)

val peek : t -> int
(** The id {!next} would return now — racy under concurrency, intended for
    tests and telemetry only. *)

val issued : t -> int
(** How many ids have been handed out so far (same caveat as {!peek}). *)
