(** Open-addressing hash table from [int] keys to [int] values.

    The unboxed replacement for [(int, _) Hashtbl.t] on hot paths: linear
    probing over two flat arrays, multiplicative hashing, no allocation per
    query.  The key [min_int] is reserved (it marks empty slots).
    Iteration order is deliberately not exposed. *)

type t

val create : int -> t
(** [create n] sizes the table for about [n] entries (it grows as needed). *)

val length : t -> int
val clear : t -> unit

val set : t -> int -> int -> unit
(** Insert or overwrite. @raise Invalid_argument on the reserved key. *)

val get : t -> int -> absent:int -> int
(** Lookup without allocating; [absent] when the key is missing. *)

val mem : t -> int -> bool
val find_opt : t -> int -> int option

val get_or_add : t -> int -> default:(unit -> int) -> int
(** Existing value, or store and return [default ()] in one probe. *)
