(* Open-addressing hash table from int keys to int values.

   The hot-path replacement for `(int, _) Hashtbl.t`: no boxing, no
   polymorphic hashing, no bucket lists.  Keys are arbitrary ints except
   [min_int], which marks an empty slot; values are arbitrary ints.  Linear
   probing with power-of-two capacity and a fixed multiplicative hash —
   iteration order is never exposed, so determinism does not depend on the
   probe sequence. *)

type t = {
  mutable keys : int array; (* min_int = empty *)
  mutable vals : int array;
  mutable mask : int;       (* capacity - 1, capacity a power of two *)
  mutable count : int;
}

let empty_key = min_int

(* Fibonacci hashing: odd multiplier, top bits folded down by [land mask]
   after a shift.  Good enough for dense ids and packed keys alike. *)
let[@inline] slot_of ~mask k =
  let h = k * 0x2E3779B97F4A7C15 in
  (h lxor (h lsr 29)) land mask

let create n =
  let cap = max 16 n in
  (* round up to a power of two *)
  let cap =
    let c = ref 16 in
    while !c < cap do
      c := !c * 2
    done;
    !c
  in
  {
    keys = Array.make cap empty_key;
    vals = Array.make cap 0;
    mask = cap - 1;
    count = 0;
  }

let length t = t.count

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  t.count <- 0

let rec probe keys mask k s =
  let key = Array.unsafe_get keys s in
  if key = k || key = empty_key then s else probe keys mask k ((s + 1) land mask)

let[@inline] index t k = probe t.keys t.mask k (slot_of ~mask:t.mask k)

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k <> empty_key then begin
        let s = probe t.keys t.mask k (slot_of ~mask:t.mask k) in
        t.keys.(s) <- k;
        t.vals.(s) <- old_vals.(i)
      end)
    old_keys

let set t k v =
  if k = empty_key then invalid_arg "Int_table.set: reserved key";
  let s = index t k in
  if t.keys.(s) = empty_key then begin
    t.keys.(s) <- k;
    t.vals.(s) <- v;
    t.count <- t.count + 1;
    (* keep load factor under 3/4 *)
    if t.count * 4 > (t.mask + 1) * 3 then grow t
  end
  else t.vals.(s) <- v

let get t k ~absent =
  let s = index t k in
  if Array.unsafe_get t.keys s = empty_key then absent
  else Array.unsafe_get t.vals s

let mem t k = t.keys.(index t k) <> empty_key

let find_opt t k =
  let s = index t k in
  if t.keys.(s) = empty_key then None else Some t.vals.(s)

(* Get-or-insert in one probe: returns the existing value, or stores and
   returns [default ()] when the key is new. *)
let get_or_add t k ~default =
  if k = empty_key then invalid_arg "Int_table.get_or_add: reserved key";
  let s = index t k in
  if t.keys.(s) = empty_key then begin
    let v = default () in
    t.keys.(s) <- k;
    t.vals.(s) <- v;
    t.count <- t.count + 1;
    if t.count * 4 > (t.mask + 1) * 3 then grow t;
    v
  end
  else t.vals.(s)
