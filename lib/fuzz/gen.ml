(* Random well-typed kernel generation for the differential fuzzer.

   Four program shapes, mirroring the pipeline's vectorization routes:

   - [Straight]: VL lanes of one commutative expression with per-lane
     random operand permutations and fold directions — the hidden
     isomorphism LSLP exists to uncover — stored to consecutive elements.
   - [Reduction]: one chain of a commutative+associative opcode folded
     over random leaves — the reduction-tree idiom.
   - [Loop]: a counted loop whose body computes one such expression per
     iteration; it only vectorizes through the unroll/region-formation
     layer.
   - [Cond]: VL lanes of data-dependent masked code, the IR if-conversion
     produces — a compare against a per-lane guard load, then guarded
     stores (complementary masked stores to the same element, optionally
     nested with an ANDed second guard), select merges and masked loads
     with passthroughs.  Drawn only by the dedicated branching fuzz arm
     ([~cond_only]) so the classic pinned-seed streams stay bit-stable.

   Programs read from arrays A/B/C and write to R/S only, so stores never
   alias loads; every program is verified well-formed before it leaves the
   generator.  Generation draws from an explicit [Random.State.t]
   (deterministic per seed; no global RNG). *)

open Lslp_ir

type elt = E_f64 | E_i64

type leaf =
  | L_load of int * int * int  (* array id, zone, stride (1 = consecutive) *)
  | L_const of float           (* distinct constant per lane *)
  | L_shared of float          (* same constant in every lane *)

type shape =
  | Straight of {
      vl : int;
      op : Opcode.binop;
      leaves : leaf list;          (* >= 2 *)
      perms : int list list;       (* per lane: permutation of leaf indices *)
      left_assoc : bool list;      (* per lane: fold direction *)
      decoy_store : bool;          (* unrelated store between the seeds *)
    }
  | Reduction of {
      r_op : Opcode.binop;
      r_leaves : leaf list;        (* >= 2 *)
      r_left : bool;
    }
  | Loop of {
      l_op : Opcode.binop;
      l_leaves : leaf list;        (* >= 2 *)
      l_left : bool;
      l_trip : int;
      l_symbolic : bool;           (* bound is the argument [n], not a const *)
    }
  | Cond of {
      c_vl : int;                  (* guarded consecutive elements (2 or 4) *)
      c_cmp : Opcode.cmp;          (* guard predicate *)
      c_guard : leaf;              (* always a load: the guard data *)
      c_thresh : float;            (* compared against a shared constant *)
      c_op : Opcode.binop;
      c_leaves : leaf list;        (* >= 2, the branch expression *)
      c_has_else : bool;           (* complementary-mask else arm *)
      c_select : bool;             (* merge via select + plain store instead
                                      of two masked stores *)
      c_masked_loads : bool;       (* branch loads carry the mask *)
      c_nested : bool;             (* second guard ANDed into the then mask *)
    }

type prog = { elt : elt; shape : shape }

let arrays = [| "A"; "B"; "C" |]

let describe (p : prog) =
  let elt = match p.elt with E_f64 -> "f64" | E_i64 -> "i64" in
  match p.shape with
  | Straight { vl; op; leaves; decoy_store; perms; _ } ->
    Fmt.str "straight %s %s vl=%d leaves=%d decoy=%b perms=%s" elt
      (Opcode.binop_name op) vl (List.length leaves) decoy_store
      (String.concat ";"
         (List.map
            (fun p -> String.concat "," (List.map string_of_int p))
            perms))
  | Reduction { r_op; r_leaves; r_left } ->
    Fmt.str "reduction %s %s leaves=%d left=%b" elt
      (Opcode.binop_name r_op) (List.length r_leaves) r_left
  | Loop { l_op; l_leaves; l_left; l_trip; l_symbolic } ->
    Fmt.str "loop %s %s leaves=%d left=%b trip=%s" elt
      (Opcode.binop_name l_op) (List.length l_leaves) l_left
      (if l_symbolic then "n" else string_of_int l_trip)
  | Cond
      { c_vl; c_cmp; c_op; c_leaves; c_has_else; c_select; c_masked_loads;
        c_nested; _ } ->
    Fmt.str
      "cond %s %s/%s vl=%d leaves=%d else=%b select=%b mloads=%b nested=%b"
      elt (Opcode.cmp_name c_cmp) (Opcode.binop_name c_op) c_vl
      (List.length c_leaves) c_has_else c_select c_masked_loads c_nested

(* ---- building ------------------------------------------------------ *)

let scalar_of_elt = function E_f64 -> Types.F64 | E_i64 -> Types.I64

let make_builder (p : prog) =
  let aty = Instr.Array_arg (scalar_of_elt p.elt) in
  Builder.create ~name:"fuzz"
    ~args:
      [ ("R", aty); ("S", aty); ("A", aty); ("B", aty); ("C", aty);
        ("i", Instr.Int_arg); ("n", Instr.Int_arg) ]

let const_value elt c =
  match elt with
  | E_f64 -> Builder.fconst c
  (* keep integer constants small: products of a few leaves stay far from
     overflow, and bitwise ops see mixed patterns *)
  | E_i64 -> Builder.iconst (1 + (int_of_float (c *. 8.0) land 31))

let leaf_value b elt ~counter ~lane = function
  | L_load (arr, zone, stride) ->
    Builder.load b
      ~base:arrays.(arr mod Array.length arrays)
      (Affine.add_const ((zone * 16) + (lane * stride)) (Affine.sym counter))
  | L_const c -> const_value elt (c +. float_of_int lane)
  | L_shared c -> const_value elt c

(* Branch-body leaves: loads carry the mask (with a constant passthrough
   feeding the dead lanes), constants are unchanged. *)
let leaf_value_masked b elt ~counter ~lane ~mask = function
  | L_load (arr, zone, stride) ->
    Builder.masked_load b
      ~base:arrays.(arr mod Array.length arrays)
      (Affine.add_const ((zone * 16) + (lane * stride)) (Affine.sym counter))
      ~mask
      ~passthrough:(const_value elt 1.5)
  | (L_const _ | L_shared _) as l -> leaf_value b elt ~counter ~lane l

let fold_expr b op values left =
  match values with
  | [] -> invalid_arg "Gen.fold_expr: no leaves"
  | v0 :: rest ->
    if left then
      List.fold_left (fun acc v -> Builder.binop b op acc v) v0 rest
    else List.fold_left (fun acc v -> Builder.binop b op v acc) v0 rest

let build (p : prog) : Func.t =
  let b = make_builder p in
  (match p.shape with
   | Straight { vl = _; op; leaves; perms; left_assoc; decoy_store } ->
     List.iteri
       (fun lane (perm, left) ->
         let ordered = List.map (fun j -> List.nth leaves j) perm in
         let values =
           List.map (leaf_value b p.elt ~counter:"i" ~lane) ordered
         in
         let v = fold_expr b op values left in
         Builder.store b ~base:"R" (Affine.add_const lane (Affine.sym "i")) v;
         if decoy_store && lane = 0 then
           Builder.store b ~base:"S"
             (Affine.add_const 40 (Affine.sym "i"))
             (const_value p.elt 3.5))
       (List.combine perms left_assoc)
   | Reduction { r_op; r_leaves; r_left } ->
     let values =
       List.mapi
         (fun j l -> leaf_value b p.elt ~counter:"i" ~lane:j l)
         r_leaves
     in
     let v = fold_expr b r_op values r_left in
     Builder.store b ~base:"R" (Affine.sym "i") v
   | Loop { l_op; l_leaves; l_left; l_trip; l_symbolic } ->
     let stop =
       if l_symbolic then Block.Bound_sym "n" else Block.Bound_const l_trip
     in
     ignore
       (Builder.start_block b ~label:"loop"
          ~kind:
            (Block.Loop
               { Block.counter = "c"; l_start = 0; l_stop = stop; l_step = 1 })
          ());
     let values =
       List.mapi
         (fun j l -> leaf_value b p.elt ~counter:"c" ~lane:j l)
         l_leaves
     in
     let v = fold_expr b l_op values l_left in
     Builder.store b ~base:"R" (Affine.sym "c") v
   | Cond
       { c_vl; c_cmp; c_guard; c_thresh; c_op; c_leaves; c_has_else;
         c_select; c_masked_loads; c_nested } ->
     let elt = p.elt in
     for lane = 0 to c_vl - 1 do
       let g = leaf_value b elt ~counter:"i" ~lane c_guard in
       let m = Builder.cmp b c_cmp g (const_value elt c_thresh) in
       let store_mask =
         if c_nested then begin
           (* nested guard: a second compare over different elements of the
              same guard data, ANDed in — what a nested if flattens to *)
           let g2 = leaf_value b elt ~counter:"i" ~lane:(lane + 8) c_guard in
           let m2 =
             Builder.cmp b (Opcode.swap_cmp c_cmp) g2
               (const_value elt (c_thresh +. 1.0))
           in
           Builder.binop b Opcode.And m m2
         end
         else m
       in
       let branch_leaf lane l =
         if c_masked_loads then
           leaf_value_masked b elt ~counter:"i" ~lane ~mask:store_mask l
         else leaf_value b elt ~counter:"i" ~lane l
       in
       let then_v =
         fold_expr b c_op (List.map (branch_leaf lane) c_leaves) true
       in
       let out = Affine.add_const lane (Affine.sym "i") in
       if c_select then begin
         (* merged at the join: one unmasked store of a lane-wise select *)
         let else_v =
           if c_has_else then
             fold_expr b c_op
               (List.map (branch_leaf (lane + 4)) (List.rev c_leaves))
               false
           else const_value elt 2.5
         in
         Builder.store b ~base:"R" out (Builder.select b store_mask then_v else_v)
       end
       else begin
         Builder.masked_store b ~base:"R" out then_v ~mask:store_mask;
         if c_has_else then begin
           (* complementary arm: the negated predicate over the same guard
              value, the second masked store to the same element *)
           let nm =
             Builder.cmp b (Opcode.negate_cmp c_cmp) g (const_value elt c_thresh)
           in
           let else_v =
             fold_expr b c_op
               (List.map
                  (fun l ->
                    if c_masked_loads then
                      leaf_value_masked b elt ~counter:"i" ~lane:(lane + 4)
                        ~mask:nm l
                    else leaf_value b elt ~counter:"i" ~lane:(lane + 4) l)
                  (List.rev c_leaves))
               false
           in
           Builder.masked_store b ~base:"R" out else_v ~mask:nm
         end
       end
     done);
  let f = Builder.func b in
  ignore (Cse.run f);
  Verifier.verify_exn f;
  f

(* ---- generation ---------------------------------------------------- *)

let float_ops = [| Opcode.Fadd; Opcode.Fmul; Opcode.Fmin; Opcode.Fmax |]
let int_ops =
  [| Opcode.Add; Opcode.Mul; Opcode.And; Opcode.Or; Opcode.Xor;
     Opcode.Smin; Opcode.Smax |]

let pick st arr = arr.(Random.State.int st (Array.length arr))

let gen_perm st n =
  let arr = Array.init n Fun.id in
  for k = n - 1 downto 1 do
    let j = Random.State.int st (k + 1) in
    let t = arr.(k) in
    arr.(k) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let gen_leaf st =
  match Random.State.int st 7 with
  | 0 | 1 | 2 | 3 | 4 ->
    L_load
      ( Random.State.int st 3,
        Random.State.int st 4,
        if Random.State.int st 3 = 0 then 2 else 1 )
  | 5 -> L_const (0.5 +. Random.State.float st 3.5)
  | _ -> L_shared (0.5 +. Random.State.float st 3.5)

let gen_leaves st ~min ~max =
  let n = min + Random.State.int st (max - min + 1) in
  List.init n (fun _ -> gen_leaf st)

let all_cmps_arr = Array.of_list Opcode.all_cmps

(* The branching arm: every knob of the masked-IR surface — predicate,
   else/select/nested/masked-load mix — drawn independently. *)
let gen_cond st op =
  Cond
    {
      c_vl = (if Random.State.bool st then 2 else 4);
      c_cmp = pick st all_cmps_arr;
      c_guard =
        L_load
          ( Random.State.int st 3,
            Random.State.int st 4,
            if Random.State.int st 3 = 0 then 2 else 1 );
      c_thresh = 0.5 +. Random.State.float st 3.5;
      c_op = op;
      c_leaves = gen_leaves st ~min:2 ~max:3;
      c_has_else = Random.State.bool st;
      c_select = Random.State.bool st;
      c_masked_loads = Random.State.bool st;
      c_nested = Random.State.int st 4 = 0;
    }

let generate ?(cond_only = false) (st : Random.State.t) : prog =
  let elt = if Random.State.int st 4 = 0 then E_i64 else E_f64 in
  let op () =
    match elt with E_f64 -> pick st float_ops | E_i64 -> pick st int_ops
  in
  if cond_only then { elt; shape = gen_cond st (op ()) }
  else
  let shape =
    match Random.State.int st 4 with
    | 0 | 1 ->
      let vl = if Random.State.bool st then 2 else 4 in
      let leaves = gen_leaves st ~min:2 ~max:4 in
      let n = List.length leaves in
      Straight
        {
          vl;
          op = op ();
          leaves;
          perms = List.init vl (fun _ -> gen_perm st n);
          left_assoc = List.init vl (fun _ -> Random.State.bool st);
          decoy_store = Random.State.bool st;
        }
    | 2 ->
      Reduction
        {
          r_op = op ();
          r_leaves = gen_leaves st ~min:2 ~max:10;
          r_left = Random.State.bool st;
        }
    | _ ->
      Loop
        {
          l_op = op ();
          l_leaves = gen_leaves st ~min:2 ~max:4;
          l_left = Random.State.bool st;
          l_trip = 4 + (4 * Random.State.int st 3);
          l_symbolic = Random.State.int st 4 = 0;
        }
  in
  { elt; shape }
