(** Differential fuzzing of the whole pipeline.

    Property: for any generated program, any configuration, with or without
    injected faults, {!Lslp_core.Pipeline.run} never raises, leaves valid
    IR, and preserves behaviour against the scalar oracle.  Fully
    deterministic per root seed. *)

type failure = {
  case : int;
  desc : string;
  config_name : string;
  injected : string option;
  problem : string;
}

type stats = {
  cases : int;
  failures : failure list;
  vectorized : int;
  degraded : int;
  injected_runs : int;
}

val run :
  ?cases:int ->
  ?seed:int ->
  ?cond:bool ->
  ?config:Lslp_core.Config.t ->
  ?inject_spec:Lslp_robust.Inject.t ->
  unit ->
  stats
(** [cases] defaults to 500, [seed] to 42.  Without [config] each case
    draws from a pool of seven configurations (and a random [validate]
    flag).  [inject_spec] — typically parsed from [--inject] — is re-seeded
    per case; without it, a quarter of the cases arm a random low-rate
    injector anyway.  [~cond:true] (the [lslpc fuzz --config cond] arm)
    draws only branching masked-IR programs — guarded stores, selects,
    masked loads — instead of the classic shape mix. *)

val normalize_ids : string -> string
(** Alpha-rename every [%label] in printed IR by first appearance.
    Instruction labels embed a process-global id counter, so two pipeline
    runs over clones of one function are never byte-identical — after this
    renaming, textual equality means structural equality. *)

type case_outcome = {
  case : int;
  ok : bool;
  summary : string;
  c_vectorized : int;
  c_degraded : int;
  c_injected : bool;
}
(** One case's result under the indexed derivation.  [summary] is a pure
    function of (seed, case, config, inject spec) — the string the sharded
    and sequential runs compare verbatim. *)

val run_case_indexed :
  ?config:Lslp_core.Config.t ->
  ?cond:bool ->
  ?inject_spec:Lslp_robust.Inject.t ->
  seed:int ->
  case:int ->
  unit ->
  case_outcome
(** Run case [case] from a per-case PRNG seeded by [(seed, case)] rather
    than one stream threaded across cases.  Case [k] is a pure function of
    [(seed, k)] alone, so a Domain pool may run cases in any order and a
    sequential rerun reproduces every outcome verbatim — the determinism
    assertion behind [lslpc fuzz --jobs N].  Note the case streams differ
    from {!run}'s single-stream derivation, so aggregate counts differ
    between [run] and a sweep of [run_case_indexed]; each is internally
    deterministic. *)

val run_cache_diff : ?cases:int -> ?seed:int -> unit -> stats
(** Differential check of the memoized look-ahead scorer
    ([lslpc fuzz --config cache-diff]): each generated program runs through
    the same drawn configuration with {!Lslp_core.Config.with_score_cache}
    on and off; any difference in the printed IR, the remarks or the
    region counts is a failure.  Fault injection stays off — its RNG would
    make the two runs diverge for unrelated reasons. *)

val ok : stats -> bool

val pp_summary : stats Fmt.t
(** Stable across seeds/OCaml versions when there are no failures
    (["fuzz: N case(s): 0 failure(s)"]) — safe for cram tests. *)

val pp_detail : stats Fmt.t
(** RNG-dependent counters (vectorized/degraded/fault cases); the CLI
    prints this to stderr. *)

val json : stats -> Lslp_util.Json.t
(** The run's machine form: cases, failures (with program text and armed
    injector), aggregate counters and the [ok] verdict. *)

val to_json : stats -> string
(** {!json} rendered minified ([lslpc fuzz --json]). *)
