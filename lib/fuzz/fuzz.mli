(** Differential fuzzing of the whole pipeline.

    Property: for any generated program, any configuration, with or without
    injected faults, {!Lslp_core.Pipeline.run} never raises, leaves valid
    IR, and preserves behaviour against the scalar oracle.  Fully
    deterministic per root seed. *)

type failure = {
  case : int;
  desc : string;
  config_name : string;
  injected : string option;
  problem : string;
}

type stats = {
  cases : int;
  failures : failure list;
  vectorized : int;
  degraded : int;
  injected_runs : int;
}

val run :
  ?cases:int ->
  ?seed:int ->
  ?config:Lslp_core.Config.t ->
  ?inject_spec:Lslp_robust.Inject.t ->
  unit ->
  stats
(** [cases] defaults to 500, [seed] to 42.  Without [config] each case
    draws from a pool of seven configurations (and a random [validate]
    flag).  [inject_spec] — typically parsed from [--inject] — is re-seeded
    per case; without it, a quarter of the cases arm a random low-rate
    injector anyway. *)

val ok : stats -> bool

val pp_summary : stats Fmt.t
(** Stable across seeds/OCaml versions when there are no failures
    (["fuzz: N case(s): 0 failure(s)"]) — safe for cram tests. *)

val pp_detail : stats Fmt.t
(** RNG-dependent counters (vectorized/degraded/fault cases); the CLI
    prints this to stderr. *)
