(** Random well-typed kernel generation for the differential fuzzer.

    Four shapes — straight-line lanes of one commutative expression with
    hidden per-lane isomorphism, reduction chains, counted loops that
    vectorize through the unroller, and masked branching code (guarded
    stores, selects, masked loads) as produced by if-conversion.  Programs
    only load from A/B/C and store to R/S, and are verified well-formed
    before leaving the generator. *)

open Lslp_ir

type elt = E_f64 | E_i64

type leaf =
  | L_load of int * int * int  (** array id, zone, stride *)
  | L_const of float           (** distinct constant per lane *)
  | L_shared of float          (** same constant in every lane *)

type shape =
  | Straight of {
      vl : int;
      op : Opcode.binop;
      leaves : leaf list;
      perms : int list list;
      left_assoc : bool list;
      decoy_store : bool;
    }
  | Reduction of { r_op : Opcode.binop; r_leaves : leaf list; r_left : bool }
  | Loop of {
      l_op : Opcode.binop;
      l_leaves : leaf list;
      l_left : bool;
      l_trip : int;
      l_symbolic : bool;
    }
  | Cond of {
      c_vl : int;
      c_cmp : Opcode.cmp;
      c_guard : leaf;
      c_thresh : float;
      c_op : Opcode.binop;
      c_leaves : leaf list;
      c_has_else : bool;
      c_select : bool;
      c_masked_loads : bool;
      c_nested : bool;
    }

type prog = { elt : elt; shape : shape }

val generate : ?cond_only:bool -> Random.State.t -> prog
(** Draw one program description; deterministic in the state.
    [~cond_only:true] always draws the branching [Cond] shape (the default
    never does, keeping the classic pinned-seed streams bit-stable). *)

val build : prog -> Func.t
(** Construct (and verify) the scalar function.  Fresh instructions every
    call. *)

val describe : prog -> string
(** One-line printable form for failure reports. *)
