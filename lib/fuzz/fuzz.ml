(* The differential fuzzer.

   Property: for ANY generated program, ANY configuration, with or without
   injected faults, [Pipeline.run]

   - never lets an exception escape,
   - leaves a structurally valid function behind, and
   - preserves observable behaviour against the scalar oracle
     ([Lslp_interp.Oracle], relative tolerance 1e-6 for fast-math
     reassociation);
   - with validation on and no faults armed, produces zero diagnostics.

   Everything is derived from one root seed: program generation, the
   per-case configuration draw and the per-case injector are all seeded
   deterministically, so a failing case reproduces from [--seed] + its
   case number alone. *)

open Lslp_ir
open Lslp_core
module Inject = Lslp_robust.Inject

type failure = {
  case : int;
  desc : string;          (* the generated program, printable *)
  config_name : string;
  injected : string option;
  problem : string;
}

type stats = {
  cases : int;
  failures : failure list;
  vectorized : int;       (* regions vectorized across all cases *)
  degraded : int;         (* regions degraded across all cases *)
  injected_runs : int;    (* cases that ran with an armed injector *)
}

let config_pool =
  [| Config.slp_nr; Config.slp; Config.lslp; Config.lslp_la 0;
     Config.lslp_la 2; Config.lslp_multi 1; Config.lslp_multi 2 |]

let unroll_factor = 4

(* One case: generate, clone, unroll the candidate, run the pipeline under
   the drawn config, then check the three properties.  Returns the report's
   (vectorized, degraded) counts on success. *)
let run_case ~st ~cond ~inject_spec ~forced_config ~seed ~case :
    (int * int * bool, string * string * string option) result =
  let prog = Gen.generate ~cond_only:cond st in
  let desc = Gen.describe prog in
  let base_config =
    match forced_config with
    | Some c -> c
    | None -> config_pool.(Random.State.int st (Array.length config_pool))
  in
  let validate = Random.State.bool st in
  let case_seed = (seed * 1_000_003) + case in
  let inject =
    match inject_spec with
    | Some spec -> Some (Inject.reseed spec ~seed:case_seed)
    | None ->
      (* no spec given: arm a random low-rate injector on a quarter of the
         cases so the default fuzz run still exercises the rollback path *)
      if Random.State.int st 4 = 0 then
        Some
          (Inject.make
             ~rate:(0.25 +. Random.State.float st 0.75)
             ~seed:case_seed ())
      else None
  in
  let config =
    let c = Config.with_validate validate base_config in
    match inject with Some i -> Config.with_inject i c | None -> c
  in
  let fail problem =
    Error
      ( desc,
        problem,
        Option.map (fun i -> Fmt.str "%a" Inject.pp i) inject )
  in
  match Gen.build prog with
  | exception e ->
    Error (desc, Fmt.str "generator crashed: %s" (Printexc.to_string e), None)
  | reference -> (
    let candidate = Func.clone reference in
    ignore (Lslp_frontend.Unroll.run ~factor:unroll_factor candidate);
    match Pipeline.run ~config candidate with
    | exception e ->
      fail (Fmt.str "pipeline raised %s" (Printexc.to_string e))
    | report -> (
      match Verifier.check_func candidate with
      | e :: _ ->
        fail (Fmt.str "invalid IR: %s" (Verifier.error_to_string e))
      | [] ->
        let diag_errors =
          Lslp_check.Diagnostic.errors report.Pipeline.diagnostics
        in
        if inject = None && diag_errors <> [] then
          fail
            (Fmt.str "legality diagnostics: %s"
               (Lslp_check.Diagnostic.summary diag_errors))
        else if
          not
            (Lslp_interp.Oracle.equivalent ~tol:1e-6 ~reference ~candidate ())
        then fail "oracle mismatch vs scalar reference"
        else
          Ok
            ( report.Pipeline.vectorized_regions,
              report.Pipeline.degraded_regions,
              inject <> None )))

let run ?(cases = 500) ?(seed = 42) ?(cond = false) ?config ?inject_spec () :
    stats =
  let st = Random.State.make [| seed |] in
  let failures = ref [] in
  let vectorized = ref 0 in
  let degraded = ref 0 in
  let injected_runs = ref 0 in
  for case = 0 to cases - 1 do
    match
      run_case ~st ~cond ~inject_spec ~forced_config:config ~seed ~case
    with
    | Ok (v, d, injected) ->
      vectorized := !vectorized + v;
      degraded := !degraded + d;
      if injected then incr injected_runs
    | Error (desc, problem, injected) ->
      failures :=
        {
          case;
          desc;
          config_name = "(case config)";
          injected;
          problem;
        }
        :: !failures
  done;
  {
    cases;
    failures = List.rev !failures;
    vectorized = !vectorized;
    degraded = !degraded;
    injected_runs = !injected_runs;
  }

(* Moved to Lslp_util.Normalize so the service layer can share it without
   depending on the fuzzer; kept here as the historical name every test
   and driver already uses. *)
let normalize_ids = Lslp_util.Normalize.ids

(* One case under the *indexed* derivation: the whole case — program,
   config draw, validate flag, injector — comes from a per-case PRNG
   seeded by (root seed, case), not from one stream threaded across
   cases.  That makes case k a pure function of (seed, k) alone, so a
   Domain-pool can run cases in any order or interleaving and a
   sequential rerun must reproduce every outcome verbatim — the
   determinism assertion behind `lslpc fuzz --jobs N`. *)
type case_outcome = {
  case : int;
  ok : bool;
  summary : string;  (* stable per (seed, case): counts or the problem *)
  c_vectorized : int;
  c_degraded : int;
  c_injected : bool;
}

let run_case_indexed ?config ?(cond = false) ?inject_spec ~seed ~case () :
    case_outcome =
  let st = Random.State.make [| seed; case; 0x5eed |] in
  match
    run_case ~st ~cond ~inject_spec ~forced_config:config ~seed ~case
  with
  | Ok (v, d, injected) ->
    {
      case;
      ok = true;
      summary = Fmt.str "ok v=%d d=%d inj=%b" v d injected;
      c_vectorized = v;
      c_degraded = d;
      c_injected = injected;
    }
  | Error (desc, problem, injected) ->
    {
      case;
      ok = false;
      summary =
        Fmt.str "FAIL %s%s [%s]" problem
          (match injected with Some i -> Fmt.str " inj=%s" i | None -> "")
          desc;
      c_vectorized = 0;
      c_degraded = 0;
      c_injected = injected <> None;
    }

(* Differential check for the memoized look-ahead scorer: the same program
   through the same configuration with the score cache on and off must
   produce identical IR (modulo instruction-id renaming), identical
   remarks and identical region counts.  Fault injection stays off — an
   armed injector advances its own RNG per probe, so the two runs would
   diverge for reasons unrelated to the cache. *)
let run_cache_diff ?(cases = 200) ?(seed = 42) () : stats =
  let st = Random.State.make [| seed |] in
  let failures = ref [] in
  let vectorized = ref 0 in
  let degraded = ref 0 in
  for case = 0 to cases - 1 do
    let prog = Gen.generate st in
    let desc = Gen.describe prog in
    let base =
      config_pool.(Random.State.int st (Array.length config_pool))
    in
    let config = Config.with_remarks true base in
    let fail problem =
      failures :=
        { case; desc; config_name = base.Config.name; injected = None;
          problem }
        :: !failures
    in
    match Gen.build prog with
    | exception e ->
      fail (Fmt.str "generator crashed: %s" (Printexc.to_string e))
    | reference -> (
      let run_one cache =
        let candidate = Func.clone reference in
        ignore (Lslp_frontend.Unroll.run ~factor:unroll_factor candidate);
        let report =
          Pipeline.run ~config:(Config.with_score_cache cache config)
            candidate
        in
        (report, normalize_ids (Fmt.str "%a" Printer.pp_func candidate))
      in
      match (run_one true, run_one false) with
      | exception e ->
        fail (Fmt.str "pipeline raised %s" (Printexc.to_string e))
      | (cached, ir_cached), (uncached, ir_uncached) ->
        let remarks r =
          List.map
            (Fmt.str "%a" Lslp_check.Remark.pp)
            r.Pipeline.remarks
        in
        if ir_cached <> ir_uncached then
          fail "cached and uncached runs produced different IR"
        else if remarks cached <> remarks uncached then
          fail "cached and uncached runs produced different remarks"
        else if
          cached.Pipeline.vectorized_regions
          <> uncached.Pipeline.vectorized_regions
          || cached.Pipeline.degraded_regions
             <> uncached.Pipeline.degraded_regions
        then fail "cached and uncached runs transformed different regions"
        else begin
          vectorized := !vectorized + cached.Pipeline.vectorized_regions;
          degraded := !degraded + cached.Pipeline.degraded_regions
        end)
  done;
  {
    cases;
    failures = List.rev !failures;
    vectorized = !vectorized;
    degraded = !degraded;
    injected_runs = 0;
  }

let pp_failure ppf (f : failure) =
  Fmt.pf ppf "case %d: %s@,  program: %s%a" f.case f.problem f.desc
    (fun ppf -> function
      | Some i -> Fmt.pf ppf "@,  injected: %s" i
      | None -> ())
    f.injected

(* Stable summary on stdout (safe to pin in cram tests across OCaml
   versions); RNG-dependent counters go through {!pp_detail}, which the CLI
   sends to stderr. *)
let pp_summary ppf s =
  Fmt.pf ppf "@[<v>fuzz: %d case(s): %d failure(s)" s.cases
    (List.length s.failures);
  List.iter (fun f -> Fmt.pf ppf "@,%a" pp_failure f) s.failures;
  Fmt.pf ppf "@]"

let pp_detail ppf s =
  Fmt.pf ppf "%d region(s) vectorized, %d degraded, %d/%d case(s) with faults"
    s.vectorized s.degraded s.injected_runs s.cases

(* Machine form, shared emitter (same style as remarks and telemetry). *)
module Json = Lslp_util.Json

let failure_json (f : failure) =
  Json.Obj
    [
      ("case", Json.Int f.case);
      ("problem", Json.Str f.problem);
      ("program", Json.Str f.desc);
      ("config", Json.Str f.config_name);
      ( "injected",
        match f.injected with Some i -> Json.Str i | None -> Json.Null );
    ]

let json s =
  Json.Obj
    [
      ("cases", Json.Int s.cases);
      ("failures", Json.Arr (List.map failure_json s.failures));
      ("vectorized", Json.Int s.vectorized);
      ("degraded", Json.Int s.degraded);
      ("injected_runs", Json.Int s.injected_runs);
      ("ok", Json.Bool (s.failures = []));
    ]

let to_json s = Json.to_string (json s)

let ok s = s.failures = []
