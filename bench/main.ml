(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation section.

     dune exec bench/main.exe            -- all figures + wall-clock timing
     dune exec bench/main.exe -- quick   -- deterministic figures only
     dune exec bench/main.exe -- fig9    -- a single figure

   One Bechamel test per figure backs the wall-clock measurements: the
   deterministic figures are benchmarked as whole-table computations (their
   results do not depend on timing), and Figure 14 is derived from the
   per-configuration compile-time tests. *)

open Bechamel
open Toolkit

let bechamel_tests =
  let table_test name f = Test.make ~name (Staged.stage f) in
  Test.make_grouped ~name:"figures"
    ([
       table_test "table2-inventory" (fun () ->
           List.length Lslp_kernels.Catalog.table2);
       table_test "fig9-kernel-speedups" (fun () ->
           Harness.measure "453.boy-surface");
       table_test "fig10-static-costs" (fun () ->
           Harness.measure "motivation-multi");
       table_test "fig11-benchmark-costs" (fun () ->
           Harness.measure_benchmark
             (List.hd Lslp_kernels.Catalog.full_benchmarks)
             Lslp_core.Config.lslp);
       table_test "fig12-benchmark-speedups" (fun () ->
           Harness.measure_benchmark
             (List.nth Lslp_kernels.Catalog.full_benchmarks 4)
             Lslp_core.Config.slp);
       table_test "fig13-sensitivity" (fun () ->
           Harness.measure
             ~config_list:[ Lslp_core.Config.lslp_la 2 ]
             "motivation-multi");
     ]
    @ List.map
        (fun (name, job) -> table_test ("fig14-" ^ name) job)
        Figures.fig14_jobs)

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances bechamel_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Fmt.pr "@.=== bechamel: ns per run (monotonic clock) ===@.";
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      match Analyze.OLS.estimates (Hashtbl.find results name) with
      | Some [ ns ] -> Fmt.pr "%-32s %14.0f ns@." name ns
      | _ -> Fmt.pr "%-32s (no estimate)@." name)
    (List.sort String.compare names);
  results

let fig14_lookup results name =
  match Analyze.OLS.estimates (Hashtbl.find results ("figures/fig14-" ^ name)) with
  | Some [ ns ] -> ns
  | _ -> nan

let deterministic_figures () =
  Figures.table2 ();
  Figures.fig9 ();
  Figures.fig10 ();
  Figures.fig11 ();
  Figures.fig12 ();
  Figures.fig13 ();
  Figures.loops ()

let () =
  at_exit Harness.report_degraded;
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match arg with
  | "table2" -> Figures.table2 ()
  | "fig9" -> Figures.fig9 ()
  | "fig10" -> Figures.fig10 ()
  | "fig11" -> Figures.fig11 ()
  | "fig12" -> Figures.fig12 ()
  | "fig13" -> Figures.fig13 ()
  | "loops" -> Figures.loops ()
  | "fig14" ->
    let results = run_bechamel () in
    Figures.fig14 (Some (fig14_lookup results))
  | "ablation" -> Ablation.run_all ()
  | "quick" ->
    deterministic_figures ();
    Figures.fig14 None
  | "all" | _ ->
    deterministic_figures ();
    let results = run_bechamel () in
    Figures.fig14 (Some (fig14_lookup results))
