(* The bench regression gate: `make bench-check`.

   Runs every catalog kernel through two pinned configurations and records
   the deterministic pipeline counters — look-ahead score evaluations,
   SLP-graph nodes built, regions vectorized/degraded, instructions
   emitted.  These are exact integers, stable per (input, configuration),
   so the committed snapshot (bench_results/BENCH_baseline.json) is
   compared tolerance-free: any drift in any counter fails CI and forces a
   deliberate `--write` with the diff in the commit.

     baseline --check      compare against the committed snapshot (default)
     baseline --write      regenerate the snapshot after an intended change
     baseline --selftest   prove the gate trips: perturb one counter of the
                           committed snapshot in memory and require the
                           comparison to FAIL (exits 0 iff drift detected)

   Wall-clock never enters the snapshot — this gate catches algorithmic
   regressions (a cache that stopped hitting, a region that stopped
   vectorizing), not machine noise. *)

open Lslp_core
module Json = Lslp_util.Json
module Probe = Lslp_telemetry.Probe
module Catalog = Lslp_kernels.Catalog

let baseline_path = "bench_results/BENCH_baseline.json"
let unroll_factor = 4
let configs = [ Config.slp; Config.lslp ]

(* The counters under the gate, in display order.  Adding a field here
   (plus a --write) widens the gate; the check also fails on missing or
   extra fields, so the snapshot and this list cannot drift apart. *)
let tracked =
  [
    ("score_evals", fun (c : Probe.counters) -> c.Probe.score_evals);
    ("graph_nodes", fun c -> c.Probe.graph_nodes);
    ("regions_vectorized", fun c -> c.Probe.regions_vectorized);
    ("regions_degraded", fun c -> c.Probe.regions_degraded);
    ("instrs_emitted", fun c -> c.Probe.instrs_emitted);
  ]

let measure (k : Catalog.kernel) config =
  let f = Catalog.compile k in
  ignore (Lslp_frontend.Unroll.run ~factor:unroll_factor f);
  let report = Pipeline.run ~config f in
  Lslp_telemetry.Report.total_counters report.Pipeline.telemetry

let entry_json (k : Catalog.kernel) =
  ( k.Catalog.key,
    Json.Obj
      (List.map
         (fun config ->
           let c = measure k config in
           ( config.Config.name,
             Json.Obj
               (List.map (fun (name, get) -> (name, Json.Int (get c))) tracked)
           ))
         configs) )

let current () =
  Json.Obj
    [
      ("unroll", Json.Int unroll_factor);
      ("kernels", Json.Obj (List.map entry_json Catalog.all));
    ]

(* Flatten to (path, int) rows so the diff names exactly what moved. *)
let rec flatten prefix j acc =
  match j with
  | Json.Obj fields ->
    List.fold_left
      (fun acc (name, v) ->
        let p = if prefix = "" then name else prefix ^ "." ^ name in
        flatten p v acc)
      acc fields
  | Json.Int n -> (prefix, n) :: acc
  | _ -> acc

let diff ~expected ~actual =
  let exp = List.rev (flatten "" expected []) in
  let act = List.rev (flatten "" actual []) in
  let act_tbl = Hashtbl.create 64 in
  List.iter (fun (p, n) -> Hashtbl.replace act_tbl p n) act;
  let exp_tbl = Hashtbl.create 64 in
  List.iter (fun (p, n) -> Hashtbl.replace exp_tbl p n) exp;
  let drifted =
    List.filter_map
      (fun (p, want) ->
        match Hashtbl.find_opt act_tbl p with
        | Some got when got <> want -> Some (p, Some want, Some got)
        | Some _ -> None
        | None -> Some (p, Some want, None))
      exp
  in
  let extra =
    List.filter_map
      (fun (p, got) ->
        if Hashtbl.mem exp_tbl p then None else Some (p, None, Some got))
      act
  in
  drifted @ extra

let pp_drift (path, want, got) =
  let show = function Some n -> string_of_int n | None -> "(absent)" in
  Fmt.epr "  %-55s baseline %s, now %s@." path (show want) (show got)

let load_baseline () =
  let ic = open_in_bin baseline_path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Fmt.failwith "%s: invalid JSON: %s" baseline_path e

let write () =
  let oc = open_out_bin baseline_path in
  output_string oc (Json.to_string (current ()));
  output_string oc "\n";
  close_out oc;
  Fmt.pr "bench-baseline: wrote %s@." baseline_path

let check ~expected ~actual ~what =
  match diff ~expected ~actual with
  | [] ->
    Fmt.pr "bench-check: OK (%s, all counters match %s)@." what baseline_path;
    true
  | drifts ->
    Fmt.epr "bench-check: FAIL (%s): %d counter(s) drifted@." what
      (List.length drifts);
    List.iter pp_drift drifts;
    Fmt.epr "  (intended change?  rerun with --write and commit the diff)@.";
    false

(* Perturb the first tracked leaf of the committed snapshot and demand the
   comparison notices: a gate that cannot fail is no gate. *)
let selftest () =
  let expected = load_baseline () in
  let perturbed =
    let rec bump = function
      | Json.Int n -> (Json.Int (n + 1), true)
      | Json.Obj ((name, v) :: rest) ->
        let v', hit = bump v in
        if hit then (Json.Obj ((name, v') :: rest), true)
        else
          let rest', hit' = bump (Json.Obj rest) in
          (match rest' with
           | Json.Obj rest' -> (Json.Obj ((name, v) :: rest'), hit')
           | _ -> assert false)
      | j -> (j, false)
    in
    fst (bump expected)
  in
  if diff ~expected ~actual:perturbed = [] then begin
    Fmt.epr "bench-selftest: FAIL: perturbed snapshot passed the check@.";
    exit 1
  end;
  (* and the unperturbed snapshot must still match a live run *)
  if not (check ~expected ~actual:(current ()) ~what:"selftest control") then
    exit 1;
  Fmt.pr "bench-selftest: OK (perturbed counter detected, control clean)@."

let () =
  match Sys.argv with
  | [| _ |] | [| _; "--check" |] ->
    if not (check ~expected:(load_baseline ()) ~actual:(current ()) ~what:"live")
    then exit 1
  | [| _; "--write" |] -> write ()
  | [| _; "--selftest" |] -> selftest ()
  | _ ->
    Fmt.epr "usage: baseline [--check | --write | --selftest]@.";
    exit 2
