(* Batch-service throughput: `make bench-serve`.

   Pushes the full catalog through the Domain-pool compile service
   [reps] times and measures ns per batch in three shapes:

   - sequential, cache off: the 1-domain floor (same work as a
     bench-speed catalog pass, plus service plumbing);
   - pooled, cache off: the same workload over N domains;
   - cached: one cold batch that fills the verified result cache, then
     [reps] warm batches that must hit it — every hit re-verified by the
     legality validator (the bench hard-fails if hits <> verified or
     anything was evicted, so the warm number is never bought by
     skipping the safety check).

   Results are *appended* to bench_results/BENCH_serve.json as a
   dated-by-commit trajectory, including the warm-vs-cold speedup.
   Wall-clock is machine noise, so the run is report-only by default;
   [--min-warm-speedup X] turns the speedup into a gate.

     serve [--reps N] [--domains D] [--note S] [--out F] [--no-write]
           [--min-warm-speedup X]                                        *)

module Service = Lslp_service.Service
module Pool = Lslp_service.Pool
module Stats = Lslp_telemetry.Pool_stats
module Json = Lslp_util.Json
module Catalog = Lslp_kernels.Catalog
module Config = Lslp_core.Config

let out_path = ref "bench_results/BENCH_serve.json"
let reps = ref 1000
let domains = ref 4
let note = ref ""
let with_write = ref true
let min_warm_speedup = ref None

let jobs =
  Array.of_list
    (List.map
       (fun (k : Catalog.kernel) ->
         { Service.label = k.key; source = k.source; unroll = 4 })
       Catalog.all)

let nkernels = Array.length jobs

let die fmt = Fmt.kstr (fun s -> Fmt.epr "bench-serve: %s@." s; exit 1) fmt

let service ~domains ~cache =
  let pool = { Pool.default_config with domains; queue_cap = 64 } in
  Service.create ~cache ~pool Config.lslp

(* Submit [rounds] copies of the catalog as ONE batch (catalog x reps,
   the workload the gate names) so the pool's domain spawns amortize
   across the whole run, and return ns per catalog pass.  Any typed
   failure is a bench bug: no faults are armed here. *)
let timed_pass ?(base = 0) svc rounds =
  let batch = Array.concat (List.init rounds (fun _ -> jobs)) in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (function
      | Pool.Done _ -> ()
      | Pool.Degraded_to_failure { failure; _ } ->
        die "job degraded without faults: %a" Pool.pp_failure failure)
    (Service.batch ~index_base:(base * nkernels) svc batch);
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int rounds

let report name ns =
  Fmt.pr "%-28s %12.0f ns/batch  %8.1f batches/s@." name ns (1e9 /. ns);
  ns

(* Per-job latency percentiles in virtual pool ticks, read off the
   service registry's lslp_job_latency_ticks histogram.  Ticks, unlike
   the ns/batch numbers above, are machine-independent: the same batch
   on the same domain count always lands the same distribution. *)
let latency_percentiles svc =
  match
    Lslp_obs.Registry.histogram_view (Service.registry svc)
      "lslp_job_latency_ticks"
  with
  | None -> (0, 0, 0)
  | Some h ->
    Lslp_obs.Registry.(percentile h 0.5, percentile h 0.95, percentile h 0.99)

let latency_json (p50, p95, p99) =
  Json.Obj
    [ ("p50", Json.Int p50); ("p95", Json.Int p95); ("p99", Json.Int p99) ]

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then None else Some line
  with _ -> None

let load_runs () =
  if not (Sys.file_exists !out_path) then []
  else
    let ic = open_in_bin !out_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.of_string s with
    | Ok (Json.Obj fields) -> (
      match List.assoc_opt "runs" fields with
      | Some (Json.Arr runs) -> runs
      | _ -> [])
    | Ok _ | Error _ -> []

let () =
  let rec parse = function
    | [] -> ()
    | "--reps" :: v :: rest ->
      reps := int_of_string v;
      parse rest
    | "--domains" :: v :: rest ->
      domains := int_of_string v;
      parse rest
    | "--note" :: v :: rest ->
      note := v;
      parse rest
    | "--out" :: v :: rest ->
      out_path := v;
      parse rest
    | "--no-write" :: rest ->
      with_write := false;
      parse rest
    | "--min-warm-speedup" :: v :: rest ->
      min_warm_speedup := Some (float_of_string v);
      parse rest
    | arg :: _ ->
      Fmt.epr
        "usage: serve [--reps N] [--domains D] [--note S] [--out F] \
         [--no-write] [--min-warm-speedup X] (got %s)@."
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "bench-serve: catalog (%d kernels) x %d, %d domain(s), %d core(s)@."
    nkernels !reps !domains cores;
  if !domains > cores then
    Fmt.pr
      "note: more domains than cores; the pool-vs-sequential ratio will \
       reflect GC synchronization, not parallel speedup@.";
  (* sequential floor and pooled run, both compiling every batch *)
  let seq_ns = report "sequential, cache off" (timed_pass (service ~domains:1 ~cache:false) !reps) in
  let pool_svc = service ~domains:!domains ~cache:false in
  let pool_ns =
    report (Fmt.str "%d domains, cache off" !domains) (timed_pass pool_svc !reps)
  in
  (* cache: one cold batch fills it, then every job must hit *)
  let svc = service ~domains:1 ~cache:true in
  let cold_ns = report "cache cold (fill)" (timed_pass svc 1) in
  let warm_ns = report "cache warm" (timed_pass ~base:1 svc !reps) in
  let s = Service.stats svc in
  let expected_hits = !reps * nkernels in
  if s.Stats.cache_hits <> expected_hits then
    die "expected %d warm hits, saw %d" expected_hits s.Stats.cache_hits;
  if s.Stats.cache_verified <> s.Stats.cache_hits then
    die "hits served without legality re-verification: %d hits, %d verified"
      s.Stats.cache_hits s.Stats.cache_verified;
  if s.Stats.cache_evicted <> 0 then
    die "unexpected evictions in a clean run: %d" s.Stats.cache_evicted;
  let warm_speedup = seq_ns /. warm_ns in
  let pool_speedup = seq_ns /. pool_ns in
  let pool_lat = latency_percentiles pool_svc in
  let cached_lat = latency_percentiles svc in
  let pp_lat ppf (p50, p95, p99) = Fmt.pf ppf "%d/%d/%d" p50 p95 p99 in
  Fmt.pr "every warm hit legality-verified: %d/%d@." s.Stats.cache_verified
    s.Stats.cache_hits;
  Fmt.pr "job latency ticks p50/p95/p99: pooled %a, cached %a@." pp_lat
    pool_lat pp_lat cached_lat;
  Fmt.pr "warm cache vs cold compile: %.2fx;  %d domains vs 1: %.2fx@."
    warm_speedup !domains pool_speedup;
  (match !min_warm_speedup with
   | Some floor when warm_speedup < floor ->
     die "warm speedup %.2fx below the %.2fx gate" warm_speedup floor
   | _ -> ());
  if !with_write then begin
    let prior = load_runs () in
    let run =
      Json.Obj
        ([
           ("note", Json.Str !note);
           ("kernels", Json.Int nkernels);
           ("reps", Json.Int !reps);
           ("domains", Json.Int !domains);
           ("cores", Json.Int cores);
           ( "ns_per_batch",
             Json.Obj
               [
                 ("sequential_nocache", Json.Float seq_ns);
                 ("pool_nocache", Json.Float pool_ns);
                 ("cache_cold", Json.Float cold_ns);
                 ("cache_warm", Json.Float warm_ns);
               ] );
           ("warm_speedup", Json.Float warm_speedup);
           ("pool_speedup", Json.Float pool_speedup);
           ( "latency_ticks",
             Json.Obj
               [
                 ("pool", latency_json pool_lat);
                 ("cached", latency_json cached_lat);
               ] );
           ("cache_hits", Json.Int s.Stats.cache_hits);
           ("cache_verified", Json.Int s.Stats.cache_verified);
         ]
        @
        match git_commit () with
        | Some c -> [ ("commit", Json.Str c) ]
        | None -> [])
    in
    let doc =
      Json.Obj
        [
          ("schema", Json.Str "lslp-bench-serve/1");
          ("runs", Json.Arr (prior @ [ run ]));
        ]
    in
    let oc = open_out_bin !out_path in
    output_string oc (Json.to_string doc);
    output_string oc "\n";
    close_out oc;
    Fmt.pr "bench-serve: appended run to %s@." !out_path
  end
