(* Compile-throughput harness: `make bench-speed`.

   Measures how fast the compiler itself runs — ns per catalog pass, where
   one pass parses, lowers and (for vectorizing configs) runs the full
   pipeline over every catalog kernel.  Two timing modes back each number:

   - one-shot: [reps] whole passes under one monotonic-clock reading (the
     deterministic, CI-friendly mode; catalog x1000 by default);
   - bechamel: OLS estimate over self-tuned batch sizes (the statistically
     careful mode for local before/after comparisons).

   Results are *appended* to bench_results/BENCH_speed.json as a dated-by-
   commit trajectory: every entry names the workload shape, so speedups
   across entries are honest only when kernels/reps match.  There is no
   tolerance gate (wall-clock is machine noise); CI runs this report-only.

     speed [--reps N] [--note S] [--out F] [--no-bechamel] [--no-write]   *)

open Bechamel
open Toolkit
open Lslp_core
module Json = Lslp_util.Json
module Catalog = Lslp_kernels.Catalog

let out_path = ref "bench_results/BENCH_speed.json"
let reps = ref 1000
let note = ref ""
let with_bechamel = ref true
let with_write = ref true

(* One catalog pass: parse + lower every kernel and, when a config is
   given, run the pipeline over it.  The instruction count is returned so
   the work cannot be elided. *)
let catalog_pass config_opt () =
  let acc = ref 0 in
  List.iter
    (fun (k : Catalog.kernel) ->
      let f = Catalog.compile k in
      (match config_opt with
       | Some config -> ignore (Pipeline.run ~config f)
       | None -> ());
      acc := !acc + Lslp_ir.Func.num_instrs f)
    Catalog.all;
  !acc

let configs =
  [ ("O3", None); ("SLP", Some Config.slp); ("LSLP", Some Config.lslp) ]

let oneshot name pass =
  let n = !reps in
  let t0 = Unix.gettimeofday () in
  let live = ref 0 in
  for _ = 1 to n do
    live := pass ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let ns = dt *. 1e9 /. float_of_int n in
  Fmt.pr "%-6s one-shot  %12.0f ns/pass  %8.1f passes/s  (%d reps, %d live instrs)@."
    name ns (float_of_int n /. dt) n !live;
  ns

let bechamel_ns () =
  let tests =
    Test.make_grouped ~name:"speed"
      (List.map
         (fun (name, config_opt) ->
           Test.make ~name (Staged.stage (catalog_pass config_opt)))
         configs)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  List.filter_map
    (fun (name, _) ->
      match Analyze.OLS.estimates (Hashtbl.find results ("speed/" ^ name)) with
      | Some [ ns ] ->
        Fmt.pr "%-6s bechamel  %12.0f ns/pass@." name ns;
        Some (name, ns)
      | _ -> None)
    configs

let git_commit () =
  (* best-effort provenance; the harness must work outside a checkout too *)
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then None else Some line
  with _ -> None

let load_runs () =
  if not (Sys.file_exists !out_path) then []
  else
    let ic = open_in_bin !out_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.of_string s with
    | Ok (Json.Obj fields) -> (
      match List.assoc_opt "runs" fields with
      | Some (Json.Arr runs) -> runs
      | _ -> [])
    | Ok _ | Error _ -> []

let speedup_vs_first runs (current : (string * float) list) =
  (* LSLP one-shot ns of the oldest recorded run with the same workload *)
  match runs with
  | Json.Obj fields :: _ -> (
    match
      ( List.assoc_opt "reps" fields,
        List.assoc_opt "oneshot_ns_per_pass" fields )
    with
    | Some (Json.Int r), Some (Json.Obj ns) when r = !reps -> (
      match (List.assoc_opt "LSLP" ns, List.assoc_opt "LSLP" current) with
      | Some (Json.Float first), Some now when now > 0. ->
        Some (first /. now)
      | _ -> None)
    | _ -> None)
  | _ -> None

let () =
  let rec parse = function
    | [] -> ()
    | "--reps" :: v :: rest ->
      reps := int_of_string v;
      parse rest
    | "--note" :: v :: rest ->
      note := v;
      parse rest
    | "--out" :: v :: rest ->
      out_path := v;
      parse rest
    | "--no-bechamel" :: rest ->
      with_bechamel := false;
      parse rest
    | "--no-write" :: rest ->
      with_write := false;
      parse rest
    | arg :: _ ->
      Fmt.epr
        "usage: speed [--reps N] [--note S] [--out F] [--no-bechamel] \
         [--no-write] (got %s)@."
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Fmt.pr "bench-speed: catalog (%d kernels) x %d@."
    (List.length Catalog.all) !reps;
  let oneshot_ns =
    List.map (fun (name, c) -> (name, oneshot name (catalog_pass c))) configs
  in
  let bech_ns = if !with_bechamel then bechamel_ns () else [] in
  let prior = load_runs () in
  (match speedup_vs_first prior oneshot_ns with
   | Some s ->
     Fmt.pr "LSLP compile-throughput vs first recorded run: %.2fx@." s
   | None -> ());
  if !with_write then begin
    let ns_obj pairs =
      Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) pairs)
    in
    let run =
      Json.Obj
        ([
           ("note", Json.Str !note);
           ("kernels", Json.Int (List.length Catalog.all));
           ("reps", Json.Int !reps);
           ("oneshot_ns_per_pass", ns_obj oneshot_ns);
         ]
        @ (match bech_ns with
           | [] -> []
           | ns -> [ ("bechamel_ns_per_pass", ns_obj ns) ])
        @
        match git_commit () with
        | Some c -> [ ("commit", Json.Str c) ]
        | None -> [])
    in
    let doc =
      Json.Obj
        [
          ("schema", Json.Str "lslp-bench-speed/1");
          ("runs", Json.Arr (prior @ [ run ]));
        ]
    in
    let oc = open_out_bin !out_path in
    output_string oc (Json.to_string doc);
    output_string oc "\n";
    close_out oc;
    Fmt.pr "bench-speed: appended run to %s@." !out_path
  end
