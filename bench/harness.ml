(* Shared measurement machinery for the figure benchmarks.

   All "execution" numbers are simulated cycles from the interpreter charged
   with the machine cost table (OCaml cannot execute AVX2; see DESIGN.md §2).
   "O3" is the scalar code: the baseline every speedup is normalized to. *)

open Lslp_core
open Lslp_kernels

type measurement = {
  key : string;
  config_name : string;
  accepted_cost : int;     (* Σ cost of regions actually vectorized (TTI) *)
  scalar_cycles : int;     (* simulated cycles of the O3 (scalar) code *)
  vector_cycles : int;     (* simulated cycles after the pass *)
  degraded : int;          (* regions the fail-soft pipeline rolled back *)
}

(* Fail-soft accounting: a degraded region silently measures as scalar, so
   any benchmark number taken while one exists is suspect.  Tally them per
   configuration and report at the end of the run. *)
let degraded_tally : (string, int) Hashtbl.t = Hashtbl.create 7

let note_degraded config_name n =
  if n > 0 then
    Hashtbl.replace degraded_tally config_name
      (n + Option.value ~default:0 (Hashtbl.find_opt degraded_tally config_name))

let report_degraded () =
  if Hashtbl.length degraded_tally > 0 then begin
    Fmt.epr "@.=== fail-soft: degraded regions during this run ===@.";
    Hashtbl.iter
      (fun config n -> Fmt.epr "%-12s %d region(s) rolled back to scalar@." config n)
      degraded_tally
  end

let speedup m = float_of_int m.scalar_cycles /. float_of_int (max 1 m.vector_cycles)

let configs_main = [ Config.slp_nr; Config.slp; Config.lslp ]

(* Region formation (loop unrolling by the vector factor) runs here, after
   Catalog.compile: the catalog stays pure, and the un-unrolled original is
   kept as the oracle reference so the measurement proves unroll +
   vectorization together. *)
let measure ?(config_list = configs_main) ?(unroll = 4) key =
  let reference = Catalog.compile_key key in
  let f = Catalog.compile_key key in
  ignore (Lslp_frontend.Unroll.run ~factor:unroll f);
  List.map
    (fun config ->
      (* legality validation is cheap relative to simulation, so every
         measured transformation is also proof-checked *)
      let config = Config.with_validate true config in
      let report, g = Pipeline.run_cloned ~config f in
      (match report.Pipeline.diagnostics with
       | [] -> ()
       | diags ->
         List.iter
           (fun d -> Fmt.epr "%a@." Lslp_check.Diagnostic.pp d)
           diags;
         Fmt.failwith "%s under %s failed legality validation" key
           config.Config.name);
      let o =
        Lslp_interp.Oracle.compare_runs ~reference ~candidate:g ()
      in
      assert (o.Lslp_interp.Oracle.mismatches = []);
      note_degraded config.Config.name report.Pipeline.degraded_regions;
      {
        key;
        config_name = config.Config.name;
        accepted_cost = report.Pipeline.total_cost;
        scalar_cycles = o.Lslp_interp.Oracle.reference_cycles;
        vector_cycles = o.Lslp_interp.Oracle.candidate_cycles;
        degraded = report.Pipeline.degraded_regions;
      })
    config_list

let geomean = function
  | [] -> 1.0
  | xs ->
    exp (List.fold_left (fun a x -> a +. log x) 0.0 xs
         /. float_of_int (List.length xs))

let spec_kernels =
  List.filter
    (fun (k : Catalog.kernel) ->
      not (String.length k.key >= 10 && String.sub k.key 0 10 = "motivation"))
    Catalog.table2

let motivation_kernels =
  List.filter
    (fun (k : Catalog.kernel) ->
      String.length k.key >= 10 && String.sub k.key 0 10 = "motivation")
    Catalog.table2

(* Whole-benchmark aggregation (Figures 11-12): each SPEC benchmark is its
   vectorizable kernels plus [filler_copies] copies of the scalar filler. *)
type benchmark_measurement = {
  bench_name : string;
  config_name' : string;
  total_accepted_cost : int;
  total_scalar_cycles : int;
  total_vector_cycles : int;
}

let measure_benchmark (b : Catalog.benchmark) config =
  let kernel_measurements =
    List.map
      (fun key -> List.hd (measure ~config_list:[ config ] key))
      b.kernel_keys
  in
  let filler = List.hd (measure ~config_list:[ config ] "filler-chain") in
  let common = List.hd (measure ~config_list:[ config ] "common-region") in
  let sum f = List.fold_left (fun a m -> a + f m) 0 kernel_measurements in
  {
    bench_name = b.bname;
    config_name' = config.Config.name;
    total_accepted_cost =
      sum (fun m -> m.accepted_cost) + (b.common_copies * common.accepted_cost);
    total_scalar_cycles =
      sum (fun m -> m.scalar_cycles)
      + (b.filler_copies * filler.scalar_cycles)
      + (b.common_copies * common.scalar_cycles);
    total_vector_cycles =
      sum (fun m -> m.vector_cycles)
      + (b.filler_copies * filler.scalar_cycles)
      + (b.common_copies * common.vector_cycles);
  }

let bench_speedup m =
  float_of_int m.total_scalar_cycles /. float_of_int (max 1 m.total_vector_cycles)

(* Compilation work for Figure 14: frontend + (optionally) the pass, over a
   translation unit shaped like real code — the Table-2 kernels plus many
   functions that give the vectorizer nothing to do (most of a real program
   is scalar).  The result is kept live so the work cannot be elided. *)
let fig14_filler_functions = 40

let compile_all_kernels ?(on_report = fun (_ : Pipeline.report) -> ())
    config_opt =
  let acc = ref 0 in
  let consume (f : Lslp_ir.Func.t) =
    (match config_opt with
     | Some config -> on_report (Pipeline.run ~config f)
     | None -> ());
    acc := !acc + Lslp_ir.Func.num_instrs f
  in
  List.iter (fun k -> consume (Catalog.compile k)) Catalog.table2;
  for _ = 1 to fig14_filler_functions do
    consume (Catalog.compile_key "filler-chain")
  done;
  !acc

(* One timed pass over the same translation unit, summing the telemetry:
   the score_evals (and fallback compile-time) column of Figure 14 comes
   from the pipeline's own counters, not a separate model. *)
type fig14_stats = {
  live_instrs : int;
  score_evals : int;
  wall_seconds : float;
}

let compile_all_kernels_stats config_opt =
  let evals = ref 0 in
  let t0 = Unix.gettimeofday () in
  let live =
    compile_all_kernels
      ~on_report:(fun report ->
        let c =
          Lslp_telemetry.Report.total_counters
            report.Pipeline.telemetry
        in
        evals := !evals + c.Lslp_telemetry.Probe.score_evals)
      config_opt
  in
  {
    live_instrs = live;
    score_evals = !evals;
    wall_seconds = Unix.gettimeofday () -. t0;
  }
