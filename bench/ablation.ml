(* Ablation benches for the design decisions DESIGN.md calls out:
   look-ahead score combination (sum vs max), the profitability threshold,
   the target vector width, and the reduction-seed extension. *)

open Lslp_core
open Lslp_kernels
open Harness

let header title =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "============================================================@."

let gmean_speedup config =
  geomean
    (List.map
       (fun (k : Catalog.kernel) ->
         let m = List.hd (measure ~config_list:[ config ] k.key) in
         speedup m)
       Catalog.table2)

let total_costs config =
  List.fold_left
    (fun acc (k : Catalog.kernel) ->
      let m = List.hd (measure ~config_list:[ config ] k.key) in
      acc + m.accepted_cost)
    0 Catalog.table2

(* Footnote 4: sum of pair scores vs maximum. *)
let score_combine () =
  header "Ablation: look-ahead score combination (paper footnote 4)";
  let sum = Config.lslp in
  let max_ = { (Config.with_score_combine Config.Score_max Config.lslp)
               with Config.name = "LSLP-max" } in
  Fmt.pr "%-12s %12s %12s@." "combine" "Σ cost" "GMean speedup";
  List.iter
    (fun config ->
      Fmt.pr "%-12s %+12d %11.2fx@." config.Config.name (total_costs config)
        (gmean_speedup config))
    [ sum; max_ ]

(* The "usually 0" threshold of §2.2 step 5. *)
let threshold_sweep () =
  header "Ablation: profitability threshold (paper: \"usually 0\")";
  Fmt.pr "%-10s %10s %10s %14s@." "threshold" "regions" "Σ cost"
    "GMean speedup";
  List.iter
    (fun t ->
      let config =
        { (Config.with_threshold t Config.lslp)
          with Config.name = Fmt.str "LSLP(t=%+d)" t }
      in
      let regions =
        List.fold_left
          (fun acc (k : Catalog.kernel) ->
            let f = Catalog.compile k in
            let report, _ = Pipeline.run_cloned ~config f in
            acc + report.Pipeline.vectorized_regions)
          0 Catalog.table2
      in
      Fmt.pr "%+10d %10d %+10d %13.2fx@." t regions (total_costs config)
        (gmean_speedup config))
    [ -4; -2; 0; 2; 4 ]

(* 128-bit (SSE-like) vs 256-bit (AVX2) targets. *)
let vector_width () =
  header "Ablation: target vector width";
  Fmt.pr "%-10s %12s %14s@." "width" "Σ cost" "GMean speedup";
  List.iter
    (fun (name, model) ->
      let config =
        { (Config.with_model model Config.lslp) with Config.name = name }
      in
      Fmt.pr "%-10s %+12d %13.2fx@." name (total_costs config)
        (gmean_speedup config))
    [ ("128-bit", Lslp_costmodel.Model.sse_like);
      ("256-bit", Lslp_costmodel.Model.skylake_avx2) ]

(* 32-bit lanes: the same fused multiply-add kernel in f64 (4 lanes) and
   f32 (8 lanes) — the wider type doubles the work per vector op. *)
let build_fma ~(elt : Lslp_ir.Types.scalar) ~lanes =
  let open Lslp_ir in
  let b =
    Builder.create ~name:"fma"
      ~args:
        [ ("R", Instr.Array_arg elt); ("A", Instr.Array_arg elt);
          ("B", Instr.Array_arg elt); ("C", Instr.Array_arg elt);
          ("i", Instr.Int_arg) ]
  in
  for k = 0 to lanes - 1 do
    let idx = Affine.add_const k (Affine.sym ~coeff:lanes "i") in
    let m =
      Builder.binop b Opcode.Fmul
        (Builder.load b ~base:"A" idx)
        (Builder.load b ~base:"B" idx)
    in
    let s = Builder.binop b Opcode.Fadd m (Builder.load b ~base:"C" idx) in
    Builder.store b ~base:"R" idx s
  done;
  Builder.func b

let lane_width () =
  header "Ablation: element width (f64 = 4 lanes vs f32 = 8 lanes @ 256 bit)";
  Fmt.pr "%-8s %8s %12s %14s@." "element" "lanes" "cost" "speedup";
  List.iter
    (fun ((elt : Lslp_ir.Types.scalar), lanes) ->
      let reference = build_fma ~elt ~lanes in
      let f = Lslp_ir.Func.clone reference in
      let report = Pipeline.run ~config:Config.lslp f in
      let o = Lslp_interp.Oracle.compare_runs ~reference ~candidate:f () in
      assert (o.Lslp_interp.Oracle.mismatches = []);
      Fmt.pr "%-8s %8d %+12d %13.2fx@."
        (Fmt.str "%a" Lslp_ir.Types.pp_scalar elt)
        lanes report.Pipeline.total_cost
        (float_of_int o.Lslp_interp.Oracle.reference_cycles
        /. float_of_int o.Lslp_interp.Oracle.candidate_cycles))
    [ (Lslp_ir.Types.F64, 4); (Lslp_ir.Types.F32, 8) ]

(* The reduction-seed extension on vs off. *)
let reductions () =
  header "Ablation: reduction-tree seeds (extension)";
  Fmt.pr "%-14s %12s %14s@." "reductions" "Σ cost" "GMean speedup";
  List.iter
    (fun (name, enabled) ->
      let config =
        { (Config.with_reductions enabled Config.lslp) with Config.name = name }
      in
      Fmt.pr "%-14s %+12d %13.2fx@." name (total_costs config)
        (gmean_speedup config))
    [ ("disabled", false); ("enabled", true) ]

let run_all () =
  score_combine ();
  threshold_sweep ();
  vector_width ();
  lane_width ();
  reductions ()
