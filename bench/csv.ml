(* CSV export for the figure data, so downstream users can plot the
   reproduction against the paper's figures.  Files land in
   ./bench_results/. *)

let dir = "bench_results"

let write name header rows =
  (try Unix.mkdir dir 0o755 with
   | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
   | Unix.Unix_error _ -> ());
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  output_string oc (String.concat "," header);
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (String.concat "," row);
      output_char oc '\n')
    rows;
  close_out oc;
  Fmt.pr "(wrote %s)@." path
