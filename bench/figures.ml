(* The per-figure reproductions.  Each [figN] prints the same rows/series
   the paper's figure reports (see EXPERIMENTS.md for the side-by-side). *)

open Lslp_core
open Lslp_kernels
open Harness

let header title =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "============================================================@."

(* Table 2: the kernel inventory. *)
let table2 () =
  header "Table 2: kernels used for evaluation";
  Fmt.pr "%-26s %-14s %s@." "Kernel" "Benchmark" "Filename:Line";
  List.iter
    (fun (k : Catalog.kernel) ->
      Fmt.pr "%-26s %-14s %s@." k.key k.benchmark k.origin)
    Catalog.table2

(* Figure 9: execution speedup over O3 (simulated cycles, machine table). *)
let fig9 () =
  header "Figure 9: speedup of SLP-NR, SLP and LSLP over O3";
  Fmt.pr "%-26s %8s %8s %8s@." "kernel" "SLP-NR" "SLP" "LSLP";
  let csv_rows = ref [] in
  let speedups_for kernels =
    List.map
      (fun (k : Catalog.kernel) ->
        let ms = measure k.key in
        Fmt.pr "%-26s" k.key;
        List.iter (fun m -> Fmt.pr " %7.2fx" (speedup m)) ms;
        Fmt.pr "@.";
        let row = List.map speedup ms in
        csv_rows :=
          (k.key :: List.map (Fmt.str "%.4f") row) :: !csv_rows;
        row)
      kernels
  in
  let spec = speedups_for spec_kernels in
  let gmean_at idx = geomean (List.map (fun l -> List.nth l idx) spec) in
  Fmt.pr "%-26s %7.2fx %7.2fx %7.2fx@." "GMean(SPEC kernels)" (gmean_at 0)
    (gmean_at 1) (gmean_at 2);
  Fmt.pr "--- motivating examples ---@.";
  ignore (speedups_for motivation_kernels);
  Csv.write "fig9_speedup"
    [ "kernel"; "slp_nr"; "slp"; "lslp" ]
    (List.rev !csv_rows)

(* Figure 10: static vectorization cost (TTI units; lower = better). *)
let fig10 () =
  header "Figure 10: static vectorization cost (lower is better)";
  Fmt.pr "%-26s %8s %8s %8s@." "kernel" "SLP-NR" "SLP" "LSLP";
  let rows =
    List.map
      (fun (k : Catalog.kernel) ->
        let ms = measure k.key in
        Fmt.pr "%-26s" k.key;
        List.iter (fun m -> Fmt.pr " %+8d" m.accepted_cost) ms;
        Fmt.pr "@.";
        List.map (fun m -> float_of_int m.accepted_cost) ms)
      Catalog.table2
  in
  let mean_at idx =
    List.fold_left (fun a l -> a +. List.nth l idx) 0.0 rows
    /. float_of_int (List.length rows)
  in
  Fmt.pr "%-26s %+8.1f %+8.1f %+8.1f@." "Mean" (mean_at 0) (mean_at 1)
    (mean_at 2);
  Csv.write "fig10_static_cost"
    [ "kernel"; "slp_nr"; "slp"; "lslp" ]
    (List.map2
       (fun (k : Catalog.kernel) row ->
         k.key :: List.map (Fmt.str "%.0f") row)
       Catalog.table2 rows)

(* Figure 11: whole-benchmark static cost, normalized to SLP (%).  The
   paper plots cost improvement relative to SLP; >100% = better than SLP. *)
let fig11 () =
  header "Figure 11: whole-benchmark static cost normalized to SLP (%)";
  Fmt.pr "%-14s %8s %8s %8s@." "benchmark" "SLP-NR" "SLP" "LSLP";
  let ratios =
    List.map
      (fun (b : Catalog.benchmark) ->
        let ms = List.map (measure_benchmark b) configs_main in
        let slp_cost =
          (List.find (fun m -> m.config_name' = "SLP") ms).total_accepted_cost
        in
        let normalize m =
          if slp_cost = 0 then if m.total_accepted_cost = 0 then 100.0 else 200.0
          else
            100.0
            *. float_of_int m.total_accepted_cost
            /. float_of_int slp_cost
        in
        let row = List.map normalize ms in
        Fmt.pr "%-14s" b.bname;
        List.iter (fun r -> Fmt.pr " %7.1f%%" r) row;
        Fmt.pr "@.";
        row)
      Catalog.full_benchmarks
  in
  let gmean_at idx = geomean (List.map (fun l -> List.nth l idx /. 100.0) ratios) in
  Fmt.pr "%-14s %7.1f%% %7.1f%% %7.1f%%@." "GMean"
    (100.0 *. gmean_at 0) (100.0 *. gmean_at 1) (100.0 *. gmean_at 2);
  Csv.write "fig11_benchmark_cost_pct"
    [ "benchmark"; "slp_nr"; "slp"; "lslp" ]
    (List.map2
       (fun (b : Catalog.benchmark) row ->
         b.bname :: List.map (Fmt.str "%.1f") row)
       Catalog.full_benchmarks ratios)

(* Figure 12: whole-benchmark execution speedup over O3. *)
let fig12 () =
  header "Figure 12: whole-benchmark speedup over O3";
  Fmt.pr "%-14s %8s %8s %8s@." "benchmark" "SLP-NR" "SLP" "LSLP";
  let rows =
    List.map
      (fun (b : Catalog.benchmark) ->
        let ms = List.map (measure_benchmark b) configs_main in
        let row = List.map bench_speedup ms in
        Fmt.pr "%-14s" b.bname;
        List.iter (fun s -> Fmt.pr " %7.3fx" s) row;
        Fmt.pr "@.";
        row)
      Catalog.full_benchmarks
  in
  let gmean_at idx = geomean (List.map (fun l -> List.nth l idx) rows) in
  Fmt.pr "%-14s %7.3fx %7.3fx %7.3fx@." "GMean" (gmean_at 0) (gmean_at 1)
    (gmean_at 2);
  Csv.write "fig12_benchmark_speedup"
    [ "benchmark"; "slp_nr"; "slp"; "lslp" ]
    (List.map2
       (fun (b : Catalog.benchmark) row ->
         b.bname :: List.map (Fmt.str "%.4f") row)
       Catalog.full_benchmarks rows)

(* Figure 13: sensitivity to look-ahead depth and multi-node size.  Bars are
   speedups normalized to full LSLP (LA=8, multi unlimited) = 1.0. *)
let fig13_configs =
  [ Config.slp; Config.lslp_la 0; Config.lslp_la 1; Config.lslp_la 2;
    Config.lslp_la 4; Config.lslp_multi 1; Config.lslp_multi 2;
    Config.lslp_multi 3; Config.lslp ]

let fig13 () =
  header "Figure 13: speedup breakdown for look-ahead depth and multi-node \
          size (normalized to LSLP)";
  Fmt.pr "%-26s" "kernel";
  List.iter (fun c -> Fmt.pr " %10s" c.Config.name) fig13_configs;
  Fmt.pr "@.";
  let rows =
    List.map
      (fun (k : Catalog.kernel) ->
        let ms = measure ~config_list:fig13_configs k.key in
        let full = speedup (List.nth ms (List.length ms - 1)) in
        let row = List.map (fun m -> speedup m /. full) ms in
        Fmt.pr "%-26s" k.key;
        List.iter (fun r -> Fmt.pr " %9.2fx" r) row;
        Fmt.pr "@.";
        row)
      Catalog.table2
  in
  Fmt.pr "%-26s" "GMean";
  List.iteri
    (fun idx _ ->
      Fmt.pr " %9.2fx" (geomean (List.map (fun l -> List.nth l idx) rows)))
    fig13_configs;
  Fmt.pr "@.";
  Csv.write "fig13_sensitivity"
    ("kernel" :: List.map (fun c -> c.Config.name) fig13_configs)
    (List.map2
       (fun (k : Catalog.kernel) row ->
         k.key :: List.map (Fmt.str "%.4f") row)
       Catalog.table2 rows)

(* Figure 14: compilation work normalized to O3.  The score_evals column
   comes straight from the pipeline's own telemetry counters and is fully
   deterministic; the time column is bechamel's estimate when available
   (the [Some lookup] path) and a one-shot wall-clock reading otherwise. *)
let fig14_configs =
  [ ("O3", None);
    ("SLP-NR", Some Config.slp_nr);
    ("SLP", Some Config.slp);
    ("LSLP", Some Config.lslp);
    ("LSLP-LA2", Some (Config.lslp_la 2));
  ]

let fig14_jobs =
  List.map
    (fun (name, config_opt) ->
      (name, fun () -> Harness.compile_all_kernels config_opt))
    fig14_configs

let fig14 measure_ns =
  header "Figure 14: compilation time normalized to O3 (LA=8, wall clock)";
  let stats =
    List.map
      (fun (name, config_opt) ->
        (name, Harness.compile_all_kernels_stats config_opt))
      fig14_configs
  in
  let ns_of name (s : Harness.fig14_stats) =
    match measure_ns with
    | Some lookup -> lookup name
    | None -> s.Harness.wall_seconds *. 1e9
  in
  let o3_ns = ns_of "O3" (List.assoc "O3" stats) in
  (* counters are deterministic -> stdout; wall-clock readings are not ->
     stderr (same split the --stats CLI flags use) *)
  Fmt.pr "%-10s %12s@." "config" "score_evals";
  List.iter
    (fun (name, s) -> Fmt.pr "%-10s %12d@." name s.Harness.score_evals)
    stats;
  (match measure_ns with
   | Some _ -> Fmt.epr "@.%-10s %12s %10s (bechamel)@." "config" "ns/compile" "vs O3"
   | None -> Fmt.epr "@.%-10s %12s %10s (one-shot)@." "config" "ns/compile" "vs O3");
  List.iter
    (fun (name, s) ->
      let t = ns_of name s in
      Fmt.epr "%-10s %12.0f %9.3fx@." name t (t /. o3_ns))
    stats;
  Csv.write "fig14_compile_time"
    [ "config"; "ns_per_compile"; "vs_o3"; "score_evals" ]
    (List.map
       (fun (name, s) ->
         let t = ns_of name s in
         [ name; Fmt.str "%.0f" t; Fmt.str "%.4f" (t /. o3_ns);
           string_of_int s.Harness.score_evals ])
       stats)

(* Loop-form kernels (PR 2): region formation (unroll by the vector factor)
   followed by the regular per-block pass.  The regions column prints the
   block label(s) the vectorizer committed to, keying each win back to the
   control skeleton ("-" = nothing vectorized, as for the serial dot
   product and the symbolic-bound loop). *)
let loops () =
  header "Loop kernels: unroll-by-VF region formation + (L)SLP";
  Fmt.pr "%-18s %-12s %8s %8s %8s@." "kernel" "regions" "SLP-NR" "SLP" "LSLP";
  let csv_rows = ref [] in
  List.iter
    (fun (k : Catalog.kernel) ->
      let f = Catalog.compile_key k.key in
      ignore (Lslp_frontend.Unroll.run ~factor:4 f);
      let report, _ = Pipeline.run_cloned ~config:Config.lslp f in
      let region_str =
        match
          List.sort_uniq String.compare
            (List.filter_map
               (fun r ->
                 if r.Pipeline.vectorized then Some r.Pipeline.region_id
                 else None)
               report.Pipeline.regions)
        with
        | [] -> "-"
        | rs -> String.concat "," rs
      in
      let ms = measure k.key in
      Fmt.pr "%-18s %-12s" k.key region_str;
      List.iter (fun m -> Fmt.pr " %7.2fx" (speedup m)) ms;
      Fmt.pr "@.";
      csv_rows :=
        (k.key :: region_str
         :: List.map (fun m -> Fmt.str "%.4f" (speedup m)) ms)
        :: !csv_rows)
    Catalog.loops;
  Csv.write "loops_speedup"
    [ "kernel"; "regions"; "slp_nr"; "slp"; "lslp" ]
    (List.rev !csv_rows)
