(* Tests for address analysis (SCEV-lite) and the dependence graph. *)

open Lslp_ir
open Lslp_analysis
open Helpers

let addr ?(base = "A") ?(lanes = 1) k : Instr.address =
  { Instr.base; elt = Types.I64;
    index = Affine.add_const k (Affine.sym "i"); access_lanes = lanes }

let addr_sym ?(base = "A") sym : Instr.address =
  { Instr.base; elt = Types.I64; index = Affine.sym sym; access_lanes = 1 }

let addr_tests =
  [
    tc "consecutive scalar accesses" (fun () ->
        check_bool "A[i], A[i+1]" true (Addr.consecutive (addr 0) (addr 1));
        check_bool "A[i+1], A[i]" false (Addr.consecutive (addr 1) (addr 0));
        check_bool "A[i], A[i+2]" false (Addr.consecutive (addr 0) (addr 2)));
    tc "consecutive after a vector access" (fun () ->
        check_bool "<2> at i then i+2" true
          (Addr.consecutive (addr ~lanes:2 0) (addr 2)));
    tc "different arrays never consecutive" (fun () ->
        check_bool "A vs B" false
          (Addr.consecutive (addr 0) (addr ~base:"B" 1)));
    tc "symbolically different indices not consecutive" (fun () ->
        check_bool "A[i] vs A[j]" false
          (Addr.consecutive (addr_sym "i") (addr_sym "j")));
    tc "element_distance" (fun () ->
        check (Alcotest.option Alcotest.int) "3" (Some 3)
          (Addr.element_distance (addr 0) (addr 3));
        check (Alcotest.option Alcotest.int) "cross-array" None
          (Addr.element_distance (addr 0) (addr ~base:"B" 3)));
    tc "may_alias exact and ranges" (fun () ->
        check_bool "same" true (Addr.may_alias (addr 0) (addr 0));
        check_bool "disjoint" false (Addr.may_alias (addr 0) (addr 1));
        check_bool "vector overlap" true
          (Addr.may_alias (addr ~lanes:2 0) (addr 1));
        check_bool "vector disjoint" false
          (Addr.may_alias (addr ~lanes:2 0) (addr 2)));
    tc "may_alias conservative on symbolic difference" (fun () ->
        check_bool "A[i] vs A[j]" true
          (Addr.may_alias (addr_sym "i") (addr_sym "j")));
    tc "different arrays never alias" (fun () ->
        check_bool "A vs B" false (Addr.may_alias (addr 0) (addr ~base:"B" 0)));
    tc "must_alias" (fun () ->
        check_bool "same" true (Addr.must_alias (addr 2) (addr 2));
        check_bool "different offset" false (Addr.must_alias (addr 2) (addr 3)));
    tc "sort_by_offset orders accesses" (fun () ->
        match Addr.sort_by_offset [ (addr 2, "c"); (addr 0, "a"); (addr 1, "b") ] with
        | Some sorted ->
          check (Alcotest.list Alcotest.string) "order" [ "a"; "b"; "c" ]
            (List.map snd sorted)
        | None -> Alcotest.fail "expected sortable");
    tc "sort_by_offset rejects mixed arrays" (fun () ->
        check_bool "None" true
          (Addr.sort_by_offset [ (addr 0, ()); (addr ~base:"B" 1, ()) ] = None));
    tc "consecutive_run" (fun () ->
        check_bool "run" true (Addr.consecutive_run [ addr 0; addr 1; addr 2 ]);
        check_bool "gap" false (Addr.consecutive_run [ addr 0; addr 2 ]);
        check_bool "singleton" true (Addr.consecutive_run [ addr 5 ]));
  ]

(* A function with a store between two loads of the same location. *)
let dep_function () =
  compile {|
kernel k(f64 A[], f64 R[], i64 i) {
  f64 x = A[i];
  A[i] = x * 2.0;
  f64 y = A[i];
  R[i] = y + x;
}
|}

let depgraph_tests =
  [
    tc "data dependence is transitive" (fun () ->
        let f = compile {|
kernel k(f64 A[], i64 i) {
  f64 x = A[i];
  f64 y = x * 2.0;
  f64 z = y + 1.0;
  A[i+1] = z;
}
|} in
        let deps = Depgraph.build (Func.entry f) in
        let insts = Block.to_list (Func.entry f) in
        let first = List.hd insts in
        let last = List.nth insts (List.length insts - 1) in
        check_bool "store depends on load" true
          (Depgraph.depends deps last ~on:first);
        check_bool "load does not depend on store" false
          (Depgraph.depends deps first ~on:last));
    tc "memory dependence: store blocks load reordering" (fun () ->
        let f = dep_function () in
        let deps = Depgraph.build (Func.entry f) in
        let insts = Block.to_list (Func.entry f) in
        let store = List.find Instr.is_store insts in
        let second_load =
          List.find
            (fun i ->
              Instr.is_load i
              && Block.position_exn (Func.entry f) i
                 > Block.position_exn (Func.entry f) store)
            insts
        in
        check_bool "2nd load depends on store" true
          (Depgraph.depends deps second_load ~on:store));
    tc "independent detects intra-bundle dependences" (fun () ->
        let f = compile {|
kernel k(f64 A[], i64 i) {
  f64 x = A[i];
  f64 y = x * 2.0;
  A[i+1] = y;
}
|} in
        let deps = Depgraph.build (Func.entry f) in
        let insts = Block.to_list (Func.entry f) in
        let x = List.nth insts 0 and y = List.nth insts 1 in
        check_bool "x,y dependent" false (Depgraph.independent deps [ x; y ]);
        check_bool "singleton ok" true (Depgraph.independent deps [ x ]));
    tc "loads from distinct arrays independent" (fun () ->
        let f = compile {|
kernel k(f64 A[], f64 B[], f64 R[], i64 i) {
  R[i+0] = A[i] * 1.0;
  R[i+1] = B[i] * 1.0;
}
|} in
        let deps = Depgraph.build (Func.entry f) in
        let loads = Block.find_all Instr.is_load (Func.entry f) in
        check_bool "independent" true (Depgraph.independent deps loads));
    tc "schedulable_groups accepts legal bundles" (fun () ->
        let f = kernel "motivation-loads" in
        let deps = Depgraph.build (Func.entry f) in
        let loads = Block.find_all Instr.is_load (Func.entry f) in
        let stores = Block.find_all Instr.is_store (Func.entry f) in
        check_bool "loads+stores bundled" true
          (Depgraph.schedulable_groups deps [ loads; stores ]));
    tc "schedulable_groups rejects cyclic contraction" (fun () ->
        (* load A -> store R[i] -> load R[i] -> store R[i+1]: contracting
           {loads} and {stores} creates LOADS -> STORES -> LOADS, a cycle *)
        let f = compile {|
kernel k(f64 A[], f64 R[], i64 i) {
  f64 x = A[i];
  R[i+0] = x;
  f64 y = R[i+0];
  R[i+1] = y;
}
|} in
        let deps = Depgraph.build (Func.entry f) in
        let loads = Block.find_all Instr.is_load (Func.entry f) in
        let stores = Block.find_all Instr.is_store (Func.entry f) in
        check_int "two loads" 2 (List.length loads);
        check_bool "cycle rejected" false
          (Depgraph.schedulable_groups deps [ loads; stores ]));
    tc "topo_order is stable when legal" (fun () ->
        let f = dep_function () in
        let before = Block.to_list (Func.entry f) in
        let order = Depgraph.topo_order (Func.entry f) in
        check_bool "unchanged" true
          (List.for_all2 Instr.equal before order));
    tc "reschedule fixes def-after-use for pure code" (fun () ->
        let b =
          Builder.create ~name:"swapped"
            ~args:[ ("A", Instr.Array_arg Types.I64); ("i", Instr.Int_arg) ]
        in
        let x = Builder.load b ~base:"A" (Builder.idx 0) in
        let y = Builder.binop b Opcode.Add x (Builder.iconst 1) in
        Builder.store b ~base:"A" (Builder.idx 1) y;
        let f = Builder.func b in
        (* scramble: move the load after its user *)
        let insts = Block.to_list (Func.entry f) in
        Block.set_order (Func.entry f)
          (match insts with
           | [ ld; add; st ] -> [ add; ld; st ]
           | _ -> insts);
        check_bool "broken before" false (Verifier.is_valid f);
        Depgraph.reschedule (Func.entry f);
        check_bool "fixed after" true (Verifier.is_valid f));
  ]

let suite = addr_tests @ depgraph_tests
