(* Shared helpers for the test suites. *)

open Lslp_ir

let check = Alcotest.check
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tc name f = Alcotest.test_case name `Quick f

(* Compile a kernel-language snippet. *)
let compile = Lslp_frontend.Lower.compile_string

(* Compile a catalog kernel. *)
let kernel = Lslp_kernels.Catalog.compile_key

(* Run a config on a clone, returning (report, transformed). *)
let vectorize ?(config = Lslp_core.Config.lslp) f =
  Lslp_core.Pipeline.run_cloned ~config f

(* Assert the transformed function verifies and is observationally
   equivalent to the reference on seeded random inputs. *)
let assert_sound ?(seeds = [ 1; 7; 42 ]) ~reference ~candidate () =
  (match Verifier.check_func candidate with
   | [] -> ()
   | errors ->
     Alcotest.failf "verifier rejected transformed IR: %s"
       (String.concat "; " (List.map Verifier.error_to_string errors)));
  List.iter
    (fun seed ->
      let outcome =
        Lslp_interp.Oracle.compare_runs ~seed ~reference ~candidate ()
      in
      match outcome.mismatches with
      | [] -> ()
      | m :: _ ->
        Alcotest.failf "semantic mismatch (seed %d): %s" seed
          (Fmt.str "%a" Lslp_interp.Memory.pp_mismatch m))
    seeds

(* Total static cost of the regions a config actually vectorizes (the
   Figure 10 metric: rejected regions stay scalar, contributing nothing). *)
let total_cost config f =
  let report, _ = vectorize ~config f in
  report.Lslp_core.Pipeline.total_cost

let vectorized_regions config f =
  let report, _ = vectorize ~config f in
  report.Lslp_core.Pipeline.vectorized_regions

(* Count instructions matching a predicate across every block. *)
let count_insts p (f : Func.t) =
  Func.fold_instrs (fun acc i -> if p i then acc + 1 else acc) 0 f

let is_vector_op (i : Instr.t) = Types.is_vector i.Instr.ty

let is_wide_store (i : Instr.t) =
  match i.Instr.kind with
  | Instr.Store (a, _) -> a.Instr.access_lanes > 1
  | _ -> false

let is_wide_load (i : Instr.t) =
  match i.Instr.kind with
  | Instr.Load a -> a.Instr.access_lanes > 1
  | _ -> false
