(* Property-based end-to-end testing.

   A generator produces random straight-line kernels whose lanes compute the
   same commutative expression with per-lane random operand orders and tree
   shapes — precisely the hidden isomorphism LSLP exists to uncover.  The
   property: for every configuration, the pass output verifies and is
   observationally equivalent to the scalar original. *)

open Lslp_ir
open Lslp_core

(* ---- kernel descriptions ------------------------------------------ *)

type leaf =
  | L_load of int * int * int  (* array id, zone, stride (1 = consecutive) *)
  | L_const of float           (* distinct constant per lane *)
  | L_shared of float          (* same constant in every lane *)

type kdesc = {
  vl : int;
  op : Opcode.binop;
  leaves : leaf list;          (* >= 2 *)
  perms : int list list;       (* per lane: permutation of leaf indices *)
  left_assoc : bool list;      (* per lane: fold direction *)
  decoy_store : bool;          (* unrelated scalar store between the seeds *)
}

let arrays = [| "A"; "B"; "C" |]

let build_kernel (d : kdesc) : Func.t =
  let b =
    Builder.create ~name:"random"
      ~args:
        [ ("R", Instr.Array_arg Types.F64); ("S", Instr.Array_arg Types.F64);
          ("A", Instr.Array_arg Types.F64); ("B", Instr.Array_arg Types.F64);
          ("C", Instr.Array_arg Types.F64); ("i", Instr.Int_arg) ]
  in
  let leaf_value lane = function
    | L_load (arr, zone, stride) ->
      Builder.load b
        ~base:arrays.(arr mod Array.length arrays)
        (Affine.add_const ((zone * 16) + (lane * stride)) (Affine.sym "i"))
    | L_const c -> Builder.fconst (c +. float_of_int lane)
    | L_shared c -> Builder.fconst c
  in
  let lane_expr lane perm left =
    let ordered = List.map (fun j -> List.nth d.leaves j) perm in
    let values = List.map (leaf_value lane) ordered in
    match values with
    | [] -> assert false
    | v0 :: rest ->
      if left then List.fold_left (fun acc v -> Builder.binop b d.op acc v) v0 rest
      else
        List.fold_left (fun acc v -> Builder.binop b d.op v acc) v0 rest
  in
  List.iteri
    (fun lane (perm, left) ->
      let v = lane_expr lane perm left in
      Builder.store b ~base:"R" (Affine.add_const lane (Affine.sym "i")) v;
      if d.decoy_store && lane = 0 then
        Builder.store b ~base:"S"
          (Affine.add_const 40 (Affine.sym "i"))
          (Builder.fconst 3.5))
    (List.combine d.perms d.left_assoc);
  let f = Builder.func b in
  ignore (Cse.run f);
  Verifier.verify_exn f;
  f

(* ---- generators ---------------------------------------------------- *)

let gen_perm n =
  let open QCheck2.Gen in
  let* seed = int_bound 10_000 in
  let arr = Array.init n Fun.id in
  let st = Random.State.make [| seed |] in
  for k = n - 1 downto 1 do
    let j = Random.State.int st (k + 1) in
    let t = arr.(k) in
    arr.(k) <- arr.(j);
    arr.(j) <- t
  done;
  return (Array.to_list arr)

let gen_leaf =
  let open QCheck2.Gen in
  frequency
    [
      (5, let* arr = int_bound 2 in
          let* zone = int_bound 3 in
          let* stride = oneofl [ 1; 1; 2 ] in
          return (L_load (arr, zone, stride)));
      (1, let* c = float_range 0.5 4.0 in return (L_const c));
      (1, let* c = float_range 0.5 4.0 in return (L_shared c));
    ]

let gen_kdesc =
  let open QCheck2.Gen in
  let* vl = oneofl [ 2; 4 ] in
  let* op = oneofl [ Opcode.Fadd; Opcode.Fmul ] in
  let* nleaves = int_range 2 4 in
  let* leaves = list_repeat nleaves gen_leaf in
  let* perms = list_repeat vl (gen_perm nleaves) in
  let* left_assoc = list_repeat vl bool in
  let* decoy_store = bool in
  return { vl; op; leaves; perms; left_assoc; decoy_store }

let print_kdesc d =
  Fmt.str "vl=%d op=%s leaves=%d decoy=%b perms=%s" d.vl
    (Opcode.binop_name d.op) (List.length d.leaves) d.decoy_store
    (String.concat ";"
       (List.map
          (fun p -> String.concat "," (List.map string_of_int p))
          d.perms))

let all_configs =
  [ Config.slp_nr; Config.slp; Config.lslp; Config.lslp_la 0;
    Config.lslp_la 1; Config.lslp_multi 1; Config.lslp_multi 2 ]

let sound_under config (d : kdesc) =
  let reference = build_kernel d in
  let candidate = Func.clone reference in
  ignore (Pipeline.run ~config candidate);
  match Verifier.check_func candidate with
  | _ :: _ -> false
  | [] ->
    Lslp_interp.Oracle.equivalent ~tol:1e-6 ~reference ~candidate ()

let prop ?(count = 150) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:print_kdesc gen_kdesc f)

(* Random reduction chains: n leaves (loads at random zones/strides and
   constants) folded left or right; the reduction pass must stay sound. *)
type rdesc = { r_leaves : leaf list; r_left : bool; r_op : Opcode.binop }

let gen_rdesc =
  let open QCheck2.Gen in
  let* n = int_range 2 10 in
  let* r_leaves = list_repeat n gen_leaf in
  let* r_left = bool in
  let* r_op = oneofl [ Opcode.Fadd; Opcode.Fmul ] in
  return { r_leaves; r_left; r_op }

let print_rdesc d =
  Fmt.str "op=%s leaves=%d left=%b" (Opcode.binop_name d.r_op)
    (List.length d.r_leaves) d.r_left

let build_reduction_kernel (d : rdesc) : Func.t =
  let b =
    Builder.create ~name:"randred"
      ~args:
        [ ("R", Instr.Array_arg Types.F64); ("S", Instr.Array_arg Types.F64);
          ("A", Instr.Array_arg Types.F64); ("B", Instr.Array_arg Types.F64);
          ("C", Instr.Array_arg Types.F64); ("i", Instr.Int_arg) ]
  in
  let leaf_value j = function
    | L_load (arr, zone, stride) ->
      Builder.load b
        ~base:arrays.(arr mod Array.length arrays)
        (Affine.add_const ((zone * 16) + (j * stride)) (Affine.sym "i"))
    | L_const c -> Builder.fconst (c +. float_of_int j)
    | L_shared c -> Builder.fconst c
  in
  let values = List.mapi leaf_value d.r_leaves in
  let folded =
    match values with
    | [] -> assert false
    | v0 :: rest ->
      if d.r_left then
        List.fold_left (fun acc v -> Builder.binop b d.r_op acc v) v0 rest
      else List.fold_left (fun acc v -> Builder.binop b d.r_op v acc) v0 rest
  in
  Builder.store b ~base:"R" (Affine.sym "i") folded;
  let f = Builder.func b in
  ignore (Cse.run f);
  Verifier.verify_exn f;
  f

let suite =
  List.map
    (fun config ->
      prop
        (Fmt.str "random kernels sound under %s" config.Config.name)
        (sound_under config))
    all_configs
  @ [
      prop ~count:80 "LSLP cost never above SLP-NR cost on random kernels"
        (fun d ->
          (* weaker than LSLP <= SLP, which even the paper does not claim
             globally (§5.2): against the no-reorder baseline, adding
             look-ahead reordering to a graph of commutative chains can
             only expose more isomorphism on these generated shapes *)
          let f = build_kernel d in
          let cost config =
            let report, _ = Pipeline.run_cloned ~config f in
            report.Pipeline.total_cost
          in
          cost Config.lslp <= cost Config.slp_nr);
      prop ~count:80 "deeper look-ahead never increases cost" (fun d ->
          let f = build_kernel d in
          let cost depth =
            let report, _ =
              Pipeline.run_cloned ~config:(Config.lslp_la depth) f
            in
            report.Pipeline.total_cost
          in
          cost 8 <= cost 0);
      QCheck_alcotest.to_alcotest
        (QCheck2.Test.make ~count:150
           ~name:"random reduction chains are sound under LSLP"
           ~print:print_rdesc gen_rdesc
           (fun d ->
             let reference = build_reduction_kernel d in
             let candidate = Func.clone reference in
             ignore (Pipeline.run ~config:Config.lslp candidate);
             Verifier.is_valid candidate
             && Lslp_interp.Oracle.equivalent ~tol:1e-6 ~reference ~candidate
                  ()));
      QCheck_alcotest.to_alcotest
        (QCheck2.Test.make ~count:100
           ~name:"reduction vectorization never loses TTI cycles"
           ~print:print_rdesc gen_rdesc
           (fun d ->
             let reference = build_reduction_kernel d in
             let candidate = Func.clone reference in
             ignore (Pipeline.run ~config:Config.lslp candidate);
             let o =
               Lslp_interp.Oracle.compare_runs
                 ~cost:Lslp_costmodel.Model.skylake_avx2 ~reference ~candidate
                 ()
             in
             o.candidate_cycles <= o.reference_cycles));
      prop ~count:80 "vectorization never increases simulated cycles under \
                      the TTI table" (fun d ->
          (* when the simulator charges exactly what the vectorizer
             optimized for, a profitable decision must pay off *)
          let reference = build_kernel d in
          let candidate = Func.clone reference in
          ignore (Pipeline.run ~config:Config.lslp candidate);
          let o =
            Lslp_interp.Oracle.compare_runs
              ~cost:Lslp_costmodel.Model.skylake_avx2 ~reference ~candidate ()
          in
          o.candidate_cycles <= o.reference_cycles);
    ]
