(* Tests for horizontal-reduction vectorization and the Reduce/Shuffle
   instructions it (and gather codegen) relies on. *)

open Lslp_ir
open Lslp_core
open Helpers

let dot_src = {|
kernel dot(f64 S[], f64 A[], f64 B[], i64 i) {
  S[i] = A[i+0] * B[i+0] + A[i+1] * B[i+1]
       + (A[i+2] * B[i+2] + A[i+3] * B[i+3]);
}
|}

let count_kind p f = count_insts p f

let is_reduce (i : Instr.t) =
  match i.Instr.kind with Instr.Reduce _ -> true | _ -> false

let is_shuffle (i : Instr.t) =
  match i.Instr.kind with Instr.Shuffle _ -> true | _ -> false

let detection_tests =
  [
    tc "dot-product chain is detected" (fun () ->
        let f = compile dot_src in
        match Reduction.collect_candidates (Func.entry f) with
        | [ c ] ->
          check_bool "fadd" true (c.Reduction.cand_op = Opcode.Fadd);
          check_int "3 chain ops" 3 (List.length c.Reduction.cand_chain);
          check_int "4 leaves" 4 (List.length c.Reduction.cand_leaves)
        | cs -> Alcotest.failf "expected 1 candidate, got %d" (List.length cs));
    tc "single ops are not chains" (fun () ->
        let f = compile {|
kernel k(f64 S[], f64 A[], i64 i) { S[i] = A[i] + A[i+1]; }
|} in
        check_int "no candidates" 0
          (List.length (Reduction.collect_candidates (Func.entry f))));
    tc "escaping intermediates stop the chain" (fun () ->
        let f = compile {|
kernel k(f64 S[], f64 A[], i64 i) {
  f64 t = A[i+0] + A[i+1];
  S[i+0] = t + A[i+2] + A[i+3] + A[i+4];
  S[i+4] = t;
}
|} in
        match Reduction.collect_candidates (Func.entry f) with
        | [ c ] ->
          (* t is multi-use: it is a leaf of the big chain, not absorbed *)
          check_int "leaves" 4 (List.length c.Reduction.cand_leaves)
        | cs -> Alcotest.failf "expected 1 candidate, got %d" (List.length cs));
    tc "non-associative ops form no chains" (fun () ->
        let f = compile {|
kernel k(f64 S[], f64 A[], i64 i) {
  S[i] = A[i+0] - A[i+1] - A[i+2] - A[i+3] - A[i+4];
}
|} in
        check_int "none" 0 (List.length (Reduction.collect_candidates (Func.entry f))));
  ]

let vectorize_tests =
  [
    tc "dot product becomes wide mul + reduce" (fun () ->
        let f = compile dot_src in
        let reference = Func.clone f in
        let regions = Reduction.run ~config:Config.lslp (Func.entry f) in
        check_int "one region" 1 (List.length regions);
        check_bool "vectorized" true (List.hd regions).Reduction.vectorized;
        check_int "one reduce" 1 (count_kind is_reduce f);
        check_int "two wide loads" 2 (count_insts is_wide_load f);
        assert_sound ~reference ~candidate:f ());
    tc "leftover leaves fold as a scalar tail" (fun () ->
        let f = compile {|
kernel k(f64 S[], f64 A[], f64 B[], i64 i) {
  S[i] = A[i+0] * B[i+0] + A[i+1] * B[i+1]
       + A[i+2] * B[i+2] + A[i+3] * B[i+3] + 2.5;
}
|} in
        let reference = Func.clone f in
        ignore (Reduction.run ~config:Config.lslp (Func.entry f));
        check_int "one reduce" 1 (count_kind is_reduce f);
        (* the +2.5 survives as a scalar fadd after the reduce *)
        check_bool "scalar tail" true
          (count_insts
             (fun i ->
               Instr.binop i = Some Opcode.Fadd
               && not (Types.is_vector i.Instr.ty))
             f
           > 0);
        assert_sound ~reference ~candidate:f ());
    tc "two full chunks combine element-wise before reducing" (fun () ->
        let f = compile {|
kernel k(f64 S[], f64 A[], i64 i) {
  S[i] = A[i+0] + A[i+1] + A[i+2] + A[i+3]
       + A[i+4] + A[i+5] + A[i+6] + A[i+7];
}
|} in
        let reference = Func.clone f in
        ignore (Reduction.run ~config:Config.lslp (Func.entry f));
        check_int "one reduce" 1 (count_kind is_reduce f);
        check_bool "wide fadd combine" true
          (count_insts
             (fun i ->
               Instr.binop i = Some Opcode.Fadd && Types.is_vector i.Instr.ty)
             f
           > 0);
        assert_sound ~reference ~candidate:f ());
    tc "short chains stay scalar" (fun () ->
        let f = compile {|
kernel k(f64 S[], f64 A[], i64 i) { S[i] = A[i+0] + A[i+1] + A[i+2]; }
|} in
        let regions = Reduction.run ~config:Config.lslp (Func.entry f) in
        check_int "nothing" 0 (List.length regions);
        check_int "no reduce" 0 (count_kind is_reduce f));
    tc "gathered (non-consecutive) leaves can still pay off" (fun () ->
        let f = compile {|
kernel k(f64 S[], f64 A[], f64 B[], i64 i) {
  S[i] = A[2*i+0] * A[2*i+0] + B[2*i+0] * B[2*i+0]
       + (A[2*i+2] * A[2*i+2] + B[2*i+2] * B[2*i+2]);
}
|} in
        let reference = Func.clone f in
        ignore (Reduction.run ~config:Config.lslp (Func.entry f));
        assert_sound ~reference ~candidate:f ());
    tc "reduction root with a scalar store user is rewired" (fun () ->
        let f = compile {|
kernel k(f64 S[], f64 T[], f64 A[], i64 i) {
  f64 sum = A[i+0] + A[i+1] + A[i+2] + A[i+3];
  S[i] = sum;
  T[i+8] = sum * 2.0;
}
|} in
        let reference = Func.clone f in
        let regions = Reduction.run ~config:Config.lslp (Func.entry f) in
        check_bool "vectorized" true
          (List.exists (fun r -> r.Reduction.vectorized) regions);
        assert_sound ~reference ~candidate:f ());
    tc "pipeline runs reductions after store seeds" (fun () ->
        let f = kernel "453.hreciprocal" in
        let report, g = vectorize ~config:Config.lslp f in
        check_int "two regions" 2 report.Pipeline.vectorized_regions;
        check_int "one reduce in output" 1 (count_kind is_reduce g);
        assert_sound ~reference:f ~candidate:g ());
    tc "reductions can be disabled" (fun () ->
        let f = kernel "453.hreciprocal" in
        let config = Config.with_reductions false Config.lslp in
        let report, g = vectorize ~config f in
        check_int "one region" 1 report.Pipeline.vectorized_regions;
        check_int "no reduce" 0 (count_kind is_reduce g));
    tc "integer reductions work too" (fun () ->
        let f = compile {|
kernel k(i64 S[], i64 A[], i64 i) {
  S[i] = A[i+0] + A[i+1] + A[i+2] + A[i+3] + A[i+4] + A[i+5];
}
|} in
        let reference = Func.clone f in
        ignore (Reduction.run ~config:Config.lslp (Func.entry f));
        check_int "one reduce" 1 (count_kind is_reduce f);
        assert_sound ~reference ~candidate:f ());
  ]

let shuffle_tests =
  [
    tc "interp: shuffle permutes lanes" (fun () ->
        let f = compile {|
kernel k(f64 R[], f64 A[], i64 i) {
  R[i+0] = A[i+0] + 1.0;
  R[i+1] = A[i+1] + 1.0;
}
|} in
        (* hand-append a shuffle consuming a wide value *)
        let _, g = vectorize ~config:Config.lslp f in
        ignore g;
        (* direct semantic check instead: build one manually *)
        let b =
          Builder.create ~name:"s"
            ~args:[ ("A", Instr.Array_arg Types.F64); ("R", Instr.Array_arg Types.F64);
                    ("i", Instr.Int_arg) ]
        in
        let fb = Builder.func b in
        let wide =
          Instr.create ~name:"w"
            (Instr.Load
               { Instr.base = "A"; elt = Types.F64; index = Affine.sym "i";
                 access_lanes = 2 })
            (Types.vec Types.F64 2)
        in
        let shuf =
          Instr.create ~name:"sh"
            (Instr.Shuffle (Instr.Ins wide, [ 1; 0 ]))
            (Types.vec Types.F64 2)
        in
        let st =
          Instr.create
            (Instr.Store
               ({ Instr.base = "R"; elt = Types.F64; index = Affine.sym "i";
                  access_lanes = 2 },
                Instr.Ins shuf))
            Types.Void
        in
        Block.append_list (Func.entry fb) [ wide; shuf; st ];
        Verifier.verify_exn fb;
        let mem = Lslp_interp.Memory.create () in
        Lslp_interp.Memory.set_float mem "A" [| 1.0; 2.0; 0.0 |];
        Lslp_interp.Memory.set_float mem "R" [| 0.0; 0.0; 0.0 |];
        ignore
          (Lslp_interp.Eval.run fb ~int_args:[ ("i", 0L) ] ~float_args:[]
             ~mem);
        check_bool "swapped" true
          (Lslp_interp.Memory.read_float mem "R" 0 = 2.0
           && Lslp_interp.Memory.read_float mem "R" 1 = 1.0));
    tc "verifier rejects out-of-range shuffle indices" (fun () ->
        let b =
          Builder.create ~name:"s"
            ~args:[ ("A", Instr.Array_arg Types.F64); ("i", Instr.Int_arg) ]
        in
        let fb = Builder.func b in
        let wide =
          Instr.create
            (Instr.Load
               { Instr.base = "A"; elt = Types.F64; index = Affine.sym "i";
                 access_lanes = 2 })
            (Types.vec Types.F64 2)
        in
        let bad =
          Instr.create
            (Instr.Shuffle (Instr.Ins wide, [ 0; 5 ]))
            (Types.vec Types.F64 2)
        in
        Block.append_list (Func.entry fb) [ wide; bad ];
        check_bool "rejected" true (not (Verifier.is_valid fb)));
    tc "permuted reuse of a vectorized column becomes one shuffle" (fun () ->
        (* both lanes multiply the same two sums, in swapped order: the
           second operand column is a pure permutation of the first (which
           vectorizes), so it must be emitted as a single shuffle *)
        let f = compile {|
kernel k(f64 R[], f64 A[], f64 B[], i64 i) {
  R[i+0] = (A[i+0] + B[i+0]) * 2.0 + (A[i+1] + B[i+1]) * 3.0;
  R[i+1] = (A[i+1] + B[i+1]) * 2.0 + (A[i+0] + B[i+0]) * 3.0;
}
|} in
        let reference = Func.clone f in
        let _, g = vectorize ~config:Config.lslp f in
        check_bool "has shuffle" true (count_kind is_shuffle g > 0);
        check_int "no extracts needed" 0
          (count_insts
             (fun i -> match i.Instr.kind with
                | Instr.Extract _ -> true | _ -> false)
             g);
        assert_sound ~reference ~candidate:g ());
    tc "interp: reduce folds all lanes" (fun () ->
        check_bool "sum" true
          (let v = Lslp_interp.Eval.VF 0.0 in
           ignore v;
           true);
        (* semantic check through a kernel *)
        let f = compile {|
kernel k(f64 S[], f64 A[], i64 i) {
  S[i] = A[i+0] + A[i+1] + A[i+2] + A[i+3];
}
|} in
        ignore (Reduction.run ~config:Config.lslp (Func.entry f));
        let mem = Lslp_interp.Memory.create () in
        Lslp_interp.Memory.set_float mem "A" [| 1.0; 2.0; 3.0; 4.0 |];
        Lslp_interp.Memory.set_float mem "S" [| 0.0 |];
        ignore
          (Lslp_interp.Eval.run f ~int_args:[ ("i", 0L) ] ~float_args:[] ~mem);
        check_bool "10.0" true (Lslp_interp.Memory.read_float mem "S" 0 = 10.0));
  ]

let suite = detection_tests @ vectorize_tests @ shuffle_tests
