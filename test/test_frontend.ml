(* Tests for the kernel-language frontend: lexer, parser, lowering. *)

open Lslp_ir
open Helpers

let lex src = List.map (fun t -> t.Lslp_frontend.Token.tok)
    (Lslp_frontend.Lexer.tokenize src)

let lexer_tests =
  let open Lslp_frontend.Token in
  [
    tc "keywords and identifiers" (fun () ->
        check_int "count" 4 (List.length (lex "kernel i64 f64 foo") - 1);
        check_bool "kernel" true (List.hd (lex "kernel") = KERNEL);
        check_bool "ident" true (List.hd (lex "kernel_x") = IDENT "kernel_x"));
    tc "integer literals" (fun () ->
        check_bool "42" true (List.hd (lex "42") = INT_LIT 42L));
    tc "float literals need . or e" (fun () ->
        check_bool "2.5" true (List.hd (lex "2.5") = FLOAT_LIT 2.5);
        check_bool "1e3" true (List.hd (lex "1e3") = FLOAT_LIT 1000.0);
        check_bool "2" true (List.hd (lex "2") = INT_LIT 2L));
    tc "operators" (fun () ->
        check_bool "shift left" true (List.hd (lex "<<") = SHL);
        check_bool "shift right" true (List.hd (lex ">>") = SHR);
        check_bool "amp" true (List.hd (lex "&") = AMP));
    tc "comments skipped" (fun () ->
        check_int "line comment" 1 (List.length (lex "// hello\n") ));
    tc "block comments skipped" (fun () ->
        check_int "block" 2 (List.length (lex "/* a\nb */ x")));
    tc "unterminated block comment errors" (fun () ->
        check_bool "raises" true
          (try ignore (lex "/* oops"); false
           with Lslp_frontend.Lexer.Error _ -> true));
    tc "unknown character errors with position" (fun () ->
        try ignore (lex "a\n  ?"); Alcotest.fail "expected error"
        with Lslp_frontend.Lexer.Error (_, pos) ->
          check_int "line" 2 pos.line;
          check_int "col" 3 pos.col);
    tc "eof token terminates stream" (fun () ->
        match List.rev (lex "x") with
        | EOF :: _ -> ()
        | _ -> Alcotest.fail "missing EOF");
  ]

let parse = Lslp_frontend.Parser.parse_string

let parser_tests =
  let open Lslp_frontend.Ast in
  [
    tc "empty kernel" (fun () ->
        let k = parse "kernel f() {}" in
        check_string "name" "f" k.kname;
        check_int "params" 0 (List.length k.params);
        check_int "body" 0 (List.length k.body));
    tc "parameter kinds" (fun () ->
        let k = parse "kernel f(i64 n, f64 x, i64 A[], f64 B[]) {}" in
        check_bool "n" true (List.assoc "n" k.params = P_i64);
        check_bool "x" true (List.assoc "x" k.params = P_f64);
        check_bool "A" true (List.assoc "A" k.params = P_arr Ti64);
        check_bool "B" true (List.assoc "B" k.params = P_arr Tf64));
    tc "precedence: * binds tighter than +" (fun () ->
        let k = parse "kernel f(i64 A[], i64 i) { A[i] = 1 + 2 * 3; }" in
        match (List.hd k.body).sdesc with
        | Store (_, _, { desc = Bin (B_add, _, { desc = Bin (B_mul, _, _); _ }); _ }) -> ()
        | _ -> Alcotest.fail "wrong shape");
    tc "precedence: shift binds looser than +" (fun () ->
        let k = parse "kernel f(i64 A[], i64 i) { A[i] = 1 + 2 << 3; }" in
        match (List.hd k.body).sdesc with
        | Store (_, _, { desc = Bin (B_shl, { desc = Bin (B_add, _, _); _ }, _); _ }) -> ()
        | _ -> Alcotest.fail "wrong shape");
    tc "precedence: & ^ | chain C-style" (fun () ->
        let k = parse "kernel f(i64 A[], i64 i) { A[i] = 1 | 2 ^ 3 & 4; }" in
        match (List.hd k.body).sdesc with
        | Store (_, _, { desc = Bin (B_or, _, { desc = Bin (B_xor, _, { desc = Bin (B_and, _, _); _ }); _ }); _ }) -> ()
        | _ -> Alcotest.fail "wrong shape");
    tc "left associativity of -" (fun () ->
        let k = parse "kernel f(i64 A[], i64 i) { A[i] = 1 - 2 - 3; }" in
        match (List.hd k.body).sdesc with
        | Store (_, _, { desc = Bin (B_sub, { desc = Bin (B_sub, _, _); _ }, _); _ }) -> ()
        | _ -> Alcotest.fail "wrong shape");
    tc "unary minus" (fun () ->
        let k = parse "kernel f(f64 A[], i64 i) { A[i] = -A[i]; }" in
        match (List.hd k.body).sdesc with
        | Store (_, _, { desc = Neg _; _ }) -> ()
        | _ -> Alcotest.fail "wrong shape");
    tc "builtin call arity checked" (fun () ->
        check_bool "sqrt/2 rejected" true
          (try ignore (parse "kernel f(f64 A[], i64 i) { A[i] = sqrt(1.0, 2.0); }"); false
           with Lslp_frontend.Parser.Error _ -> true));
    tc "unknown builtin rejected" (fun () ->
        check_bool "rejected" true
          (try ignore (parse "kernel f(f64 A[], i64 i) { A[i] = frob(1.0); }"); false
           with Lslp_frontend.Parser.Error _ -> true));
    tc "trailing garbage rejected" (fun () ->
        check_bool "rejected" true
          (try ignore (parse "kernel f() {} x"); false
           with Lslp_frontend.Parser.Error _ -> true));
    tc "parse_program reads several kernels" (fun () ->
        let ks =
          Lslp_frontend.Parser.parse_program "kernel a() {} kernel b() {}"
        in
        check_int "two kernels" 2 (List.length ks));
    tc "error carries position" (fun () ->
        try ignore (parse "kernel f(\n  bogus x) {}"); Alcotest.fail "no error"
        with Lslp_frontend.Parser.Error (_, pos) ->
          check_int "line" 2 pos.line);
  ]

let lower_err src =
  try
    ignore (compile src);
    None
  with Lslp_frontend.Lower.Error (msg, _) -> Some msg

let lowering_tests =
  [
    tc "simple kernel lowers and verifies" (fun () ->
        let f = compile "kernel f(f64 A[], i64 i) { A[i] = A[i] * 2.0; }" in
        Verifier.verify_exn f;
        check_int "three instructions" 3 (Block.length (Func.entry f)));
    tc "locals are values, not instructions" (fun () ->
        let f = compile {|
kernel f(f64 A[], i64 i) {
  f64 x = A[i];
  A[i+1] = x;
}
|} in
        check_int "load + store" 2 (Block.length (Func.entry f)));
    tc "affine local substituted in subscripts" (fun () ->
        let f = compile {|
kernel f(f64 A[], i64 i) {
  i64 j = 2 * i + 1;
  A[j] = 1.0;
}
|} in
        let st = List.hd (Block.find_all Instr.is_store (Func.entry f)) in
        match Instr.address st with
        | Some a ->
          check (Alcotest.option Alcotest.int) "offset from 2i" (Some 1)
            (Affine.diff_const a.Instr.index (Affine.sym ~coeff:2 "i"))
        | None -> Alcotest.fail "no address");
    tc "type mismatch rejected" (fun () ->
        check_bool "f64 + i64" true
          (lower_err "kernel f(f64 A[], i64 i) { A[i] = A[i] + 1; }" <> None));
    tc "integer ops on floats rejected" (fun () ->
        check_bool "shift on f64" true
          (lower_err "kernel f(f64 A[], i64 i) { A[i] = A[i] << 1; }" <> None));
    tc "non-affine subscript rejected" (fun () ->
        check_bool "i*i" true
          (lower_err "kernel f(f64 A[], i64 i) { A[i*i] = 1.0; }" <> None));
    tc "float subscript rejected" (fun () ->
        check_bool "A[x]" true
          (lower_err "kernel f(f64 A[], f64 x) { A[x] = 1.0; }" <> None));
    tc "undefined variable rejected" (fun () ->
        check_bool "y" true
          (lower_err "kernel f(f64 A[], i64 i) { A[i] = y; }" <> None));
    tc "redefined local rejected" (fun () ->
        check_bool "single assignment" true
          (lower_err {|
kernel f(f64 A[], i64 i) {
  f64 x = 1.0;
  f64 x = 2.0;
  A[i] = x;
}
|} <> None));
    tc "local shadowing parameter rejected" (fun () ->
        check_bool "shadow" true
          (lower_err "kernel f(f64 A[], i64 i) { i64 i = 1; A[i] = 1.0; }"
           <> None));
    tc "array used as scalar rejected" (fun () ->
        check_bool "A + 1" true
          (lower_err "kernel f(i64 A[], i64 i) { A[i] = A + 1; }" <> None));
    tc "store type must match array" (fun () ->
        check_bool "int into f64 array" true
          (lower_err "kernel f(f64 A[], i64 i) { A[i] = 1; }" <> None));
    tc "builtins lower to the right opcodes" (fun () ->
        let f = compile {|
kernel f(f64 A[], i64 A2[], i64 i) {
  A[i] = sqrt(fabs(fmin(A[i], fmax(A[i+1], 1.0))));
  A2[i] = min(A2[i], max(A2[i+1], 3));
}
|} in
        let has op = count_insts (fun i -> Instr.binop i = Some op) f > 0 in
        check_bool "fmin" true (has Opcode.Fmin);
        check_bool "fmax" true (has Opcode.Fmax);
        check_bool "smin" true (has Opcode.Smin);
        check_bool "smax" true (has Opcode.Smax);
        check_int "fsqrt" 1
          (count_insts
             (fun i -> match i.Instr.kind with
                | Instr.Unop (Opcode.Fsqrt, _) -> true | _ -> false)
             f));
    tc "negation picks neg/fneg by type" (fun () ->
        let f = compile {|
kernel f(f64 A[], i64 B[], i64 i) {
  A[i] = -A[i];
  B[i] = -B[i];
}
|} in
        let has_unop op =
          count_insts
            (fun i -> match i.Instr.kind with
               | Instr.Unop (o, _) -> o = op | _ -> false)
            f > 0
        in
        check_bool "fneg" true (has_unop Opcode.Fneg);
        check_bool "neg" true (has_unop Opcode.Neg));
    tc "duplicate parameter rejected" (fun () ->
        check_bool "dup" true
          (lower_err "kernel f(i64 i, i64 i) {}" <> None));
    tc "every catalog kernel compiles and verifies" (fun () ->
        List.iter
          (fun (k : Lslp_kernels.Catalog.kernel) ->
            let f = Lslp_kernels.Catalog.compile k in
            Verifier.verify_exn f)
          Lslp_kernels.Catalog.all);
  ]

let suite = lexer_tests @ parser_tests @ lowering_tests
