(* Fail-soft pipeline tests: fault injection at every pass boundary,
   transactional rollback, resource budgets and the differential fuzzer.

   The load-bearing property, checked against every catalog kernel: no
   injected fault ever escapes [Pipeline.run], and whatever the pipeline
   leaves behind is structurally valid and observationally equivalent to
   the scalar reference. *)

open Lslp_ir
open Lslp_core
open Helpers
module Budget = Lslp_robust.Budget
module Inject = Lslp_robust.Inject
module Transact = Lslp_robust.Transact

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go k = k + m <= n && (String.sub s k m = sub || go (k + 1)) in
  m = 0 || go 0

let inject_point ?(seed = 3) p = Inject.make ~points:[ p ] ~rate:1.0 ~seed ()
let config_with p = Config.with_inject (inject_point p) Config.lslp

(* The reference keeps its loops; the candidate goes through region
   formation (unrolling) exactly like the lslpc driver. *)
let load key =
  let reference = kernel key in
  let candidate = Func.clone reference in
  ignore (Lslp_frontend.Unroll.run ~factor:4 candidate);
  (reference, candidate)

(* A kernel with a profitable reduction chain, for the reduction boundary. *)
let dot_src = {|
kernel dot(f64 S[], f64 A[], f64 B[], i64 i) {
  S[i] = A[i+0] * B[i+0] + A[i+1] * B[i+1]
       + (A[i+2] * B[i+2] + A[i+3] * B[i+3]);
}
|}

(* ---- injection spec parsing and determinism ------------------------ *)

let inject_tests =
  [
    tc "parse accepts point, rate and seed forms" (fun () ->
        List.iter
          (fun spec ->
            match Inject.parse spec with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s rejected: %s" spec e)
          [ "codegen"; "all"; "reorder:0.5"; "all:0.25:7"; "corrupt:1.0:0" ]);
    tc "parse rejects junk" (fun () ->
        List.iter
          (fun spec ->
            match Inject.parse spec with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "%s accepted" spec)
          [ "bogus"; "codegen:nope"; "all:0.5:x"; "" ]);
    tc "point names round-trip" (fun () ->
        List.iter
          (fun p ->
            match Inject.point_of_name (Inject.point_name p) with
            | Some q -> check_bool (Inject.point_name p) true (p = q)
            | None -> Alcotest.fail "name did not round-trip")
          Inject.all_points);
    tc "same seed, same dice" (fun () ->
        let roll () =
          let i = Inject.make ~rate:0.5 ~seed:9 () in
          List.init 32 (fun _ -> Inject.fires i Inject.Codegen)
        in
        check_bool "deterministic" true (roll () = roll ()));
    tc "reseed keeps the spec, changes the dice" (fun () ->
        match Inject.parse "codegen:0.5:1" with
        | Error e -> Alcotest.fail e
        | Ok i ->
          let rolls j = List.init 64 (fun _ -> Inject.fires j Inject.Codegen) in
          let a = rolls (Inject.reseed i ~seed:1) in
          let b = rolls (Inject.reseed i ~seed:1) in
          let c = rolls (Inject.reseed i ~seed:2) in
          check_bool "same seed agrees" true (a = b);
          check_bool "different seed differs" true (a <> c));
    tc "corrupt_block damage is verifier-visible" (fun () ->
        let f = compile {|
kernel k(f64 R[], f64 A[], i64 i) { R[i] = A[i] + A[i+1]; }
|} in
        check_bool "corrupted" true (Inject.corrupt_block (Func.entry f));
        check_bool "verifier rejects it" false (Verifier.is_valid f));
    tc "corrupt_block on an empty block is a no-op" (fun () ->
        let f = compile "kernel k() {}" in
        check_bool "nothing to damage" false
          (Inject.corrupt_block (Func.entry f)));
  ]

(* ---- transactions -------------------------------------------------- *)

let transact_tests =
  [
    tc "protect restores the snapshot on failure" (fun () ->
        let f = kernel "motivation-loads" in
        let before = Printer.func_to_string f in
        let snapshot = Transact.snapshot_func f in
        (match
           Transact.protect ~snapshot ~pass:(fun () -> "test") (fun () ->
               ignore (Inject.corrupt_block (Func.entry f));
               failwith "boom")
         with
        | Ok () -> Alcotest.fail "expected a failure"
        | Error fl ->
          check_string "pass" "test" fl.Transact.pass;
          check_bool "error mentions boom" true (contains fl.Transact.error "boom");
          check_bool "not budget" false fl.Transact.budget_exhausted);
        check_string "rolled back" before (Printer.func_to_string f));
    tc "protect passes successful results through" (fun () ->
        let f = kernel "motivation-loads" in
        let snapshot = Transact.snapshot_func f in
        match
          Transact.protect ~snapshot ~pass:(fun () -> "test") (fun () -> 17)
        with
        | Ok v -> check_int "value" 17 v
        | Error _ -> Alcotest.fail "unexpected failure");
    tc "restore is idempotent" (fun () ->
        let f = kernel "motivation-loads" in
        let before = Printer.func_to_string f in
        let snapshot = Transact.snapshot_func f in
        Transact.restore snapshot;
        Transact.restore snapshot;
        check_string "unchanged" before (Printer.func_to_string f));
    tc "failure_of_exn classifies budget exhaustion" (fun () ->
        let fl =
          Transact.failure_of_exn ~pass:"graph-build"
            (Budget.Exhausted "fuel cap of 4")
        in
        check_bool "budget" true fl.Transact.budget_exhausted;
        check_string "pass" "graph-build" fl.Transact.pass);
    tc "failure_of_exn keeps Check_failed attribution" (fun () ->
        let fl =
          Transact.failure_of_exn ~pass:"outer"
            (Transact.Check_failed { pass = "verify"; error = "bad use" })
        in
        check_string "pass" "verify" fl.Transact.pass;
        check_string "error" "bad use" fl.Transact.error);
  ]

(* ---- rollback under injection, every boundary x every kernel ------- *)

let catalog_keys =
  List.map
    (fun (k : Lslp_kernels.Catalog.kernel) -> k.Lslp_kernels.Catalog.key)
    Lslp_kernels.Catalog.all

let rollback_tests =
  List.map
    (fun p ->
      tc
        (Fmt.str "inject %s: every catalog kernel stays sound"
           (Inject.point_name p))
        (fun () ->
          List.iter
            (fun key ->
              let reference, candidate = load key in
              let report = Pipeline.run ~config:(config_with p) candidate in
              check_bool
                (Fmt.str "%s: degraded count sane" key)
                true
                (report.Pipeline.degraded_regions >= 0);
              assert_sound ~reference ~candidate ())
            catalog_keys))
    Inject.all_points
  @ [
      tc "every main-path boundary produces a degraded region" (fun () ->
          List.iter
            (fun p ->
              let _, candidate = load "motivation-loads" in
              let report = Pipeline.run ~config:(config_with p) candidate in
              check_bool (Inject.point_name p) true
                (report.Pipeline.degraded_regions >= 1))
            [
              Inject.Graph_build; Inject.Reorder; Inject.Codegen;
              Inject.Verify; Inject.Corrupt; Inject.Cse; Inject.Dce;
            ]);
      tc "reduction boundary degrades the dot-product kernel" (fun () ->
          let f = compile dot_src in
          let reference = Func.clone f in
          let report =
            Pipeline.run ~config:(config_with Inject.Reduction) f
          in
          check_bool "degraded" true (report.Pipeline.degraded_regions >= 1);
          assert_sound ~reference ~candidate:f ());
      tc "all-points injection rolls every kernel back to scalar" (fun () ->
          List.iter
            (fun key ->
              let _, candidate = load key in
              let before = Printer.func_to_string candidate in
              let inject = Inject.make ~rate:1.0 ~seed:11 () in
              let config = Config.with_inject inject Config.lslp in
              let report = Pipeline.run ~config candidate in
              check_int
                (Fmt.str "%s: nothing vectorized" key)
                0 report.Pipeline.vectorized_regions;
              check_string
                (Fmt.str "%s: scalar-identical" key)
                before
                (Printer.func_to_string candidate))
            catalog_keys);
      tc "degraded regions carry the failing pass" (fun () ->
          let _, candidate = load "motivation-loads" in
          let report =
            Pipeline.run ~config:(config_with Inject.Codegen) candidate
          in
          let degraded =
            List.filter_map
              (fun r ->
                match r.Pipeline.outcome with
                | Pipeline.Degraded d -> Some d
                | _ -> None)
              report.Pipeline.regions
          in
          check_bool "at least one" true (degraded <> []);
          check_bool "names codegen" true
            (List.exists (fun d -> contains d "codegen") degraded));
      tc "injection under validation produces no legality errors" (fun () ->
          let _, candidate = load "motivation-multi" in
          let config =
            Config.(
              lslp |> with_validate true
              |> with_inject (inject_point Inject.Corrupt))
          in
          let report = Pipeline.run ~config candidate in
          check_int "no diagnostics" 0
            (List.length
               (Lslp_check.Diagnostic.errors report.Pipeline.diagnostics)));
    ]

(* ---- resource budgets ---------------------------------------------- *)

let budget_tests =
  [
    tc "look-ahead fuel cap degrades, stays sound" (fun () ->
        let budget = { Budget.unlimited with Budget.lookahead_fuel = 4 } in
        let config = Config.(lslp |> with_budget budget |> with_remarks true) in
        let reference, candidate = load "motivation-loads" in
        let report = Pipeline.run ~config candidate in
        check_bool "degraded" true (report.Pipeline.degraded_regions >= 1);
        check_bool "budget remark" true
          (List.exists
             (fun r ->
               match r.Lslp_check.Remark.outcome with
               | Lslp_check.Remark.Budget_exhausted _ -> true
               | _ -> false)
             report.Pipeline.remarks);
        assert_sound ~reference ~candidate ());
    tc "graph-node cap degrades, stays sound" (fun () ->
        let budget = { Budget.unlimited with Budget.max_graph_nodes = 1 } in
        let config = Config.with_budget budget Config.lslp in
        let reference, candidate = load "motivation-multi" in
        let report = Pipeline.run ~config candidate in
        check_bool "degraded" true (report.Pipeline.degraded_regions >= 1);
        assert_sound ~reference ~candidate ());
    tc "region-step cap caps the work, stays sound" (fun () ->
        let budget = { Budget.unlimited with Budget.max_region_steps = 1 } in
        let config = Config.with_budget budget Config.lslp in
        let reference, candidate = load "453.boy-surface" in
        let _report = Pipeline.run ~config candidate in
        assert_sound ~reference ~candidate ());
    tc "default budget never fires on the catalog" (fun () ->
        List.iter
          (fun key ->
            let _, candidate = load key in
            let config = Config.with_budget Budget.default Config.lslp in
            let report = Pipeline.run ~config candidate in
            check_int (Fmt.str "%s: no degradation" key) 0
              report.Pipeline.degraded_regions)
          catalog_keys);
  ]

(* ---- reporting ----------------------------------------------------- *)

let report_tests =
  [
    tc "pp_report shows the degraded count and marker" (fun () ->
        let _, candidate = load "motivation-loads" in
        let report =
          Pipeline.run ~config:(config_with Inject.Graph_build) candidate
        in
        let s = Fmt.str "%a" Pipeline.pp_report report in
        check_bool "degraded visible" true (contains s "degraded"));
    tc "pp_report is unchanged on healthy runs" (fun () ->
        let _, candidate = load "motivation-loads" in
        let report = Pipeline.run ~config:Config.lslp candidate in
        let s = Fmt.str "%a" Pipeline.pp_report report in
        check_bool "no degraded chatter" false (contains s "degraded"));
    tc "degraded outcome renders in JSON remarks" (fun () ->
        let _, candidate = load "motivation-loads" in
        let config =
          Config.(
            lslp |> with_remarks true
            |> with_inject (inject_point Inject.Codegen))
        in
        let report = Pipeline.run ~config candidate in
        let json =
          Lslp_check.Remark.report_to_json ~config_name:"LSLP"
            ~func_name:"k" ~diagnostics:[] report.Pipeline.remarks
        in
        check_bool "mentions degraded" true (contains json "degraded"));
  ]

(* ---- differential fuzzer smoke ------------------------------------- *)

let fuzz_tests =
  [
    tc "fuzz: 60 pinned-seed cases, zero failures" (fun () ->
        let stats = Lslp_fuzz.Fuzz.run ~cases:60 ~seed:20260705 () in
        check_int "cases" 60 stats.Lslp_fuzz.Fuzz.cases;
        (match stats.Lslp_fuzz.Fuzz.failures with
        | [] -> ()
        | f :: _ ->
          Alcotest.failf "case %d failed: %s (%s)" f.Lslp_fuzz.Fuzz.case
            f.Lslp_fuzz.Fuzz.problem f.Lslp_fuzz.Fuzz.desc);
        check_bool "ok" true (Lslp_fuzz.Fuzz.ok stats));
    tc "fuzz: generation is deterministic per seed" (fun () ->
        let gen seed =
          let st = Random.State.make [| seed |] in
          List.init 10 (fun _ -> Lslp_fuzz.Gen.describe (Lslp_fuzz.Gen.generate st))
        in
        check_bool "same seed" true (gen 5 = gen 5);
        check_bool "different seed" true (gen 5 <> gen 6));
    tc "fuzz: forced faults everywhere, still zero failures" (fun () ->
        match Inject.parse "all:0.9:1" with
        | Error e -> Alcotest.fail e
        | Ok spec ->
          let stats =
            Lslp_fuzz.Fuzz.run ~cases:40 ~seed:7 ~inject_spec:spec ()
          in
          check_bool "ok" true (Lslp_fuzz.Fuzz.ok stats));
  ]

let suite =
  inject_tests @ transact_tests @ rollback_tests @ budget_tests
  @ report_tests @ fuzz_tests
