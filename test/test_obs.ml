(* The observability layer: registry arithmetic, percentile math, the
   flight-recorder ring bound, and the exporters.

   Everything in lib/obs is deterministic by construction (no clock, no
   ambient randomness), so these tests can pin exact values and assert
   byte-identical renders — the unit-level version of what
   `make metrics-check` gates end to end. *)

open Helpers
module Registry = Lslp_obs.Registry
module Flight = Lslp_obs.Flight
module Export = Lslp_obs.Export
module Json = Lslp_util.Json
module Pass_metrics = Lslp_telemetry.Pass_metrics
module Report = Lslp_telemetry.Report
module Config = Lslp_core.Config
module Pipeline = Lslp_core.Pipeline

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go k = k + m <= n && (String.sub s k m = sub || go (k + 1)) in
  m = 0 || go 0

(* ---- registry ------------------------------------------------------ *)

let registry_tests =
  [
    tc "counters add, gauges set, values read back" (fun () ->
        let r = Registry.create () in
        let c = Registry.counter r "jobs_total" in
        let g = Registry.gauge r "depth" in
        Registry.incr c;
        Registry.add c 4;
        Registry.set g 7;
        Registry.set g 3;
        check_int "counter" 5 (Registry.value c);
        match Registry.snapshot r with
        | [ _; { Registry.s_value = Registry.Gauge_v v; _ } ] ->
          check_int "gauge keeps last set" 3 v
        | _ -> Alcotest.fail "unexpected snapshot shape");
    tc "registration is idempotent per (name, labels)" (fun () ->
        let r = Registry.create () in
        let a = Registry.counter r ~labels:[ ("k", "v") ] "dup_total" in
        let b = Registry.counter r ~labels:[ ("k", "v") ] "dup_total" in
        let other = Registry.counter r ~labels:[ ("k", "w") ] "dup_total" in
        Registry.incr a;
        Registry.incr b;
        Registry.incr other;
        check_int "both handles hit one cell" 2 (Registry.value a);
        check_int "distinct labels stay distinct" 1 (Registry.value other);
        check_int "snapshot has two samples" 2
          (List.length (Registry.snapshot r)));
    tc "snapshot preserves registration order" (fun () ->
        let r = Registry.create () in
        ignore (Registry.counter r "first_total");
        ignore (Registry.gauge r "second");
        ignore (Registry.histogram r ~buckets:[| 1 |] "third");
        check
          Alcotest.(list string)
          "order"
          [ "first_total"; "second"; "third" ]
          (List.map
             (fun s -> s.Registry.s_name)
             (Registry.snapshot r)));
    tc "histogram buckets, sum, count, min, max" (fun () ->
        let r = Registry.create () in
        let h = Registry.histogram r ~buckets:[| 10; 1; 10; 100 |] "lat" in
        List.iter (Registry.observe h) [ 1; 5; 10; 11; 1000 ];
        match Registry.histogram_view r "lat" with
        | None -> Alcotest.fail "histogram not found"
        | Some v ->
          check
            Alcotest.(array int)
            "bounds sorted and deduplicated" [| 1; 10; 100 |]
            v.Registry.bounds;
          (* per-bucket: <=1, <=10, <=100, +Inf *)
          check
            Alcotest.(array int)
            "per-bucket counts" [| 1; 2; 1; 1 |] v.Registry.counts;
          check_int "sum" 1027 v.Registry.hsum;
          check_int "count" 5 v.Registry.hcount;
          check_int "min" 1 v.Registry.hmin;
          check_int "max" 1000 v.Registry.hmax);
    tc "percentiles: bucket bound, clamped to observed extremes" (fun () ->
        let r = Registry.create () in
        let h = Registry.histogram r ~buckets:[| 1; 2; 4; 8 |] "p" in
        (* 10 observations: 6x1, 3x3, 1x7 *)
        List.iter (Registry.observe h)
          [ 1; 1; 1; 1; 1; 1; 3; 3; 3; 7 ];
        let v = Option.get (Registry.histogram_view r "p") in
        check_int "p50 lands in the first bucket" 1
          (Registry.percentile v 0.5);
        check_int "p90 lands in the <=4 bucket" 4
          (Registry.percentile v 0.9);
        (* rank 10 falls in <=8, clamped to the observed max 7 *)
        check_int "p99 clamps to hmax" 7 (Registry.percentile v 0.99));
    tc "percentile of an empty histogram is 0" (fun () ->
        let r = Registry.create () in
        ignore (Registry.histogram r ~buckets:[| 1; 2 |] "empty");
        let v = Option.get (Registry.histogram_view r "empty") in
        check_int "p50" 0 (Registry.percentile v 0.5));
    tc "single-valued histogram is exact at every percentile" (fun () ->
        let r = Registry.create () in
        let h = Registry.histogram r ~buckets:[| 1; 64; 512 |] "one" in
        for _ = 1 to 20 do Registry.observe h 48 done;
        let v = Option.get (Registry.histogram_view r "one") in
        List.iter
          (fun q -> check_int (Fmt.str "p%.0f" (q *. 100.)) 48
              (Registry.percentile v q))
          [ 0.5; 0.95; 0.99; 1.0 ]);
  ]

(* ---- flight recorder ----------------------------------------------- *)

let flight_tests =
  [
    tc "ring keeps the newest cap events, counts drops" (fun () ->
        let f = Flight.create ~cap:4 () in
        for i = 0 to 6 do
          Flight.record f ~tick:i ~job:(Fmt.str "j%d" i) "enqueued"
        done;
        check_int "recorded" 7 (Flight.recorded f);
        check_int "dropped" 3 (Flight.dropped f);
        let evs = Flight.events f in
        check_int "window size" 4 (List.length evs);
        check
          Alcotest.(list int)
          "oldest first, newest kept" [ 3; 4; 5; 6 ]
          (List.map (fun e -> e.Flight.seq) evs));
    tc "defaults: attempt -1, seed 0, empty detail" (fun () ->
        let f = Flight.create ~cap:8 () in
        Flight.record f ~tick:2 ~job:"k" "shed";
        match Flight.events f with
        | [ e ] ->
          check_int "attempt" (-1) e.Flight.attempt;
          check_int "seed" 0 e.Flight.seed;
          check_string "detail" "" e.Flight.detail;
          check_string "kind" "shed" e.Flight.kind
        | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
    tc "to_jsonl: one parseable object per line, fields round-trip"
      (fun () ->
        let f = Flight.create ~cap:8 () in
        Flight.record f ~tick:1 ~job:"a" ~attempt:0 ~seed:99
          ~detail:"latency=3" "completed";
        Flight.record f ~tick:4 ~job:"b \"quoted\"" "crashed";
        let lines =
          String.split_on_char '\n' (String.trim (Flight.to_jsonl f))
        in
        check_int "two lines" 2 (List.length lines);
        List.iter
          (fun line ->
            match Json.of_string line with
            | Ok (Json.Obj fields) ->
              List.iter
                (fun key ->
                  check_bool (key ^ " present") true
                    (List.mem_assoc key fields))
                [ "seq"; "tick"; "event"; "job"; "attempt"; "seed";
                  "detail" ]
            | Ok _ -> Alcotest.fail "line is not an object"
            | Error e -> Alcotest.failf "unparseable line: %s" e)
          lines);
  ]

(* ---- exporters ----------------------------------------------------- *)

(* A small fixed registry every exporter test shares. *)
let sample_registry () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"Jobs done." "lslp_done_total" in
  let g = Registry.gauge r "lslp_depth" in
  let h =
    Registry.histogram r ~help:"Latency." ~buckets:[| 1; 4; 16 |]
      ~labels:[ ("pass", "cost") ] "lslp_lat"
  in
  Registry.add c 3;
  Registry.set g 2;
  List.iter (Registry.observe h) [ 1; 2; 5; 40 ];
  r

let export_tests =
  [
    tc "prometheus text round-trips through the project parser" (fun () ->
        let text = Export.prometheus (Registry.snapshot (sample_registry ())) in
        match Export.parse_prometheus text with
        | Error e -> Alcotest.failf "parse failed: %s" e
        | Ok samples ->
          let v ?labels name =
            match Export.sample_value samples ?labels name with
            | Some x -> int_of_float x
            | None -> Alcotest.failf "sample %s missing" name
          in
          check_int "counter" 3 (v "lslp_done_total");
          check_int "gauge" 2 (v "lslp_depth");
          check_int "histogram count" 4
            (v ~labels:[ ("pass", "cost") ] "lslp_lat_count");
          check_int "histogram sum" 48
            (v ~labels:[ ("pass", "cost") ] "lslp_lat_sum");
          (* buckets are cumulative *)
          check_int "le=1" 1
            (v ~labels:[ ("pass", "cost"); ("le", "1") ] "lslp_lat_bucket");
          check_int "le=4" 2
            (v ~labels:[ ("pass", "cost"); ("le", "4") ] "lslp_lat_bucket");
          check_int "le=16" 3
            (v ~labels:[ ("pass", "cost"); ("le", "16") ] "lslp_lat_bucket");
          check_int "le=+Inf" 4
            (v ~labels:[ ("pass", "cost"); ("le", "+Inf") ]
               "lslp_lat_bucket"));
    tc "prometheus text carries HELP and TYPE per family" (fun () ->
        let text = Export.prometheus (Registry.snapshot (sample_registry ())) in
        List.iter
          (fun line -> check_bool line true (contains text line))
          [
            "# HELP lslp_done_total Jobs done.";
            "# TYPE lslp_done_total counter";
            "# TYPE lslp_depth gauge";
            "# TYPE lslp_lat histogram";
          ]);
    tc "parse_prometheus rejects garbage with a line number" (fun () ->
        match Export.parse_prometheus "ok_total 1\nnot a metric!!\n" with
        | Ok _ -> Alcotest.fail "garbage accepted"
        | Error e -> check_bool "names line 2" true (contains e "line 2"));
    tc "json document: schema, histogram percentiles" (fun () ->
        let doc = Export.json (Registry.snapshot (sample_registry ())) in
        let text = Json.to_string doc in
        List.iter
          (fun key -> check_bool key true (contains text key))
          [
            "\"schema\":\"lslp-metrics/1\""; "\"lslp_done_total\"";
            "\"p50\""; "\"p95\""; "\"p99\""; "\"sum\":48"; "\"count\":4";
          ]);
    tc "folded stacks render sorted with counts" (fun () ->
        let text =
          Export.folded [ ("b;y", 2); ("a;x", 1); ("a;z", 3) ]
        in
        check_string "sorted lines" "a;x 1\na;z 3\nb;y 2\n" text);
    tc "renders are deterministic" (fun () ->
        let snap = Registry.snapshot (sample_registry ()) in
        check_string "prometheus" (Export.prometheus snap)
          (Export.prometheus snap);
        check_string "json"
          (Json.to_string (Export.json snap))
          (Json.to_string (Export.json snap));
        check_string "table"
          (Fmt.str "%a" Export.pp_table snap)
          (Fmt.str "%a" Export.pp_table snap));
  ]

(* ---- pipeline pass metrics ----------------------------------------- *)

let run_observed kernel_key =
  let registry = Registry.create () in
  let pm = Pass_metrics.create ~root:"test" registry in
  let f = Lslp_kernels.Catalog.compile_key kernel_key in
  ignore (Lslp_frontend.Unroll.run ~factor:4 f);
  let report = Pipeline.run ~metrics:pm ~config:Config.lslp f in
  (registry, pm, report)

let pass_metrics_tests =
  [
    tc "observe mirrors the report's counters into the registry" (fun () ->
        let registry, _, report = run_observed "453.vsumsqr" in
        let total = Report.total_counters report.Pipeline.telemetry in
        List.iter
          (fun (name, proj) ->
            let metric = Fmt.str "lslp_pipeline_%s_total" name in
            match
              List.find_opt
                (fun s -> s.Registry.s_name = metric)
                (Registry.snapshot registry)
            with
            | Some { Registry.s_value = Registry.Counter_v v; _ } ->
              check_int metric (proj total) v
            | _ -> Alcotest.failf "metric %s missing" metric)
          Lslp_telemetry.Probe.counter_fields);
    tc "one run observes one job-steps sample, every known pass present"
      (fun () ->
        let registry, _, _ = run_observed "453.vsumsqr" in
        (match Registry.histogram_view registry "lslp_job_pass_steps" with
         | Some v -> check_int "job histogram count" 1 v.Registry.hcount
         | None -> Alcotest.fail "job steps histogram missing");
        List.iter
          (fun pass ->
            check_bool (pass ^ " pre-registered") true
              (Registry.histogram_view registry
                 ~labels:[ ("pass", pass) ] "lslp_pass_steps"
               <> None))
          Pass_metrics.known_passes);
    tc "folded stacks start at the root and include pass frames" (fun () ->
        let _, pm, _ = run_observed "453.vsumsqr" in
        let stacks = Pass_metrics.stacks pm in
        check_bool "stacks accumulated" true (stacks <> []);
        List.iter
          (fun (key, steps) ->
            check_bool (key ^ " rooted") true
              (String.length key > 5 && String.sub key 0 5 = "test;");
            check_bool (key ^ " positive") true (steps > 0))
          stacks);
    tc "observing the same kernel twice yields identical exposition"
      (fun () ->
        let dump key =
          let registry, _, _ = run_observed key in
          Export.prometheus (Registry.snapshot registry)
        in
        check_string "byte-identical dumps" (dump "453.vsumsqr")
          (dump "453.vsumsqr"));
  ]

let suite =
  registry_tests @ flight_tests @ export_tests @ pass_metrics_tests
