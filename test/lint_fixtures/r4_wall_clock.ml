(* R4 fixture: wall-clock reads outside the telemetry/trace modules. *)

let now () = Unix.gettimeofday ()

let cpu_seconds () = Sys.time ()
