(* R1 fixture: module-level mutable state, shared by every domain. *)

let hits = ref 0
let table = Hashtbl.create 16

(* per-call state is fine: the allocation happens under a [fun] *)
let fresh_buffer () = Buffer.create 64

(* Atomic is the sanctioned global and is not flagged *)
let generation = Atomic.make 0

let bump () =
  incr hits;
  Atomic.incr generation;
  Hashtbl.replace table !hits (Buffer.contents (fresh_buffer ()))
