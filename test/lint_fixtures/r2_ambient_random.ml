(* R2 fixture: ambient Random calls vs an explicit Random.State.t. *)

let roll () = Random.int 6

let seed_everything () = Random.self_init ()

(* explicit state threaded by the caller is fine *)
let ok st = Random.State.int st 6
