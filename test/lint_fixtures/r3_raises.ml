(* R3 fixture: raising primitives vs typed errors. *)

exception Bad_lane of int

let f () = failwith "nope"

let g x = if x < 0 then invalid_arg "g"

let h () = raise Not_found

(* a typed exception is fine *)
let k () = raise (Bad_lane 3)

(* a re-raise of a caught exception is fine *)
let guarded thunk = try thunk () with e -> raise e
