(* A deliberate R1 violation carrying a committed waiver (see
   fixtures.waivers): the memo table is written once at module init. *)

let memo = Hashtbl.create 8

let lookup k = Hashtbl.find_opt memo k
