(* The lslp-lint rule registry against the seeded fixture files.

   Each fixture under lint_fixtures/ violates exactly one rule; the
   tests pin the exact (rule, line, ident) triples so a rule that starts
   over- or under-matching fails loudly.  The waiver machinery is
   exercised both ways: a matching entry waives, a non-matching entry is
   reported stale. *)

module Driver = Lslp_lint.Driver
module Finding = Lslp_lint.Finding
module Rules = Lslp_lint.Rules
module Waiver = Lslp_lint.Waiver

let tc = Helpers.tc
let check_int = Helpers.check_int

let triple f = (f.Finding.rule, f.Finding.line, f.Finding.ident)

let check_findings name expected path =
  let r = Driver.run [ "lint_fixtures/" ^ path ] in
  check_int (name ^ ": no parse errors") 0
    (List.length r.Driver.parse_errors);
  Alcotest.(check (list (triple string int string)))
    name expected
    (List.map triple r.Driver.unwaived)

let r1 () =
  check_findings "r1" [ ("R1", 3, "hits"); ("R1", 4, "table") ]
    "r1_global_ref.ml";
  (* column is the start of the creating expression *)
  let r = Driver.run [ "lint_fixtures/r1_global_ref.ml" ] in
  Alcotest.(check (list int))
    "r1 columns" [ 11; 12 ]
    (List.map (fun f -> f.Finding.col) r.Driver.unwaived)

let r2 () =
  check_findings "r2"
    [ ("R2", 3, "Random.int"); ("R2", 5, "Random.self_init") ]
    "r2_ambient_random.ml"

let r3 () =
  check_findings "r3"
    [ ("R3", 5, "failwith"); ("R3", 7, "invalid_arg"); ("R3", 9, "Not_found") ]
    "r3_raises.ml"

let r4 () =
  check_findings "r4"
    [ ("R4", 3, "Unix.gettimeofday"); ("R4", 5, "Sys.time") ]
    "r4_wall_clock.ml"

let waived () =
  (* without the waiver file the fixture is an ordinary finding *)
  check_findings "unwaived" [ ("R1", 4, "memo") ] "waived_ok.ml";
  let waivers =
    match Waiver.load "lint_fixtures/fixtures.waivers" with
    | Ok ws -> ws
    | Error e -> Alcotest.fail e
  in
  let r = Driver.run ~waivers [ "lint_fixtures/waived_ok.ml" ] in
  check_int "waived" 1 (List.length r.Driver.waived);
  check_int "unwaived" 0 (List.length r.Driver.unwaived);
  check_int "stale" 0 (List.length r.Driver.stale);
  Alcotest.(check bool) "ok" true (Driver.ok ~check_waivers:true r)

let whole_dir () =
  let waivers =
    match Waiver.load "lint_fixtures/fixtures.waivers" with
    | Ok ws -> ws
    | Error e -> Alcotest.fail e
  in
  let r = Driver.run ~waivers [ "lint_fixtures" ] in
  check_int "ml files found" 5 (List.length r.Driver.files);
  check_int "waived" 1 (List.length r.Driver.waived);
  check_int "unwaived" 9 (List.length r.Driver.unwaived);
  check_int "stale" 0 (List.length r.Driver.stale);
  Alcotest.(check bool) "seeded violations fail the run" false
    (Driver.ok ~check_waivers:true r);
  (* every path-independent rule fires somewhere in the fixture set; R5
     is gated on lib/core//lib/ir paths, exercised in [r5_hot_path] *)
  Alcotest.(check (list (pair string int)))
    "findings by rule"
    [ ("R1", 3); ("R2", 2); ("R3", 3); ("R4", 2); ("R5", 0) ]
    (Driver.findings_by_rule r)

let rule_filter () =
  let r = Driver.run ~rules:[ "R3" ] [ "lint_fixtures" ] in
  Alcotest.(check bool) "only R3 findings" true
    (List.for_all (fun f -> f.Finding.rule = "R3") r.Driver.unwaived);
  check_int "three R3 sites" 3 (List.length r.Driver.unwaived);
  (* slugs resolve like ids *)
  let r' = Driver.run ~rules:[ "raise-primitives" ] [ "lint_fixtures" ] in
  check_int "slug selects the same rule" 3 (List.length r'.Driver.unwaived)

let stale () =
  let entries =
    match
      Waiver.parse ~file:"w"
        "R2 lint_fixtures/waived_ok.ml Random.int -- never fires"
    with
    | Ok es -> es
    | Error e -> Alcotest.fail e
  in
  let r = Driver.run ~waivers:entries [ "lint_fixtures/waived_ok.ml" ] in
  check_int "entry matched nothing" 1 (List.length r.Driver.stale);
  Alcotest.(check bool) "check-waivers fails on stale" false
    (Driver.ok ~check_waivers:true r)

let waiver_parse () =
  (match Waiver.parse ~file:"w" "R1 foo.ml x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an entry without a justification");
  (match Waiver.parse ~file:"w" "R9 foo.ml x -- hmm" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown rule id");
  match Waiver.parse ~file:"w" "# comment\n\nR1 a.ml * -- fine\n" with
  | Ok [ e ] ->
    Helpers.check_string "wildcard ident" "*" e.Waiver.w_ident;
    check_int "line number recorded" 3 e.Waiver.w_lineno
  | Ok _ -> Alcotest.fail "expected exactly one entry"
  | Error e -> Alcotest.fail e

let not_flagged () =
  let count src =
    match Driver.lint_source ~file:"inline.ml" src with
    | Ok fs -> List.length fs
    | Error e -> Alcotest.fail e
  in
  check_int "ref under fun is per-call state" 0 (count "let mk () = ref 0");
  check_int "Atomic.make is the sanctioned global" 0
    (count "let g = Atomic.make 0");
  check_int "Stdlib-qualified creation still caught" 1
    (count "let t = Stdlib.Hashtbl.create 4");
  check_int "submodule globals are module-level too" 1
    (count "module M = struct let c = ref 0 end");
  check_int "Random.State is explicit" 0
    (count "let ok st = Random.State.int st 6");
  check_int "typed raise is fine" 0
    (count "exception E of int\n\nlet f () = raise (E 1)");
  check_int "re-raise of a variable is fine" 0
    (count "let g f = try f () with e -> raise e");
  match Driver.lint_source ~file:"bad.ml" "let = 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "syntax error should not lint clean"

(* R5 is path-gated: the same source is a finding inside a hot-path
   module and silent everywhere else. *)
let r5_hot_path () =
  let count file src =
    match Driver.lint_source ~file src with
    | Ok fs ->
      List.length (List.filter (fun f -> f.Finding.rule = "R5") fs)
    | Error e -> Alcotest.fail e
  in
  let src = "let f tbl k = Hashtbl.create 4, List.assoc_opt k tbl" in
  check_int "flagged in lib/core" 2 (count "lib/core/hot.ml" src);
  check_int "flagged in lib/ir" 2 (count "lib/ir/hot.ml" src);
  check_int "silent outside the hot path" 0 (count "lib/check/cold.ml" src);
  check_int "Int_table is the sanctioned structure" 0
    (count "lib/core/hot.ml" "let t = fun () -> Lslp_util.Int_table.create 8")

let registry () =
  check_int "five rules" 5 (List.length Rules.all);
  Alcotest.(check bool) "find by id" true (Rules.find "R1" <> None);
  Alcotest.(check bool) "find by slug" true
    (Rules.find "wall-clock" <> None);
  Alcotest.(check bool) "unknown key" true (Rules.find "R9" = None)

let suite =
  [
    tc "r1 global mutable state" r1;
    tc "r2 ambient random" r2;
    tc "r3 raise primitives" r3;
    tc "r4 wall clock" r4;
    tc "waiver applies" waived;
    tc "whole fixture dir" whole_dir;
    tc "rule filter" rule_filter;
    tc "stale waiver detected" stale;
    tc "waiver parsing" waiver_parse;
    tc "sanctioned patterns not flagged" not_flagged;
    tc "r5 boxed tables path-gated" r5_hot_path;
    tc "registry lookup" registry;
  ]
