(* Cost-evaluation tests.  The crown jewels are the paper's worked examples:
   Figures 2, 3 and 4 print exact total costs for SLP and LSLP, and this
   implementation reproduces every one of them. *)

open Lslp_ir
open Lslp_core
open Helpers

let graph_cost key config =
  let f = kernel key in
  let seed = List.hd (Seeds.collect config (Func.entry f)) in
  let graph, _ = Graph_builder.build config (Func.entry f) seed in
  (Cost.evaluate config graph (Func.entry f)).Cost.total

let paper_figures =
  [
    tc "figure 2: SLP graph costs 0 (not profitable)" (fun () ->
        check_int "SLP" 0 (graph_cost "motivation-loads" Config.slp));
    tc "figure 2: LSLP graph costs -6" (fun () ->
        check_int "LSLP" (-6) (graph_cost "motivation-loads" Config.lslp));
    tc "figure 3: SLP graph costs +4" (fun () ->
        check_int "SLP" 4 (graph_cost "motivation-opcodes" Config.slp));
    tc "figure 3: LSLP graph costs -2" (fun () ->
        check_int "LSLP" (-2) (graph_cost "motivation-opcodes" Config.lslp));
    tc "figure 4: SLP graph costs -2 (partial vectorization)" (fun () ->
        check_int "SLP" (-2) (graph_cost "motivation-multi" Config.slp));
    tc "figure 4: LSLP graph costs -10 (full vectorization)" (fun () ->
        check_int "LSLP" (-10) (graph_cost "motivation-multi" Config.lslp));
    tc "SLP-NR matches SLP on figure 2 (rotation does not help)" (fun () ->
        check_int "SLP-NR" 0 (graph_cost "motivation-loads" Config.slp_nr));
  ]

let unit_costs =
  [
    tc "bundle_cost of a 2-wide ALU group is -1" (fun () ->
        let f = kernel "motivation-loads" in
        let ands =
          Block.find_all (fun i -> Instr.binop i = Some Opcode.And) (Func.entry f)
        in
        check_int "-1" (-1)
          (Cost.bundle_cost Lslp_costmodel.Model.skylake_avx2
             (Array.of_list ands)));
    tc "store group of 4 saves 3" (fun () ->
        let f = kernel "453.calc-z3" in
        let stores = Block.find_all Instr.is_store (Func.entry f) in
        check_int "-3" (-3)
          (Cost.bundle_cost Lslp_costmodel.Model.skylake_avx2
             (Array.of_list stores)));
    tc "external users add extract cost" (fun () ->
        (* the loads feeding the vector code are also used by a scalar
           store elsewhere -> one extract per externally-used lane value *)
        let f = compile {|
kernel k(f64 A[], f64 R[], f64 S[], i64 i) {
  f64 x0 = A[i+0];
  f64 x1 = A[i+1];
  R[i+0] = x0 * 2.0;
  R[i+1] = x1 * 2.0;
  S[i+4] = x0;
}
|} in
        let seed =
          List.find (fun (s : Seeds.seed) ->
              match Instr.address s.(0) with
              | Some a -> String.equal a.Instr.base "R"
              | None -> false)
            (Seeds.collect Config.lslp (Func.entry f))
        in
        let graph, _ = Graph_builder.build Config.lslp (Func.entry f) seed in
        let summary = Cost.evaluate Config.lslp graph (Func.entry f) in
        check_int "one extract" 1 summary.Cost.extract_cost);
    tc "profitable iff below threshold" (fun () ->
        let summary = { Cost.per_node = []; extract_cost = 0; total = -1 } in
        check_bool "default" true (Cost.profitable Config.lslp summary);
        check_bool "zero not profitable" false
          (Cost.profitable Config.lslp { summary with Cost.total = 0 });
        check_bool "higher threshold accepts zero" true
          (Cost.profitable (Config.with_threshold 1 Config.lslp)
             { summary with Cost.total = 0 }));
    tc "multi-node internal groups are each costed" (fun () ->
        let f = kernel "motivation-multi" in
        let seed = List.hd (Seeds.collect Config.lslp (Func.entry f)) in
        let graph, _ = Graph_builder.build Config.lslp (Func.entry f) seed in
        let summary = Cost.evaluate Config.lslp graph (Func.entry f) in
        let multi_rows =
          List.filter
            (fun (r : Cost.node_cost) ->
              String.length r.description > 9
              && String.equal (String.sub r.description 0 9) "multi:and")
            summary.Cost.per_node
        in
        check_int "two & rows" 2 (List.length multi_rows));
    tc "gather rows carry the aggregation cost" (fun () ->
        let f = kernel "motivation-opcodes" in
        let seed = List.hd (Seeds.collect Config.lslp (Func.entry f)) in
        let graph, _ = Graph_builder.build Config.lslp (Func.entry f) seed in
        let summary = Cost.evaluate Config.lslp graph (Func.entry f) in
        let gathers =
          List.filter
            (fun (r : Cost.node_cost) ->
              String.length r.description > 6
              && String.equal (String.sub r.description 0 6) "gather")
            summary.Cost.per_node
        in
        (* figure 3(d): two +2 load gathers; the four constant columns
           ([0x11,0x14], [0x13,0x12], [1,4], [2,3]) gather for free *)
        check_int "six gathers" 6 (List.length gathers);
        check_int "sum +4" 4
          (List.fold_left (fun a (r : Cost.node_cost) -> a + r.cost) 0 gathers));
  ]

let suite = paper_figures @ unit_costs
