(* Branching kernels and masked lanes.

   Three layers of coverage for if-conversion:

   - the frontend: `if`/`else` flattens into predicated straight-line IR
     (one compare per condition, the else mask from the negated compare on
     the SAME operand values, masks composing with And under nesting,
     branch-local declarations merged with a select at the join);
   - the scalar semantics laws the masked instructions must satisfy
     (select picks by lane, masked stores write exactly the live lanes,
     masked loads round-trip and never touch masked-off memory) — stated
     against the interpreter as ground truth, QCheck-driven where the law
     quantifies over masks and values;
   - the pipeline: the cond.* catalog kernels vectorize, validate cleanly
     and stay observationally equivalent, and random branching programs
     from the fuzzer's Cond shape survive end to end. *)

open Lslp_ir
open Lslp_core
open Lslp_interp
open Helpers

let is_masked_store (i : Instr.t) =
  match i.Instr.kind with Instr.Masked_store _ -> true | _ -> false

let is_masked_load (i : Instr.t) =
  match i.Instr.kind with Instr.Masked_load _ -> true | _ -> false

let is_cmp (i : Instr.t) =
  match i.Instr.kind with Instr.Cmp _ -> true | _ -> false

let is_select (i : Instr.t) =
  match i.Instr.kind with Instr.Select _ -> true | _ -> false

let cmp_ops f =
  Func.fold_instrs
    (fun acc (i : Instr.t) ->
      match i.Instr.kind with Instr.Cmp (op, _, _) -> op :: acc | _ -> acc)
    [] f

(* ---- frontend: the shape if-conversion produces -------------------- *)

let abs_src =
  "kernel k(f64 x[], f64 y[], i64 i) {\n\
  \  if (x[i] < 0.0) { y[i] = 0.0 - x[i]; } else { y[i] = x[i]; }\n\
   }"

let test_else_negates_compare () =
  let f = compile abs_src in
  check_int "two masked stores" 2 (count_insts is_masked_store f);
  check_int "no unmasked store" 0
    (count_insts (fun i -> Instr.is_store i && not (is_masked_store i)) f);
  match List.sort compare (cmp_ops f) with
  | [ a; b ] ->
    check_bool "then-compare and its negation" true
      ((a = Opcode.Lt && b = Opcode.Ge) || (a = Opcode.Ge && b = Opcode.Lt))
  | ops -> Alcotest.failf "expected 2 compares, got %d" (List.length ops)

let test_no_else_single_mask () =
  let f =
    compile
      "kernel k(i64 g[], f64 y[], i64 i) {\n\
      \  if (g[i] > 0) { y[i] = 2.5; }\n\
       }"
  in
  check_int "one compare" 1 (count_insts is_cmp f);
  check_int "one masked store" 1 (count_insts is_masked_store f)

let test_branch_loads_masked () =
  let f = compile abs_src in
  check_bool "loads under the branch are masked" true
    (count_insts is_masked_load f >= 1);
  (* every masked load carries a zero passthrough: the lane's value is
     discarded by the guarded store anyway *)
  Func.iter_instrs
    (fun (i : Instr.t) ->
      match i.Instr.kind with
      | Instr.Masked_load (_, _, p) ->
        check_bool "zero passthrough" true
          (Instr.equal_value p (Instr.Const (Instr.Cfloat 0.0)))
      | _ -> ())
    f

let test_nested_masks_and () =
  let f =
    compile
      "kernel k(f64 a[], f64 b[], f64 r[], i64 i) {\n\
      \  if (a[i] < 1.0) {\n\
      \    if (b[i] < 2.0) { r[i] = 3.0; }\n\
      \  }\n\
       }"
  in
  let ands =
    count_insts
      (fun (i : Instr.t) ->
        Instr.binop i = Some Opcode.And
        && Types.equal i.Instr.ty (Types.Scalar Types.I1))
      f
  in
  check_int "inner mask = outer AND inner compare" 1 ands;
  check_int "one masked store" 1 (count_insts is_masked_store f)

let join_src =
  "kernel k(f64 x[], f64 y[], i64 i) {\n\
  \  if (x[i] < 0.5) { f64 t = x[i] * 2.0; } else { f64 t = x[i] + 1.0; }\n\
  \  y[i] = t;\n\
   }"

let test_join_select () =
  let f = compile join_src in
  check_bool "join merges the local with a select" true
    (count_insts is_select f >= 1);
  (* semantics of the merge: x = 2.0 takes the else path, t = 3.0 *)
  let mem = Memory.create () in
  Memory.set_float mem "x" [| 2.0 |];
  Memory.set_float mem "y" [| 0.0 |];
  ignore (Eval.run f ~int_args:[ ("i", 0L) ] ~float_args:[] ~mem);
  check_bool "else value selected" true (Memory.read_float mem "y" 0 = 3.0);
  Memory.set_float mem "x" [| -1.0 |];
  ignore (Eval.run f ~int_args:[ ("i", 0L) ] ~float_args:[] ~mem);
  check_bool "then value selected" true (Memory.read_float mem "y" 0 = -2.0)

let lower_err src =
  try
    ignore (compile src);
    None
  with Lslp_frontend.Lower.Error (msg, _) -> Some msg

let parse_rejects src =
  try
    ignore (compile src);
    false
  with Lslp_frontend.Parser.Error _ -> true

let test_loop_under_branch_rejected () =
  match
    lower_err
      "kernel k(f64 g[], f64 y[]) {\n\
      \  if (g[0] < 0.0) {\n\
      \    for (i64 i = 0; i < 4; i += 1) { y[i] = 1.0; }\n\
      \  }\n\
       }"
  with
  | Some msg -> check_bool "names the restriction" true (String.length msg > 0)
  | None -> Alcotest.fail "loop under a branch lowered"

let test_condition_must_compare () =
  check_bool "bare value condition rejected" true
    (parse_rejects
       "kernel k(f64 x[], f64 y[], i64 i) { if (x[i]) { y[i] = 1.0; } }")

let test_compare_not_a_value () =
  check_bool "comparison as a value rejected" true
    (parse_rejects
       "kernel k(f64 x[], f64 y[], i64 i) { y[i] = (x[i] < 1.0); }")

let test_join_type_mismatch_rejected () =
  match
    lower_err
      "kernel k(f64 x[], f64 y[], i64 i) {\n\
      \  if (x[i] < 0.5) { f64 t = 1.0; } else { i64 t = 1; }\n\
      \  y[i] = 1.0;\n\
       }"
  with
  | Some _ -> ()
  | None -> Alcotest.fail "mismatched join types lowered"

(* ---- scalar semantics laws (interpreter as ground truth) ----------- *)

(* Build a 4-lane straight-line function over a guard array G: per lane,
   [body] receives the builder, the lane index and the lane's i1 mask
   (G[lane] > 0).  Run it on [masks]-derived guard data and return the
   memory. *)
let run_masked_lanes ~masks ~setup body =
  let b =
    Builder.create ~name:"law"
      ~args:
        [ ("G", Instr.Array_arg Types.F64); ("S", Instr.Array_arg Types.F64);
          ("R", Instr.Array_arg Types.F64); ("i", Instr.Int_arg) ]
  in
  for lane = 0 to Array.length masks - 1 do
    let g = Builder.load b ~base:"G" (Builder.idx lane) in
    let m = Builder.cmp b Opcode.Gt g (Builder.fconst 0.0) in
    body b lane m
  done;
  let f = Builder.func b in
  Verifier.verify_exn f;
  let mem = Memory.create () in
  Memory.set_float mem "G"
    (Array.map (fun on -> if on then 1.0 else -1.0) masks);
  setup mem;
  ignore (Eval.run f ~int_args:[ ("i", 0L) ] ~float_args:[] ~mem);
  mem

let gen_lane_data =
  QCheck2.Gen.(
    array_size (return 4)
      (pair bool (pair (float_bound_exclusive 8.0) (float_bound_exclusive 8.0))))

let print_lane_data d =
  Fmt.str "%a"
    Fmt.(Dump.array (Dump.pair Fmt.bool (Dump.pair Fmt.float Fmt.float)))
    d

let qcheck_select_law =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"select(m, a, b) yields a on live lanes and b on dead ones"
       ~print:print_lane_data gen_lane_data
       (fun data ->
         let masks = Array.map fst data in
         let mem =
           run_masked_lanes ~masks
             ~setup:(fun mem -> Memory.set_float mem "R" (Array.make 4 0.0))
             (fun b lane m ->
               let a, c = snd data.(lane) in
               let s =
                 Builder.select b m (Builder.fconst a) (Builder.fconst c)
               in
               Builder.store b ~base:"R" (Builder.idx lane) s)
         in
         Array.for_all Fun.id
           (Array.mapi
              (fun k (on, (a, c)) ->
                Memory.read_float mem "R" k = if on then a else c)
              data)))

let qcheck_masked_store_law =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"a masked store writes exactly the live lanes"
       ~print:print_lane_data gen_lane_data
       (fun data ->
         let masks = Array.map fst data in
         let mem =
           run_masked_lanes ~masks
             ~setup:(fun mem -> Memory.set_float mem "R" (Array.make 4 9.0))
             (fun b lane m ->
               let v, _ = snd data.(lane) in
               Builder.masked_store b ~base:"R" (Builder.idx lane)
                 (Builder.fconst v) ~mask:m)
         in
         Array.for_all Fun.id
           (Array.mapi
              (fun k (on, (v, _)) ->
                Memory.read_float mem "R" k = if on then v else 9.0)
              data)))

let qcheck_masked_roundtrip_law =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"masked load after masked store round-trips; dead lanes see \
              the passthrough"
       ~print:print_lane_data gen_lane_data
       (fun data ->
         let masks = Array.map fst data in
         let mem =
           run_masked_lanes ~masks
             ~setup:(fun mem ->
               Memory.set_float mem "S" (Array.make 4 0.0);
               Memory.set_float mem "R" (Array.make 4 0.0))
             (fun b lane m ->
               let v, _ = snd data.(lane) in
               Builder.masked_store b ~base:"S" (Builder.idx lane)
                 (Builder.fconst v) ~mask:m;
               let back =
                 Builder.masked_load b ~base:"S" (Builder.idx lane) ~mask:m
                   ~passthrough:(Builder.fconst 7.5)
               in
               Builder.store b ~base:"R" (Builder.idx lane) back)
         in
         Array.for_all Fun.id
           (Array.mapi
              (fun k (on, (v, _)) ->
                Memory.read_float mem "R" k = if on then v else 7.5)
              data)))

let test_all_false_store_noop () =
  let f =
    compile
      "kernel k(f64 x[], f64 y[], i64 i) {\n\
      \  if (x[i] > 1000000.0) { y[i] = 5.0; }\n\
       }"
  in
  let mem = Memory.create () in
  Memory.set_float mem "x" [| 1.0 |];
  Memory.set_float mem "y" [| 3.0 |];
  ignore (Eval.run f ~int_args:[ ("i", 0L) ] ~float_args:[] ~mem);
  check_bool "memory untouched" true (Memory.read_float mem "y" 0 = 3.0)

let test_masked_off_not_bounds_checked () =
  (* the guard may be exactly what keeps the access in range: a dead lane
     must not even be bounds-checked *)
  let b =
    Builder.create ~name:"oob"
      ~args:
        [ ("G", Instr.Array_arg Types.F64); ("R", Instr.Array_arg Types.F64);
          ("i", Instr.Int_arg) ]
  in
  let g = Builder.load b ~base:"G" (Builder.idx 0) in
  let m = Builder.cmp b Opcode.Gt g (Builder.fconst 0.0) in
  let v =
    Builder.masked_load b ~base:"G" (Builder.idx 100) ~mask:m
      ~passthrough:(Builder.fconst 7.25)
  in
  Builder.masked_store b ~base:"G" (Builder.idx 100) v ~mask:m;
  Builder.store b ~base:"R" (Builder.idx 0) v;
  let f = Builder.func b in
  Verifier.verify_exn f;
  let mem = Memory.create () in
  Memory.set_float mem "G" [| -1.0 |];
  (* guard false: lane dead *)
  Memory.set_float mem "R" [| 0.0 |];
  ignore (Eval.run f ~int_args:[ ("i", 0L) ] ~float_args:[] ~mem);
  check_bool "passthrough observed, no fault" true
    (Memory.read_float mem "R" 0 = 7.25)

let test_nan_guard_contract () =
  (* the fast-math contract behind negate_cmp: a NaN guard makes the then
     AND the else predicate false, so an if-converted branch pair writes
     nothing where a real branch would have taken the else path *)
  let f = compile abs_src in
  let mem = Memory.create () in
  Memory.set_float mem "x" [| Float.nan |];
  Memory.set_float mem "y" [| 42.0 |];
  ignore (Eval.run f ~int_args:[ ("i", 0L) ] ~float_args:[] ~mem);
  check_bool "both branches masked off" true
    (Memory.read_float mem "y" 0 = 42.0)

let test_always_true_guard_is_unmasked () =
  let guarded =
    compile
      "kernel k(f64 x[], f64 y[], i64 i) {\n\
      \  if (x[i] > 0.0 - 1000000.0) { y[i] = x[i] * 2.0 + 1.0; }\n\
       }"
  in
  let unmasked =
    compile "kernel k(f64 x[], f64 y[], i64 i) { y[i] = x[i] * 2.0 + 1.0; }"
  in
  (* the oracle draws f64 inputs from [-8, 8], so the guard is always live *)
  List.iter
    (fun seed ->
      let o =
        Oracle.compare_runs ~seed ~reference:unmasked ~candidate:guarded ()
      in
      check_int "identical memories" 0 (List.length o.Oracle.mismatches))
    [ 1; 7; 42 ]

(* ---- post-pipeline: the vectorizer preserves the laws -------------- *)

(* The cond.* kernels are counted loops; region formation (unroll) is the
   CLI's job, so tests replicate it before running the pipeline. *)
let compile_unrolled (k : Lslp_kernels.Catalog.kernel) =
  let f = Lslp_kernels.Catalog.compile k in
  ignore (Lslp_frontend.Unroll.run ~factor:4 f);
  f

let test_cond_kernels_vectorize () =
  List.iter
    (fun (k : Lslp_kernels.Catalog.kernel) ->
      check_bool
        (Fmt.str "%s vectorizes" k.key)
        true
        (vectorized_regions Config.lslp (compile_unrolled k) >= 1))
    Lslp_kernels.Catalog.conds

let test_two_masked_streams () =
  (* complementary then/else stores hit the same addresses; the seeder's
     occurrence streams must vectorize them as two independent runs *)
  let f = kernel "cond.abs" in
  ignore (Lslp_frontend.Unroll.run ~factor:4 f);
  let report, g = vectorize f in
  check_int "both streams vectorized" 2 report.Pipeline.vectorized_regions;
  let wide_masked_stores =
    count_insts
      (fun (i : Instr.t) ->
        match i.Instr.kind with
        | Instr.Masked_store (a, _, _) -> a.Instr.access_lanes > 1
        | _ -> false)
      g
  in
  check_bool "wide masked stores for then and else" true
    (wide_masked_stores >= 2);
  assert_sound ~reference:f ~candidate:g ()

let test_cond_kernels_sound () =
  List.iter
    (fun (k : Lslp_kernels.Catalog.kernel) ->
      List.iter
        (fun config ->
          let config = Config.with_validate true config in
          let f = compile_unrolled k in
          let report, g = Pipeline.run_cloned ~config f in
          (match report.Pipeline.diagnostics with
           | [] -> ()
           | ds ->
             Alcotest.failf "%s under %s: %d diagnostic(s)" k.key
               config.Config.name (List.length ds));
          assert_sound ~reference:f ~candidate:g ())
        [ Config.slp_nr; Config.slp; Config.lslp ])
    Lslp_kernels.Catalog.conds

let test_all_false_region_noop_after_vectorization () =
  let f =
    compile
      "kernel dead(f64 x[], f64 y[]) {\n\
      \  for (i64 i = 0; i < 8; i += 1) {\n\
      \    if (x[i] > 1000000.0) { y[i] = 1.0; }\n\
      \  }\n\
       }"
  in
  ignore (Lslp_frontend.Unroll.run ~factor:4 f);
  let _, g = vectorize f in
  let run h =
    let mem = Memory.create () in
    Memory.set_float mem "x" (Array.init 8 (fun k -> float_of_int k));
    Memory.set_float mem "y" (Array.make 8 3.25);
    ignore (Eval.run h ~int_args:[] ~float_args:[] ~mem);
    Array.init 8 (fun k -> Memory.read_float mem "y" k)
  in
  check_bool "scalar leaves memory untouched" true
    (run f = Array.make 8 3.25);
  check_bool "vectorized leaves memory untouched" true
    (run g = Array.make 8 3.25)

let qcheck_fuzz_cond_shapes =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60
       ~name:"random branching programs survive the pipeline"
       ~print:(fun (seed, _) -> Fmt.str "seed %d" seed)
       QCheck2.Gen.(pair (int_bound 100_000) (int_bound 6))
       (fun (seed, cfg) ->
         let st = Random.State.make [| seed; 0xc0de |] in
         let prog = Lslp_fuzz.Gen.generate ~cond_only:true st in
         let reference = Lslp_fuzz.Gen.build prog in
         let candidate = Func.clone reference in
         ignore (Lslp_frontend.Unroll.run ~factor:4 candidate);
         let config =
           Config.with_validate true
             [| Config.slp_nr; Config.slp; Config.lslp; Config.lslp_la 0;
                Config.lslp_la 2; Config.lslp_multi 1; Config.lslp_multi 2
             |].(cfg)
         in
         let report = Pipeline.run ~config candidate in
         Verifier.check_func candidate = []
         && report.Pipeline.diagnostics = []
         && Oracle.equivalent ~tol:1e-6 ~reference ~candidate ()))

let suite =
  [
    tc "if/else shares the condition and negates the compare for else"
      test_else_negates_compare;
    tc "if without else emits one mask and one masked store"
      test_no_else_single_mask;
    tc "loads under a branch become masked loads with a zero passthrough"
      test_branch_loads_masked;
    tc "nested branches compose masks with logical and" test_nested_masks_and;
    tc "branch-local declarations merge via select at the join"
      test_join_select;
    tc "a loop may not appear under a branch" test_loop_under_branch_rejected;
    tc "the if condition must be a comparison" test_condition_must_compare;
    tc "a comparison cannot be used as a value" test_compare_not_a_value;
    tc "same local at different types in the two branches is rejected"
      test_join_type_mismatch_rejected;
    qcheck_select_law;
    qcheck_masked_store_law;
    qcheck_masked_roundtrip_law;
    tc "an all-false masked store is a memory no-op" test_all_false_store_noop;
    tc "masked-off lanes are not even bounds-checked"
      test_masked_off_not_bounds_checked;
    tc "NaN guards mask off both branches (no-NaN fast-math contract)"
      test_nan_guard_contract;
    tc "an always-true guard is observationally the unmasked kernel"
      test_always_true_guard_is_unmasked;
    tc "every cond.* catalog kernel vectorizes under LSLP"
      test_cond_kernels_vectorize;
    tc "complementary then/else stores vectorize as two masked streams"
      test_two_masked_streams;
    tc "cond kernels validate and stay equivalent under the main configs"
      test_cond_kernels_sound;
    tc "an all-false region is still a no-op after vectorization"
      test_all_false_region_noop_after_vectorization;
    qcheck_fuzz_cond_shapes;
  ]
