(* Domain-pool determinism: the whole catalog compiled on 4 concurrent
   domains must reproduce the sequential IR, remarks and telemetry
   counters.  Instruction ids come from a process-global Atomic, so raw
   labels differ between runs; Fuzz.normalize_ids alpha-renames them by
   first appearance, which is exactly the invariant the planned parallel
   compile service needs.  The lslpc `domains` subcommand runs the same
   proof with 8 domains in CI. *)

module Catalog = Lslp_kernels.Catalog
module Pipeline = Lslp_core.Pipeline
module Config = Lslp_core.Config
module Fuzz = Lslp_fuzz.Fuzz

let config = Config.(lslp |> with_remarks true |> with_validate true)

let snapshot (k : Catalog.kernel) =
  let f = Catalog.compile k in
  ignore (Lslp_frontend.Unroll.run ~factor:4 f);
  let report, g = Pipeline.run_cloned ~config f in
  let ir = Fuzz.normalize_ids (Fmt.str "%a" Lslp_ir.Printer.pp_func g) in
  let remarks =
    Fuzz.normalize_ids
      (String.concat "\n"
         (List.map
            (Fmt.str "%a" Lslp_check.Remark.pp)
            report.Pipeline.remarks))
  in
  let counters =
    let c =
      Lslp_telemetry.Report.total_counters report.Pipeline.telemetry
    in
    String.concat ","
      (List.map
         (fun (n, get) -> Fmt.str "%s=%d" n (get c))
         Lslp_telemetry.Probe.counter_fields)
  in
  (k.key, ir, remarks, counters)

let full () = List.map snapshot Catalog.all

let determinism () =
  let baseline = full () in
  let pool = List.init 4 (fun _ -> Domain.spawn full) in
  List.iteri
    (fun d rows ->
      List.iter2
        (fun (key, ir, rem, ctr) (_, ir', rem', ctr') ->
          let eq what a b =
            Helpers.check_string (Fmt.str "domain %d: %s: %s" d key what)
              a b
          in
          eq "IR" ir ir';
          eq "remarks" rem rem';
          eq "counters" ctr ctr')
        baseline rows)
    (List.map Domain.join pool)

let suite = [ Helpers.tc "catalog x 4 domains" determinism ]
