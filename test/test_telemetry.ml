(* Telemetry and the memoized look-ahead scorer.

   The load-bearing property is differential: for any program and any
   configuration, running the pipeline with [Config.score_cache] on and
   off produces identical IR (modulo instruction-id renaming), identical
   remarks and identical region outcomes — the cache is an observable
   no-op.  On top of that, the catalog run asserts the cache actually
   pays: at the default look-ahead depth it must at least halve the
   number of score evaluations, measured by the counters themselves. *)

open Lslp_ir
open Lslp_core
open Helpers
module Probe = Lslp_telemetry.Probe
module Report = Lslp_telemetry.Report
module Score_cache = Lslp_telemetry.Score_cache
module Budget = Lslp_robust.Budget
module Catalog = Lslp_kernels.Catalog
module Fuzz = Lslp_fuzz.Fuzz
module Gen = Lslp_fuzz.Gen

let unroll_factor = 4

(* Region formation + pipeline on a clone, like the lslpc driver; returns
   the report and the alpha-renamed printed IR (instruction labels embed a
   process-global counter, so raw text never matches across runs). *)
let run_with ~cache ?(config = Config.lslp) reference =
  let candidate = Func.clone reference in
  ignore (Lslp_frontend.Unroll.run ~factor:unroll_factor candidate);
  let report =
    Pipeline.run ~config:(Config.with_score_cache cache config) candidate
  in
  (report, Fuzz.normalize_ids (Fmt.str "%a" Printer.pp_func candidate))

let total (report : Pipeline.report) =
  Report.total_counters report.Pipeline.telemetry

let remark_strings (report : Pipeline.report) =
  List.map (Fmt.str "%a" Lslp_check.Remark.pp) report.Pipeline.remarks

let vectorized_ids (report : Pipeline.report) =
  List.sort_uniq String.compare
    (List.filter_map
       (fun r ->
         if r.Pipeline.vectorized then Some r.Pipeline.region_id else None)
       report.Pipeline.regions)

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go k = k + m <= n && (String.sub s k m = sub || go (k + 1)) in
  m = 0 || go 0

let config_pool =
  [| Config.slp_nr; Config.slp; Config.lslp; Config.lslp_la 0;
     Config.lslp_la 2; Config.lslp_multi 1; Config.lslp_multi 2 |]

(* ---- probe counters and timers ------------------------------------ *)

let probe_tests =
  [
    tc "fresh counters are zero under every projection" (fun () ->
        let c = Probe.zero_counters () in
        check_int "field count" 9 (List.length Probe.counter_fields);
        List.iter
          (fun (label, proj) -> check_int label 0 (proj c))
          Probe.counter_fields);
    tc "add_counters sums pointwise" (fun () ->
        let a = Probe.zero_counters () and b = Probe.zero_counters () in
        a.Probe.score_evals <- 3;
        a.Probe.regions_vectorized <- 1;
        b.Probe.score_evals <- 4;
        b.Probe.score_hits <- 2;
        Probe.add_counters ~into:a b;
        check_int "evals" 7 a.Probe.score_evals;
        check_int "hits" 2 a.Probe.score_hits;
        check_int "vectorized" 1 a.Probe.regions_vectorized;
        (* the source operand is left alone *)
        check_int "source evals" 4 b.Probe.score_evals);
    tc "span charges time and a call even when the thunk raises" (fun () ->
        let p = Probe.create () in
        (try Probe.span p "doomed" (fun () -> raise Exit)
         with Exit -> ());
        ignore (Probe.span p "doomed" (fun () -> 42));
        match (Probe.snapshot p).Probe.s_timers with
        | [ ("doomed", secs, calls) ] ->
          check_int "calls" 2 calls;
          check_bool "non-negative time" true (secs >= 0.0)
        | other ->
          Alcotest.failf "unexpected timer rows: %d" (List.length other));
    tc "merge sums snapshots and keeps first-seen timer order" (fun () ->
        let mk pass evals =
          let p = Probe.create () in
          (Probe.counters p).Probe.score_evals <- evals;
          ignore (Probe.span p pass (fun () -> ()));
          Probe.snapshot p
        in
        let m = Probe.merge [ mk "alpha" 2; mk "beta" 3; mk "alpha" 5 ] in
        check_int "evals" 10 m.Probe.s_counters.Probe.score_evals;
        check
          Alcotest.(list string)
          "timer order" [ "alpha"; "beta" ]
          (List.map (fun (name, _, _) -> name) m.Probe.s_timers);
        match m.Probe.s_timers with
        | [ (_, _, alpha_calls); (_, _, beta_calls) ] ->
          check_int "alpha calls" 2 alpha_calls;
          check_int "beta calls" 1 beta_calls
        | _ -> Alcotest.fail "expected two timer rows");
  ]

(* ---- the score cache ----------------------------------------------- *)

let cache_tests =
  [
    tc "store/find round-trips, misses stay misses" (fun () ->
        let c = Score_cache.create () in
        check_bool "initial miss" true
          (Score_cache.find c ~a:1 ~b:2 ~level:3 ~mode:0 = None);
        Score_cache.store c ~a:1 ~b:2 ~level:3 ~mode:0 7;
        check_bool "hit" true
          (Score_cache.find c ~a:1 ~b:2 ~level:3 ~mode:0 = Some 7);
        check_int "size" 1 (Score_cache.size c));
    tc "every key component discriminates" (fun () ->
        let c = Score_cache.create () in
        Score_cache.store c ~a:1 ~b:2 ~level:3 ~mode:0 7;
        List.iter
          (fun (a, b, level, mode) ->
            check_bool "distinct key misses" true
              (Score_cache.find c ~a ~b ~level ~mode = None))
          [ (2, 1, 3, 0); (1, 2, 2, 0); (1, 2, 3, 1); (9, 2, 3, 0) ]);
    tc "clear empties the table" (fun () ->
        let c = Score_cache.create () in
        Score_cache.store c ~a:1 ~b:2 ~level:3 ~mode:0 7;
        Score_cache.clear c;
        check_int "size" 0 (Score_cache.size c);
        check_bool "miss after clear" true
          (Score_cache.find c ~a:1 ~b:2 ~level:3 ~mode:0 = None));
  ]

(* ---- report aggregation -------------------------------------------- *)

let report_tests =
  [
    tc "make totals the per-block snapshots" (fun () ->
        let snap evals hits =
          let p = Probe.create () in
          (Probe.counters p).Probe.score_evals <- evals;
          (Probe.counters p).Probe.score_hits <- hits;
          Probe.snapshot p
        in
        let r =
          Report.make ~func:"f" ~config:"LSLP"
            [ ("entry", snap 2 1); ("loop", snap 5 4) ]
        in
        check_int "evals" 7 (Report.total_counters r).Probe.score_evals;
        check_int "hits" 5 (Report.total_counters r).Probe.score_hits);
    tc "empty report totals to zero" (fun () ->
        let r = Report.empty ~func:"f" ~config:"LSLP" in
        List.iter
          (fun (label, proj) ->
            check_int label 0 (proj (Report.total_counters r)))
          Probe.counter_fields);
    tc "counter table is deterministic and names every block" (fun () ->
        let reference = kernel "453.vsumsqr" in
        let report, _ = run_with ~cache:true reference in
        let render () =
          Fmt.str "%a" Report.pp_counters report.Pipeline.telemetry
        in
        let table = render () in
        check_string "stable across renders" table (render ());
        List.iter
          (fun (label, _) ->
            check_bool (label ^ " row present") true (contains table label))
          report.Pipeline.telemetry.Report.blocks;
        check_bool "total row" true (contains table "total"));
    tc "json carries func, config, blocks and counters" (fun () ->
        let reference = kernel "453.vsumsqr" in
        let report, _ = run_with ~cache:true reference in
        let json = Report.to_json report.Pipeline.telemetry in
        List.iter
          (fun key -> check_bool key true (contains json key))
          [ "\"function\""; "\"config\""; "\"blocks\""; "\"evals\"";
            "\"timers\""; "\"total\"" ]);
  ]

(* ---- memoization pays, and is invisible (acceptance criterion) ----- *)

let memo_tests =
  [
    tc "catalog: cache at least halves score evaluations, IR unchanged"
      (fun () ->
        let cached_total = ref 0 and uncached_total = ref 0 in
        List.iter
          (fun (k : Catalog.kernel) ->
            let reference = Catalog.compile k in
            let rc, irc = run_with ~cache:true reference in
            let ru, iru = run_with ~cache:false reference in
            check_string (k.Catalog.key ^ " IR") iru irc;
            check_int (k.Catalog.key ^ " uncached runs cacheless") 0
              ((total ru).Probe.score_hits + (total ru).Probe.score_misses);
            cached_total := !cached_total + (total rc).Probe.score_evals;
            uncached_total := !uncached_total + (total ru).Probe.score_evals)
          Catalog.all;
        check_bool "cache saw work" true (!cached_total > 0);
        check_bool
          (Fmt.str "2x fewer evals (cached %d vs uncached %d)" !cached_total
             !uncached_total)
          true
          (2 * !cached_total <= !uncached_total));
    tc "vsumsqr telemetry shape" (fun () ->
        let report, _ = run_with ~cache:true (kernel "453.vsumsqr") in
        let c = total report in
        check_int "one region vectorized" 1 c.Probe.regions_vectorized;
        check_int "none degraded" 0 c.Probe.regions_degraded;
        check_bool "cache hits observed" true (c.Probe.score_hits > 0);
        check_bool "graph nodes built" true (c.Probe.graph_nodes > 0);
        check_bool "instructions emitted" true (c.Probe.instrs_emitted > 0));
  ]

(* ---- differential equivalence over generated programs -------------- *)

let qcheck_cache_diff =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40
       ~name:"cached and uncached scoring are observationally identical"
       ~print:string_of_int
       QCheck2.Gen.(int_range 0 1_000_000)
       (fun seed ->
         let st = Random.State.make [| seed |] in
         let prog = Gen.generate st in
         let reference = Gen.build prog in
         Array.for_all
           (fun base ->
             let config = Config.with_remarks true base in
             let rc, irc = run_with ~cache:true ~config reference in
             let ru, iru = run_with ~cache:false ~config reference in
             irc = iru
             && remark_strings rc = remark_strings ru
             && rc.Pipeline.vectorized_regions
                = ru.Pipeline.vectorized_regions
             && rc.Pipeline.degraded_regions = ru.Pipeline.degraded_regions)
           config_pool))

(* ---- cache vs fuel budget ------------------------------------------ *)

(* Cache hits burn no fuel, so at every point of the (identical) search
   the cached run has spent no more fuel than the uncached one: any
   region the uncached run finishes, the cached run finishes identically.
   Vectorized regions can only be gained, degradations only lost. *)
let qcheck_budget_superset =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40
       ~name:"under tight fuel the cache never loses a region"
       ~print:string_of_int
       QCheck2.Gen.(int_range 0 1_000_000)
       (fun seed ->
         let st = Random.State.make [| seed |] in
         let prog = Gen.generate st in
         let reference = Gen.build prog in
         let fuel = 5 + Random.State.int st 150 in
         let tight =
           Config.with_budget
             { Budget.default with Budget.lookahead_fuel = fuel }
             Config.lslp
         in
         let rc, _ = run_with ~cache:true ~config:tight reference in
         let ru, _ = run_with ~cache:false ~config:tight reference in
         subset (vectorized_ids ru) (vectorized_ids rc)
         && rc.Pipeline.degraded_regions <= ru.Pipeline.degraded_regions))

let budget_tests =
  [
    tc "tight fuel over the catalog: cached keeps every uncached region"
      (fun () ->
        List.iter
          (fun fuel ->
            let tight =
              Config.with_budget
                { Budget.default with Budget.lookahead_fuel = fuel }
                Config.lslp
            in
            List.iter
              (fun (k : Catalog.kernel) ->
                let reference = Catalog.compile k in
                let rc, _ = run_with ~cache:true ~config:tight reference in
                let ru, _ = run_with ~cache:false ~config:tight reference in
                check_bool
                  (Fmt.str "%s fuel=%d superset" k.Catalog.key fuel)
                  true
                  (subset (vectorized_ids ru) (vectorized_ids rc));
                check_bool
                  (Fmt.str "%s fuel=%d degradations" k.Catalog.key fuel)
                  true
                  (rc.Pipeline.degraded_regions
                   <= ru.Pipeline.degraded_regions))
              Catalog.all)
          [ 20; 60; 150 ]);
    tc "an exhausted region leaves no stale cache state behind" (fun () ->
        let reference = kernel "453.vsumsqr" in
        (* control run first, then an exhausting run, then the probe run:
           if any cache entry outlived the rollback, the probe run would
           differ from the control *)
        let control_report, control_ir = run_with ~cache:true reference in
        let tight =
          Config.with_budget
            { Budget.default with Budget.lookahead_fuel = 10 }
            Config.lslp
        in
        let exhausted, _ = run_with ~cache:true ~config:tight reference in
        check_bool "tight run actually degraded" true
          (exhausted.Pipeline.degraded_regions > 0);
        let probe_report, probe_ir = run_with ~cache:true reference in
        check_string "same IR" control_ir probe_ir;
        List.iter
          (fun (label, proj) ->
            check_int label
              (proj (total control_report))
              (proj (total probe_report)))
          Probe.counter_fields);
  ]

let suite =
  probe_tests @ cache_tests @ report_tests @ memo_tests
  @ [ qcheck_cache_diff; qcheck_budget_superset ]
  @ budget_tests
