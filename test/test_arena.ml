(* Arena properties.

   The arena is a denotation-free snapshot: rebuilding the instruction view
   from it must reproduce the block byte-for-byte, and every derived table
   (CSR uses, address side table) must agree with the naive definition it
   replaced.  Random kernels come from the same generator as the end-to-end
   soundness properties (test_qcheck.ml), so the shapes exercised here are
   the ones the pipeline actually vectorizes. *)

open Lslp_ir
open Lslp_analysis

let print_func f = Lslp_fuzz.Fuzz.normalize_ids (Fmt.str "%a" Printer.pp_func f)

(* Naive recount of operand occurrences, straight off the block. *)
let naive_uses (block : Block.t) =
  let counts = Hashtbl.create 32 in
  Block.iter
    (fun i ->
      List.iter
        (fun v ->
          match v with
          | Instr.Ins d ->
            Hashtbl.replace counts d.Instr.id
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts d.Instr.id))
          | Instr.Const _ | Instr.Arg _ -> ())
        (Instr.operands i))
    block;
  counts

let arena_agrees (block : Block.t) =
  let a = Arena.of_block block in
  let n = Arena.size a in
  let ok = ref (match Arena.check a with Ok () -> true | Error _ -> false) in
  (* compact index <-> instruction bijection, in program order *)
  let k = ref 0 in
  Block.iter
    (fun i ->
      ok :=
        !ok
        && Arena.idx a i = !k
        && Arena.pos a i = !k
        && Arena.idx_of_id a i.Instr.id = !k
        && Arena.instr a !k == i;
      incr k)
    block;
  ok := !ok && !k = n;
  (* CSR use counts vs the naive recount *)
  let counts = naive_uses block in
  for j = 0 to n - 1 do
    let i = Arena.instr a j in
    let naive = Option.value ~default:0 (Hashtbl.find_opt counts i.Instr.id) in
    ok := !ok && Arena.num_uses a j = naive
  done;
  (* address side table vs the Addr module on the raw instructions *)
  for j = 0 to n - 1 do
    for l = 0 to n - 1 do
      match
        (Instr.address (Arena.instr a j), Instr.address (Arena.instr a l))
      with
      | Some aj, Some al ->
        ok :=
          !ok
          && Arena.consecutive a j l = Addr.consecutive aj al
          && Arena.may_alias a j l = Addr.may_alias aj al
          && Arena.element_distance a j l = Addr.element_distance aj al
      | _ ->
        ok := !ok && (not (Arena.is_memory a j) || not (Arena.is_memory a l))
    done
  done;
  !ok

(* Rebuild each block's instruction view purely from its arena, then
   compare the printed (id-normalized) function against the original. *)
let roundtrip_identical (f : Func.t) =
  let before = print_func f in
  List.iter
    (fun b ->
      let a = Arena.of_block b in
      Block.set_order b (List.init (Arena.size a) (Arena.instr a)))
    (Func.blocks f);
  let after = print_func f in
  String.equal before after

let prop_pre (d : Test_qcheck.kdesc) =
  let f = Test_qcheck.build_kernel d in
  List.for_all arena_agrees (Func.blocks f) && roundtrip_identical f

(* The same invariants must hold on vectorized output: codegen rebuilds
   blocks wholesale, and a stale or non-dense arena there would poison
   every later pass. *)
let prop_post (d : Test_qcheck.kdesc) =
  let f = Test_qcheck.build_kernel d in
  ignore (Lslp_core.Pipeline.run ~config:Lslp_core.Config.lslp f);
  List.for_all arena_agrees (Func.blocks f) && roundtrip_identical f

let prop ?(count = 120) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:Test_qcheck.print_kdesc
       Test_qcheck.gen_kdesc f)

let suite =
  [
    prop "arena round-trips and agrees with naive tables" prop_pre;
    prop "arena invariants survive vectorization" prop_post;
  ]
