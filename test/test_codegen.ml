(* Tests for vector code generation: shapes of the emitted code, extracts
   for external users, scheduling correctness, and abort-on-cycle. *)

open Lslp_ir
open Lslp_core
open Helpers

let codegen_tests =
  [
    tc "figure 2 LSLP emits 2 wide loads, 1 wide store, no scalars left"
      (fun () ->
        let f = kernel "motivation-loads" in
        let reference = Func.clone f in
        ignore (Pipeline.run ~config:Config.lslp f);
        check_int "wide loads" 2 (count_insts is_wide_load f);
        check_int "wide stores" 1 (count_insts is_wide_store f);
        check_int "scalar loads gone" 0
          (count_insts (fun i -> Instr.is_load i && not (is_wide_load i)) f);
        (* constants gathered: two buildvecs *)
        check_int "buildvecs" 2
          (count_insts
             (fun i -> match i.Instr.kind with
                | Instr.Buildvec _ -> true | _ -> false)
             f);
        assert_sound ~reference ~candidate:f ());
    tc "multi-node folds into k wide ops" (fun () ->
        let f = kernel "motivation-multi" in
        ignore (Pipeline.run ~config:Config.lslp f);
        let wide_ands =
          count_insts
            (fun i ->
              Instr.binop i = Some Opcode.And && Types.is_vector i.Instr.ty)
            f
        in
        check_int "two wide ands" 2 wide_ands);
    tc "splat operands become splat instructions" (fun () ->
        let f = kernel "453.calc-z3" in
        ignore (Pipeline.run ~config:Config.lslp f);
        check_bool "has splat" true
          (count_insts
             (fun i -> match i.Instr.kind with
                | Instr.Splat _ -> true | _ -> false)
             f
           > 0));
    tc "external scalar users get extracts" (fun () ->
        let f = compile {|
kernel k(f64 A[], f64 R[], f64 S[], i64 i) {
  f64 x0 = A[i+0];
  f64 x1 = A[i+1];
  R[i+0] = x0 * 2.0;
  R[i+1] = x1 * 2.0;
  S[i+4] = x0;
}
|} in
        let reference = Func.clone f in
        ignore (Pipeline.run ~config:Config.lslp f);
        check_bool "vectorized" true (count_insts is_wide_store f > 0);
        check_int "one extract" 1
          (count_insts
             (fun i -> match i.Instr.kind with
                | Instr.Extract _ -> true | _ -> false)
             f);
        assert_sound ~reference ~candidate:f ());
    tc "gathered scalars stay live" (fun () ->
        let f = kernel "motivation-opcodes" in
        let reference = Func.clone f in
        ignore (Pipeline.run ~config:Config.lslp f);
        (* the non-consecutive B/C/D/E loads remain scalar, feeding gathers *)
        check_int "scalar loads" 4
          (count_insts (fun i -> Instr.is_load i && not (is_wide_load i)) f);
        assert_sound ~reference ~candidate:f ());
    tc "aliasing store between lanes is scheduled correctly" (fun () ->
        (* the scalar store to A[i+9] does not alias the vector region but
           sits between the seed stores in program order *)
        let f = compile {|
kernel k(f64 A[], f64 B[], i64 i) {
  A[i+0] = B[i+0] * 2.0;
  A[i+9] = 7.0;
  A[i+1] = B[i+1] * 2.0;
}
|} in
        let reference = Func.clone f in
        let report = Pipeline.run ~config:Config.lslp f in
        check_int "vectorized" 1 report.Pipeline.vectorized_regions;
        assert_sound ~reference ~candidate:f ());
    tc "read of a lane between the seed stores blocks vectorization"
      (fun () ->
        (* A[i+0] is stored, then read, then A[i+1] stored: contracting the
           two stores would move the store of A[i+0] past its reader *)
        let f = compile {|
kernel k(f64 A[], f64 B[], f64 R[], i64 i) {
  A[i+0] = B[i+0] * 2.0;
  R[i+4] = A[i+0];
  A[i+1] = B[i+1] * 2.0;
}
|} in
        let reference = Func.clone f in
        let report = Pipeline.run ~config:Config.lslp f in
        (* either the bundle was rejected as unschedulable up front, or
           codegen aborted; in both cases semantics must hold *)
        ignore report;
        assert_sound ~reference ~candidate:f ());
    tc "overlapping second seed is left alone" (fun () ->
        (* after vectorizing the first window, its stores are consumed *)
        let f = compile {|
kernel k(i64 A[], i64 B[], i64 i) {
  A[i+0] = B[i+0] + 1;
  A[i+1] = B[i+1] + 1;
  A[i+2] = B[i+2] + 1;
  A[i+3] = B[i+3] + 1;
}
|} in
        let reference = Func.clone f in
        let report = Pipeline.run ~config:Config.lslp f in
        check_int "one 4-wide region" 1 report.Pipeline.vectorized_regions;
        check_int "one wide store" 1 (count_insts is_wide_store f);
        assert_sound ~reference ~candidate:f ());
    tc "dead scalar code is swept after vectorization" (fun () ->
        let f = kernel "motivation-multi" in
        ignore (Pipeline.run ~config:Config.lslp f);
        let uses = Use_info.compute (Func.entry f) in
        Block.iter
          (fun i ->
            if not (Instr.has_side_effect i) then
              check_bool "live" true (Use_info.num_uses uses i > 0))
          (Func.entry f));
    tc "codegen output always verifies (all kernels x all configs)"
      (fun () ->
        List.iter
          (fun (k : Lslp_kernels.Catalog.kernel) ->
            List.iter
              (fun config ->
                let f = Lslp_kernels.Catalog.compile k in
                ignore (Pipeline.run ~config f);
                match Verifier.check_func f with
                | [] -> ()
                | e :: _ ->
                  Alcotest.failf "%s/%s: %s" k.key config.Config.name
                    (Verifier.error_to_string e))
              [ Config.slp_nr; Config.slp; Config.lslp ])
          Lslp_kernels.Catalog.all);
  ]

let suite = codegen_tests
