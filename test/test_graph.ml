(* Tests for bundles, graph construction and multi-node formation. *)

open Lslp_ir
open Lslp_analysis
open Lslp_core
open Helpers

let classify_in f bundle =
  let deps = Depgraph.build (Func.entry f) in
  Bundle.classify ~block:(Func.entry f) ~deps ~in_graph:(fun _ -> false) bundle

let bundle_tests =
  [
    tc "constants are not instructions" (fun () ->
        let f = kernel "motivation-loads" in
        match classify_in f [| Builder.iconst 1; Builder.iconst 2 |] with
        | Bundle.Rejected Bundle.Not_all_instructions -> ()
        | _ -> Alcotest.fail "expected rejection");
    tc "mixed opcodes rejected" (fun () ->
        let f = compile {|
kernel k(i64 A[], i64 i) {
  A[i+0] = (A[i+4] + 1) + 0;
  A[i+1] = (A[i+5] * 2) + 0;
}
|} in
        let adds =
          Block.find_all
            (fun i -> Instr.binop i = Some Opcode.Add) (Func.entry f)
        in
        let mul =
          List.hd (Block.find_all (fun i -> Instr.binop i = Some Opcode.Mul)
                     (Func.entry f))
        in
        match classify_in f [| Instr.Ins (List.hd adds); Instr.Ins mul |] with
        | Bundle.Rejected Bundle.Not_isomorphic -> ()
        | _ -> Alcotest.fail "expected Not_isomorphic");
    tc "duplicate members rejected" (fun () ->
        let f = kernel "motivation-loads" in
        let ld = List.hd (Block.find_all Instr.is_load (Func.entry f)) in
        match classify_in f [| Instr.Ins ld; Instr.Ins ld |] with
        | Bundle.Rejected Bundle.Duplicate_member -> ()
        | _ -> Alcotest.fail "expected Duplicate_member");
    tc "dependent members rejected" (fun () ->
        let f = compile {|
kernel k(i64 A[], i64 i) {
  A[i+0] = (A[i+4] + 1) + (A[i+5] + 2);
}
|} in
        let adds =
          Block.find_all (fun i -> Instr.binop i = Some Opcode.Add) (Func.entry f)
        in
        (* the root add depends on the two inner adds *)
        let root =
          List.find
            (fun (a : Instr.t) ->
              List.for_all
                (fun v -> match v with Instr.Const _ -> false | _ -> true)
                (Instr.operands a))
            adds
        in
        let inner = List.find (fun a -> not (Instr.equal a root)) adds in
        match classify_in f [| Instr.Ins inner; Instr.Ins root |] with
        | Bundle.Rejected Bundle.Not_schedulable -> ()
        | _ -> Alcotest.fail "expected Not_schedulable");
    tc "non-consecutive loads rejected" (fun () ->
        let f = compile {|
kernel k(i64 A[], i64 B[], i64 i) {
  A[i+0] = B[i+0];
  A[i+1] = B[i+2];
}
|} in
        let loads = Block.find_all Instr.is_load (Func.entry f) in
        match classify_in f (Bundle.of_insts (Array.of_list loads)) with
        | Bundle.Rejected Bundle.Non_consecutive_loads -> ()
        | _ -> Alcotest.fail "expected Non_consecutive_loads");
    tc "consecutive loads accepted" (fun () ->
        let f = kernel "motivation-loads" in
        let loads =
          Block.find_all
            (fun i ->
              match Instr.address i with
              | Some a -> Instr.is_load i && String.equal a.Instr.base "B"
              | None -> false)
            (Func.entry f)
        in
        match classify_in f (Bundle.of_insts (Array.of_list loads)) with
        | Bundle.Vectorizable _ -> ()
        | Bundle.Rejected r -> Alcotest.failf "rejected: %s" (Bundle.reject_to_string r));
    tc "already-claimed members rejected" (fun () ->
        let f = kernel "motivation-loads" in
        let deps = Depgraph.build (Func.entry f) in
        let loads = Block.find_all Instr.is_load (Func.entry f) in
        match
          Bundle.classify ~block:(Func.entry f) ~deps ~in_graph:(fun _ -> true)
            (Bundle.of_insts (Array.of_list [ List.hd loads; List.nth loads 1 ]))
        with
        | Bundle.Rejected Bundle.Already_in_graph -> ()
        | _ -> Alcotest.fail "expected Already_in_graph");
    tc "operand_column extracts lanes" (fun () ->
        let f = kernel "motivation-loads" in
        let stores = Block.find_all Instr.is_store (Func.entry f) in
        let col =
          Bundle.operand_column (Array.of_list stores) ~index:0
        in
        check_int "two lanes" 2 (Array.length col));
  ]

let seeds_tests =
  [
    tc "adjacent store runs become seeds" (fun () ->
        let f = kernel "motivation-loads" in
        let seeds = Seeds.collect Config.lslp (Func.entry f) in
        check_int "one seed" 1 (List.length seeds);
        check_int "two lanes" 2 (Array.length (List.hd seeds)));
    tc "runs split into power-of-two windows, widest first" (fun () ->
        let f = compile {|
kernel k(i64 A[], i64 i) {
  A[i+0] = 0; A[i+1] = 1; A[i+2] = 2; A[i+3] = 3; A[i+4] = 4; A[i+5] = 5;
}
|} in
        let seeds = Seeds.collect Config.lslp (Func.entry f) in
        check (Alcotest.list Alcotest.int) "window sizes" [ 4; 2 ]
          (List.map Array.length seeds));
    tc "gaps break runs" (fun () ->
        let f = compile {|
kernel k(i64 A[], i64 i) {
  A[i+0] = 0; A[i+1] = 1; A[i+3] = 3; A[i+4] = 4;
}
|} in
        let seeds = Seeds.collect Config.lslp (Func.entry f) in
        check_int "two seeds" 2 (List.length seeds));
    tc "stores to different arrays are separate" (fun () ->
        let f = compile {|
kernel k(i64 A[], i64 B[], i64 i) {
  A[i+0] = 0; B[i+0] = 1; A[i+1] = 2; B[i+1] = 3;
}
|} in
        let seeds = Seeds.collect Config.lslp (Func.entry f) in
        check_int "two seeds" 2 (List.length seeds));
    tc "single store yields no seed" (fun () ->
        let f = compile "kernel k(i64 A[], i64 i) { A[i] = 1; }" in
        check_int "none" 0 (List.length (Seeds.collect Config.lslp (Func.entry f))));
    tc "narrow target caps the window" (fun () ->
        let f = compile {|
kernel k(i64 A[], i64 i) {
  A[i+0] = 0; A[i+1] = 1; A[i+2] = 2; A[i+3] = 3;
}
|} in
        let config = Config.with_model Lslp_costmodel.Model.sse_like Config.lslp in
        let seeds = Seeds.collect config (Func.entry f) in
        check (Alcotest.list Alcotest.int) "2-wide windows" [ 2; 2 ]
          (List.map Array.length seeds));
    tc "max_lanes override caps below target" (fun () ->
        let config = Config.with_max_lanes 2 Config.lslp in
        check_int "capped" 2 (Config.effective_max_lanes config Lslp_ir.Types.I64));
  ]

let build_graph key config =
  let f = kernel key in
  let seed = List.hd (Seeds.collect config (Func.entry f)) in
  Graph_builder.build config (Func.entry f) seed

let multinode_tests =
  [
    tc "figure 4 forms one & multi-node with two internal groups" (fun () ->
        let graph, _root = build_graph "motivation-multi" Config.lslp in
        (* frontier + columns also become (single-group) multi-nodes; the
           associativity fix shows up as the unique 2-group & multi-node *)
        let and_multis =
          List.filter_map
            (fun (n : Graph.node) ->
              match n.Graph.shape with
              | Graph.Multi m when m.Graph.m_op = Opcode.And -> Some m
              | _ -> None)
            (Graph.nodes graph)
        in
        check_int "one & multi-node" 1 (List.length and_multis);
        check_int "two & groups" 2
          (List.length (List.hd and_multis).Graph.m_groups));
    tc "figure 4 multi-node has three operand slots" (fun () ->
        let graph, _ = build_graph "motivation-multi" Config.lslp in
        let multi =
          List.find
            (fun (n : Graph.node) ->
              match n.Graph.shape with
              | Graph.Multi m -> m.Graph.m_op = Opcode.And
              | _ -> false)
            (Graph.nodes graph)
        in
        check_int "slots" 3 (List.length (Graph.children graph multi)));
    tc "multi-node size limit truncates the chain" (fun () ->
        let graph, _ =
          build_graph "motivation-multi" (Config.lslp_multi 1)
        in
        let multi_sizes =
          List.filter_map
            (fun (n : Graph.node) ->
              match n.Graph.shape with
              | Graph.Multi m -> Some (List.length m.Graph.m_groups)
              | _ -> None)
            (Graph.nodes graph)
        in
        List.iter (fun s -> check_int "max 1 group" 1 s) multi_sizes);
    tc "multi-use chain members are not absorbed (escape rule)" (fun () ->
        (* the inner + feeds both the chain and a separate store, so it
           must stay outside the multi-node *)
        let f = compile {|
kernel k(i64 A[], i64 B[], i64 R[], i64 i) {
  i64 t0 = A[i+0] + B[i+0];
  i64 t1 = A[i+1] + B[i+1];
  R[i+0] = t0 + A[i+2];
  R[i+1] = t1 + A[i+3];
  B[i+8] = t0;
}
|} in
        let seed =
          List.find
            (fun (s : Seeds.seed) -> Array.length s = 2)
            (Seeds.collect Config.lslp (Func.entry f))
        in
        let graph, _ = Graph_builder.build Config.lslp (Func.entry f) seed in
        let multis =
          List.filter_map
            (fun (n : Graph.node) ->
              match n.Graph.shape with
              | Graph.Multi m -> Some (List.length m.Graph.m_groups)
              | _ -> None)
            (Graph.nodes graph)
        in
        (* t0 escapes via B[i+8], so no lane may absorb its chain: every
           multi-node stays at one group *)
        List.iter (fun s -> check_int "no coarsening" 1 s) multis);
    tc "non-commutative roots do not form multi-nodes" (fun () ->
        let f = compile {|
kernel k(f64 A[], f64 B[], i64 i) {
  A[i+0] = B[i+0] - 1.0;
  A[i+1] = B[i+1] - 1.0;
}
|} in
        let seed = List.hd (Seeds.collect Config.lslp (Func.entry f)) in
        let graph, _ = Graph_builder.build Config.lslp (Func.entry f) seed in
        check_bool "no multi" true
          (List.for_all
             (fun (n : Graph.node) ->
               match n.Graph.shape with Graph.Multi _ -> false | _ -> true)
             (Graph.nodes graph)));
    tc "lanes with different chain shapes are trimmed to the min" (fun () ->
        (* lane0 has a 3-op fadd chain, lane1 a 1-op chain *)
        let f = compile {|
kernel k(f64 A[], f64 B[], f64 R[], i64 i) {
  R[i+0] = A[i+0] + A[i+2] + A[i+4] + A[i+6];
  R[i+1] = A[i+1] + B[i+0];
}
|} in
        let seed = List.hd (Seeds.collect Config.lslp (Func.entry f)) in
        let graph, _ = Graph_builder.build Config.lslp (Func.entry f) seed in
        let m =
          List.find_map
            (fun (n : Graph.node) ->
              match n.Graph.shape with Graph.Multi m -> Some m | _ -> None)
            (Graph.nodes graph)
        in
        match m with
        | Some m -> check_int "trimmed to 1 group" 1 (List.length m.Graph.m_groups)
        | None -> Alcotest.fail "expected a multi-node");
    tc "diamond columns reuse one node" (fun () ->
        let f = compile {|
kernel k(f64 A[], f64 R[], i64 i) {
  R[i+0] = A[i+0] * A[i+0];
  R[i+1] = A[i+1] * A[i+1];
}
|} in
        let seed = List.hd (Seeds.collect Config.lslp (Func.entry f)) in
        let graph, _ = Graph_builder.build Config.lslp (Func.entry f) seed in
        let loads =
          List.filter
            (fun (n : Graph.node) ->
              match n.Graph.shape with
              | Graph.Group insts -> Instr.is_load insts.(0)
              | _ -> false)
            (Graph.nodes graph)
        in
        check_int "one shared load group" 1 (List.length loads));
    tc "graph claims exactly the vectorizable instructions" (fun () ->
        let graph, _ = build_graph "motivation-loads" Config.lslp in
        (* 2 stores + 2 ands + 4 shls + 4 loads = 12 claimed *)
        check_int "claimed" 12 (List.length (Graph.claimed_insts graph)));
    tc "SLP strategy builds plain groups for commutative ops" (fun () ->
        let graph, _ = build_graph "motivation-multi" Config.slp in
        check_bool "no multi-nodes" true
          (List.for_all
             (fun (n : Graph.node) ->
               match n.Graph.shape with Graph.Multi _ -> false | _ -> true)
             (Graph.nodes graph)));
  ]

let suite = bundle_tests @ seeds_tests @ multinode_tests
