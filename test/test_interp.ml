(* Tests for the interpreter: arithmetic semantics, memory, vector
   execution, the cycle simulator and the differential oracle. *)

open Lslp_ir
open Lslp_interp
open Helpers

let int_binop_tests =
  let open Eval in
  [
    tc "wrapping arithmetic" (fun () ->
        check_bool "max+1 wraps" true
          (Int64.equal (int_binop Opcode.Add Int64.max_int 1L) Int64.min_int);
        check_bool "mul wraps" true
          (Int64.equal
             (int_binop Opcode.Mul 0x8000000000000000L 2L) 0L));
    tc "division traps on zero" (fun () ->
        check_bool "raises" true
          (try ignore (int_binop Opcode.Sdiv 1L 0L); false
           with Eval.Trap _ -> true);
        check_bool "srem raises" true
          (try ignore (int_binop Opcode.Srem 1L 0L); false
           with Eval.Trap _ -> true));
    tc "shift amounts masked to 6 bits (x86 semantics)" (fun () ->
        check_bool "shl 64 = shl 0" true
          (Int64.equal (int_binop Opcode.Shl 3L 64L) 3L);
        check_bool "shl 65 = shl 1" true
          (Int64.equal (int_binop Opcode.Shl 3L 65L) 6L));
    tc "logical vs arithmetic shift right" (fun () ->
        check_bool "lshr" true
          (Int64.equal (int_binop Opcode.Lshr (-1L) 1L) Int64.max_int);
        check_bool "ashr" true
          (Int64.equal (int_binop Opcode.Ashr (-2L) 1L) (-1L)));
    tc "min/max" (fun () ->
        check_bool "smin" true (Int64.equal (int_binop Opcode.Smin (-3L) 2L) (-3L));
        check_bool "smax" true (Int64.equal (int_binop Opcode.Smax (-3L) 2L) 2L));
    tc "bitwise" (fun () ->
        check_bool "and" true (Int64.equal (int_binop Opcode.And 6L 3L) 2L);
        check_bool "or" true (Int64.equal (int_binop Opcode.Or 6L 3L) 7L);
        check_bool "xor" true (Int64.equal (int_binop Opcode.Xor 6L 3L) 5L));
    tc "float opcode on ints traps" (fun () ->
        check_bool "raises" true
          (try ignore (int_binop Opcode.Fadd 1L 1L); false
           with Eval.Trap _ -> true));
    tc "scalar compares order lanes and reject masks" (fun () ->
        check_bool "lt" true (Eval.scalar_cmp Opcode.Lt (Eval.VI 1L) (Eval.VI 2L) = Eval.VB true);
        check_bool "ge" true (Eval.scalar_cmp Opcode.Ge (Eval.VF 2.0) (Eval.VF 2.0) = Eval.VB true);
        check_bool "ne" true (Eval.scalar_cmp Opcode.Ne (Eval.VI 1L) (Eval.VI 1L) = Eval.VB false);
        check_bool "cmp of masks traps" true
          (try ignore (Eval.scalar_cmp Opcode.Eq (Eval.VB true) (Eval.VB true)); false
           with Eval.Trap _ -> true));
    tc "NaN compares false except != (the no-NaN contract's escape hatch)" (fun () ->
        let nan = Eval.VF Float.nan and one = Eval.VF 1.0 in
        check_bool "lt false" true (Eval.scalar_cmp Opcode.Lt nan one = Eval.VB false);
        check_bool "ge also false" true (Eval.scalar_cmp Opcode.Ge nan one = Eval.VB false);
        check_bool "eq false" true (Eval.scalar_cmp Opcode.Eq nan nan = Eval.VB false);
        check_bool "ne true" true (Eval.scalar_cmp Opcode.Ne nan nan = Eval.VB true));
    tc "mask lanes combine only with the logical opcodes" (fun () ->
        check_bool "and" true
          (Eval.scalar_binop Opcode.And (Eval.VB true) (Eval.VB false) = Eval.VB false);
        check_bool "or" true
          (Eval.scalar_binop Opcode.Or (Eval.VB true) (Eval.VB false) = Eval.VB true);
        check_bool "xor" true
          (Eval.scalar_binop Opcode.Xor (Eval.VB true) (Eval.VB true) = Eval.VB false);
        check_bool "arithmetic on masks traps" true
          (try ignore (Eval.scalar_binop Opcode.Add (Eval.VB true) (Eval.VB true)); false
           with Eval.Trap _ -> true));
    tc "float ops" (fun () ->
        check_bool "fadd" true (Eval.float_binop Opcode.Fadd 1.5 2.0 = 3.5);
        check_bool "fdiv" true (Eval.float_binop Opcode.Fdiv 1.0 4.0 = 0.25);
        check_bool "fmin" true (Eval.float_binop Opcode.Fmin 1.0 2.0 = 1.0);
        check_bool "fmax" true (Eval.float_binop Opcode.Fmax 1.0 2.0 = 2.0));
    tc "unops" (fun () ->
        check_bool "neg" true (Eval.scalar_unop Opcode.Neg (Eval.VI 5L) = Eval.VI (-5L));
        check_bool "fneg" true (Eval.scalar_unop Opcode.Fneg (Eval.VF 2.0) = Eval.VF (-2.0));
        check_bool "fsqrt" true (Eval.scalar_unop Opcode.Fsqrt (Eval.VF 9.0) = Eval.VF 3.0);
        check_bool "fabs" true (Eval.scalar_unop Opcode.Fabs (Eval.VF (-2.0)) = Eval.VF 2.0));
  ]

let memory_tests =
  [
    tc "bounds checking" (fun () ->
        let m = Memory.create () in
        Memory.alloc m "A" Types.I64 ~size:4;
        check_bool "oob read raises" true
          (try ignore (Memory.read_int m "A" 4); false
           with Memory.Fault _ -> true);
        check_bool "negative raises" true
          (try ignore (Memory.read_int m "A" (-1)); false
           with Memory.Fault _ -> true));
    tc "type confusion detected" (fun () ->
        let m = Memory.create () in
        Memory.alloc m "A" Types.F64 ~size:4;
        check_bool "raises" true
          (try ignore (Memory.read_int m "A" 0); false
           with Memory.Fault _ -> true));
    tc "unallocated array detected" (fun () ->
        let m = Memory.create () in
        check_bool "raises" true
          (try ignore (Memory.read_float m "Z" 0); false
           with Memory.Fault _ -> true));
    tc "snapshot is independent" (fun () ->
        let m = Memory.create () in
        Memory.set_int m "A" [| 1L; 2L |];
        let s = Memory.snapshot m in
        Memory.write_int m "A" 0 99L;
        check_bool "snapshot unchanged" true
          (Int64.equal (Memory.read_int s "A" 0) 1L));
    tc "compare_memories exact for ints, tolerant for floats" (fun () ->
        let a = Memory.create () and b = Memory.create () in
        Memory.set_int a "I" [| 1L |];
        Memory.set_int b "I" [| 1L |];
        Memory.set_float a "F" [| 1.0 |];
        Memory.set_float b "F" [| 1.0 +. 1e-13 |];
        check_int "no mismatch" 0 (List.length (Memory.compare_memories a b));
        Memory.write_int b "I" 0 2L;
        check_int "int mismatch" 1 (List.length (Memory.compare_memories a b)));
    tc "float_close handles nan and scale" (fun () ->
        check_bool "nan vs nan" true
          (Memory.float_close ~tol:1e-9 Float.nan Float.nan);
        check_bool "relative" true
          (Memory.float_close ~tol:1e-9 1e18 (1e18 +. 1.0));
        check_bool "not close" false (Memory.float_close ~tol:1e-9 1.0 1.1));
  ]

let exec_kernel src ~ints ~mem_setup =
  let f = compile src in
  let mem = Memory.create () in
  mem_setup mem;
  let stats = Eval.run f ~int_args:ints ~float_args:[] ~mem in
  (mem, stats)

let execution_tests =
  [
    tc "scalar kernel end to end" (fun () ->
        let mem, _ =
          exec_kernel {|
kernel k(i64 A[], i64 B[], i64 i) {
  A[i] = (B[i] << 1) + 3;
}
|}
            ~ints:[ ("i", 1L) ]
            ~mem_setup:(fun mem ->
              Memory.set_int mem "A" [| 0L; 0L |];
              Memory.set_int mem "B" [| 10L; 20L |])
        in
        check_bool "A[1] = 43" true (Int64.equal (Memory.read_int mem "A" 1) 43L));
    tc "affine subscripts with coefficients" (fun () ->
        let mem, _ =
          exec_kernel {|
kernel k(f64 A[], f64 B[], i64 i) {
  A[2*i+1] = B[3*i] * 2.0;
}
|}
            ~ints:[ ("i", 2L) ]
            ~mem_setup:(fun mem ->
              Memory.set_float mem "A" (Array.make 8 0.0);
              Memory.set_float mem "B" (Array.make 8 5.0))
        in
        check_bool "A[5] = 10" true (Memory.read_float mem "A" 5 = 10.0));
    tc "vector instructions execute lanewise" (fun () ->
        (* build a vector function by vectorizing a scalar one *)
        let f = kernel "motivation-loads" in
        let _, g = vectorize f in
        check_bool "has vector op" true (count_insts is_vector_op g > 0);
        assert_sound ~reference:f ~candidate:g ());
    tc "simulator counts cycles and instructions" (fun () ->
        let _, stats =
          exec_kernel {|
kernel k(i64 A[], i64 i) {
  A[i] = A[i] + 1;
}
|}
            ~ints:[ ("i", 0L) ]
            ~mem_setup:(fun mem -> Memory.set_int mem "A" [| 7L |])
        in
        check_int "3 instructions" 3 stats.Eval.executed;
        check_int "3 cycles (load+add+store)" 3 stats.Eval.cycles);
    tc "vectorized code costs fewer simulated cycles" (fun () ->
        let f = kernel "motivation-multi" in
        let _, g = vectorize f in
        let o = Oracle.compare_runs ~reference:f ~candidate:g () in
        check_bool "faster" true (o.candidate_cycles < o.reference_cycles));
    tc "oracle catches an injected bug" (fun () ->
        let f = compile {|
kernel k(i64 A[], i64 i) { A[i] = A[i] + 1; }
|} in
        let g = compile {|
kernel k(i64 A[], i64 i) { A[i] = A[i] + 2; }
|} in
        check_bool "mismatch detected" false
          (Oracle.equivalent ~reference:f ~candidate:g ()));
    tc "oracle seeds are deterministic" (fun () ->
        let f = kernel "453.boy-surface" in
        let a = Oracle.compare_runs ~seed:9 ~reference:f ~candidate:f () in
        let b = Oracle.compare_runs ~seed:9 ~reference:f ~candidate:f () in
        check_int "same cycles" a.reference_cycles b.reference_cycles;
        check_int "self-equivalent" 0 (List.length a.mismatches));
    tc "branching kernel executes as predicated straight-line code" (fun () ->
        let mem, _ =
          exec_kernel {|
kernel k(f64 x[], f64 y[], i64 i) {
  if (x[i] < 0.0) { y[i] = 0.0 - x[i]; } else { y[i] = x[i]; }
}
|}
            ~ints:[ ("i", 1L) ]
            ~mem_setup:(fun mem ->
              Memory.set_float mem "x" [| 4.0; -3.0 |];
              Memory.set_float mem "y" [| 0.0; 0.0 |])
        in
        check_bool "then branch took effect" true
          (Memory.read_float mem "y" 1 = 3.0);
        check_bool "other element untouched" true
          (Memory.read_float mem "y" 0 = 0.0));
    tc "sdiv kernels never see zero divisors from the oracle" (fun () ->
        let f = compile {|
kernel k(i64 A[], i64 B[], i64 i) { A[i] = A[i] / B[i]; }
|} in
        check_bool "runs" true (Oracle.equivalent ~reference:f ~candidate:f ()));
  ]

let suite = int_binop_tests @ memory_tests @ execution_tests
