(* Golden results for the evaluation kernels (the paper's Table 2) and
   soundness of every kernel under every configuration. *)

open Lslp_core
open Helpers

(* (kernel, SLP-NR cost, SLP cost, LSLP cost) — the static vectorization
   costs this reproduction measures (Figure 10's metric; EXPERIMENTS.md maps
   them to the paper's bars).  These pins protect the algorithm's observable
   decisions from silent regressions. *)
let golden =
  [
    ("453.boy-surface", 0, 0, -33);
    ("453.intersect-quadratic", -15, -15, -28);
    ("453.calc-z3", 0, -4, -4);
    ("453.vsumsqr", 0, -6, -6);
    ("453.hreciprocal", -20, -20, -20);
    ("453.mesh1", 0, -2, -10);
    ("433.mult-su2-mat", 0, -4, 0);
    ("453.quartic-cylinder", -1, -1, -1);
    ("motivation-loads", 0, 0, -6);
    ("motivation-opcodes", 0, 0, -2);
    (* (the +4 SLP graph cost of Figure 3 is pinned in test_cost; the
       region is rejected, so the accepted-cost metric here reads 0) *)
    ("motivation-multi", -2, -2, -10);
  ]

let golden_tests =
  List.map
    (fun (key, nr, slp, lslp) ->
      tc (Fmt.str "golden costs: %s" key) (fun () ->
          let f = kernel key in
          check_int "SLP-NR" nr (total_cost Config.slp_nr f);
          check_int "SLP" slp (total_cost Config.slp f);
          check_int "LSLP" lslp (total_cost Config.lslp f)))
    golden

let ordering_tests =
  [
    tc "LSLP matches or beats SLP on the motivating examples" (fun () ->
        (* Not a suite-wide invariant: the paper itself observes that local
           heuristics cannot guarantee a globally better solution (§5.2,
           SLP slightly better than LSLP on 433.milc) — and our
           mult-su2-mat shows the same inversion. *)
        List.iter
          (fun (key, _, slp, lslp) ->
            if String.length key > 10 && String.sub key 0 10 = "motivation"
            then check_bool key true (lslp <= slp))
          golden);
    tc "geomean speedup: LSLP clearly ahead of both baselines" (fun () ->
        let geo config =
          let ratios =
            List.map
              (fun (k : Lslp_kernels.Catalog.kernel) ->
                let f = Lslp_kernels.Catalog.compile k in
                let _, g = vectorize ~config f in
                let o =
                  Lslp_interp.Oracle.compare_runs ~reference:f ~candidate:g ()
                in
                log
                  (float_of_int o.Lslp_interp.Oracle.reference_cycles
                  /. float_of_int o.Lslp_interp.Oracle.candidate_cycles))
              Lslp_kernels.Catalog.table2
          in
          exp (List.fold_left ( +. ) 0.0 ratios
               /. float_of_int (List.length ratios))
        in
        let nr = geo Config.slp_nr and slp = geo Config.slp
        and lslp = geo Config.lslp in
        check_bool "lslp > slp" true (lslp > slp);
        check_bool "lslp > slp-nr" true (lslp > nr);
        check_bool "lslp gains overall" true (lslp > 1.0));
  ]

let soundness_tests =
  [
    tc "every kernel x config is verified and equivalent" (fun () ->
        List.iter
          (fun (k : Lslp_kernels.Catalog.kernel) ->
            let f = Lslp_kernels.Catalog.compile k in
            List.iter
              (fun config ->
                let _, g = vectorize ~config f in
                assert_sound ~seeds:[ 3; 11 ] ~reference:f ~candidate:g ())
              [ Config.slp_nr; Config.slp; Config.lslp; Config.lslp_la 0;
                Config.lslp_la 2; Config.lslp_multi 1; Config.lslp_multi 2 ])
          Lslp_kernels.Catalog.all);
    tc "anomaly kernels: TTI profit but machine regression" (fun () ->
        (* §5.2's cost-model/performance inconsistency, reproduced.
           quartic-cylinder regresses under every configuration; mult-su2
           under SLP (LSLP's graph is rejected outright for that kernel). *)
        List.iter
          (fun (key, config) ->
            let f = kernel key in
            let report, g = vectorize ~config f in
            check_bool (key ^ " vectorized") true
              (report.Pipeline.vectorized_regions > 0);
            check_bool (key ^ " TTI negative") true
              (report.Pipeline.total_cost < 0);
            let o =
              Lslp_interp.Oracle.compare_runs ~reference:f ~candidate:g ()
            in
            check_bool (key ^ " machine slower") true
              (o.candidate_cycles > o.reference_cycles))
          [ ("453.quartic-cylinder", Config.lslp);
            ("453.quartic-cylinder", Config.slp);
            ("433.mult-su2-mat", Config.slp) ]);
    tc "mesh1 reproduces the SLP-NR-beats-SLP observation" (fun () ->
        let f = kernel "453.mesh1" in
        let speed config =
          let _, g = vectorize ~config f in
          let o = Lslp_interp.Oracle.compare_runs ~reference:f ~candidate:g () in
          float_of_int o.reference_cycles /. float_of_int o.candidate_cycles
        in
        check_bool "SLP-NR >= SLP" true (speed Config.slp_nr >= speed Config.slp);
        check_bool "LSLP best" true (speed Config.lslp > speed Config.slp));
    tc "vsumsqr: LSLP cost equals SLP cost (the paper's observation)"
      (fun () ->
        let f = kernel "453.vsumsqr" in
        check_int "equal" (total_cost Config.slp f) (total_cost Config.lslp f));
    tc "filler chain is never vectorized" (fun () ->
        let f = kernel "filler-chain" in
        List.iter
          (fun config ->
            check_int (config.Config.name) 0 (vectorized_regions config f))
          [ Config.slp_nr; Config.slp; Config.lslp ]);
    tc "catalog lookup fails loudly" (fun () ->
        check_bool "raises" true
          (try ignore (Lslp_kernels.Catalog.find "nope"); false
           with Invalid_argument _ -> true));
    tc "full benchmarks reference only known kernels" (fun () ->
        List.iter
          (fun (b : Lslp_kernels.Catalog.benchmark) ->
            List.iter
              (fun key -> ignore (Lslp_kernels.Catalog.find key))
              b.kernel_keys)
          Lslp_kernels.Catalog.full_benchmarks);
  ]

let suite = golden_tests @ ordering_tests @ soundness_tests
