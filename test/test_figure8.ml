(* The paper's Figure 8: a 4-lane multi-node whose operand matrix exercises
   every reordering mode.

   Reconstruction of the figure's DAG: each lane stores a chain of three
   bit-wise-ands over four operands — a shift of B (the figure's light-blue
   shifts), a load of D, a constant (except lane 2, which has a load of E in
   that position — the event that flips the CONST slot to FAILED; as in the
   figure, which operand the failed slot then consumes depends on candidate
   order), and a
   shift of C (the green shifts).  Lanes associate and order the operands
   differently.

   Expected outcome, straight from the figure:
   - slot of B-shifts  -> vectorizable shl group over B[i..i+3]
   - slot of D loads   -> wide load D[i..i+3]
   - slot of constants -> FAILED at lane 2 (E[i] instead of a constant),
                          emitted as a mixed gather
   - slot of C-shifts  -> vectorizable shl group over C[i..i+3] *)

open Lslp_ir
open Lslp_core
open Helpers

let figure8_src = {|
kernel figure8(i64 A[], i64 B[], i64 C[], i64 D[], i64 E[], i64 i) {
  A[i+0] = ((B[i+0] << 1) & D[i+0]) & (7 & (C[i+0] << 2));
  A[i+1] = (D[i+1] & (B[i+1] << 3)) & ((C[i+1] << 4) & 7);
  A[i+2] = (E[i] & (C[i+2] << 5)) & ((B[i+2] << 6) & D[i+2]);
  A[i+3] = ((B[i+3] << 7) & 7) & (D[i+3] & (C[i+3] << 8));
}
|}

let build () =
  let f = compile figure8_src in
  let seed = List.hd (Seeds.collect Config.lslp (Func.entry f)) in
  let graph, root = Graph_builder.build Config.lslp (Func.entry f) seed in
  (f, graph, root)

let multi_of graph =
  List.find_map
    (fun (n : Graph.node) ->
      match n.Graph.shape with
      | Graph.Multi m when m.Graph.m_op = Opcode.And -> Some (n, m)
      | _ -> None)
    (Graph.nodes graph)
  |> Option.get

let suite =
  [
    tc "the & chain coarsens into a 3-group multi-node" (fun () ->
        let _, graph, _ = build () in
        let _, m = multi_of graph in
        check_int "three & groups" 3 (List.length m.Graph.m_groups);
        List.iter
          (fun g -> check_int "4 lanes each" 4 (Array.length g))
          m.Graph.m_groups);
    tc "the multi-node has four operand slots" (fun () ->
        let _, graph, _ = build () in
        let node, _ = multi_of graph in
        check_int "slots" 4 (List.length (Graph.children graph node)));
    tc "slots sort into B-shifts, D loads, C-shifts, and a failed mix"
      (fun () ->
        let _, graph, _ = build () in
        let node, _ = multi_of graph in
        let shift_groups = ref 0 in
        let wide_d_loads = ref 0 in
        let mixed_gathers = ref 0 in
        List.iter
          (fun (child : Graph.node) ->
            match child.Graph.shape with
            | Graph.Multi { Graph.m_groups = [ insts ]; _ }
            | Graph.Group insts -> (
              match insts.(0).Instr.kind with
              | Instr.Binop (Opcode.Shl, _, _) -> incr shift_groups
              | Instr.Load _ -> incr wide_d_loads
              | _ -> ())
            | Graph.Multi _ -> ()
            | Graph.Gather vs ->
              let has_const =
                Array.exists
                  (fun v -> match v with Instr.Const _ -> true | _ -> false)
                  vs
              in
              let has_load =
                Array.exists
                  (fun v ->
                    match v with Instr.Ins i -> Instr.is_load i | _ -> false)
                  vs
              in
              if has_const && has_load then incr mixed_gathers)
          (Graph.children graph node);
        check_int "two shift groups (blue + green)" 2 !shift_groups;
        check_int "one wide D load" 1 !wide_d_loads;
        check_int "one failed const slot (mixed gather)" 1 !mixed_gathers);
    tc "shift groups pull consecutive B and C loads" (fun () ->
        let f, graph, _ = build () in
        ignore graph;
        (* end-to-end: the whole kernel vectorizes, with wide loads of B, C
           and D surviving in the output *)
        let reference = Func.clone f in
        let report = Pipeline.run ~config:Config.lslp f in
        check_int "vectorized" 1 report.Pipeline.vectorized_regions;
        let wide_bases =
          List.filter_map
            (fun (i : Instr.t) ->
              match i.Instr.kind with
              | Instr.Load a when a.Instr.access_lanes = 4 ->
                Some a.Instr.base
              | _ -> None)
            (Block.to_list (Func.entry f))
          |> List.sort_uniq String.compare
        in
        check (Alcotest.list Alcotest.string) "B, C, D wide"
          [ "B"; "C"; "D" ] wide_bases;
        assert_sound ~reference ~candidate:f ());
    tc "vanilla SLP only scratches figure 8" (fun () ->
        let slp = Pipeline.run ~config:Config.slp (compile figure8_src) in
        let lslp = Pipeline.run ~config:Config.lslp (compile figure8_src) in
        check_bool "LSLP much deeper" true
          (lslp.Pipeline.total_cost < slp.Pipeline.total_cost - 10));
    tc "multi-node size sweep is not monotone but full size wins" (fun () ->
        (* trimming a 3-op chain to 2 groups mispairs the leaves (the same
           non-monotonicity Figure 13 shows per kernel); the full chain is
           the best configuration *)
        let cost limit =
          let f = compile figure8_src in
          (Pipeline.run ~config:(Config.lslp_multi limit) f)
            .Pipeline.total_cost
        in
        let full =
          (Pipeline.run ~config:Config.lslp (compile figure8_src))
            .Pipeline.total_cost
        in
        check_bool "full beats every cap" true
          (List.for_all (fun l -> full <= cost l) [ 1; 2; 3 ]);
        check_int "3 groups = the whole chain" full (cost 3));
  ]
