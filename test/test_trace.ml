(* The decision-trace layer (lib/trace).

   Two load-bearing properties:

   - {b zero-cost-when-off}: with [Config.trace] off (every stock
     configuration) the pipeline allocates no sink and the report's
     [trace_events] is empty — and, differentially, turning tracing on
     changes nothing observable: identical IR (modulo instruction-id
     renaming), identical remarks, identical deterministic counters.

   - {b the stream is well-formed}: logical timestamps are the sink's own
     monotone sequence, spans nest, graph events reference only nodes
     they introduced, and all three exporters accept every stream the
     pipeline can produce (the Chrome one re-parsed through the project's
     own JSON reader). *)

open Lslp_ir
open Lslp_core
open Helpers
module Trace = Lslp_trace.Trace
module Json = Lslp_util.Json
module Probe = Lslp_telemetry.Probe
module Report = Lslp_telemetry.Report
module Inject = Lslp_robust.Inject
module Catalog = Lslp_kernels.Catalog
module Fuzz = Lslp_fuzz.Fuzz
module Gen = Lslp_fuzz.Gen

let unroll_factor = 4

let run_with ?(trace = false) ?(config = Config.lslp) reference =
  let candidate = Func.clone reference in
  ignore (Lslp_frontend.Unroll.run ~factor:unroll_factor candidate);
  let report = Pipeline.run ~config:(Config.with_trace trace config) candidate in
  (report, Fuzz.normalize_ids (Fmt.str "%a" Printer.pp_func candidate))

let traced ?config key =
  let report, _ = run_with ~trace:true ?config (kernel key) in
  report.Pipeline.trace_events

let remark_strings (report : Pipeline.report) =
  List.map (Fmt.str "%a" Lslp_check.Remark.pp) report.Pipeline.remarks

let payload_names events =
  List.map (fun (e : Trace.event) -> Trace.payload_name e.Trace.payload) events

let count name events =
  List.length (List.filter (fun n -> n = name) (payload_names events))

(* ---- sink ---------------------------------------------------------- *)

let sink_tests =
  [
    tc "timestamps are the sink's own monotone sequence" (fun () ->
        let tr = Trace.create () in
        Trace.set_region tr "b0";
        for _ = 1 to 5 do
          Trace.record tr (Trace.Span_begin { pass = "p" });
          Trace.record tr (Trace.Span_end { pass = "p" })
        done;
        let events = Trace.events tr in
        check_int "count" 10 (List.length events);
        List.iteri
          (fun i (e : Trace.event) ->
            check_int "ts" i e.Trace.ts;
            check_string "region" "b0" e.Trace.region;
            check_bool "no wall clock by default" true (e.Trace.wall = None))
          events);
    tc "set_region stamps subsequent events only" (fun () ->
        let tr = Trace.create () in
        Trace.set_region tr "first";
        Trace.record tr (Trace.Seed_tried { seed = "s"; lanes = 4 });
        Trace.set_region tr "second";
        Trace.record tr (Trace.Seed_tried { seed = "s"; lanes = 4 });
        (match Trace.events tr with
         | [ a; b ] ->
           check_string "first" "first" a.Trace.region;
           check_string "second" "second" b.Trace.region
         | other -> Alcotest.failf "expected 2 events, got %d"
                      (List.length other)));
    tc "fresh_gid never repeats" (fun () ->
        let tr = Trace.create () in
        let gids = List.init 8 (fun _ -> Trace.fresh_gid tr) in
        check_int "distinct" 8 (List.length (List.sort_uniq compare gids)));
    tc "wall:true annotates every event" (fun () ->
        let tr = Trace.create ~wall:true () in
        Trace.record tr (Trace.Span_begin { pass = "p" });
        match Trace.events tr with
        | [ e ] -> check_bool "wall present" true (e.Trace.wall <> None)
        | _ -> Alcotest.fail "expected one event");
  ]

(* ---- stream well-formedness over real pipeline runs ----------------- *)

(* Spans must nest: every Span_end closes the innermost open Span_begin
   of the same pass name, and nothing stays open at the end. *)
let check_well_nested events =
  let stack =
    List.fold_left
      (fun stack (e : Trace.event) ->
        match e.Trace.payload with
        | Trace.Span_begin { pass } -> pass :: stack
        | Trace.Span_end { pass } -> (
          match stack with
          | top :: rest when top = pass -> rest
          | top :: _ ->
            Alcotest.failf "span %s closed while %s open" pass top
          | [] -> Alcotest.failf "span %s closed with none open" pass)
        | _ -> stack)
      [] events
  in
  check_int "all spans closed" 0 (List.length stack)

(* Graph events may only reference node ids their own graph introduced. *)
let check_graph_refs events =
  let nodes : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.payload with
      | Trace.Graph_node { gid; nid; _ } -> Hashtbl.replace nodes (gid, nid) ()
      | Trace.Graph_edge { gid; parent; child; _ } ->
        check_bool "edge parent known" true (Hashtbl.mem nodes (gid, parent));
        check_bool "edge child known" true (Hashtbl.mem nodes (gid, child))
      | Trace.Dep_edge { gid; src; dst } ->
        check_bool "dep src known" true (Hashtbl.mem nodes (gid, src));
        check_bool "dep dst known" true (Hashtbl.mem nodes (gid, dst))
      | _ -> ())
    events

let check_get_best_shape events =
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.payload with
      | Trace.Get_best { candidates; levels; chosen; _ } ->
        (match chosen with
         | Some c -> check_bool "chosen is a candidate" true
                       (List.mem c candidates)
         | None -> ());
        List.iter
          (fun (_, scores) ->
            (* scores cover the tied subset of the candidates *)
            check_bool "scores non-empty" true (scores <> []);
            check_bool "no more scores than candidates" true
              (List.length scores <= List.length candidates))
          levels
      | _ -> ())
    events

let stream_tests =
  [
    tc "saxpy stream: shape, nesting, references" (fun () ->
        let events = traced "loop.saxpy" in
        check_bool "non-empty" true (events <> []);
        List.iteri
          (fun i (e : Trace.event) -> check_int "monotone ts" i e.Trace.ts)
          events;
        check_well_nested events;
        check_graph_refs events;
        check_get_best_shape events;
        (* one seed-collect per block the driver visits *)
        check_bool "seeds recorded" true (count "seeds-found" events > 0);
        check_bool "get_best recorded" true (count "get-best" events > 0);
        check_bool "cost recorded" true (count "cost" events > 0);
        check_bool "emits recorded" true (count "emit" events > 0);
        check_bool "region outcome recorded" true
          (count "region-outcome" events > 0));
    tc "every catalog kernel yields a well-formed stream" (fun () ->
        List.iter
          (fun (k : Catalog.kernel) ->
            let events = traced k.Catalog.key in
            check_well_nested events;
            check_graph_refs events;
            check_get_best_shape events)
          Catalog.all);
    tc "an injected fault surfaces as a rollback and keeps spans nested"
      (fun () ->
        let config =
          Config.with_inject
            (Inject.make ~rate:1.0 ~seed:7 ())
            Config.lslp
        in
        let report, _ = run_with ~trace:true ~config (kernel "loop.saxpy") in
        let events = report.Pipeline.trace_events in
        check_bool "rollback recorded" true (count "rollback" events > 0);
        check_well_nested events;
        check_bool "degraded outcome recorded" true
          (List.exists
             (fun (e : Trace.event) ->
               match e.Trace.payload with
               | Trace.Region_outcome { outcome = "degraded"; _ } -> true
               | _ -> false)
             events));
    tc "trace is deterministic per (input, configuration)" (fun () ->
        let a = traced "453.vsumsqr" and b = traced "453.vsumsqr" in
        check_int "same length" (List.length a) (List.length b);
        (* labels embed the global instruction-id counter, so compare the
           payload-name sequence (the decision structure) *)
        check_bool "same decision sequence" true
          (payload_names a = payload_names b));
  ]

(* ---- exporters ------------------------------------------------------ *)

let exporter_tests =
  [
    tc "chrome export is valid JSON with balanced spans" (fun () ->
        let events = traced "motivation-multi" in
        let s = Trace.chrome_string ~meta:[ ("function", "f") ] events in
        (match Json.of_string s with
         | Error e -> Alcotest.failf "chrome export unparseable: %s" e
         | Ok j ->
           let trace_events =
             match Json.member "traceEvents" j with
             | Some arr -> Option.get (Json.to_list_opt arr)
             | None -> Alcotest.fail "no traceEvents field"
           in
           let ph p =
             List.length
               (List.filter
                  (fun ev ->
                    match Json.member "ph" ev with
                    | Some (Json.Str s) -> s = p
                    | _ -> false)
                  trace_events)
           in
           check_bool "has events" true (List.length trace_events > 0);
           check_int "begin/end balanced" (ph "B") (ph "E")));
    tc "dot export is brace-balanced and one cluster per graph" (fun () ->
        let events = traced "motivation-multi" in
        let s = Trace.to_dot events in
        let balance =
          String.fold_left
            (fun d c -> if c = '{' then d + 1 else if c = '}' then d - 1 else d)
            0 s
        in
        check_int "balanced braces" 0 balance;
        check_bool "digraph" true (String.length s >= 7
                                   && String.sub s 0 7 = "digraph");
        let occurrences sub =
          let n = String.length s and m = String.length sub in
          let rec go k acc =
            if k + m > n then acc
            else go (k + 1) (if String.sub s k m = sub then acc + 1 else acc)
          in
          go 0 0
        in
        check_int "one subgraph per graph build"
          (count "graph-start" events)
          (occurrences "subgraph cluster_g"));
    tc "log export covers every event" (fun () ->
        let events = traced "loop.saxpy" in
        let s = Trace.to_log events in
        (* each event renders with its zero-padded logical timestamp *)
        List.iter
          (fun (e : Trace.event) ->
            let stamp = Fmt.str "%04d " e.Trace.ts in
            let n = String.length s and m = String.length stamp in
            let rec mem k = k + m <= n && (String.sub s k m = stamp || mem (k + 1)) in
            check_bool (Fmt.str "ts %d present" e.Trace.ts) true (mem 0))
          events);
    tc "empty stream exports cleanly in all three formats" (fun () ->
        (match Json.of_string (Trace.chrome_string []) with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "chrome: %s" e);
        check_bool "dot" true (String.length (Trace.to_dot []) > 0);
        check_string "log" "" (Trace.to_log []));
  ]

(* ---- zero-cost-when-off --------------------------------------------- *)

let off_tests =
  [
    tc "stock configurations carry no trace events" (fun () ->
        List.iter
          (fun (k : Catalog.kernel) ->
            let report, _ = run_with (Catalog.compile k) in
            check_int k.Catalog.key 0
              (List.length report.Pipeline.trace_events))
          Catalog.all);
  ]

let config_pool =
  [| Config.slp_nr; Config.slp; Config.lslp; Config.lslp_la 0;
     Config.lslp_la 2; Config.lslp_multi 1; Config.lslp_multi 2 |]

let qcheck_trace_transparent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40
       ~name:"tracing on and off are observationally identical"
       ~print:string_of_int
       QCheck2.Gen.(int_range 0 1_000_000)
       (fun seed ->
         let st = Random.State.make [| seed |] in
         let prog = Gen.generate st in
         let reference = Gen.build prog in
         Array.for_all
           (fun base ->
             let config = Config.with_remarks true base in
             let ron, iron = run_with ~trace:true ~config reference in
             let roff, iroff = run_with ~trace:false ~config reference in
             let counters (r : Pipeline.report) =
               List.map
                 (fun (_, proj) ->
                   proj (Report.total_counters r.Pipeline.telemetry))
                 Probe.counter_fields
             in
             iron = iroff
             && remark_strings ron = remark_strings roff
             && counters ron = counters roff
             && ron.Pipeline.vectorized_regions
                = roff.Pipeline.vectorized_regions
             && ron.Pipeline.degraded_regions
                = roff.Pipeline.degraded_regions
             && roff.Pipeline.trace_events = []
             && ron.Pipeline.trace_events <> [])
           config_pool))

let suite =
  sink_tests @ stream_tests @ exporter_tests @ off_tests
  @ [ qcheck_trace_transparent ]
