(* Tests for the IR core: types, opcodes, instructions, blocks, use info,
   DCE and CSE. *)

open Lslp_ir
open Helpers

let types_tests =
  [
    tc "lanes" (fun () ->
        check_int "scalar" 1 (Types.lanes Types.i64);
        check_int "vec" 4 (Types.lanes (Types.vec Types.F64 4));
        check_int "void" 0 (Types.lanes Types.Void));
    tc "vec rejects lane count < 2" (fun () ->
        Alcotest.check_raises "lanes=1" (Invalid_argument
          "Types.vec: lane count must be >= 2") (fun () ->
            ignore (Types.vec Types.I64 1)));
    tc "widen" (fun () ->
        check_bool "i64 -> <2 x i64>" true
          (Types.equal (Types.widen Types.i64 2) (Types.vec Types.I64 2)));
    tc "is_float" (fun () ->
        check_bool "f64" true (Types.is_float Types.f64);
        check_bool "vec f64" true (Types.is_float (Types.vec Types.F64 2));
        check_bool "i64" false (Types.is_float Types.i64));
    tc "printing" (fun () ->
        check_string "i64" "i64" (Types.to_string Types.i64);
        check_string "vec" "<4 x f64>" (Types.to_string (Types.vec Types.F64 4));
        check_string "void" "void" (Types.to_string Types.Void));
  ]

let opcode_tests =
  [
    tc "commutative set" (fun () ->
        let commutative =
          List.filter Opcode.is_commutative Opcode.all_binops
        in
        check_int "count" 11 (List.length commutative);
        check_bool "sub not commutative" false (Opcode.is_commutative Opcode.Sub);
        check_bool "fdiv not commutative" false
          (Opcode.is_commutative Opcode.Fdiv);
        check_bool "xor commutative" true (Opcode.is_commutative Opcode.Xor));
    tc "commutative implies associative here" (fun () ->
        List.iter
          (fun op ->
            if Opcode.is_commutative op then
              check_bool (Opcode.binop_name op) true (Opcode.is_associative op))
          Opcode.all_binops);
    tc "float classification" (fun () ->
        check_bool "fadd" true (Opcode.binop_is_float Opcode.Fadd);
        check_bool "add" false (Opcode.binop_is_float Opcode.Add);
        check_bool "fsqrt" true (Opcode.unop_is_float Opcode.Fsqrt));
    tc "operand scalar type" (fun () ->
        check_bool "shl on i64" true
          (Types.equal_scalar (Opcode.binop_operand_scalar Opcode.Shl) Types.I64);
        check_bool "fmin on f64" true
          (Types.equal_scalar (Opcode.binop_operand_scalar Opcode.Fmin) Types.F64));
    tc "names unique" (fun () ->
        let names = List.map Opcode.binop_name Opcode.all_binops in
        check_int "no duplicates" (List.length names)
          (List.length (List.sort_uniq String.compare names)));
  ]

let mk_load base k =
  Instr.create ~name:"ld"
    (Instr.Load
       { Instr.base; elt = Types.I64;
         index = Affine.add_const k (Affine.sym "i"); access_lanes = 1 })
    Types.i64

let instr_tests =
  [
    tc "fresh ids distinct" (fun () ->
        let a = mk_load "A" 0 and b = mk_load "A" 0 in
        check_bool "ids differ" false (Instr.equal a b));
    tc "operands of binop" (fun () ->
        let a = mk_load "A" 0 in
        let add =
          Instr.create (Instr.Binop (Opcode.Add, Instr.Ins a, Builder.iconst 1))
            Types.i64
        in
        check_int "arity" 2 (List.length (Instr.operands add)));
    tc "set_operands replaces" (fun () ->
        let a = mk_load "A" 0 and b = mk_load "B" 0 in
        let add =
          Instr.create (Instr.Binop (Opcode.Add, Instr.Ins a, Instr.Ins a))
            Types.i64
        in
        Instr.set_operands add [ Instr.Ins b; Instr.Ins b ];
        check_bool "first operand replaced" true
          (Instr.equal_value (List.hd (Instr.operands add)) (Instr.Ins b)));
    tc "set_operands arity mismatch raises" (fun () ->
        let a = mk_load "A" 0 in
        let add =
          Instr.create (Instr.Binop (Opcode.Add, Instr.Ins a, Instr.Ins a))
            Types.i64
        in
        check_bool "raises" true
          (try Instr.set_operands add [ Instr.Ins a ]; false
           with Invalid_argument _ -> true));
    tc "opclass distinguishes opcodes" (fun () ->
        let a = mk_load "A" 0 in
        let add = Instr.create (Instr.Binop (Opcode.Add, Instr.Ins a, Instr.Ins a)) Types.i64 in
        let mul = Instr.create (Instr.Binop (Opcode.Mul, Instr.Ins a, Instr.Ins a)) Types.i64 in
        check_bool "add <> mul" false
          (Instr.equal_opclass (Instr.opclass add) (Instr.opclass mul));
        check_bool "load class" true
          (Instr.equal_opclass (Instr.opclass a) (Instr.opclass (mk_load "B" 3))));
    tc "store has side effect, load does not" (fun () ->
        let ld = mk_load "A" 0 in
        let st =
          Instr.create
            (Instr.Store
               ({ Instr.base = "A"; elt = Types.I64;
                  index = Affine.sym "i"; access_lanes = 1 },
                Instr.Ins ld))
            Types.Void
        in
        check_bool "store" true (Instr.has_side_effect st);
        check_bool "load" false (Instr.has_side_effect ld);
        check_bool "store is memory access" true (Instr.is_memory_access st));
    tc "const equality is bitwise for floats" (fun () ->
        check_bool "nan = nan" true
          (Instr.equal_const (Instr.Cfloat Float.nan) (Instr.Cfloat Float.nan));
        check_bool "0. <> -0." false
          (Instr.equal_const (Instr.Cfloat 0.0) (Instr.Cfloat (-0.0)));
        check_bool "int vs float" false
          (Instr.equal_const (Instr.Cint 0L) (Instr.Cfloat 0.0)));
  ]

let block_tests =
  [
    tc "append preserves order and positions" (fun () ->
        let blk = Block.create () in
        let a = mk_load "A" 0 and b = mk_load "A" 1 in
        Block.append blk a;
        Block.append blk b;
        check_int "len" 2 (Block.length blk);
        check_int "pos a" 0 (Block.position_exn blk a);
        check_int "pos b" 1 (Block.position_exn blk b));
    tc "insert_before" (fun () ->
        let blk = Block.create () in
        let a = mk_load "A" 0 and b = mk_load "A" 1 and c = mk_load "A" 2 in
        Block.append blk a;
        Block.append blk c;
        Block.insert_before blk ~anchor:c [ b ];
        check_int "pos b" 1 (Block.position_exn blk b);
        check_int "pos c" 2 (Block.position_exn blk c));
    tc "insert_before unknown anchor raises" (fun () ->
        let blk = Block.create () in
        check_bool "raises" true
          (try Block.insert_before blk ~anchor:(mk_load "A" 0) []; false
           with Invalid_argument _ -> true));
    tc "remove invalidates position" (fun () ->
        let blk = Block.create () in
        let a = mk_load "A" 0 in
        Block.append blk a;
        Block.remove blk a;
        check_bool "gone" true (Block.position blk a = None);
        check_bool "not mem" false (Block.mem blk a));
    tc "set_order" (fun () ->
        let blk = Block.create () in
        let a = mk_load "A" 0 and b = mk_load "A" 1 in
        Block.append blk a;
        Block.append blk b;
        Block.set_order blk [ b; a ];
        check_int "b first" 0 (Block.position_exn blk b));
  ]

let func_with_dead_code () =
  let b =
    Builder.create ~name:"dead"
      ~args:[ ("A", Instr.Array_arg Types.I64); ("i", Instr.Int_arg) ]
  in
  let x = Builder.load b ~base:"A" (Builder.idx 0) in
  let _dead = Builder.binop b Opcode.Add x (Builder.iconst 1) in
  let dead2 = Builder.binop b Opcode.Mul x x in
  let _dead3 = Builder.binop b Opcode.Add dead2 (Builder.iconst 2) in
  Builder.store b ~base:"A" (Builder.idx 1) x;
  Builder.func b

let dce_tests =
  [
    tc "removes dead trees transitively" (fun () ->
        let f = func_with_dead_code () in
        let removed = Dce.run f in
        check_int "removed" 3 removed;
        check_int "remaining" 2 (Block.length (Func.entry f));
        Verifier.verify_exn f);
    tc "keeps stores and their inputs" (fun () ->
        let f = func_with_dead_code () in
        ignore (Dce.run f);
        check_int "loads kept" 1 (count_insts Instr.is_load f);
        check_int "stores kept" 1 (count_insts Instr.is_store f));
    tc "idempotent" (fun () ->
        let f = func_with_dead_code () in
        ignore (Dce.run f);
        check_int "second run removes nothing" 0 (Dce.run f));
  ]

let cse_tests =
  [
    tc "unifies repeated loads" (fun () ->
        let f = compile {|
kernel k(f64 A[], f64 R[], i64 i) {
  R[i+0] = A[i] * A[i];
  R[i+1] = A[i] + A[i];
}
|} in
        check_int "one load" 1 (count_insts Instr.is_load f));
    tc "unifies commuted commutative expressions" (fun () ->
        let f = compile {|
kernel k(f64 A[], f64 B[], f64 R[], i64 i) {
  R[i+0] = A[i] * B[i];
  R[i+1] = B[i] * A[i];
}
|} in
        let fmuls =
          count_insts (fun i -> Instr.binop i = Some Opcode.Fmul) f
        in
        check_int "one fmul" 1 fmuls);
    tc "does not unify across aliasing stores" (fun () ->
        let f = compile {|
kernel k(f64 A[], f64 R[], i64 i) {
  R[i+0] = A[i] * 2.0;
  A[i] = 1.0;
  R[i+1] = A[i] * 2.0;
}
|} in
        check_int "two loads survive" 2 (count_insts Instr.is_load f));
    tc "does not unify non-commutative swaps" (fun () ->
        let f = compile {|
kernel k(f64 A[], f64 B[], f64 R[], i64 i) {
  R[i+0] = A[i] - B[i];
  R[i+1] = B[i] - A[i];
}
|} in
        let fsubs =
          count_insts (fun i -> Instr.binop i = Some Opcode.Fsub) f
        in
        check_int "two fsubs" 2 fsubs);
    tc "semantics preserved" (fun () ->
        (* build the un-CSE'd function by hand and compare against CSE'd *)
        let build () =
          let b =
            Builder.create ~name:"m"
              ~args:[ ("A", Instr.Array_arg Types.F64);
                      ("R", Instr.Array_arg Types.F64); ("i", Instr.Int_arg) ]
          in
          let x1 = Builder.load b ~base:"A" (Builder.idx 0) in
          let x2 = Builder.load b ~base:"A" (Builder.idx 0) in
          let s = Builder.binop b Opcode.Fmul x1 x2 in
          Builder.store b ~base:"R" (Builder.idx 0) s;
          Builder.func b
        in
        let reference = build () in
        let candidate = build () in
        ignore (Cse.run candidate);
        assert_sound ~reference ~candidate ());
  ]

let use_info_tests =
  [
    tc "counts uses" (fun () ->
        let f = compile {|
kernel k(f64 A[], f64 R[], i64 i) {
  f64 x = A[i];
  R[i+0] = x * x;
  R[i+1] = x + 1.0;
}
|} in
        let uses = Use_info.compute (Func.entry f) in
        let load = List.hd (Block.find_all Instr.is_load (Func.entry f)) in
        check_int "x used 3 times" 3 (Use_info.num_uses uses load);
        check_bool "not single use" false (Use_info.has_single_use uses load));
    tc "users_outside filters" (fun () ->
        let f = compile {|
kernel k(f64 A[], f64 R[], i64 i) {
  f64 x = A[i];
  R[i+0] = x * 2.0;
}
|} in
        let uses = Use_info.compute (Func.entry f) in
        let load = List.hd (Block.find_all Instr.is_load (Func.entry f)) in
        check_int "all outside" 1
          (List.length (Use_info.users_outside uses load ~inside:(fun _ -> false)));
        check_int "none outside" 0
          (List.length (Use_info.users_outside uses load ~inside:(fun _ -> true))));
  ]

let clone_tests =
  [
    tc "clone is deep and equivalent" (fun () ->
        let f = kernel "453.boy-surface" in
        let g = Func.clone f in
        check_int "same length" (Block.length (Func.entry f))
          (Block.length (Func.entry g));
        (* no instruction shared *)
        let ids (h : Func.t) =
          List.map (fun (i : Instr.t) -> i.id) (Block.to_list (Func.entry h))
        in
        List.iter
          (fun id -> check_bool "distinct ids" false (List.mem id (ids f)))
          (ids g);
        assert_sound ~reference:f ~candidate:g ());
    tc "mutating the clone leaves the original intact" (fun () ->
        let f = kernel "motivation-loads" in
        let n = Block.length (Func.entry f) in
        let g = Func.clone f in
        ignore (Lslp_core.Pipeline.run ~config:Lslp_core.Config.lslp g);
        check_int "original untouched" n (Block.length (Func.entry f)));
  ]

let suite =
  types_tests @ opcode_tests @ instr_tests @ block_tests @ dce_tests
  @ cse_tests @ use_info_tests @ clone_tests
