(* Tests for the cost model: calibration against the constants the paper's
   worked examples use, and the TTI-vs-machine divergence. *)

open Lslp_ir
open Lslp_costmodel
open Helpers

let tti = Model.skylake_avx2
let machine = Model.skylake_machine

let mk_binop op =
  Instr.create
    (Instr.Binop (op, Builder.iconst 1, Builder.iconst 2))
    (Types.Scalar (Opcode.binop_operand_scalar op))

let mk_load lanes =
  Instr.create
    (Instr.Load
       { Instr.base = "A"; elt = Types.I64; index = Affine.sym "i";
         access_lanes = lanes })
    (if lanes = 1 then Types.i64 else Types.vec Types.I64 lanes)

let suite =
  [
    tc "max_lanes: 256-bit = 4 x 64-bit" (fun () ->
        check_int "i64" 4 (Model.max_lanes tti Types.I64);
        check_int "f64" 4 (Model.max_lanes tti Types.F64);
        check_int "sse i64" 2 (Model.max_lanes Model.sse_like Types.I64));
    tc "ALU group of 2 saves 1 (paper calibration)" (fun () ->
        let add = mk_binop Opcode.Add in
        let vec = Model.vector_group_cost tti add ~lanes:2 in
        let scalar = Model.scalar_instr_cost tti add in
        check_int "vec 1" 1 vec;
        check_int "scalar 1" 1 scalar;
        check_int "group cost -1" (-1) (vec - (2 * scalar)));
    tc "gather of 2 arbitrary scalars costs +2 (paper calibration)" (fun () ->
        let x = Instr.Ins (mk_binop Opcode.Add) in
        let y = Instr.Ins (mk_binop Opcode.Add) in
        check_int "+2" 2 (Model.gather_cost tti [ x; y ]));
    tc "all-constant gather is free (paper calibration)" (fun () ->
        check_int "0" 0
          (Model.gather_cost tti [ Builder.iconst 1; Builder.iconst 3 ]));
    tc "mixed constant+instruction gather pays per lane" (fun () ->
        let x = Instr.Ins (mk_binop Opcode.Add) in
        check_int "+2" 2 (Model.gather_cost tti [ Builder.iconst 1; x ]));
    tc "splat gather costs one broadcast" (fun () ->
        let x = Instr.Ins (mk_binop Opcode.Add) in
        check_int "splat" 1 (Model.gather_cost tti [ x; x; x; x ]));
    tc "classify_gather" (fun () ->
        let x = Instr.Ins (mk_binop Opcode.Add) in
        check_bool "free" true
          (Model.classify_gather [ Builder.fconst 1.0 ] = Model.Gather_free);
        check_bool "splat" true
          (Model.classify_gather [ x; x ] = Model.Gather_splat);
        check_bool "insert" true
          (Model.classify_gather [ x; Builder.iconst 1 ] = Model.Gather_insert));
    tc "integer division is expensive and scalarized" (fun () ->
        let d = Model.skylake_avx2.binop_cost Opcode.Sdiv in
        check_bool "scalar > alu" true (d.scalar > 4);
        check_bool "vector worse than scalar sum" true (d.vector 4 > 4 * d.scalar));
    tc "fdiv vectorization is profitable" (fun () ->
        let d = Model.skylake_avx2.binop_cost Opcode.Fdiv in
        check_bool "vector 4 < 4x scalar" true (d.vector 4 < 4 * d.scalar));
    tc "machine charges ALU inserts double, load inserts equal" (fun () ->
        let alu = Instr.Ins (mk_binop Opcode.Add) in
        let ld = Instr.Ins (mk_load 1) in
        check_int "tti alu+load" 2 (Model.gather_cost tti [ alu; ld ]);
        check_int "machine alu+load" 3 (Model.gather_cost machine [ alu; ld ]));
    tc "machine and tti agree elsewhere" (fun () ->
        List.iter
          (fun op ->
            let i = mk_binop op in
            check_int (Opcode.binop_name op)
              (Model.scalar_instr_cost tti i)
              (Model.scalar_instr_cost machine i))
          Opcode.all_binops);
    tc "instr_cost charges vector ops at their width" (fun () ->
        let wide = mk_load 4 in
        check_int "wide load" (tti.load_cost.vector 4) (Model.instr_cost tti wide);
        check_int "scalar load" tti.load_cost.scalar
          (Model.instr_cost tti (mk_load 1)));
    tc "buildvec instruction cost matches gather classification" (fun () ->
        let consts = [ Builder.iconst 1; Builder.iconst 2 ] in
        let bv =
          Instr.create (Instr.Buildvec consts) (Types.vec Types.I64 2)
        in
        check_int "const buildvec free" 0 (Model.instr_cost tti bv));
    tc "extract and splat costs" (fun () ->
        let wide = mk_load 2 in
        let ex =
          Instr.create (Instr.Extract (Instr.Ins wide, 0)) Types.i64
        in
        check_int "extract" 1 (Model.instr_cost tti ex);
        let sp =
          Instr.create (Instr.Splat (Builder.iconst 3)) (Types.vec Types.I64 2)
        in
        check_int "splat" 1 (Model.instr_cost tti sp));
    tc "fsqrt cost" (fun () ->
        let u = Model.skylake_avx2.unop_cost Opcode.Fsqrt in
        check_bool "expensive" true (u.scalar > 4);
        check_bool "vector amortizes" true (u.vector 4 < 4 * u.scalar));
  ]
