let () =
  Alcotest.run "lslp"
    [
      ("affine", Test_affine.suite);
      ("ir", Test_ir.suite);
      ("verifier-printer", Test_verifier.suite);
      ("frontend", Test_frontend.suite);
      ("loops", Test_loops.suite);
      ("analysis", Test_analysis.suite);
      ("costmodel", Test_costmodel.suite);
      ("interp", Test_interp.suite);
      ("reorder", Test_reorder.suite);
      ("graph", Test_graph.suite);
      ("cost", Test_cost.suite);
      ("codegen", Test_codegen.suite);
      ("pipeline", Test_pipeline.suite);
      ("kernels", Test_kernels.suite);
      ("figure8", Test_figure8.suite);
      ("width", Test_width.suite);
      ("reduction", Test_reduction.suite);
      ("properties", Test_qcheck.suite);
      ("arena", Test_arena.suite);
      ("check", Test_check.suite);
      ("cond", Test_cond.suite);
      ("robust", Test_robust.suite);
      ("telemetry", Test_telemetry.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("id-gen", Test_id_gen.suite);
      ("lint", Test_lint.suite);
      ("domains", Test_domains.suite);
      ("service", Test_service.suite);
    ]
